package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestEmitAndEvents(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{At: sim.Time(i * 10), Kind: EvPlace, Name: "obj", Arg1: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("retained %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Arg1 != int64(i) {
			t.Fatalf("order broken: %v", evs)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{At: sim.Time(i), Kind: EvMigrate, Arg1: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Arg1 != int64(6+i) {
			t.Fatalf("wrap lost order: %v", evs)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
}

func TestRingWrapProperty(t *testing.T) {
	// Property: after N emissions into a ring of capacity C, Events()
	// returns min(N,C) events and they are the most recent, in order.
	f := func(n uint8, c uint8) bool {
		capacity := int(c%32) + 1
		count := int(n % 200)
		tr := New(capacity)
		for i := 0; i < count; i++ {
			tr.Emit(Event{Arg1: int64(i)})
		}
		evs := tr.Events()
		want := count
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i, ev := range evs {
			if ev.Arg1 != int64(count-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvPlace}) // must not panic
	if tr.Events() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer should report nothing")
	}
}

func TestFilterAndCount(t *testing.T) {
	tr := New(16)
	tr.Emit(Event{Kind: EvPlace})
	tr.Emit(Event{Kind: EvMigrate})
	tr.Emit(Event{Kind: EvPlace})
	if got := tr.Count(EvPlace); got != 2 {
		t.Fatalf("Count(EvPlace) = %d", got)
	}
	if got := len(tr.Filter(EvMigrate)); got != 1 {
		t.Fatalf("Filter(EvMigrate) = %d entries", got)
	}
	if got := tr.Count(EvCollapse); got != 0 {
		t.Fatalf("Count(EvCollapse) = %d", got)
	}
}

func TestEventStrings(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{At: 5, Kind: EvPlace, Name: "dir1", Arg1: 3}, "dir1 -> core 3"},
		{Event{At: 5, Kind: EvUnplace, Name: "dir1", Arg1: 3}, "(decay)"},
		{Event{At: 5, Kind: EvUnplace, Name: "dir1", Arg1: 3, Arg2: 1}, "(dram-ineffective)"},
		{Event{At: 5, Kind: EvMigrate, Name: "t0", Arg1: 1, Arg2: 2}, "core 1 -> 2"},
		{Event{At: 5, Kind: EvReplicate, Name: "hot", Arg1: 4}, "(4 replicas)"},
		{Event{At: 5, Kind: EvRebalance, Arg1: 7}, "moved 7 objects"},
	}
	for _, c := range cases {
		if got := c.ev.String(); !strings.Contains(got, c.want) {
			t.Errorf("String(%v) = %q, want substring %q", c.ev.Kind, got, c.want)
		}
	}
}

func TestDump(t *testing.T) {
	tr := New(4)
	tr.Emit(Event{Kind: EvPlace, Name: "a", Arg1: 1})
	tr.Emit(Event{Kind: EvMove, Name: "a", Arg1: 1, Arg2: 2})
	var sb strings.Builder
	tr.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "place") || !strings.Contains(out, "move") {
		t.Fatalf("dump missing events:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 2 {
		t.Fatalf("dump has %d lines, want 2", got)
	}
}

func TestKindString(t *testing.T) {
	if EvPlace.String() != "place" || EvDisperse.String() != "disperse" {
		t.Fatal("kind names wrong")
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind formatted as %q", got)
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	tr := New(0)
	for i := 0; i < 5000; i++ {
		tr.Emit(Event{Arg1: int64(i)})
	}
	if len(tr.Events()) != 4096 {
		t.Fatalf("default capacity = %d, want 4096", len(tr.Events()))
	}
}
