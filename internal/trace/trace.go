// Package trace is a lightweight event tracer for the simulated system:
// a fixed-capacity ring buffer of typed, timestamped scheduling events
// (placements, migrations, operations, monitor actions).
//
// Tracing exists for the same reason real schedulers ship with tracepoints:
// aggregate counters say *what* happened, traces say *in which order and
// why*. The CoreTime runtime emits events when a Tracer is attached
// (core.Options.Tracer); the ring costs nothing when absent and O(1) per
// event when present, so it can stay enabled through full benchmark runs.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds emitted by the runtime and substrate.
const (
	// EvPlace: an object was assigned to a core (Arg1=core).
	EvPlace Kind = iota
	// EvUnplace: an object's placement was withdrawn (Arg1=former core,
	// Arg2 non-zero when withdrawn for DRAM-ineffectiveness).
	EvUnplace
	// EvMove: the monitor moved an object between cores (Arg1=from,
	// Arg2=to).
	EvMove
	// EvMigrate: a thread migrated for an operation (Arg1=from core,
	// Arg2=to core).
	EvMigrate
	// EvDisperse: a thread was dispersed off a congested core
	// (Arg1=from, Arg2=to).
	EvDisperse
	// EvReplicate: an object was replicated (Arg1=replica count).
	EvReplicate
	// EvCollapse: a replica set collapsed before a write (Arg1=former
	// replica count).
	EvCollapse
	// EvRebalance: one monitor pass completed (Arg1=objects moved).
	EvRebalance
)

var kindNames = [...]string{
	EvPlace:     "place",
	EvUnplace:   "unplace",
	EvMove:      "move",
	EvMigrate:   "migrate",
	EvDisperse:  "disperse",
	EvReplicate: "replicate",
	EvCollapse:  "collapse",
	EvRebalance: "rebalance",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record. Subject identifies the object or thread the
// event concerns (an object base address or a thread id, per Kind).
type Event struct {
	At      sim.Time
	Kind    Kind
	Subject uint64
	Name    string // human-readable subject (object name, thread name)
	Arg1    int64
	Arg2    int64
}

// String renders an event for dumps.
func (e Event) String() string {
	switch e.Kind {
	case EvPlace:
		return fmt.Sprintf("%12d %-9s %s -> core %d", e.At, e.Kind, e.Name, e.Arg1)
	case EvUnplace:
		why := "decay"
		if e.Arg2 != 0 {
			why = "dram-ineffective"
		}
		return fmt.Sprintf("%12d %-9s %s from core %d (%s)", e.At, e.Kind, e.Name, e.Arg1, why)
	case EvMove, EvMigrate, EvDisperse:
		return fmt.Sprintf("%12d %-9s %s core %d -> %d", e.At, e.Kind, e.Name, e.Arg1, e.Arg2)
	case EvReplicate, EvCollapse:
		return fmt.Sprintf("%12d %-9s %s (%d replicas)", e.At, e.Kind, e.Name, e.Arg1)
	case EvRebalance:
		return fmt.Sprintf("%12d %-9s moved %d objects", e.At, e.Kind, e.Arg1)
	}
	return fmt.Sprintf("%12d %-9s %s %d %d", e.At, e.Kind, e.Name, e.Arg1, e.Arg2)
}

// Tracer is a fixed-capacity ring of events. The zero Tracer is invalid;
// use New.
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	total   uint64
}

// New creates a tracer keeping the most recent capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Emit records one event. Nil tracers are safe to Emit on, so callers
// never need a guard.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.wrapped = true
}

// Total returns how many events were emitted over the tracer's lifetime
// (including any that have been overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Event, 0, cap(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Filter returns retained events of the given kind, in order.
func (t *Tracer) Filter(k Kind) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// Count returns how many retained events have the given kind.
func (t *Tracer) Count(k Kind) int {
	n := 0
	for _, ev := range t.Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// Dump writes the retained events to w, one per line.
func (t *Tracer) Dump(w io.Writer) {
	for _, ev := range t.Events() {
		fmt.Fprintln(w, ev.String())
	}
}

// Reset discards every retained event and restarts the emission counter,
// so a reused traced runtime records exactly like a freshly built one.
// The ring's backing array is kept. Reset on a nil tracer is a no-op.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.ring = t.ring[:0]
	t.next = 0
	t.wrapped = false
	t.total = 0
}
