// Package mem provides the simulated physical address space: a flat byte
// image with a bump allocator and a registry of named object spans.
//
// The image holds real bytes — the FAT file system stores genuine directory
// entries in it — but reading and writing the image carries no simulated
// cost. Timing is charged separately by the machine model
// (internal/machine), which consults the same addresses.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a simulated physical address.
type Addr uint64

// Span is a contiguous address range [Base, Base+Size).
type Span struct {
	Base Addr
	Size uint64
}

// End returns the first address past the span.
func (s Span) End() Addr { return s.Base + Addr(s.Size) }

// Contains reports whether a falls inside the span.
func (s Span) Contains(a Addr) bool { return a >= s.Base && a < s.End() }

// Overlaps reports whether two spans share any address.
func (s Span) Overlaps(o Span) bool { return s.Base < o.End() && o.Base < s.End() }

// Object is a named allocation, the unit the O2 scheduler places in caches.
type Object struct {
	Span
	Name string
}

// Image is a simulated physical memory: backing bytes, a bump allocator,
// and the object registry.
type Image struct {
	data    []byte
	limit   int // capacity ceiling; len(data) grows toward it on demand
	next    Addr
	objects []*Object // sorted by Base
}

// NewImage creates an image of size bytes with a fixed capacity.
// Allocations start at address 64 so that address 0 can serve as a "nil"
// sentinel.
func NewImage(size int) *Image {
	return NewImageWithLimit(size, size)
}

// NewImageWithLimit creates an image whose backing starts at size bytes
// and grows on demand up to limit. Zeroing the backing array is a real
// cost for callers that build thousands of short-lived machines (the
// sweep engine), so they start images at the workload's stated
// requirement while keeping the allocation headroom of a larger limit.
//
// Growth reallocates the backing array: slices returned by Bytes must not
// be held across an Alloc.
func NewImageWithLimit(size, limit int) *Image {
	if size <= 0 {
		panic("mem: image size must be positive")
	}
	if limit < size {
		limit = size
	}
	return &Image{data: make([]byte, size), limit: limit, next: 64}
}

// Size returns the image capacity in bytes (the growth limit).
func (im *Image) Size() int { return im.limit }

// Used returns the number of bytes handed out so far.
func (im *Image) Used() uint64 { return uint64(im.next) }

// Alloc reserves size bytes aligned to align (which must be a power of
// two; 0 means 8). It returns an error when the image is exhausted.
func (im *Image) Alloc(size uint64, align uint64) (Addr, error) {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("mem: alignment %d is not a power of two", align)
	}
	if size == 0 {
		return 0, fmt.Errorf("mem: zero-size allocation")
	}
	base := (uint64(im.next) + align - 1) &^ (align - 1)
	if base+size > uint64(len(im.data)) {
		if base+size > uint64(im.limit) {
			return 0, fmt.Errorf("mem: out of memory: need %d bytes at %#x, image is %d bytes",
				size, base, im.limit)
		}
		im.growTo(base + size)
	}
	im.next = Addr(base + size)
	return Addr(base), nil
}

// growTo extends the backing array to at least need bytes, doubling to
// amortize and clamping at the limit.
func (im *Image) growTo(need uint64) {
	newLen := uint64(len(im.data)) * 2
	if newLen < need {
		newLen = need
	}
	if newLen > uint64(im.limit) {
		newLen = uint64(im.limit)
	}
	data := make([]byte, newLen)
	copy(data, im.data)
	im.data = data
}

// ImageMark is a point in an image's allocation history, taken with Mark
// and restored with ResetTo.
type ImageMark struct {
	next    Addr
	objects int
}

// Mark captures the allocator's current position so ResetTo can roll the
// image back to it. The sweep engine marks an image after the shared
// machine build and resets to the mark between repeats, reusing the build
// instead of re-zeroing and re-populating megabytes per repeat.
func (im *Image) Mark() ImageMark {
	return ImageMark{next: im.next, objects: len(im.objects)}
}

// ResetTo rolls the bump allocator back to a mark taken on this image.
// Ownership rules (the arena contract, DESIGN.md §12):
//
//   - Objects registered after the mark must describe memory allocated
//     after the mark; ResetTo drops every object based at or past the
//     mark's allocation frontier and panics if the registry still holds
//     more objects than the mark recorded (a post-mark registration
//     inside pre-mark memory cannot be rolled back).
//   - Bytes written after the mark are not re-zeroed; callers that
//     re-allocate the freed region must not read bytes they did not
//     write. (The execution substrate's context buffers qualify: they are
//     charged, never read.)
//   - Backing-array growth is retained — addresses are stable, so a
//     grown image behaves identically to a fresh one of the grown size.
func (im *Image) ResetTo(m ImageMark) {
	keep := len(im.objects)
	for keep > 0 && im.objects[keep-1].Base >= m.next {
		im.objects[keep-1] = nil
		keep--
	}
	if keep > m.objects {
		panic(fmt.Sprintf("mem: ResetTo cannot drop object %q registered inside pre-mark memory",
			im.objects[keep-1].Name))
	}
	im.objects = im.objects[:keep]
	im.next = m.next
}

// AllocObject allocates a span and registers it as a named object. Objects
// are aligned to cache lines (64 bytes) so that distinct objects never
// share a line — false sharing would otherwise confound placement.
func (im *Image) AllocObject(name string, size uint64) (*Object, error) {
	base, err := im.Alloc(size, 64)
	if err != nil {
		return nil, err
	}
	return im.RegisterObject(name, Span{Base: base, Size: size})
}

// RegisterObject registers an existing span as a named object (used for
// structures that live inside a larger allocation, like FAT directories
// inside a volume). The span must not overlap a registered object.
func (im *Image) RegisterObject(name string, span Span) (*Object, error) {
	if span.Size == 0 {
		return nil, fmt.Errorf("mem: zero-size object %q", name)
	}
	if span.End() > Addr(len(im.data)) {
		return nil, fmt.Errorf("mem: object %q span [%#x,%#x) outside image", name, span.Base, span.End())
	}
	obj := &Object{Span: span, Name: name}
	i := sort.Search(len(im.objects), func(i int) bool {
		return im.objects[i].Base >= obj.Base
	})
	if i > 0 && im.objects[i-1].Overlaps(span) {
		return nil, fmt.Errorf("mem: object %q overlaps %q", name, im.objects[i-1].Name)
	}
	if i < len(im.objects) && im.objects[i].Overlaps(span) {
		return nil, fmt.Errorf("mem: object %q overlaps %q", name, im.objects[i].Name)
	}
	im.objects = append(im.objects, nil)
	copy(im.objects[i+1:], im.objects[i:])
	im.objects[i] = obj
	return obj, nil
}

// ObjectAt returns the registered object containing a, or nil.
func (im *Image) ObjectAt(a Addr) *Object {
	i := sort.Search(len(im.objects), func(i int) bool {
		return im.objects[i].Base > a
	})
	if i == 0 {
		return nil
	}
	if obj := im.objects[i-1]; obj.Contains(a) {
		return obj
	}
	return nil
}

// Objects returns all registered objects in address order. The caller must
// not mutate the slice.
func (im *Image) Objects() []*Object { return im.objects }

// Bytes returns the backing slice for [a, a+n). It panics on out-of-range
// access: a simulated program touching unmapped memory is a bug in the
// simulation, not a recoverable condition.
func (im *Image) Bytes(a Addr, n int) []byte {
	if int(a)+n > len(im.data) || n < 0 {
		panic(fmt.Sprintf("mem: access [%#x,%#x) outside image of %d bytes", a, int(a)+n, len(im.data)))
	}
	return im.data[a : int(a)+n]
}

// ReadAt copies n bytes starting at a.
func (im *Image) ReadAt(a Addr, n int) []byte {
	out := make([]byte, n)
	copy(out, im.Bytes(a, n))
	return out
}

// WriteAt copies b into the image at a.
func (im *Image) WriteAt(a Addr, b []byte) {
	copy(im.Bytes(a, len(b)), b)
}

// Read16 reads a little-endian uint16 at a.
func (im *Image) Read16(a Addr) uint16 {
	b := im.Bytes(a, 2)
	return uint16(b[0]) | uint16(b[1])<<8
}

// Write16 writes a little-endian uint16 at a.
func (im *Image) Write16(a Addr, v uint16) {
	b := im.Bytes(a, 2)
	b[0], b[1] = byte(v), byte(v>>8)
}

// Read32 reads a little-endian uint32 at a.
func (im *Image) Read32(a Addr) uint32 {
	b := im.Bytes(a, 4)
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Write32 writes a little-endian uint32 at a.
func (im *Image) Write32(a Addr, v uint32) {
	b := im.Bytes(a, 4)
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// Read64 reads a little-endian uint64 at a.
func (im *Image) Read64(a Addr) uint64 {
	return uint64(im.Read32(a)) | uint64(im.Read32(a+4))<<32
}

// Write64 writes a little-endian uint64 at a.
func (im *Image) Write64(a Addr, v uint64) {
	im.Write32(a, uint32(v))
	im.Write32(a+4, uint32(v>>32))
}
