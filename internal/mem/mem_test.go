package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	im := NewImage(1 << 20)
	a, err := im.Alloc(10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a%64 != 0 {
		t.Errorf("addr %#x not 64-byte aligned", a)
	}
	b, err := im.Alloc(10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b < a+10 {
		t.Errorf("allocations overlap: %#x then %#x", a, b)
	}
	if b%64 != 0 {
		t.Errorf("addr %#x not 64-byte aligned", b)
	}
}

func TestAllocDefaultAlign(t *testing.T) {
	im := NewImage(1024)
	a, err := im.Alloc(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a%8 != 0 {
		t.Errorf("default alignment should be 8, got addr %#x", a)
	}
}

func TestAllocErrors(t *testing.T) {
	im := NewImage(1024)
	if _, err := im.Alloc(0, 8); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if _, err := im.Alloc(8, 3); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	if _, err := im.Alloc(4096, 8); err == nil {
		t.Error("oversized alloc accepted")
	}
}

func TestAllocExhaustion(t *testing.T) {
	im := NewImage(512)
	var last error
	for i := 0; i < 100; i++ {
		if _, err := im.Alloc(64, 8); err != nil {
			last = err
			break
		}
	}
	if last == nil {
		t.Fatal("image never exhausted")
	}
}

func TestSpanPredicates(t *testing.T) {
	s := Span{Base: 100, Size: 50}
	if !s.Contains(100) || !s.Contains(149) {
		t.Error("Contains misses endpoints")
	}
	if s.Contains(99) || s.Contains(150) {
		t.Error("Contains includes outside addresses")
	}
	if !s.Overlaps(Span{Base: 140, Size: 50}) {
		t.Error("overlapping spans reported disjoint")
	}
	if s.Overlaps(Span{Base: 150, Size: 50}) {
		t.Error("adjacent spans reported overlapping")
	}
}

func TestObjectRegistry(t *testing.T) {
	im := NewImage(1 << 20)
	a, err := im.AllocObject("alpha", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := im.AllocObject("beta", 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := im.ObjectAt(a.Base); got != a {
		t.Errorf("ObjectAt(alpha base) = %v", got)
	}
	if got := im.ObjectAt(a.Base + 99); got != a {
		t.Errorf("ObjectAt(alpha end-1) = %v", got)
	}
	if got := im.ObjectAt(b.Base + 1); got != b {
		t.Errorf("ObjectAt(beta+1) = %v", got)
	}
	if got := im.ObjectAt(0); got != nil {
		t.Errorf("ObjectAt(0) = %v, want nil", got)
	}
	if a.Base%64 != 0 || b.Base%64 != 0 {
		t.Error("objects must be cache-line aligned")
	}
}

func TestObjectsNeverOverlap(t *testing.T) {
	im := NewImage(1 << 20)
	f := func(sizes []uint16) bool {
		for i, s := range sizes {
			if i > 40 {
				break
			}
			size := uint64(s%1000) + 1
			if _, err := im.AllocObject("o", size); err != nil {
				return true // exhaustion is fine
			}
		}
		objs := im.Objects()
		for i := 1; i < len(objs); i++ {
			if objs[i-1].Overlaps(objs[i].Span) {
				return false
			}
			if objs[i-1].Base > objs[i].Base {
				return false // must be sorted
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	im := NewImage(4096)
	a, _ := im.Alloc(256, 8)
	payload := []byte("the quick brown fox")
	im.WriteAt(a, payload)
	if got := im.ReadAt(a, len(payload)); !bytes.Equal(got, payload) {
		t.Errorf("round trip = %q, want %q", got, payload)
	}
}

func TestScalarAccessors(t *testing.T) {
	im := NewImage(4096)
	a, _ := im.Alloc(64, 8)
	im.Write16(a, 0xBEEF)
	if got := im.Read16(a); got != 0xBEEF {
		t.Errorf("Read16 = %#x", got)
	}
	im.Write32(a+8, 0xDEADBEEF)
	if got := im.Read32(a + 8); got != 0xDEADBEEF {
		t.Errorf("Read32 = %#x", got)
	}
	im.Write64(a+16, 0x0123456789ABCDEF)
	if got := im.Read64(a + 16); got != 0x0123456789ABCDEF {
		t.Errorf("Read64 = %#x", got)
	}
	// Little-endian layout check.
	if im.Bytes(a, 1)[0] != 0xEF {
		t.Error("Write16 is not little-endian")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	im := NewImage(128)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	im.Bytes(120, 16)
}

func TestAddressZeroReserved(t *testing.T) {
	im := NewImage(1024)
	a, err := im.Alloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Error("address 0 must stay reserved as a nil sentinel")
	}
}
