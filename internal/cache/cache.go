// Package cache implements the set-associative cache model used for every
// level of the simulated hierarchy (per-core L1 and L2, per-chip L3).
//
// A Cache is a pure container of line tags with LRU replacement: it knows
// nothing about latencies, coherence, or other caches. The machine model
// (internal/machine) composes caches into a hierarchy and keeps the global
// coherence directory (internal/coherence) consistent with their contents.
package cache

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/topology"
)

// Line identifies a cache line: a line-size-aligned address divided by the
// line size. Using line numbers rather than byte addresses keeps maps small
// and makes aliasing bugs (two addresses in one line) impossible.
type Line uint64

// LineOf converts a byte address to its line number for the given line size.
func LineOf(a mem.Addr, lineSize int) Line {
	return Line(uint64(a) / uint64(lineSize))
}

// entry is one resident line, packed as line<<1 | dirty so an
// associativity-wide set scan — the simulator's innermost loop — touches
// one machine word per way and compares without unpacking. Dirty marks
// lines that must conceptually be written back on eviction (the model
// charges no writeback latency, but the flag is maintained so the
// coherence layer can distinguish owners).
type entry uint64

const entryDirty entry = 1

func packEntry(l Line, dirty bool) entry {
	e := entry(l) << 1
	if dirty {
		e |= entryDirty
	}
	return e
}

func (e entry) line() Line  { return Line(e >> 1) }
func (e entry) dirty() bool { return e&entryDirty != 0 }

// key returns the comparison form of a line: an entry matches l iff
// e&^entryDirty == key(l).
func key(l Line) entry { return entry(l) << 1 }

// Cache is a set-associative cache with true-LRU replacement within each
// set. Within a set, entries are kept in recency order: index 0 is the
// least recently used.
//
// Set indexing models a physically-indexed cache under an operating
// system that places pages arbitrarily: within a 4 KB page, consecutive
// lines map to consecutive sets (preserving spatial locality), but the
// page-number bits are hashed. Without this, the simulator's flat address
// space would give identically-sized, identically-aligned objects (the
// benchmark's 32 KB directories) perfectly correlated set pressure — a
// pathology real virtual memory destroys. Caches small enough that the
// whole index comes from the page offset use plain modular indexing, as
// the hardware would.
type Cache struct {
	geom   topology.CacheGeom
	sets   [][]entry
	mask   uint64 // set index mask
	hashed bool   // set index includes hashed page-number bits
	count  int
}

// pageLines is the number of cache lines per 4 KB page at 64-byte lines.
const pageLines = 64

// New builds an empty cache with the given geometry. It panics on invalid
// geometry; callers validate configs at startup via topology.Config.Validate.
// All sets share one backing slab sized to the full capacity, so inserts
// never allocate and a whole set scan stays within one contiguous region.
func New(geom topology.CacheGeom) *Cache {
	if err := geom.Validate("cache"); err != nil {
		panic(err)
	}
	nsets := geom.Sets()
	c := &Cache{
		geom:   geom,
		sets:   make([][]entry, nsets),
		mask:   uint64(nsets - 1),
		hashed: nsets > pageLines,
	}
	slab := make([]entry, nsets*geom.Assoc)
	for i := range c.sets {
		c.sets[i] = slab[i*geom.Assoc : i*geom.Assoc : (i+1)*geom.Assoc]
	}
	return c
}

// Geom returns the cache geometry.
func (c *Cache) Geom() topology.CacheGeom { return c.geom }

// Len returns the number of resident lines.
func (c *Cache) Len() int { return c.count }

// CapacityLines returns the maximum number of resident lines.
func (c *Cache) CapacityLines() int { return c.geom.Size / c.geom.LineSize }

func (c *Cache) setOf(l Line) int {
	if !c.hashed {
		return int(uint64(l) & c.mask)
	}
	// Keep the within-page offset bits, substitute hashed page-number
	// bits for the rest of the index (fmix-style avalanche).
	page := uint64(l) / pageLines
	page ^= page >> 33
	page *= 0xFF51AFD7ED558CCD
	page ^= page >> 33
	return int(((uint64(l) % pageLines) | (page * pageLines)) & c.mask)
}

// Lookup reports whether line is resident and, if so, marks it most
// recently used. The scan runs MRU-first (from the back of the recency
// order): on the simulator's hot path the looked-up line is almost always
// the most recently used one, which makes the common hit a single compare
// and no reordering.
//
//o2:hotpath
func (c *Cache) Lookup(l Line) bool {
	set := c.sets[c.setOf(l)]
	k := key(l)
	for i := len(set) - 1; i >= 0; i-- {
		if set[i]&^entryDirty == k {
			if i < len(set)-1 {
				// Shift by hand: the run is at most assoc-1 words, below
				// the length where memmove's call overhead pays off.
				e := set[i]
				for ; i < len(set)-1; i++ {
					set[i] = set[i+1]
				}
				set[i] = e
			}
			return true
		}
	}
	return false
}

// Contains reports residency without disturbing LRU order.
func (c *Cache) Contains(l Line) bool {
	set := c.sets[c.setOf(l)]
	k := key(l)
	for i := len(set) - 1; i >= 0; i-- {
		if set[i]&^entryDirty == k {
			return true
		}
	}
	return false
}

// IsDirty reports whether line is resident and dirty.
func (c *Cache) IsDirty(l Line) bool {
	set := c.sets[c.setOf(l)]
	k := key(l)
	for i := len(set) - 1; i >= 0; i-- {
		if set[i]&^entryDirty == k {
			return set[i].dirty()
		}
	}
	return false
}

// Insert makes line resident (most recently used), evicting the LRU entry
// of its set if the set is full. It returns the evicted line and whether an
// eviction happened. Inserting an already-resident line refreshes its LRU
// position and dirty bit without eviction.
func (c *Cache) Insert(l Line, dirty bool) (evicted Line, evictedDirty, didEvict bool) {
	si := c.setOf(l)
	set := c.sets[si]
	k := key(l)
	for i := len(set) - 1; i >= 0; i-- {
		if set[i]&^entryDirty == k {
			e := set[i]
			if dirty {
				e |= entryDirty
			}
			for ; i < len(set)-1; i++ {
				set[i] = set[i+1]
			}
			set[i] = e
			return 0, false, false
		}
	}
	return c.insertAbsent(si, set, l, dirty)
}

// InsertNew is Insert for a line the caller has just proven absent (its
// Lookup or Contains on this cache returned false, with no intervening
// mutation). It skips the residency re-scan; the insertion and eviction
// behavior is identical to Insert's absent case. The machine model's miss
// path uses it: every install there follows a failed lookup on the same
// cache.
//
//o2:hotpath
func (c *Cache) InsertNew(l Line, dirty bool) (evicted Line, evictedDirty, didEvict bool) {
	si := c.setOf(l)
	return c.insertAbsent(si, c.sets[si], l, dirty)
}

// insertAbsent places a non-resident line at MRU, evicting LRU on a full
// set.
//
//o2:hotpath
func (c *Cache) insertAbsent(si int, set []entry, l Line, dirty bool) (evicted Line, evictedDirty, didEvict bool) {
	if len(set) >= c.geom.Assoc {
		victim := set[0]
		for i := 0; i < len(set)-1; i++ {
			set[i] = set[i+1]
		}
		set[len(set)-1] = packEntry(l, dirty)
		c.sets[si] = set
		return victim.line(), victim.dirty(), true
	}
	//o2:allowalloc "append within the set's pre-sliced slab capacity: New caps each set at assoc, so this never grows"
	c.sets[si] = append(set, packEntry(l, dirty))
	c.count++
	return 0, false, false
}

// MarkDirty sets the dirty bit on a resident line and reports whether the
// line was present.
func (c *Cache) MarkDirty(l Line) bool {
	set := c.sets[c.setOf(l)]
	k := key(l)
	for i := len(set) - 1; i >= 0; i-- {
		if set[i]&^entryDirty == k {
			set[i] |= entryDirty
			return true
		}
	}
	return false
}

// Remove invalidates line, reporting whether it was resident and dirty.
func (c *Cache) Remove(l Line) (wasDirty, removed bool) {
	si := c.setOf(l)
	set := c.sets[si]
	k := key(l)
	for i := range set {
		if set[i]&^entryDirty == k {
			dirty := set[i].dirty()
			for ; i < len(set)-1; i++ {
				set[i] = set[i+1]
			}
			c.sets[si] = set[:len(set)-1]
			c.count--
			return dirty, true
		}
	}
	return false, false
}

// Clear invalidates every line.
func (c *Cache) Clear() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.count = 0
}

// Lines returns all resident lines in ascending order (for inspection and
// the Fig. 2 cache-contents tool).
func (c *Cache) Lines() []Line {
	return c.AppendLines(make([]Line, 0, c.count))
}

// AppendLines appends every resident line to dst in ascending order and
// returns the extended slice — the allocation-free sibling of Lines for
// callers with a reusable scratch buffer (the machine's residency and
// invariant scans).
func (c *Cache) AppendLines(dst []Line) []Line {
	start := len(dst)
	for _, set := range c.sets {
		for _, e := range set {
			dst = append(dst, e.line())
		}
	}
	added := dst[start:]
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	return dst
}

// ResidentBytesIn counts how many bytes of span are resident, for occupancy
// reports.
func (c *Cache) ResidentBytesIn(span mem.Span) int {
	ls := c.geom.LineSize
	first := LineOf(span.Base, ls)
	last := LineOf(span.End()-1, ls)
	n := 0
	for l := first; l <= last; l++ {
		if c.Contains(l) {
			n++
		}
	}
	return n * ls
}

// String summarises occupancy for debugging.
func (c *Cache) String() string {
	return fmt.Sprintf("cache{%d/%d lines, %d sets × %d ways}",
		c.count, c.CapacityLines(), len(c.sets), c.geom.Assoc)
}
