package cache

import (
	"testing"

	"repro/internal/topology"
)

// Paper-scale caches must use hashed (page-colored) indexing; tiny caches
// whose whole index fits in the page offset must not.
func TestIndexingModeSelection(t *testing.T) {
	small := New(topology.CacheGeom{Size: 4 << 10, LineSize: 64, Assoc: 1}) // 64 sets
	if small.hashed {
		t.Error("64-set cache should use plain modular indexing")
	}
	big := New(topology.CacheGeom{Size: 512 << 10, LineSize: 64, Assoc: 16}) // 512 sets
	if !big.hashed {
		t.Error("512-set cache should hash page bits")
	}
}

func TestHashedIndexPreservesWithinPageLocality(t *testing.T) {
	// Consecutive lines of one 4 KB page must land in consecutive sets
	// (mod the page), exactly as a physically-indexed cache sees them.
	c := New(topology.CacheGeom{Size: 512 << 10, LineSize: 64, Assoc: 16})
	base := Line(12345 * pageLines) // an arbitrary page boundary
	s0 := c.setOf(base)
	for i := 1; i < pageLines; i++ {
		want := (s0 &^ (pageLines - 1)) | ((s0 + i) & (pageLines - 1))
		// Within a page only the low 6 set-index bits advance.
		got := c.setOf(base + Line(i))
		if got != want {
			t.Fatalf("line +%d: set %d, want %d (within-page locality broken)", i, got, want)
		}
	}
}

func TestHashedIndexSpreadsAlignedObjects(t *testing.T) {
	// The pathology the hash exists to kill: N objects of exactly
	// sets×lineSize bytes, all identically aligned. Under modular
	// indexing, line 0 of every object lands in the same set. A
	// physically-indexed 512-set cache has sets/pageLines = 8 page
	// colors, so hashed indexing cannot do better than spreading the
	// first lines over those 8 colors — but it must actually use them
	// all instead of stacking everything in one set.
	c := New(topology.CacheGeom{Size: 512 << 10, LineSize: 64, Assoc: 16})
	sets := c.geom.Sets()
	colors := sets / pageLines
	objLines := Line(sets) // one line per set under modular indexing
	counts := make(map[int]int)
	const objects = 64
	for o := 0; o < objects; o++ {
		first := Line(o) * objLines
		counts[c.setOf(first)]++
	}
	if len(counts) < colors/2 {
		t.Fatalf("first lines use only %d sets; expected close to %d colors", len(counts), colors)
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	// Under modular indexing max would be 64 (all in one set); random
	// coloring gives mean 8 per color with modest deviation.
	if max > 3*objects/colors {
		t.Fatalf("aligned objects pile up: %d of %d first-lines share a set (mean %d)",
			max, objects, objects/colors)
	}
}

func TestHashedIndexDistributionUniform(t *testing.T) {
	// Streaming a large contiguous region must fill sets evenly: the
	// max/mean set occupancy stays small.
	c := New(topology.CacheGeom{Size: 512 << 10, LineSize: 64, Assoc: 16})
	sets := c.geom.Sets()
	occ := make([]int, sets)
	const span = 1 << 15 // 32k lines = 2 MB
	for l := Line(0); l < span; l++ {
		occ[c.setOf(l)]++
	}
	mean := span / sets
	for s, n := range occ {
		if n > 3*mean || n < mean/3 {
			t.Fatalf("set %d holds %d lines, mean %d: distribution skewed", s, n, mean)
		}
	}
}

func TestHashedIndexDeterministic(t *testing.T) {
	a := New(topology.CacheGeom{Size: 512 << 10, LineSize: 64, Assoc: 16})
	b := New(topology.CacheGeom{Size: 512 << 10, LineSize: 64, Assoc: 16})
	for l := Line(0); l < 4096; l += 7 {
		if a.setOf(l) != b.setOf(l) {
			t.Fatalf("set index not deterministic for line %d", l)
		}
	}
}
