package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/topology"
)

func tiny() *Cache {
	// 4 sets × 2 ways of 64-byte lines.
	return New(topology.CacheGeom{Size: 512, LineSize: 64, Assoc: 2})
}

func TestInsertLookup(t *testing.T) {
	c := tiny()
	if c.Lookup(1) {
		t.Fatal("empty cache claims a hit")
	}
	c.Insert(1, false)
	if !c.Lookup(1) {
		t.Fatal("inserted line not found")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// Lines 0, 4, 8 map to set 0 (4 sets). Two ways: inserting a third
	// evicts the least recently used.
	c.Insert(0, false)
	c.Insert(4, false)
	c.Lookup(0) // 0 becomes MRU; 4 is now LRU
	ev, _, did := c.Insert(8, false)
	if !did || ev != 4 {
		t.Fatalf("evicted %v (did=%v), want 4", ev, did)
	}
	if !c.Contains(0) || !c.Contains(8) || c.Contains(4) {
		t.Fatal("wrong lines resident after eviction")
	}
}

func TestInsertExistingRefreshesLRU(t *testing.T) {
	c := tiny()
	c.Insert(0, false)
	c.Insert(4, false)
	c.Insert(0, false) // refresh, no eviction
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	ev, _, did := c.Insert(8, false)
	if !did || ev != 4 {
		t.Fatalf("evicted %v, want 4 (0 was refreshed)", ev)
	}
}

func TestDirtyBit(t *testing.T) {
	c := tiny()
	c.Insert(1, false)
	if c.IsDirty(1) {
		t.Fatal("clean line reported dirty")
	}
	if !c.MarkDirty(1) {
		t.Fatal("MarkDirty missed resident line")
	}
	if !c.IsDirty(1) {
		t.Fatal("dirty bit lost")
	}
	// Re-inserting clean must not clear dirty.
	c.Insert(1, false)
	if !c.IsDirty(1) {
		t.Fatal("dirty bit cleared by clean re-insert")
	}
	wasDirty, removed := c.Remove(1)
	if !removed || !wasDirty {
		t.Fatalf("Remove = (%v,%v), want dirty removal", wasDirty, removed)
	}
}

func TestMarkDirtyMissing(t *testing.T) {
	c := tiny()
	if c.MarkDirty(7) {
		t.Fatal("MarkDirty on absent line returned true")
	}
}

func TestRemove(t *testing.T) {
	c := tiny()
	c.Insert(3, false)
	if _, removed := c.Remove(3); !removed {
		t.Fatal("failed to remove resident line")
	}
	if _, removed := c.Remove(3); removed {
		t.Fatal("removed a line twice")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after removal", c.Len())
	}
}

func TestClear(t *testing.T) {
	c := tiny()
	for i := Line(0); i < 8; i++ {
		c.Insert(i, false)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear", c.Len())
	}
	for i := Line(0); i < 8; i++ {
		if c.Contains(i) {
			t.Fatalf("line %d survived Clear", i)
		}
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	// Property: under arbitrary insert/lookup/remove traffic the cache
	// never exceeds capacity and set occupancy never exceeds
	// associativity.
	f := func(ops []uint16) bool {
		c := tiny()
		for _, op := range ops {
			line := Line(op % 64)
			switch op % 3 {
			case 0:
				c.Insert(line, op%5 == 0)
			case 1:
				c.Lookup(line)
			case 2:
				c.Remove(line)
			}
			if c.Len() > c.CapacityLines() {
				return false
			}
		}
		for _, set := range c.sets {
			if len(set) > c.geom.Assoc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinesSortedAndComplete(t *testing.T) {
	c := tiny()
	ins := []Line{9, 2, 17, 32} // sets 1,2,1,0 — fits in 2 ways per set
	for _, l := range ins {
		c.Insert(l, false)
	}
	got := c.Lines()
	if len(got) != len(ins) {
		t.Fatalf("Lines returned %d entries, want %d", len(got), len(ins))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Lines not sorted: %v", got)
		}
	}
}

func TestSetMapping(t *testing.T) {
	// Lines that differ only above the set-index bits must collide.
	c := tiny() // 4 sets
	c.Insert(0, false)
	c.Insert(4, false)
	c.Insert(8, false) // evicts 0
	if c.Contains(0) {
		t.Fatal("set collision not modeled: line 0 should have been evicted")
	}
	// A line in a different set must not evict anything.
	c2 := tiny()
	c2.Insert(0, false)
	c2.Insert(1, false)
	c2.Insert(2, false)
	c2.Insert(3, false)
	if c2.Len() != 4 {
		t.Fatalf("distinct sets should all be resident, Len=%d", c2.Len())
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0, 64) != 0 || LineOf(63, 64) != 0 || LineOf(64, 64) != 1 {
		t.Fatal("LineOf boundary arithmetic wrong")
	}
	if LineOf(mem.Addr(1<<20), 64) != Line(1<<14) {
		t.Fatal("LineOf scaling wrong")
	}
}

func TestResidentBytesIn(t *testing.T) {
	c := New(topology.CacheGeom{Size: 4096, LineSize: 64, Assoc: 4})
	span := mem.Span{Base: 128, Size: 256} // lines 2..5
	for l := Line(2); l <= 3; l++ {
		c.Insert(l, false)
	}
	if got := c.ResidentBytesIn(span); got != 128 {
		t.Fatalf("ResidentBytesIn = %d, want 128", got)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry accepted")
		}
	}()
	New(topology.CacheGeom{Size: 100, LineSize: 64, Assoc: 2})
}
