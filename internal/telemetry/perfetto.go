package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// Process IDs in the exported timeline. Chrome's trace viewer groups
// tracks by pid, so each facet of the run gets its own process row.
const (
	pidCores   = 1 // per-core run spans, one tid per core
	pidSched   = 2 // scheduler decision instants
	pidSockets = 3 // per-socket bandwidth counters and saturation spans
	pidService = 4 // service-level counters (queue depth, dead time)
)

// ExportConfig parameterizes WriteTrace.
type ExportConfig struct {
	ClockHz        float64       // simulated clock, cycles per second
	SaturationFrac float64       // CoreTime BWSaturationFrac; 0 disables saturation spans
	Events         []trace.Event // scheduler trace to merge, in emission order
}

// jsonEvent is one Chrome trace-event record. Field order here is the
// serialization order, so output bytes are stable.
type jsonEvent struct {
	Name  string  `json:"name"`
	Ph    string  `json:"ph"`
	Ts    float64 `json:"ts"` // microseconds
	Dur   float64 `json:"dur,omitempty"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
	Scope string  `json:"s,omitempty"`
	Args  any     `json:"args,omitempty"`
}

type nameArgs struct {
	Name string `json:"name"`
}

type runArgs struct {
	Busy   float64 `json:"busy"`
	Idle   float64 `json:"idle"`
	Queue  int32   `json:"queue"`
	Placed int32   `json:"placed"`
}

type bwArgs struct {
	Dram float64 `json:"dram"`
	Link float64 `json:"link"`
}

type sigArgs struct {
	Signal     float64 `json:"signal"`
	Saturation float64 `json:"saturation"`
}

type countArgs struct {
	Value float64 `json:"value"`
}

type schedArgs struct {
	Subject string `json:"subject"`
	Arg1    int64  `json:"arg1"`
	Arg2    int64  `json:"arg2"`
}

// WriteTrace renders the held samples, merged with cfg.Events, as a
// chrome://tracing / Perfetto-loadable JSON timeline. Timestamps are
// simulated cycles scaled to microseconds by cfg.ClockHz, so the
// timeline — like the samples beneath it — is a pure function of
// (configuration, seed).
func (s *Sampler) WriteTrace(w io.Writer, cfg ExportConfig) error {
	hz := cfg.ClockHz
	if hz <= 0 {
		hz = 1e9 // fall back to 1 cycle = 1 ns
	}
	us := 1e6 / hz // microseconds per cycle

	evs := make([]jsonEvent, 0, 64+s.n*(s.ncores+2*s.nsocks+2)+len(cfg.Events))

	// Process/thread metadata so the viewer labels tracks.
	meta := func(pid, tid int, name, value string) {
		evs = append(evs, jsonEvent{Name: name, Ph: "M", Pid: pid, Tid: tid,
			Args: nameArgs{Name: value}})
	}
	meta(pidCores, 0, "process_name", "cores")
	meta(pidSched, 0, "process_name", "scheduler")
	meta(pidSockets, 0, "process_name", "sockets")
	meta(pidService, 0, "process_name", "service")
	for c := 0; c < s.ncores; c++ {
		meta(pidCores, c, "thread_name", fmt.Sprintf("core %d", c))
	}
	for k := 0; k < s.nsocks; k++ {
		meta(pidSockets, k, "thread_name", fmt.Sprintf("socket %d", k))
	}

	// Counter names are per (pid, name); bake the socket index in.
	bwName := make([]string, s.nsocks)
	sigName := make([]string, s.nsocks)
	for k := range bwName {
		bwName[k] = fmt.Sprintf("bw queue s%d", k)
		sigName[k] = fmt.Sprintf("bw signal s%d", k)
	}

	for i := 0; i < s.n; i++ {
		sm := s.SampleAt(i)
		start := float64(sm.At-sm.Window) * us
		end := float64(sm.At) * us
		winUS := end - start
		for c := 0; c < s.ncores; c++ {
			if sm.Busy[c] <= 0 {
				continue
			}
			evs = append(evs, jsonEvent{
				Name: "run", Ph: "X", Ts: start, Dur: sm.Busy[c] * winUS,
				Pid: pidCores, Tid: c,
				Args: runArgs{Busy: sm.Busy[c], Idle: sm.Idle[c],
					Queue: sm.Queue[c], Placed: sm.Placed[c]},
			})
		}
		for k := 0; k < s.nsocks; k++ {
			evs = append(evs, jsonEvent{
				Name: bwName[k], Ph: "C", Ts: end, Pid: pidSockets, Tid: k,
				Args: bwArgs{Dram: float64(sm.DramQ[k]), Link: float64(sm.LinkQ[k])},
			})
			sig := sm.SigD[k] + sm.SigL[k]
			evs = append(evs, jsonEvent{
				Name: sigName[k], Ph: "C", Ts: end, Pid: pidSockets, Tid: k,
				Args: countArgs{Value: sig},
			})
			if cfg.SaturationFrac > 0 && sig >= cfg.SaturationFrac {
				evs = append(evs, jsonEvent{
					Name: "bw-saturated", Ph: "X", Ts: start, Dur: winUS,
					Pid: pidSockets, Tid: k,
					Args: sigArgs{Signal: sig, Saturation: cfg.SaturationFrac},
				})
			}
		}
		evs = append(evs, jsonEvent{
			Name: "queue depth", Ph: "C", Ts: end, Pid: pidService, Tid: 0,
			Args: countArgs{Value: float64(sm.Depth)},
		})
		evs = append(evs, jsonEvent{
			Name: "dead frac", Ph: "C", Ts: end, Pid: pidService, Tid: 0,
			Args: countArgs{Value: sm.Dead},
		})
	}

	for _, e := range cfg.Events {
		evs = append(evs, jsonEvent{
			Name: e.Kind.String(), Ph: "i", Ts: float64(e.At) * us,
			Pid: pidSched, Tid: 0, Scope: "p",
			Args: schedArgs{Subject: e.Name, Arg1: e.Arg1, Arg2: e.Arg2},
		})
	}

	// Stable sort: ties keep build order, so equal-timestamp events from
	// different tracks serialize identically on every run.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })

	out := struct {
		DisplayTimeUnit string      `json:"displayTimeUnit"`
		TraceEvents     []jsonEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: evs}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
