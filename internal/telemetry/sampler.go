package telemetry

import (
	"repro/internal/perfctr"
	"repro/internal/sim"
)

// Sample is one decoded row of the sampler's ring: the state of the
// machine over one sampling window. Slices point into the sampler's
// backing arrays and are valid until the next Probe or Reset.
type Sample struct {
	At     sim.Time   // window end (simulated cycles)
	Window sim.Cycles // window length
	Busy   []float64  // per-core busy fraction of the window
	Idle   []float64  // per-core idle fraction of the window
	Dead   float64    // machine-wide dead-time fraction (fast-forwarded idle)
	Queue  []int32    // per-core run-queue depth at sample time
	Placed []int32    // per-core CoreTime placed-object count (zero without CoreTime)
	Depth  int32      // bounded service-queue depth at sample time
	DramQ  []uint64   // per-socket DRAM-controller queueing cycles this window
	LinkQ  []uint64   // per-socket interconnect queueing cycles this window
	SigD   []float64  // per-socket smoothed DRAM signal (CoreTime monitor EWMA)
	SigL   []float64  // per-socket smoothed link signal
}

// SchedFill is the scheduler's contribution to a sample: it fills placed
// with per-core placed-object counts and sigD/sigL with the monitor's
// smoothed per-socket bandwidth signals. Nil when no such scheduler runs.
type SchedFill func(placed []int32, sigD, sigL []float64)

// Sampler records periodic machine snapshots into fixed-capacity ring
// buffers. All storage is allocated at construction; Probe writes one
// row without allocating, so enabling telemetry cannot perturb the
// allocation profile the benchmarks pin.
type Sampler struct {
	interval sim.Cycles
	ncores   int
	nsocks   int
	max      int // ring capacity in samples

	n     int    // rows currently held (≤ max)
	next  int    // ring row the next Probe writes
	total uint64 // samples taken since construction/Reset (≥ n once wrapped)

	// ring storage, row-major: row r's cores live at [r*ncores, (r+1)*ncores).
	at     []sim.Time
	window []sim.Cycles
	busy   []float64
	idle   []float64
	dead   []float64
	depth  []int32
	queue  []int32
	placed []int32
	dramQ  []uint64
	linkQ  []uint64
	sigD   []float64
	sigL   []float64

	// probe scratch
	prev     []perfctr.Counters // last snapshot, for deltas
	snaps    []perfctr.Counters
	deltas   []perfctr.Counters
	socks    []perfctr.Counters
	prevDead sim.Cycles
	lastAt   sim.Time
}

// NewSampler returns a sampler for a machine with ncores cores and
// nsocks sockets, holding the most recent capacity samples (≤0 picks a
// default of 1024).
func NewSampler(interval sim.Cycles, capacity, ncores, nsocks int) *Sampler {
	if capacity <= 0 {
		capacity = 1024
	}
	if nsocks < 1 {
		nsocks = 1
	}
	return &Sampler{
		interval: interval,
		ncores:   ncores,
		nsocks:   nsocks,
		max:      capacity,
		at:       make([]sim.Time, capacity),
		window:   make([]sim.Cycles, capacity),
		busy:     make([]float64, capacity*ncores),
		idle:     make([]float64, capacity*ncores),
		dead:     make([]float64, capacity),
		depth:    make([]int32, capacity),
		queue:    make([]int32, capacity*ncores),
		placed:   make([]int32, capacity*ncores),
		dramQ:    make([]uint64, capacity*nsocks),
		linkQ:    make([]uint64, capacity*nsocks),
		sigD:     make([]float64, capacity*nsocks),
		sigL:     make([]float64, capacity*nsocks),
		prev:     make([]perfctr.Counters, ncores),
		snaps:    make([]perfctr.Counters, 0, ncores),
		deltas:   make([]perfctr.Counters, ncores),
		socks:    make([]perfctr.Counters, nsocks),
	}
}

// Interval returns the sampling period the sampler was built with.
func (s *Sampler) Interval() sim.Cycles { return s.interval }

// NumSamples returns how many samples the ring currently holds.
func (s *Sampler) NumSamples() int {
	if s == nil {
		return 0
	}
	return s.n
}

// TotalSamples returns how many probes have fired since construction or
// the last Reset, including samples the ring has since evicted.
func (s *Sampler) TotalSamples() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Probe records one sample at simulated time now. ctr is the machine's
// counter set, chipOf maps core→socket, dead is the engine's cumulative
// dead time, queueLen reads a core's run-queue depth, depth is the
// bounded service-queue depth (0 without a service), and sched fills the
// scheduler's placement counts and smoothed bandwidth signals (nil
// without CoreTime). The caller must flush in-progress idle accounting
// first so IdleCycles is current.
//
//o2:hotpath
func (s *Sampler) Probe(now sim.Time, ctr *perfctr.Set, chipOf []int, dead sim.Cycles,
	queueLen func(int) int, depth int, sched SchedFill) {
	if now <= s.lastAt {
		return
	}
	win := sim.Cycles(now - s.lastAt)
	s.snaps = ctr.AppendSnapshots(s.snaps[:0])
	for i := range s.snaps {
		s.deltas[i] = s.snaps[i].Sub(s.prev[i])
	}
	perfctr.RollupGroups(s.socks, s.deltas, chipOf)

	row := s.next
	cb := row * s.ncores
	sb := row * s.nsocks
	fw := float64(win)
	s.at[row] = now
	s.window[row] = win
	for i := 0; i < s.ncores; i++ {
		s.busy[cb+i] = float64(s.deltas[i].BusyCycles) / fw
		s.idle[cb+i] = float64(s.deltas[i].IdleCycles) / fw
		s.queue[cb+i] = int32(queueLen(i))
		s.placed[cb+i] = 0
	}
	for k := 0; k < s.nsocks; k++ {
		s.dramQ[sb+k] = s.socks[k].DRAMQueueCycles
		s.linkQ[sb+k] = s.socks[k].LinkQueueCycles
		s.sigD[sb+k] = 0
		s.sigL[sb+k] = 0
	}
	s.dead[row] = float64(dead-s.prevDead) / fw
	s.depth[row] = int32(depth)
	if sched != nil {
		sched(s.placed[cb:cb+s.ncores], s.sigD[sb:sb+s.nsocks], s.sigL[sb:sb+s.nsocks])
	}

	copy(s.prev, s.snaps)
	s.prevDead = dead
	s.lastAt = now
	s.total++
	s.next++
	if s.next == s.max {
		s.next = 0
	}
	if s.n < s.max {
		s.n++
	}
}

// row maps chronological index i (0 = oldest held sample) to its ring row.
func (s *Sampler) row(i int) int {
	if s.n < s.max {
		return i
	}
	r := s.next + i
	if r >= s.max {
		r -= s.max
	}
	return r
}

// SampleAt returns held sample i in chronological order (0 = oldest).
func (s *Sampler) SampleAt(i int) Sample {
	r := s.row(i)
	cb := r * s.ncores
	sb := r * s.nsocks
	return Sample{
		At:     s.at[r],
		Window: s.window[r],
		Busy:   s.busy[cb : cb+s.ncores],
		Idle:   s.idle[cb : cb+s.ncores],
		Dead:   s.dead[r],
		Queue:  s.queue[cb : cb+s.ncores],
		Placed: s.placed[cb : cb+s.ncores],
		Depth:  s.depth[r],
		DramQ:  s.dramQ[sb : sb+s.nsocks],
		LinkQ:  s.linkQ[sb : sb+s.nsocks],
		SigD:   s.sigD[sb : sb+s.nsocks],
		SigL:   s.sigL[sb : sb+s.nsocks],
	}
}

// PeakSignal returns the highest smoothed per-socket bandwidth signal
// (dram + link, the CoreTime monitor's saturation metric) across every
// held sample, and the socket and simulated time where it occurred.
// Zero when no sample carries a signal.
func (s *Sampler) PeakSignal() (sig float64, sock int, at sim.Time) {
	if s == nil {
		return 0, 0, 0
	}
	for i := 0; i < s.n; i++ {
		sm := s.SampleAt(i)
		for k := 0; k < s.nsocks; k++ {
			if v := sm.SigD[k] + sm.SigL[k]; v > sig {
				sig, sock, at = v, k, sm.At
			}
		}
	}
	return sig, sock, at
}

// Reset discards every held sample and re-arms the delta baseline, so a
// reused runtime samples exactly like a freshly built one.
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.n, s.next, s.total = 0, 0, 0
	s.prevDead, s.lastAt = 0, 0
	for i := range s.prev {
		s.prev[i] = perfctr.Counters{}
	}
}
