package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/perfctr"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fakeMachine drives a sampler without a real machine: a counter set
// whose values the test scripts directly.
type fakeMachine struct {
	set    *perfctr.Set
	chipOf []int
}

func newFakeMachine(ncores, perChip int) *fakeMachine {
	chipOf := make([]int, ncores)
	for i := range chipOf {
		chipOf[i] = i / perChip
	}
	return &fakeMachine{set: perfctr.NewSet(ncores), chipOf: chipOf}
}

func noQueue(int) int { return 0 }

func TestProbeWindows(t *testing.T) {
	m := newFakeMachine(4, 2)
	s := NewSampler(100, 8, 4, 2)

	// Window 1: core 0 busy 60/100 cycles, socket 1 accrues DRAM queueing.
	m.set.Core(0).BusyCycles = 60
	m.set.Core(0).IdleCycles = 40
	m.set.Core(2).DRAMQueueCycles = 30
	s.Probe(100, m.set, m.chipOf, 0, noQueue, 3, nil)

	// Window 2: core 0 runs another 10 busy cycles; dead time appears.
	m.set.Core(0).BusyCycles = 70
	s.Probe(200, m.set, m.chipOf, 50, noQueue, 0, nil)

	if s.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d, want 2", s.NumSamples())
	}
	s0 := s.SampleAt(0)
	if s0.At != 100 || s0.Window != 100 {
		t.Fatalf("sample 0 at %d window %d, want 100/100", s0.At, s0.Window)
	}
	if s0.Busy[0] != 0.6 || s0.Idle[0] != 0.4 {
		t.Fatalf("core 0 busy/idle = %v/%v, want 0.6/0.4", s0.Busy[0], s0.Idle[0])
	}
	if s0.DramQ[1] != 30 || s0.DramQ[0] != 0 {
		t.Fatalf("socket DRAM queue deltas = %v, want [0 30]", s0.DramQ)
	}
	if s0.Depth != 3 {
		t.Fatalf("queue depth = %d, want 3", s0.Depth)
	}
	s1 := s.SampleAt(1)
	if s1.Busy[0] != 0.1 {
		t.Fatalf("window 2 core 0 busy = %v, want the 0.1 delta", s1.Busy[0])
	}
	if s1.DramQ[1] != 0 {
		t.Fatalf("window 2 socket 1 DRAM delta = %v, want 0 (no new queueing)", s1.DramQ[1])
	}
	if s1.Dead != 0.5 {
		t.Fatalf("window 2 dead fraction = %v, want 0.5", s1.Dead)
	}
}

func TestProbeSchedFill(t *testing.T) {
	m := newFakeMachine(2, 1)
	s := NewSampler(10, 4, 2, 2)
	fill := func(placed []int32, sigD, sigL []float64) {
		placed[1] = 7
		sigD[0] = 0.25
		sigL[1] = 0.5
	}
	s.Probe(10, m.set, m.chipOf, 0, noQueue, 0, fill)
	sm := s.SampleAt(0)
	if sm.Placed[1] != 7 || sm.SigD[0] != 0.25 || sm.SigL[1] != 0.5 {
		t.Fatalf("sched fill not recorded: %+v", sm)
	}
	sig, sock, at := s.PeakSignal()
	if sig != 0.5 || sock != 1 || at != 10 {
		t.Fatalf("PeakSignal = (%v, %d, %d), want (0.5, 1, 10)", sig, sock, at)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	m := newFakeMachine(1, 1)
	s := NewSampler(10, 3, 1, 1)
	for i := 1; i <= 5; i++ {
		s.Probe(sim.Time(i*10), m.set, m.chipOf, 0, noQueue, i, nil)
	}
	if s.NumSamples() != 3 || s.TotalSamples() != 5 {
		t.Fatalf("held %d / total %d, want 3 / 5", s.NumSamples(), s.TotalSamples())
	}
	for i := 0; i < 3; i++ {
		want := sim.Time((i + 3) * 10)
		if got := s.SampleAt(i).At; got != want {
			t.Fatalf("sample %d at %d, want %d (newest three, oldest first)", i, got, want)
		}
	}
}

func TestZeroWindowProbeIgnored(t *testing.T) {
	m := newFakeMachine(1, 1)
	s := NewSampler(10, 4, 1, 1)
	s.Probe(10, m.set, m.chipOf, 0, noQueue, 0, nil)
	s.Probe(10, m.set, m.chipOf, 0, noQueue, 0, nil) // same instant: no window
	if s.NumSamples() != 1 {
		t.Fatalf("zero-width window must be skipped, held %d", s.NumSamples())
	}
}

func TestResetMatchesFresh(t *testing.T) {
	m := newFakeMachine(2, 1)
	drive := func(s *Sampler) {
		m.set.Core(0).BusyCycles += 5
		s.Probe(10, m.set, m.chipOf, 0, noQueue, 1, nil)
	}
	reused := NewSampler(10, 4, 2, 2)
	drive(reused)
	reused.Reset()
	m.set.Reset()

	fresh := NewSampler(10, 4, 2, 2)
	drive(fresh)
	m.set.Reset()
	// Drive the reused sampler identically after Reset; both must agree.
	drive(reused)

	a, b := fresh.SampleAt(0), reused.SampleAt(0)
	if a.Busy[0] != b.Busy[0] || a.At != b.At || fresh.TotalSamples() != reused.TotalSamples() {
		t.Fatalf("reset sampler diverges from fresh: %+v vs %+v", a, b)
	}
}

func TestWriteTraceSchema(t *testing.T) {
	m := newFakeMachine(2, 1)
	s := NewSampler(100, 8, 2, 2)
	m.set.Core(0).BusyCycles = 50
	m.set.Core(1).DRAMQueueCycles = 10
	fill := func(placed []int32, sigD, sigL []float64) { sigD[1] = 0.9 }
	s.Probe(100, m.set, m.chipOf, 0, noQueue, 2, fill)

	var buf bytes.Buffer
	err := s.WriteTrace(&buf, ExportConfig{
		ClockHz:        1e9,
		SaturationFrac: 0.5, // below the 0.9 signal: must emit a saturation span
		Events: []trace.Event{
			{At: 42, Kind: trace.EvPlace, Name: "obj", Arg1: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	seen := map[string]bool{}
	last := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil || ev.Ph == "" {
			t.Fatalf("event %+v missing a required field", ev)
		}
		if *ev.Ts < last {
			t.Fatalf("timestamps not monotone: %v after %v", *ev.Ts, last)
		}
		last = *ev.Ts
		seen[ev.Ph] = true
		if ev.Name == "bw-saturated" {
			seen["saturated"] = true
		}
		if ev.Name == "place" {
			seen["sched"] = true
		}
	}
	for _, want := range []string{"M", "X", "C", "i", "saturated", "sched"} {
		if !seen[want] {
			t.Fatalf("no %q event in the timeline; phases seen: %v", want, seen)
		}
	}
}
