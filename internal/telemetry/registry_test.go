package telemetry

import (
	"sort"
	"strings"
	"testing"
)

func TestCounterNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5) // must not panic
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	var r *Registry
	if r.Counter("x") != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	r.Gauge("g", func() float64 { return 1 }) // must not panic
	r.ResetCounters()
	if r.Snapshot() != nil {
		t.Fatal("nil registry Snapshot must be nil")
	}
}

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("svc.requests")
	b := r.Counter("svc.requests")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Add(3)
	b.Add(4)
	if got := a.Value(); got != 7 {
		t.Fatalf("shared counter = %d, want 7", got)
	}
	if a.Name() != "svc.requests" {
		t.Fatalf("counter name = %q", a.Name())
	}
}

func TestGaugeReplace(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth", func() float64 { return 1 })
	r.Gauge("depth", func() float64 { return 2 })
	ms := r.Snapshot()
	if len(ms) != 1 {
		t.Fatalf("re-registering a gauge must replace, got %d metrics", len(ms))
	}
	if ms[0].Value != 2 {
		t.Fatalf("gauge reads %v, want the replacement's 2", ms[0].Value)
	}
}

func TestSnapshotSortedAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Gauge("m.middle", func() float64 { return 3 })
	ms := r.Snapshot()
	if !sort.SliceIsSorted(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name }) {
		t.Fatalf("snapshot not sorted: %+v", ms)
	}
	r.ResetCounters()
	for _, m := range r.Snapshot() {
		if strings.HasPrefix(m.Name, "m.") {
			continue // gauges are live state, not reset
		}
		if m.Value != 0 {
			t.Fatalf("counter %s = %v after ResetCounters, want 0", m.Name, m.Value)
		}
	}
}

func TestWriteJSONStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	var s1, s2 strings.Builder
	if err := r.WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("WriteJSON not stable:\n%s\nvs\n%s", s1.String(), s2.String())
	}
	want := "{\n  \"a\": 1,\n  \"b\": 2\n}\n"
	if s1.String() != want {
		t.Fatalf("WriteJSON = %q, want %q", s1.String(), want)
	}
}
