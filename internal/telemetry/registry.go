// Package telemetry is the deterministic observability layer of the
// simulated system: a metrics registry subsystems publish named
// counters and gauges into, a sampler that snapshots per-core and
// per-socket state on the simulated clock into ring-buffered time
// series, and a Chrome trace-event exporter that renders those series —
// merged with the scheduler's decision trace — as a timeline.
//
// Everything here rides the simulation: samples are taken by engine
// events, timestamps are simulated cycles, and no host clock or host
// concurrency is consulted, so telemetry output is a pure function of
// (configuration, seed) like every other result in the repository.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Metric is one named reading of the registry: a counter's current count
// or a gauge's current value.
type Metric struct {
	Name  string
	Value float64
}

// Counter is a monotonically increasing event count owned by one
// subsystem. Counters are cheap enough for per-request paths: Add on a
// nil counter is a no-op, so callers wired to an optional registry never
// need a guard.
type Counter struct {
	name string
	v    uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Add increments the counter by n. Nil counters are safe to Add on.
//
//o2:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// gauge is a pull metric: read is consulted at snapshot time, so gauges
// cost nothing on the paths they observe.
type gauge struct {
	name string
	read func() float64
}

// Registry is the enumerable metrics surface of one runtime. Subsystems
// register at build time; Snapshot and WriteJSON enumerate every metric
// in sorted name order, so the surface is deterministic however
// registration interleaved.
type Registry struct {
	counters []*Counter
	byName   map[string]*Counter
	gauges   []gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Counter)}
}

// Counter returns the counter registered under name, creating it on
// first use. Repeat registrations share one counter, so two services on
// one runtime aggregate rather than collide. A nil registry returns a
// nil counter, which is safe to Add on.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.byName[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.byName[name] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers read under name, replacing any previous gauge with the
// same name (a rebuilt subsystem re-registers over its predecessor).
func (r *Registry) Gauge(name string, read func() float64) {
	if r == nil {
		return
	}
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i].read = read
			return
		}
	}
	r.gauges = append(r.gauges, gauge{name: name, read: read})
}

// ResetCounters zeroes every registered counter, for arena-style reuse:
// a reused runtime's counters must read exactly like a fresh build's.
// Gauges need no reset — they read live state.
func (r *Registry) ResetCounters() {
	if r == nil {
		return
	}
	for _, c := range r.counters {
		c.v = 0
	}
}

// Snapshot returns every registered metric, sorted by name.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for _, c := range r.counters {
		out = append(out, Metric{Name: c.name, Value: float64(c.v)})
	}
	for _, g := range r.gauges {
		out = append(out, Metric{Name: g.name, Value: g.read()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON dumps the registry as one JSON object, keys sorted, stable
// bytes for equal state.
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.Snapshot()
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, m := range ms {
		sep := ","
		if i == len(ms)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %q: %s%s\n",
			m.Name, strconv.FormatFloat(m.Value, 'g', -1, 64), sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
