// Package perfctr models the per-core hardware event counters that
// CoreTime's runtime monitor reads (paper §4, "Runtime monitoring").
//
// The paper uses AMD event counters to count cache misses between a pair of
// annotations, and per-core idle cycles, DRAM loads, and L2 loads to detect
// overloaded cores. The simulated machine increments exactly these classes
// of events on its access path, and the monitor consumes them through
// snapshots and deltas, never by guessing at simulator internals — keeping
// the scheduler honest about what real hardware would expose.
package perfctr

import "fmt"

// Counters is the event-counter file of one core. All values are
// monotonically increasing event counts except the cycle accounts.
type Counters struct {
	Loads  uint64 // load micro-ops issued
	Stores uint64 // store micro-ops issued

	L1Miss uint64 // loads/stores that missed L1
	L2Miss uint64 // ... and missed L2
	L3Miss uint64 // ... and missed the chip's L3

	L2Loads       uint64 // accesses served by the local L2
	L3Loads       uint64 // accesses served by the chip's L3
	RemoteFetches uint64 // lines sourced from another core's/chip's cache
	DRAMLoads     uint64 // lines sourced from DRAM

	Invalidations uint64 // coherence invalidations this core caused
	Evictions     uint64 // lines this core's caches evicted

	BusyCycles  uint64 // cycles spent executing operations
	IdleCycles  uint64 // cycles with no runnable thread
	StallCycles uint64 // cycles stalled on memory (subset of BusyCycles)
	QueueWait   uint64 // cycles threads spent waiting to run on this core

	// DRAMQueueCycles and LinkQueueCycles split out the bandwidth-stall
	// component of StallCycles: queueing delay this core's fetches accrued
	// at saturated memory controllers and interconnect ports. On machines
	// that never saturate they stay zero; at scale they are the signal
	// that contention, not distance, is the binding cost.
	DRAMQueueCycles uint64 // memory-controller queueing delay charged to this core
	LinkQueueCycles uint64 // cross-socket interconnect queueing delay charged to this core

	MigrationsIn  uint64 // threads that migrated to this core
	MigrationsOut uint64 // threads that migrated away
}

// Misses returns the total cache-miss count the paper's monitor attributes
// to an operation: accesses that left the local L1/L2 pair (the per-core
// private hierarchy) and had to be served by L3, a remote cache, or DRAM.
func (c Counters) Misses() uint64 { return c.L2Miss }

// Sub returns the element-wise difference c - o, used to compute the events
// that occurred between two snapshots (e.g. between ct_start and ct_end).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Loads:           c.Loads - o.Loads,
		Stores:          c.Stores - o.Stores,
		L1Miss:          c.L1Miss - o.L1Miss,
		L2Miss:          c.L2Miss - o.L2Miss,
		L3Miss:          c.L3Miss - o.L3Miss,
		L2Loads:         c.L2Loads - o.L2Loads,
		L3Loads:         c.L3Loads - o.L3Loads,
		RemoteFetches:   c.RemoteFetches - o.RemoteFetches,
		DRAMLoads:       c.DRAMLoads - o.DRAMLoads,
		Invalidations:   c.Invalidations - o.Invalidations,
		Evictions:       c.Evictions - o.Evictions,
		BusyCycles:      c.BusyCycles - o.BusyCycles,
		IdleCycles:      c.IdleCycles - o.IdleCycles,
		StallCycles:     c.StallCycles - o.StallCycles,
		QueueWait:       c.QueueWait - o.QueueWait,
		DRAMQueueCycles: c.DRAMQueueCycles - o.DRAMQueueCycles,
		LinkQueueCycles: c.LinkQueueCycles - o.LinkQueueCycles,
		MigrationsIn:    c.MigrationsIn - o.MigrationsIn,
		MigrationsOut:   c.MigrationsOut - o.MigrationsOut,
	}
}

// Add returns the element-wise sum, for machine-wide totals.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Loads:           c.Loads + o.Loads,
		Stores:          c.Stores + o.Stores,
		L1Miss:          c.L1Miss + o.L1Miss,
		L2Miss:          c.L2Miss + o.L2Miss,
		L3Miss:          c.L3Miss + o.L3Miss,
		L2Loads:         c.L2Loads + o.L2Loads,
		L3Loads:         c.L3Loads + o.L3Loads,
		RemoteFetches:   c.RemoteFetches + o.RemoteFetches,
		DRAMLoads:       c.DRAMLoads + o.DRAMLoads,
		Invalidations:   c.Invalidations + o.Invalidations,
		Evictions:       c.Evictions + o.Evictions,
		BusyCycles:      c.BusyCycles + o.BusyCycles,
		IdleCycles:      c.IdleCycles + o.IdleCycles,
		StallCycles:     c.StallCycles + o.StallCycles,
		QueueWait:       c.QueueWait + o.QueueWait,
		DRAMQueueCycles: c.DRAMQueueCycles + o.DRAMQueueCycles,
		LinkQueueCycles: c.LinkQueueCycles + o.LinkQueueCycles,
		MigrationsIn:    c.MigrationsIn + o.MigrationsIn,
		MigrationsOut:   c.MigrationsOut + o.MigrationsOut,
	}
}

// String summarises the counters for reports.
func (c Counters) String() string {
	return fmt.Sprintf("loads=%d stores=%d l2miss=%d dram=%d remote=%d busy=%d idle=%d",
		c.Loads, c.Stores, c.L2Miss, c.DRAMLoads, c.RemoteFetches, c.BusyCycles, c.IdleCycles)
}

// RollupGroups sums per-core counter files into per-group totals: core i's
// counters are added into dst[groupOf[i]]. The caller supplies dst sized to
// the group count (it is zeroed first) and a core→group table — typically
// topology.Config.ChipTable, which makes this the per-socket rollup the
// bandwidth-aware monitor classifies saturation with. dst is returned for
// chaining; the call allocates nothing.
func RollupGroups(dst, cores []Counters, groupOf []int) []Counters {
	for i := range dst {
		dst[i] = Counters{}
	}
	for i := range cores {
		g := groupOf[i]
		dst[g] = dst[g].Add(cores[i])
	}
	return dst
}

// Set is the counter file of a whole machine: one Counters per core.
type Set struct {
	cores []Counters
}

// NewSet returns counters for n cores.
func NewSet(n int) *Set {
	return &Set{cores: make([]Counters, n)}
}

// NumCores returns the number of per-core counter files.
func (s *Set) NumCores() int { return len(s.cores) }

// Core returns a mutable pointer to core i's counters; the machine model
// increments through it.
func (s *Set) Core(i int) *Counters { return &s.cores[i] }

// Snapshot returns a copy of core i's counters, the read primitive monitors
// use (reading hardware counters is a snapshot, not a live view).
func (s *Set) Snapshot(i int) Counters { return s.cores[i] }

// SnapshotAll copies every core's counters.
func (s *Set) SnapshotAll() []Counters {
	return s.AppendSnapshots(make([]Counters, 0, len(s.cores)))
}

// AppendSnapshots appends a copy of every core's counters to dst and
// returns the extended slice — the allocation-free sibling of SnapshotAll
// for monitors that sample every rebalance interval with a reusable
// scratch buffer.
func (s *Set) AppendSnapshots(dst []Counters) []Counters {
	return append(dst, s.cores...)
}

// Total sums all cores.
func (s *Set) Total() Counters {
	var t Counters
	for i := range s.cores {
		t = t.Add(s.cores[i])
	}
	return t
}

// Reset zeroes every counter (between benchmark phases).
func (s *Set) Reset() {
	for i := range s.cores {
		s.cores[i] = Counters{}
	}
}
