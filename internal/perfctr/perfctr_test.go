package perfctr

import (
	"testing"
	"testing/quick"
)

func TestSnapshotIsolation(t *testing.T) {
	s := NewSet(4)
	s.Core(2).L2Miss = 10
	snap := s.Snapshot(2)
	s.Core(2).L2Miss = 99
	if snap.L2Miss != 10 {
		t.Fatal("snapshot must not alias live counters")
	}
}

func TestSubDelta(t *testing.T) {
	s := NewSet(1)
	before := s.Snapshot(0)
	s.Core(0).L2Miss += 7
	s.Core(0).DRAMLoads += 3
	s.Core(0).BusyCycles += 1000
	delta := s.Snapshot(0).Sub(before)
	if delta.L2Miss != 7 || delta.DRAMLoads != 3 || delta.BusyCycles != 1000 {
		t.Fatalf("delta = %+v", delta)
	}
	if delta.Misses() != 7 {
		t.Fatalf("Misses = %d, want 7", delta.Misses())
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		x := Counters{Loads: uint64(a), L2Miss: uint64(a) / 2, DRAMLoads: uint64(a) / 3,
			IdleCycles: uint64(a) * 2, MigrationsIn: uint64(a) % 7}
		y := Counters{Loads: uint64(b), L2Miss: uint64(b) / 2, DRAMLoads: uint64(b) / 3,
			IdleCycles: uint64(b) * 2, MigrationsIn: uint64(b) % 7}
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueCycleDeltaRoundTrip(t *testing.T) {
	// The PR 8 bandwidth-stall counters must ride Sub/Add like every
	// other field: snapshot deltas isolate a window's queueing delay, and
	// Add(Sub) round-trips exactly.
	s := NewSet(1)
	s.Core(0).DRAMQueueCycles = 100
	s.Core(0).LinkQueueCycles = 40
	before := s.Snapshot(0)
	s.Core(0).DRAMQueueCycles += 7000
	s.Core(0).LinkQueueCycles += 123
	delta := s.Snapshot(0).Sub(before)
	if delta.DRAMQueueCycles != 7000 || delta.LinkQueueCycles != 123 {
		t.Fatalf("queue-cycle delta = %+v", delta)
	}
	if got := before.Add(delta); got != s.Snapshot(0) {
		t.Fatalf("Add(Sub) round trip drifted: %+v vs %+v", got, s.Snapshot(0))
	}

	f := func(a, b uint32) bool {
		x := Counters{DRAMQueueCycles: uint64(a), LinkQueueCycles: uint64(a) * 3,
			BusyCycles: uint64(a) + 1}
		y := Counters{DRAMQueueCycles: uint64(b), LinkQueueCycles: uint64(b) * 3,
			BusyCycles: uint64(b) + 1}
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubWrapsAroundSafely(t *testing.T) {
	// Counters are uint64 and Sub is plain two's-complement subtraction,
	// so a counter that wrapped past 2^64 between snapshots still yields
	// the true event count — the standard wraparound-safe delta idiom real
	// PMU readers rely on.
	before := Counters{DRAMQueueCycles: ^uint64(0) - 5, LinkQueueCycles: ^uint64(0)}
	after := before
	after.DRAMQueueCycles += 10 // wraps to 4
	after.LinkQueueCycles += 3  // wraps to 2
	d := after.Sub(before)
	if d.DRAMQueueCycles != 10 || d.LinkQueueCycles != 3 {
		t.Fatalf("wrapped delta = %+v, want 10/3", d)
	}
}

func TestRollupGroups(t *testing.T) {
	// Four cores on two sockets (cores 0,1 → socket 0; cores 2,3 →
	// socket 1): rollup sums per-core files into per-socket totals.
	s := NewSet(4)
	for i := 0; i < 4; i++ {
		s.Core(i).BusyCycles = uint64(100 * (i + 1))
		s.Core(i).DRAMQueueCycles = uint64(10 * (i + 1))
		s.Core(i).LinkQueueCycles = uint64(i)
	}
	groupOf := []int{0, 0, 1, 1}
	dst := make([]Counters, 2)
	dst[0].Loads = 999 // stale scratch: RollupGroups must zero it
	got := RollupGroups(dst, s.SnapshotAll(), groupOf)
	if &got[0] != &dst[0] {
		t.Fatal("RollupGroups must reuse the caller's dst")
	}
	if got[0].Loads != 0 {
		t.Fatal("RollupGroups left stale scratch in dst")
	}
	if got[0].BusyCycles != 300 || got[1].BusyCycles != 700 {
		t.Fatalf("busy rollup = %d/%d, want 300/700", got[0].BusyCycles, got[1].BusyCycles)
	}
	if got[0].DRAMQueueCycles != 30 || got[1].DRAMQueueCycles != 70 {
		t.Fatalf("dram-queue rollup = %+v", got)
	}
	if got[0].LinkQueueCycles != 1 || got[1].LinkQueueCycles != 5 {
		t.Fatalf("link-queue rollup = %+v", got)
	}
}

func TestRollupGroupsDeltaComposition(t *testing.T) {
	// Rollup of deltas equals delta of rollups: the monitor may aggregate
	// either before or after subtracting snapshots.
	groupOf := []int{0, 1, 0}
	a := []Counters{{DRAMQueueCycles: 5}, {DRAMQueueCycles: 7}, {LinkQueueCycles: 2}}
	b := []Counters{{DRAMQueueCycles: 11}, {DRAMQueueCycles: 7}, {LinkQueueCycles: 9}}
	deltas := make([]Counters, 3)
	for i := range deltas {
		deltas[i] = b[i].Sub(a[i])
	}
	viaDeltas := RollupGroups(make([]Counters, 2), deltas, groupOf)
	ra := RollupGroups(make([]Counters, 2), a, groupOf)
	rb := RollupGroups(make([]Counters, 2), b, groupOf)
	for g := 0; g < 2; g++ {
		if viaDeltas[g] != rb[g].Sub(ra[g]) {
			t.Fatalf("group %d: rollup/delta order matters: %+v vs %+v",
				g, viaDeltas[g], rb[g].Sub(ra[g]))
		}
	}
}

func TestTotal(t *testing.T) {
	s := NewSet(3)
	for i := 0; i < 3; i++ {
		s.Core(i).Loads = uint64(i + 1)
	}
	if got := s.Total().Loads; got != 6 {
		t.Fatalf("Total.Loads = %d, want 6", got)
	}
}

func TestReset(t *testing.T) {
	s := NewSet(2)
	s.Core(0).Stores = 5
	s.Core(1).IdleCycles = 9
	s.Reset()
	if s.Total() != (Counters{}) {
		t.Fatal("Reset left residue")
	}
}

func TestSnapshotAll(t *testing.T) {
	s := NewSet(2)
	s.Core(1).RemoteFetches = 4
	all := s.SnapshotAll()
	if len(all) != 2 || all[1].RemoteFetches != 4 {
		t.Fatalf("SnapshotAll = %+v", all)
	}
	all[1].RemoteFetches = 100
	if s.Snapshot(1).RemoteFetches != 4 {
		t.Fatal("SnapshotAll must copy")
	}
}
