package perfctr

import (
	"testing"
	"testing/quick"
)

func TestSnapshotIsolation(t *testing.T) {
	s := NewSet(4)
	s.Core(2).L2Miss = 10
	snap := s.Snapshot(2)
	s.Core(2).L2Miss = 99
	if snap.L2Miss != 10 {
		t.Fatal("snapshot must not alias live counters")
	}
}

func TestSubDelta(t *testing.T) {
	s := NewSet(1)
	before := s.Snapshot(0)
	s.Core(0).L2Miss += 7
	s.Core(0).DRAMLoads += 3
	s.Core(0).BusyCycles += 1000
	delta := s.Snapshot(0).Sub(before)
	if delta.L2Miss != 7 || delta.DRAMLoads != 3 || delta.BusyCycles != 1000 {
		t.Fatalf("delta = %+v", delta)
	}
	if delta.Misses() != 7 {
		t.Fatalf("Misses = %d, want 7", delta.Misses())
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		x := Counters{Loads: uint64(a), L2Miss: uint64(a) / 2, DRAMLoads: uint64(a) / 3,
			IdleCycles: uint64(a) * 2, MigrationsIn: uint64(a) % 7}
		y := Counters{Loads: uint64(b), L2Miss: uint64(b) / 2, DRAMLoads: uint64(b) / 3,
			IdleCycles: uint64(b) * 2, MigrationsIn: uint64(b) % 7}
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotal(t *testing.T) {
	s := NewSet(3)
	for i := 0; i < 3; i++ {
		s.Core(i).Loads = uint64(i + 1)
	}
	if got := s.Total().Loads; got != 6 {
		t.Fatalf("Total.Loads = %d, want 6", got)
	}
}

func TestReset(t *testing.T) {
	s := NewSet(2)
	s.Core(0).Stores = 5
	s.Core(1).IdleCycles = 9
	s.Reset()
	if s.Total() != (Counters{}) {
		t.Fatal("Reset left residue")
	}
}

func TestSnapshotAll(t *testing.T) {
	s := NewSet(2)
	s.Core(1).RemoteFetches = 4
	all := s.SnapshotAll()
	if len(all) != 2 || all[1].RemoteFetches != 4 {
		t.Fatalf("SnapshotAll = %+v", all)
	}
	all[1].RemoteFetches = 100
	if s.Snapshot(1).RemoteFetches != 4 {
		t.Fatal("SnapshotAll must copy")
	}
}
