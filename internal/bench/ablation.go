package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// AblationRow is one configuration of an ablation experiment.
type AblationRow struct {
	Config string
	KOps   float64 // thousands of operations per second
	Note   string
}

// WriteAblation formats ablation rows.
func WriteAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-32s %12s  %s\n", "config", "kops/sec", "notes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %12.0f  %s\n", r.Config, r.KOps, r.Note)
	}
}

// objEnv is a small non-filesystem environment for ablations that need
// raw objects: a Tiny8 machine with count objects of size bytes each.
type objEnv struct {
	eng  *sim.Engine
	m    *machine.Machine
	sys  *exec.System
	objs []*mem.Object
}

func newObjEnv(cfg topology.Config, count int, size uint64) (*objEnv, error) {
	eng := sim.NewEngine()
	m, err := machine.New(cfg, int(size)*count*2+(8<<20))
	if err != nil {
		return nil, err
	}
	sys := exec.NewSystem(eng, m, exec.DefaultOptions())
	e := &objEnv{eng: eng, m: m, sys: sys}
	for i := 0; i < count; i++ {
		obj, err := m.Image().AllocObject(fmt.Sprintf("obj%03d", i), size)
		if err != nil {
			return nil, err
		}
		e.objs = append(e.objs, obj)
	}
	return e, nil
}

// runObjOps drives threads that repeatedly run `op` and returns operations
// per simulated second (in thousands).
func (e *objEnv) runObjOps(threads int, warmup, measure sim.Cycles, seed uint64,
	op func(t *exec.Thread, rng *stats.RNG, measured *uint64)) float64 {
	homes := sched.RoundRobin(threads, e.m.Config().NumCores())
	measureStart := e.eng.Now() + warmup
	deadline := measureStart + measure
	counts := make([]uint64, threads)
	master := stats.NewRNG(seed)
	for i := 0; i < threads; i++ {
		i := i
		rng := master.Split()
		e.sys.Go(fmt.Sprintf("w%d", i), homes[i], func(t *exec.Thread) {
			for t.Now() < deadline {
				var measured uint64
				op(t, rng, &measured)
				if t.Now() >= measureStart && t.Now() <= deadline {
					counts[i] += measured
				}
				t.Yield()
			}
		})
	}
	e.eng.Run(0)
	var total uint64
	for _, c := range counts {
		total += c
	}
	seconds := float64(measure) / e.m.Config().ClockHz
	return float64(total) / seconds / 1000
}

const (
	ablWarmup  sim.Cycles = 1_500_000
	ablMeasure sim.Cycles = 4_000_000
)

// AblationClustering measures §6.2 object clustering: every operation uses
// a pair of objects together ("if one thread or operation uses two objects
// simultaneously then it might be best to place both objects in the same
// cache"). With clustering the pair shares a core (one migration per
// operation); without, the partner object is usually remote.
func AblationClustering() ([]AblationRow, error) {
	const pairs = 6
	const size = 8 << 10

	run := func(clustering bool) (float64, error) {
		env, err := newObjEnv(topology.Tiny8(), 2*pairs, size)
		if err != nil {
			return 0, err
		}
		opts := core.DefaultOptions()
		opts.EnableClustering = clustering
		rt := core.New(env.sys, opts)
		for i := 0; i < pairs; i++ {
			rt.PlaceTogether(env.objs[2*i].Base, env.objs[2*i+1].Base)
		}
		kops := env.runObjOps(8, ablWarmup, ablMeasure, 7, func(t *exec.Thread, rng *stats.RNG, n *uint64) {
			i := rng.Intn(pairs)
			a, b := env.objs[2*i], env.objs[2*i+1]
			// Nested annotations: the operation on a uses b inside it,
			// the co-use pattern clustering targets. Without
			// clustering the inner annotation migrates to b's core
			// and back on every operation; with it, b shares a's
			// core and the inner annotation is free.
			rt.OpStart(t, a.Base)
			t.LoadCompute(a.Base, int(a.Size), 0.05)
			rt.OpStart(t, b.Base)
			t.LoadCompute(b.Base, int(b.Size), 0.05)
			rt.OpEnd(t)
			rt.OpEnd(t)
			*n = 1
		})
		return kops, nil
	}

	off, err := run(false)
	if err != nil {
		return nil, err
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Config: "clustering off", KOps: off, Note: "partner object remote"},
		{Config: "clustering on", KOps: on, Note: fmt.Sprintf("%.2fx", on/off)},
	}, nil
}

// AblationReplication measures §6.2 read-only replication: one hot
// read-only object serializes every operation on a single core unless it
// is replicated per chip.
func AblationReplication() ([]AblationRow, error) {
	const size = 8 << 10

	run := func(replication bool) (float64, error) {
		env, err := newObjEnv(topology.Tiny8(), 1, size)
		if err != nil {
			return 0, err
		}
		opts := core.DefaultOptions()
		opts.EnableReplication = replication
		opts.ReplicateMinOps = 32
		rt := core.New(env.sys, opts)
		hot := env.objs[0]
		kops := env.runObjOps(8, ablWarmup, ablMeasure, 11, func(t *exec.Thread, rng *stats.RNG, n *uint64) {
			rt.OpStartReadOnly(t, hot.Base)
			t.LoadCompute(hot.Base, int(hot.Size), 0.1)
			rt.OpEnd(t)
			*n = 1
		})
		return kops, nil
	}

	off, err := run(false)
	if err != nil {
		return nil, err
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Config: "replication off", KOps: off, Note: "all ops funnel to one core"},
		{Config: "replication on", KOps: on, Note: fmt.Sprintf("one replica per chip, %.2fx", on/off)},
	}, nil
}

// AblationReplacement measures the §6.2 over-capacity policy: the working
// set exceeds total on-chip memory, with a hot subset. First-fit keeps
// whichever objects crossed the miss threshold first; frequency-based
// replacement keeps the hot ones.
func AblationReplacement() ([]AblationRow, error) {
	spec := workload.DirSpec{Dirs: 32, EntriesPerDir: 512} // 512 KB on a 256 KB machine

	run := func(policy core.ReplacementPolicy) (float64, error) {
		env, err := workload.BuildEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
		if err != nil {
			return 0, err
		}
		opts := core.DefaultOptions()
		opts.Replacement = policy
		// Decay and the DRAM-ineffectiveness unplacer would eventually
		// free the budget on their own; disable both to isolate the
		// replacement policy.
		opts.DecayWindow = 0
		opts.UnplaceDRAMFrac = 0
		rt := core.New(env.Sys, opts)
		p := workload.DefaultRunParams()
		p.Threads = 8
		p.Warmup = ablWarmup
		p.Measure = ablMeasure
		// Adversarial schedule: uniform traffic during warmup fills the
		// budget with arbitrary directories; then the distribution
		// shifts to a hot subset. First-fit is stuck with its early
		// picks; frequency-based replacement revises them.
		p.Popularity = workload.UniformThenHotspot
		p.PhaseShiftAt = ablWarmup
		p.HotDirs = 6
		p.HotFraction = 0.9
		res := workload.RunDirLookup(env, rt, p)
		return res.KResPerSec, nil
	}

	ff, err := run(core.ReplaceNone)
	if err != nil {
		return nil, err
	}
	fr, err := run(core.ReplaceFrequency)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Config: "first-fit (paper base)", KOps: ff, Note: "placement is first-come"},
		{Config: "frequency replacement", KOps: fr, Note: fmt.Sprintf("hot objects win space, %.2fx", fr/ff)},
	}, nil
}

// AblationMigrationCost sweeps the fixed CPU cost of migration (§6.1: the
// AMD machine's "high cost to migrate a thread" limits CoreTime; hardware
// active messages "could reduce the overhead of migration").
func AblationMigrationCost() ([]AblationRow, error) {
	spec := workload.DirSpec{Dirs: 8, EntriesPerDir: 512}
	costs := []sim.Cycles{0, 250, 550, 1500, 4000, 8000}

	p := workload.DefaultRunParams()
	p.Threads = 8
	p.Warmup = ablWarmup
	p.Measure = ablMeasure

	// Baseline reference (no migrations at all).
	envB, err := workload.BuildEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
	if err != nil {
		return nil, err
	}
	base := workload.RunDirLookup(envB, sched.ThreadScheduler{}, p)
	rows := []AblationRow{{Config: "thread scheduler (reference)", KOps: base.KResPerSec}}

	for _, c := range costs {
		eopts := exec.DefaultOptions()
		eopts.MigrationCPUCost = c
		env, err := workload.BuildEnv(topology.Tiny8(), eopts, spec)
		if err != nil {
			return nil, err
		}
		rt := core.New(env.Sys, core.DefaultOptions())
		res := workload.RunDirLookup(env, rt, p)
		note := ""
		if c == 0 {
			note = "≈ hardware active messages"
		}
		rows = append(rows, AblationRow{
			Config: fmt.Sprintf("coretime, migr CPU cost %d", c),
			KOps:   res.KResPerSec,
			Note:   note,
		})
	}
	return rows, nil
}

// AblationPathClustering measures clustering on the real file system:
// two-level path resolutions (/TOP/SUB/FILE) are nested operations over a
// top directory and one of its subdirectories. Clustering each top with
// its subdirectories keeps whole resolutions on one core (§6.2: "if one
// thread or operation uses two objects simultaneously then it might be
// best to place both objects in the same cache").
func AblationPathClustering() ([]AblationRow, error) {
	spec := workload.PathSpec{TopDirs: 4, SubsPerTop: 6, FilesPerSub: 128}
	p := workload.DefaultRunParams()
	p.Threads = 8
	p.Warmup = ablWarmup
	p.Measure = ablMeasure

	// Baseline reference.
	envB, err := workload.BuildPathEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
	if err != nil {
		return nil, err
	}
	base := workload.RunPathLookup(envB, sched.ThreadScheduler{}, p)

	run := func(clustering bool) (workload.PathResult, error) {
		env, err := workload.BuildPathEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
		if err != nil {
			return workload.PathResult{}, err
		}
		opts := core.DefaultOptions()
		opts.EnableClustering = clustering
		opts.MissThreshold = 4 // subdirectory scans are small
		rt := core.New(env.Sys, opts)
		for _, hint := range env.ClusterHints() {
			rt.PlaceTogether(hint...)
		}
		return workload.RunPathLookup(env, rt, p), nil
	}
	flat, err := run(false)
	if err != nil {
		return nil, err
	}
	clustered, err := run(true)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Config: "thread scheduler (reference)", KOps: base.KResPerSec},
		{Config: "coretime, clustering off", KOps: flat.KResPerSec,
			Note: fmt.Sprintf("%d migrations", flat.Migrations)},
		{Config: "coretime, clustering on", KOps: clustered.KResPerSec,
			Note: fmt.Sprintf("%d migrations, %.2fx over unclustered",
				clustered.Migrations, clustered.KResPerSec/flat.KResPerSec)},
	}, nil
}

// AblationSingleThread reproduces the §1 claim that even single-threaded
// applications can benefit: "a single threaded application might have a
// working set larger than a single core's cache capacity. The application
// would run faster with more cache, and the processor may well have spare
// cache in other cores, but if the application stays on one core it can
// use only a small fraction of the total cache."
//
// One thread scans objects whose total exceeds a single core's budget but
// fits the machine. The baseline pins the thread (implicitly: it never
// migrates); CoreTime partitions the objects across all caches and walks
// the thread among them.
func AblationSingleThread() ([]AblationRow, error) {
	// 12 × 16 KB = 192 KB: far beyond one Tiny8 core's ~29 KB budget
	// (L2 + L3 share), comfortably inside the machine's 256 KB total.
	const objects = 12
	const size = 16 << 10

	run := func(coretime bool) (float64, error) {
		env, err := newObjEnv(topology.Tiny8(), objects, size)
		if err != nil {
			return 0, err
		}
		var ann sched.Annotator = sched.ThreadScheduler{}
		if coretime {
			ann = core.New(env.sys, core.DefaultOptions())
		}
		kops := env.runObjOps(1, ablWarmup, ablMeasure, 21, func(t *exec.Thread, rng *stats.RNG, n *uint64) {
			obj := env.objs[rng.Intn(objects)]
			ann.OpStart(t, obj.Base)
			t.LoadCompute(obj.Base, int(obj.Size), 0.05)
			ann.OpEnd(t)
			*n = 1
		})
		return kops, nil
	}
	base, err := run(false)
	if err != nil {
		return nil, err
	}
	ct, err := run(true)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Config: "single thread, pinned", KOps: base,
			Note: "working set ≫ one core's caches"},
		{Config: "single thread, coretime", KOps: ct,
			Note: fmt.Sprintf("thread walks the placed objects, %.2fx", ct/base)},
	}, nil
}

// AblationHeterogeneous runs the workload on a machine where half the
// cores run at half speed (§6.1: "Future processors might have
// heterogeneous cores, which would complicate the design of a O2
// scheduler").
func AblationHeterogeneous() ([]AblationRow, error) {
	spec := workload.DirSpec{Dirs: 8, EntriesPerDir: 512}
	cfg := topology.Tiny8()
	cfg.CoreSpeed = []float64{1, 2, 1, 2, 1, 2, 1, 2} // odd cores half speed

	p := workload.DefaultRunParams()
	p.Threads = 8
	p.Warmup = ablWarmup
	p.Measure = ablMeasure

	envB, err := workload.BuildEnv(cfg, exec.DefaultOptions(), spec)
	if err != nil {
		return nil, err
	}
	base := workload.RunDirLookup(envB, sched.ThreadScheduler{}, p)

	envCT, err := workload.BuildEnv(cfg, exec.DefaultOptions(), spec)
	if err != nil {
		return nil, err
	}
	ct := workload.RunDirLookup(envCT, core.New(envCT.Sys, core.DefaultOptions()), p)

	return []AblationRow{
		{Config: "hetero, thread scheduler", KOps: base.KResPerSec},
		{Config: "hetero, coretime", KOps: ct.KResPerSec,
			Note: fmt.Sprintf("%.2fx; packer is speed-unaware (open problem per §6.1)", ct.KResPerSec/base.KResPerSec)},
	}, nil
}
