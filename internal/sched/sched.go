// Package sched defines the scheduling interface workloads program
// against, plus the traditional thread scheduler the paper compares
// CoreTime to.
//
// A workload brackets every operation on a shared object with
// OpStart/OpEnd. Under the baseline ThreadScheduler those calls do nothing:
// threads stay on their home cores and the hardware caches fill implicitly,
// exactly the "without CoreTime" configuration in the paper's Figure 4.
// Under CoreTime (internal/core) the same calls drive object placement and
// thread migration.
package sched

import (
	"repro/internal/exec"
	"repro/internal/mem"
)

// Annotator receives operation boundaries. Implementations must be called
// in matched pairs per thread; operations may nest.
type Annotator interface {
	// OpStart marks the beginning of an operation on the object
	// identified by addr (the paper's ct_start). The thread may be
	// running on a different core when OpStart returns.
	OpStart(t *exec.Thread, addr mem.Addr)
	// OpEnd marks the end of the innermost operation (the paper's
	// ct_end).
	OpEnd(t *exec.Thread)
	// Name identifies the scheduler in reports.
	Name() string
}

// ReadOnlyAnnotator is implemented by schedulers that can exploit the
// knowledge that an operation never writes its object (the replication
// extension, paper §6.2). Workloads use StartRO when available.
type ReadOnlyAnnotator interface {
	Annotator
	// OpStartReadOnly is OpStart with a promise that the operation will
	// not modify the object.
	OpStartReadOnly(t *exec.Thread, addr mem.Addr)
}

// OpStartRO dispatches to OpStartReadOnly when the annotator supports it,
// else to plain OpStart.
func OpStartRO(a Annotator, t *exec.Thread, addr mem.Addr) {
	if ro, ok := a.(ReadOnlyAnnotator); ok {
		ro.OpStartReadOnly(t, addr)
		return
	}
	a.OpStart(t, addr)
}

// ThreadScheduler is the traditional scheduler: each thread is pinned to
// its home core and objects are never scheduled. It is the paper's
// baseline ("Schedulers in today's operating systems have the primary goal
// of keeping all cores busy", §1).
type ThreadScheduler struct{}

// OpStart is a no-op: data moves to threads implicitly via the caches.
func (ThreadScheduler) OpStart(t *exec.Thread, addr mem.Addr) {}

// OpEnd is a no-op.
func (ThreadScheduler) OpEnd(t *exec.Thread) {}

// Name implements Annotator.
func (ThreadScheduler) Name() string { return "thread-scheduler" }

// RoundRobin returns the home core for each of n threads spread across
// cores round-robin, the placement a conventional scheduler would pick for
// a CPU-bound pool.
func RoundRobin(threads, cores int) []int {
	homes := make([]int, threads)
	for i := range homes {
		homes[i] = i % cores
	}
	return homes
}
