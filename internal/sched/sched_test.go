package sched

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestRoundRobinCoversAllCores(t *testing.T) {
	homes := RoundRobin(16, 16)
	seen := map[int]bool{}
	for _, h := range homes {
		seen[h] = true
	}
	if len(seen) != 16 {
		t.Fatalf("16 threads on 16 cores used only %d cores", len(seen))
	}
}

func TestRoundRobinWrapsAndBounds(t *testing.T) {
	f := func(threads, cores uint8) bool {
		nt, nc := int(threads%64)+1, int(cores%16)+1
		homes := RoundRobin(nt, nc)
		if len(homes) != nt {
			return false
		}
		counts := make([]int, nc)
		for i, h := range homes {
			if h < 0 || h >= nc {
				return false
			}
			if h != i%nc {
				return false
			}
			counts[h]++
		}
		// Balance: max and min differ by at most one.
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreadSchedulerIsInert(t *testing.T) {
	// The baseline annotator must not move threads or cost cycles.
	eng := sim.NewEngine()
	m, err := machine.New(topology.Tiny8(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	sys := exec.NewSystem(eng, m, exec.DefaultOptions())
	var ts ThreadScheduler
	var coreAt [3]int
	sys.Go("w", 2, func(th *exec.Thread) {
		coreAt[0] = th.Core()
		ts.OpStart(th, mem.Addr(4096))
		coreAt[1] = th.Core()
		ts.OpEnd(th)
		coreAt[2] = th.Core()
	})
	eng.Run(0)
	if eng.Now() != 0 {
		t.Fatalf("baseline annotations consumed %d cycles", eng.Now())
	}
	for i, c := range coreAt {
		if c != 2 {
			t.Fatalf("checkpoint %d: thread on core %d, want 2", i, c)
		}
	}
	if got := m.Counters().Snapshot(2).MigrationsIn; got != 0 {
		t.Fatalf("baseline migrated %d times", got)
	}
}

// TestBaselineTickOrdering pins how the baseline scheduler interleaves
// threads, table-driven over thread placements: threads tick strictly in
// spawn order at each instant (the engine's FIFO rule), whether they share
// one core or are spread round-robin, and the order is identical run to
// run.
func TestBaselineTickOrdering(t *testing.T) {
	cases := []struct {
		name    string
		threads int
		cores   int
		homes   []int // nil = RoundRobin(threads, cores)
		ticks   int
		yield   bool // Yield after each tick's compute
		want    []string
	}{
		{
			// Cooperative threads do not preempt: without Yield, the
			// first thread on a shared core runs all its ticks before
			// the second gets the core.
			name:    "shared core without yield runs threads to completion",
			threads: 2, cores: 4, homes: []int{0, 0}, ticks: 2,
			want: []string{"w0", "w0", "w1", "w1"},
		},
		{
			name:    "shared core with yield alternates in spawn order",
			threads: 2, cores: 4, homes: []int{0, 0}, ticks: 2, yield: true,
			want: []string{"w0", "w1", "w0", "w1"},
		},
		{
			name:    "round-robin threads tick in spawn order each instant",
			threads: 3, cores: 4, ticks: 2,
			want: []string{"w0", "w1", "w2", "w0", "w1", "w2"},
		},
		{
			name:    "more threads than cores still tick in spawn order",
			threads: 4, cores: 2, ticks: 1,
			want: []string{"w0", "w1", "w2", "w3"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() []string {
				eng := sim.NewEngine()
				m, err := machine.New(topology.Small(), 16<<20)
				if err != nil {
					t.Fatal(err)
				}
				sys := exec.NewSystem(eng, m, exec.DefaultOptions())
				homes := tc.homes
				if homes == nil {
					homes = RoundRobin(tc.threads, tc.cores)
				}
				var trace []string
				for i := 0; i < tc.threads; i++ {
					name := fmt.Sprintf("w%d", i)
					sys.Go(name, homes[i], func(th *exec.Thread) {
						for k := 0; k < tc.ticks; k++ {
							trace = append(trace, th.Name())
							th.Compute(100)
							if tc.yield {
								th.Yield()
							}
						}
					})
				}
				eng.Run(0)
				return trace
			}
			first := run()
			if !reflect.DeepEqual(first, tc.want) {
				t.Fatalf("tick order = %v, want %v", first, tc.want)
			}
			if second := run(); !reflect.DeepEqual(first, second) {
				t.Errorf("tick order not reproducible: %v vs %v", first, second)
			}
		})
	}
}

// TestAnnotatorPairsUnderBaseline is table-driven over operation shapes:
// however operations nest or repeat, the inert baseline annotator must
// leave time, core, and migration counters untouched.
func TestAnnotatorPairsUnderBaseline(t *testing.T) {
	cases := []struct {
		name string
		body func(a Annotator, th *exec.Thread)
	}{
		{"single pair", func(a Annotator, th *exec.Thread) {
			a.OpStart(th, 4096)
			a.OpEnd(th)
		}},
		{"nested pairs", func(a Annotator, th *exec.Thread) {
			a.OpStart(th, 4096)
			a.OpStart(th, 8192)
			a.OpEnd(th)
			a.OpEnd(th)
		}},
		{"repeated pairs", func(a Annotator, th *exec.Thread) {
			for i := 0; i < 4; i++ {
				OpStartRO(ThreadScheduler{}, th, mem.Addr(4096*(i+1)))
				a.OpEnd(th)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			m, err := machine.New(topology.Small(), 16<<20)
			if err != nil {
				t.Fatal(err)
			}
			sys := exec.NewSystem(eng, m, exec.DefaultOptions())
			var ts ThreadScheduler
			sys.Go("w", 1, func(th *exec.Thread) {
				tc.body(ts, th)
				if th.Core() != 1 {
					t.Errorf("thread moved to core %d", th.Core())
				}
			})
			eng.Run(0)
			if eng.Now() != 0 {
				t.Errorf("baseline annotations consumed %d cycles", eng.Now())
			}
			if got := m.Counters().Snapshot(1).MigrationsIn; got != 0 {
				t.Errorf("baseline migrated %d times", got)
			}
		})
	}
}

func TestOpStartRODispatch(t *testing.T) {
	// OpStartRO must use the read-only entry point when available and
	// fall back to OpStart otherwise.
	rec := &recordingAnnotator{}
	OpStartRO(rec, nil, 42)
	if !rec.sawRO || rec.sawPlain {
		t.Fatal("ReadOnlyAnnotator path not taken")
	}
	plain := &plainAnnotator{}
	OpStartRO(plain, nil, 42)
	if !plain.saw {
		t.Fatal("plain fallback not taken")
	}
}

type recordingAnnotator struct{ sawRO, sawPlain bool }

func (r *recordingAnnotator) OpStart(t *exec.Thread, a mem.Addr)         { r.sawPlain = true }
func (r *recordingAnnotator) OpStartReadOnly(t *exec.Thread, a mem.Addr) { r.sawRO = true }
func (r *recordingAnnotator) OpEnd(t *exec.Thread)                       {}
func (r *recordingAnnotator) Name() string                               { return "recording" }

type plainAnnotator struct{ saw bool }

func (p *plainAnnotator) OpStart(t *exec.Thread, a mem.Addr) { p.saw = true }
func (p *plainAnnotator) OpEnd(t *exec.Thread)               {}
func (p *plainAnnotator) Name() string                       { return "plain" }
