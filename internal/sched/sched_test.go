package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestRoundRobinCoversAllCores(t *testing.T) {
	homes := RoundRobin(16, 16)
	seen := map[int]bool{}
	for _, h := range homes {
		seen[h] = true
	}
	if len(seen) != 16 {
		t.Fatalf("16 threads on 16 cores used only %d cores", len(seen))
	}
}

func TestRoundRobinWrapsAndBounds(t *testing.T) {
	f := func(threads, cores uint8) bool {
		nt, nc := int(threads%64)+1, int(cores%16)+1
		homes := RoundRobin(nt, nc)
		if len(homes) != nt {
			return false
		}
		counts := make([]int, nc)
		for i, h := range homes {
			if h < 0 || h >= nc {
				return false
			}
			if h != i%nc {
				return false
			}
			counts[h]++
		}
		// Balance: max and min differ by at most one.
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreadSchedulerIsInert(t *testing.T) {
	// The baseline annotator must not move threads or cost cycles.
	eng := sim.NewEngine()
	m, err := machine.New(topology.Tiny8(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	sys := exec.NewSystem(eng, m, exec.DefaultOptions())
	var ts ThreadScheduler
	var coreAt [3]int
	sys.Go("w", 2, func(th *exec.Thread) {
		coreAt[0] = th.Core()
		ts.OpStart(th, mem.Addr(4096))
		coreAt[1] = th.Core()
		ts.OpEnd(th)
		coreAt[2] = th.Core()
	})
	eng.Run(0)
	if eng.Now() != 0 {
		t.Fatalf("baseline annotations consumed %d cycles", eng.Now())
	}
	for i, c := range coreAt {
		if c != 2 {
			t.Fatalf("checkpoint %d: thread on core %d, want 2", i, c)
		}
	}
	if got := m.Counters().Snapshot(2).MigrationsIn; got != 0 {
		t.Fatalf("baseline migrated %d times", got)
	}
}

func TestOpStartRODispatch(t *testing.T) {
	// OpStartRO must use the read-only entry point when available and
	// fall back to OpStart otherwise.
	rec := &recordingAnnotator{}
	OpStartRO(rec, nil, 42)
	if !rec.sawRO || rec.sawPlain {
		t.Fatal("ReadOnlyAnnotator path not taken")
	}
	plain := &plainAnnotator{}
	OpStartRO(plain, nil, 42)
	if !plain.saw {
		t.Fatal("plain fallback not taken")
	}
}

type recordingAnnotator struct{ sawRO, sawPlain bool }

func (r *recordingAnnotator) OpStart(t *exec.Thread, a mem.Addr)         { r.sawPlain = true }
func (r *recordingAnnotator) OpStartReadOnly(t *exec.Thread, a mem.Addr) { r.sawRO = true }
func (r *recordingAnnotator) OpEnd(t *exec.Thread)                       {}
func (r *recordingAnnotator) Name() string                               { return "recording" }

type plainAnnotator struct{ saw bool }

func (p *plainAnnotator) OpStart(t *exec.Thread, a mem.Addr) { p.saw = true }
func (p *plainAnnotator) OpEnd(t *exec.Thread)               {}
func (p *plainAnnotator) Name() string                       { return "plain" }
