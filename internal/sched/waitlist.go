package sched

import "repro/internal/exec"

// WaitList is a FIFO wait queue for threads that idle until work arrives —
// the scheduler-side half of the engine's dead-time fast-forward. An
// open-loop service pool that polls the arrival schedule wakes every idle
// worker at every arrival; workers parked on a WaitList instead wake only
// when a producer hands them work, so a quiet system has no pending worker
// events at all and the engine can jump straight over the dead time.
//
// Wait releases the caller's core for the duration (idle, not busy,
// cycles accrue — see exec.Thread.Block), and WakeOne hands work to the
// longest-waiting thread first, matching the earliest-sleeper-first order
// a timer-based pool would exhibit. All methods must be called in engine
// context; the zero WaitList is ready to use.
type WaitList struct {
	q []*exec.Thread
}

// Len returns the number of waiting threads.
func (w *WaitList) Len() int { return len(w.q) }

// Wait parks t at the back of the list until WakeOne or WakeAll releases
// it. On return t holds its core again.
func (w *WaitList) Wait(t *exec.Thread) {
	w.q = append(w.q, t)
	t.Block()
}

// WakeOne unparks the longest-waiting thread. It reports whether a thread
// was woken.
func (w *WaitList) WakeOne() bool {
	n := len(w.q)
	if n == 0 {
		return false
	}
	t := w.q[0]
	// Shift in place so the backing array is reused; enqueueing in steady
	// state never re-allocates.
	copy(w.q, w.q[1:])
	w.q[n-1] = nil
	w.q = w.q[:n-1]
	t.Unblock()
	return true
}

// WakeAll unparks every waiting thread in FIFO order and returns how many
// were woken.
func (w *WaitList) WakeAll() int {
	n := len(w.q)
	for i, t := range w.q {
		w.q[i] = nil
		t.Unblock()
	}
	w.q = w.q[:0]
	return n
}
