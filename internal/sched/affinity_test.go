package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestHashAffinityCoreOfIsDeterministicAndInRange(t *testing.T) {
	f := func(addr uint64, rawCores uint8) bool {
		cores := int(rawCores%64) + 1
		h := NewHashAffinity(cores)
		c := h.CoreOf(mem.Addr(addr))
		return c >= 0 && c < cores && c == h.CoreOf(mem.Addr(addr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashAffinitySpreadsObjects(t *testing.T) {
	// 4096 page-aligned addresses over 8 cores: every core should own a
	// healthy share (the hash must not collapse on aligned addresses).
	h := NewHashAffinity(8)
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		counts[h.CoreOf(mem.Addr(i*4096))]++
	}
	for c, n := range counts {
		if n < 256 { // expectation 512; 256 is far outside uniform noise
			t.Errorf("core %d owns %d/4096 objects; hash is collapsing", c, n)
		}
	}
}

func TestHashAffinityMigratesForOperations(t *testing.T) {
	eng := sim.NewEngine()
	m, err := machine.New(topology.Tiny8(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	sys := exec.NewSystem(eng, m, exec.DefaultOptions())
	h := NewHashAffinity(m.Config().NumCores())

	objA, objB := mem.Addr(1<<14), mem.Addr(1<<15)
	wantA, wantB := h.CoreOf(objA), h.CoreOf(objB)
	var at [4]int
	sys.Go("w", 0, func(th *exec.Thread) {
		h.OpStart(th, objA)
		at[0] = th.Core()
		// Nested operation on a different object: runs in place.
		h.OpStart(th, objB)
		at[1] = th.Core()
		h.OpEnd(th)
		h.OpEnd(th)
		at[2] = th.Core() // stays at the object's core after the op
		h.OpStart(th, objB)
		at[3] = th.Core()
		h.OpEnd(th)
	})
	eng.Run(0)

	if at[0] != wantA {
		t.Errorf("during op on A: core %d, want %d", at[0], wantA)
	}
	if at[1] != wantA {
		t.Errorf("nested op migrated to core %d; nested ops must run in place", at[1])
	}
	if at[2] != wantA {
		t.Errorf("after op: core %d, want to stay on %d", at[2], wantA)
	}
	if at[3] != wantB {
		t.Errorf("second op on B: core %d, want %d", at[3], wantB)
	}
	if wantA != 0 {
		if migs := m.Counters().Snapshot(wantA).MigrationsIn; migs == 0 {
			t.Error("no migration recorded into the object's core")
		}
	}
}

func TestHashAffinitySkipsMigrationWhenAlreadyThere(t *testing.T) {
	eng := sim.NewEngine()
	m, err := machine.New(topology.Tiny8(), 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	sys := exec.NewSystem(eng, m, exec.DefaultOptions())
	h := NewHashAffinity(m.Config().NumCores())

	obj := mem.Addr(1 << 14)
	home := h.CoreOf(obj)
	sys.Go("w", home, func(th *exec.Thread) {
		h.OpStart(th, obj)
		h.OpEnd(th)
	})
	eng.Run(0)
	if eng.Now() != 0 {
		t.Errorf("operation from the object's own core consumed %d cycles", eng.Now())
	}
	if migs := m.Counters().Snapshot(home).MigrationsIn; migs != 0 {
		t.Errorf("recorded %d migrations for an already-placed thread", migs)
	}
}
