package sched

import (
	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/stats"
)

// HashAffinity pins every object to a fixed core chosen by hashing its
// address, and migrates threads there for the duration of each operation.
// It is the static middle ground between the two schedulers the paper
// compares: like CoreTime it serializes operations on one object onto one
// core (so the object's lines stay in that core's caches), but the
// assignment is a pure hash — no monitoring, no cache-budget packing, no
// rebalancing, and no awareness of object size or popularity. Service
// scenarios use it as the "consistent-hashing placement" baseline a real
// sharded store would deploy.
//
// Operations nest the same way CoreTime's do: the scheduler tracks each
// thread's operation depth, and only the outermost OpEnd is a boundary.
// Like CoreTime's default (ReturnToOrigin off), a thread continues from
// the object's core after the outermost operation ends rather than paying
// a migration back.
type HashAffinity struct {
	cores int
	depth map[int]int // thread id -> open operation depth
}

// NewHashAffinity returns an annotator distributing objects over cores
// many cores. It panics when cores <= 0.
func NewHashAffinity(cores int) *HashAffinity {
	if cores <= 0 {
		panic("sched: NewHashAffinity needs a positive core count")
	}
	return &HashAffinity{cores: cores, depth: make(map[int]int)}
}

// CoreOf returns the core the object at addr is pinned to: a SplitMix64
// avalanche of the address modulo the core count, so object placements are
// deterministic, uniform, and independent of operation order.
func (h *HashAffinity) CoreOf(addr mem.Addr) int {
	return int(stats.DeriveSeed(uint64(addr)) % uint64(h.cores))
}

// OpStart migrates the thread to the object's core (paying the real
// migration cost) unless it is already there or already inside an
// operation — nested operations run wherever the outermost one placed the
// thread, matching the scoped-operation semantics of the o2 façade.
func (h *HashAffinity) OpStart(t *exec.Thread, addr mem.Addr) {
	d := h.depth[t.ID()]
	h.depth[t.ID()] = d + 1
	if d > 0 {
		return
	}
	if dst := h.CoreOf(addr); t.Core() != dst {
		t.MigrateTo(dst)
	}
}

// OpEnd closes the innermost operation; the thread stays where it is.
func (h *HashAffinity) OpEnd(t *exec.Thread) {
	if d := h.depth[t.ID()]; d > 1 {
		h.depth[t.ID()] = d - 1
	} else {
		delete(h.depth, t.ID())
	}
}

// Name implements Annotator.
func (h *HashAffinity) Name() string { return "hash-affinity" }
