package sim

import (
	"testing"
)

func TestTimerOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run(0)
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("events fired out of order: %v", order)
		}
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at1, at2 Time
	e.Spawn("sleeper", func(p *Proc) {
		at1 = p.Now()
		p.Sleep(100)
		at2 = p.Now()
	})
	e.Run(0)
	if at1 != 0 || at2 != 100 {
		t.Fatalf("times = %d,%d, want 0,100", at1, at2)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, n := range []string{"a", "b"} {
			n := n
			e.Spawn(n, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, n)
					p.Sleep(10)
				}
			})
		}
		e.Run(0)
		return trace
	}
	first := run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("trace = %v, want %v", first, want)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("runs differ: %v vs %v", first, second)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine()
	var waiter *Proc
	var wokeAt Time
	waiter = e.Spawn("waiter", func(p *Proc) {
		p.Park()
		wokeAt = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(500)
		waiter.Unpark()
	})
	e.Run(0)
	if wokeAt != 500 {
		t.Fatalf("woke at %d, want 500", wokeAt)
	}
}

func TestUnparkNonParkedIsNoop(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("p", func(p *Proc) { p.Sleep(10) })
	e.At(5, func() { p.Unpark() }) // p is sleeping, not parked
	end := e.Run(0)
	if end != 10 {
		t.Fatalf("end = %d, want 10 (Unpark must not shorten Sleep)", end)
	}
}

func TestJoin(t *testing.T) {
	e := NewEngine()
	var joinedAt Time
	worker := e.Spawn("worker", func(p *Proc) { p.Sleep(1000) })
	e.Spawn("parent", func(p *Proc) {
		p.Join(worker)
		joinedAt = p.Now()
	})
	e.Run(0)
	if joinedAt != 1000 {
		t.Fatalf("joined at %d, want 1000", joinedAt)
	}
}

func TestJoinFinishedProcReturnsImmediately(t *testing.T) {
	e := NewEngine()
	worker := e.Spawn("worker", func(p *Proc) {})
	var joinedAt Time = 42
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(100) // let worker finish first
		p.Join(worker)
		joinedAt = p.Now()
	})
	e.Run(0)
	if joinedAt != 100 {
		t.Fatalf("joined at %d, want 100", joinedAt)
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() { fired = true })
	end := e.Run(50)
	if end != 50 || fired {
		t.Fatalf("end=%d fired=%v, want 50,false", end, fired)
	}
	// Resume past the limit.
	end = e.Run(0)
	if end != 100 || !fired {
		t.Fatalf("after resume end=%d fired=%v, want 100,true", end, fired)
	}
}

func TestRunLimitExactBoundaryFires(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(50, func() { fired = true })
	e.Run(50)
	if !fired {
		t.Fatal("event at exactly the limit should fire")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(10, func() bool {
		count++
		if count == 3 {
			e.Stop()
		}
		return true
	})
	e.Run(0)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Now() != 30 {
		t.Fatalf("stopped at %d, want 30", e.Now())
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.Every(25, func() bool {
		ticks = append(ticks, e.Now())
		return len(ticks) < 4
	})
	e.Run(0)
	want := []Time{25, 50, 75, 100}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestLiveCount(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) { p.Sleep(10) })
	e.Spawn("b", func(p *Proc) { p.Sleep(20) })
	if e.Live() != 2 {
		t.Fatalf("Live = %d, want 2", e.Live())
	}
	e.Run(0)
	if e.Live() != 0 {
		t.Fatalf("Live after run = %d, want 0", e.Live())
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := Cycles(i * 100)
		wg.Add(1)
		e.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Spawn("main", func(p *Proc) {
		p.Sleep(1) // let workers register
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run(0)
	if doneAt != 300 {
		t.Fatalf("WaitGroup released at %d, want 300", doneAt)
	}
}

func TestWaitGroupZeroCountReturnsImmediately(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	ran := false
	e.Spawn("main", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	e.Run(0)
	if !ran {
		t.Fatal("Wait on zero-count group should not block")
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childRanAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		e.Spawn("child", func(c *Proc) {
			childRanAt = c.Now()
		})
		p.Sleep(10)
	})
	e.Run(0)
	if childRanAt != 10 {
		t.Fatalf("child ran at %d, want 10", childRanAt)
	}
}

func TestManyProcsScale(t *testing.T) {
	e := NewEngine()
	const n = 500
	total := 0
	for i := 0; i < n; i++ {
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(7)
			}
			total++
		})
	}
	e.Run(0)
	if total != n {
		t.Fatalf("finished %d procs, want %d", total, n)
	}
	if e.Now() != 70 {
		t.Fatalf("end time %d, want 70", e.Now())
	}
}
