package sim

import "testing"

// BenchmarkEngineEvents measures the engine's event loop: schedule one
// timer, dispatch it, repeat — the push/pop cost every simulated
// time-advance pays. A backlog of far-future events keeps the heap at a
// realistic depth so sift costs are included.
func BenchmarkEngineEvents(b *testing.B) {
	eng := NewEngine()
	for i := 0; i < 1024; i++ {
		eng.At(Time(1<<40)+Time(i), func() {})
	}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.After(1, tick)
	eng.Run(Time(1 << 39))
	if n < b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineProcSleep measures the proc context-switch path: one
// simulated thread repeatedly advancing time, each advance a full
// engine→proc→engine handoff.
func BenchmarkEngineProcSleep(b *testing.B) {
	eng := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	eng.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	eng.Run(0)
}
