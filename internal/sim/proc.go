package sim

import "fmt"

type procState uint8

const (
	procNew procState = iota
	procRunning
	procSleeping // wake event queued
	procParked   // waiting for an explicit Unpark
	procDead
)

func (s procState) String() string {
	switch s {
	case procNew:
		return "new"
	case procRunning:
		return "running"
	case procSleeping:
		return "sleeping"
	case procParked:
		return "parked"
	case procDead:
		return "dead"
	}
	return "invalid"
}

// Proc is a simulated thread of control. Its body runs on a dedicated
// goroutine, but the engine guarantees only one proc (or the engine itself)
// executes at a time, so proc bodies may touch shared simulation state
// freely.
//
// Procs advance simulated time only through Sleep; pure computation inside
// a proc body is instantaneous in simulated time.
type Proc struct {
	eng    *Engine
	name   string
	state  procState
	resume chan struct{}
	yield  chan struct{}
	reaped bool

	// waiters are procs parked in Join, woken when this proc finishes.
	waiters []*Proc
}

// Spawn creates a proc named name executing body and schedules it to start
// at the current time. It must be called in engine context or before Run.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		state:  procNew,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs++
	go func() {
		<-p.resume
		body(p)
		p.state = procDead
		p.yield <- struct{}{}
	}()
	p.state = procSleeping
	e.push(event{at: e.now, p: p})
	return p
}

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the proc's name (used in diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the proc for d cycles of simulated time. Sleep(0) yields
// to the engine and resumes after other events scheduled for the current
// instant.
//
// Fast-forward: when the wake time strictly precedes every pending event
// (and no Stop or Run limit intervenes), the proc's wake event would be
// popped next with nothing in between, so Sleep jumps Engine.now straight
// to the wake time and returns without a heap push or goroutine switch.
// Strictness preserves the (at, seq) contract: an equal-time pending event
// carries a smaller seq and must fire first, so it forces the slow path.
//
//o2:hotpath
func (p *Proc) Sleep(d Cycles) {
	p.mustBeRunning("Sleep")
	e := p.eng
	target := e.now + d
	if target < e.now {
		sleepOverflow(d, e.now)
	}
	if !e.stopped && (e.limit == 0 || target <= e.limit) &&
		(len(e.events) == 0 || target < e.events[0].at) {
		if e.active == 0 {
			e.deadTime += d
		}
		e.fastSleeps++
		e.now = target
		return
	}
	p.state = procSleeping
	e.push(event{at: target, p: p})
	p.switchToEngine()
}

// Park suspends the proc indefinitely; another proc or timer must call
// Unpark to make it runnable again.
func (p *Proc) Park() {
	p.mustBeRunning("Park")
	p.state = procParked
	p.switchToEngine()
}

// Unpark makes a parked proc runnable at the current simulated time. It is
// a no-op when the proc is not parked (already runnable, sleeping, or
// dead), which lets wakers race benignly with timeouts.
func (p *Proc) Unpark() {
	if p.state != procParked {
		return
	}
	p.state = procSleeping
	p.eng.push(event{at: p.eng.now, p: p})
}

// Done reports whether the proc body has returned.
func (p *Proc) Done() bool { return p.state == procDead }

// Join parks the calling proc until target finishes. Joining a finished
// proc returns immediately.
func (p *Proc) Join(target *Proc) {
	p.mustBeRunning("Join")
	if target.state == procDead {
		return
	}
	target.waiters = append(target.waiters, p)
	p.Park()
}

// sleepOverflow lives outside Sleep so the hot path stays free of fmt.
func sleepOverflow(d Cycles, now Time) {
	panic(fmt.Sprintf("sim: Sleep(%d) overflows simulated time (now=%d)", d, now))
}

func (p *Proc) switchToEngine() {
	p.yield <- struct{}{}
	<-p.resume
}

func (p *Proc) mustBeRunning(op string) {
	if p.eng.running != p {
		panic(fmt.Sprintf("sim: %s called on proc %q in state %v from outside its own body",
			op, p.name, p.state))
	}
}

// WaitGroup counts in-flight procs, for proc bodies that fork helpers and
// must wait for all of them. It is the simulated-time analogue of
// sync.WaitGroup; all methods must be called in engine context.
type WaitGroup struct {
	count  int
	waiter *Proc
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 && wg.waiter != nil {
		w := wg.waiter
		wg.waiter = nil
		w.Unpark()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks p until the counter reaches zero. At most one proc may wait on
// a WaitGroup at a time.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	if wg.waiter != nil {
		panic("sim: concurrent WaitGroup.Wait")
	}
	wg.waiter = p
	p.Park()
}
