// Package sim implements the deterministic discrete-event simulation engine
// that underlies the simulated multicore machine.
//
// The engine is process-oriented: each simulated thread of control is a
// *Proc backed by a goroutine, but exactly one goroutine runs at a time and
// control transfers between the engine and procs are explicit. Events with
// equal timestamps fire in the order they were scheduled. Together these
// rules make runs bit-reproducible for a given seed, which the benchmark
// harness relies on, and they mean simulated state (caches, directories,
// run queues) needs no locking.
//
// Time is measured in CPU cycles of the simulated machine (2 GHz for the
// paper's AMD configuration).
package sim

import (
	"fmt"

	"repro/internal/stats"
)

// Time is a point in simulated time, in cycles since the start of the run.
type Time uint64

// Cycles is a duration in simulated cycles.
type Cycles = Time

// event is an entry in the engine's pending-event heap. Exactly one of p or
// fn is set: p resumes a parked process, fn runs a callback inline in engine
// context (timers, monitors).
type event struct {
	at  Time
	seq uint64 // tie-break: equal-time events fire in schedule order
	p   *Proc
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap of events ordered by
// (at, seq). Events live by value in the slice — a typed heap instead of
// container/heap because the latter's interface{} Push/Pop boxed every
// event onto the garbage-collected heap, one allocation per simulated
// time-advance. The slice itself is the event pool: popped slots are
// cleared and reused by later pushes.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts ev, keeping the (at, seq) heap order.
//
//o2:hotpath
func (h *eventHeap) push(ev event) {
	//o2:allowalloc "amortized growth: the backing array reaches steady-state capacity during warmup and is reused for the rest of the run"
	*h = append(*h, ev)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the earliest event.
//
//o2:hotpath
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // clear the vacated slot: release fn/proc references
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		next := l
		if r := l + 1; r < n && s.less(r, l) {
			next = r
		}
		if !s.less(next, i) {
			break
		}
		s[i], s[next] = s[next], s[i]
		i = next
	}
	return top
}

// Engine owns simulated time and the pending-event queue.
//
// All mutation of engine or simulation state must happen "in engine
// context": inside a Proc body, inside an At callback, or before Run is
// called. The engine is not safe for use from multiple OS threads.
type Engine struct {
	now     Time
	seq     uint64
	seed    uint64
	events  eventHeap
	procs   int // live (not yet finished) procs
	running *Proc
	stopped bool

	// limit is the current Run's time limit (0 = none). Proc.Sleep's
	// fast-forward path must not advance now past it, because Run would
	// otherwise have parked the proc's wake event beyond the limit.
	limit Time

	// active counts busy execution contexts (cores holding a thread),
	// maintained by the substrate through AddActive. It gates nothing —
	// fast-forward is decided purely by heap order — but it lets the
	// engine attribute skipped time to dead time (all cores idle).
	active int

	deadTime   Cycles // cycles skipped while no context was active
	fastSleeps uint64 // Sleeps that fast-forwarded without an event
	dispatched uint64 // events popped by Run
}

// NewEngine returns an engine with time at zero, no pending events, and
// seed zero.
func NewEngine() *Engine {
	return &Engine{}
}

// NewEngineSeeded returns an engine carrying the run's base seed.
// Components that need randomness derive private generators from it (see
// RNG) instead of sharing one source, so simulations on different engines —
// including engines running concurrently on separate goroutines — never
// share RNG state.
func NewEngineSeeded(seed uint64) *Engine {
	return &Engine{seed: seed}
}

// Seed returns the engine's base seed (zero when constructed with
// NewEngine).
func (e *Engine) Seed() uint64 { return e.seed }

// RNG returns a fresh generator for the named stream, derived purely from
// the engine seed and the stream number. Equal (seed, stream) pairs yield
// identical sequences; distinct streams are decorrelated. The returned
// generator is owned by the caller — the engine keeps no RNG state.
func (e *Engine) RNG(stream uint64) *stats.RNG {
	return stats.NewRNG(stats.DeriveSeed(e.seed, stream))
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Live returns the number of spawned procs that have not finished.
func (e *Engine) Live() int { return e.procs }

// Pending returns the number of queued events. A drained engine (Live and
// Pending both zero) is eligible for Reset.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run in engine context at time t. Scheduling in the
// past (t < Now) panics: it would silently reorder history.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) scheduled before now=%d", t, e.now))
	}
	e.push(event{at: t, fn: fn})
}

// After schedules fn to run in engine context d cycles from now. A delay
// that would overflow simulated time panics explicitly instead of wrapping
// past zero and tripping At's scheduled-before-now check with a misleading
// message.
func (e *Engine) After(d Cycles, fn func()) {
	t := e.now + d
	if t < e.now {
		panic(fmt.Sprintf("sim: After(%d) overflows simulated time (now=%d)", d, e.now))
	}
	e.At(t, fn)
}

// Every schedules fn to run every period cycles, starting one period from
// now, until fn returns false or the run ends.
func (e *Engine) Every(period Cycles, fn func() bool) {
	if period == 0 {
		panic("sim: Every with zero period")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
}

// push stamps ev with the tie-breaking sequence number and enqueues it.
//
//o2:hotpath
func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
}

// Run executes events until the queue is empty, Stop is called, or time
// would pass limit (limit 0 means no limit). It returns the final simulated
// time. Events at exactly t == limit still fire.
func (e *Engine) Run(limit Time) Time {
	e.stopped = false
	e.limit = limit
	for len(e.events) > 0 && !e.stopped {
		if limit != 0 && e.events[0].at > limit {
			// Leave the event pending so a later Run can continue.
			e.now = limit
			break
		}
		ev := e.events.pop()
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		if e.active == 0 && ev.at > e.now {
			e.deadTime += ev.at - e.now
		}
		e.now = ev.at
		e.dispatched++
		if ev.fn != nil {
			ev.fn()
			continue
		}
		e.dispatch(ev.p)
	}
	if limit != 0 && e.now < limit && len(e.events) == 0 {
		e.now = limit
	}
	return e.now
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run resumes where the previous one left off.
func (e *Engine) Stop() { e.stopped = true }

// dispatch hands control to p until it yields back.
func (e *Engine) dispatch(p *Proc) {
	if p.state == procDead {
		return
	}
	prev := e.running
	e.running = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-p.yield
	e.running = prev
	if p.state == procDead && !p.reaped {
		p.reaped = true
		e.procs--
		for _, w := range p.waiters {
			w.Unpark()
		}
		p.waiters = nil
	}
}

// Running returns the proc currently executing, or nil when the engine is
// running a timer callback or is between events.
func (e *Engine) Running() *Proc { return e.running }

// AddActive registers delta busy execution contexts. The execution
// substrate calls AddActive(+1) when a core goes from idle to holding a
// thread and AddActive(-1) when it goes idle again, so ActiveCount()==0
// means "every core is idle" and any simulated time the engine skips over
// is dead time, not modeled work. Registration is bookkeeping only: the
// fast-forward decision itself depends purely on (at, seq) heap order, so
// an unregistered driver cannot make runs diverge.
func (e *Engine) AddActive(delta int) {
	e.active += delta
	if e.active < 0 {
		panic("sim: negative active context count")
	}
}

// ActiveCount returns the number of registered busy contexts.
func (e *Engine) ActiveCount() int { return e.active }

// DeadTime returns the simulated cycles skipped while no context was
// active — time the engine fast-forwarded over instead of simulating.
func (e *Engine) DeadTime() Cycles { return e.deadTime }

// FastSleeps returns how many Proc.Sleep calls took the fast-forward path
// (advanced time without scheduling an event or switching goroutines).
func (e *Engine) FastSleeps() uint64 { return e.fastSleeps }

// EventsDispatched returns how many events Run has popped. Tests use it to
// assert coalescing contracts: a batched operation must cost one event, not
// one per line or per request.
func (e *Engine) EventsDispatched() uint64 { return e.dispatched }

// Reset returns the engine to its initial state — time zero, empty queue,
// the given seed — while keeping the event heap's backing array, so a sweep
// can reuse one engine across repeats without reallocating. It panics if
// the previous run left live procs or pending events: an arena reset is
// only sound on a fully drained engine.
func (e *Engine) Reset(seed uint64) {
	if e.running != nil || e.procs != 0 || len(e.events) != 0 {
		panic(fmt.Sprintf("sim: Reset with %d live procs and %d pending events", e.procs, len(e.events)))
	}
	e.now = 0
	e.seq = 0
	e.seed = seed
	e.stopped = false
	e.limit = 0
	e.active = 0
	e.deadTime = 0
	e.fastSleeps = 0
	e.dispatched = 0
	e.events = e.events[:0]
}
