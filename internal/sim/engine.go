// Package sim implements the deterministic discrete-event simulation engine
// that underlies the simulated multicore machine.
//
// The engine is process-oriented: each simulated thread of control is a
// *Proc backed by a goroutine, but exactly one goroutine runs at a time and
// control transfers between the engine and procs are explicit. Events with
// equal timestamps fire in the order they were scheduled. Together these
// rules make runs bit-reproducible for a given seed, which the benchmark
// harness relies on, and they mean simulated state (caches, directories,
// run queues) needs no locking.
//
// Time is measured in CPU cycles of the simulated machine (2 GHz for the
// paper's AMD configuration).
package sim

import (
	"fmt"

	"repro/internal/stats"
)

// Time is a point in simulated time, in cycles since the start of the run.
type Time uint64

// Cycles is a duration in simulated cycles.
type Cycles = Time

// event is an entry in the engine's pending-event heap. Exactly one of p or
// fn is set: p resumes a parked process, fn runs a callback inline in engine
// context (timers, monitors).
type event struct {
	at  Time
	seq uint64 // tie-break: equal-time events fire in schedule order
	p   *Proc
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap of events ordered by
// (at, seq). Events live by value in the slice — a typed heap instead of
// container/heap because the latter's interface{} Push/Pop boxed every
// event onto the garbage-collected heap, one allocation per simulated
// time-advance. The slice itself is the event pool: popped slots are
// cleared and reused by later pushes.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts ev, keeping the (at, seq) heap order.
//
//o2:hotpath
func (h *eventHeap) push(ev event) {
	//o2:allowalloc "amortized growth: the backing array reaches steady-state capacity during warmup and is reused for the rest of the run"
	*h = append(*h, ev)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the earliest event.
//
//o2:hotpath
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // clear the vacated slot: release fn/proc references
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		next := l
		if r := l + 1; r < n && s.less(r, l) {
			next = r
		}
		if !s.less(next, i) {
			break
		}
		s[i], s[next] = s[next], s[i]
		i = next
	}
	return top
}

// Engine owns simulated time and the pending-event queue.
//
// All mutation of engine or simulation state must happen "in engine
// context": inside a Proc body, inside an At callback, or before Run is
// called. The engine is not safe for use from multiple OS threads.
type Engine struct {
	now     Time
	seq     uint64
	seed    uint64
	events  eventHeap
	procs   int // live (not yet finished) procs
	running *Proc
	stopped bool
}

// NewEngine returns an engine with time at zero, no pending events, and
// seed zero.
func NewEngine() *Engine {
	return &Engine{}
}

// NewEngineSeeded returns an engine carrying the run's base seed.
// Components that need randomness derive private generators from it (see
// RNG) instead of sharing one source, so simulations on different engines —
// including engines running concurrently on separate goroutines — never
// share RNG state.
func NewEngineSeeded(seed uint64) *Engine {
	return &Engine{seed: seed}
}

// Seed returns the engine's base seed (zero when constructed with
// NewEngine).
func (e *Engine) Seed() uint64 { return e.seed }

// RNG returns a fresh generator for the named stream, derived purely from
// the engine seed and the stream number. Equal (seed, stream) pairs yield
// identical sequences; distinct streams are decorrelated. The returned
// generator is owned by the caller — the engine keeps no RNG state.
func (e *Engine) RNG(stream uint64) *stats.RNG {
	return stats.NewRNG(stats.DeriveSeed(e.seed, stream))
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Live returns the number of spawned procs that have not finished.
func (e *Engine) Live() int { return e.procs }

// At schedules fn to run in engine context at time t. Scheduling in the
// past (t < Now) panics: it would silently reorder history.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) scheduled before now=%d", t, e.now))
	}
	e.push(event{at: t, fn: fn})
}

// After schedules fn to run in engine context d cycles from now.
func (e *Engine) After(d Cycles, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn to run every period cycles, starting one period from
// now, until fn returns false or the run ends.
func (e *Engine) Every(period Cycles, fn func() bool) {
	if period == 0 {
		panic("sim: Every with zero period")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
}

// push stamps ev with the tie-breaking sequence number and enqueues it.
//
//o2:hotpath
func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
}

// Run executes events until the queue is empty, Stop is called, or time
// would pass limit (limit 0 means no limit). It returns the final simulated
// time. Events at exactly t == limit still fire.
func (e *Engine) Run(limit Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if limit != 0 && e.events[0].at > limit {
			// Leave the event pending so a later Run can continue.
			e.now = limit
			break
		}
		ev := e.events.pop()
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		e.dispatch(ev.p)
	}
	if limit != 0 && e.now < limit && len(e.events) == 0 {
		e.now = limit
	}
	return e.now
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run resumes where the previous one left off.
func (e *Engine) Stop() { e.stopped = true }

// dispatch hands control to p until it yields back.
func (e *Engine) dispatch(p *Proc) {
	if p.state == procDead {
		return
	}
	prev := e.running
	e.running = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-p.yield
	e.running = prev
	if p.state == procDead && !p.reaped {
		p.reaped = true
		e.procs--
		for _, w := range p.waiters {
			w.Unpark()
		}
		p.waiters = nil
	}
}

// Running returns the proc currently executing, or nil when the engine is
// running a timer callback or is between events.
func (e *Engine) Running() *Proc { return e.running }
