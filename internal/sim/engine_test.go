package sim

// Table-driven tests for the event engine's edge cases: empty queues,
// simultaneous timestamps, run limits, and seed plumbing. The scenario
// tests in sim_test.go cover the happy paths; these pin the boundaries the
// sweep engine's determinism guarantee rests on.

import (
	"reflect"
	"testing"
)

func TestRunEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		// schedule queues events; each event appends its id to the trace.
		schedule func(e *Engine, trace *[]int)
		limit    Time
		wantEnd  Time
		want     []int // expected trace
	}{
		{
			name:     "empty queue, no limit",
			schedule: func(e *Engine, trace *[]int) {},
			wantEnd:  0,
			want:     nil,
		},
		{
			name:     "empty queue advances to the limit",
			schedule: func(e *Engine, trace *[]int) {},
			limit:    90,
			wantEnd:  90,
			want:     nil,
		},
		{
			name: "events before the limit drain, clock lands on limit",
			schedule: func(e *Engine, trace *[]int) {
				e.At(10, func() { *trace = append(*trace, 1) })
			},
			limit:   50,
			wantEnd: 50,
			want:    []int{1},
		},
		{
			name: "event exactly at the limit fires",
			schedule: func(e *Engine, trace *[]int) {
				e.At(50, func() { *trace = append(*trace, 1) })
			},
			limit:   50,
			wantEnd: 50,
			want:    []int{1},
		},
		{
			name: "event past the limit stays pending",
			schedule: func(e *Engine, trace *[]int) {
				e.At(51, func() { *trace = append(*trace, 1) })
			},
			limit:   50,
			wantEnd: 50,
			want:    nil,
		},
		{
			name: "simultaneous timestamps fire in schedule order",
			schedule: func(e *Engine, trace *[]int) {
				for i := 1; i <= 5; i++ {
					i := i
					e.At(7, func() { *trace = append(*trace, i) })
				}
			},
			wantEnd: 7,
			want:    []int{1, 2, 3, 4, 5},
		},
		{
			name: "equal-time events scheduled from inside an event run after it",
			schedule: func(e *Engine, trace *[]int) {
				e.At(5, func() {
					*trace = append(*trace, 1)
					e.At(5, func() { *trace = append(*trace, 3) })
				})
				e.At(5, func() { *trace = append(*trace, 2) })
			},
			wantEnd: 5,
			want:    []int{1, 2, 3},
		},
		{
			name: "timers and proc wakeups interleave FIFO at one instant",
			schedule: func(e *Engine, trace *[]int) {
				// The proc's wake event is enqueued when Sleep runs
				// (during Run, at t=0), after the two timers were
				// registered — so at t=10 the timers fire first.
				e.Spawn("p", func(p *Proc) {
					p.Sleep(10)
					*trace = append(*trace, 3)
				})
				e.At(10, func() { *trace = append(*trace, 1) })
				e.At(10, func() { *trace = append(*trace, 2) })
			},
			wantEnd: 10,
			want:    []int{1, 2, 3},
		},
		{
			name: "zero-length sleep yields to already-queued same-time events",
			schedule: func(e *Engine, trace *[]int) {
				e.Spawn("a", func(p *Proc) {
					*trace = append(*trace, 1)
					p.Sleep(0)
					*trace = append(*trace, 3)
				})
				e.Spawn("b", func(p *Proc) { *trace = append(*trace, 2) })
			},
			wantEnd: 0,
			want:    []int{1, 2, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine()
			var trace []int
			tc.schedule(e, &trace)
			end := e.Run(tc.limit)
			if end != tc.wantEnd {
				t.Errorf("Run returned %d, want %d", end, tc.wantEnd)
			}
			if !reflect.DeepEqual(trace, tc.want) {
				t.Errorf("trace = %v, want %v", trace, tc.want)
			}
		})
	}
}

func TestRunResumesAfterLimit(t *testing.T) {
	// Run-to-limit then Run-to-completion must drain in one continuous
	// order, regardless of how many events straddled the boundary.
	e := NewEngine()
	var trace []int
	for i, at := range []Time{10, 20, 30, 40} {
		i, at := i, at
		e.At(at, func() { trace = append(trace, i) })
	}
	if end := e.Run(25); end != 25 {
		t.Fatalf("first Run ended at %d, want 25", end)
	}
	if end := e.Run(0); end != 40 {
		t.Fatalf("second Run ended at %d, want 40", end)
	}
	if !reflect.DeepEqual(trace, []int{0, 1, 2, 3}) {
		t.Errorf("trace across resumed runs = %v", trace)
	}
}

func TestEngineSeedPlumbing(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Engine
		want uint64
	}{
		{"unseeded engine has seed zero", NewEngine, 0},
		{"seeded engine carries its seed", func() *Engine { return NewEngineSeeded(41) }, 41},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.mk().Seed(); got != tc.want {
				t.Errorf("Seed() = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestEngineRNGStreams(t *testing.T) {
	a, b := NewEngineSeeded(9), NewEngineSeeded(9)
	// Same (seed, stream) on different engines: identical sequences.
	ra, rb := a.RNG(1), b.RNG(1)
	for i := 0; i < 8; i++ {
		if ra.Uint64() != rb.Uint64() {
			t.Fatal("equal (seed, stream) pairs diverged")
		}
	}
	// Distinct streams and distinct seeds: decorrelated.
	if a.RNG(1).Uint64() == a.RNG(2).Uint64() {
		t.Error("streams 1 and 2 derive the same generator")
	}
	if a.RNG(1).Uint64() == NewEngineSeeded(10).RNG(1).Uint64() {
		t.Error("different engine seeds derive the same generator")
	}
	// Deriving an RNG mutates no engine state: repeat derivation matches.
	if a.RNG(3).Uint64() != a.RNG(3).Uint64() {
		t.Error("RNG derivation is stateful")
	}
}
