package sim

// Table-driven tests for the event engine's edge cases: empty queues,
// simultaneous timestamps, run limits, and seed plumbing. The scenario
// tests in sim_test.go cover the happy paths; these pin the boundaries the
// sweep engine's determinism guarantee rests on.

import (
	"reflect"
	"testing"
)

func TestRunEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		// schedule queues events; each event appends its id to the trace.
		schedule func(e *Engine, trace *[]int)
		limit    Time
		wantEnd  Time
		want     []int // expected trace
	}{
		{
			name:     "empty queue, no limit",
			schedule: func(e *Engine, trace *[]int) {},
			wantEnd:  0,
			want:     nil,
		},
		{
			name:     "empty queue advances to the limit",
			schedule: func(e *Engine, trace *[]int) {},
			limit:    90,
			wantEnd:  90,
			want:     nil,
		},
		{
			name: "events before the limit drain, clock lands on limit",
			schedule: func(e *Engine, trace *[]int) {
				e.At(10, func() { *trace = append(*trace, 1) })
			},
			limit:   50,
			wantEnd: 50,
			want:    []int{1},
		},
		{
			name: "event exactly at the limit fires",
			schedule: func(e *Engine, trace *[]int) {
				e.At(50, func() { *trace = append(*trace, 1) })
			},
			limit:   50,
			wantEnd: 50,
			want:    []int{1},
		},
		{
			name: "event past the limit stays pending",
			schedule: func(e *Engine, trace *[]int) {
				e.At(51, func() { *trace = append(*trace, 1) })
			},
			limit:   50,
			wantEnd: 50,
			want:    nil,
		},
		{
			name: "simultaneous timestamps fire in schedule order",
			schedule: func(e *Engine, trace *[]int) {
				for i := 1; i <= 5; i++ {
					i := i
					e.At(7, func() { *trace = append(*trace, i) })
				}
			},
			wantEnd: 7,
			want:    []int{1, 2, 3, 4, 5},
		},
		{
			name: "equal-time events scheduled from inside an event run after it",
			schedule: func(e *Engine, trace *[]int) {
				e.At(5, func() {
					*trace = append(*trace, 1)
					e.At(5, func() { *trace = append(*trace, 3) })
				})
				e.At(5, func() { *trace = append(*trace, 2) })
			},
			wantEnd: 5,
			want:    []int{1, 2, 3},
		},
		{
			name: "timers and proc wakeups interleave FIFO at one instant",
			schedule: func(e *Engine, trace *[]int) {
				// The proc's wake event is enqueued when Sleep runs
				// (during Run, at t=0), after the two timers were
				// registered — so at t=10 the timers fire first.
				e.Spawn("p", func(p *Proc) {
					p.Sleep(10)
					*trace = append(*trace, 3)
				})
				e.At(10, func() { *trace = append(*trace, 1) })
				e.At(10, func() { *trace = append(*trace, 2) })
			},
			wantEnd: 10,
			want:    []int{1, 2, 3},
		},
		{
			name: "zero-length sleep yields to already-queued same-time events",
			schedule: func(e *Engine, trace *[]int) {
				e.Spawn("a", func(p *Proc) {
					*trace = append(*trace, 1)
					p.Sleep(0)
					*trace = append(*trace, 3)
				})
				e.Spawn("b", func(p *Proc) { *trace = append(*trace, 2) })
			},
			wantEnd: 0,
			want:    []int{1, 2, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine()
			var trace []int
			tc.schedule(e, &trace)
			end := e.Run(tc.limit)
			if end != tc.wantEnd {
				t.Errorf("Run returned %d, want %d", end, tc.wantEnd)
			}
			if !reflect.DeepEqual(trace, tc.want) {
				t.Errorf("trace = %v, want %v", trace, tc.want)
			}
		})
	}
}

func TestRunResumesAfterLimit(t *testing.T) {
	// Run-to-limit then Run-to-completion must drain in one continuous
	// order, regardless of how many events straddled the boundary.
	e := NewEngine()
	var trace []int
	for i, at := range []Time{10, 20, 30, 40} {
		i, at := i, at
		e.At(at, func() { trace = append(trace, i) })
	}
	if end := e.Run(25); end != 25 {
		t.Fatalf("first Run ended at %d, want 25", end)
	}
	if end := e.Run(0); end != 40 {
		t.Fatalf("second Run ended at %d, want 40", end)
	}
	if !reflect.DeepEqual(trace, []int{0, 1, 2, 3}) {
		t.Errorf("trace across resumed runs = %v", trace)
	}
}

func TestAfterOverflowPanics(t *testing.T) {
	// Regression: e.now + d used to wrap past zero and trip At's
	// misleading "scheduled before now" panic. The failure must name the
	// real problem: the delay overflows simulated time.
	cases := []struct {
		name string
		call func(e *Engine)
	}{
		{"After", func(e *Engine) { e.After(^Cycles(0), func() {}) }},
		{"Every", func(e *Engine) { e.Every(^Cycles(0), func() bool { return false }) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine()
			e.At(5, func() {}) // move now off zero so the wrap lands "before now"
			e.Run(0)
			defer func() {
				msg, ok := recover().(string)
				if !ok {
					t.Fatalf("%s with overflowing delay did not panic", tc.name)
				}
				if want := "overflows simulated time"; !contains(msg, want) {
					t.Errorf("panic %q does not mention %q", msg, want)
				}
			}()
			tc.call(e)
			e.Run(0)
		})
	}
}

func TestSleepOverflowPanics(t *testing.T) {
	e := NewEngine()
	var msg string
	e.Spawn("p", func(p *Proc) {
		p.Sleep(5)
		// Recover on the proc goroutine itself and let the body return
		// normally, so the engine reaps the proc and Run completes.
		defer func() {
			msg, _ = recover().(string)
		}()
		p.Sleep(^Cycles(0))
	})
	e.Run(0)
	if !contains(msg, "overflows simulated time") {
		t.Errorf("Sleep overflow panic = %q", msg)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSleepFastForward(t *testing.T) {
	// A lone proc sleeping with nothing else pending must advance time
	// without consuming events: dead time when no context is active.
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(1000)
		}
	})
	end := e.Run(0)
	if end != 100_000 {
		t.Fatalf("end = %d, want 100000", end)
	}
	if e.FastSleeps() != 100 {
		t.Errorf("FastSleeps = %d, want 100", e.FastSleeps())
	}
	if e.DeadTime() != 100_000 {
		t.Errorf("DeadTime = %d, want 100000", e.DeadTime())
	}
	// Only the spawn event should have gone through the heap.
	if e.EventsDispatched() != 1 {
		t.Errorf("EventsDispatched = %d, want 1", e.EventsDispatched())
	}
}

func TestSleepFastForwardPreservesOrder(t *testing.T) {
	// A sleep landing exactly on a pending event's time must take the slow
	// path: the pending event was scheduled first and owns the instant.
	e := NewEngine()
	var trace []int
	e.At(10, func() { trace = append(trace, 1) })
	e.Spawn("p", func(p *Proc) {
		p.Sleep(10) // ties with the timer above
		trace = append(trace, 2)
		p.Sleep(5) // nothing pending before 15: fast path
		trace = append(trace, 3)
	})
	e.Run(0)
	if !reflect.DeepEqual(trace, []int{1, 2, 3}) {
		t.Errorf("trace = %v, want [1 2 3]", trace)
	}
	if e.Now() != 15 {
		t.Errorf("now = %d, want 15", e.Now())
	}
	if e.FastSleeps() != 1 {
		t.Errorf("FastSleeps = %d, want 1", e.FastSleeps())
	}
}

func TestSleepFastForwardRespectsRunLimit(t *testing.T) {
	// A sleep past the Run limit must park the proc on the heap so Run can
	// stop at the limit and a later Run can resume it.
	e := NewEngine()
	woke := Time(0)
	e.Spawn("p", func(p *Proc) {
		p.Sleep(100)
		woke = p.Now()
	})
	if end := e.Run(30); end != 30 {
		t.Fatalf("first Run ended at %d, want 30", end)
	}
	if woke != 0 {
		t.Fatal("proc woke before the limit was lifted")
	}
	if end := e.Run(0); end != 100 {
		t.Fatalf("second Run ended at %d, want 100", end)
	}
	if woke != 100 {
		t.Errorf("proc woke at %d, want 100", woke)
	}
}

func TestActiveContextsSuppressDeadTime(t *testing.T) {
	e := NewEngine()
	e.AddActive(1)
	e.Spawn("p", func(p *Proc) { p.Sleep(500) })
	e.Run(0)
	if e.DeadTime() != 0 {
		t.Errorf("DeadTime = %d with an active context, want 0", e.DeadTime())
	}
	e.AddActive(-1)
	defer func() {
		if recover() == nil {
			t.Error("negative active count did not panic")
		}
	}()
	e.AddActive(-1)
}

func TestEngineReset(t *testing.T) {
	e := NewEngineSeeded(7)
	e.Spawn("p", func(p *Proc) { p.Sleep(10) })
	e.At(5, func() {})
	e.Run(0)
	e.Reset(11)
	if e.Now() != 0 || e.Seed() != 11 || e.Live() != 0 {
		t.Fatalf("after Reset: now=%d seed=%d live=%d", e.Now(), e.Seed(), e.Live())
	}
	if e.DeadTime() != 0 || e.FastSleeps() != 0 || e.EventsDispatched() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	// The reset engine must behave exactly like a fresh one.
	var trace []int
	e.At(3, func() { trace = append(trace, 1) })
	e.Spawn("q", func(p *Proc) {
		p.Sleep(3)
		trace = append(trace, 2)
	})
	if end := e.Run(0); end != 3 {
		t.Fatalf("reset engine ended at %d, want 3", end)
	}
	if !reflect.DeepEqual(trace, []int{1, 2}) {
		t.Errorf("trace = %v, want [1 2]", trace)
	}
}

func TestResetWithPendingEventsPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Reset with pending events did not panic")
		}
	}()
	e.Reset(0)
}

func TestEngineSeedPlumbing(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Engine
		want uint64
	}{
		{"unseeded engine has seed zero", NewEngine, 0},
		{"seeded engine carries its seed", func() *Engine { return NewEngineSeeded(41) }, 41},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.mk().Seed(); got != tc.want {
				t.Errorf("Seed() = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestEngineRNGStreams(t *testing.T) {
	a, b := NewEngineSeeded(9), NewEngineSeeded(9)
	// Same (seed, stream) on different engines: identical sequences.
	ra, rb := a.RNG(1), b.RNG(1)
	for i := 0; i < 8; i++ {
		if ra.Uint64() != rb.Uint64() {
			t.Fatal("equal (seed, stream) pairs diverged")
		}
	}
	// Distinct streams and distinct seeds: decorrelated.
	if a.RNG(1).Uint64() == a.RNG(2).Uint64() {
		t.Error("streams 1 and 2 derive the same generator")
	}
	if a.RNG(1).Uint64() == NewEngineSeeded(10).RNG(1).Uint64() {
		t.Error("different engine seeds derive the same generator")
	}
	// Deriving an RNG mutates no engine state: repeat derivation matches.
	if a.RNG(3).Uint64() != a.RNG(3).Uint64() {
		t.Error("RNG derivation is stateful")
	}
}
