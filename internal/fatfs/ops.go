package fatfs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
)

// Dir identifies a directory: the root's fixed region or a subdirectory's
// cluster chain.
type Dir struct {
	fs           *FS
	firstCluster int // 0 for the root directory
}

// Root returns the root directory.
func (fs *FS) Root() Dir { return Dir{fs: fs} }

// IsRoot reports whether d is the root directory.
func (d Dir) IsRoot() bool { return d.firstCluster == 0 }

// FirstCluster returns the first cluster of a subdirectory (0 for root).
func (d Dir) FirstCluster() int { return d.firstCluster }

// Entry is a decoded directory entry.
type Entry struct {
	Name         string
	Attr         byte
	FirstCluster int
	Size         uint32

	// Index is the slot index within the containing directory; Addr is
	// the simulated address of the 32-byte entry.
	Index int
	Addr  mem.Addr
}

// IsDir reports whether the entry names a subdirectory.
func (e Entry) IsDir() bool { return e.Attr&attrDirectory != 0 }

// Dir converts a directory entry into a Dir handle.
func (e Entry) Dir(fs *FS) (Dir, error) {
	if !e.IsDir() {
		return Dir{}, fmt.Errorf("fatfs: %q is not a directory", e.Name)
	}
	return Dir{fs: fs, firstCluster: e.FirstCluster}, nil
}

// ErrNotFound is returned by Lookup when no entry matches.
type ErrNotFound struct{ Name string }

func (e ErrNotFound) Error() string { return fmt.Sprintf("fatfs: %q not found", e.Name) }

// forEachSlot visits directory slots in order until fn returns false.
// Slot loads are NOT charged here — visitors charge what they touch —
// but FAT hops between a subdirectory's clusters are.
func (fs *FS) forEachSlot(acc Access, d Dir, fn func(addr mem.Addr, idx int) bool) {
	if d.IsRoot() {
		for i := 0; i < fs.cfg.RootEntries; i++ {
			if !fn(fs.rootBase+mem.Addr(i*DirEntrySize), i) {
				return
			}
		}
		return
	}
	perCluster := fs.clusterBytes / DirEntrySize
	cl := d.firstCluster
	idx := 0
	for cl >= minCluster {
		base := fs.clusterAddr(cl)
		for s := 0; s < perCluster; s++ {
			if !fn(base+mem.Addr(s*DirEntrySize), idx) {
				return
			}
			idx++
		}
		next := fs.readFAT(acc, cl)
		if next >= fatEndOfFile {
			return
		}
		cl = int(next)
	}
}

// decodeEntry parses the dirent at addr (bytes must already be charged).
func (fs *FS) decodeEntry(addr mem.Addr, idx int) Entry {
	b := fs.img.Bytes(addr, DirEntrySize)
	var raw [11]byte
	copy(raw[:], b[:11])
	return Entry{
		Name:         DecodeName(raw),
		Attr:         b[11],
		FirstCluster: int(uint16(b[26]) | uint16(b[27])<<8),
		Size:         uint32(b[28]) | uint32(b[29])<<8 | uint32(b[30])<<16 | uint32(b[31])<<24,
		Index:        idx,
		Addr:         addr,
	}
}

// writeEntry emits a dirent at addr, charging acc.
func (fs *FS) writeEntry(acc Access, addr mem.Addr, raw [11]byte, attr byte, firstCluster int, size uint32) {
	b := make([]byte, DirEntrySize)
	copy(b[:11], raw[:])
	b[11] = attr
	b[26], b[27] = byte(firstCluster), byte(firstCluster>>8)
	b[28], b[29], b[30], b[31] = byte(size), byte(size>>8), byte(size>>16), byte(size>>24)
	acc.Store(addr, DirEntrySize)
	fs.img.WriteAt(addr, b)
}

// Lookup scans d for name, charging acc for every entry read until the
// match — the paper's inner loop ("Search dir for file", Fig. 1). It
// returns ErrNotFound when the directory does not contain name.
//
// The loop is the simulator's hottest host-side code: it resolves the
// backing bytes once per 512-byte sector (as EFSL reads them) and
// accumulates the per-entry compare cost locally, charging it in one
// Compute call — the same total, without an interface call per slot.
// The scan itself runs inline over each contiguous slot region
// (scanRegion) instead of dispatching a closure per slot; the charge
// sequence — one sector load per boundary, every visited slot counted,
// FAT hops between a subdirectory's clusters — is identical.
func (fs *FS) Lookup(acc Access, d Dir, name string) (Entry, error) {
	raw, err := EncodeName(name)
	if err != nil {
		return Entry{}, err
	}
	// A matched slot's name bytes equal raw exactly, so the entry's
	// decoded name is DecodeName(raw). When the caller's name is already
	// that canonical form — every generated workload name is — reuse it
	// instead of allocating a fresh string per hit.
	canon := name
	if !isCanonicalName(name, &raw) {
		canon = DecodeName(raw)
	}
	compared := 0
	var found Entry
	var ok, stop bool
	if d.IsRoot() {
		found, ok, _ = fs.scanRegion(acc, fs.rootBase, fs.cfg.RootEntries, 0, &raw, canon, &compared)
	} else {
		perCluster := fs.clusterBytes / DirEntrySize
		cl := d.firstCluster
		idx := 0
		for cl >= minCluster {
			found, ok, stop = fs.scanRegion(acc, fs.clusterAddr(cl), perCluster, idx, &raw, canon, &compared)
			if ok || stop {
				break
			}
			idx += perCluster
			next := fs.readFAT(acc, cl)
			if next >= fatEndOfFile {
				break
			}
			cl = int(next)
		}
	}
	acc.Compute(float64(compared) * CompareCost)
	if !ok {
		return Entry{}, ErrNotFound{Name: name}
	}
	return found, nil
}

// isCanonicalName reports whether name is byte-for-byte what
// DecodeName(raw) would return, without allocating the comparison string.
func isCanonicalName(name string, raw *[11]byte) bool {
	baseLen := 8
	for baseLen > 0 && raw[baseLen-1] == ' ' {
		baseLen--
	}
	extLen := 3
	for extLen > 0 && raw[8+extLen-1] == ' ' {
		extLen--
	}
	want := baseLen
	if extLen > 0 {
		want += 1 + extLen
	}
	if len(name) != want {
		return false
	}
	for i := 0; i < baseLen; i++ {
		if name[i] != raw[i] {
			return false
		}
	}
	if extLen > 0 {
		if name[baseLen] != '.' {
			return false
		}
		for i := 0; i < extLen; i++ {
			if name[baseLen+1+i] != raw[8+i] {
				return false
			}
		}
	}
	return true
}

// scanRegion scans nslots contiguous directory slots starting at base for
// the encoded name raw, charging one sector load per boundary crossed and
// counting every visited slot (including the 0x00 end-of-directory slot)
// into *compared. idx0 is the directory-wide index of the first slot; name
// is the decoded form of raw, stored on the matched entry. It returns the
// matched entry, whether a match was found, and whether the
// end-of-directory marker stopped the scan.
//
//o2:hotpath
func (fs *FS) scanRegion(acc Access, base mem.Addr, nslots, idx0 int, raw *[11]byte, name string, compared *int) (Entry, bool, bool) {
	// The 11-byte name compare runs as one 8-byte and one overlapping
	// 4-byte word compare (bytes 0-7 and 7-10); byte 7 is covered twice,
	// which is harmless.
	raw8 := binary.LittleEndian.Uint64(raw[0:8])
	raw4 := binary.LittleEndian.Uint32(raw[7:11])
	var sector []byte
	n := *compared
	for s := 0; s < nslots; s++ {
		addr := base + mem.Addr(s*DirEntrySize)
		off := int(addr % SectorSize)
		if off == 0 {
			acc.Load(addr, SectorSize)
			sector = fs.img.Bytes(addr, SectorSize)
		}
		n++
		b := sector[off : off+DirEntrySize]
		switch b[0] {
		case 0x00: // end-of-directory marker
			*compared = n
			return Entry{}, false, true
		case 0xE5: // deleted
			continue
		}
		if binary.LittleEndian.Uint64(b[0:8]) != raw8 ||
			binary.LittleEndian.Uint32(b[7:11]) != raw4 {
			continue
		}
		*compared = n
		return Entry{
			Name:         name,
			Attr:         b[11],
			FirstCluster: int(uint16(b[26]) | uint16(b[27])<<8),
			Size:         uint32(b[28]) | uint32(b[29])<<8 | uint32(b[30])<<16 | uint32(b[31])<<24,
			Index:        idx0 + s,
			Addr:         addr,
		}, true, false
	}
	*compared = n
	return Entry{}, false, false
}

// LookupPath resolves a "/"-separated path from the root, charging every
// directory scan along the way.
func (fs *FS) LookupPath(acc Access, path string) (Entry, error) {
	d := fs.Root()
	var e Entry
	start := 0
	if len(path) > 0 && path[0] == '/' {
		start = 1
	}
	rest := path[start:]
	if rest == "" {
		return Entry{}, fmt.Errorf("fatfs: empty path %q", path)
	}
	for rest != "" {
		comp := rest
		if i := indexByte(rest, '/'); i >= 0 {
			comp, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		var err error
		e, err = fs.Lookup(acc, d, comp)
		if err != nil {
			return Entry{}, err
		}
		if rest != "" {
			d, err = e.Dir(fs)
			if err != nil {
				return Entry{}, err
			}
		}
	}
	return e, nil
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// findFreeSlot returns the first free slot address in d, charging the scan.
func (fs *FS) findFreeSlot(acc Access, d Dir) (mem.Addr, int, error) {
	var addr mem.Addr
	idx := -1
	fs.forEachSlot(acc, d, func(a mem.Addr, i int) bool {
		acc.Load(a, 1)
		b := fs.img.Bytes(a, 1)[0]
		if b == 0x00 || b == 0xE5 {
			addr, idx = a, i
			return false
		}
		return true
	})
	if idx < 0 {
		return 0, 0, fmt.Errorf("fatfs: directory full")
	}
	return addr, idx, nil
}

// Create adds a file named name to d with the given contents (which may be
// empty). It fails if the name already exists.
func (fs *FS) Create(acc Access, d Dir, name string, data []byte) (Entry, error) {
	raw, err := EncodeName(name)
	if err != nil {
		return Entry{}, err
	}
	if _, err := fs.Lookup(acc, d, name); err == nil {
		return Entry{}, fmt.Errorf("fatfs: %q already exists", name)
	}
	addr, idx, err := fs.findFreeSlot(acc, d)
	if err != nil {
		return Entry{}, err
	}
	first := 0
	if len(data) > 0 {
		first, err = fs.writeNewChain(acc, data)
		if err != nil {
			return Entry{}, err
		}
	}
	fs.writeEntry(acc, addr, raw, attrArchive, first, uint32(len(data)))
	return fs.decodeEntry(addr, idx), nil
}

// writeNewChain allocates clusters for data and writes it, returning the
// first cluster.
func (fs *FS) writeNewChain(acc Access, data []byte) (int, error) {
	first, prev := 0, 0
	for off := 0; off < len(data); off += fs.clusterBytes {
		cl, err := fs.allocCluster(acc)
		if err != nil {
			if first != 0 {
				fs.freeChain(acc, first)
			}
			return 0, err
		}
		if first == 0 {
			first = cl
		} else {
			fs.setFAT(acc, prev, uint16(cl))
		}
		prev = cl
		end := off + fs.clusterBytes
		if end > len(data) {
			end = len(data)
		}
		acc.Store(fs.clusterAddr(cl), end-off)
		fs.img.WriteAt(fs.clusterAddr(cl), data[off:end])
	}
	return first, nil
}

// Mkdir creates a subdirectory under parent with capacity for at least
// capEntries entries, allocated contiguously so the directory forms a
// single span (a CoreTime object). The paper's benchmark directories are
// created with capacity 1000.
func (fs *FS) Mkdir(acc Access, parent Dir, name string, capEntries int) (Dir, error) {
	raw, err := EncodeName(name)
	if err != nil {
		return Dir{}, err
	}
	if _, err := fs.Lookup(acc, parent, name); err == nil {
		return Dir{}, fmt.Errorf("fatfs: %q already exists", name)
	}
	if capEntries < 1 {
		capEntries = 1
	}
	bytes := capEntries * DirEntrySize
	clusters := (bytes + fs.clusterBytes - 1) / fs.clusterBytes
	first, err := fs.allocChainContiguous(acc, clusters)
	if err != nil {
		return Dir{}, err
	}
	// Zero the directory clusters (end-of-directory markers).
	zero := make([]byte, fs.clusterBytes)
	for i := 0; i < clusters; i++ {
		a := fs.clusterAddr(first + i)
		acc.Store(a, fs.clusterBytes)
		fs.img.WriteAt(a, zero)
	}
	addr, _, err := fs.findFreeSlot(acc, parent)
	if err != nil {
		fs.freeChain(acc, first)
		return Dir{}, err
	}
	fs.writeEntry(acc, addr, raw, attrDirectory, first, 0)
	return Dir{fs: fs, firstCluster: first}, nil
}

// Populate bulk-creates count zero-length files in d named by namer,
// writing entries sequentially. It is the fast path for building benchmark
// directories (1,000 entries each) without O(n²) free-slot scans; it
// assumes d is empty.
func (fs *FS) Populate(d Dir, count int, namer func(i int) string) error {
	written := 0
	var failure error
	fs.forEachSlot(NullAccess{}, d, func(addr mem.Addr, idx int) bool {
		if written >= count {
			return false
		}
		raw, err := EncodeName(namer(written))
		if err != nil {
			failure = err
			return false
		}
		fs.writeEntry(NullAccess{}, addr, raw, attrArchive, 0, 0)
		written++
		return true
	})
	if failure != nil {
		return failure
	}
	if written < count {
		return fmt.Errorf("fatfs: directory holds %d of %d entries", written, count)
	}
	return nil
}

// ReadDir returns the live entries of d. Each slot read is charged.
func (fs *FS) ReadDir(acc Access, d Dir) []Entry {
	var out []Entry
	fs.forEachSlot(acc, d, func(addr mem.Addr, idx int) bool {
		acc.Load(addr, DirEntrySize)
		b := fs.img.Bytes(addr, 1)[0]
		if b == 0x00 {
			return false
		}
		if b == 0xE5 {
			return true
		}
		out = append(out, fs.decodeEntry(addr, idx))
		return true
	})
	return out
}

// ReadAll returns a file's contents, charging the chain walk and data
// loads.
func (fs *FS) ReadAll(acc Access, e Entry) ([]byte, error) {
	if e.IsDir() {
		return nil, fmt.Errorf("fatfs: %q is a directory", e.Name)
	}
	out := make([]byte, 0, e.Size)
	remaining := int(e.Size)
	if remaining == 0 {
		return out, nil
	}
	clusters, err := fs.chain(acc, e.FirstCluster)
	if err != nil {
		return nil, err
	}
	for _, cl := range clusters {
		n := remaining
		if n > fs.clusterBytes {
			n = fs.clusterBytes
		}
		a := fs.clusterAddr(cl)
		acc.Load(a, n)
		out = append(out, fs.img.ReadAt(a, n)...)
		remaining -= n
		if remaining == 0 {
			break
		}
	}
	if remaining != 0 {
		return nil, fmt.Errorf("fatfs: %q chain shorter than size %d", e.Name, e.Size)
	}
	return out, nil
}

// WriteFile replaces the contents of the file entry e with data,
// reallocating its chain.
func (fs *FS) WriteFile(acc Access, e *Entry, data []byte) error {
	if e.IsDir() {
		return fmt.Errorf("fatfs: %q is a directory", e.Name)
	}
	if e.FirstCluster != 0 {
		fs.freeChain(acc, e.FirstCluster)
	}
	first := 0
	if len(data) > 0 {
		var err error
		first, err = fs.writeNewChain(acc, data)
		if err != nil {
			return err
		}
	}
	e.FirstCluster = first
	e.Size = uint32(len(data))
	var raw [11]byte
	copy(raw[:], fs.img.Bytes(e.Addr, 11))
	fs.writeEntry(acc, e.Addr, raw, e.Attr, first, e.Size)
	return nil
}

// Unlink removes the named file or (empty) directory from d.
func (fs *FS) Unlink(acc Access, d Dir, name string) error {
	e, err := fs.Lookup(acc, d, name)
	if err != nil {
		return err
	}
	if e.IsDir() {
		sub, _ := e.Dir(fs)
		if len(fs.ReadDir(NullAccess{}, sub)) != 0 {
			return fmt.Errorf("fatfs: directory %q not empty", name)
		}
	}
	if e.FirstCluster != 0 {
		fs.freeChain(acc, e.FirstCluster)
	}
	acc.Store(e.Addr, 1)
	fs.img.Bytes(e.Addr, 1)[0] = 0xE5
	return nil
}

// Extent returns the contiguous byte span of a directory's entry storage,
// for registration as a CoreTime object. It fails if the chain is not
// contiguous (directories made with Mkdir always are).
func (fs *FS) Extent(d Dir) (mem.Span, error) {
	if d.IsRoot() {
		return mem.Span{Base: fs.rootBase, Size: uint64(fs.cfg.RootEntries * DirEntrySize)}, nil
	}
	clusters, err := fs.chain(NullAccess{}, d.firstCluster)
	if err != nil {
		return mem.Span{}, err
	}
	for i := 1; i < len(clusters); i++ {
		if clusters[i] != clusters[i-1]+1 {
			return mem.Span{}, fmt.Errorf("fatfs: directory chain not contiguous at cluster %d", clusters[i])
		}
	}
	return mem.Span{
		Base: fs.clusterAddr(clusters[0]),
		Size: uint64(len(clusters) * fs.clusterBytes),
	}, nil
}

// FreeClusters counts free FAT cells (host-side, uncharged).
func (fs *FS) FreeClusters() int {
	n := 0
	for i := minCluster; i < fs.nclusters+minCluster; i++ {
		if fs.img.Read16(fs.fatAddr(i)) == fatFree {
			n++
		}
	}
	return n
}

// CheckConsistency validates the volume like a small fsck: every reachable
// chain is acyclic and terminated, no cluster belongs to two chains, and
// file sizes fit their chains. It returns the first problem found.
func (fs *FS) CheckConsistency() error {
	owner := make(map[int]string)
	var walk func(d Dir, path string) error
	walk = func(d Dir, path string) error {
		for _, e := range fs.ReadDir(NullAccess{}, d) {
			name := path + "/" + e.Name
			if e.FirstCluster == 0 {
				if e.IsDir() {
					return fmt.Errorf("fatfs: directory %s has no clusters", name)
				}
				if e.Size != 0 {
					return fmt.Errorf("fatfs: file %s has size %d but no clusters", name, e.Size)
				}
				continue
			}
			clusters, err := fs.chain(NullAccess{}, e.FirstCluster)
			if err != nil {
				return fmt.Errorf("fatfs: %s: %w", name, err)
			}
			for _, cl := range clusters {
				if prev, dup := owner[cl]; dup {
					return fmt.Errorf("fatfs: cluster %d owned by both %s and %s", cl, prev, name)
				}
				owner[cl] = name
			}
			if !e.IsDir() {
				capacity := len(clusters) * fs.clusterBytes
				if int(e.Size) > capacity {
					return fmt.Errorf("fatfs: %s size %d exceeds chain capacity %d", name, e.Size, capacity)
				}
			} else {
				sub, _ := e.Dir(fs)
				if err := walk(sub, name); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(fs.Root(), "")
}
