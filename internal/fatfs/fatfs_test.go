package fatfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/stats"
)

func newFS(t testing.TB) *FS {
	t.Helper()
	img := mem.NewImage(64 << 20)
	fs, err := Format(img, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

var null = NullAccess{}

func TestFormatLayout(t *testing.T) {
	fs := newFS(t)
	if fs.NumClusters() < 1000 {
		t.Fatalf("only %d clusters in a 48 MB volume", fs.NumClusters())
	}
	// Boot sector signature.
	sig := fs.img.Bytes(fs.base+510, 2)
	if sig[0] != 0x55 || sig[1] != 0xAA {
		t.Fatal("boot sector signature missing")
	}
	if fs.FreeClusters() != fs.NumClusters() {
		t.Fatalf("fresh volume has %d free of %d clusters",
			fs.FreeClusters(), fs.NumClusters())
	}
}

func TestFormatRejectsBadConfig(t *testing.T) {
	img := mem.NewImage(1 << 20)
	bad := []Config{
		{TotalBytes: 1 << 20, SectorsPerCluster: 3, RootEntries: 512}, // non-power-of-two
		{TotalBytes: 1 << 20, SectorsPerCluster: 8, RootEntries: 7},   // partial sector
		{TotalBytes: 10_000, SectorsPerCluster: 8, RootEntries: 512},  // too small
	}
	for i, cfg := range bad {
		if _, err := Format(img, cfg); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
}

func TestNameRoundTrip(t *testing.T) {
	cases := []string{"FILE.TXT", "A", "12345678.123", "NOEXT", "F0001.DAT"}
	for _, name := range cases {
		raw, err := EncodeName(name)
		if err != nil {
			t.Fatalf("EncodeName(%q): %v", name, err)
		}
		if got := DecodeName(raw); got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
	}
}

func TestEncodeNameLowercases(t *testing.T) {
	raw, err := EncodeName("file.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeName(raw); got != "FILE.TXT" {
		t.Errorf("lowercase input became %q", got)
	}
}

func TestEncodeNameRejectsInvalid(t *testing.T) {
	bad := []string{"", "TOOLONGNAME.TXT", "X.LONG", "A/B.TXT", "SP ACE.T", ".EXT"}
	for _, name := range bad {
		if _, err := EncodeName(name); err == nil {
			t.Errorf("EncodeName(%q) accepted", name)
		}
	}
}

func TestCreateLookup(t *testing.T) {
	fs := newFS(t)
	data := []byte("hello fat world")
	if _, err := fs.Create(null, fs.Root(), "HELLO.TXT", data); err != nil {
		t.Fatal(err)
	}
	e, err := fs.Lookup(null, fs.Root(), "HELLO.TXT")
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != uint32(len(data)) {
		t.Fatalf("Size = %d, want %d", e.Size, len(data))
	}
	got, err := fs.ReadAll(null, e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("contents %q, want %q", got, data)
	}
}

func TestLookupNotFound(t *testing.T) {
	fs := newFS(t)
	_, err := fs.Lookup(null, fs.Root(), "NOPE.TXT")
	if _, ok := err.(ErrNotFound); !ok {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestCreateDuplicateRejected(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Create(null, fs.Root(), "X.TXT", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(null, fs.Root(), "X.TXT", nil); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestMultiClusterFile(t *testing.T) {
	fs := newFS(t)
	// 3.5 clusters of data.
	data := make([]byte, fs.ClusterBytes()*7/2)
	rng := stats.NewRNG(1)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	e, err := fs.Create(null, fs.Root(), "BIG.BIN", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll(null, e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-cluster contents corrupted")
	}
	if err := fs.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileRewrites(t *testing.T) {
	fs := newFS(t)
	e, err := fs.Create(null, fs.Root(), "F.TXT", []byte("short"))
	if err != nil {
		t.Fatal(err)
	}
	free := fs.FreeClusters()
	long := make([]byte, fs.ClusterBytes()*2+17)
	for i := range long {
		long[i] = byte(i)
	}
	if err := fs.WriteFile(null, &e, long); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll(null, e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, long) {
		t.Fatal("rewrite corrupted contents")
	}
	if fs.FreeClusters() != free-2 { // was 1 cluster, now 3
		t.Fatalf("free clusters %d, want %d", fs.FreeClusters(), free-2)
	}
	// Shrink back, chain must be released.
	if err := fs.WriteFile(null, &e, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if fs.FreeClusters() != free {
		t.Fatalf("shrink leaked clusters: %d free, want %d", fs.FreeClusters(), free)
	}
	if err := fs.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkFreesClusters(t *testing.T) {
	fs := newFS(t)
	free := fs.FreeClusters()
	data := make([]byte, fs.ClusterBytes()*2)
	if _, err := fs.Create(null, fs.Root(), "D.BIN", data); err != nil {
		t.Fatal(err)
	}
	if fs.FreeClusters() != free-2 {
		t.Fatalf("allocation accounting off: %d free", fs.FreeClusters())
	}
	if err := fs.Unlink(null, fs.Root(), "D.BIN"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeClusters() != free {
		t.Fatal("unlink leaked clusters")
	}
	if _, err := fs.Lookup(null, fs.Root(), "D.BIN"); err == nil {
		t.Fatal("unlinked file still found")
	}
	// The slot must be reusable.
	if _, err := fs.Create(null, fs.Root(), "E.BIN", nil); err != nil {
		t.Fatal(err)
	}
}

func TestMkdirAndNestedLookup(t *testing.T) {
	fs := newFS(t)
	d, err := fs.Mkdir(null, fs.Root(), "SUB", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(null, d, "LEAF.TXT", []byte("leaf")); err != nil {
		t.Fatal(err)
	}
	e, err := fs.LookupPath(null, "/SUB/LEAF.TXT")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll(null, e)
	if err != nil || string(got) != "leaf" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	if err := fs.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMkdirCapacityMatchesPaper(t *testing.T) {
	// A 1000-entry directory must occupy exactly 32,000 bytes of entry
	// storage => 8 clusters of 4 KB.
	fs := newFS(t)
	d, err := fs.Mkdir(null, fs.Root(), "DIR0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	span, err := fs.Extent(d)
	if err != nil {
		t.Fatal(err)
	}
	if span.Size != 32<<10 {
		t.Fatalf("directory span = %d bytes, want %d (8×4KB clusters)", span.Size, 32<<10)
	}
}

func TestExtentContiguous(t *testing.T) {
	fs := newFS(t)
	// Fragment the FAT: create a file, a dir, delete the file, make
	// another dir — the second dir must still be contiguous.
	if _, err := fs.Create(null, fs.Root(), "GAP.BIN", make([]byte, fs.ClusterBytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(null, fs.Root(), "D1", 500); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(null, fs.Root(), "GAP.BIN"); err != nil {
		t.Fatal(err)
	}
	d2, err := fs.Mkdir(null, fs.Root(), "D2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Extent(d2); err != nil {
		t.Fatalf("directory not contiguous: %v", err)
	}
}

func TestPopulateFillsDirectory(t *testing.T) {
	fs := newFS(t)
	d, err := fs.Mkdir(null, fs.Root(), "DIR0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Populate(d, 1000, func(i int) string {
		return fmt.Sprintf("F%07d", i)
	}); err != nil {
		t.Fatal(err)
	}
	entries := fs.ReadDir(null, d)
	if len(entries) != 1000 {
		t.Fatalf("ReadDir returned %d entries, want 1000", len(entries))
	}
	// Random spot checks via Lookup.
	for _, i := range []int{0, 1, 499, 999} {
		name := fmt.Sprintf("F%07d", i)
		if _, err := fs.Lookup(null, d, name); err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
	}
	if err := fs.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPopulateOverflowRejected(t *testing.T) {
	fs := newFS(t)
	d, err := fs.Mkdir(null, fs.Root(), "SMALL", 128)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity rounds up to one cluster = 128 entries; 129 must fail.
	if err := fs.Populate(d, 129, func(i int) string {
		return fmt.Sprintf("F%07d", i)
	}); err == nil {
		t.Fatal("overfull Populate accepted")
	}
}

func TestUnlinkNonEmptyDirRejected(t *testing.T) {
	fs := newFS(t)
	d, err := fs.Mkdir(null, fs.Root(), "SUB", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(null, d, "F.TXT", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(null, fs.Root(), "SUB"); err == nil {
		t.Fatal("unlink of non-empty directory accepted")
	}
	if err := fs.Unlink(null, d, "F.TXT"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(null, fs.Root(), "SUB"); err != nil {
		t.Fatalf("unlink of emptied directory failed: %v", err)
	}
	if err := fs.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDeletedEntriesSkippedInLookup(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Create(null, fs.Root(), "A.TXT", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(null, fs.Root(), "B.TXT", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(null, fs.Root(), "A.TXT"); err != nil {
		t.Fatal(err)
	}
	// B sits after the deleted slot; lookup must skip, not stop.
	if _, err := fs.Lookup(null, fs.Root(), "B.TXT"); err != nil {
		t.Fatalf("lookup after deleted entry: %v", err)
	}
}

func TestConsistencyRandomOps(t *testing.T) {
	// Property: arbitrary create/write/delete sequences keep the volume
	// consistent and never lose allocated clusters.
	f := func(seed uint64) bool {
		img := mem.NewImage(16 << 20)
		fs, err := Format(img, Config{TotalBytes: 8 << 20, SectorsPerCluster: 8, RootEntries: 512})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(seed)
		live := map[string][]byte{}
		for op := 0; op < 120; op++ {
			name := fmt.Sprintf("F%04d.DAT", rng.Intn(40))
			switch rng.Intn(3) {
			case 0: // create
				if _, exists := live[name]; exists {
					continue
				}
				data := make([]byte, rng.Intn(3*fs.ClusterBytes()))
				for i := range data {
					data[i] = byte(rng.Uint64())
				}
				if _, err := fs.Create(null, fs.Root(), name, data); err != nil {
					return false
				}
				live[name] = data
			case 1: // rewrite
				if _, exists := live[name]; !exists {
					continue
				}
				e, err := fs.Lookup(null, fs.Root(), name)
				if err != nil {
					return false
				}
				data := make([]byte, rng.Intn(2*fs.ClusterBytes()))
				for i := range data {
					data[i] = byte(rng.Uint64())
				}
				if err := fs.WriteFile(null, &e, data); err != nil {
					return false
				}
				live[name] = data
			case 2: // delete
				if _, exists := live[name]; !exists {
					continue
				}
				if err := fs.Unlink(null, fs.Root(), name); err != nil {
					return false
				}
				delete(live, name)
			}
		}
		// All live files readable with correct contents.
		for name, want := range live {
			e, err := fs.Lookup(null, fs.Root(), name)
			if err != nil {
				return false
			}
			got, err := fs.ReadAll(null, e)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return fs.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupChargesProportionalToPosition(t *testing.T) {
	// The cost model must reflect the linear scan: finding the last
	// entry costs more than finding the first.
	fs := newFS(t)
	d, err := fs.Mkdir(null, fs.Root(), "DIR0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Populate(d, 1000, func(i int) string {
		return fmt.Sprintf("F%07d", i)
	}); err != nil {
		t.Fatal(err)
	}
	var first, last countingAccess
	if _, err := fs.Lookup(&first, d, "F0000000"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(&last, d, "F0000999"); err != nil {
		t.Fatal(err)
	}
	// First entry: one sector load. Last entry: 63 sector loads (32,000
	// bytes) plus 7 FAT hops. The compare loop is strictly per-entry.
	if first.loads != 1 {
		t.Fatalf("first-entry lookup charged %d loads, want 1 sector", first.loads)
	}
	if last.loads < 60*first.loads {
		t.Fatalf("scan not linear: first=%d loads, last=%d loads", first.loads, last.loads)
	}
	if last.compute < 900*CompareCost {
		t.Fatalf("compare cost not per-entry: %v", last.compute)
	}
}

// countingAccess counts charged operations for cost-model tests.
type countingAccess struct {
	loads, stores int
	compute       float64
}

func (c *countingAccess) Load(mem.Addr, int)  { c.loads++ }
func (c *countingAccess) Store(mem.Addr, int) { c.stores++ }
func (c *countingAccess) Compute(x float64)   { c.compute += x }
