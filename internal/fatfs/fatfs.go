// Package fatfs is an in-memory FAT16 file system living in the simulated
// machine's physical memory.
//
// It stands in for the paper's modified EFSL FAT implementation (§5):
// an in-memory image, no buffer cache, and a tight file-name lookup loop.
// Directory entries are the classic 32 bytes; the evaluation directories
// hold 1,000 entries each, so one directory occupies exactly 32,000 bytes
// of directory clusters — the same working-set arithmetic as the paper.
//
// Every metadata structure (boot sector, FAT, directory entries) is real
// bytes in the image, parsed on every operation. Simulated cost is charged
// through the Access interface: operations performed with a NullAccess are
// free (setup), operations performed with an *exec.Batch charge the exact
// cache/DRAM latencies of the bytes they touch.
package fatfs

import (
	"fmt"
	"strings"

	"repro/internal/mem"
)

// Access abstracts who pays for the bytes an operation touches.
// *exec.Batch satisfies it.
type Access interface {
	Load(addr mem.Addr, n int)
	Store(addr mem.Addr, n int)
	Compute(cycles float64)
}

// NullAccess charges nothing; used while building images.
type NullAccess struct{}

// Load implements Access.
func (NullAccess) Load(mem.Addr, int) {}

// Store implements Access.
func (NullAccess) Store(mem.Addr, int) {}

// Compute implements Access.
func (NullAccess) Compute(float64) {}

// Cost constants for the lookup loop's per-entry computation, in cycles.
// The paper's modified EFSL had a "higher-performance inner loop for file
// name lookup": a handful of cycles per 32-byte entry compare.
const (
	CompareCost   = 4 // per directory entry name comparison
	FATDecodeCost = 2 // per FAT cell decode
)

// Geometry constants of FAT16.
const (
	SectorSize   = 512
	DirEntrySize = 32

	attrReadOnly  = 0x01
	attrDirectory = 0x10
	attrArchive   = 0x20

	fatFree      = 0x0000
	fatEndOfFile = 0xFFFF
	fatReserved  = 0x0001
	minCluster   = 2 // clusters 0 and 1 are reserved in FAT
)

// Config sizes a volume.
type Config struct {
	// TotalBytes is the full volume size (boot sector + FAT + root
	// directory + data region).
	TotalBytes int
	// SectorsPerCluster sets the cluster size; 8 gives 4 KB clusters.
	SectorsPerCluster int
	// RootEntries is the fixed capacity of the root directory.
	RootEntries int
}

// DefaultConfig returns a volume sized for the paper's largest benchmark
// point (≈20 MB of directory data plus metadata).
func DefaultConfig() Config {
	return Config{
		TotalBytes:        48 << 20,
		SectorsPerCluster: 8,
		RootEntries:       1024,
	}
}

// FS is a formatted FAT16 volume.
type FS struct {
	img  *mem.Image
	cfg  Config
	base mem.Addr

	fatBase   mem.Addr
	rootBase  mem.Addr
	dataBase  mem.Addr
	nclusters int // data clusters, numbered from minCluster

	clusterBytes int

	// allocHint speeds host-side bulk setup; correctness never depends
	// on it (allocation falls back to a full FAT scan).
	allocHint int
}

// Format lays a fresh FAT16 volume into img. The volume occupies a single
// allocation of cfg.TotalBytes.
func Format(img *mem.Image, cfg Config) (*FS, error) {
	if cfg.SectorsPerCluster <= 0 || cfg.SectorsPerCluster&(cfg.SectorsPerCluster-1) != 0 {
		return nil, fmt.Errorf("fatfs: sectors per cluster %d must be a positive power of two",
			cfg.SectorsPerCluster)
	}
	if cfg.RootEntries <= 0 || cfg.RootEntries*DirEntrySize%SectorSize != 0 {
		return nil, fmt.Errorf("fatfs: root entries %d must fill whole sectors", cfg.RootEntries)
	}
	clusterBytes := cfg.SectorsPerCluster * SectorSize
	if cfg.TotalBytes < 64*clusterBytes {
		return nil, fmt.Errorf("fatfs: volume of %d bytes too small", cfg.TotalBytes)
	}

	// Sector-align the volume so sector-granular directory reads line up
	// with hardware sector boundaries.
	base, err := img.Alloc(uint64(cfg.TotalBytes), SectorSize)
	if err != nil {
		return nil, fmt.Errorf("fatfs: allocating volume: %w", err)
	}

	// Estimate cluster count, then size the FAT to match. One iteration
	// is enough at our scales; verify the layout fits afterwards.
	totalSectors := cfg.TotalBytes / SectorSize
	rootSectors := cfg.RootEntries * DirEntrySize / SectorSize
	// sectors ≈ 1 (boot) + fatSectors + rootSectors + clusters*spc
	nclusters := (totalSectors - 1 - rootSectors) / cfg.SectorsPerCluster
	fatSectors := ((nclusters+minCluster)*2 + SectorSize - 1) / SectorSize
	nclusters = (totalSectors - 1 - fatSectors - rootSectors) / cfg.SectorsPerCluster
	if nclusters < 16 {
		return nil, fmt.Errorf("fatfs: layout leaves only %d clusters", nclusters)
	}

	fs := &FS{
		img:          img,
		cfg:          cfg,
		base:         base,
		fatBase:      base + mem.Addr(SectorSize),
		clusterBytes: clusterBytes,
		nclusters:    nclusters,
		allocHint:    minCluster,
	}
	fs.rootBase = fs.fatBase + mem.Addr(fatSectors*SectorSize)
	fs.dataBase = fs.rootBase + mem.Addr(rootSectors*SectorSize)

	fs.writeBootSector(totalSectors, fatSectors)

	// Zero the FAT and root directory; mark reserved cells.
	zero := make([]byte, (nclusters+minCluster)*2)
	img.WriteAt(fs.fatBase, zero)
	img.WriteAt(fs.rootBase, make([]byte, cfg.RootEntries*DirEntrySize))
	fs.setFAT(NullAccess{}, 0, 0xFFF8) // media descriptor copy
	fs.setFAT(NullAccess{}, 1, fatEndOfFile)
	return fs, nil
}

// writeBootSector emits a minimal but well-formed BPB.
func (fs *FS) writeBootSector(totalSectors, fatSectors int) {
	b := make([]byte, SectorSize)
	copy(b[0:3], []byte{0xEB, 0x3C, 0x90}) // jump
	copy(b[3:11], []byte("REPROFAT"))      // OEM
	put16 := func(off int, v uint16) { b[off] = byte(v); b[off+1] = byte(v >> 8) }
	put32 := func(off int, v uint32) {
		b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	put16(11, SectorSize)
	b[13] = byte(fs.cfg.SectorsPerCluster)
	put16(14, 1) // reserved sectors
	b[16] = 1    // one FAT
	put16(17, uint16(fs.cfg.RootEntries))
	if totalSectors < 1<<16 {
		put16(19, uint16(totalSectors))
	} else {
		put32(32, uint32(totalSectors))
	}
	b[21] = 0xF8 // media descriptor: fixed disk
	put16(22, uint16(fatSectors))
	b[510], b[511] = 0x55, 0xAA
	fs.img.WriteAt(fs.base, b)
}

// Image returns the backing image.
func (fs *FS) Image() *mem.Image { return fs.img }

// ClusterBytes returns the cluster size in bytes.
func (fs *FS) ClusterBytes() int { return fs.clusterBytes }

// NumClusters returns the number of data clusters.
func (fs *FS) NumClusters() int { return fs.nclusters }

// clusterAddr returns the address of data cluster n (n >= minCluster).
func (fs *FS) clusterAddr(n int) mem.Addr {
	return fs.dataBase + mem.Addr((n-minCluster)*fs.clusterBytes)
}

// fatAddr returns the address of FAT cell n.
func (fs *FS) fatAddr(n int) mem.Addr { return fs.fatBase + mem.Addr(2*n) }

// readFAT reads FAT cell n, charging acc.
func (fs *FS) readFAT(acc Access, n int) uint16 {
	acc.Load(fs.fatAddr(n), 2)
	acc.Compute(FATDecodeCost)
	return fs.img.Read16(fs.fatAddr(n))
}

// setFAT writes FAT cell n, charging acc.
func (fs *FS) setFAT(acc Access, n int, v uint16) {
	acc.Store(fs.fatAddr(n), 2)
	fs.img.Write16(fs.fatAddr(n), v)
}

// allocCluster finds a free cluster, marks it end-of-chain, and returns
// its number. The scan is charged to acc.
func (fs *FS) allocCluster(acc Access) (int, error) {
	limit := fs.nclusters + minCluster
	for off := 0; off < fs.nclusters; off++ {
		n := fs.allocHint + off
		if n >= limit {
			n = minCluster + (n - limit)
		}
		if fs.readFAT(acc, n) == fatFree {
			fs.setFAT(acc, n, fatEndOfFile)
			fs.allocHint = n + 1
			return n, nil
		}
	}
	return 0, fmt.Errorf("fatfs: no free clusters")
}

// allocChainContiguous allocates count clusters guaranteed contiguous, for
// directories that must form a single span (CoreTime objects).
func (fs *FS) allocChainContiguous(acc Access, count int) (int, error) {
	if count <= 0 {
		return 0, fmt.Errorf("fatfs: contiguous chain of %d clusters", count)
	}
	limit := fs.nclusters + minCluster
	for start := minCluster; start+count <= limit; start++ {
		ok := true
		for i := 0; i < count; i++ {
			if fs.readFAT(acc, start+i) != fatFree {
				ok = false
				start += i // skip past the obstacle
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < count-1; i++ {
			fs.setFAT(acc, start+i, uint16(start+i+1))
		}
		fs.setFAT(acc, start+count-1, fatEndOfFile)
		if fs.allocHint < start+count {
			fs.allocHint = start + count
		}
		return start, nil
	}
	return 0, fmt.Errorf("fatfs: no run of %d contiguous free clusters", count)
}

// freeChain releases the chain starting at cluster n.
func (fs *FS) freeChain(acc Access, n int) {
	for n >= minCluster && n < fs.nclusters+minCluster {
		next := fs.readFAT(acc, n)
		fs.setFAT(acc, n, fatFree)
		if next >= fatEndOfFile || next == fatFree {
			return
		}
		n = int(next)
	}
}

// chain returns the cluster chain starting at n, charging FAT reads.
func (fs *FS) chain(acc Access, n int) ([]int, error) {
	var out []int
	seen := make(map[int]bool)
	for n >= minCluster {
		if seen[n] {
			return nil, fmt.Errorf("fatfs: FAT cycle at cluster %d", n)
		}
		seen[n] = true
		out = append(out, n)
		next := fs.readFAT(acc, n)
		if next >= fatEndOfFile {
			return out, nil
		}
		if next == fatFree || next == fatReserved {
			return nil, fmt.Errorf("fatfs: chain hits free/reserved cell after cluster %d", n)
		}
		n = int(next)
	}
	return out, nil
}

// EncodeName converts "NAME.EXT" to the on-disk 11-byte 8.3 form.
func EncodeName(name string) ([11]byte, error) {
	var out [11]byte
	for i := range out {
		out[i] = ' '
	}
	name = strings.ToUpper(name)
	base, ext := name, ""
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		base, ext = name[:i], name[i+1:]
	}
	if base == "" || len(base) > 8 || len(ext) > 3 {
		return out, fmt.Errorf("fatfs: %q does not fit 8.3", name)
	}
	for _, part := range []struct {
		s   string
		off int
	}{{base, 0}, {ext, 8}} {
		for i := 0; i < len(part.s); i++ {
			c := part.s[i]
			if c <= ' ' || c == '.' || c == '/' || c == '\\' || c >= 0x7F {
				return out, fmt.Errorf("fatfs: invalid character %q in name %q", c, name)
			}
			out[part.off+i] = c
		}
	}
	return out, nil
}

// DecodeName converts the on-disk form back to "NAME.EXT".
func DecodeName(raw [11]byte) string {
	base := strings.TrimRight(string(raw[:8]), " ")
	ext := strings.TrimRight(string(raw[8:]), " ")
	if ext == "" {
		return base
	}
	return base + "." + ext
}
