package machine

import "repro/internal/sim"

// bwMeter models a bandwidth-limited resource with windowed accounting:
// time is divided into fixed windows, each admitting capacity transfers;
// transfers beyond capacity are delayed by their overflow position times
// the service interval.
//
// This formulation is deliberately order-independent in the access
// timestamp: simulated threads batch memory accesses and issue them with
// future-dated timestamps, so a cursor-style "next free slot" model would
// let one thread's in-flight batch delay every other thread's
// present-time accesses. Windowed demand counting charges queueing where
// the demand lands in time, whatever order the simulator discovers it.
//
// # Saturating (deficit-carry) mode
//
// The windowed model resets demand at every window boundary: a resource
// offered 2× its capacity forever charges each window's overflow but
// never builds a backlog, so sustained saturation underestimates queueing
// — exactly the regime the big-machine NUMA experiments need to expose.
// With carry enabled, a window that ends over capacity hands its unserved
// excess to the next accounted window as that window's starting demand,
// drained at capacity transfers per intervening idle window. The carry is
// computed in O(1) from the most recent accounted window (headWin) — no
// per-event allocation, no scan.
//
// Carry trades the strict order-independence above for backlog fidelity:
// a window's starting demand depends on which earlier windows were
// already accounted when it was first touched. The simulation engine is
// single-threaded and discovers accesses in a deterministic order, so
// results remain exactly reproducible; the meters are reset by
// Machine.Reset/FlushAll so arena-reused cells start from the same blank
// state as a fresh machine. Presets that do not opt in (everything before
// the NUMA family) keep the legacy window-local behavior bit for bit.
type bwMeter struct {
	window   sim.Cycles // accounting window length
	service  sim.Cycles // cycles per transfer
	capacity uint32     // transfers admitted per window without delay
	carry    bool       // saturating mode: excess demand rolls forward
	headWin  uint64     // carry mode: highest window index accounted so far
	headSet  bool       // carry mode: whether headWin is valid
	ring     [64]bwSlot
}

type bwSlot struct {
	idx   uint64
	count uint32
}

// bwWindow is the accounting window length in cycles.
const bwWindow = 4096

func newBWMeter(service sim.Cycles) bwMeter {
	m := bwMeter{window: bwWindow, service: service}
	if service > 0 {
		m.capacity = uint32(bwWindow / service)
	}
	return m
}

// newSaturatingBWMeter is newBWMeter with deficit-carry accounting.
func newSaturatingBWMeter(service sim.Cycles) bwMeter {
	m := newBWMeter(service)
	m.carry = true
	return m
}

// reserve records one transfer at time at and returns its queueing delay.
//
//o2:hotpath
func (b *bwMeter) reserve(at sim.Time) sim.Cycles {
	if b.capacity == 0 {
		return 0
	}
	w := uint64(at) / uint64(b.window)
	if b.carry && b.headSet && w > b.headWin && w-b.headWin >= uint64(len(b.ring)) {
		// A future-dated access ≥64 windows past the head would alias a
		// ring slot that may still hold the live head window's demand —
		// materializing it would evict that count before its excess was
		// ever carried, silently dropping backlog, and would teleport
		// headWin so far forward that present-time accesses in the still-
		// live window restart from zero. Charge the far access against the
		// drained backlog without touching the ring or the head: at that
		// horizon the carry has almost always drained to zero anyway, and
		// the one approximation — same-far-window accesses not seeing each
		// other's demand — is harmless next to losing the live backlog.
		cnt := b.carryInto(w) + 1
		if cnt <= b.capacity {
			return 0
		}
		return sim.Cycles(cnt-b.capacity) * b.service
	}
	slot := &b.ring[w%uint64(len(b.ring))]
	if slot.idx != w {
		start := uint32(0)
		if b.carry {
			start = b.carryInto(w)
		}
		slot.idx = w
		slot.count = start
	}
	if b.carry && (!b.headSet || w > b.headWin) {
		b.headWin = w
		b.headSet = true
	}
	slot.count++
	if slot.count <= b.capacity {
		return 0
	}
	return sim.Cycles(slot.count-b.capacity) * b.service
}

// carryInto computes the backlog window w inherits from earlier demand:
// the most recent accounted window's excess over capacity, minus capacity
// transfers drained per idle window in between. O(1): only the head
// window can carry forward (any other slot's window is older than head
// and its excess has, by induction, already been folded into head's
// starting count when head was first touched).
//
//o2:hotpath
func (b *bwMeter) carryInto(w uint64) uint32 {
	if !b.headSet || b.headWin >= w {
		// Nothing accounted yet, or w is at/behind the head (an
		// out-of-order timestamp into the past); backlog from even
		// earlier windows was already folded forward when they were live.
		return 0
	}
	src := b.headWin
	s := &b.ring[src%uint64(len(b.ring))]
	if s.idx != src || s.count <= b.capacity {
		return 0
	}
	excess := uint64(s.count - b.capacity)
	drained := (w - src - 1) * uint64(b.capacity)
	if drained >= excess {
		return 0
	}
	return uint32(excess - drained)
}

// reset clears all accounted demand and carry state.
func (b *bwMeter) reset() {
	for i := range b.ring {
		b.ring[i] = bwSlot{}
	}
	b.headWin = 0
	b.headSet = false
}
