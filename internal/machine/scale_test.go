package machine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// These tests cover the big-machine additions: the node-count construction
// guard, the saturating bandwidth meters, the wide-directory fan-out
// paths, and full Reset of the new queueing state.

// TestNewRejectsOverwideMachine pins the construction guard that replaced
// the old 64-node directory cap: a machine whose cores+chips exceed the
// sharer bitset's maximum must fail loudly at New, not alias holder bits.
func TestNewRejectsOverwideMachine(t *testing.T) {
	cfg := topology.NUMA256()
	cfg.Chips = 128 // 1024 cores + 128 chips, way past MaxNodes
	cfg.GridW, cfg.GridH = 16, 8
	if _, err := New(cfg, 1<<20); err == nil {
		t.Fatalf("New accepted a machine with %d directory nodes (max %d)",
			cfg.NumCores()+cfg.Chips, coherence.MaxNodes)
	}
}

// TestNUMAPresetsBuild proves each NUMA preset validates and constructs,
// with the directory width the preset implies.
func TestNUMAPresetsBuild(t *testing.T) {
	for _, tc := range []struct {
		cfg    topology.Config
		cores  int
		nwords int
	}{
		{topology.NUMA64(), 64, 2},   // 64 cores + 8 L3s = 72 nodes
		{topology.NUMA128(), 128, 3}, // 144 nodes
		{topology.NUMA256(), 256, 5}, // 288 nodes
	} {
		t.Run(tc.cfg.Name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			m, err := New(tc.cfg, 1<<20)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if m.NumCores() != tc.cores {
				t.Fatalf("NumCores = %d, want %d", m.NumCores(), tc.cores)
			}
			if w := m.Directory().NumWords(); w != tc.nwords {
				t.Fatalf("directory NumWords = %d, want %d", w, tc.nwords)
			}
			if m.link == nil {
				t.Fatal("NUMA preset built without interconnect meters")
			}
		})
	}
}

// TestWideMachineCoherence drives a 256-core machine through a
// shared-line workload wide enough that holder sets cross word
// boundaries — every core reads one line, then one core writes it — and
// checks the cross-word invalidation fan-out plus the structural
// invariants.
func TestWideMachineCoherence(t *testing.T) {
	cfg := topology.NUMA256()
	m, err := New(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const addr = mem.Addr(4096)
	at := sim.Time(0)
	for core := 0; core < m.NumCores(); core++ {
		at += sim.Time(m.Access(core, addr, false, at))
	}
	l := cache.LineOf(addr, m.LineSize())
	if got := m.Directory().SharerCount(l); got != m.NumCores() {
		t.Fatalf("SharerCount = %d after all-core read, want %d", got, m.NumCores())
	}
	// One store must collapse the whole 256-core sharer set.
	m.Access(17, addr, true, at)
	if got := m.Directory().SharerCount(l); got != 1 {
		t.Fatalf("SharerCount = %d after store, want 1", got)
	}
	if !m.Directory().Holds(l, coherence.Node(17)) {
		t.Fatal("writer lost its own copy")
	}
	if got := m.Counters().Total().Invalidations; got != uint64(m.NumCores()-1) {
		t.Fatalf("Invalidations = %d, want %d", got, m.NumCores()-1)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSaturatingMetersChargeAndReset drives a NUMA machine's DRAM
// controllers past capacity, checks that bw-stall counters record the
// queueing, then proves Machine.Reset returns the meters to a state
// byte-identical to a fresh machine's: replaying the same access schedule
// yields the same latencies and counters.
func TestSaturatingMetersChargeAndReset(t *testing.T) {
	cfg := topology.NUMA64()
	run := func(m *Machine) (total sim.Cycles) {
		// A strided read sweep much larger than the caches, issued at a
		// single timestamp so offered traffic lands in one accounting
		// window and saturates the controllers.
		base := mem.Addr(1 << 16)
		for i := 0; i < 20_000; i++ {
			addr := base + mem.Addr(i*m.LineSize())
			total += m.Access(i%m.NumCores(), addr, false, 0)
		}
		return total
	}
	fresh, err := New(cfg, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	want := run(fresh)
	if q := fresh.Counters().Total().DRAMQueueCycles; q == 0 {
		t.Fatal("saturating sweep charged no DRAM queueing")
	}
	wantCtr := fresh.Counters().Total()

	// Same machine, after Reset: must replay identically.
	fresh.Reset()
	if got := run(fresh); got != want {
		t.Fatalf("post-Reset replay cost %d cycles, fresh run cost %d", got, want)
	}
	if got := fresh.Counters().Total(); got != wantCtr {
		t.Fatalf("post-Reset counters diverge:\n got %+v\nwant %+v", got, wantCtr)
	}
}

// TestLinkMeterCharges proves cross-socket traffic queues at the
// interconnect port when LinkServiceInterval is set, and that the same
// schedule on a topology without link metering charges none.
func TestLinkMeterCharges(t *testing.T) {
	crossSocketSweep := func(cfg topology.Config) uint64 {
		m := MustNew(cfg, 1<<26)
		// Core 0 reads lines homed on every other chip, all at t=0: every
		// fill is a remote-home DRAM fetch through that chip's port.
		for i := 0; i < 10_000; i++ {
			m.Access(0, mem.Addr(1<<16+i*m.LineSize()), false, 0)
		}
		return m.Counters().Total().LinkQueueCycles
	}
	if q := crossSocketSweep(topology.NUMA64()); q == 0 {
		t.Fatal("NUMA64 cross-socket sweep charged no link queueing")
	}
	if q := crossSocketSweep(topology.AMD16()); q != 0 {
		t.Fatalf("AMD16 (no link model) charged %d link-queue cycles", q)
	}
}
