package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBWMeterUnderCapacityFree(t *testing.T) {
	m := newBWMeter(16) // capacity 4096/16 = 256 per window
	for i := 0; i < 256; i++ {
		if d := m.reserve(sim.Time(i)); d != 0 {
			t.Fatalf("transfer %d delayed %d cycles under capacity", i, d)
		}
	}
}

func TestBWMeterOverflowDelaysLinearly(t *testing.T) {
	m := newBWMeter(16)
	for i := 0; i < 256; i++ {
		m.reserve(100)
	}
	for k := 1; k <= 5; k++ {
		if d := m.reserve(100); d != sim.Cycles(k*16) {
			t.Fatalf("overflow %d delayed %d, want %d", k, d, k*16)
		}
	}
}

func TestBWMeterWindowsIndependent(t *testing.T) {
	m := newBWMeter(16)
	for i := 0; i < 400; i++ {
		m.reserve(0) // saturate window 0
	}
	if d := m.reserve(5000); d != 0 {
		t.Fatalf("fresh window inherited %d cycles of delay", d)
	}
}

func TestBWMeterOrderIndependence(t *testing.T) {
	// Demand counted in window W must not affect accesses in windows
	// before W, regardless of the order reservations arrive.
	m := newBWMeter(16)
	m.reserve(100_000) // far-future access first
	if d := m.reserve(0); d != 0 {
		t.Fatalf("past access delayed %d by future reservation", d)
	}
}

func TestBWMeterDisabled(t *testing.T) {
	m := newBWMeter(0)
	for i := 0; i < 10_000; i++ {
		if m.reserve(0) != 0 {
			t.Fatal("disabled meter delayed a transfer")
		}
	}
}

func TestBWMeterReset(t *testing.T) {
	m := newBWMeter(16)
	for i := 0; i < 300; i++ {
		m.reserve(50)
	}
	m.reset()
	if d := m.reserve(50); d != 0 {
		t.Fatalf("reset meter still delayed %d", d)
	}
}

func TestBWMeterDelayMonotoneWithinWindow(t *testing.T) {
	f := func(seed uint8) bool {
		m := newBWMeter(sim.Cycles(seed%32) + 1)
		var prev sim.Cycles
		for i := 0; i < 2000; i++ {
			d := m.reserve(1) // all in one window
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBWMeterRingReuse(t *testing.T) {
	// Windows far apart reuse ring slots; counts must not leak between
	// windows that share a slot (w and w+64).
	m := newBWMeter(16)
	for i := 0; i < 300; i++ {
		m.reserve(0) // window 0, overflowing
	}
	at := sim.Time(64 * 4096) // window 64 → same ring slot as window 0
	if d := m.reserve(at); d != 0 {
		t.Fatalf("ring slot leaked %d cycles of demand across windows", d)
	}
}

// --- saturating (deficit-carry) mode ---

func TestBWMeterCarryRollsBacklogForward(t *testing.T) {
	// 512 transfers into window 0 (capacity 256) leave a 256-transfer
	// backlog. The first transfer of window 1 must see that backlog as its
	// starting demand: delay (256+1-256)*service = 16.
	m := newSaturatingBWMeter(16)
	for i := 0; i < 512; i++ {
		m.reserve(0)
	}
	if d := m.reserve(sim.Time(bwWindow)); d != 16 {
		t.Fatalf("first transfer after saturated window delayed %d, want 16", d)
	}
}

func TestBWMeterCarryDrainsAtCapacityPerIdleWindow(t *testing.T) {
	// Backlog 512 over capacity; after two fully idle windows (2×256
	// drained) the meter must be clear again.
	m := newSaturatingBWMeter(16)
	for i := 0; i < 256+512; i++ {
		m.reserve(0)
	}
	if d := m.reserve(sim.Time(3 * bwWindow)); d != 0 {
		t.Fatalf("drained meter still delayed %d", d)
	}
	// One idle window drains only 256 of the 512: residual backlog 256.
	m.reset()
	for i := 0; i < 256+512; i++ {
		m.reserve(0)
	}
	if d := m.reserve(sim.Time(2 * bwWindow)); d != sim.Cycles(257-256)*16 {
		t.Fatalf("partially drained meter delayed %d, want 16", d)
	}
}

func TestBWMeterCarryPastWindowUnaffected(t *testing.T) {
	// Backlog never flows backward: demand accounted in window 2 must not
	// delay a (late-discovered) access in window 1.
	m := newSaturatingBWMeter(16)
	for i := 0; i < 600; i++ {
		m.reserve(sim.Time(2 * bwWindow))
	}
	if d := m.reserve(sim.Time(bwWindow)); d != 0 {
		t.Fatalf("past window inherited %d cycles from future backlog", d)
	}
}

func TestBWMeterCarryResetClearsBacklog(t *testing.T) {
	m := newSaturatingBWMeter(16)
	for i := 0; i < 10_000; i++ {
		m.reserve(0)
	}
	m.reset()
	if d := m.reserve(sim.Time(bwWindow)); d != 0 {
		t.Fatalf("reset carry meter still delayed %d", d)
	}
}

func TestBWMeterCarryFarFutureCannotEvictLiveHead(t *testing.T) {
	// Regression: a future-dated access ≥64 windows ahead aliases the
	// head window's ring slot. Materializing it used to overwrite the
	// live window's accumulated count and teleport headWin forward, so
	// present-time accesses in the still-live window restarted from zero
	// — the sustained-overload backlog silently vanished.
	m := newSaturatingBWMeter(16) // capacity 256/window
	for i := 0; i < 1000; i++ {
		m.reserve(0) // window 0 live, 744 over capacity
	}
	// 128 ≡ 0 (mod 64): this aliases window 0's slot. At that horizon the
	// backlog (744) has long drained (127 idle windows × 256), so it owes
	// no delay — and it must not disturb window 0's live accounting.
	if d := m.reserve(sim.Time(128 * bwWindow)); d != 0 {
		t.Fatalf("far-future access over drained backlog delayed %d", d)
	}
	// Window 0 is still live: the next present-time access is transfer
	// 1001, delayed (1001-256)*16 cycles — not a restart from count 1.
	if d, want := m.reserve(0), sim.Cycles(1001-256)*16; d != want {
		t.Fatalf("live window restarted after far-future alias: delay %d, want %d", d, want)
	}
	// And the carry into window 1 must still reflect the full backlog:
	// starting demand 745, so the first transfer is delayed (746-256)*16.
	if d, want := m.reserve(sim.Time(bwWindow)), sim.Cycles(746-256)*16; d != want {
		t.Fatalf("carry after far-future alias = %d, want %d", d, want)
	}
}

func TestBWMeterCarryFarFutureChargedAgainstBacklog(t *testing.T) {
	// The beyond-horizon access is not free when the backlog genuinely
	// reaches it: with service 2048 (capacity 2/window), an excess of 200
	// drains at 2/window and still owes 200-(65-0-1)*2 = 72 transfers of
	// queueing 65 windows out.
	m := newSaturatingBWMeter(2048)
	for i := 0; i < 202; i++ {
		m.reserve(0)
	}
	if d, want := m.reserve(sim.Time(65*bwWindow)), sim.Cycles(73-2)*2048; d != want {
		t.Fatalf("far-future access over live backlog delayed %d, want %d", d, want)
	}
}

func TestBWMeterLegacyModeHasNoCarry(t *testing.T) {
	// The default meter must keep window-local semantics: saturation in
	// window 0 never leaks into window 1. This is what keeps the pre-NUMA
	// presets' golden results byte-identical.
	m := newBWMeter(16)
	for i := 0; i < 10_000; i++ {
		m.reserve(0)
	}
	if d := m.reserve(sim.Time(bwWindow)); d != 0 {
		t.Fatalf("legacy meter carried %d cycles across windows", d)
	}
}
