package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// BenchmarkL1Hit measures the common-case access: a load that hits the
// core's L1. This is the fast path the hot-path refactor keeps
// allocation-free (the acceptance gate is 0 allocs/op).
func BenchmarkL1Hit(b *testing.B) {
	m := MustNew(topology.Tiny8(), 1<<20)
	const addr = mem.Addr(4096)
	at := sim.Time(0)
	at += m.Access(0, addr, false, at) // prime: L1 now holds the line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += m.Access(0, addr, false, at)
	}
}

// BenchmarkL1HitStore measures the store fast path: an L1 hit by the line's
// existing sole owner, which still has to consult the coherence directory.
func BenchmarkL1HitStore(b *testing.B) {
	m := MustNew(topology.Tiny8(), 1<<20)
	const addr = mem.Addr(4096)
	at := sim.Time(0)
	at += m.Access(0, addr, true, at) // prime: core 0 owns the line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += m.Access(0, addr, true, at)
	}
}

// BenchmarkRemoteMiss measures the coherence slow path: two cores on
// different chips ping-ponging one line, so every access is a remote fetch
// or an invalidating write.
func BenchmarkRemoteMiss(b *testing.B) {
	cfg := topology.Tiny8()
	m := MustNew(cfg, 1<<20)
	writer, reader := 0, cfg.CoresPerChip // first cores of chips 0 and 1
	const addr = mem.Addr(4096)
	at := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += m.Access(writer, addr, true, at)  // invalidates reader's copy
		at += m.Access(reader, addr, false, at) // remote fetch from writer's chip
	}
}

// BenchmarkAccessRangeScan measures the line-batched range path the
// execution substrate's cost batches drive: one 512-byte sector load per
// iteration, the granularity of the FAT lookup loop.
func BenchmarkAccessRangeScan(b *testing.B) {
	m := MustNew(topology.Tiny8(), 1<<20)
	const base = mem.Addr(8192)
	at := sim.Time(0)
	at += m.AccessRange(0, base, 512, false, at) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += m.AccessRange(0, base, 512, false, at)
	}
}

// wideFanOutMachine primes a NUMA256 machine so one line is shared by
// every core, returning the machine and the writing core's next issue
// time. Each benchmark iteration re-shares and re-collapses the set.
func wideFanOutMachine(b *testing.B) (*Machine, sim.Time) {
	b.Helper()
	m := MustNew(topology.NUMA256(), 1<<24)
	const addr = mem.Addr(4096)
	at := sim.Time(0)
	for core := 0; core < m.NumCores(); core++ {
		at += sim.Time(m.Access(core, addr, false, at))
	}
	return m, at
}

// BenchmarkWideInvalidationFanOut measures the 256-core store slow path:
// one write collapsing a holder set that spans all five directory words,
// then the readers re-sharing the line. This is the path the multi-word
// bitset keeps allocation-free; TestWideFanOutAllocs pins 0 allocs/op.
func BenchmarkWideInvalidationFanOut(b *testing.B) {
	m, at := wideFanOutMachine(b)
	const addr = mem.Addr(4096)
	ncores := m.NumCores()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += sim.Time(m.Access(0, addr, true, at)) // invalidate all sharers
		for core := 1; core < ncores; core++ {
			at += sim.Time(m.Access(core, addr, false, at)) // re-share
		}
	}
}

// TestWideFanOutAllocs is the allocation gate on the 256-core
// invalidation fan-out: the whole share/collapse cycle — wide directory
// probes, word-scratch copies, cross-word cache invalidations — must not
// allocate.
func TestWideFanOutAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := MustNew(topology.NUMA256(), 1<<24)
	const addr = mem.Addr(4096)
	var at sim.Time
	for core := 0; core < m.NumCores(); core++ {
		at += sim.Time(m.Access(core, addr, false, at))
	}
	ncores := m.NumCores()
	allocs := testing.AllocsPerRun(50, func() {
		at += sim.Time(m.Access(0, addr, true, at))
		for core := 1; core < ncores; core++ {
			at += sim.Time(m.Access(core, addr, false, at))
		}
	})
	if allocs != 0 {
		t.Fatalf("wide invalidation fan-out allocates %.1f times per cycle, want 0", allocs)
	}
}
