package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// BenchmarkL1Hit measures the common-case access: a load that hits the
// core's L1. This is the fast path the hot-path refactor keeps
// allocation-free (the acceptance gate is 0 allocs/op).
func BenchmarkL1Hit(b *testing.B) {
	m := MustNew(topology.Tiny8(), 1<<20)
	const addr = mem.Addr(4096)
	at := sim.Time(0)
	at += m.Access(0, addr, false, at) // prime: L1 now holds the line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += m.Access(0, addr, false, at)
	}
}

// BenchmarkL1HitStore measures the store fast path: an L1 hit by the line's
// existing sole owner, which still has to consult the coherence directory.
func BenchmarkL1HitStore(b *testing.B) {
	m := MustNew(topology.Tiny8(), 1<<20)
	const addr = mem.Addr(4096)
	at := sim.Time(0)
	at += m.Access(0, addr, true, at) // prime: core 0 owns the line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += m.Access(0, addr, true, at)
	}
}

// BenchmarkRemoteMiss measures the coherence slow path: two cores on
// different chips ping-ponging one line, so every access is a remote fetch
// or an invalidating write.
func BenchmarkRemoteMiss(b *testing.B) {
	cfg := topology.Tiny8()
	m := MustNew(cfg, 1<<20)
	writer, reader := 0, cfg.CoresPerChip // first cores of chips 0 and 1
	const addr = mem.Addr(4096)
	at := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += m.Access(writer, addr, true, at)  // invalidates reader's copy
		at += m.Access(reader, addr, false, at) // remote fetch from writer's chip
	}
}

// BenchmarkAccessRangeScan measures the line-batched range path the
// execution substrate's cost batches drive: one 512-byte sector load per
// iteration, the granularity of the FAT lookup loop.
func BenchmarkAccessRangeScan(b *testing.B) {
	m := MustNew(topology.Tiny8(), 1<<20)
	const base = mem.Addr(8192)
	at := sim.Time(0)
	at += m.AccessRange(0, base, 512, false, at) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += m.AccessRange(0, base, 512, false, at)
	}
}
