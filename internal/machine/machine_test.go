package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func newAMD(t testing.TB) *Machine {
	t.Helper()
	m, err := New(topology.AMD16(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestColdMissThenL1Hit(t *testing.T) {
	m := newAMD(t)
	addr := mem.Addr(4096)
	lat1 := m.Access(0, addr, false, 0)
	if lat1 < m.cfg.Lat.DRAMLocal {
		t.Fatalf("cold miss latency %d below DRAM minimum %d", lat1, m.cfg.Lat.DRAMLocal)
	}
	lat2 := m.Access(0, addr, false, lat1)
	if lat2 != m.cfg.Lat.L1Hit {
		t.Fatalf("second access latency %d, want L1 hit %d", lat2, m.cfg.Lat.L1Hit)
	}
	c := m.Counters().Snapshot(0)
	if c.DRAMLoads != 1 || c.Loads != 2 || c.L1Miss != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestRemoteCacheFetchSameChip(t *testing.T) {
	m := newAMD(t)
	addr := mem.Addr(4096)
	m.Access(0, addr, false, 0) // core 0 (chip 0) now holds it
	lat := m.Access(1, addr, false, 1000)
	if lat != m.cfg.Lat.RemoteCacheSameChip {
		t.Fatalf("same-chip remote fetch = %d, want %d", lat, m.cfg.Lat.RemoteCacheSameChip)
	}
	if m.Counters().Snapshot(1).RemoteFetches != 1 {
		t.Fatal("remote fetch not counted")
	}
}

func TestRemoteCacheFetchOtherChip(t *testing.T) {
	m := newAMD(t)
	addr := mem.Addr(4096)
	m.Access(0, addr, false, 0)            // chip 0 holds it
	lat := m.Access(15, addr, false, 1000) // core 15 is chip 3, diagonal from 0
	want := m.cfg.RemoteCacheLatency(3, 0)
	if lat != want {
		t.Fatalf("cross-chip fetch = %d, want %d", lat, want)
	}
	if lat <= m.cfg.Lat.RemoteCacheSameChip {
		t.Fatal("cross-chip fetch should cost more than same-chip")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := newAMD(t)
	addr := mem.Addr(4096)
	m.Access(0, addr, false, 0)
	m.Access(1, addr, false, 100)
	m.Access(2, addr, false, 200)
	// Write from core 0 must invalidate cores 1 and 2.
	m.Access(0, addr, true, 300)
	l := cache.LineOf(addr, m.LineSize())
	if m.L2(1).Contains(l) || m.L2(2).Contains(l) {
		t.Fatal("sharers still resident after invalidating write")
	}
	if m.Counters().Snapshot(0).Invalidations == 0 {
		t.Fatal("invalidations not counted")
	}
	// The next read from core 1 must fetch remotely again.
	lat := m.Access(1, addr, false, 400)
	if lat < m.cfg.Lat.RemoteCacheSameChip {
		t.Fatalf("read after invalidate was local (%d cycles)", lat)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVictimL3(t *testing.T) {
	// Stream enough lines through one core to overflow its L2; the
	// victims must land in the chip's L3 and hit there at L3 latency.
	m := newAMD(t)
	l2Lines := m.cfg.L2.Size / m.cfg.L2.LineSize
	base := mem.Addr(1 << 20)
	var at sim.Time
	// Touch 2× the L2 capacity in distinct lines.
	for i := 0; i < 2*l2Lines; i++ {
		at += m.Access(0, base+mem.Addr(i*m.LineSize()), false, at)
	}
	if m.L3(0).Len() == 0 {
		t.Fatal("L2 victims never spilled into L3")
	}
	// Some streamed line was evicted from L2 into L3 (hashed set
	// indexing makes the exact victim configuration-dependent); it must
	// hit there at L3 latency.
	var victim mem.Addr
	found := false
	for i := 0; i < 2*l2Lines && !found; i++ {
		a := base + mem.Addr(i*m.LineSize())
		if m.L3(0).Contains(cache.LineOf(a, m.LineSize())) {
			victim, found = a, true
		}
	}
	if !found {
		t.Fatal("no streamed line resident in L3")
	}
	before := m.Counters().Snapshot(0)
	lat := m.Access(0, victim, false, at)
	if lat != m.cfg.Lat.L3Hit {
		t.Fatalf("victim hit latency = %d, want L3 %d", lat, m.cfg.Lat.L3Hit)
	}
	d := m.Counters().Snapshot(0).Sub(before)
	if d.L3Loads != 1 {
		t.Fatalf("L3 load not counted: %+v", d)
	}
	// Exclusivity: the line must have left L3 after promotion.
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMQueueing(t *testing.T) {
	m := newAMD(t)
	// Saturate one chip's memory controller within a single accounting
	// window: demand beyond window/service lines must see queueing
	// delays, and the delays must grow with overflow depth.
	svc := m.cfg.Lat.DRAMServiceInterval
	baseline := m.Access(0, 0, false, 0) // cold local DRAM, no contention
	var sawQueue bool
	var prev sim.Cycles
	// Lines homed on chip 0 are every 4th line (4-chip interleave).
	for i := 1; i < 600; i++ {
		addr := mem.Addr(i * 4 * 64)
		lat := m.Access(0, addr, false, 0) // all at t=0: same window
		if lat > baseline {
			if !sawQueue && lat != baseline+svc {
				t.Fatalf("first overflow delay = %d, want %d", lat-baseline, svc)
			}
			if lat < prev {
				t.Fatalf("queueing delay shrank under growing demand: %d after %d", lat, prev)
			}
			sawQueue = true
			prev = lat
		}
	}
	if !sawQueue {
		t.Fatal("controller never queued despite saturation")
	}
	// The same demand far in the future (a different window) is unqueued.
	lat := m.Access(2, mem.Addr(9999*4*64), false, 50_000_000)
	if lat != baseline {
		t.Fatalf("fresh window access = %d, want uncontended %d", lat, baseline)
	}
}

func TestDRAMQueueingOrderIndependent(t *testing.T) {
	// A future-dated access (from a thread's in-flight batch) must not
	// delay a present-time access: queueing is accounted per window.
	m := newAMD(t)
	m.Access(0, mem.Addr(4*64), false, 1_000_000) // batched far ahead
	lat := m.Access(1, mem.Addr(8*64), false, 0)  // present time, same home chip
	if lat != m.cfg.Lat.DRAMLocal {
		t.Fatalf("present-time access paid %d, want uncontended %d (future access leaked into past)",
			lat, m.cfg.Lat.DRAMLocal)
	}
}

func TestDRAMHomeInterleaving(t *testing.T) {
	m := newAMD(t)
	// Distant bank (chip 0 → chip 3) must cost 336, local must cost 230.
	// Find a line homed on chip 0 and one homed on chip 3.
	local := mem.Addr(0)    // line 0 → chip 0
	far := mem.Addr(3 * 64) // line 3 → chip 3
	if m.homeChip(0) != 0 || m.homeChip(3) != 3 {
		t.Fatal("interleaving changed; fix test addresses")
	}
	if lat := m.Access(0, local, false, 0); lat != 230 {
		t.Fatalf("local DRAM = %d, want 230", lat)
	}
	m.FlushAll()
	if lat := m.Access(0, far, false, 0); lat != 336 {
		t.Fatalf("most distant DRAM = %d, want 336 (paper §5)", lat)
	}
}

func TestAccessRangeChargesPerLine(t *testing.T) {
	m := newAMD(t)
	// 4 lines, all cold.
	lat := m.Load(0, 0, 4*64, 0)
	c := m.Counters().Snapshot(0)
	if c.Loads != 4 {
		t.Fatalf("Loads = %d, want 4", c.Loads)
	}
	if lat < 4*m.cfg.Lat.DRAMLocal {
		t.Fatalf("range latency %d too small for 4 cold lines", lat)
	}
	// Warm: 4 L1 hits.
	lat = m.Load(0, 0, 4*64, lat)
	if lat != 4*m.cfg.Lat.L1Hit {
		t.Fatalf("warm range = %d, want %d", lat, 4*m.cfg.Lat.L1Hit)
	}
}

func TestAccessRangePartialLines(t *testing.T) {
	m := newAMD(t)
	// 100 bytes starting mid-line touches two lines.
	m.Load(0, 32, 100, 0)
	if got := m.Counters().Snapshot(0).Loads; got != 3 {
		t.Fatalf("Loads = %d, want 3 (bytes 32..131 span lines 0,1,2)", got)
	}
}

func TestStallCyclesAccumulate(t *testing.T) {
	m := newAMD(t)
	lat := m.Load(0, 0, 64, 0)
	if got := m.Counters().Snapshot(0).StallCycles; got != uint64(lat) {
		t.Fatalf("StallCycles = %d, want %d", got, lat)
	}
}

func TestFlushAll(t *testing.T) {
	m := newAMD(t)
	m.Load(0, 0, 1024, 0)
	m.FlushAll()
	if m.L1(0).Len() != 0 || m.L2(0).Len() != 0 || m.L3(0).Len() != 0 {
		t.Fatal("caches survived FlushAll")
	}
	if m.Directory().TrackedLines() != 0 {
		t.Fatal("directory survived FlushAll")
	}
	lat := m.Access(0, 0, false, 0)
	if lat < m.cfg.Lat.DRAMLocal {
		t.Fatal("post-flush access did not go to DRAM")
	}
}

func TestMOESIReadDoesNotInvalidateOwner(t *testing.T) {
	m := newAMD(t)
	addr := mem.Addr(4096)
	m.Access(0, addr, true, 0) // core 0 owns dirty
	m.Access(1, addr, false, 100)
	// Owned state: both may hold it after a read.
	l := cache.LineOf(addr, m.LineSize())
	if !m.L2(0).Contains(l) || !m.L2(1).Contains(l) {
		t.Fatal("read should leave owner's copy in place (MOESI Owned)")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsUnderRandomTraffic(t *testing.T) {
	// Property: arbitrary load/store traffic never breaks directory/cache
	// agreement, inclusion, or owner validity.
	cfg := topology.Small()
	f := func(seed uint64) bool {
		m, err := New(cfg, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(seed)
		var at sim.Time
		for i := 0; i < 3000; i++ {
			core := rng.Intn(cfg.NumCores())
			addr := mem.Addr(rng.Intn(256 << 10)) // 8× the L3: heavy eviction traffic
			write := rng.Intn(4) == 0
			at += m.Access(core, addr, write, at)
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestResidencyReport(t *testing.T) {
	m := newAMD(t)
	obj, err := m.Image().AllocObject("dir0", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	m.Load(0, obj.Base, int(obj.Size), 0)
	r := m.Residency(obj)
	if r.L2Bytes[0] != 32<<10 {
		t.Fatalf("core 0 L2 holds %d bytes, want whole object", r.L2Bytes[0])
	}
	if r.DRAMBytes != 0 {
		t.Fatalf("DRAMBytes = %d, want 0 after full scan", r.DRAMBytes)
	}
	for i := 1; i < 16; i++ {
		if r.L2Bytes[i] != 0 {
			t.Fatalf("core %d should hold nothing", i)
		}
	}
}

func TestHeterogeneousConfigAccepted(t *testing.T) {
	cfg := topology.AMD16()
	cfg.CoreSpeed = make([]float64, 16)
	for i := range cfg.CoreSpeed {
		cfg.CoreSpeed[i] = 1
	}
	cfg.CoreSpeed[0] = 2
	if _, err := New(cfg, 1<<20); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := topology.AMD16()
	cfg.GridW = 5
	if _, err := New(cfg, 1<<20); err == nil {
		t.Fatal("invalid config accepted")
	}
}
