// Package machine composes the simulated multicore: per-core L1/L2 caches,
// per-chip victim L3s, a MOESI-style coherence directory, distance-dependent
// interconnect latencies, bandwidth-limited DRAM controllers, and per-core
// event counters.
//
// The central entry point is Access (and the Load/Store/AccessRange
// wrappers): given a core, an address range, and the current simulated
// time, it walks the hierarchy exactly as the paper's AMD machine would —
// L1, L2, chip L3, then the nearest remote cache or a DRAM bank — updates
// cache and directory state, increments the event counters CoreTime's
// monitor reads, and returns the access latency in cycles. Callers (the
// execution substrate in internal/exec) advance simulated time by the
// returned amount.
//
// Modeling choices that matter to the paper's results:
//
//   - The L3 is an exclusive victim cache (as on the paper's Opterons):
//     lines live in L3 only after eviction from an L2. This is what makes
//     the paper's "16 MB total on-chip = 4×2MB L3 + 16×512KB L2" capacity
//     arithmetic hold.
//   - DRAM controllers (one per chip, lines interleaved across chips by
//     address) serve at most one line per DRAMServiceInterval cycles;
//     excess demand queues. Saturating off-chip bandwidth is the failure
//     mode O2 scheduling exists to avoid, so it must be first-class.
//   - Coherence is MOESI-like: a dirty line can remain "owned" by one core
//     while read-shared by others; a write invalidates all other copies.
package machine

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/perfctr"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Machine is the simulated multicore system.
type Machine struct {
	cfg topology.Config
	img *mem.Image
	l1  []*cache.Cache // per core
	l2  []*cache.Cache // per core
	l3  []*cache.Cache // per chip
	dir *coherence.Directory
	ctr *perfctr.Set

	// dram[chip] meters the chip's memory-controller bandwidth.
	dram []bwMeter
	// link[chip] meters the chip's interconnect port: line transfers that
	// leave the chip (remote-cache sourcing, remote-home DRAM fills)
	// queue here when cross-socket traffic exceeds LinkServiceInterval.
	// nil when the topology does not model interconnect bandwidth.
	link []bwMeter

	lineSize int

	// Derived lookup tables, computed once at construction. topology.Config
	// methods take the (large) config by value, so calling them per line
	// access copies the whole struct; the hot paths read these instead.
	ncores    int
	chipOf    []int          // core -> chip
	hop       [][]int        // chip × chip Manhattan distance
	remoteLat [][]sim.Cycles // chip × chip remote-cache fetch latency
	dramLat   [][]sim.Cycles // chip × chip raw DRAM latency

	// scratchLines is reused by the invariant checks, which would
	// otherwise allocate a fresh line set on every residency scan.
	scratchLines []cache.Line

	// holderWords and invWords are per-machine scratch for the wide
	// (>64-node) directory's word APIs, sized to dir.NumWords() at
	// construction so the 256-core fan-out paths allocate nothing. Unused
	// (nil) on narrow machines, which stay on the single-word fast path.
	holderWords []uint64
	invWords    []uint64
}

// New builds a machine from cfg with memBytes of simulated DRAM.
func New(cfg topology.Config, memBytes int) (*Machine, error) {
	return NewWithMemLimit(cfg, memBytes, memBytes)
}

// NewWithMemLimit builds a machine whose memory image starts at memBytes
// and grows on demand up to memLimit. Sweep cells start images at the
// workload's exact requirement (zeroing the backing array is a real cost
// when thousands of short-lived machines are built) while keeping the
// allocation headroom of the larger limit.
func NewWithMemLimit(cfg topology.Config, memBytes, memLimit int) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumCores()
	if nodes := n + cfg.Chips; nodes > coherence.MaxNodes {
		// Fail loudly here rather than panicking inside the directory:
		// a machine too wide for the sharer bitset would silently alias
		// holder bits and corrupt every coherence decision.
		return nil, fmt.Errorf("machine: %d cores + %d chips = %d directory nodes exceeds the supported maximum %d",
			n, cfg.Chips, nodes, coherence.MaxNodes)
	}
	m := &Machine{
		cfg:      cfg,
		img:      mem.NewImageWithLimit(memBytes, memLimit),
		l1:       make([]*cache.Cache, n),
		l2:       make([]*cache.Cache, n),
		l3:       make([]*cache.Cache, cfg.Chips),
		dir:      coherence.NewDirectory(n + cfg.Chips),
		ctr:      perfctr.NewSet(n),
		dram:     make([]bwMeter, cfg.Chips),
		lineSize: cfg.L1.LineSize,
	}
	newMeter := newBWMeter
	if cfg.Lat.SaturatingBW {
		newMeter = newSaturatingBWMeter
	}
	for i := range m.dram {
		m.dram[i] = newMeter(cfg.Lat.DRAMServiceInterval)
	}
	if cfg.Lat.LinkServiceInterval > 0 && cfg.Chips > 1 {
		m.link = make([]bwMeter, cfg.Chips)
		for i := range m.link {
			m.link[i] = newMeter(cfg.Lat.LinkServiceInterval)
		}
	}
	if w := m.dir.NumWords(); w > 1 {
		m.holderWords = make([]uint64, w)
		m.invWords = make([]uint64, w)
	}
	for i := 0; i < n; i++ {
		m.l1[i] = cache.New(cfg.L1)
		m.l2[i] = cache.New(cfg.L2)
	}
	for i := 0; i < cfg.Chips; i++ {
		m.l3[i] = cache.New(cfg.L3)
	}
	m.ncores = n
	m.chipOf = make([]int, n)
	for i := 0; i < n; i++ {
		m.chipOf[i] = cfg.ChipOf(i)
	}
	m.hop = make([][]int, cfg.Chips)
	m.remoteLat = make([][]sim.Cycles, cfg.Chips)
	m.dramLat = make([][]sim.Cycles, cfg.Chips)
	for a := 0; a < cfg.Chips; a++ {
		m.hop[a] = make([]int, cfg.Chips)
		m.remoteLat[a] = make([]sim.Cycles, cfg.Chips)
		m.dramLat[a] = make([]sim.Cycles, cfg.Chips)
		for b := 0; b < cfg.Chips; b++ {
			m.hop[a][b] = cfg.HopDistance(a, b)
			m.remoteLat[a][b] = cfg.RemoteCacheLatency(a, b)
			m.dramLat[a][b] = cfg.DRAMLatency(a, b)
		}
	}
	return m, nil
}

// MustNew is New for configurations known valid at compile time (presets).
func MustNew(cfg topology.Config, memBytes int) *Machine {
	m, err := New(cfg, memBytes)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine's topology.
func (m *Machine) Config() topology.Config { return m.cfg }

// Image returns the simulated physical memory.
func (m *Machine) Image() *mem.Image { return m.img }

// Counters returns the per-core event counters.
func (m *Machine) Counters() *perfctr.Set { return m.ctr }

// LineSize returns the cache line size in bytes.
func (m *Machine) LineSize() int { return m.lineSize }

// NumCores returns the machine's core count without copying the config.
func (m *Machine) NumCores() int { return m.ncores }

// ChipOf returns the chip of core via the precomputed table — the cheap
// form of Config().ChipOf for per-operation callers.
func (m *Machine) ChipOf(core int) int { return m.chipOf[core] }

// HopDist returns the Manhattan distance between two chips via the
// precomputed table.
func (m *Machine) HopDist(a, b int) int { return m.hop[a][b] }

// L1 returns core's L1 cache (for inspection and tests).
func (m *Machine) L1(core int) *cache.Cache { return m.l1[core] }

// L2 returns core's L2 cache.
func (m *Machine) L2(core int) *cache.Cache { return m.l2[core] }

// L3 returns chip's shared L3 cache.
func (m *Machine) L3(chip int) *cache.Cache { return m.l3[chip] }

// Directory returns the coherence directory (for inspection and tests).
func (m *Machine) Directory() *coherence.Directory { return m.dir }

// coreNode and l3Node map hardware structures to directory nodes.
func (m *Machine) coreNode(core int) coherence.Node { return coherence.Node(core) }
func (m *Machine) l3Node(chip int) coherence.Node {
	return coherence.Node(m.ncores + chip)
}

// homeChip returns the chip whose memory controller owns a line. Lines are
// interleaved across chips by line number, the usual commodity policy.
func (m *Machine) homeChip(l cache.Line) int { return int(uint64(l) % uint64(m.cfg.Chips)) }

// Access performs one memory access of up to a cache line at addr and
// returns its latency. `at` is the simulated time the access issues;
// callers performing batched scans pass at + (latency accumulated so far).
func (m *Machine) Access(core int, addr mem.Addr, write bool, at sim.Time) sim.Cycles {
	return m.accessLine(core, cache.LineOf(addr, m.lineSize), write, at)
}

// Load charges a read of [addr, addr+size) and returns its total latency.
// The range may span many lines; each is charged in sequence.
func (m *Machine) Load(core int, addr mem.Addr, size int, at sim.Time) sim.Cycles {
	return m.AccessRange(core, addr, size, false, at)
}

// Store charges a write of [addr, addr+size) and returns its total latency.
func (m *Machine) Store(core int, addr mem.Addr, size int, at sim.Time) sim.Cycles {
	return m.AccessRange(core, addr, size, true, at)
}

// AccessRange charges an access to every line overlapping
// [addr, addr+size), serialized, and returns the total latency. This is
// the line-batched entry point the execution substrate's cost batches
// drive: per-core state (counters, L1) is resolved once per range, not
// once per line, and the whole common case allocates nothing.
//
//o2:hotpath
func (m *Machine) AccessRange(core int, addr mem.Addr, size int, write bool, at sim.Time) sim.Cycles {
	if size <= 0 {
		return 0
	}
	first := cache.LineOf(addr, m.lineSize)
	last := cache.LineOf(addr+mem.Addr(size-1), m.lineSize)
	c := m.ctr.Core(core)
	l1 := m.l1[core]
	var total sim.Cycles
	for l := first; l <= last; l++ {
		total += m.lineAccess(core, l, write, at+total, c, l1)
	}
	return total
}

// accessLine is one core touching one line, resolving the per-core state
// lineAccess wants hoisted.
func (m *Machine) accessLine(core int, l cache.Line, write bool, at sim.Time) sim.Cycles {
	return m.lineAccess(core, l, write, at, m.ctr.Core(core), m.l1[core])
}

// lineAccess is the heart of the model: one core touching one line, with
// the core's counter file and L1 already resolved (AccessRange hoists
// them out of its per-line loop). The common case — an L1 hit — completes
// here without touching the directory (loads) or allocating (loads and
// stores); everything else drops into missLine, the out-of-line slow
// path.
//
//o2:hotpath
func (m *Machine) lineAccess(core int, l cache.Line, write bool, at sim.Time, c *perfctr.Counters, l1 *cache.Cache) sim.Cycles {
	if write {
		c.Stores++
	} else {
		c.Loads++
	}
	var lat sim.Cycles
	if l1.Lookup(l) {
		lat = m.l1HitTail(core, l, write, c)
	} else {
		c.L1Miss++
		lat = m.missLine(core, l, write, at, c)
	}
	c.StallCycles += uint64(lat)
	return lat
}

// l1HitTail finishes an access whose line hit L1: refresh L2 recency
// (inclusive hierarchy) and, for stores, acquire exclusive ownership.
//
//o2:hotpath
func (m *Machine) l1HitTail(core int, l cache.Line, write bool, c *perfctr.Counters) sim.Cycles {
	m.l2[core].Lookup(l)
	lat := m.cfg.Lat.L1Hit
	if write {
		lat += m.acquireOwnership(core, l, c)
	}
	return lat
}

// missLine services an access that missed L1: the rest of the local
// hierarchy, then remote caches or DRAM, then write ownership.
func (m *Machine) missLine(core int, l cache.Line, write bool, at sim.Time, c *perfctr.Counters) sim.Cycles {
	lat, ok := m.lookupShared(core, l, c)
	if !ok {
		lat = m.fetchMiss(core, l, write, at, c)
	}
	if write {
		lat += m.acquireOwnership(core, l, c)
	}
	return lat
}

// lookupShared checks the core's L2 and the chip's shared L3 after an L1
// miss.
func (m *Machine) lookupShared(core int, l cache.Line, c *perfctr.Counters) (sim.Cycles, bool) {
	if m.l2[core].Lookup(l) {
		c.L2Loads++
		m.installL1(core, l)
		return m.cfg.Lat.L2Hit, true
	}
	c.L2Miss++
	chip := m.chipOf[core]
	if wasDirty, hit := m.l3[chip].Remove(l); hit {
		// Exclusive victim L3: a hit promotes the line back into the
		// core's private hierarchy and removes it from L3. Remove probes
		// and invalidates in one scan.
		m.dir.RemoveSharer(l, m.l3Node(chip))
		c.L3Loads++
		m.installCore(core, l, wasDirty)
		return m.cfg.Lat.L3Hit, true
	}
	c.L3Miss++
	return 0, false
}

// fetchMiss services a miss from the nearest remote cache or DRAM,
// charging memory-controller and (when modeled) interconnect queueing on
// top of the raw distance latency. Queueing cycles are attributed to the
// requesting core's bw-stall counters so the monitor can see where
// bandwidth, not distance, is the cost.
//
//o2:hotpath
func (m *Machine) fetchMiss(core int, l cache.Line, write bool, at sim.Time, c *perfctr.Counters) sim.Cycles {
	myChip := m.chipOf[core]
	var lat sim.Cycles
	if srcChip, found := m.nearestHolderChip(core, l); found {
		lat = m.remoteLat[myChip][srcChip]
		c.RemoteFetches++
		if m.link != nil && srcChip != myChip {
			// The line crosses the interconnect from the source chip's
			// egress port.
			q := m.link[srcChip].reserve(at)
			lat += q
			c.LinkQueueCycles += uint64(q)
		}
	} else {
		home := m.homeChip(l)
		q := m.dramQueue(home, at)
		lat = m.dramLat[myChip][home] + q
		c.DRAMLoads++
		c.DRAMQueueCycles += uint64(q)
		if m.link != nil && home != myChip {
			// Remote-home fill: the line also transits the home chip's
			// interconnect port on its way over.
			lq := m.link[home].reserve(at)
			lat += lq
			c.LinkQueueCycles += uint64(lq)
		}
	}
	m.installCore(core, l, false)
	return lat
}

// nearestHolderChip finds the chip of the closest cache holding the line,
// iterating holder bits directly (ascending node order, matching the
// directory's fan-out order). The requesting core itself cannot be a
// holder (it just missed). Narrow machines read the single holder word
// inline; wide machines copy the set into machine-owned scratch and scan
// word by word — both allocation-free.
//
//o2:hotpath
func (m *Machine) nearestHolderChip(core int, l cache.Line) (chip int, found bool) {
	if m.holderWords == nil {
		mask := m.dir.HolderMask(l)
		if mask == 0 {
			return 0, false
		}
		return m.nearestInWord(core, mask, 0), true
	}
	if !m.dir.CopyHolderWords(l, m.holderWords) {
		return 0, false
	}
	myChip := m.chipOf[core]
	best, bestDist := 0, int(^uint(0)>>1)
	for w, mask := range m.holderWords {
		if mask == 0 {
			continue
		}
		c := m.nearestInWord(core, mask, w*64)
		if d := m.hop[myChip][c]; d < bestDist {
			best, bestDist = c, d
			if d == 0 {
				break
			}
		}
	}
	return best, true
}

// nearestInWord scans one non-zero holder word (nodes [base, base+64))
// and returns the holder chip closest to core.
//
//o2:hotpath
func (m *Machine) nearestInWord(core int, mask uint64, base int) (chip int) {
	myChip := m.chipOf[core]
	best, bestDist := 0, int(^uint(0)>>1)
	ncores := m.ncores
	hop := m.hop[myChip]
	for mm := mask; mm != 0; {
		node := base + bits.TrailingZeros64(mm)
		mm &= mm - 1
		var holderChip int
		if node < ncores {
			holderChip = m.chipOf[node]
		} else {
			holderChip = node - ncores
		}
		d := hop[holderChip]
		if d < bestDist {
			best, bestDist = holderChip, d
			if d == 0 {
				break
			}
		}
	}
	return best
}

// dramQueue accounts one line transfer at chip's memory controller and
// returns the queueing delay beyond the raw access latency.
func (m *Machine) dramQueue(chip int, at sim.Time) sim.Cycles {
	return m.dram[chip].reserve(at)
}

// acquireOwnership makes core the sole holder after a write, invalidating
// remote copies and marking the local line dirty. Returns the added cost.
// The directory work is one fused acquire-exclusive probe; the
// invalidation set comes back as a bitmask (narrow) or as words written
// into machine-owned scratch (wide), so no store ever allocates.
//
//o2:hotpath
func (m *Machine) acquireOwnership(core int, l cache.Line, c *perfctr.Counters) sim.Cycles {
	node := m.coreNode(core)
	var extra sim.Cycles
	if m.invWords == nil {
		if inv := m.dir.AcquireExclusive(l, node); inv != 0 {
			extra = m.cfg.Lat.InvalidateCost
			c.Invalidations += uint64(bits.OnesCount64(inv))
			m.invalidateWord(inv, 0, l)
		}
	} else if m.dir.AcquireExclusiveWords(l, node, m.invWords) {
		extra = m.cfg.Lat.InvalidateCost
		for w, inv := range m.invWords {
			if inv == 0 {
				continue
			}
			c.Invalidations += uint64(bits.OnesCount64(inv))
			m.invalidateWord(inv, w*64, l)
		}
	}
	m.l1[core].MarkDirty(l)
	m.l2[core].MarkDirty(l)
	return extra
}

// invalidateWord removes line l from every cache whose node bit is set in
// one holder word covering nodes [base, base+64).
//
//o2:hotpath
func (m *Machine) invalidateWord(inv uint64, base int, l cache.Line) {
	ncores := m.ncores
	for inv != 0 {
		n := base + bits.TrailingZeros64(inv)
		inv &= inv - 1
		if n < ncores {
			m.l1[n].Remove(l)
			m.l2[n].Remove(l)
		} else {
			m.l3[n-ncores].Remove(l)
		}
	}
}

// installCore inserts a fetched line into core's L1 and L2, cascading
// evictions: L2 victims fall into the chip's L3 (victim cache), L3 victims
// are written back to DRAM (holder bit dropped). Inclusion (L1 ⊆ L2) is
// maintained so the directory can treat each core's private hierarchy as a
// single node.
func (m *Machine) installCore(core int, l cache.Line, dirty bool) {
	chip := m.chipOf[core]
	node := m.coreNode(core)
	c := m.ctr.Core(core)

	// InsertNew: every install follows a failed L2 lookup on this line
	// (lookupShared's L2 miss), so the residency re-scan is skipped.
	if victim, vDirty, evicted := m.l2[core].InsertNew(l, dirty); evicted {
		c.Evictions++
		// Maintain inclusion: the victim may still sit in L1.
		m.l1[core].Remove(victim)
		m.spillToL3(chip, node, victim, vDirty, c)
	}
	m.dir.AddSharer(l, node)
	m.installL1(core, l)
}

// spillToL3 places an L2 victim into the chip's victim L3.
func (m *Machine) spillToL3(chip int, from coherence.Node, victim cache.Line, dirty bool, c *perfctr.Counters) {
	l3 := m.l3[chip]
	l3node := m.l3Node(chip)
	if w, _, evicted := l3.Insert(victim, dirty); evicted {
		c.Evictions++
		m.dir.RemoveSharer(w, l3node) // writeback to DRAM
	}
	m.dir.MoveSharer(victim, from, l3node)
}

// installL1 inserts into L1 only; L1 victims need no bookkeeping because
// inclusion guarantees they remain in L2. Every caller is on the miss
// path after this core's L1 lookup failed, so InsertNew applies.
func (m *Machine) installL1(core int, l cache.Line) {
	m.l1[core].InsertNew(l, false)
}

// FlushAll empties every cache and the directory (cold-start between
// benchmark phases). DRAM controller queues are also reset.
func (m *Machine) FlushAll() {
	for i := range m.l1 {
		m.l1[i].Clear()
		m.l2[i].Clear()
	}
	for i := range m.l3 {
		m.l3[i].Clear()
	}
	m.dir.Reset()
	for i := range m.dram {
		m.dram[i].reset()
	}
	for i := range m.link {
		m.link[i].reset()
	}
}

// Reset returns the machine to its just-built state for arena reuse
// across sweep repeats: caches, directory, and DRAM queues empty
// (FlushAll) and every performance counter zeroed. The memory image's
// allocation history is owned by the caller and rolled back separately
// (mem.Image.Mark / ResetTo), because only the caller knows which
// allocations are shared build state and which are per-repeat.
func (m *Machine) Reset() {
	m.FlushAll()
	m.ctr.Reset()
}

// CheckInvariants verifies the structural properties the model relies on:
//
//  1. directory ↔ cache agreement: node n holds line l in the directory
//     iff l is resident in n's cache(s);
//  2. inclusion: every L1 line is also in the same core's L2;
//  3. owner validity: a line's dirty owner is one of its holders.
//
// It is called from tests after simulations; it is not on the hot path.
func (m *Machine) CheckInvariants() error {
	ncores := m.cfg.NumCores()
	for core := 0; core < ncores; core++ {
		m.scratchLines = m.l1[core].AppendLines(m.scratchLines[:0])
		for _, l := range m.scratchLines {
			if !m.l2[core].Contains(l) {
				return fmt.Errorf("machine: core %d L1 line %d violates inclusion", core, l)
			}
		}
		node := m.coreNode(core)
		m.scratchLines = m.l2[core].AppendLines(m.scratchLines[:0])
		for _, l := range m.scratchLines {
			if !m.dir.Holds(l, node) {
				return fmt.Errorf("machine: core %d holds line %d but directory disagrees", core, l)
			}
		}
	}
	for chip := 0; chip < m.cfg.Chips; chip++ {
		node := m.l3Node(chip)
		m.scratchLines = m.l3[chip].AppendLines(m.scratchLines[:0])
		for _, l := range m.scratchLines {
			if !m.dir.Holds(l, node) {
				return fmt.Errorf("machine: chip %d L3 holds line %d but directory disagrees", chip, l)
			}
		}
	}
	return m.checkDirectoryBacked()
}

// checkDirectoryBacked walks all resident lines and confirms each directory
// holder bit is backed by a real resident line. The residency scan reuses
// the machine's line scratch (sorted and deduplicated in place) instead of
// building a fresh map per call.
func (m *Machine) checkDirectoryBacked() error {
	ncores := m.cfg.NumCores()
	lines := m.scratchLines[:0]
	for i := 0; i < ncores; i++ {
		lines = m.l2[i].AppendLines(lines)
	}
	for i := 0; i < m.cfg.Chips; i++ {
		lines = m.l3[i].AppendLines(lines)
	}
	slices.Sort(lines)
	lines = slices.Compact(lines)
	m.scratchLines = lines
	for _, l := range lines {
		for _, n := range m.dir.Holders(l) {
			var resident bool
			if int(n) < ncores {
				resident = m.l2[n].Contains(l)
			} else {
				resident = m.l3[int(n)-ncores].Contains(l)
			}
			if !resident {
				return fmt.Errorf("machine: directory says node %d holds line %d but no cache does", n, l)
			}
		}
		if o := m.dir.Owner(l); o != coherence.NoOwner && !m.dir.Holds(l, o) {
			return fmt.Errorf("machine: line %d owner %d is not a holder", l, o)
		}
	}
	return nil
}

// ResidencyReport describes where the bytes of one object currently live,
// for the Fig. 2 cache-contents reproduction.
type ResidencyReport struct {
	Object    *mem.Object
	L2Bytes   []int // per core
	L3Bytes   []int // per chip
	DRAMBytes int   // bytes resident nowhere on chip
}

// Residency computes a report for obj. Bytes resident in multiple caches
// are counted in each (that duplication is exactly what Fig. 2 shows).
func (m *Machine) Residency(obj *mem.Object) ResidencyReport {
	r := ResidencyReport{
		Object:  obj,
		L2Bytes: make([]int, m.cfg.NumCores()),
		L3Bytes: make([]int, m.cfg.Chips),
	}
	for i := range m.l2 {
		r.L2Bytes[i] = m.l2[i].ResidentBytesIn(obj.Span)
	}
	for i := range m.l3 {
		r.L3Bytes[i] = m.l3[i].ResidentBytesIn(obj.Span)
	}
	ls := m.lineSize
	first := cache.LineOf(obj.Base, ls)
	last := cache.LineOf(obj.End()-1, ls)
	for l := first; l <= last; l++ {
		if !m.dir.HasHolders(l) {
			r.DRAMBytes += ls
		}
	}
	return r
}
