package exec

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// SpinLock is a test-and-set spin lock living at a real address in
// simulated memory, so lock traffic generates the coherence ping-pong that
// serializes contended directories (the left edge of the paper's Fig. 4a,
// where there are fewer directories than cores).
//
// Acquisition uses test-and-set with bounded exponential backoff. Backoff
// periods release the core when other threads are queued on it, so a
// spinner can never deadlock against a lock holder waiting for the same
// core.
type SpinLock struct {
	addr   mem.Addr
	holder *Thread

	// contention statistics for reports
	Acquisitions uint64
	Contended    uint64
}

// spinBackoffStart and spinBackoffMax bound the retry cadence. The values
// trade simulation fidelity against event count; they are small relative
// to a directory scan (thousands of cycles), so lock wait times remain
// accurate to within a backoff quantum.
const (
	spinBackoffStart sim.Cycles = 100
	spinBackoffMax   sim.Cycles = 3200
)

// NewSpinLock allocates a lock in the machine's memory image. Each lock
// gets its own cache line, as any competent implementation would.
func (s *System) NewSpinLock(name string) *SpinLock {
	a, err := s.mach.Image().Alloc(8, 64)
	if err != nil {
		panic(fmt.Sprintf("exec: allocating lock %q: %v", name, err))
	}
	return &SpinLock{addr: a}
}

// Lock acquires l, charging test-and-set attempts (coherent writes) and
// backoff to the calling thread.
func (t *Thread) Lock(l *SpinLock) {
	backoff := spinBackoffStart
	for {
		// Test-and-set: a write access whether or not it succeeds —
		// that is what makes contended spin locks expensive.
		t.Store(l.addr, 8)
		if l.holder == nil {
			l.holder = t
			l.Acquisitions++
			return
		}
		l.Contended++
		t.spinWait(backoff)
		if backoff < spinBackoffMax {
			backoff *= 2
		}
	}
}

// TryLock attempts one acquisition without spinning; it reports success.
func (t *Thread) TryLock(l *SpinLock) bool {
	t.Store(l.addr, 8)
	if l.holder == nil {
		l.holder = t
		l.Acquisitions++
		return true
	}
	l.Contended++
	return false
}

// Unlock releases l. Only the holder may unlock; anything else is a bug in
// the simulated program.
func (t *Thread) Unlock(l *SpinLock) {
	if l.holder != t {
		panic(fmt.Sprintf("exec: thread %q unlocking lock held by %v", t.name, holderName(l)))
	}
	l.holder = nil
	t.Store(l.addr, 8)
}

// Held reports whether the lock is currently held (for tests).
func (l *SpinLock) Held() bool { return l.holder != nil }

func holderName(l *SpinLock) string {
	if l.holder == nil {
		return "nobody"
	}
	return l.holder.name
}
