package exec

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Batch accumulates the cost of a sequence of memory accesses and compute
// and charges them to the thread in a single simulated-time advance.
//
// Simulated programs like the FAT file system touch memory at fine grain
// (32-byte directory entries, 2-byte FAT cells). Advancing simulated time
// per touch would cost one engine event each; a Batch instead threads the
// accumulated latency through the machine model (so cache and directory
// state stay exact) and performs one Sleep at Commit. The approximation —
// other cores' accesses interleave at operation rather than word
// granularity — is the standard trade simulators make.
//
// Load and Store drive the machine's line-batched AccessRange directly,
// so a sector-sized access resolves its per-core state once, not once per
// touched line.
type Batch struct {
	t       *Thread
	mach    *machine.Machine
	memLat  sim.Cycles
	compute float64
}

// NewBatch starts an empty batch on t.
func (t *Thread) NewBatch() *Batch { return &Batch{t: t, mach: t.sys.mach} }

// Batch returns t's reusable cost batch, creating it on first use. A batch
// is empty between Commits, so callers whose operations fully commit —
// like the directory-lookup loop, which previously allocated a fresh batch
// per operation — can share one per thread.
func (t *Thread) Batch() *Batch {
	if t.batch == nil {
		t.batch = t.NewBatch()
	}
	return t.batch
}

// Load charges a read of [addr, addr+n).
func (b *Batch) Load(addr mem.Addr, n int) {
	b.memLat += b.mach.AccessRange(b.t.core, addr, n, false, b.t.proc.Now()+b.memLat)
}

// Store charges a write of [addr, addr+n).
func (b *Batch) Store(addr mem.Addr, n int) {
	b.memLat += b.mach.AccessRange(b.t.core, addr, n, true, b.t.proc.Now()+b.memLat)
}

// Compute charges c cycles of computation (fractions accumulate and are
// rounded once at Commit).
func (b *Batch) Compute(c float64) { b.compute += c }

// Pending returns the cost accumulated so far.
func (b *Batch) Pending() sim.Cycles {
	return b.memLat + sim.Cycles(b.compute*b.t.sys.speed[b.t.core])
}

// Commit advances the thread's simulated time by the accumulated cost and
// resets the batch for reuse.
func (b *Batch) Commit() {
	total := b.Pending()
	b.memLat = 0
	b.compute = 0
	b.t.advance(total)
}
