package exec

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

func newSys(t testing.TB) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	m, err := machine.New(topology.AMD16(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return eng, NewSystem(eng, m, DefaultOptions())
}

func TestComputeAdvancesTime(t *testing.T) {
	eng, s := newSys(t)
	var end sim.Time
	s.Go("worker", 0, func(th *Thread) {
		th.Compute(1234)
		end = th.Now()
	})
	eng.Run(0)
	if end != 1234 {
		t.Fatalf("end = %d, want 1234", end)
	}
	if got := s.Machine().Counters().Snapshot(0).BusyCycles; got != 1234 {
		t.Fatalf("BusyCycles = %d, want 1234", got)
	}
}

func TestLoadChargesMemoryLatency(t *testing.T) {
	eng, s := newSys(t)
	var first, second sim.Time
	s.Go("worker", 0, func(th *Thread) {
		start := th.Now()
		th.Load(4096, 64)
		first = th.Now() - start
		start = th.Now()
		th.Load(4096, 64)
		second = th.Now() - start
	})
	eng.Run(0)
	lat := s.Machine().Config().Lat
	if first < lat.DRAMLocal {
		t.Fatalf("cold load %d cycles, want >= DRAM %d", first, lat.DRAMLocal)
	}
	if second != lat.L1Hit {
		t.Fatalf("warm load %d cycles, want L1 %d", second, lat.L1Hit)
	}
}

func TestTwoThreadsShareCoreFIFO(t *testing.T) {
	eng, s := newSys(t)
	var order []string
	s.Go("a", 0, func(th *Thread) {
		for i := 0; i < 2; i++ {
			th.Compute(100)
			order = append(order, "a")
			th.Yield()
		}
	})
	s.Go("b", 0, func(th *Thread) {
		for i := 0; i < 2; i++ {
			th.Compute(100)
			order = append(order, "b")
			th.Yield()
		}
	})
	eng.Run(0)
	want := []string{"a", "b", "a", "b"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (FIFO yield)", order, want)
		}
	}
	// Core time must be serialized: 4 × 100 cycles of compute cannot
	// finish before cycle 400.
	if eng.Now() < 400 {
		t.Fatalf("core oversubscribed: finished at %d", eng.Now())
	}
}

func TestThreadsOnDifferentCoresRunInParallel(t *testing.T) {
	eng, s := newSys(t)
	for i := 0; i < 4; i++ {
		s.Go("w", i, func(th *Thread) { th.Compute(1000) })
	}
	eng.Run(0)
	if eng.Now() != 1000 {
		t.Fatalf("4 cores × 1000 cycles finished at %d, want 1000 (parallel)", eng.Now())
	}
}

func TestYieldNoWaitersIsFree(t *testing.T) {
	eng, s := newSys(t)
	s.Go("solo", 0, func(th *Thread) {
		th.Compute(10)
		th.Yield()
		th.Compute(10)
	})
	eng.Run(0)
	if eng.Now() != 20 {
		t.Fatalf("lone yield cost cycles: end at %d", eng.Now())
	}
}

func TestMigrationCostNearPaper(t *testing.T) {
	// Paper §5: "The measured cost of migration in CoreTime is 2000
	// cycles." The reproduction should land in the same range.
	eng, s := newSys(t)
	var cost sim.Time
	s.Go("mig", 0, func(th *Thread) {
		th.Compute(100) // warm up the context buffer locally
		th.Store(th.ctxBuf, s.opts.ContextBytes)
		start := th.Now()
		th.MigrateTo(4) // another chip
		cost = th.Now() - start
	})
	eng.Run(0)
	if cost < 1200 || cost > 3200 {
		t.Fatalf("migration cost = %d cycles, want ≈2000 (paper)", cost)
	}
}

func TestMigrationMovesExecution(t *testing.T) {
	eng, s := newSys(t)
	var coreDuring, coreAfter int
	s.Go("mig", 0, func(th *Thread) {
		th.MigrateTo(7)
		coreDuring = th.Core()
		th.ReturnHome()
		coreAfter = th.Core()
	})
	eng.Run(0)
	if coreDuring != 7 || coreAfter != 0 {
		t.Fatalf("cores = %d,%d, want 7,0", coreDuring, coreAfter)
	}
	c := s.Machine().Counters()
	if c.Snapshot(7).MigrationsIn != 1 || c.Snapshot(0).MigrationsOut != 1 {
		t.Fatal("migration counters not updated")
	}
	if c.Snapshot(0).MigrationsIn != 1 {
		t.Fatal("return-home migration not counted")
	}
}

func TestMigrateToSameCoreIsFree(t *testing.T) {
	eng, s := newSys(t)
	s.Go("stay", 3, func(th *Thread) {
		th.MigrateTo(3)
	})
	eng.Run(0)
	if eng.Now() != 0 {
		t.Fatalf("no-op migration cost %d cycles", eng.Now())
	}
}

func TestMigrantQueuesBehindBusyResident(t *testing.T) {
	eng, s := newSys(t)
	var migrantRanAt sim.Time
	s.Go("resident", 5, func(th *Thread) {
		th.Compute(50000) // long operation, no yields
	})
	s.Go("migrant", 0, func(th *Thread) {
		th.MigrateTo(5)
		migrantRanAt = th.Now()
	})
	eng.Run(0)
	if migrantRanAt < 50000 {
		t.Fatalf("migrant ran at %d, before resident finished at 50000", migrantRanAt)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	eng, s := newSys(t)
	l := s.NewSpinLock("l")
	inside := 0
	maxInside := 0
	for i := 0; i < 8; i++ {
		s.Go("locker", i, func(th *Thread) {
			for j := 0; j < 5; j++ {
				th.Lock(l)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Compute(500)
				inside--
				th.Unlock(l)
				th.Yield()
			}
		})
	}
	eng.Run(0)
	if maxInside != 1 {
		t.Fatalf("critical section held by %d threads at once", maxInside)
	}
	if l.Acquisitions != 40 {
		t.Fatalf("Acquisitions = %d, want 40", l.Acquisitions)
	}
	if l.Held() {
		t.Fatal("lock still held at end")
	}
}

func TestSpinLockSerializesTime(t *testing.T) {
	eng, s := newSys(t)
	l := s.NewSpinLock("l")
	const hold = 10000
	for i := 0; i < 4; i++ {
		s.Go("locker", i, func(th *Thread) {
			th.Lock(l)
			th.Compute(hold)
			th.Unlock(l)
		})
	}
	eng.Run(0)
	if eng.Now() < 4*hold {
		t.Fatalf("4 critical sections of %d finished at %d: lock did not serialize",
			hold, eng.Now())
	}
}

func TestTryLock(t *testing.T) {
	eng, s := newSys(t)
	l := s.NewSpinLock("l")
	var got []bool
	s.Go("a", 0, func(th *Thread) {
		got = append(got, th.TryLock(l))
		th.Compute(10000)
		th.Unlock(l)
	})
	s.Go("b", 1, func(th *Thread) {
		th.Compute(5000) // arrive squarely inside a's critical section
		got = append(got, th.TryLock(l))
	})
	eng.Run(0)
	if len(got) != 2 || !got[0] || got[1] {
		t.Fatalf("TryLock results = %v, want [true false]", got)
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	eng, s := newSys(t)
	l := s.NewSpinLock("l")
	panicked := false
	s.Go("bad", 0, func(th *Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		th.Unlock(l)
	})
	eng.Run(0)
	if !panicked {
		t.Fatal("unlock by non-holder did not panic")
	}
}

func TestIdleAccounting(t *testing.T) {
	eng, s := newSys(t)
	s.Go("w", 0, func(th *Thread) {
		th.Compute(100)
	})
	eng.Run(0)
	// Core 0 went idle at 100; flush at 500.
	eng.At(500, func() { s.FlushIdleAccounting() })
	eng.Run(0)
	idle := s.Machine().Counters().Snapshot(0).IdleCycles
	if idle != 400 {
		t.Fatalf("IdleCycles = %d, want 400", idle)
	}
	// Never-used cores report no idle time (they are not "idle", they
	// are unused — the monitor only balances onto cores it manages).
	if got := s.Machine().Counters().Snapshot(9).IdleCycles; got != 0 {
		t.Fatalf("unused core accrued %d idle cycles", got)
	}
}

func TestSpinnerCannotStarveQueuedHolder(t *testing.T) {
	// Regression test for the cooperative-threading deadlock: thread A
	// migrates to core 1 holding lock L; resident thread B on core 1
	// spins for L. B's backoff must hand the core to A.
	eng, s := newSys(t)
	l := s.NewSpinLock("l")
	done := 0
	s.Go("a", 0, func(th *Thread) {
		th.Lock(l)
		th.MigrateTo(1)
		th.Compute(5000)
		th.Unlock(l)
		th.ReturnHome()
		done++
	})
	s.Go("b", 1, func(th *Thread) {
		th.Compute(10) // let A take the lock first
		th.Lock(l)
		th.Unlock(l)
		done++
	})
	eng.Run(50_000_000)
	if done != 2 {
		t.Fatalf("deadlock: only %d/2 threads finished", done)
	}
}

func TestHeterogeneousComputeScaling(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topology.AMD16()
	cfg.CoreSpeed = make([]float64, 16)
	for i := range cfg.CoreSpeed {
		cfg.CoreSpeed[i] = 1
	}
	cfg.CoreSpeed[2] = 2 // core 2 is half speed: cycles cost double
	m, err := machine.New(cfg, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(eng, m, DefaultOptions())
	var fastEnd, slowEnd sim.Time
	s.Go("fast", 0, func(th *Thread) { th.Compute(1000); fastEnd = th.Now() })
	s.Go("slow", 2, func(th *Thread) { th.Compute(1000); slowEnd = th.Now() })
	eng.Run(0)
	if fastEnd != 1000 || slowEnd != 2000 {
		t.Fatalf("ends = %d,%d, want 1000,2000", fastEnd, slowEnd)
	}
}

func TestLoadComputeCombines(t *testing.T) {
	eng, s := newSys(t)
	var elapsed sim.Time
	s.Go("scan", 0, func(th *Thread) {
		th.Load(0, 64) // warm one line
		start := th.Now()
		th.LoadCompute(0, 64, 0.5) // L1 hit + 32 cycles compute
		elapsed = th.Now() - start
	})
	eng.Run(0)
	want := sim.Time(3 + 32)
	if elapsed != want {
		t.Fatalf("LoadCompute took %d, want %d", elapsed, want)
	}
}

func TestIdleUntilReleasesCore(t *testing.T) {
	eng, s := newSys(t)
	var waiterRan sim.Time
	var wake sim.Time
	s.Go("idler", 0, func(th *Thread) {
		th.IdleUntil(10_000)
		wake = th.Now()
	})
	s.Go("waiter", 0, func(th *Thread) {
		// The idler releases core 0 while idle, so the waiter runs inside
		// the idle window instead of after it.
		th.Compute(500)
		waiterRan = th.Now()
	})
	eng.Run(0)
	if wake != 10_000 {
		t.Errorf("idler woke at %d, want 10000", wake)
	}
	if waiterRan == 0 || waiterRan > 10_000 {
		t.Errorf("waiter finished at %d; it should have run during the idle window", waiterRan)
	}
	// The idle window is idle, not busy: only the two Compute-free cycles
	// counts were charged.
	if busy := s.Machine().Counters().Snapshot(0).BusyCycles; busy != 500 {
		t.Errorf("BusyCycles = %d, want 500 (idling must not charge work)", busy)
	}
}

func TestIdleUntilPastTargetReturnsImmediately(t *testing.T) {
	eng, s := newSys(t)
	var end sim.Time
	s.Go("worker", 0, func(th *Thread) {
		th.Compute(100)
		th.IdleUntil(50) // already in the past
		end = th.Now()
	})
	eng.Run(0)
	if end != 100 {
		t.Errorf("IdleUntil(past) advanced time to %d, want 100", end)
	}
}
