package exec

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestBatchAccumulatesAndCommits(t *testing.T) {
	eng, s := newSys(t)
	var before, after sim.Time
	s.Go("w", 0, func(th *Thread) {
		b := th.NewBatch()
		before = th.Now()
		b.Load(0, 64)    // cold DRAM line
		b.Load(0, 64)    // now warm: L1
		b.Compute(100.5) // fractions accumulate
		b.Compute(99.5)
		if th.Now() != before {
			t.Error("batch advanced time before Commit")
		}
		b.Commit()
		after = th.Now()
	})
	eng.Run(0)
	lat := s.Machine().Config().Lat
	wantMin := sim.Time(lat.DRAMLocal + lat.L1Hit + 200)
	if after-before != wantMin {
		t.Fatalf("batch charged %d cycles, want %d", after-before, wantMin)
	}
}

func TestBatchReusableAfterCommit(t *testing.T) {
	eng, s := newSys(t)
	var d1, d2 sim.Time
	s.Go("w", 0, func(th *Thread) {
		b := th.NewBatch()
		b.Compute(500)
		start := th.Now()
		b.Commit()
		d1 = th.Now() - start
		b.Compute(300)
		start = th.Now()
		b.Commit()
		d2 = th.Now() - start
	})
	eng.Run(0)
	if d1 != 500 || d2 != 300 {
		t.Fatalf("commits charged %d,%d, want 500,300 (batch must reset)", d1, d2)
	}
}

func TestBatchEmptyCommitFree(t *testing.T) {
	eng, s := newSys(t)
	s.Go("w", 0, func(th *Thread) {
		th.NewBatch().Commit()
	})
	eng.Run(0)
	if eng.Now() != 0 {
		t.Fatalf("empty commit cost %d cycles", eng.Now())
	}
}

func TestBatchPendingReflectsCosts(t *testing.T) {
	eng, s := newSys(t)
	s.Go("w", 0, func(th *Thread) {
		b := th.NewBatch()
		if b.Pending() != 0 {
			t.Error("fresh batch has pending cost")
		}
		b.Compute(250)
		if b.Pending() != 250 {
			t.Errorf("Pending = %d, want 250", b.Pending())
		}
	})
	eng.Run(0)
}

func TestBatchTimestampsThreadThrough(t *testing.T) {
	// Later accesses in a batch must be issued at their future
	// timestamps, so machine state (e.g. bandwidth accounting windows)
	// sees them at the right simulated instant.
	eng, s := newSys(t)
	s.Go("w", 0, func(th *Thread) {
		b := th.NewBatch()
		// 200 distinct cold lines homed across controllers: with
		// correct future timestamps these spread over many 4096-cycle
		// accounting windows and queue only modestly.
		for i := 0; i < 200; i++ {
			b.Load(mem.Addr(i*64), 64)
		}
		b.Commit()
	})
	eng.Run(0)
	// 200 cold loads at ~230-336 each ≈ 57k cycles; runaway queueing
	// would push this far higher.
	if eng.Now() > 80_000 {
		t.Fatalf("batched scan cost %d cycles; bandwidth accounting misbehaving", eng.Now())
	}
	if eng.Now() < 40_000 {
		t.Fatalf("batched scan cost only %d cycles; latencies not charged", eng.Now())
	}
}

func TestBatchCommitCoalescesEvents(t *testing.T) {
	// A batch of K line accesses must reach the engine as one completion
	// event at Commit, not K per-touch insertions. Two concurrent threads
	// keep the event queue non-empty, so commits cannot ride the Sleep
	// fast path and every time advance is visible in the dispatch count.
	eng, s := newSys(t)
	const lines = 64
	scan := func(base mem.Addr) func(*Thread) {
		return func(th *Thread) {
			b := th.NewBatch()
			for i := 0; i < lines; i++ {
				b.Load(base+mem.Addr(i*64), 64)
			}
			b.Commit()
		}
	}
	s.Go("a", 0, scan(0))
	s.Go("b", 1, scan(1<<20))
	eng.Run(0)
	// Budget: two spawns plus at most one completion event per Commit.
	// Per-touch insertion would dispatch on the order of 2*lines events.
	if got := eng.EventsDispatched(); got > 6 {
		t.Fatalf("dispatched %d events for 2 batched scans of %d lines each; accesses are not coalescing",
			got, lines)
	}
}

func TestBatchStoresAcquireOwnership(t *testing.T) {
	eng, s := newSys(t)
	addr := mem.Addr(4096)
	s.Go("reader", 1, func(th *Thread) {
		th.Load(addr, 64)
	})
	s.Go("writer", 0, func(th *Thread) {
		th.Compute(5000) // let the reader cache it first
		b := th.NewBatch()
		b.Store(addr, 64)
		b.Commit()
	})
	eng.Run(0)
	if got := s.Machine().Counters().Snapshot(0).Invalidations; got == 0 {
		t.Fatal("batched store did not invalidate the remote copy")
	}
}
