// Package exec is the execution substrate: green threads running on the
// cores of a simulated machine.
//
// It reproduces the structure of CoreTime's runtime (paper §4,
// "Implementation"): one kernel thread per core (here: the core itself as a
// schedulable resource), cooperative user-level threads multiplexed on top,
// and thread migration through a shared context buffer plus a flag the
// destination core polls.
//
// Threads advance simulated time explicitly: Compute charges CPU cycles,
// Load/Store charge memory latency through the machine model, and Yield
// hands the core to other threads queued on it. Because every thread is a
// sim.Proc, exactly one thread executes at a time and runs are
// deterministic.
package exec

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Options tune the substrate's costs.
type Options struct {
	// MigrationCPUCost is the fixed cost charged on each side of a
	// migration (saving the context at the source, loading it at the
	// destination). The context transfer itself additionally moves
	// ContextBytes through the simulated memory system, so the total
	// measured migration cost lands near the paper's 2000 cycles with
	// the defaults. The active-message ablation (§6.1) lowers this.
	MigrationCPUCost sim.Cycles

	// PollInterval is how often an idle core checks its migration flag
	// (paper: "sets a flag that the destination core periodically polls").
	PollInterval sim.Cycles

	// ContextBytes is the size of the per-thread context buffer that
	// migrations move between cores.
	ContextBytes int
}

// DefaultOptions returns the costs used throughout the paper reproduction.
func DefaultOptions() Options {
	return Options{
		MigrationCPUCost: 550,
		PollInterval:     100,
		ContextBytes:     256,
	}
}

// System binds a machine to an engine and owns the cores and threads.
type System struct {
	eng   *sim.Engine
	mach  *machine.Machine
	opts  Options
	cores []*Core
	next  int // thread id allocator

	// speed caches Config().SpeedOf per core: the config methods copy the
	// whole topology struct, which is too expensive for Compute's hot path.
	speed []float64
}

// NewSystem creates the substrate. Thread context buffers are allocated
// from the machine's memory image, so migrations generate real coherence
// traffic.
func NewSystem(eng *sim.Engine, m *machine.Machine, opts Options) *System {
	s := &System{eng: eng, mach: m, opts: opts}
	cfg := m.Config()
	n := cfg.NumCores()
	s.cores = make([]*Core, n)
	s.speed = make([]float64, n)
	for i := 0; i < n; i++ {
		s.cores[i] = &Core{sys: s, id: i}
		s.speed[i] = cfg.SpeedOf(i)
	}
	return s
}

// Engine returns the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Machine returns the simulated machine.
func (s *System) Machine() *machine.Machine { return s.mach }

// Options returns the substrate options.
func (s *System) Options() Options { return s.opts }

// Core returns core i.
func (s *System) Core(i int) *Core { return s.cores[i] }

// NumCores returns the number of cores.
func (s *System) NumCores() int { return len(s.cores) }

// FlushIdleAccounting folds any in-progress idle period on every core into
// the IdleCycles counters, so monitors sampling at arbitrary instants see
// up-to-date values.
func (s *System) FlushIdleAccounting() {
	now := s.eng.Now()
	for _, c := range s.cores {
		c.flushIdle(now)
	}
}

// Reset returns the substrate to its initial state for arena reuse across
// sweep repeats: thread ids restart at zero and every core forgets its
// idle-accounting history, so threads spawned after Reset see exactly the
// state a fresh System would give them. It panics if any core is still
// held or has queued threads — resetting under live threads would corrupt
// the engine's active-context count.
func (s *System) Reset() {
	for _, c := range s.cores {
		if c.holder != nil || len(c.waiters) != 0 {
			panic(fmt.Sprintf("exec: Reset with core %d busy (holder %v, %d queued)",
				c.id, c.holder != nil, len(c.waiters)))
		}
		c.idleSince = 0
		c.everUsed = false
	}
	s.next = 0
}

// Core is one simulated core: a FIFO-fair resource that at most one thread
// holds at a time.
type Core struct {
	sys       *System
	id        int
	holder    *Thread
	waiters   []*Thread
	idleSince sim.Time
	everUsed  bool
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Holder returns the thread currently executing on the core, or nil.
func (c *Core) Holder() *Thread { return c.holder }

// QueueLen returns the number of threads waiting for the core.
func (c *Core) QueueLen() int { return len(c.waiters) }

func (c *Core) flushIdle(now sim.Time) {
	if c.holder == nil && c.everUsed {
		c.sys.mach.Counters().Core(c.id).IdleCycles += uint64(now - c.idleSince)
		c.idleSince = now
	}
}

// acquire blocks t until it holds the core.
func (c *Core) acquire(t *Thread) {
	if c.holder == nil && len(c.waiters) == 0 {
		c.flushIdle(t.proc.Now())
		c.holder = t
		c.everUsed = true
		// Idle→busy: register with the engine's activity meter so it can
		// attribute fast-forwarded time to dead time (all cores idle).
		c.sys.eng.AddActive(1)
		return
	}
	start := t.proc.Now()
	c.waiters = append(c.waiters, t)
	t.proc.Park()
	if c.holder != t {
		panic(fmt.Sprintf("exec: core %d woke thread %q without handoff", c.id, t.name))
	}
	c.sys.mach.Counters().Core(c.id).QueueWait += uint64(t.proc.Now() - start)
}

// release hands the core to the next waiter, or marks it idle.
func (c *Core) release(t *Thread) {
	if c.holder != t {
		panic(fmt.Sprintf("exec: thread %q releasing core %d it does not hold", t.name, c.id))
	}
	if n := len(c.waiters); n > 0 {
		next := c.waiters[0]
		// Shift in place rather than re-slicing the head away: the queue
		// keeps its backing array, so enqueueing never re-allocates.
		copy(c.waiters, c.waiters[1:])
		c.waiters[n-1] = nil
		c.waiters = c.waiters[:n-1]
		c.holder = next
		next.proc.Unpark()
		return
	}
	c.holder = nil
	c.idleSince = t.proc.Now()
	c.sys.eng.AddActive(-1) // busy→idle
}

// Thread is a cooperative green thread bound to a home core, able to
// migrate to other cores for the duration of an operation.
type Thread struct {
	sys  *System
	proc *sim.Proc
	name string
	id   int

	home int // core the thread belongs to
	core int // core it currently executes on

	ctxBuf mem.Addr // simulated context-save area (ContextBytes long)

	// batch is the thread's reusable cost batch (see Thread.Batch).
	batch *Batch

	// process identifies the owning process for the priority/fairness
	// extension (§6.2); 0 is the default process.
	process int
}

// Go spawns a thread on home core running body. The thread acquires its
// core before body runs and releases it when body returns.
func (s *System) Go(name string, home int, body func(t *Thread)) *Thread {
	if home < 0 || home >= len(s.cores) {
		panic(fmt.Sprintf("exec: home core %d out of range", home))
	}
	ctx, err := s.mach.Image().Alloc(uint64(s.opts.ContextBytes), 64)
	if err != nil {
		panic(fmt.Sprintf("exec: allocating context buffer: %v", err))
	}
	t := &Thread{sys: s, name: name, id: s.next, home: home, core: home, ctxBuf: ctx}
	s.next++
	t.proc = s.eng.Spawn(name, func(p *sim.Proc) {
		s.cores[home].acquire(t)
		body(t)
		s.cores[t.core].release(t)
	})
	return t
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// ID returns the thread's unique id.
func (t *Thread) ID() int { return t.id }

// Core returns the core the thread currently runs on.
func (t *Thread) Core() int { return t.core }

// Home returns the thread's home core.
func (t *Thread) Home() int { return t.home }

// Now returns the current simulated time.
func (t *Thread) Now() sim.Time { return t.proc.Now() }

// Proc exposes the underlying sim proc (for Join in drivers).
func (t *Thread) Proc() *sim.Proc { return t.proc }

// SetProcess tags the thread with an owning process id (priority/fairness
// extension).
func (t *Thread) SetProcess(pid int) { t.process = pid }

// Process returns the owning process id.
func (t *Thread) Process() int { return t.process }

// advance moves simulated time forward by d while charging busy cycles to
// the current core.
func (t *Thread) advance(d sim.Cycles) {
	if d == 0 {
		return
	}
	t.sys.mach.Counters().Core(t.core).BusyCycles += uint64(d)
	t.proc.Sleep(d)
}

// Compute charges d cycles of pure computation, scaled by the core's speed
// factor (heterogeneous-cores ablation).
func (t *Thread) Compute(d sim.Cycles) {
	speed := t.sys.speed[t.core]
	if speed != 1.0 {
		d = sim.Cycles(float64(d) * speed)
	}
	t.advance(d)
}

// Load charges a read of [addr, addr+size) through the memory hierarchy.
func (t *Thread) Load(addr mem.Addr, size int) {
	lat := t.sys.mach.Load(t.core, addr, size, t.proc.Now())
	t.advance(lat)
}

// Store charges a write of [addr, addr+size).
func (t *Thread) Store(addr mem.Addr, size int) {
	lat := t.sys.mach.Store(t.core, addr, size, t.proc.Now())
	t.advance(lat)
}

// LoadCompute interleaves a scan of [addr, addr+size) with perByte cycles
// of computation per byte, the shape of a directory-entry scan loop. The
// memory latency and compute cost are charged together in one event, which
// keeps big scans cheap to simulate.
func (t *Thread) LoadCompute(addr mem.Addr, size int, perByte float64) {
	lat := t.sys.mach.Load(t.core, addr, size, t.proc.Now())
	comp := sim.Cycles(float64(size) * perByte * t.sys.speed[t.core])
	t.advance(lat + comp)
}

// IdleUntil suspends the thread until simulated time target, releasing its
// current core for the duration: queued threads run meanwhile and the core
// accrues idle (not busy) cycles. It returns immediately when target is not
// in the future. This is how an open-loop service worker waits for the next
// request arrival — unlike Yield it does not need other threads queued, and
// unlike Compute it charges no work to the core.
func (t *Thread) IdleUntil(target sim.Time) {
	now := t.proc.Now()
	if target <= now {
		return
	}
	c := t.sys.cores[t.core]
	c.release(t)
	t.proc.Sleep(target - now)
	c.acquire(t)
}

// Block releases the thread's current core and parks the thread until
// another thread or timer calls Unblock; on wake it re-acquires the core.
// While blocked the core runs queued threads or accrues idle cycles,
// exactly like IdleUntil — Block is IdleUntil without a deadline. It is
// the primitive wait queues (sched.WaitList) are built from; Unblock must
// only be called on a thread currently parked in Block.
func (t *Thread) Block() {
	c := t.sys.cores[t.core]
	c.release(t)
	t.proc.Park()
	c.acquire(t)
}

// Unblock makes a thread parked in Block runnable at the current instant.
// The thread re-acquires its core before Block returns, queueing behind
// any holder.
func (t *Thread) Unblock() {
	t.proc.Unpark()
}

// Yield gives other threads queued on the current core a chance to run. If
// nobody is waiting it costs nothing.
func (t *Thread) Yield() {
	c := t.sys.cores[t.core]
	if len(c.waiters) == 0 {
		return
	}
	c.release(t)
	c.acquire(t)
}

// MigrateTo moves the thread to core dst, reproducing CoreTime's mechanism:
// the source core saves the context into the thread's shared buffer, the
// destination polls its migration flag, picks the thread up, and loads the
// context. The caller resumes on dst.
//
// The measured cost with default options is ≈2000 cycles (paper §5).
func (t *Thread) MigrateTo(dst int) {
	if dst == t.core {
		return
	}
	sys := t.sys
	ctr := sys.mach.Counters()

	// Save context on the source core (CPU cost + stores to the shared
	// buffer, which stay in the source's cache until pulled).
	t.Compute(sys.opts.MigrationCPUCost)
	t.Store(t.ctxBuf, sys.opts.ContextBytes)
	ctr.Core(t.core).MigrationsOut++

	src := sys.cores[t.core]
	src.release(t)

	// The destination notices the flag at its next poll.
	t.proc.Sleep(sys.opts.PollInterval)

	dstCore := sys.cores[dst]
	dstCore.acquire(t)
	t.core = dst
	ctr.Core(dst).MigrationsIn++

	// Load the context on the destination: remote fetches of the buffer
	// lines, then fixed restore cost.
	t.Load(t.ctxBuf, sys.opts.ContextBytes)
	t.Compute(sys.opts.MigrationCPUCost)
}

// ReturnHome migrates the thread back to its home core (the ct_end path).
func (t *Thread) ReturnHome() {
	t.MigrateTo(t.home)
}

// spinWait sleeps d cycles of backoff. If other threads are queued on the
// current core, the core is handed over for the duration so a spinning
// thread cannot starve the thread it is waiting for (which may be queued
// behind it after a migration).
func (t *Thread) spinWait(d sim.Cycles) {
	c := t.sys.cores[t.core]
	if len(c.waiters) == 0 {
		t.advance(d)
		return
	}
	c.release(t)
	t.proc.Sleep(d)
	c.acquire(t)
}
