package core

import "repro/internal/trace"

// This file implements the read-only replication extension (paper §6.2):
//
//	"sometimes it is better to replicate read-only objects and other
//	 times it might be better to schedule more distinct objects"
//
// A placed object whose operations are overwhelmingly read-only and which
// is hot enough that a single core would serialize its operations gets one
// replica per chip. Operations then run on the chip-local replica core,
// removing both the cross-chip migrations and the single-core bottleneck.
// Any write-capable operation collapses the replicas back to a single
// primary before it runs, preserving coherence of the scheduling decision.
//
// Replication trades cache capacity (N copies) for parallelism; the
// ablation benchmark (`o2bench ablation -exp=replication`) measures both
// sides of that trade.

// maybeReplicate promotes oi to one-replica-per-chip when it qualifies.
func (rt *Runtime) maybeReplicate(oi *objInfo) {
	if !rt.opts.EnableReplication || len(oi.replicas) > 0 || !oi.placed {
		return
	}
	if oi.ops < rt.opts.ReplicateMinOps {
		return
	}
	if float64(oi.readOps)/float64(oi.ops) < rt.opts.ReplicateReadRatio {
		return
	}
	cfg := rt.mach.Config()
	if cfg.Chips < 2 {
		return // nothing to spread across
	}

	// Choose one core per chip: the primary keeps its core; other chips
	// contribute their least-loaded core with room.
	primary := oi.core
	replicas := []int{primary}
	for chip := 0; chip < cfg.Chips; chip++ {
		if chip == cfg.ChipOf(primary) {
			continue
		}
		best, bestLoad := -1, int64(1<<62)
		for _, c := range cfg.CoresOf(chip) {
			if rt.coreLoad[c]+oi.bytes() > rt.budget {
				continue
			}
			if rt.coreLoad[c] < bestLoad {
				best, bestLoad = c, rt.coreLoad[c]
			}
		}
		if best >= 0 {
			replicas = append(replicas, best)
		}
	}
	if len(replicas) < 2 {
		return // no chip had room; stay single-copy
	}
	// Account the extra copies against the replica cores' budgets.
	for _, c := range replicas[1:] {
		rt.coreLoad[c] += oi.bytes()
	}
	oi.replicas = replicas
	rt.stats.Replications++
	rt.opts.Tracer.Emit(trace.Event{At: rt.sys.Engine().Now(), Kind: trace.EvReplicate,
		Subject: uint64(oi.obj.Base), Name: oi.obj.Name, Arg1: int64(len(replicas))})
}

// collapseReplicas reverts oi to a single placement on its primary core
// (called before any write-capable operation).
func (rt *Runtime) collapseReplicas(oi *objInfo) {
	if len(oi.replicas) == 0 {
		return
	}
	for _, c := range oi.replicas[1:] {
		rt.coreLoad[c] -= oi.bytes()
	}
	n := len(oi.replicas)
	oi.core = oi.replicas[0]
	oi.replicas = nil
	rt.stats.ReplicaCollapse++
	rt.opts.Tracer.Emit(trace.Event{At: rt.sys.Engine().Now(), Kind: trace.EvCollapse,
		Subject: uint64(oi.obj.Base), Name: oi.obj.Name, Arg1: int64(n)})
	// Restart the read/write statistics: the object must re-earn
	// replication with ReplicateMinOps fresh read-only operations, or a
	// write-heavy phase would collapse and re-replicate every operation.
	oi.ops = 0
	oi.readOps = 0
}
