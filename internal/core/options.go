package core

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// ReplacementPolicy selects what happens when an object worth placing no
// longer fits in any cache budget (working set larger than total on-chip
// memory, paper §6.2).
type ReplacementPolicy int

const (
	// ReplaceNone is the paper's base algorithm: first-fit, and objects
	// that do not fit stay unplaced (served from DRAM).
	ReplaceNone ReplacementPolicy = iota
	// ReplaceFrequency evicts the least frequently used placed object
	// when a hotter object needs its space — the cache-replacement
	// policy sketched in §6.2 ("stores the objects accessed most
	// frequently on-chip").
	ReplaceFrequency
)

// String implements fmt.Stringer for reports.
func (p ReplacementPolicy) String() string {
	switch p {
	case ReplaceNone:
		return "first-fit"
	case ReplaceFrequency:
		return "frequency"
	}
	return "unknown"
}

// Options tune CoreTime. DefaultOptions matches the behaviour described in
// the paper; the extensions (§6) are off unless enabled.
type Options struct {
	// MissThreshold is the smoothed per-operation cache-miss count above
	// which an object is considered "expensive to fetch" and becomes a
	// candidate for placement (§4: "ct_start automatically adds an
	// object to the table if the object is expensive to fetch").
	MissThreshold float64

	// MissEWMAAlpha is the smoothing factor for the per-object miss
	// estimate (new = alpha*sample + (1-alpha)*old).
	MissEWMAAlpha float64

	// BudgetFraction scales each core's packable capacity
	// (L2 + L3 share). Less than 1 leaves room for stacks, locks, and
	// code, which also occupy the caches.
	BudgetFraction float64

	// RebalanceInterval is the period of the monitor that repairs
	// placement pathologies (§4: "detect performance pathologies at
	// run-time and ... improve performance by rearranging objects").
	// Zero disables the monitor.
	RebalanceInterval sim.Cycles

	// DecayWindow unplaces objects not operated on for this long, so a
	// shrinking working set releases cache budget (the oscillating
	// workload, Fig. 4b). Zero disables decay.
	DecayWindow sim.Cycles

	// MaxMovesPerRebalance bounds how many objects one monitor pass may
	// move, limiting placement churn.
	MaxMovesPerRebalance int

	// IdleFracLow marks a core overloaded when its idle fraction over
	// the last window is below this value; IdleFracHigh marks a core a
	// migration target when above it (§4: "If a core is rarely idle or
	// often loads from DRAM ... move a portion of the objects ... to the
	// cache of a core that has more idle cycles").
	IdleFracLow  float64
	IdleFracHigh float64

	// Replacement selects the over-capacity policy (§6.2 extension).
	Replacement ReplacementPolicy

	// EnableClustering makes PlaceTogether hints pack co-used objects
	// into the same cache (§6.2 extension).
	EnableClustering bool

	// EnableReplication allows hot read-only objects to be replicated,
	// one copy per chip, instead of funneling every operation to a
	// single core (§6.2 extension).
	EnableReplication bool

	// ReplicateMinOps is the number of read-only operations an object
	// must have received before it is considered for replication.
	ReplicateMinOps uint64

	// ReplicateReadRatio is the minimum fraction of read-only operations
	// for an object to stay replicated; a write always collapses it.
	ReplicateReadRatio float64

	// UnplaceDRAMFrac controls when the monitor judges a placement
	// ineffective: a placed object whose operations still load more than
	// this fraction of the object's lines from DRAM is not fitting on
	// chip, so migrating to it wastes the migration. The monitor
	// unplaces it and suppresses re-placement for a cooldown. Zero
	// disables the check.
	UnplaceDRAMFrac float64

	// BWSpread enables bandwidth-aware spreading: each monitor pass rolls
	// the per-core DRAMQueueCycles/LinkQueueCycles deltas up to socket
	// totals, normalizes them per busy cycle, smooths with an EWMA, and
	// migrates placed objects off sockets whose queueing signal exceeds
	// BWSaturationFrac toward sockets below BWHeadroomFrac — preferring
	// low-hop destinations when link queueing dominates (the congestion is
	// in the interconnect, so distance is what's expensive) and the least
	// saturated socket when DRAM queueing dominates.
	BWSpread bool

	// BWAdmission refuses new placements onto sockets whose smoothed
	// queueing signal is above BWSaturationFrac: placing another hot
	// object behind a saturated memory controller only deepens the queue.
	// Offline PackAll ignores admission — it runs before any signal exists.
	BWAdmission bool

	// BWQueueEWMAAlpha smooths the per-socket queue signals
	// (new = alpha*sample + (1-alpha)*old). The first window seeds the
	// EWMA directly.
	BWQueueEWMAAlpha float64

	// BWSaturationFrac is the queueing threshold, in queue cycles per busy
	// cycle (DRAM + link combined), above which a socket counts as
	// saturated for both spread and admission.
	BWSaturationFrac float64

	// BWHeadroomFrac is the signal below which a socket counts as having
	// headroom, i.e. is an eligible spread destination.
	BWHeadroomFrac float64

	// ReturnToOrigin makes ct_end migrate the thread back to the core it
	// came from even for top-level operations. The paper says only that
	// after ct_end "the thread is ready to run on another core"; the
	// default (false) lets threads continue from the object's core and
	// migrate directly to their next object, halving migrations and
	// queueing. Nested operations always return to the enclosing
	// operation's core regardless of this setting. The o2bench ablation
	// `-exp=migcost` quantifies the difference indirectly; tests cover
	// both modes.
	ReturnToOrigin bool

	// Tracer, when non-nil, receives a typed event for every scheduling
	// decision (placements, migrations, monitor actions). Nil costs
	// nothing.
	Tracer *trace.Tracer
}

// DefaultOptions returns the configuration used for the paper reproduction
// benchmarks.
func DefaultOptions() Options {
	return Options{
		MissThreshold:        8,
		MissEWMAAlpha:        0.25,
		BudgetFraction:       0.90,
		RebalanceInterval:    2_000_000, // 1 ms at 2 GHz
		DecayWindow:          8_000_000, // 4 ms at 2 GHz
		MaxMovesPerRebalance: 8,
		IdleFracLow:          0.02,
		IdleFracHigh:         0.20,
		UnplaceDRAMFrac:      0.20,
		BWQueueEWMAAlpha:     0.5,
		BWSaturationFrac:     0.25,
		BWHeadroomFrac:       0.10,
		Replacement:          ReplaceNone,
		ReplicateMinOps:      64,
		ReplicateReadRatio:   0.95,
	}
}
