package core

import (
	"sort"

	"repro/internal/perfctr"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements CoreTime's runtime monitor (paper §4):
//
//	"CoreTime also uses hardware event counters to detect when too many
//	 operations are assigned to a core or too many objects are assigned
//	 to a cache. CoreTime tracks the number of idle cycles, loads from
//	 DRAM, and loads from the L2 cache for each core. If a core is rarely
//	 idle or often loads from DRAM, CoreTime will periodically move a
//	 portion of the objects from that core's cache to the cache of a core
//	 that has more idle cycles and rarely loads from the L2 cache."
//
// The monitor runs every Options.RebalanceInterval cycles. Each pass:
//
//  1. decays objects that have not been operated on within DecayWindow,
//     releasing their cache budget (lets a shrinking working set free
//     space — the oscillating benchmark of Fig. 4b);
//  2. reads per-core counter deltas, classifies cores as overloaded
//     (rarely idle) or spare (often idle), and moves the hottest objects
//     from overloaded cores to spare cores with room;
//  3. clears the per-window op counts.

// monitorState carries per-pass counter snapshots between invocations.
// snaps and deltas are scratch reused every pass; last persists between
// passes. All three are sized to the core count on first use.
type monitorState struct {
	last   []perfctr.Counters
	snaps  []perfctr.Counters
	deltas []perfctr.Counters

	// lastAt is the simulated time of the last accounted pass; windows
	// are measured against it rather than assuming the configured
	// interval, so a pass fired at the same cycle as its predecessor
	// (possible after an arena reset re-registers the tick) is a clean
	// no-op instead of a divide-by-zero.
	lastAt sim.Time

	// Bandwidth-aware signal state (BWSpread/BWAdmission): per-socket
	// rollup scratch and the EWMA-smoothed queueing signals, in queue
	// cycles per busy cycle. bwInit is false until the first full window
	// seeds the EWMAs.
	sockScratch []perfctr.Counters
	dramQ       []float64
	linkQ       []float64
	bwInit      bool
}

// rebalance is one monitor pass.
func (rt *Runtime) rebalance() {
	now := rt.sys.Engine().Now()

	// 1. Decay stale placements, and withdraw ineffective ones: a placed
	// object whose operations still pull a large fraction of its lines
	// from DRAM is not fitting on chip, so every migration to it is
	// wasted cost.
	if rt.opts.DecayWindow > 0 {
		for _, oi := range rt.objs {
			if oi.placed && now-oi.lastAccess > rt.opts.DecayWindow {
				rt.unplace(oi)
			}
		}
	}
	if frac := rt.opts.UnplaceDRAMFrac; frac > 0 {
		for _, oi := range rt.objs {
			// Judge only placements old enough that the cold-start
			// DRAM loads of the placement itself have decayed out of
			// the EWMA (0.75^8 ≈ 10% residue at the default alpha).
			if !oi.placed || oi.placedOps < 8 {
				continue
			}
			lines := float64(oi.bytes()) / 64
			if oi.dramEWMA > lines*frac {
				rt.unplaceReason(oi, 1)
				oi.noPlaceUntil = now + 8*rt.opts.RebalanceInterval
			}
		}
	}

	// 2. Balance operations across cores.
	rt.sys.FlushIdleAccounting()
	mon := &rt.mon
	mon.snaps = rt.mach.Counters().AppendSnapshots(mon.snaps[:0])
	// The first pass of a run has no previous snapshot to delta against
	// (len 0 rather than a nil check: Reset empties the slice but keeps
	// its backing array, and must re-arm this first-pass behavior).
	if len(mon.last) == 0 {
		mon.last = append(mon.last, mon.snaps...)
		mon.lastAt = now
		rt.endWindow()
		return
	}
	elapsed := now - mon.lastAt
	if elapsed == 0 {
		// Two firings at the same cycle (back-to-back arena resets can
		// re-register the tick on an engine whose clock has not advanced):
		// there is no window to classify, and dividing by it would poison
		// idleFrac with NaN/Inf.
		rt.endWindow()
		return
	}
	mon.lastAt = now
	mon.deltas = mon.deltas[:0]
	for i := range mon.snaps {
		mon.deltas = append(mon.deltas, mon.snaps[i].Sub(mon.last[i]))
	}
	copy(mon.last, mon.snaps)

	bw := rt.opts.BWSpread || rt.opts.BWAdmission
	if bw {
		rt.updateBWSignals(mon.deltas)
	}

	moved := rt.balanceLoad(mon.deltas, elapsed)
	if rt.opts.BWSpread {
		moved += rt.spreadSaturated()
	}
	if moved > 0 {
		rt.stats.Rebalances++
		rt.opts.Tracer.Emit(trace.Event{At: now, Kind: trace.EvRebalance, Arg1: int64(moved)})
	}

	// 3. Reset window statistics.
	rt.endWindow()
}

func (rt *Runtime) endWindow() {
	for _, oi := range rt.objs {
		oi.windowOps = 0
	}
}

// coreUtil summarises one core's last window for balancing decisions.
type coreUtil struct {
	core     int
	idleFrac float64
	dramRate float64 // DRAM loads per busy cycle
}

// balanceLoad moves hot objects from overloaded cores to spare cores and
// returns how many objects moved. elapsed is the measured window length,
// the denominator for idle fractions.
func (rt *Runtime) balanceLoad(deltas []perfctr.Counters, elapsed sim.Time) int {
	interval := float64(elapsed)
	if interval == 0 {
		return 0
	}

	utils := make([]coreUtil, len(deltas))
	for i, d := range deltas {
		u := coreUtil{core: i}
		u.idleFrac = float64(d.IdleCycles) / interval
		if d.BusyCycles == 0 && d.IdleCycles == 0 {
			// A core that was never acquired since reset accrues neither
			// busy nor idle cycles — the exec layer only starts the idle
			// clock at a core's first use, so a core that slept through
			// the whole window (including engine dead-time fast-forwards)
			// shows zero on both accounts. It was 100% idle, not 100%
			// busy; without this it would be classified overloaded and
			// its placed objects bounced off a core nobody is using.
			u.idleFrac = 1
		}
		if d.BusyCycles > 0 {
			u.dramRate = float64(d.DRAMLoads) / float64(d.BusyCycles)
		}
		utils[i] = u
	}

	// Overloaded: rarely idle. Spare: often idle and light on DRAM —
	// and, under BWAdmission, not behind a saturated memory controller.
	var overloaded, spare []coreUtil
	for _, u := range utils {
		switch {
		case u.idleFrac < rt.opts.IdleFracLow && rt.placedCount(u.core) > 1:
			overloaded = append(overloaded, u)
		case u.idleFrac > rt.opts.IdleFracHigh && rt.admits(u.core):
			spare = append(spare, u)
		}
	}
	if len(overloaded) == 0 || len(spare) == 0 {
		return 0
	}
	// Most-overloaded first; most-idle targets first.
	sort.Slice(overloaded, func(i, j int) bool {
		return overloaded[i].idleFrac < overloaded[j].idleFrac
	})
	sort.Slice(spare, func(i, j int) bool {
		return spare[i].idleFrac > spare[j].idleFrac
	})

	moved := 0
	si := 0
	for _, o := range overloaded {
		if moved >= rt.opts.MaxMovesPerRebalance || si >= len(spare) {
			break
		}
		// Move half of the overloaded core's objects, hottest first:
		// the hot objects are why threads pile onto the core.
		objs := rt.placedOn(o.core)
		if len(objs) < 2 {
			continue
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i].opRate() > objs[j].opRate() })
		toMove := len(objs) / 2
		for _, oi := range objs[:toMove] {
			if moved >= rt.opts.MaxMovesPerRebalance || si >= len(spare) {
				break
			}
			dst := spare[si].core
			if !rt.fits(oi, dst) {
				si++
				if si >= len(spare) {
					break
				}
				dst = spare[si].core
				if !rt.fits(oi, dst) {
					continue
				}
			}
			rt.move(oi, dst)
			moved++
			si++ // spread across spare cores round-robin
			if si >= len(spare) {
				si = 0
			}
		}
	}
	return moved
}

// updateBWSignals rolls the window's per-core counter deltas up to socket
// totals and folds the queueing delay per busy cycle into the smoothed
// per-socket signals. Queue cycles are normalized by the socket's busy
// cycles: a socket whose cores spent 25% of their executed cycles waiting
// in controller/link queues reads 0.25, whatever the absolute load.
func (rt *Runtime) updateBWSignals(deltas []perfctr.Counters) {
	mon := &rt.mon
	if mon.sockScratch == nil {
		mon.sockScratch = make([]perfctr.Counters, rt.nchips)
		mon.dramQ = make([]float64, rt.nchips)
		mon.linkQ = make([]float64, rt.nchips)
	}
	socks := perfctr.RollupGroups(mon.sockScratch, deltas, rt.chipOf)
	a := rt.opts.BWQueueEWMAAlpha
	for s, c := range socks {
		busy := float64(c.BusyCycles)
		if busy < 1 {
			busy = 1
		}
		dq := float64(c.DRAMQueueCycles) / busy
		lq := float64(c.LinkQueueCycles) / busy
		if !mon.bwInit {
			mon.dramQ[s] = dq
			mon.linkQ[s] = lq
		} else {
			mon.dramQ[s] = a*dq + (1-a)*mon.dramQ[s]
			mon.linkQ[s] = a*lq + (1-a)*mon.linkQ[s]
		}
	}
	mon.bwInit = true
}

// bwSignal returns the socket's combined smoothed queueing signal.
func (rt *Runtime) bwSignal(sock int) float64 {
	return rt.mon.dramQ[sock] + rt.mon.linkQ[sock]
}

// admits reports whether placements onto core's socket are currently
// allowed. Always true until admission is enabled and the first full
// window has seeded the signals — CoreTime must behave exactly like the
// plain policy while it has nothing to go on.
func (rt *Runtime) admits(core int) bool {
	if !rt.opts.BWAdmission || !rt.mon.bwInit {
		return true
	}
	return rt.bwSignal(rt.chipOf[core]) <= rt.opts.BWSaturationFrac
}

// spreadSaturated migrates placed objects off saturated sockets toward
// sockets with queueing headroom and returns how many objects moved. This
// is the socket-level sibling of balanceLoad: that pass sees "this core is
// rarely idle", this one sees "this socket's memory controller or link
// port is the queue everything is stuck in" — a congestion a core-local
// idle fraction cannot express, because queueing delay inflates every
// operation on the socket equally.
func (rt *Runtime) spreadSaturated() int {
	mon := &rt.mon
	if !mon.bwInit {
		return 0
	}
	moved := 0
	for src := 0; src < rt.nchips && moved < rt.opts.MaxMovesPerRebalance; src++ {
		if rt.bwSignal(src) <= rt.opts.BWSaturationFrac {
			continue
		}
		// Eligible destinations: sockets with clear headroom. When link
		// queueing dominates the source's signal, the interconnect is the
		// contended resource, so prefer near destinations (fewest hops);
		// when DRAM queueing dominates, the controller is, so prefer the
		// least-saturated socket wherever it sits. Ties break on socket
		// index for determinism.
		var dsts []int
		for s := 0; s < rt.nchips; s++ {
			if s != src && rt.bwSignal(s) < rt.opts.BWHeadroomFrac {
				dsts = append(dsts, s)
			}
		}
		if len(dsts) == 0 {
			continue
		}
		linkBound := mon.linkQ[src] > mon.dramQ[src]
		sort.Slice(dsts, func(i, j int) bool {
			a, b := dsts[i], dsts[j]
			if linkBound {
				da, db := rt.mach.HopDist(src, a), rt.mach.HopDist(src, b)
				if da != db {
					return da < db
				}
			}
			sa, sb := rt.bwSignal(a), rt.bwSignal(b)
			if sa != sb {
				return sa < sb
			}
			return a < b
		})

		objs := rt.placedOnSocket(src)
		if len(objs) < 2 {
			continue // moving the only placed object just moves the queue
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i].opRate() > objs[j].opRate() })
		toMove := len(objs) / 2
		for _, oi := range objs[:toMove] {
			if moved >= rt.opts.MaxMovesPerRebalance {
				break
			}
			if dst, ok := rt.spreadTarget(oi, dsts); ok {
				rt.move(oi, dst)
				rt.stats.BWSpreadMoves++
				moved++
			}
		}
	}
	return moved
}

// spreadTarget picks the core an object spread off its socket should land
// on: the most-free core with budget for it on the first destination
// socket that can take it.
func (rt *Runtime) spreadTarget(oi *objInfo, dsts []int) (int, bool) {
	for _, s := range dsts {
		best, bestFree := -1, int64(-1)
		for _, c := range rt.mach.Config().CoresOf(s) {
			if !rt.fits(oi, c) {
				continue
			}
			if free := rt.budget - rt.coreLoad[c]; free > bestFree {
				best, bestFree = c, free
			}
		}
		if best >= 0 {
			return best, true
		}
	}
	return 0, false
}

// placedOnSocket returns the placed, unreplicated objects whose core is on
// socket, in deterministic base-address order.
func (rt *Runtime) placedOnSocket(sock int) []*objInfo {
	var out []*objInfo
	for _, oi := range rt.objs {
		if oi.placed && rt.chipOf[oi.core] == sock && len(oi.replicas) == 0 {
			out = append(out, oi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj.Base < out[j].obj.Base })
	return out
}

// placedCount returns how many objects are assigned to core.
func (rt *Runtime) placedCount(core int) int {
	n := 0
	for _, oi := range rt.objs {
		if oi.placed && oi.core == core {
			n++
		}
	}
	return n
}

// placedOn returns the objects assigned to core.
func (rt *Runtime) placedOn(core int) []*objInfo {
	var out []*objInfo
	for _, oi := range rt.objs {
		if oi.placed && oi.core == core && len(oi.replicas) == 0 {
			out = append(out, oi)
		}
	}
	// Deterministic order before sorting by rate.
	sort.Slice(out, func(i, j int) bool { return out[i].obj.Base < out[j].obj.Base })
	return out
}
