package core

import (
	"sort"

	"repro/internal/perfctr"
	"repro/internal/trace"
)

// This file implements CoreTime's runtime monitor (paper §4):
//
//	"CoreTime also uses hardware event counters to detect when too many
//	 operations are assigned to a core or too many objects are assigned
//	 to a cache. CoreTime tracks the number of idle cycles, loads from
//	 DRAM, and loads from the L2 cache for each core. If a core is rarely
//	 idle or often loads from DRAM, CoreTime will periodically move a
//	 portion of the objects from that core's cache to the cache of a core
//	 that has more idle cycles and rarely loads from the L2 cache."
//
// The monitor runs every Options.RebalanceInterval cycles. Each pass:
//
//  1. decays objects that have not been operated on within DecayWindow,
//     releasing their cache budget (lets a shrinking working set free
//     space — the oscillating benchmark of Fig. 4b);
//  2. reads per-core counter deltas, classifies cores as overloaded
//     (rarely idle) or spare (often idle), and moves the hottest objects
//     from overloaded cores to spare cores with room;
//  3. clears the per-window op counts.

// monitorState carries per-pass counter snapshots between invocations.
// snaps and deltas are scratch reused every pass; last persists between
// passes. All three are sized to the core count on first use.
type monitorState struct {
	last   []perfctr.Counters
	snaps  []perfctr.Counters
	deltas []perfctr.Counters
}

// rebalance is one monitor pass.
func (rt *Runtime) rebalance() {
	now := rt.sys.Engine().Now()

	// 1. Decay stale placements, and withdraw ineffective ones: a placed
	// object whose operations still pull a large fraction of its lines
	// from DRAM is not fitting on chip, so every migration to it is
	// wasted cost.
	if rt.opts.DecayWindow > 0 {
		for _, oi := range rt.objs {
			if oi.placed && now-oi.lastAccess > rt.opts.DecayWindow {
				rt.unplace(oi)
			}
		}
	}
	if frac := rt.opts.UnplaceDRAMFrac; frac > 0 {
		for _, oi := range rt.objs {
			// Judge only placements old enough that the cold-start
			// DRAM loads of the placement itself have decayed out of
			// the EWMA (0.75^8 ≈ 10% residue at the default alpha).
			if !oi.placed || oi.placedOps < 8 {
				continue
			}
			lines := float64(oi.bytes()) / 64
			if oi.dramEWMA > lines*frac {
				rt.unplaceReason(oi, 1)
				oi.noPlaceUntil = now + 8*rt.opts.RebalanceInterval
			}
		}
	}

	// 2. Balance operations across cores.
	rt.sys.FlushIdleAccounting()
	mon := &rt.mon
	mon.snaps = rt.mach.Counters().AppendSnapshots(mon.snaps[:0])
	// The first pass of a run has no previous snapshot to delta against
	// (len 0 rather than a nil check: Reset empties the slice but keeps
	// its backing array, and must re-arm this first-pass behavior).
	if len(mon.last) == 0 {
		mon.last = append(mon.last, mon.snaps...)
		rt.endWindow()
		return
	}
	mon.deltas = mon.deltas[:0]
	for i := range mon.snaps {
		mon.deltas = append(mon.deltas, mon.snaps[i].Sub(mon.last[i]))
	}
	copy(mon.last, mon.snaps)

	moved := rt.balanceLoad(mon.deltas)
	if moved > 0 {
		rt.stats.Rebalances++
		rt.opts.Tracer.Emit(trace.Event{At: now, Kind: trace.EvRebalance, Arg1: int64(moved)})
	}

	// 3. Reset window statistics.
	rt.endWindow()
}

func (rt *Runtime) endWindow() {
	for _, oi := range rt.objs {
		oi.windowOps = 0
	}
}

// coreUtil summarises one core's last window for balancing decisions.
type coreUtil struct {
	core     int
	idleFrac float64
	dramRate float64 // DRAM loads per busy cycle
}

// balanceLoad moves hot objects from overloaded cores to spare cores and
// returns how many objects moved.
func (rt *Runtime) balanceLoad(deltas []perfctr.Counters) int {
	interval := float64(rt.opts.RebalanceInterval)
	if interval == 0 {
		return 0
	}

	utils := make([]coreUtil, len(deltas))
	for i, d := range deltas {
		u := coreUtil{core: i}
		u.idleFrac = float64(d.IdleCycles) / interval
		if d.BusyCycles > 0 {
			u.dramRate = float64(d.DRAMLoads) / float64(d.BusyCycles)
		}
		utils[i] = u
	}

	// Overloaded: rarely idle. Spare: often idle and light on DRAM.
	var overloaded, spare []coreUtil
	for _, u := range utils {
		switch {
		case u.idleFrac < rt.opts.IdleFracLow && rt.placedCount(u.core) > 1:
			overloaded = append(overloaded, u)
		case u.idleFrac > rt.opts.IdleFracHigh:
			spare = append(spare, u)
		}
	}
	if len(overloaded) == 0 || len(spare) == 0 {
		return 0
	}
	// Most-overloaded first; most-idle targets first.
	sort.Slice(overloaded, func(i, j int) bool {
		return overloaded[i].idleFrac < overloaded[j].idleFrac
	})
	sort.Slice(spare, func(i, j int) bool {
		return spare[i].idleFrac > spare[j].idleFrac
	})

	moved := 0
	si := 0
	for _, o := range overloaded {
		if moved >= rt.opts.MaxMovesPerRebalance || si >= len(spare) {
			break
		}
		// Move half of the overloaded core's objects, hottest first:
		// the hot objects are why threads pile onto the core.
		objs := rt.placedOn(o.core)
		if len(objs) < 2 {
			continue
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i].opRate() > objs[j].opRate() })
		toMove := len(objs) / 2
		for _, oi := range objs[:toMove] {
			if moved >= rt.opts.MaxMovesPerRebalance || si >= len(spare) {
				break
			}
			dst := spare[si].core
			if !rt.fits(oi, dst) {
				si++
				if si >= len(spare) {
					break
				}
				dst = spare[si].core
				if !rt.fits(oi, dst) {
					continue
				}
			}
			rt.move(oi, dst)
			moved++
			si++ // spread across spare cores round-robin
			if si >= len(spare) {
				si = 0
			}
		}
	}
	return moved
}

// placedCount returns how many objects are assigned to core.
func (rt *Runtime) placedCount(core int) int {
	n := 0
	for _, oi := range rt.objs {
		if oi.placed && oi.core == core {
			n++
		}
	}
	return n
}

// placedOn returns the objects assigned to core.
func (rt *Runtime) placedOn(core int) []*objInfo {
	var out []*objInfo
	for _, oi := range rt.objs {
		if oi.placed && oi.core == core && len(oi.replicas) == 0 {
			out = append(out, oi)
		}
	}
	// Deterministic order before sorting by rate.
	sort.Slice(out, func(i, j int) bool { return out[i].obj.Base < out[j].obj.Base })
	return out
}
