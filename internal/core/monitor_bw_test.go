package core

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/perfctr"
	"repro/internal/sim"
	"repro/internal/topology"
)

// newNUMAHarness is newHarness on the 64-core NUMA preset, whose 8-socket
// grid gives the bandwidth-aware monitor distinct sockets and hop
// distances to reason about.
func newNUMAHarness(t testing.TB, opts Options) *harness {
	t.Helper()
	eng := sim.NewEngine()
	m, err := machine.New(topology.NUMA64(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	sys := exec.NewSystem(eng, m, exec.DefaultOptions())
	return &harness{eng: eng, m: m, sys: sys, rt: New(sys, opts)}
}

// seedBWSignals installs fabricated smoothed queue signals, as if the
// monitor had already observed a full window, so spread/admission
// decisions can be unit-tested without reconstructing real saturation.
func seedBWSignals(rt *Runtime) {
	rt.mon.sockScratch = make([]perfctr.Counters, rt.nchips)
	rt.mon.dramQ = make([]float64, rt.nchips)
	rt.mon.linkQ = make([]float64, rt.nchips)
	rt.mon.bwInit = true
}

func TestUnusedCoreClassifiedIdleNotOverloaded(t *testing.T) {
	// Regression: a core never acquired since reset accrues neither busy
	// nor idle cycles (the exec layer starts the idle clock at first
	// use), so a core that slept through a dead-time fast-forwarded gap
	// read idleFrac == 0 and was classified overloaded — its placed
	// objects were bounced off a core nobody was even running on.
	opts := DefaultOptions()
	opts.RebalanceInterval = 500_000
	h := newHarness(t, opts)

	a := h.alloc(t, "a", 32<<10)
	b := h.alloc(t, "b", 32<<10)
	oa, ob := h.rt.info(a.Base), h.rt.info(b.Base)
	oa.missEWMA, ob.missEWMA = 100, 100
	h.rt.assign(oa, 7) // two objects: placedCount > 1 arms the old bug
	h.rt.assign(ob, 7)

	// One thread computes briefly, then sleeps through several monitor
	// windows. With no active thread the engine fast-forwards the gaps
	// as dead time; core 7 is never touched at all.
	h.sys.Go("sleeper", 0, func(th *exec.Thread) {
		th.Compute(100_000)
		th.IdleUntil(2_600_000)
		oa.lastAccess = th.Now() // keep decay out of the picture
		ob.lastAccess = th.Now()
	})
	h.eng.Run(0)

	if h.eng.DeadTime() == 0 {
		t.Fatal("test never exercised the dead-time fast-forward path")
	}
	if got := h.rt.Stats().ObjectsMoved; got != 0 {
		t.Fatalf("monitor moved %d objects off a never-used core", got)
	}
	if core, placed := h.rt.Placement(a.Base); !placed || core != 7 {
		t.Fatalf("object a at core=%d placed=%v, want core 7", core, placed)
	}
}

func TestRebalanceZeroLengthWindowIsNoOp(t *testing.T) {
	// Two monitor firings at the same cycle (an arena reset can
	// re-register the tick on an engine whose clock has not advanced)
	// must not classify against a zero-length window.
	h := newHarness(t, noRebalance())
	a := h.alloc(t, "a", 32<<10)
	b := h.alloc(t, "b", 32<<10)
	oa, ob := h.rt.info(a.Base), h.rt.info(b.Base)
	oa.missEWMA, ob.missEWMA = 100, 100
	h.rt.assign(oa, 0)
	h.rt.assign(ob, 0)

	h.rt.rebalance() // first pass: baseline only
	h.rt.rebalance() // same cycle: zero-length window, must be a no-op
	if got := h.rt.Stats(); got.ObjectsMoved != 0 || got.Rebalances != 0 {
		t.Fatalf("zero-length window rebalanced: %+v", got)
	}

	// The same back-to-back shape through a full arena reset chain.
	h.eng.Reset(1)
	h.m.Reset()
	h.sys.Reset()
	h.rt.Reset()
	h.rt.rebalance()
	h.rt.rebalance()
	if got := h.rt.Stats(); got.ObjectsMoved != 0 || got.Rebalances != 0 {
		t.Fatalf("zero-length window after reset rebalanced: %+v", got)
	}

	// balanceLoad itself must refuse a zero elapsed denominator even
	// with non-trivial deltas.
	deltas := make([]perfctr.Counters, h.rt.sys.NumCores())
	deltas[1].IdleCycles = 400_000
	if moved := h.rt.balanceLoad(deltas, 0); moved != 0 {
		t.Fatalf("balanceLoad moved %d over a zero-length window", moved)
	}
}

func TestSpreadMovesHotObjectsOffSaturatedSocket(t *testing.T) {
	opts := noRebalance()
	opts.BWSpread = true
	h := newNUMAHarness(t, opts)
	rt := h.rt
	seedBWSignals(rt)
	rt.mon.dramQ[0] = 0.5 // socket 0 saturated, everyone else at zero

	objs := make([]*objInfo, 4)
	for i := range objs {
		obj := h.alloc(t, string(rune('a'+i)), 32<<10)
		objs[i] = rt.info(obj.Base)
		rt.assign(objs[i], i) // cores 0–3 are all on socket 0
	}
	// Distinct heat: the spread must take the hottest half.
	objs[0].missEWMA, objs[1].missEWMA = 100, 90
	objs[2].missEWMA, objs[3].missEWMA = 5, 4

	moved := rt.spreadSaturated()
	if moved != 2 {
		t.Fatalf("spread moved %d objects, want 2 (half of 4)", moved)
	}
	for i, oi := range objs[:2] {
		if s := rt.chipOf[oi.core]; s != 1 {
			// DRAM-bound: destination is the least-saturated socket,
			// index tie-break — socket 1.
			t.Fatalf("hot object %d spread to socket %d, want 1", i, s)
		}
	}
	for i, oi := range objs[2:] {
		if s := rt.chipOf[oi.core]; s != 0 {
			t.Fatalf("cold object %d moved to socket %d, want to stay on 0", i, s)
		}
	}
	if rt.stats.BWSpreadMoves != 2 {
		t.Fatalf("BWSpreadMoves = %d, want 2", rt.stats.BWSpreadMoves)
	}
}

func TestSpreadPrefersLowHopWhenLinkBound(t *testing.T) {
	// NUMA64 is a 4×2 grid of 8 sockets: from socket 0, socket 1 is one
	// hop and socket 7 is four. Only those two have headroom; socket 7
	// has the lower signal. Link-bound saturation must pick the near
	// socket anyway (the interconnect is the contended resource), while
	// DRAM-bound saturation must pick the least-saturated one.
	for _, tc := range []struct {
		name       string
		dram, link float64
		wantSocket int
	}{
		{"link-bound", 0.05, 0.40, 1},
		{"dram-bound", 0.40, 0.05, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := noRebalance()
			opts.BWSpread = true
			h := newNUMAHarness(t, opts)
			rt := h.rt
			seedBWSignals(rt)
			rt.mon.dramQ[0], rt.mon.linkQ[0] = tc.dram, tc.link
			for s := 1; s < rt.nchips; s++ {
				rt.mon.dramQ[s] = 0.15 // below saturation, above headroom
			}
			rt.mon.dramQ[1] = 0.05
			rt.mon.dramQ[7] = 0.0

			a := rt.info(h.alloc(t, "a", 32<<10).Base)
			b := rt.info(h.alloc(t, "b", 32<<10).Base)
			rt.assign(a, 0)
			rt.assign(b, 1)

			if moved := rt.spreadSaturated(); moved != 1 {
				t.Fatalf("spread moved %d, want 1 (half of 2)", moved)
			}
			movedObj := a
			if b.core >= 8 {
				movedObj = b
			}
			if s := rt.chipOf[movedObj.core]; s != tc.wantSocket {
				t.Fatalf("spread to socket %d, want %d", s, tc.wantSocket)
			}
		})
	}
}

func TestAdmissionRefusesSaturatedSocket(t *testing.T) {
	opts := noRebalance()
	opts.BWAdmission = true
	h := newNUMAHarness(t, opts)
	rt := h.rt
	seedBWSignals(rt)
	rt.mon.dramQ[0] = 0.5

	oi := rt.info(h.alloc(t, "hot", 32<<10).Base)
	oi.missEWMA = 100
	if !rt.place(oi) {
		t.Fatal("placement failed with seven admitting sockets free")
	}
	if s := rt.chipOf[oi.core]; s == 0 {
		t.Fatal("placement admitted onto the saturated socket")
	}

	// Saturate everything: the object must stay unplaced (served from
	// DRAM until queues drain), counted as an admission refusal rather
	// than a capacity rejection.
	for s := range rt.mon.dramQ {
		rt.mon.dramQ[s] = 0.5
	}
	o2 := rt.info(h.alloc(t, "hot2", 32<<10).Base)
	o2.missEWMA = 100
	if rt.place(o2) {
		t.Fatal("placement succeeded with every socket saturated")
	}
	if rt.stats.BWAdmitRefusals == 0 {
		t.Fatal("refusal not counted in BWAdmitRefusals")
	}
}

func TestAdmissionInertBeforeFirstWindow(t *testing.T) {
	// Until the first full window seeds the signals, bandwidth-aware
	// CoreTime must behave exactly like the plain policy.
	opts := noRebalance()
	opts.BWAdmission = true
	opts.BWSpread = true
	h := newNUMAHarness(t, opts)
	if !h.rt.admits(0) {
		t.Fatal("admission active before any signal exists")
	}
	if moved := h.rt.spreadSaturated(); moved != 0 {
		t.Fatalf("spread moved %d objects before any signal exists", moved)
	}
	oi := h.rt.info(h.alloc(t, "hot", 32<<10).Base)
	oi.missEWMA = 100
	if !h.rt.place(oi) {
		t.Fatal("placement refused before any signal exists")
	}
}

func TestUpdateBWSignalsRollsUpAndSmooths(t *testing.T) {
	opts := noRebalance()
	opts.BWQueueEWMAAlpha = 0.5
	h := newNUMAHarness(t, opts)
	rt := h.rt

	deltas := make([]perfctr.Counters, rt.sys.NumCores())
	// Socket 0 (cores 0–7): 1000 busy cycles, 400 DRAM-queue cycles and
	// 100 link-queue cycles → signals 0.4 and 0.1.
	for c := 0; c < 8; c++ {
		deltas[c].BusyCycles = 125
		deltas[c].DRAMQueueCycles = 50
		deltas[c].LinkQueueCycles = 12 // 96 total: 0.096
	}
	rt.updateBWSignals(deltas)
	if !rt.mon.bwInit {
		t.Fatal("first window did not seed the EWMAs")
	}
	if got := rt.mon.dramQ[0]; got != 0.4 {
		t.Fatalf("seed dramQ[0] = %v, want 0.4", got)
	}
	if got := rt.mon.dramQ[1]; got != 0 {
		t.Fatalf("idle socket dramQ[1] = %v, want 0", got)
	}

	// A zero second window halves the smoothed signal at alpha 0.5.
	for c := 0; c < 8; c++ {
		deltas[c].DRAMQueueCycles = 0
		deltas[c].LinkQueueCycles = 0
	}
	rt.updateBWSignals(deltas)
	if got := rt.mon.dramQ[0]; got != 0.2 {
		t.Fatalf("smoothed dramQ[0] = %v, want 0.2", got)
	}
}
