package core

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/trace"
)

func TestRuntimeEmitsTraceEvents(t *testing.T) {
	opts := noRebalance()
	tr := trace.New(1024)
	opts.Tracer = tr
	h := newHarness(t, opts)
	obj := h.alloc(t, "dir0", 128<<10)
	h.sys.Go("warm", 5, func(th *exec.Thread) {
		for i := 0; i < 4; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.sys.Go("visitor", 9, func(th *exec.Thread) {
		th.Compute(3_000_000)
		scanOp(h.rt, th, obj)
	})
	h.eng.Run(0)

	if tr.Count(trace.EvPlace) != 1 {
		t.Fatalf("placements traced = %d, want 1", tr.Count(trace.EvPlace))
	}
	if tr.Count(trace.EvMigrate) == 0 {
		t.Fatal("no migration events traced")
	}
	// The placement event must carry the object's name and core.
	ev := tr.Filter(trace.EvPlace)[0]
	if ev.Name != "dir0" {
		t.Fatalf("place event names %q", ev.Name)
	}
	core, _ := h.rt.Placement(obj.Base)
	if ev.Arg1 != int64(core) {
		t.Fatalf("place event core %d, want %d", ev.Arg1, core)
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if !strings.Contains(sb.String(), "dir0 -> core") {
		t.Fatalf("dump unreadable:\n%s", sb.String())
	}
}

func TestMonitorEmitsUnplaceReason(t *testing.T) {
	opts := DefaultOptions()
	opts.RebalanceInterval = 500_000
	opts.DecayWindow = 0
	opts.UnplaceDRAMFrac = 0.10
	tr := trace.New(4096)
	opts.Tracer = tr
	h := newHarness(t, opts)

	obj := h.alloc(t, "big", 768<<10)
	stream := h.alloc(t, "stream", 6<<20)
	h.sys.Go("scanner", 0, func(th *exec.Thread) {
		for i := 0; i < 40; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	for i := 1; i < 4; i++ {
		h.sys.Go("polluter", i, func(th *exec.Thread) {
			for r := 0; r < 30; r++ {
				th.LoadCompute(stream.Base, int(stream.Size)/4, 0.01)
				th.Yield()
			}
		})
	}
	h.eng.Run(0)

	found := false
	for _, ev := range tr.Filter(trace.EvUnplace) {
		if ev.Arg2 != 0 && ev.Name == "big" {
			found = true
		}
	}
	if !found {
		t.Fatal("no dram-ineffective unplace event traced")
	}
}

func TestNoTracerIsFree(t *testing.T) {
	// Options without a tracer must work (nil Tracer throughout).
	h := newHarness(t, noRebalance())
	obj := h.alloc(t, "dir0", 64<<10)
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 4; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.eng.Run(0) // would panic if Emit were not nil-safe
}
