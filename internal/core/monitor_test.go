package core

import (
	"testing"

	"repro/internal/exec"
)

func TestIneffectivePlacementWithdrawn(t *testing.T) {
	// An object far larger than the caches it is packed into keeps
	// loading from DRAM even when placed; the monitor must withdraw the
	// placement and suppress immediate re-placement.
	opts := DefaultOptions()
	opts.RebalanceInterval = 500_000
	opts.DecayWindow = 0
	opts.UnplaceDRAMFrac = 0.10
	h := newHarness(t, opts)

	// 768 KB object against a ~0.9 MB budget: placeable, but its lines
	// cannot survive in a 512 KB L2 + L3 share while 15 other cores'
	// traffic shares the L3. To force DRAM traffic deterministically we
	// scan it from its own core while 4 other cores stream unrelated
	// data through the same chip's L3.
	obj := h.alloc(t, "big", 768<<10)
	stream := h.alloc(t, "stream", 6<<20)

	h.sys.Go("scanner", 0, func(th *exec.Thread) {
		for i := 0; i < 60; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	for i := 1; i < 4; i++ {
		i := i
		h.sys.Go("polluter", i, func(th *exec.Thread) {
			for r := 0; r < 40; r++ {
				th.LoadCompute(stream.Base, int(stream.Size)/4, 0.01)
				th.Yield()
				_ = i
			}
		})
	}
	h.eng.Run(0)

	// The placement may have been withdrawn and later retried after the
	// cooldown (the workload keeps hammering the object), so assert the
	// withdrawal mechanism fired rather than the final state.
	if h.rt.Stats().Unplacements == 0 {
		t.Fatal("thrashing placement never withdrawn")
	}
	oi := h.rt.info(obj.Base)
	if oi.noPlaceUntil == 0 {
		t.Fatal("no re-placement cooldown recorded")
	}
}

func TestEffectivePlacementKept(t *testing.T) {
	// A small, hot, well-fitting object must never be withdrawn.
	opts := DefaultOptions()
	opts.RebalanceInterval = 500_000
	opts.DecayWindow = 0
	h := newHarness(t, opts)
	obj := h.alloc(t, "small", 64<<10)
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 200; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.eng.Run(0)
	if _, placed := h.rt.Placement(obj.Base); !placed {
		t.Fatal("well-fitting placement was withdrawn")
	}
	if h.rt.Stats().Unplacements != 0 {
		t.Fatalf("spurious unplacements: %d", h.rt.Stats().Unplacements)
	}
}

func TestDisperseMovesThreadOffCongestedCore(t *testing.T) {
	h := newHarness(t, noRebalance())
	obj := h.alloc(t, "hot", 64<<10)
	oi := h.rt.info(obj.Base)
	oi.missEWMA = 100
	h.rt.place(oi)
	placedCore, _ := h.rt.Placement(obj.Base)

	// Several foreign threads operate on the object; when one finishes
	// while others queue, it must leave for an idle core rather than
	// camp on the hot one.
	endCores := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		home := (placedCore + 1 + i) % 16
		h.sys.Go("visitor", home, func(th *exec.Thread) {
			for r := 0; r < 6; r++ {
				scanOp(h.rt, th, obj)
			}
			endCores[i] = th.Core()
		})
	}
	h.eng.Run(0)
	if h.rt.Stats().Disperses == 0 {
		t.Fatal("no dispersal despite queued visitors")
	}
	// Not all threads may end on the hot core.
	onHot := 0
	for _, c := range endCores {
		if c == placedCore {
			onHot++
		}
	}
	if onHot == 4 {
		t.Fatal("all threads camped on the congested core")
	}
}

func TestNoDisperseWhenCoreQuiet(t *testing.T) {
	h := newHarness(t, noRebalance())
	obj := h.alloc(t, "solo", 64<<10)
	oi := h.rt.info(obj.Base)
	oi.missEWMA = 100
	h.rt.place(oi)
	placedCore, _ := h.rt.Placement(obj.Base)
	var end int
	h.sys.Go("visitor", (placedCore+1)%16, func(th *exec.Thread) {
		scanOp(h.rt, th, obj)
		end = th.Core()
	})
	h.eng.Run(0)
	if end != placedCore {
		t.Fatalf("lone visitor dispersed from quiet core to %d", end)
	}
	if h.rt.Stats().Disperses != 0 {
		t.Fatal("dispersal on an uncontended core")
	}
}

func TestMonitorStopsWhenSimulationEnds(t *testing.T) {
	// The Every-based monitor must not keep the event queue alive after
	// the last thread exits (Run(0) would never return).
	opts := DefaultOptions()
	opts.RebalanceInterval = 100_000
	h := newHarness(t, opts)
	h.sys.Go("w", 0, func(th *exec.Thread) { th.Compute(500_000) })
	end := h.eng.Run(0) // must terminate
	if end < 500_000 {
		t.Fatalf("run ended prematurely at %d", end)
	}
}

func TestWindowOpsResetEachPass(t *testing.T) {
	opts := DefaultOptions()
	opts.RebalanceInterval = 200_000
	opts.DecayWindow = 0
	h := newHarness(t, opts)
	obj := h.alloc(t, "o", 64<<10)
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 10; i++ {
			scanOp(h.rt, th, obj)
		}
		// Outlive several monitor passes without touching the object.
		th.Compute(1_000_000)
	})
	h.eng.Run(0)
	if got := h.rt.info(obj.Base).windowOps; got != 0 {
		t.Fatalf("windowOps = %d after idle monitor passes, want 0", got)
	}
}
