package core

import (
	"sort"

	"repro/internal/trace"
)

// This file implements the paper's cache-packing algorithm (§4):
//
//	"CoreTime uses a greedy first fit 'cache packing' algorithm to decide
//	 what core to assign an object to. ... The cache packing algorithm
//	 works by assigning each object that is expensive to fetch to a cache
//	 with free space. The algorithm executes in Θ(n log n) time, where n
//	 is the number of objects."
//
// Two entry points share the fitting logic:
//
//   - place(oi) is the online path taken the first time an object crosses
//     the miss threshold: the object goes to the cache with the most free
//     space, spreading both bytes and the operations that follow them.
//   - PackAll re-runs the full greedy algorithm (sort by descending
//     benefit, then first fit) over every known expensive object; the
//     monitor uses it after bulk unplacements.

// place assigns oi to a cache, honoring clustering and the replacement
// policy. It reports success.
func (rt *Runtime) place(oi *objInfo) bool {
	if oi.placed {
		return true
	}
	size := oi.bytes()
	if size == 0 || size > rt.budget {
		rt.stats.Rejections++
		return false
	}

	// Clustering: if a clustered sibling is already placed, try its core
	// first so co-used objects share a cache (§6.2). Admission still
	// applies: joining a sibling behind a saturated controller deepens
	// exactly the queue admission exists to protect.
	if rt.opts.EnableClustering && oi.cluster != 0 {
		if c, ok := rt.clusterCore(oi.cluster); ok && rt.admits(c) && rt.fits(oi, c) {
			rt.assign(oi, c)
			return true
		}
	}

	if c, ok := rt.coreWithSpace(oi, size); ok {
		rt.assign(oi, c)
		return true
	}

	// No free space anywhere: apply the replacement policy.
	if rt.opts.Replacement == ReplaceFrequency && rt.evictColderThan(oi) {
		if c, ok := rt.coreWithSpace(oi, size); ok {
			rt.assign(oi, c)
			return true
		}
	}
	rt.stats.Rejections++
	return false
}

// coreWithSpace returns the admitting core with the most free budget that
// can hold size bytes for oi's process, or ok=false when none fits. When
// admission filters out every socket the object simply stays unplaced this
// window (served from DRAM, retried once the queues drain) — the refusal
// is counted separately from capacity Rejections.
func (rt *Runtime) coreWithSpace(oi *objInfo, size int64) (int, bool) {
	best, bestFree := -1, int64(-1)
	refused := false
	for c := range rt.coreLoad {
		if !rt.admits(c) {
			refused = true
			continue
		}
		if !rt.fits(oi, c) {
			continue
		}
		free := rt.budget - rt.coreLoad[c]
		if free > bestFree {
			best, bestFree = c, free
		}
	}
	if best < 0 {
		if refused {
			rt.stats.BWAdmitRefusals++
		}
		return 0, false
	}
	return best, true
}

// fits reports whether oi can be added to core without exceeding the core
// budget or oi's process share.
func (rt *Runtime) fits(oi *objInfo, core int) bool {
	size := oi.bytes()
	if rt.coreLoad[core]+size > rt.budget {
		return false
	}
	if rt.procWeights != nil {
		if rt.processLoad(oi.process, core)+size > rt.processBudget(oi.process) {
			return false
		}
	}
	return true
}

// clusterCore returns the core where cluster id is already placed.
func (rt *Runtime) clusterCore(id int) (int, bool) {
	for _, oi := range rt.objs {
		if oi.cluster == id && oi.placed {
			return oi.core, true
		}
	}
	return 0, false
}

// assign records oi → core and updates the load accounting.
func (rt *Runtime) assign(oi *objInfo, core int) {
	oi.placed = true
	oi.core = core
	oi.placedOps = 0
	rt.coreLoad[core] += oi.bytes()
	rt.stats.Placements++
	rt.opts.Tracer.Emit(trace.Event{At: rt.sys.Engine().Now(), Kind: trace.EvPlace,
		Subject: uint64(oi.obj.Base), Name: oi.obj.Name, Arg1: int64(core)})
}

// unplace removes oi from its core (and any replicas).
func (rt *Runtime) unplace(oi *objInfo) { rt.unplaceReason(oi, 0) }

// unplaceReason is unplace with a trace annotation: reason 0 = decay or
// administrative, non-zero = placement judged DRAM-ineffective.
func (rt *Runtime) unplaceReason(oi *objInfo, reason int64) {
	if len(oi.replicas) > 0 {
		rt.collapseReplicas(oi)
	}
	if !oi.placed {
		return
	}
	rt.coreLoad[oi.core] -= oi.bytes()
	oi.placed = false
	rt.stats.Unplacements++
	rt.opts.Tracer.Emit(trace.Event{At: rt.sys.Engine().Now(), Kind: trace.EvUnplace,
		Subject: uint64(oi.obj.Base), Name: oi.obj.Name, Arg1: int64(oi.core), Arg2: reason})
}

// move reassigns a placed object to another core.
func (rt *Runtime) move(oi *objInfo, to int) {
	if !oi.placed || oi.core == to {
		return
	}
	from := oi.core
	rt.coreLoad[from] -= oi.bytes()
	rt.coreLoad[to] += oi.bytes()
	oi.core = to
	rt.stats.ObjectsMoved++
	rt.opts.Tracer.Emit(trace.Event{At: rt.sys.Engine().Now(), Kind: trace.EvMove,
		Subject: uint64(oi.obj.Base), Name: oi.obj.Name, Arg1: int64(from), Arg2: int64(to)})
}

// opRate is the packer's benefit estimate: recent operations weighted by
// how much each one misses. Hotter and missier objects pack first.
func (oi *objInfo) opRate() float64 {
	return float64(oi.windowOps+1) * (oi.missEWMA + 1)
}

// evictColderThan removes the least-beneficial placed object provided it
// is strictly colder than oi (with head-room so two similar objects do not
// thrash). It reports whether anything was evicted.
func (rt *Runtime) evictColderThan(oi *objInfo) bool {
	var victim *objInfo
	for _, cand := range rt.objs {
		if !cand.placed || cand == oi {
			continue
		}
		if victim == nil || cand.opRate() < victim.opRate() {
			victim = cand
		}
	}
	const margin = 2.0 // newcomer must be twice as beneficial
	if victim == nil || victim.opRate()*margin > oi.opRate() {
		return false
	}
	rt.unplace(victim)
	return true
}

// PackAll runs the offline greedy first-fit algorithm over every object
// currently considered expensive: objects are sorted by descending benefit
// (Θ(n log n), as the paper notes) and fitted first-fit onto cores in
// index order. Existing placements are rebuilt from scratch. The monitor
// calls this after decay frees budget; tests call it directly.
func (rt *Runtime) PackAll() {
	var candidates []*objInfo
	for _, oi := range rt.objs {
		if oi.missEWMA > rt.opts.MissThreshold || oi.placed {
			candidates = append(candidates, oi)
		}
	}
	for _, oi := range candidates {
		rt.unplace(oi)
	}
	// Undo the churn accounting: a repack is one logical event, and
	// tests assert on Placements/Unplacements for the online path.
	rt.stats.Unplacements -= uint64(len(candidates))

	sort.Slice(candidates, func(i, j int) bool {
		ri, rj := candidates[i].opRate(), candidates[j].opRate()
		if ri != rj {
			return ri > rj
		}
		// Deterministic tie-break on address.
		return candidates[i].obj.Base < candidates[j].obj.Base
	})

	ncores := len(rt.coreLoad)
	next := 0 // rotate first-fit start so equal-rate objects spread
	for _, oi := range candidates {
		if oi.bytes() > rt.budget {
			rt.stats.Rejections++
			continue
		}
		if rt.opts.EnableClustering && oi.cluster != 0 {
			if c, ok := rt.clusterCore(oi.cluster); ok && rt.fits(oi, c) {
				rt.assign(oi, c)
				rt.stats.Placements--
				continue
			}
		}
		placedAt := -1
		for off := 0; off < ncores; off++ {
			c := (next + off) % ncores
			if rt.fits(oi, c) {
				placedAt = c
				break
			}
		}
		if placedAt < 0 {
			rt.stats.Rejections++
			continue
		}
		rt.assign(oi, placedAt)
		rt.stats.Placements-- // repack is not a new placement
		next = (placedAt + 1) % ncores
	}
}
