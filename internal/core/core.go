// Package core implements CoreTime, the paper's O2 (objects-to-operations)
// scheduler.
//
// CoreTime inverts the traditional scheduling relationship: instead of
// assigning threads to cores and letting hardware caches follow the
// threads, it assigns *objects* to cores' caches and migrates threads to
// the core that caches the object they are about to use. The interface is
// the pair of annotations from the paper's Figure 3:
//
//	rt.Start(t, addr) // ct_start(o): maybe migrate to o's core
//	...operation...
//	rt.End(t)         // ct_end(): maybe migrate back
//
// Between the annotations CoreTime counts the core's cache misses (through
// the simulated event counters, exactly as the real system used AMD event
// counters). Objects whose operations miss heavily are "expensive to
// fetch" and get assigned to a cache by the greedy first-fit cache-packing
// algorithm. A periodic monitor detects overloaded cores and rearranges
// objects (paper §4), which is what lets the oscillating workload of
// Fig. 4b rebalance.
//
// The §6.2 extensions — object clustering, read-only replication,
// frequency-based replacement for oversubscribed working sets, and
// per-process budget fairness — are implemented behind Options flags and
// ablated in the benchmark harness.
package core

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/perfctr"
	"repro/internal/sim"
	"repro/internal/trace"
)

// objInfo is CoreTime's bookkeeping for one object.
type objInfo struct {
	obj *mem.Object

	// missEWMA is the smoothed cache misses per operation, the paper's
	// "expensive to fetch" signal.
	missEWMA float64
	// dramEWMA is the smoothed DRAM loads per operation. A placed object
	// whose operations still load from DRAM is not fitting on chip; the
	// monitor unplaces it (§4: the counters "detect when ... too many
	// objects are assigned to a cache").
	dramEWMA float64
	// cyclesEWMA is the smoothed operation duration, used by the monitor
	// to estimate how much core time an object's operations consume.
	cyclesEWMA float64

	// noPlaceUntil suppresses re-placement after the monitor judged a
	// placement ineffective, breaking unplace/re-place oscillation.
	noPlaceUntil sim.Time

	ops        uint64 // total operations
	readOps    uint64 // operations declared read-only
	windowOps  uint64 // operations since the last monitor pass
	placedOps  uint64 // operations since the current placement
	lastAccess sim.Time

	placed bool
	core   int // valid when placed

	// replicas lists cores holding read-only copies (replication
	// extension). Empty unless replicated; the primary is replicas[0].
	replicas []int

	// cluster groups objects that should share a cache (clustering
	// extension); 0 means unclustered.
	cluster int

	process int // owning process (fairness extension)
}

// bytes returns the cache footprint used for packing.
func (oi *objInfo) bytes() int64 { return int64(oi.obj.Size) }

// opCtx is one in-flight operation on a thread's annotation stack.
type opCtx struct {
	oi      *objInfo
	start   perfctr.Counters
	startAt sim.Time
	core    int // core the operation runs on
	// origin is the core the thread ran on before OpStart migrated it;
	// OpEnd returns there. For a top-level operation that is the home
	// core; for a nested operation it is the outer operation's core.
	origin   int
	migrated bool
}

// Runtime is a CoreTime instance managing one machine.
type Runtime struct {
	sys  *exec.System
	mach *machine.Machine
	opts Options

	objs map[mem.Addr]*objInfo // keyed by object base address

	// coreLoad is the placed bytes per core; budget is the per-core
	// capacity in bytes.
	coreLoad []int64
	budget   int64

	// chipOf is the core→socket lookup table (topology.Config.ChipTable)
	// the bandwidth-aware monitor rolls counters up with; nchips is the
	// socket count.
	chipOf []int
	nchips int

	// ops in flight, keyed by thread id (engine is single-threaded, so a
	// plain map is safe).
	inflight map[int][]*opCtx

	// process weights for the fairness extension; nil means unweighted.
	procWeights map[int]float64

	clusterSeq int
	mon        monitorState

	// ctxPool recycles opCtx records: one is needed per in-flight
	// operation, and the annotation path runs once per simulated
	// operation. oiPool recycles objInfo records across Reset, which
	// re-learns every object.
	ctxPool []*opCtx
	oiPool  []*objInfo

	stats Stats
}

// getCtx returns a zeroed opCtx, reusing a pooled one when available.
func (rt *Runtime) getCtx() *opCtx {
	if n := len(rt.ctxPool); n > 0 {
		ctx := rt.ctxPool[n-1]
		rt.ctxPool[n-1] = nil
		rt.ctxPool = rt.ctxPool[:n-1]
		*ctx = opCtx{}
		return ctx
	}
	return &opCtx{}
}

func (rt *Runtime) putCtx(ctx *opCtx) {
	rt.ctxPool = append(rt.ctxPool, ctx)
}

// Stats counts runtime-level events for reports and tests.
type Stats struct {
	Ops             uint64 // operations seen
	Migrations      uint64 // operations that required migration
	Placements      uint64 // objects assigned to a cache
	Unplacements    uint64 // objects removed from a cache
	Rebalances      uint64 // monitor passes that moved at least one object
	ObjectsMoved    uint64 // objects moved by the monitor
	Replications    uint64 // replica sets created
	ReplicaCollapse uint64 // replica sets collapsed by writes
	Rejections      uint64 // placement attempts that found no space
	Disperses       uint64 // threads moved off congested cores after ops
	BWSpreadMoves   uint64 // objects moved off saturated sockets (BWSpread)
	BWAdmitRefusals uint64 // placements refused by saturated-socket admission
}

// New creates a CoreTime runtime bound to sys. If opts.RebalanceInterval
// is non-zero the monitor starts immediately on sys's engine.
func New(sys *exec.System, opts Options) *Runtime {
	cfg := sys.Machine().Config()
	rt := &Runtime{
		sys:      sys,
		mach:     sys.Machine(),
		opts:     opts,
		objs:     make(map[mem.Addr]*objInfo),
		coreLoad: make([]int64, cfg.NumCores()),
		budget:   int64(float64(cfg.PerCoreBudgetBytes()) * opts.BudgetFraction),
		chipOf:   cfg.ChipTable(),
		nchips:   cfg.Chips,
		inflight: make(map[int][]*opCtx),
	}
	rt.startMonitor()
	return rt
}

// startMonitor registers the rebalance tick when the options ask for one.
func (rt *Runtime) startMonitor() {
	if rt.opts.RebalanceInterval <= 0 {
		return
	}
	eng := rt.sys.Engine()
	eng.Every(rt.opts.RebalanceInterval, func() bool {
		rt.rebalance()
		// Keep ticking only while simulated threads are alive; otherwise
		// the monitor would hold the event queue open forever.
		return eng.Live() > 0
	})
}

// Reset returns the runtime to its post-New state on the same system,
// keeping its allocated pools and scratch so an arena-reused sweep repeat
// rebuilds no scheduler bookkeeping. The caller must have Reset the
// engine, system, and machine first (the monitor tick is re-registered on
// the reset engine); everything observable — placements, in-flight
// operations, process weights, stats — matches a freshly built Runtime.
func (rt *Runtime) Reset() {
	for k, oi := range rt.objs {
		*oi = objInfo{}
		rt.oiPool = append(rt.oiPool, oi)
		delete(rt.objs, k)
	}
	for i := range rt.coreLoad {
		rt.coreLoad[i] = 0
	}
	clear(rt.inflight)
	rt.procWeights = nil
	rt.clusterSeq = 0
	// Empty (not zero) the monitor's snapshot history: the first pass
	// after Reset must re-baseline exactly like a fresh runtime's first
	// pass instead of computing deltas against zeroed counters. The
	// bandwidth signals and window timestamp re-learn from blank state the
	// same way.
	rt.mon.last = rt.mon.last[:0]
	rt.mon.lastAt = 0
	rt.mon.bwInit = false
	for i := range rt.mon.dramQ {
		rt.mon.dramQ[i] = 0
		rt.mon.linkQ[i] = 0
	}
	rt.stats = Stats{}
	rt.startMonitor()
}

// Name implements sched.Annotator.
func (rt *Runtime) Name() string { return "coretime" }

// Stats returns a copy of the runtime counters.
func (rt *Runtime) Stats() Stats { return rt.stats }

// FillTelemetry fills the telemetry sampler's per-sample scheduler view:
// placed[i] becomes the number of objects currently placed on core i, and
// dram/link receive the monitor's smoothed per-socket bandwidth signals
// (zero until the first monitor window computes them). Slice lengths are
// the caller's; extra entries are left zeroed, so a sampler built for a
// different view cannot index out of range.
//
//o2:hotpath
func (rt *Runtime) FillTelemetry(placed []int32, dram, link []float64) {
	for i := range placed {
		placed[i] = 0
	}
	for _, oi := range rt.objs {
		if oi.placed && oi.core < len(placed) {
			placed[oi.core]++
		}
	}
	for s := 0; s < len(dram) && s < len(link) && s < len(rt.mon.dramQ); s++ {
		dram[s] = rt.mon.dramQ[s]
		link[s] = rt.mon.linkQ[s]
	}
}

// Budget returns the per-core packing budget in bytes.
func (rt *Runtime) Budget() int64 { return rt.budget }

// CoreLoad returns the bytes currently packed into core's budget.
func (rt *Runtime) CoreLoad(core int) int64 { return rt.coreLoad[core] }

// info returns (creating if needed) the bookkeeping for the object at
// addr. Unregistered addresses return nil: CoreTime can only schedule
// objects whose extent it knows (paper §3: the scheduler must "find sizes
// of objects").
func (rt *Runtime) info(addr mem.Addr) *objInfo {
	obj := rt.mach.Image().ObjectAt(addr)
	if obj == nil {
		return nil
	}
	oi := rt.objs[obj.Base]
	if oi == nil {
		if n := len(rt.oiPool); n > 0 {
			oi = rt.oiPool[n-1]
			rt.oiPool[n-1] = nil
			rt.oiPool = rt.oiPool[:n-1]
		} else {
			oi = new(objInfo)
		}
		oi.obj = obj
		rt.objs[obj.Base] = oi
	}
	return oi
}

// OpStart implements sched.Annotator: the paper's ct_start.
func (rt *Runtime) OpStart(t *exec.Thread, addr mem.Addr) { rt.start(t, addr, false) }

// OpStartReadOnly implements sched.ReadOnlyAnnotator: ct_start with a
// promise the operation will not write the object.
func (rt *Runtime) OpStartReadOnly(t *exec.Thread, addr mem.Addr) { rt.start(t, addr, true) }

func (rt *Runtime) start(t *exec.Thread, addr mem.Addr, readOnly bool) {
	rt.stats.Ops++
	oi := rt.info(addr)
	ctx := rt.getCtx()
	ctx.startAt, ctx.core, ctx.origin = t.Now(), t.Core(), t.Core()
	if oi != nil {
		ctx.oi = oi
		oi.process = t.Process()
		if !readOnly && len(oi.replicas) > 0 {
			rt.collapseReplicas(oi)
		}
		if target, ok := rt.targetCore(t, oi); ok && target != t.Core() {
			from := t.Core()
			t.MigrateTo(target)
			ctx.migrated = true
			rt.stats.Migrations++
			rt.opts.Tracer.Emit(trace.Event{At: t.Now(), Kind: trace.EvMigrate,
				Subject: uint64(t.ID()), Name: t.Name(), Arg1: int64(from), Arg2: int64(target)})
		}
		ctx.core = t.Core()
	}
	// Snapshot the event counters of the core the operation runs on —
	// after any migration, matching the paper's "counts the number of
	// cache misses that occur between a pair of CoreTime annotations".
	ctx.start = rt.mach.Counters().Snapshot(t.Core())
	rt.inflight[t.ID()] = append(rt.inflight[t.ID()], ctx)
	if oi != nil && readOnly {
		oi.readOps++
	}
}

// occupancy counts the threads running on or queued for core.
func (rt *Runtime) occupancy(core int) int {
	c := rt.sys.Core(core)
	n := c.QueueLen()
	if c.Holder() != nil {
		n++
	}
	return n
}

// targetCore returns the core an operation on oi should run on.
func (rt *Runtime) targetCore(t *exec.Thread, oi *objInfo) (int, bool) {
	if len(oi.replicas) > 0 {
		// Replicated: if the thread's own chip holds a replica, run
		// locally — the chip's cores share the replica through their
		// caches, which is the whole point of replicating instead of
		// funneling operations to one core. Otherwise migrate to the
		// least-occupied replica core.
		myChip := rt.mach.ChipOf(t.Core())
		for _, c := range oi.replicas {
			if rt.mach.ChipOf(c) == myChip {
				return 0, false // chip-local: no migration
			}
		}
		best := oi.replicas[0]
		bestOcc := 1 << 30
		for _, c := range oi.replicas {
			if occ := rt.occupancy(c); occ < bestOcc {
				best, bestOcc = c, occ
			}
		}
		return best, true
	}
	if oi.placed {
		return oi.core, true
	}
	return 0, false
}

// OpEnd implements sched.Annotator: the paper's ct_end.
func (rt *Runtime) OpEnd(t *exec.Thread) {
	stack := rt.inflight[t.ID()]
	if len(stack) == 0 {
		panic(fmt.Sprintf("core: OpEnd on thread %q with no operation in flight", t.Name()))
	}
	ctx := stack[len(stack)-1]
	stack[len(stack)-1] = nil
	rt.inflight[t.ID()] = stack[:len(stack)-1]
	nested := len(stack) > 1

	if oi := ctx.oi; oi != nil {
		delta := rt.mach.Counters().Snapshot(ctx.core).Sub(ctx.start)
		misses := float64(delta.Misses())
		dram := float64(delta.DRAMLoads)
		dur := float64(t.Now() - ctx.startAt)
		a := rt.opts.MissEWMAAlpha
		if oi.ops == 0 {
			oi.missEWMA = misses
			oi.dramEWMA = dram
			oi.cyclesEWMA = dur
		} else {
			oi.missEWMA = a*misses + (1-a)*oi.missEWMA
			oi.dramEWMA = a*dram + (1-a)*oi.dramEWMA
			oi.cyclesEWMA = a*dur + (1-a)*oi.cyclesEWMA
		}
		oi.ops++
		oi.windowOps++
		if oi.placed {
			oi.placedOps++
		}
		oi.lastAccess = t.Now()

		if !oi.placed && oi.missEWMA > rt.opts.MissThreshold && t.Now() >= oi.noPlaceUntil {
			rt.place(oi)
		}
		rt.maybeReplicate(oi)
	}
	migrated, origin := ctx.migrated, ctx.origin
	rt.putCtx(ctx) // all fields consumed; recycle before any migration
	if migrated && (nested || rt.opts.ReturnToOrigin) {
		// A nested operation must resume on the enclosing operation's
		// core; a top-level operation returns only when configured —
		// by default the thread is simply "ready to run on another
		// core" (paper §4) and continues from where the object lives.
		t.MigrateTo(origin)
		return
	}
	if migrated && !nested {
		rt.disperse(t)
	}
}

// disperse moves a foreign thread off a congested core onto an idle one
// after its operation completes. This implements the balance half of the
// paper's challenge ("It should not ... leave some cores idle while others
// are saturated", §3): without it, roaming threads accumulate wherever hot
// objects live and serialize while the rest of the machine idles.
func (rt *Runtime) disperse(t *exec.Thread) {
	cur := t.Core()
	if rt.sys.Core(cur).QueueLen() == 0 {
		return // nobody is waiting for this core
	}
	myChip := rt.mach.ChipOf(cur)
	best, bestDist := -1, 1<<30
	for c := 0; c < rt.sys.NumCores(); c++ {
		if c == cur || rt.occupancy(c) != 0 {
			continue
		}
		d := rt.mach.HopDist(myChip, rt.mach.ChipOf(c))
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	if best >= 0 {
		t.MigrateTo(best)
		rt.stats.Disperses++
		rt.opts.Tracer.Emit(trace.Event{At: t.Now(), Kind: trace.EvDisperse,
			Subject: uint64(t.ID()), Name: t.Name(), Arg1: int64(cur), Arg2: int64(best)})
	}
}

// PlaceTogether marks the given objects as a cluster: the packer will try
// to keep them in the same cache (§6.2, "object clustering"). It is a
// hint; clustering only applies when Options.EnableClustering is set.
func (rt *Runtime) PlaceTogether(addrs ...mem.Addr) {
	rt.clusterSeq++
	id := rt.clusterSeq
	for _, a := range addrs {
		if oi := rt.info(a); oi != nil {
			oi.cluster = id
		}
	}
}

// SetProcessWeight assigns a fairness weight to a process (§6.2, "the O2
// scheduler could implement priorities and fairness"). An unset process
// has weight 1. Weights partition each core's budget proportionally.
func (rt *Runtime) SetProcessWeight(pid int, w float64) {
	if rt.procWeights == nil {
		rt.procWeights = make(map[int]float64)
	}
	rt.procWeights[pid] = w
}

// processBudget returns the per-core byte budget available to pid.
func (rt *Runtime) processBudget(pid int) int64 {
	if rt.procWeights == nil {
		return rt.budget
	}
	var total float64
	for _, w := range rt.procWeights {
		total += w
	}
	w, ok := rt.procWeights[pid]
	if !ok || total == 0 {
		return rt.budget
	}
	return int64(float64(rt.budget) * w / total)
}

// processLoad returns the bytes pid has placed on core.
func (rt *Runtime) processLoad(pid, core int) int64 {
	var n int64
	for _, oi := range rt.objs {
		if oi.placed && oi.core == core && oi.process == pid {
			n += oi.bytes()
		}
	}
	return n
}

// Placement reports where the object at addr is assigned: the core and
// whether it is placed at all. Replicated objects report their primary.
func (rt *Runtime) Placement(addr mem.Addr) (core int, placed bool) {
	obj := rt.mach.Image().ObjectAt(addr)
	if obj == nil {
		return 0, false
	}
	oi := rt.objs[obj.Base]
	if oi == nil {
		return 0, false
	}
	if len(oi.replicas) > 0 {
		return oi.replicas[0], true
	}
	return oi.core, oi.placed
}

// Replicas returns the cores holding replicas of the object at addr, or
// nil when it is not replicated.
func (rt *Runtime) Replicas(addr mem.Addr) []int {
	obj := rt.mach.Image().ObjectAt(addr)
	if obj == nil {
		return nil
	}
	oi := rt.objs[obj.Base]
	if oi == nil || len(oi.replicas) == 0 {
		return nil
	}
	out := make([]int, len(oi.replicas))
	copy(out, oi.replicas)
	return out
}

// PlacedObjects returns the placed objects per core (for the Fig. 2
// cache-contents tool), sorted by object base address within each core.
func (rt *Runtime) PlacedObjects() [][]*mem.Object {
	out := make([][]*mem.Object, rt.mach.Config().NumCores())
	for _, oi := range rt.objs {
		if oi.placed {
			out[oi.core] = append(out[oi.core], oi.obj)
		}
		for i, c := range oi.replicas {
			if i == 0 && oi.placed {
				continue
			}
			out[c] = append(out[c], oi.obj)
		}
	}
	for i := range out {
		sort.Slice(out[i], func(a, b int) bool { return out[i][a].Base < out[i][b].Base })
	}
	return out
}
