package core

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// harness bundles the pieces most tests need.
type harness struct {
	eng *sim.Engine
	m   *machine.Machine
	sys *exec.System
	rt  *Runtime
}

func newHarness(t testing.TB, opts Options) *harness {
	t.Helper()
	eng := sim.NewEngine()
	m, err := machine.New(topology.AMD16(), 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	sys := exec.NewSystem(eng, m, exec.DefaultOptions())
	return &harness{eng: eng, m: m, sys: sys, rt: New(sys, opts)}
}

func noRebalance() Options {
	o := DefaultOptions()
	o.RebalanceInterval = 0
	o.DecayWindow = 0
	return o
}

// alloc registers an object of size bytes.
func (h *harness) alloc(t testing.TB, name string, size uint64) *mem.Object {
	t.Helper()
	obj, err := h.m.Image().AllocObject(name, size)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// scanOp runs one annotated operation scanning the whole object.
func scanOp(rt *Runtime, th *exec.Thread, obj *mem.Object) {
	rt.OpStart(th, obj.Base)
	th.LoadCompute(obj.Base, int(obj.Size), 0.05)
	rt.OpEnd(th)
}

var _ sched.Annotator = (*Runtime)(nil)
var _ sched.ReadOnlyAnnotator = (*Runtime)(nil)

func TestExpensiveObjectGetsPlaced(t *testing.T) {
	h := newHarness(t, noRebalance())
	// 128 KB object: scanning it cold misses heavily.
	obj := h.alloc(t, "dir0", 128<<10)
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 3; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.eng.Run(0)
	if _, placed := h.rt.Placement(obj.Base); !placed {
		t.Fatal("heavily-missing object was never placed")
	}
	if h.rt.Stats().Placements != 1 {
		t.Fatalf("Placements = %d, want 1", h.rt.Stats().Placements)
	}
}

func TestCheapObjectStaysUnplaced(t *testing.T) {
	h := newHarness(t, noRebalance())
	// One line: after the first touch it always hits L1. The paper:
	// "otherwise, CoreTime will do nothing and the shared-memory
	// hardware will manage the object."
	obj := h.alloc(t, "tiny", 64)
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 50; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.eng.Run(0)
	if _, placed := h.rt.Placement(obj.Base); placed {
		t.Fatal("L1-resident object should never be placed")
	}
}

func TestOperationsMigrateToPlacedObject(t *testing.T) {
	opts := noRebalance()
	opts.ReturnToOrigin = true
	h := newHarness(t, opts)
	obj := h.alloc(t, "dir0", 128<<10)
	var opCores []int
	// Thread on core 5 warms the object until placement, then another
	// thread on core 9 operates on it and must migrate.
	h.sys.Go("warm", 5, func(th *exec.Thread) {
		for i := 0; i < 4; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.sys.Go("visitor", 9, func(th *exec.Thread) {
		th.Compute(3_000_000) // wait until placed
		h.rt.OpStart(th, obj.Base)
		opCores = append(opCores, th.Core())
		th.LoadCompute(obj.Base, int(obj.Size), 0.05)
		h.rt.OpEnd(th)
		opCores = append(opCores, th.Core())
	})
	h.eng.Run(0)
	placedCore, placed := h.rt.Placement(obj.Base)
	if !placed {
		t.Fatal("object not placed")
	}
	if len(opCores) != 2 {
		t.Fatalf("opCores = %v", opCores)
	}
	if opCores[0] != placedCore {
		t.Fatalf("operation ran on core %d, object placed on %d", opCores[0], placedCore)
	}
	if opCores[1] != 9 {
		t.Fatalf("thread ended on core %d, want home 9 (ReturnToOrigin)", opCores[1])
	}
	if h.rt.Stats().Migrations == 0 {
		t.Fatal("migration not counted")
	}
}

func TestThreadRoamsByDefault(t *testing.T) {
	// Default policy: after ct_end the thread stays on the object's
	// core ("ready to run on another core", §4) instead of migrating
	// back, so consecutive operations hop object-to-object.
	h := newHarness(t, noRebalance())
	obj := h.alloc(t, "dir0", 128<<10)
	var endCore int
	h.sys.Go("warm", 5, func(th *exec.Thread) {
		for i := 0; i < 4; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.sys.Go("visitor", 9, func(th *exec.Thread) {
		th.Compute(3_000_000)
		scanOp(h.rt, th, obj)
		endCore = th.Core()
	})
	h.eng.Run(0)
	placedCore, placed := h.rt.Placement(obj.Base)
	if !placed {
		t.Fatal("object not placed")
	}
	if endCore != placedCore {
		t.Fatalf("thread ended on core %d, want to remain on object core %d", endCore, placedCore)
	}
}

func TestNestedOperationReturnsToOuterCore(t *testing.T) {
	// Even without ReturnToOrigin, an inner operation must resume on
	// the enclosing operation's core so the outer operation's locality
	// and counter attribution survive.
	h := newHarness(t, noRebalance())
	outer := h.alloc(t, "outer", 128<<10)
	inner := h.alloc(t, "inner", 128<<10)
	oiOuter := h.rt.info(outer.Base)
	oiOuter.missEWMA = 100
	h.rt.place(oiOuter)
	oiInner := h.rt.info(inner.Base)
	oiInner.missEWMA = 100
	h.rt.place(oiInner)
	outerCore, _ := h.rt.Placement(outer.Base)
	innerCore, _ := h.rt.Placement(inner.Base)
	if outerCore == innerCore {
		t.Fatalf("setup: objects must be on distinct cores")
	}
	var afterInner int
	h.sys.Go("w", 3, func(th *exec.Thread) {
		h.rt.OpStart(th, outer.Base)
		h.rt.OpStart(th, inner.Base)
		th.LoadCompute(inner.Base, 4096, 0.05)
		h.rt.OpEnd(th)
		afterInner = th.Core()
		h.rt.OpEnd(th)
	})
	h.eng.Run(0)
	if afterInner != outerCore {
		t.Fatalf("after inner OpEnd thread on core %d, want outer's core %d", afterInner, outerCore)
	}
}

func TestLocalOperationDoesNotMigrate(t *testing.T) {
	h := newHarness(t, noRebalance())
	obj := h.alloc(t, "dir0", 128<<10)
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 4; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.eng.Run(0)
	core, placed := h.rt.Placement(obj.Base)
	if !placed {
		t.Fatal("not placed")
	}
	migBefore := h.rt.Stats().Migrations
	h.sys.Go("local", core, func(th *exec.Thread) {
		scanOp(h.rt, th, obj)
	})
	h.eng.Run(0)
	if h.rt.Stats().Migrations != migBefore {
		t.Fatal("operation on the object's own core must not migrate")
	}
}

func TestUnregisteredAddressIsHarmless(t *testing.T) {
	h := newHarness(t, noRebalance())
	a, err := h.m.Image().Alloc(4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	h.sys.Go("w", 0, func(th *exec.Thread) {
		h.rt.OpStart(th, a) // not a registered object
		th.Load(a, 4096)
		h.rt.OpEnd(th)
	})
	h.eng.Run(0)
	if h.rt.Stats().Ops != 1 {
		t.Fatalf("Ops = %d, want 1", h.rt.Stats().Ops)
	}
	if h.rt.Stats().Placements != 0 {
		t.Fatal("unregistered address must not be placed")
	}
}

func TestNestedOperations(t *testing.T) {
	h := newHarness(t, noRebalance())
	outer := h.alloc(t, "outer", 64<<10)
	inner := h.alloc(t, "inner", 64<<10)
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 4; i++ {
			h.rt.OpStart(th, outer.Base)
			th.LoadCompute(outer.Base, int(outer.Size), 0.05)
			h.rt.OpStart(th, inner.Base)
			th.LoadCompute(inner.Base, int(inner.Size), 0.05)
			h.rt.OpEnd(th)
			h.rt.OpEnd(th)
		}
	})
	h.eng.Run(0)
	if h.rt.Stats().Ops != 8 {
		t.Fatalf("Ops = %d, want 8", h.rt.Stats().Ops)
	}
}

func TestOpEndWithoutStartPanics(t *testing.T) {
	h := newHarness(t, noRebalance())
	panicked := false
	h.sys.Go("bad", 0, func(th *exec.Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		h.rt.OpEnd(th)
	})
	h.eng.Run(0)
	if !panicked {
		t.Fatal("unbalanced OpEnd did not panic")
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	h := newHarness(t, noRebalance())
	// Allocate far more hot objects than fit: budget per core is
	// ~0.9 MB; 64 × 512 KB = 32 MB > 16 cores × 0.9 MB.
	objs := make([]*mem.Object, 64)
	for i := range objs {
		objs[i] = h.alloc(t, "obj", 512<<10)
	}
	for i := 0; i < 16; i++ {
		i := i
		h.sys.Go("w", i, func(th *exec.Thread) {
			for r := 0; r < 3; r++ {
				for j := i; j < len(objs); j += 16 {
					scanOp(h.rt, th, objs[j])
				}
			}
		})
	}
	h.eng.Run(0)
	for c := 0; c < 16; c++ {
		if h.rt.CoreLoad(c) > h.rt.Budget() {
			t.Fatalf("core %d load %d exceeds budget %d", c, h.rt.CoreLoad(c), h.rt.Budget())
		}
	}
	if h.rt.Stats().Rejections == 0 {
		t.Fatal("oversubscription should cause placement rejections")
	}
}

func TestObjectLargerThanBudgetRejected(t *testing.T) {
	h := newHarness(t, noRebalance())
	obj := h.alloc(t, "huge", 4<<20) // > 0.9 MB budget
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 3; i++ {
			scanOp(h.rt, th, obj)
		}
	})
	h.eng.Run(0)
	if _, placed := h.rt.Placement(obj.Base); placed {
		t.Fatal("object larger than any cache budget was placed")
	}
}

func TestPlacementSpreadsAcrossCores(t *testing.T) {
	h := newHarness(t, noRebalance())
	objs := make([]*mem.Object, 8)
	for i := range objs {
		objs[i] = h.alloc(t, "dir", 256<<10)
	}
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for r := 0; r < 3; r++ {
			for _, o := range objs {
				scanOp(h.rt, th, o)
			}
		}
	})
	h.eng.Run(0)
	cores := map[int]int{}
	for _, o := range objs {
		c, placed := h.rt.Placement(o.Base)
		if !placed {
			t.Fatalf("object %v not placed", o.Name)
		}
		cores[c]++
	}
	// 8 × 256 KB objects against a ~0.9 MB budget: at most 3 per core,
	// so at least 3 distinct cores must be used.
	if len(cores) < 3 {
		t.Fatalf("placement used only %d cores: %v", len(cores), cores)
	}
}

func TestDecayUnplacesStaleObjects(t *testing.T) {
	opts := DefaultOptions()
	opts.RebalanceInterval = 1_000_000
	opts.DecayWindow = 2_000_000
	h := newHarness(t, opts)
	obj := h.alloc(t, "dir0", 128<<10)
	h.sys.Go("w", 0, func(th *exec.Thread) {
		for i := 0; i < 4; i++ {
			scanOp(h.rt, th, obj)
		}
		// Then go quiet far longer than the decay window.
		th.Compute(10_000_000)
	})
	h.eng.Run(0)
	if _, placed := h.rt.Placement(obj.Base); placed {
		t.Fatal("stale object still placed after decay window")
	}
	if h.rt.Stats().Unplacements == 0 {
		t.Fatal("unplacement not counted")
	}
}

func TestMonitorRebalancesOverloadedCore(t *testing.T) {
	opts := DefaultOptions()
	opts.RebalanceInterval = 500_000
	opts.DecayWindow = 0
	h := newHarness(t, opts)

	// Two hot objects force-placed on the same core. 4 threads hammer
	// both: core 2 saturates while the rest of the machine idles; the
	// monitor must split the objects.
	a := h.alloc(t, "a", 128<<10)
	b := h.alloc(t, "b", 128<<10)
	h.rt.place(h.rt.info(a.Base))
	h.rt.info(a.Base).missEWMA = 100
	oiA := h.rt.info(a.Base)
	h.rt.move(oiA, 2)
	oiB := h.rt.info(b.Base)
	oiB.missEWMA = 100
	h.rt.place(oiB)
	h.rt.move(oiB, 2)

	for i := 0; i < 4; i++ {
		i := i
		h.sys.Go("w", 4+i, func(th *exec.Thread) {
			for r := 0; r < 60; r++ {
				o := a
				if (r+i)%2 == 0 {
					o = b
				}
				scanOp(h.rt, th, o)
			}
		})
	}
	h.eng.Run(0)
	ca, _ := h.rt.Placement(a.Base)
	cb, _ := h.rt.Placement(b.Base)
	if ca == cb {
		t.Fatalf("monitor left both hot objects on core %d", ca)
	}
	if h.rt.Stats().ObjectsMoved == 0 {
		t.Fatal("no objects moved")
	}
}

func TestPackAllSortsAndSpreads(t *testing.T) {
	h := newHarness(t, noRebalance())
	objs := make([]*objInfo, 6)
	for i := range objs {
		o := h.alloc(t, "o", 256<<10)
		oi := h.rt.info(o.Base)
		oi.missEWMA = float64(100 * (i + 1))
		oi.windowOps = uint64(i)
		objs[i] = oi
	}
	h.rt.PackAll()
	for i, oi := range objs {
		if !oi.placed {
			t.Fatalf("object %d not packed", i)
		}
	}
	for c := 0; c < 16; c++ {
		if h.rt.CoreLoad(c) > h.rt.Budget() {
			t.Fatalf("core %d over budget after PackAll", c)
		}
	}
}

func TestFrequencyReplacementEvictsColdObject(t *testing.T) {
	opts := noRebalance()
	opts.Replacement = ReplaceFrequency
	h := newHarness(t, opts)

	// Fill every core's budget with cold objects.
	nCold := 16 * 2 // 2 × 448KB per core ≈ 0.875 MB ≈ budget
	cold := make([]*objInfo, nCold)
	for i := range cold {
		o := h.alloc(t, "cold", 448<<10)
		oi := h.rt.info(o.Base)
		oi.missEWMA = 50
		cold[i] = oi
		if !h.rt.place(oi) {
			t.Fatalf("setup: cold object %d did not place", i)
		}
	}
	// A hot object arrives with far higher benefit.
	hot := h.alloc(t, "hot", 448<<10)
	oiHot := h.rt.info(hot.Base)
	oiHot.missEWMA = 5000
	oiHot.windowOps = 1000
	if !h.rt.place(oiHot) {
		t.Fatal("frequency policy failed to make room for hot object")
	}
	evicted := 0
	for _, oi := range cold {
		if !oi.placed {
			evicted++
		}
	}
	if evicted != 1 {
		t.Fatalf("evicted %d cold objects, want exactly 1", evicted)
	}
}

func TestFirstFitPolicyDoesNotEvict(t *testing.T) {
	h := newHarness(t, noRebalance()) // ReplaceNone
	nCold := 16 * 2
	for i := 0; i < nCold; i++ {
		o := h.alloc(t, "cold", 448<<10)
		oi := h.rt.info(o.Base)
		oi.missEWMA = 50
		h.rt.place(oi)
	}
	hot := h.alloc(t, "hot", 448<<10)
	oiHot := h.rt.info(hot.Base)
	oiHot.missEWMA = 5000
	if h.rt.place(oiHot) {
		t.Fatal("first-fit policy must not evict to make room")
	}
}

func TestClusteringPlacesTogether(t *testing.T) {
	opts := noRebalance()
	opts.EnableClustering = true
	h := newHarness(t, opts)
	a := h.alloc(t, "a", 64<<10)
	b := h.alloc(t, "b", 64<<10)
	h.rt.PlaceTogether(a.Base, b.Base)
	oiA, oiB := h.rt.info(a.Base), h.rt.info(b.Base)
	oiA.missEWMA, oiB.missEWMA = 100, 100
	h.rt.place(oiA)
	h.rt.place(oiB)
	ca, _ := h.rt.Placement(a.Base)
	cb, _ := h.rt.Placement(b.Base)
	if ca != cb {
		t.Fatalf("clustered objects on cores %d and %d, want same", ca, cb)
	}
}

func TestClusteringOffSpreads(t *testing.T) {
	h := newHarness(t, noRebalance()) // clustering disabled
	a := h.alloc(t, "a", 64<<10)
	b := h.alloc(t, "b", 64<<10)
	h.rt.PlaceTogether(a.Base, b.Base) // hint present but feature off
	oiA, oiB := h.rt.info(a.Base), h.rt.info(b.Base)
	oiA.missEWMA, oiB.missEWMA = 100, 100
	h.rt.place(oiA)
	h.rt.place(oiB)
	ca, _ := h.rt.Placement(a.Base)
	cb, _ := h.rt.Placement(b.Base)
	if ca == cb {
		t.Fatal("with clustering disabled, most-free-space placement should spread")
	}
}

func TestReplicationOfHotReadOnlyObject(t *testing.T) {
	opts := noRebalance()
	opts.EnableReplication = true
	opts.ReplicateMinOps = 16
	h := newHarness(t, opts)
	obj := h.alloc(t, "hot", 64<<10)
	for i := 0; i < 8; i++ {
		h.sys.Go("r", i*2, func(th *exec.Thread) {
			for r := 0; r < 10; r++ {
				h.rt.OpStartReadOnly(th, obj.Base)
				th.LoadCompute(obj.Base, int(obj.Size), 0.05)
				h.rt.OpEnd(th)
			}
		})
	}
	h.eng.Run(0)
	reps := h.rt.Replicas(obj.Base)
	if len(reps) != 4 {
		t.Fatalf("replicas = %v, want one per chip (4)", reps)
	}
	chips := map[int]bool{}
	cfg := h.m.Config()
	for _, c := range reps {
		chips[cfg.ChipOf(c)] = true
	}
	if len(chips) != 4 {
		t.Fatalf("replicas not spread across chips: %v", reps)
	}
}

func TestWriteCollapsesReplicas(t *testing.T) {
	opts := noRebalance()
	opts.EnableReplication = true
	opts.ReplicateMinOps = 16
	h := newHarness(t, opts)
	obj := h.alloc(t, "hot", 64<<10)
	h.sys.Go("r", 0, func(th *exec.Thread) {
		for r := 0; r < 40; r++ {
			h.rt.OpStartReadOnly(th, obj.Base)
			th.LoadCompute(obj.Base, int(obj.Size), 0.05)
			h.rt.OpEnd(th)
		}
		if len(h.rt.Replicas(obj.Base)) == 0 {
			t.Error("setup: object never replicated")
		}
		// A write-capable operation must collapse the replicas.
		h.rt.OpStart(th, obj.Base)
		th.Store(obj.Base, 64)
		h.rt.OpEnd(th)
	})
	h.eng.Run(0)
	if reps := h.rt.Replicas(obj.Base); reps != nil {
		t.Fatalf("replicas survived a write: %v", reps)
	}
	if h.rt.Stats().ReplicaCollapse != 1 {
		t.Fatalf("ReplicaCollapse = %d, want 1", h.rt.Stats().ReplicaCollapse)
	}
	// Budget accounting must be restored to a single copy.
	var total int64
	for c := 0; c < 16; c++ {
		total += h.rt.CoreLoad(c)
	}
	if total != int64(obj.Size) {
		t.Fatalf("total load %d, want %d (one copy)", total, obj.Size)
	}
}

func TestProcessBudgetFairness(t *testing.T) {
	opts := noRebalance()
	h := newHarness(t, opts)
	h.rt.SetProcessWeight(1, 3)
	h.rt.SetProcessWeight(2, 1)
	// Process 1 gets 3/4 of each core budget, process 2 gets 1/4.
	b1 := h.rt.processBudget(1)
	b2 := h.rt.processBudget(2)
	if ratio := float64(b1) / float64(b2); ratio < 2.99 || ratio > 3.01 {
		t.Fatalf("budgets %d vs %d, want ratio 3:1, got %.4f", b1, b2, ratio)
	}
	// Process 2 cannot fill a whole core.
	obj := h.alloc(t, "p2obj", uint64(b2)+64<<10)
	oi := h.rt.info(obj.Base)
	oi.process = 2
	oi.missEWMA = 100
	if h.rt.place(oi) {
		t.Fatal("process 2 exceeded its budget share")
	}
	// The same object under process 1 fits.
	oi.process = 1
	if !h.rt.place(oi) {
		t.Fatal("process 1 should have room")
	}
}

func TestPlacedObjectsReport(t *testing.T) {
	h := newHarness(t, noRebalance())
	obj := h.alloc(t, "dir0", 128<<10)
	oi := h.rt.info(obj.Base)
	oi.missEWMA = 100
	h.rt.place(oi)
	per := h.rt.PlacedObjects()
	found := false
	for _, objs := range per {
		for _, o := range objs {
			if o.Base == obj.Base {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("placed object missing from report")
	}
}
