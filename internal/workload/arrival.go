package workload

// Open-loop arrival processes for service workloads: unlike the closed-loop
// drivers elsewhere in this package (which issue the next operation the
// moment the previous one finishes), an open-loop load offers requests at
// externally scheduled instants, so queueing delay — and with it tail
// latency — becomes observable when the system falls behind.

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ArrivalProcess selects how request arrival instants are spaced.
type ArrivalProcess int

const (
	// PoissonArrivals draws independent exponential interarrival gaps —
	// the memoryless arrival stream of a large population of independent
	// clients, and the standard open-loop model.
	PoissonArrivals ArrivalProcess = iota
	// UniformArrivals spaces arrivals exactly one mean gap apart. The
	// stream is deterministic even across seeds, which isolates queueing
	// effects caused by service-time variance from those caused by
	// arrival burstiness.
	UniformArrivals
)

// String returns the process's report name.
func (p ArrivalProcess) String() string {
	switch p {
	case UniformArrivals:
		return "uniform"
	case PoissonArrivals:
		return "poisson"
	default:
		return fmt.Sprintf("arrival(%d)", int(p))
	}
}

// ArrivalTimes returns n nondecreasing absolute arrival instants after
// start, with mean interarrival gap meanGap cycles. Poisson gaps come from
// rng (one Float64 draw per request, so the stream is a pure function of
// the seed); uniform spacing never touches rng. Gaps accumulate in float64
// before rounding, so spacing error does not compound across requests.
func ArrivalTimes(kind ArrivalProcess, start sim.Time, meanGap float64, n int, rng *stats.RNG) ([]sim.Time, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: ArrivalTimes count %d must be non-negative", n)
	}
	if math.IsNaN(meanGap) || math.IsInf(meanGap, 0) || meanGap <= 0 {
		return nil, fmt.Errorf("workload: ArrivalTimes mean gap %v must be positive and finite", meanGap)
	}
	if kind != PoissonArrivals && kind != UniformArrivals {
		return nil, fmt.Errorf("workload: unknown arrival process %d", int(kind))
	}
	times := make([]sim.Time, n)
	acc := 0.0
	for i := range times {
		switch kind {
		case UniformArrivals:
			acc += meanGap
		default:
			// Inverse-CDF exponential draw. Float64 is in [0, 1), so
			// Log1p(-u) is finite and non-positive: gaps are always
			// non-negative and never NaN.
			acc -= meanGap * math.Log1p(-rng.Float64())
		}
		times[i] = start + sim.Time(acc)
	}
	return times, nil
}
