package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestArrivalTimesUniform(t *testing.T) {
	times, err := ArrivalTimes(UniformArrivals, 100, 250, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{350, 600, 850, 1100}
	for i, w := range want {
		if times[i] != w {
			t.Errorf("times[%d] = %d, want %d", i, times[i], w)
		}
	}
}

func TestArrivalTimesPoissonDeterministic(t *testing.T) {
	a, err := ArrivalTimes(PoissonArrivals, 0, 1000, 500, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ArrivalTimes(PoissonArrivals, 0, 1000, 500, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d: %d vs %d", i, a[i], b[i])
		}
	}
	c, err := ArrivalTimes(PoissonArrivals, 0, 1000, 500, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical arrival stream")
	}
}

func TestArrivalTimesPoissonStatistics(t *testing.T) {
	const n, gap = 20000, 500.0
	times, err := ArrivalTimes(PoissonArrivals, 0, gap, n, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	prev := sim.Time(0)
	for i, at := range times {
		if at < prev {
			t.Fatalf("arrival %d goes backwards: %d after %d", i, at, prev)
		}
		prev = at
	}
	// The mean gap of an exponential stream converges to the configured
	// mean: n=20000 puts the sample mean within a few percent.
	mean := float64(times[n-1]) / n
	if math.Abs(mean-gap) > 0.05*gap {
		t.Errorf("sample mean gap %.1f not within 5%% of %v", mean, gap)
	}
}

func TestArrivalTimesRejectsBadInputs(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := ArrivalTimes(PoissonArrivals, 0, 0, 4, rng); err == nil {
		t.Error("zero mean gap accepted")
	}
	if _, err := ArrivalTimes(PoissonArrivals, 0, -10, 4, rng); err == nil {
		t.Error("negative mean gap accepted")
	}
	if _, err := ArrivalTimes(PoissonArrivals, 0, math.NaN(), 4, rng); err == nil {
		t.Error("NaN mean gap accepted")
	}
	if _, err := ArrivalTimes(PoissonArrivals, 0, 100, -1, rng); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := ArrivalTimes(ArrivalProcess(99), 0, 100, 4, rng); err == nil {
		t.Error("unknown arrival process accepted")
	}
	if times, err := ArrivalTimes(UniformArrivals, 0, 100, 0, nil); err != nil || len(times) != 0 {
		t.Errorf("zero-count stream should be empty and valid, got %v, %v", times, err)
	}
}

func TestArrivalProcessString(t *testing.T) {
	if PoissonArrivals.String() != "poisson" || UniformArrivals.String() != "uniform" {
		t.Errorf("arrival process names drifted: %q, %q", PoissonArrivals, UniformArrivals)
	}
}
