package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/topology"
)

// TestWholeStackStress drives randomized machine geometries and workload
// shapes through both schedulers and checks the structural invariants that
// must survive any configuration:
//
//   - the machine model's directory/cache agreement, inclusion, and owner
//     validity (machine.CheckInvariants);
//   - CoreTime's budget accounting (no core over budget, loads
//     non-negative);
//   - liveness (every thread resolves something);
//   - determinism (same seed ⇒ identical resolution counts).
func TestWholeStackStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	master := stats.NewRNG(20260610)
	for trial := 0; trial < 6; trial++ {
		rng := master.Split()

		cfg := randomConfig(rng)
		spec := DirSpec{
			Dirs:          4 + rng.Intn(24),
			EntriesPerDir: 64 * (1 + rng.Intn(8)),
		}
		p := DefaultRunParams()
		p.Threads = 1 + rng.Intn(2*cfg.NumCores())
		p.Warmup = 200_000
		p.Measure = 600_000
		p.Seed = rng.Uint64()
		switch rng.Intn(3) {
		case 1:
			p.Popularity = Oscillating
			p.OscillatePeriod = 150_000
		case 2:
			p.Popularity = Hotspot
			p.HotDirs = 1 + rng.Intn(4)
			p.HotFraction = 0.5 + rng.Float64()/2
		}

		t.Logf("trial %d: %s, %d dirs × %d entries, %d threads, popularity %d",
			trial, cfg.Name, spec.Dirs, spec.EntriesPerDir, p.Threads, p.Popularity)

		for _, useCT := range []bool{false, true} {
			run := func() (Result, *core.Runtime, *Env) {
				env, err := BuildEnv(cfg, exec.DefaultOptions(), spec)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				var ann sched.Annotator = sched.ThreadScheduler{}
				var rt *core.Runtime
				if useCT {
					opts := core.DefaultOptions()
					opts.RebalanceInterval = 100_000
					opts.DecayWindow = 300_000
					rt = core.New(env.Sys, opts)
					ann = rt
				}
				return RunDirLookup(env, ann, p), rt, env
			}

			res, rt, env := run()
			if res.Resolutions == 0 {
				t.Fatalf("trial %d (ct=%v): no work done", trial, useCT)
			}
			for i, c := range res.PerThread {
				if c == 0 {
					t.Errorf("trial %d (ct=%v): thread %d starved", trial, useCT, i)
				}
			}
			if err := env.Mach.CheckInvariants(); err != nil {
				t.Fatalf("trial %d (ct=%v): %v", trial, useCT, err)
			}
			if rt != nil {
				for c := 0; c < cfg.NumCores(); c++ {
					load := rt.CoreLoad(c)
					if load < 0 || load > rt.Budget() {
						t.Fatalf("trial %d: core %d load %d outside [0,%d]",
							trial, c, load, rt.Budget())
					}
				}
			}

			// Determinism: an identical rebuild+rerun must agree.
			res2, _, _ := run()
			if res2.Resolutions != res.Resolutions {
				t.Fatalf("trial %d (ct=%v): nondeterministic: %d vs %d",
					trial, useCT, res.Resolutions, res2.Resolutions)
			}
		}
	}
}

// randomConfig varies the machine while keeping it valid: chips on a
// rectangular grid, power-of-two cache geometry.
func randomConfig(rng *stats.RNG) topology.Config {
	grids := [][2]int{{1, 1}, {2, 1}, {2, 2}}
	g := grids[rng.Intn(len(grids))]
	cfg := topology.Config{
		Name:         "stress",
		Chips:        g[0] * g[1],
		CoresPerChip: 1 + rng.Intn(4),
		GridW:        g[0],
		GridH:        g[1],
		L1:           topology.CacheGeom{Size: 1 << 10, LineSize: 64, Assoc: 2},
		L2:           topology.CacheGeom{Size: 8 << uint(10+rng.Intn(2)), LineSize: 64, Assoc: 8},
		L3:           topology.CacheGeom{Size: 32 << 10, LineSize: 64, Assoc: 8},
		Lat:          topology.AMDLatencies(),
		ClockHz:      2e9,
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return cfg
}
