package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// smallSpec builds a tree big enough to overflow the Small() machine's
// caches (32 KB L3) but quick to simulate.
func smallSpec() DirSpec { return DirSpec{Dirs: 12, EntriesPerDir: 128} } // 48 KB

func smallParams() RunParams {
	p := DefaultRunParams()
	p.Threads = 4
	p.Warmup = 400_000
	p.Measure = 800_000
	return p
}

func TestBuildEnv(t *testing.T) {
	env, err := BuildEnv(topology.Small(), exec.DefaultOptions(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Dirs) != 12 {
		t.Fatalf("built %d dirs, want 12", len(env.Dirs))
	}
	for i, d := range env.Dirs {
		if len(d.Names) != 128 {
			t.Fatalf("dir %d has %d names", i, len(d.Names))
		}
		if d.Obj.Size != 128*32 {
			t.Fatalf("dir %d object size %d, want %d", i, d.Obj.Size, 128*32)
		}
	}
	if err := env.FS.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildEnvRejectsBadSpec(t *testing.T) {
	if _, err := BuildEnv(topology.Small(), exec.DefaultOptions(), DirSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestBaselineRunProducesResolutions(t *testing.T) {
	env, err := BuildEnv(topology.Small(), exec.DefaultOptions(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	res := RunDirLookup(env, sched.ThreadScheduler{}, smallParams())
	if res.Resolutions == 0 {
		t.Fatal("no resolutions measured")
	}
	if res.Migrations != 0 {
		t.Fatalf("baseline migrated %d times", res.Migrations)
	}
	if res.KResPerSec <= 0 {
		t.Fatalf("KResPerSec = %v", res.KResPerSec)
	}
	// All threads made progress.
	for i, c := range res.PerThread {
		if c == 0 {
			t.Fatalf("thread %d starved", i)
		}
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	p := smallParams()
	run := func() uint64 {
		env, err := BuildEnv(topology.Small(), exec.DefaultOptions(), smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		return RunDirLookup(env, sched.ThreadScheduler{}, p).Resolutions
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical seeds produced %d and %d resolutions", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	env1, err := BuildEnv(topology.Small(), exec.DefaultOptions(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams()
	a := RunDirLookup(env1, sched.ThreadScheduler{}, p)
	env2, err := BuildEnv(topology.Small(), exec.DefaultOptions(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 99
	b := RunDirLookup(env2, sched.ThreadScheduler{}, p)
	if a.Resolutions == b.Resolutions {
		t.Log("note: different seeds produced identical counts (possible but unlikely)")
	}
}

func TestCoreTimeMigratesAndWins(t *testing.T) {
	// End-to-end sanity check of the paper's core claim on a scaled-down
	// multi-chip machine: when the directory set exceeds one chip's
	// caches, the baseline replicates it per chip and misses off-chip,
	// while CoreTime partitions it and wins. Directory size (16 KB) is
	// chosen so scan time dominates the ~2000-cycle migration, as in the
	// paper's 32 KB directories.
	spec := DirSpec{Dirs: 8, EntriesPerDir: 512} // 8 × 16 KB = 128 KB
	p := smallParams()
	p.Threads = 8

	envBase, err := BuildEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
	if err != nil {
		t.Fatal(err)
	}
	base := RunDirLookup(envBase, sched.ThreadScheduler{}, p)

	envCT, err := BuildEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.RebalanceInterval = 200_000
	opts.DecayWindow = 0
	ct := RunDirLookup(envCT, core.New(envCT.Sys, opts), p)

	if ct.Migrations == 0 {
		t.Fatal("CoreTime never migrated")
	}
	t.Logf("baseline %.0f kres/s, coretime %.0f kres/s (%.2fx), %d migrations",
		base.KResPerSec, ct.KResPerSec, ct.KResPerSec/base.KResPerSec, ct.Migrations)
	if ct.KResPerSec <= base.KResPerSec {
		t.Fatalf("CoreTime (%.0f kres/s) did not beat baseline (%.0f kres/s)",
			ct.KResPerSec, base.KResPerSec)
	}
}

func TestOscillatingPopularityShrinksActiveSet(t *testing.T) {
	env, err := BuildEnv(topology.Small(), exec.DefaultOptions(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams()
	p.Popularity = Oscillating
	p.OscillatePeriod = 100_000
	res := RunDirLookup(env, sched.ThreadScheduler{}, p)
	if res.Resolutions == 0 {
		t.Fatal("no resolutions under oscillating popularity")
	}
}

func TestEnvReuseAcrossRuns(t *testing.T) {
	env, err := BuildEnv(topology.Small(), exec.DefaultOptions(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams()
	a := RunDirLookup(env, sched.ThreadScheduler{}, p)
	b := RunDirLookup(env, sched.ThreadScheduler{}, p)
	if a.Resolutions == 0 || b.Resolutions == 0 {
		t.Fatal("reused env produced no work")
	}
	// FlushAll between runs makes the second run start cold like the
	// first; with the same seed the counts must match exactly.
	if a.Resolutions != b.Resolutions {
		t.Fatalf("reused env diverged: %d vs %d", a.Resolutions, b.Resolutions)
	}
}

func TestDirSpecTotalBytes(t *testing.T) {
	spec := DirSpec{Dirs: 640, EntriesPerDir: 1000}
	if got := spec.TotalBytes(); got != 640*32000 {
		t.Fatalf("TotalBytes = %d, want %d", got, 640*32000)
	}
}

func TestRunParamsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   RunParams
		want func(RunParams) bool
	}{
		{
			"zero value becomes DefaultRunParams",
			RunParams{},
			func(p RunParams) bool { return p == DefaultRunParams() },
		},
		{
			"partial params fill missing fields only",
			RunParams{Threads: 4, Seed: 9},
			func(p RunParams) bool {
				d := DefaultRunParams()
				return p.Threads == 4 && p.Seed == 9 &&
					p.Measure == d.Measure && p.PerOpCompute == d.PerOpCompute
			},
		},
		{
			"explicit zero warmup is preserved",
			RunParams{Threads: 8, Warmup: 0, Measure: 1000},
			func(p RunParams) bool { return p.Warmup == 0 && p.Measure == 1000 },
		},
		{
			"fully specified params pass through unchanged",
			DefaultRunParams(),
			func(p RunParams) bool { return p == DefaultRunParams() },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.WithDefaults(); !tc.want(got) {
				t.Errorf("WithDefaults(%+v) = %+v", tc.in, got)
			}
		})
	}
}

func TestSeedFallsBackToEngineSeed(t *testing.T) {
	// With RunParams.Seed zero, the driver derives its RNG from the
	// engine's base seed: different engine seeds give different runs,
	// equal engine seeds identical ones.
	run := func(engineSeed uint64) uint64 {
		m, err := machine.New(topology.Small(), smallSpec().ImageBytes())
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngineSeeded(engineSeed)
		env, err := BuildEnvOn(exec.NewSystem(eng, m, exec.DefaultOptions()), smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		p := smallParams()
		p.Seed = 0
		return RunDirLookup(env, sched.ThreadScheduler{}, p).Resolutions
	}
	a1, a2, b := run(1), run(1), run(2)
	if a1 != a2 {
		t.Errorf("equal engine seeds diverged: %d vs %d", a1, a2)
	}
	if a1 == b {
		t.Errorf("different engine seeds gave identical runs (%d)", a1)
	}
}
