package workload

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/topology"
)

func pickEnv(t *testing.T, dirs int) *Env {
	t.Helper()
	env, err := BuildEnv(topology.Small(), exec.DefaultOptions(),
		DirSpec{Dirs: dirs, EntriesPerDir: 16})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestPickDirUniformCoversAll(t *testing.T) {
	env := pickEnv(t, 10)
	p := RunParams{Popularity: Uniform}
	rng := stats.NewRNG(1)
	seen := map[int]int{}
	for i := 0; i < 10_000; i++ {
		d := pickDir(rng, env, p, 16, 0)
		if d < 0 || d >= 10 {
			t.Fatalf("pick out of range: %d", d)
		}
		seen[d]++
	}
	for d := 0; d < 10; d++ {
		if seen[d] < 500 {
			t.Fatalf("dir %d picked only %d/10000 times under uniform", d, seen[d])
		}
	}
}

func TestPickDirOscillatingPhases(t *testing.T) {
	env := pickEnv(t, 32)
	p := RunParams{Popularity: Oscillating, OscillatePeriod: 1000}
	rng := stats.NewRNG(2)

	// Phase 0 (t in [0,1000)): full set.
	full := map[int]bool{}
	for i := 0; i < 5000; i++ {
		full[pickDir(rng, env, p, 16, 500)] = true
	}
	if len(full) < 30 {
		t.Fatalf("full phase touched only %d/32 dirs", len(full))
	}

	// Phase 1 (t in [1000,2000)): 32/16 = 2 dirs.
	small := map[int]bool{}
	for i := 0; i < 5000; i++ {
		small[pickDir(rng, env, p, 16, 1500)] = true
	}
	if len(small) != 2 {
		t.Fatalf("small phase touched %d dirs, want 2", len(small))
	}
	for d := range small {
		if d >= 2 {
			t.Fatalf("small phase picked dir %d outside the prefix", d)
		}
	}
}

func TestPickDirOscillatingSmallSetFloor(t *testing.T) {
	env := pickEnv(t, 8)
	p := RunParams{Popularity: Oscillating, OscillatePeriod: 1000}
	rng := stats.NewRNG(3)
	// divisor 16 on 8 dirs: small phase must floor at one directory,
	// not zero.
	for i := 0; i < 100; i++ {
		if d := pickDir(rng, env, p, 16, 1500); d != 0 {
			t.Fatalf("small phase picked %d, want 0", d)
		}
	}
}

func TestPickDirHotspotSkew(t *testing.T) {
	env := pickEnv(t, 20)
	p := RunParams{Popularity: Hotspot, HotDirs: 4, HotFraction: 0.8}
	rng := stats.NewRNG(4)
	hot := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if pickDir(rng, env, p, 16, 0) < 4 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.78 || frac > 0.86 {
		t.Fatalf("hot fraction = %.3f, want ≈ 0.8 (+ uniform spillover)", frac)
	}
}

func TestPickDirHotspotDegenerate(t *testing.T) {
	env := pickEnv(t, 3)
	p := RunParams{Popularity: Hotspot, HotDirs: 10, HotFraction: 0.9}
	rng := stats.NewRNG(5)
	for i := 0; i < 1000; i++ {
		d := pickDir(rng, env, p, 16, 0)
		if d < 0 || d >= 3 {
			t.Fatalf("hot dirs > total dirs picked %d", d)
		}
	}
}

func TestPickDirPhaseShift(t *testing.T) {
	env := pickEnv(t, 20)
	p := RunParams{
		Popularity:   UniformThenHotspot,
		PhaseShiftAt: 10_000,
		HotDirs:      2,
		HotFraction:  1.0,
	}
	rng := stats.NewRNG(6)
	// Before the shift: uniform.
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		seen[pickDir(rng, env, p, 16, 500)] = true
	}
	if len(seen) < 18 {
		t.Fatalf("pre-shift phase touched only %d/20 dirs", len(seen))
	}
	// After: all traffic on the hot prefix.
	for i := 0; i < 1000; i++ {
		if d := pickDir(rng, env, p, 16, 20_000); d >= 2 {
			t.Fatalf("post-shift picked cold dir %d", d)
		}
	}
}
