package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fatfs"
	"repro/internal/sched"
	"repro/internal/topology"
)

func pathSpec() PathSpec { return PathSpec{TopDirs: 4, SubsPerTop: 6, FilesPerSub: 128} }

func pathParams() RunParams {
	p := DefaultRunParams()
	p.Threads = 8
	p.Warmup = 800_000
	p.Measure = 1_600_000
	return p
}

func TestBuildPathEnv(t *testing.T) {
	env, err := BuildPathEnv(topology.Tiny8(), exec.DefaultOptions(), pathSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Tops) != 4 || len(env.Subs) != 4 {
		t.Fatalf("tree shape wrong: %d tops, %d sub rows", len(env.Tops), len(env.Subs))
	}
	for ti, subs := range env.Subs {
		if len(subs) != 6 {
			t.Fatalf("top %d has %d subs", ti, len(subs))
		}
		for _, s := range subs {
			if s.Obj.Size != 128*32 {
				t.Fatalf("sub object size %d, want %d", s.Obj.Size, 128*32)
			}
		}
	}
	if err := env.FS.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// A full path must resolve through the real FS.
	if _, err := env.FS.LookupPath(fatfs.NullAccess{}, "/TOP0001/SUB0003/F0000042"); err != nil {
		t.Fatalf("path resolution: %v", err)
	}
}

func TestPathSpecRejected(t *testing.T) {
	if _, err := BuildPathEnv(topology.Tiny8(), exec.DefaultOptions(), PathSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestPathLookupBaseline(t *testing.T) {
	env, err := BuildPathEnv(topology.Tiny8(), exec.DefaultOptions(), pathSpec())
	if err != nil {
		t.Fatal(err)
	}
	res := RunPathLookup(env, sched.ThreadScheduler{}, pathParams())
	if res.Resolutions == 0 {
		t.Fatal("no resolutions")
	}
	if res.Migrations != 0 {
		t.Fatal("baseline migrated")
	}
}

func TestPathLookupDeterministic(t *testing.T) {
	run := func() uint64 {
		env, err := BuildPathEnv(topology.Tiny8(), exec.DefaultOptions(), pathSpec())
		if err != nil {
			t.Fatal(err)
		}
		return RunPathLookup(env, sched.ThreadScheduler{}, pathParams()).Resolutions
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestClusteringReducesPathMigrations(t *testing.T) {
	p := pathParams()

	run := func(clustering bool) PathResult {
		env, err := BuildPathEnv(topology.Tiny8(), exec.DefaultOptions(), pathSpec())
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.EnableClustering = clustering
		// Subdirectory scans are small (4 KB); lower the threshold so
		// they qualify for placement.
		opts.MissThreshold = 4
		rt := core.New(env.Sys, opts)
		for _, hint := range env.ClusterHints() {
			rt.PlaceTogether(hint...)
		}
		return RunPathLookup(env, rt, p)
	}

	flat := run(false)
	clustered := run(true)
	t.Logf("paths: unclustered %.0f kres/s (%d migr), clustered %.0f kres/s (%d migr)",
		flat.KResPerSec, flat.Migrations, clustered.KResPerSec, clustered.Migrations)
	if clustered.Migrations >= flat.Migrations {
		t.Errorf("clustering did not reduce migrations: %d vs %d",
			clustered.Migrations, flat.Migrations)
	}
	if clustered.KResPerSec < flat.KResPerSec {
		t.Errorf("clustering slowed resolution: %.0f vs %.0f",
			clustered.KResPerSec, flat.KResPerSec)
	}
}
