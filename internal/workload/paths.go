package workload

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/fatfs"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file implements the hierarchical path-resolution workload:
// /TOPxx/SUByy/Fzzzzzzz lookups that scan two directories per operation.
// One resolution is a *nested* pair of CoreTime operations — the inner
// (subdirectory scan) runs inside the outer (top-directory scan) — which
// is exactly the "one operation uses two objects simultaneously" pattern
// that §6.2's object clustering targets: clustering a top directory with
// its subdirectories keeps a whole resolution on one core.

// PathSpec sizes the two-level directory tree.
type PathSpec struct {
	TopDirs     int // directories under the root
	SubsPerTop  int // subdirectories per top directory
	FilesPerSub int
}

// TotalBytes returns the tree's directory-data footprint.
func (s PathSpec) TotalBytes() int {
	top := s.TopDirs * s.SubsPerTop * fatfs.DirEntrySize
	sub := s.TopDirs * s.SubsPerTop * s.FilesPerSub * fatfs.DirEntrySize
	return top + sub
}

// VolumeBytes returns the FAT volume size that holds the tree.
func (s PathSpec) VolumeBytes() int { return s.TotalBytes()*2 + (8 << 20) }

// ImageBytes returns the machine memory image size the environment needs.
func (s PathSpec) ImageBytes() int { return s.VolumeBytes() + (4 << 20) }

// PathNode bundles one directory of the tree.
type PathNode struct {
	Dir  fatfs.Dir
	Obj  *mem.Object
	Lock *exec.SpinLock
}

// PathEnv is a built two-level tree environment.
type PathEnv struct {
	Eng  *sim.Engine
	Mach *machine.Machine
	Sys  *exec.System
	FS   *fatfs.FS
	Spec PathSpec

	Tops []*PathNode
	// Subs[t][s] is subdirectory s of top directory t.
	Subs [][]*PathNode
	// FileNames[s] are the file names present in every subdirectory.
	FileNames []string
	// SubNames[s] are the subdirectory names under every top.
	SubNames []string
}

// BuildPathEnv constructs the tree: TopDirs directories under the root,
// each holding SubsPerTop subdirectories of FilesPerSub zero-length files.
// Every directory gets its own spin lock and registered object.
func BuildPathEnv(cfg topology.Config, execOpts exec.Options, spec PathSpec) (*PathEnv, error) {
	if spec.TopDirs <= 0 || spec.SubsPerTop <= 0 || spec.FilesPerSub <= 0 {
		return nil, fmt.Errorf("workload: invalid path spec %+v", spec)
	}
	eng := sim.NewEngine()
	m, err := machine.New(cfg, spec.ImageBytes())
	if err != nil {
		return nil, err
	}
	return BuildPathEnvOn(exec.NewSystem(eng, m, execOpts), spec)
}

// BuildPathEnvOn builds the two-level tree on an existing substrate,
// formatting the FAT volume inside the machine's memory image (see
// BuildEnvOn).
func BuildPathEnvOn(sys *exec.System, spec PathSpec) (*PathEnv, error) {
	if spec.TopDirs <= 0 || spec.SubsPerTop <= 0 || spec.FilesPerSub <= 0 {
		return nil, fmt.Errorf("workload: invalid path spec %+v", spec)
	}
	eng, m := sys.Engine(), sys.Machine()
	fs, err := fatfs.Format(m.Image(), fatfs.Config{
		TotalBytes:        spec.VolumeBytes(),
		SectorsPerCluster: 8,
		RootEntries:       rootEntriesFor(spec.TopDirs),
	})
	if err != nil {
		return nil, err
	}

	env := &PathEnv{Eng: eng, Mach: m, Sys: sys, FS: fs, Spec: spec}
	for s := 0; s < spec.SubsPerTop; s++ {
		env.SubNames = append(env.SubNames, fmt.Sprintf("SUB%04d", s))
	}
	for f := 0; f < spec.FilesPerSub; f++ {
		env.FileNames = append(env.FileNames, fmt.Sprintf("F%07d", f))
	}

	null := fatfs.NullAccess{}
	for ti := 0; ti < spec.TopDirs; ti++ {
		topName := fmt.Sprintf("TOP%04d", ti)
		topDir, err := fs.Mkdir(null, fs.Root(), topName, spec.SubsPerTop)
		if err != nil {
			return nil, err
		}
		topNode, err := env.node(topDir, topName)
		if err != nil {
			return nil, err
		}
		env.Tops = append(env.Tops, topNode)

		var subs []*PathNode
		for si := 0; si < spec.SubsPerTop; si++ {
			subDir, err := fs.Mkdir(null, topDir, env.SubNames[si], spec.FilesPerSub)
			if err != nil {
				return nil, err
			}
			if err := fs.Populate(subDir, spec.FilesPerSub, func(f int) string {
				return env.FileNames[f]
			}); err != nil {
				return nil, err
			}
			node, err := env.node(subDir, fmt.Sprintf("%s/%s", topName, env.SubNames[si]))
			if err != nil {
				return nil, err
			}
			subs = append(subs, node)
		}
		env.Subs = append(env.Subs, subs)
	}
	return env, nil
}

func (env *PathEnv) node(d fatfs.Dir, name string) (*PathNode, error) {
	span, err := env.FS.Extent(d)
	if err != nil {
		return nil, err
	}
	obj, err := env.Mach.Image().RegisterObject(name, span)
	if err != nil {
		return nil, err
	}
	return &PathNode{Dir: d, Obj: obj, Lock: env.Sys.NewSpinLock(name)}, nil
}

// ClusterHints returns, per top directory, the object addresses of the
// top and all its subdirectories — ready to feed to
// core.Runtime.PlaceTogether.
func (env *PathEnv) ClusterHints() [][]mem.Addr {
	out := make([][]mem.Addr, len(env.Tops))
	for ti, top := range env.Tops {
		addrs := []mem.Addr{top.Obj.Base}
		for _, sub := range env.Subs[ti] {
			addrs = append(addrs, sub.Obj.Base)
		}
		out[ti] = addrs
	}
	return out
}

// PathResult is one measured path-lookup run.
type PathResult struct {
	Resolutions uint64
	KResPerSec  float64
	Migrations  uint64
	Scheduler   string
}

// RunPathLookup measures full-path resolutions (top scan + sub scan) per
// second. Each resolution brackets the top-directory scan in an outer
// operation and the subdirectory scan in a nested inner operation.
func RunPathLookup(env *PathEnv, ann sched.Annotator, p RunParams) PathResult {
	env.Mach.FlushAll()
	env.Mach.Counters().Reset()

	ncores := env.Mach.Config().NumCores()
	homes := sched.RoundRobin(p.Threads, ncores)
	measureStart := env.Eng.Now() + p.Warmup
	deadline := measureStart + p.Measure

	counts := make([]uint64, p.Threads)
	var migBase uint64
	master := masterRNG(env.Eng, p)

	for i := 0; i < p.Threads; i++ {
		i := i
		rng := master.Split()
		env.Sys.Go(fmt.Sprintf("thread %d", i), homes[i], func(t *exec.Thread) {
			b := t.Batch() // reused across lookups: empty between Commits
			for t.Now() < deadline {
				ti := rng.Intn(len(env.Tops))
				si := rng.Intn(len(env.Subs[ti]))
				top, sub := env.Tops[ti], env.Subs[ti][si]
				file := env.FileNames[rng.Intn(len(env.FileNames))]

				t.Compute(sim.Cycles(p.PerOpCompute))

				// Outer operation: resolve SUBxxxx within the top
				// directory.
				sched.OpStartRO(ann, t, top.Obj.Base)
				t.Lock(top.Lock)
				subEntry, err := env.FS.Lookup(b, top.Dir, env.SubNames[si])
				if err != nil {
					panic(fmt.Sprintf("workload: top lookup: %v", err))
				}
				b.Commit()
				t.Unlock(top.Lock)

				// Inner (nested) operation: resolve the file within
				// the subdirectory found by the outer scan.
				subDir, err := subEntry.Dir(env.FS)
				if err != nil {
					panic(err)
				}
				sched.OpStartRO(ann, t, sub.Obj.Base)
				t.Lock(sub.Lock)
				if _, err := env.FS.Lookup(b, subDir, file); err != nil {
					panic(fmt.Sprintf("workload: sub lookup: %v", err))
				}
				b.Commit()
				t.Unlock(sub.Lock)
				ann.OpEnd(t) // inner

				ann.OpEnd(t) // outer

				if t.Now() >= measureStart && t.Now() <= deadline {
					counts[i]++
				}
				t.Yield()
			}
		})
	}

	env.Eng.At(measureStart, func() {
		var migs uint64
		for c := 0; c < ncores; c++ {
			migs += env.Mach.Counters().Snapshot(c).MigrationsIn
		}
		migBase = migs
	})
	env.Eng.Run(0)

	var total uint64
	for _, c := range counts {
		total += c
	}
	var migs uint64
	for c := 0; c < ncores; c++ {
		migs += env.Mach.Counters().Snapshot(c).MigrationsIn
	}
	seconds := float64(p.Measure) / env.Mach.Config().ClockHz
	return PathResult{
		Resolutions: total,
		KResPerSec:  float64(total) / seconds / 1000,
		Migrations:  migs - migBase,
		Scheduler:   ann.Name(),
	}
}
