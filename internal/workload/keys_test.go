package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// TestShardSlotAddressingProperties drives the addressing contract with
// testing/quick: no out-of-bounds shard or slot for any key, and the slot
// a key lands on within its shard never depends on the shard count.
func TestShardSlotAddressingProperties(t *testing.T) {
	f := func(key uint64, rawShards, rawSlots, rawShards2 uint16) bool {
		shards := int(rawShards%512) + 1
		shards2 := int(rawShards2%512) + 1
		slots := int(rawSlots%512) + 1

		s := ShardOf(key, shards)
		if s < 0 || s >= shards {
			return false
		}
		v := SlotOf(key, slots)
		if v < 0 || v >= slots {
			return false
		}
		// Slot addressing is independent of the shard count: resizing the
		// shard ring never moves a key within its shard's table.
		_ = ShardOf(key, shards2)
		return SlotOf(key, slots) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestShardBalanceWithinOne checks that any dense key range splits across
// shards with per-shard counts differing by at most one.
func TestShardBalanceWithinOne(t *testing.T) {
	f := func(rawStart uint32, rawShards, rawKeys uint16) bool {
		shards := int(rawShards%128) + 1
		keys := int(rawKeys%4096) + 1
		start := uint64(rawStart)

		counts := make([]int, shards)
		for k := 0; k < keys; k++ {
			counts[ShardOf(start+uint64(k), shards)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSlotOfSpreadsStructuredKeys pins the fix for the kvstore example's
// addressing bug: with the naive stripe (key/shards)%slots, every key
// below the shard count lands on slot 0, so a dense key range under
// shards >= slots crowds into the low slots. SlotOf must spread exactly
// that key stream over the whole table.
func TestSlotOfSpreadsStructuredKeys(t *testing.T) {
	const shards, slots = 256, 64 // shards >= slots: the collapsing regime
	naive := func(key uint64) int { return int(key / shards % slots) }

	naiveSeen := map[int]bool{}
	fixedSeen := map[int]bool{}
	for key := uint64(0); key < shards; key++ { // dense keys, one per shard
		naiveSeen[naive(key)] = true
		fixedSeen[SlotOf(key, slots)] = true
	}
	if len(naiveSeen) != 1 {
		t.Fatalf("premise broken: naive stripe used %d slots, expected the single-slot collapse", len(naiveSeen))
	}
	if len(fixedSeen) < slots/2 {
		t.Errorf("SlotOf used only %d/%d slots on a dense key range", len(fixedSeen), slots)
	}

	// Keys that are multiples of the shard count (the example's hot-shard
	// stream) must spread too.
	fixedSeen = map[int]bool{}
	for i := uint64(0); i < 4*slots; i++ {
		fixedSeen[SlotOf(i*shards, slots)] = true
	}
	if len(fixedSeen) < slots/2 {
		t.Errorf("SlotOf used only %d/%d slots on a multiple-of-shards stream", len(fixedSeen), slots)
	}
}

// TestZipfTable is the table-driven contract of the Zipf generator:
// seed-reproducibility, the uniform degradation at skew 0, and agreement
// of the empirical top-rank frequency with the analytic mass.
func TestZipfTable(t *testing.T) {
	const samples = 200_000
	cases := []struct {
		name string
		n    int
		skew float64
	}{
		{"uniform tiny", 4, 0},
		{"uniform wide", 1000, 0},
		{"mild skew", 100, 0.5},
		{"classic zipf", 1000, 0.99},
		{"heavy skew", 64, 1.5},
		{"single rank", 1, 2.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			z := MustZipf(tc.n, tc.skew)

			// Seed-reproducibility: identical seeds give identical draw
			// sequences; a different seed diverges (unless n == 1).
			a, b := stats.NewRNG(11), stats.NewRNG(11)
			c := stats.NewRNG(12)
			diverged := false
			for i := 0; i < 512; i++ {
				va, vb, vc := z.Next(a), z.Next(b), z.Next(c)
				if va != vb {
					t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, va, vb)
				}
				if va != vc {
					diverged = true
				}
			}
			if tc.n > 1 && !diverged {
				t.Error("distinct seeds produced identical 512-draw sequences")
			}

			// Skew 0 must degrade to exactly the uniform generator.
			if tc.skew == 0 {
				zr, ur := stats.NewRNG(7), stats.NewRNG(7)
				for i := 0; i < 512; i++ {
					if got, want := z.Next(zr), ur.Intn(tc.n); got != want {
						t.Fatalf("draw %d: skew-0 Zipf %d != uniform %d", i, got, want)
					}
				}
			}

			// Masses are a probability distribution.
			sum := 0.0
			for r := 0; r < tc.n; r++ {
				sum += z.Mass(r)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("masses sum to %v, want 1", sum)
			}

			// The empirical top-rank frequency matches the analytic mass:
			// binomial stddev is sqrt(p(1-p)/samples) < 0.12%, so a 1%
			// absolute + 5% relative tolerance is far beyond noise.
			rng := stats.NewRNG(99)
			hits := 0
			for i := 0; i < samples; i++ {
				if z.Next(rng) == 0 {
					hits++
				}
			}
			got := float64(hits) / samples
			want := z.Mass(0)
			if diff := math.Abs(got - want); diff > 0.01+0.05*want {
				t.Errorf("top-rank frequency %.4f, analytic mass %.4f (diff %.4f)", got, want, diff)
			}
		})
	}
}

// TestZipfRejectsInvalidConfig covers the constructor's validation.
func TestZipfRejectsInvalidConfig(t *testing.T) {
	cases := []struct {
		name string
		n    int
		skew float64
	}{
		{"zero ranks", 0, 1},
		{"negative ranks", -3, 1},
		{"negative skew", 10, -0.5},
		{"NaN skew", 10, math.NaN()},
		{"infinite skew", 10, math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewZipf(tc.n, tc.skew); err == nil {
				t.Errorf("NewZipf(%d, %v) accepted invalid config", tc.n, tc.skew)
			}
		})
	}
}

// TestZipfDrawsInRange checks every draw stays inside [0, n) across skews,
// including the boundary-heavy small-n cases.
func TestZipfDrawsInRange(t *testing.T) {
	f := func(rawN uint16, rawSkew uint8, seed uint64) bool {
		n := int(rawN%256) + 1
		skew := float64(rawSkew) / 64 // [0, ~4)
		z := MustZipf(n, skew)
		rng := stats.NewRNG(seed)
		for i := 0; i < 200; i++ {
			if r := z.Next(rng); r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
