package workload

// Key-stream helpers for service-style scenarios: deterministic shard and
// slot addressing for hash-partitioned stores, and the Zipf popularity
// generator the KVService load generator draws keys from.
//
// The addressing contract, relied on by the o2.KVService scenario and its
// property tests:
//
//   - ShardOf splits a dense key range evenly: over any contiguous range
//     of keys the shard counts differ by at most one.
//   - SlotOf never indexes out of bounds and depends on every bit of the
//     key, so skewed or structured key streams (sequential keys, keys that
//     are multiples of the shard count) still spread over a shard's slots.
//   - SlotOf is a function of the key and the slot count alone: changing
//     the shard count never moves a key to a different slot within its
//     shard.
//
// The last two properties are exactly what the naive stripe
// (key/shards)%slots lacks: it collapses every key below the shard count
// onto slot 0 — with shards ≥ slots a whole dense key range crowds into
// the low slots — and re-shuffles all slots whenever the shard count
// changes.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// ShardOf returns the shard owning key among shards partitions. Dense key
// ranges balance to within one key per shard. It panics when shards <= 0.
func ShardOf(key uint64, shards int) int {
	if shards <= 0 {
		panic(fmt.Sprintf("workload: ShardOf with %d shards", shards))
	}
	return int(key % uint64(shards))
}

// SlotOf returns the slot of key within its shard's slots-entry table. The
// key is avalanched through the SplitMix64 finalizer first, so every bit
// of the key contributes: structured key streams do not collapse onto a
// few slots, and the slot does not depend on the shard count. It panics
// when slots <= 0.
func SlotOf(key uint64, slots int) int {
	if slots <= 0 {
		panic(fmt.Sprintf("workload: SlotOf with %d slots", slots))
	}
	// DeriveSeed with no strata is exactly one SplitMix64 finalizer pass.
	return int(stats.DeriveSeed(key) % uint64(slots))
}

// Zipf is a deterministic Zipf(s) popularity distribution over the ranks
// [0, n): rank r is drawn with probability proportional to 1/(r+1)^s.
// Skew 0 degrades to the uniform distribution. The generator owns no RNG
// state — callers pass their own *stats.RNG to Next — so one table can be
// shared by many client threads, each with a private seed, and a run is
// reproducible from those seeds alone.
type Zipf struct {
	n    int
	skew float64
	// cdf[r] is the cumulative probability of ranks 0..r; nil when the
	// distribution is uniform (skew 0).
	cdf []float64
}

// NewZipf builds the distribution table for n ranks at the given skew
// (s >= 0; 0 means uniform). Building is O(n); drawing is O(1) uniform or
// O(log n) skewed.
func NewZipf(n int, skew float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: Zipf needs a positive rank count, got %d", n)
	}
	if math.IsNaN(skew) || math.IsInf(skew, 0) || skew < 0 {
		return nil, fmt.Errorf("workload: Zipf skew %v must be finite and non-negative", skew)
	}
	z := &Zipf{n: n, skew: skew}
	if skew == 0 {
		return z, nil
	}
	z.cdf = make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -skew)
		z.cdf[r] = sum
	}
	for r := range z.cdf {
		z.cdf[r] /= sum
	}
	z.cdf[n-1] = 1 // close the table against rounding
	return z, nil
}

// MustZipf is NewZipf, panicking on error; for tables built from validated
// configuration.
func MustZipf(n int, skew float64) *Zipf {
	z, err := NewZipf(n, skew)
	if err != nil {
		panic(err)
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Skew returns the distribution's skew parameter.
func (z *Zipf) Skew() float64 { return z.skew }

// Mass returns the analytic probability of rank (0-based). It panics when
// rank is out of range.
func (z *Zipf) Mass(rank int) float64 {
	if rank < 0 || rank >= z.n {
		panic(fmt.Sprintf("workload: Zipf.Mass rank %d out of [0, %d)", rank, z.n))
	}
	if z.cdf == nil {
		return 1 / float64(z.n)
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

// Next draws the next rank using rng. At skew 0 it is exactly
// rng.Intn(N()): the skew axis degrades continuously to the uniform
// workload everything else in the repository uses.
func (z *Zipf) Next(rng *stats.RNG) int {
	if z.cdf == nil {
		return rng.Intn(z.n)
	}
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
