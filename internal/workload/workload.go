// Package workload builds and drives the paper's evaluation workloads.
//
// The central one is the directory-lookup workload of Figures 1/3: each
// thread repeatedly picks a random directory and resolves a random file
// name in it by linear scan. Directories are the objects, lookups the
// operations. Popularity is either uniform (Fig. 4a) or oscillating
// between the full directory set and a sixteenth of it (Fig. 4b).
package workload

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/fatfs"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// DirSpec sizes the directory tree.
type DirSpec struct {
	// Dirs is the number of directories; EntriesPerDir the file entries
	// in each (the paper uses 1,000 entries of 32 bytes).
	Dirs          int
	EntriesPerDir int
}

// TotalBytes returns the directory data footprint, the x-axis of Fig. 4.
func (d DirSpec) TotalBytes() int { return d.Dirs * d.EntriesPerDir * fatfs.DirEntrySize }

// VolumeBytes returns the FAT volume size that holds the tree: directory
// data plus FAT/root metadata plus slack.
func (d DirSpec) VolumeBytes() int { return d.TotalBytes()*2 + (8 << 20) }

// ImageBytes returns the machine memory image size the environment needs:
// the volume plus room for locks and thread contexts.
func (d DirSpec) ImageBytes() int { return d.VolumeBytes() + (4 << 20) }

// DirHandle bundles everything the drivers need per directory.
type DirHandle struct {
	Dir   fatfs.Dir
	Obj   *mem.Object
	Lock  *exec.SpinLock
	Names []string
}

// Env is a built benchmark environment: machine, substrate, file system,
// and the directory tree.
type Env struct {
	Eng  *sim.Engine
	Mach *machine.Machine
	Sys  *exec.System
	FS   *fatfs.FS
	Dirs []*DirHandle
	Spec DirSpec
}

// BuildEnv constructs a fresh environment: a machine from cfg, a FAT
// volume sized to hold the directory tree, spec.Dirs directories of
// spec.EntriesPerDir files each, a per-directory spin lock (the paper
// added per-directory spin locks to EFSL), and one registered memory
// object per directory.
func BuildEnv(cfg topology.Config, execOpts exec.Options, spec DirSpec) (*Env, error) {
	if spec.Dirs <= 0 || spec.EntriesPerDir <= 0 {
		return nil, fmt.Errorf("workload: need positive dirs and entries, got %+v", spec)
	}
	eng := sim.NewEngine()
	m, err := machine.New(cfg, spec.ImageBytes())
	if err != nil {
		return nil, err
	}
	return BuildEnvOn(exec.NewSystem(eng, m, execOpts), spec)
}

// BuildEnvOn builds the directory-tree environment on an existing
// substrate, formatting the FAT volume inside the machine's memory image.
// The image must have room for the volume (see DirSpec.ImageBytes); callers
// that own machine construction, like the public o2 façade, use this entry
// point.
func BuildEnvOn(sys *exec.System, spec DirSpec) (*Env, error) {
	if spec.Dirs <= 0 || spec.EntriesPerDir <= 0 {
		return nil, fmt.Errorf("workload: need positive dirs and entries, got %+v", spec)
	}
	eng, m := sys.Engine(), sys.Machine()

	fcfg := fatfs.Config{TotalBytes: spec.VolumeBytes(), SectorsPerCluster: 8, RootEntries: rootEntriesFor(spec.Dirs)}
	fs, err := fatfs.Format(m.Image(), fcfg)
	if err != nil {
		return nil, err
	}

	env := &Env{Eng: eng, Mach: m, Sys: sys, FS: fs, Spec: spec}
	null := fatfs.NullAccess{}
	for i := 0; i < spec.Dirs; i++ {
		dirName := fmt.Sprintf("DIR%05d", i)
		d, err := fs.Mkdir(null, fs.Root(), dirName, spec.EntriesPerDir)
		if err != nil {
			return nil, fmt.Errorf("workload: mkdir %s: %w", dirName, err)
		}
		names := make([]string, spec.EntriesPerDir)
		for j := range names {
			names[j] = fileName(j)
		}
		if err := fs.Populate(d, spec.EntriesPerDir, func(j int) string { return names[j] }); err != nil {
			return nil, fmt.Errorf("workload: populate %s: %w", dirName, err)
		}
		span, err := fs.Extent(d)
		if err != nil {
			return nil, err
		}
		obj, err := registerSpan(m.Image(), dirName, span)
		if err != nil {
			return nil, err
		}
		env.Dirs = append(env.Dirs, &DirHandle{
			Dir:   d,
			Obj:   obj,
			Lock:  sys.NewSpinLock(dirName),
			Names: names,
		})
	}
	return env, nil
}

// fileName formats the benchmark file name "F%07d" without fmt's
// reflection machinery: environments are rebuilt per sweep cell, so the
// name table is built thousands of times per sweep. Indices too wide for
// seven digits fall back to fmt so they fail EncodeName's 8.3 check
// loudly instead of silently colliding.
func fileName(j int) string {
	if j > 9_999_999 {
		return fmt.Sprintf("F%07d", j)
	}
	var buf [8]byte
	buf[0] = 'F'
	n := j
	for i := 7; i >= 1; i-- {
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[:])
}

// rootEntriesFor sizes the root directory to hold n subdirectories,
// rounded up to whole sectors.
func rootEntriesFor(n int) int {
	entries := n + 16
	perSector := fatfs.SectorSize / fatfs.DirEntrySize
	if r := entries % perSector; r != 0 {
		entries += perSector - r
	}
	return entries
}

// registerSpan registers an existing span as a named object. The image's
// object registry normally allocates; here the bytes already exist inside
// the FAT volume, so we register the span directly.
func registerSpan(img *mem.Image, name string, span mem.Span) (*mem.Object, error) {
	return img.RegisterObject(name, span)
}

// Popularity selects which directories a lookup may target.
type Popularity int

const (
	// Uniform picks uniformly over all directories (Fig. 4a).
	Uniform Popularity = iota
	// Oscillating alternates between the full set and a sixteenth of it
	// every OscillatePeriod (Fig. 4b: "the number of directories
	// accessed oscillates from the value represented on the x-axis to a
	// sixteenth of that value").
	Oscillating
	// Hotspot sends HotFraction of lookups to the first HotDirs
	// directories and the rest uniformly over the remainder; used by the
	// cache-replacement ablation (§6.2, working sets larger than on-chip
	// memory).
	Hotspot
	// UniformThenHotspot behaves as Uniform until PhaseShiftAt, then as
	// Hotspot — an adversarial schedule for placement policies that
	// cannot revise early decisions.
	UniformThenHotspot
)

// RunParams drive one measurement.
type RunParams struct {
	Threads int
	// Warmup runs before counters reset; Measure is the measured window.
	Warmup  sim.Cycles
	Measure sim.Cycles

	Popularity      Popularity
	OscillatePeriod sim.Cycles
	// OscillateDivisor is the shrink factor of the small phase (16 in
	// the paper).
	OscillateDivisor int

	// HotDirs and HotFraction configure Hotspot popularity.
	HotDirs     int
	HotFraction float64

	// PhaseShiftAt is when UniformThenHotspot switches distribution.
	PhaseShiftAt sim.Cycles

	// PerOpCompute is the fixed per-lookup computation (random number
	// generation, call overhead) in cycles.
	PerOpCompute float64

	// ReadOnly marks lookups as read-only operations, enabling the
	// replication extension to act on hot directories.
	ReadOnly bool

	Seed uint64
}

// DefaultRunParams returns the parameters used by the figure harnesses.
// The warmup must cover both CoreTime's placement phase and the flushing
// of pre-placement cache copies: measurements at AMD16 scale converge by
// ~12M cycles (6 ms of simulated time).
func DefaultRunParams() RunParams {
	return RunParams{
		Threads:          16,
		Warmup:           12_000_000,
		Measure:          6_000_000,
		Popularity:       Uniform,
		OscillatePeriod:  2_000_000,
		OscillateDivisor: 16,
		PerOpCompute:     60,
		Seed:             1,
	}
}

// WithDefaults returns p with unset fields replaced by their
// DefaultRunParams values. A fully zero RunParams becomes exactly
// DefaultRunParams(); a partially filled one keeps what the caller set and
// fills the rest field by field, so "I only chose the thread count" does
// not silently run a zero-length measurement. Warmup is left untouched —
// zero warmup is a legitimate configuration (Fig. 2 measures the warmup
// phase itself) — and a zero Seed is resolved later against the engine's
// base seed (see RunDirLookup). Experiment.Run and the sweep engine share
// this one code path, so the same cell measured either way gets identical
// parameters.
func (p RunParams) WithDefaults() RunParams {
	if p == (RunParams{}) {
		return DefaultRunParams()
	}
	d := DefaultRunParams()
	if p.Threads == 0 {
		p.Threads = d.Threads
	}
	if p.Measure == 0 {
		p.Measure = d.Measure
	}
	if p.OscillatePeriod == 0 {
		p.OscillatePeriod = d.OscillatePeriod
	}
	if p.OscillateDivisor == 0 {
		p.OscillateDivisor = d.OscillateDivisor
	}
	if p.PerOpCompute == 0 {
		p.PerOpCompute = d.PerOpCompute
	}
	return p
}

// masterRNG returns the generator a run's per-thread RNGs split from: the
// explicit RunParams.Seed when set, otherwise a stream derived from the
// engine's base seed (Engine.RNG), so runs seeded through the runtime
// (o2.WithSeed) stay deterministic without every caller threading a seed
// by hand.
func masterRNG(eng *sim.Engine, p RunParams) *stats.RNG {
	if p.Seed != 0 {
		return stats.NewRNG(p.Seed)
	}
	return eng.RNG(uint64(p.Popularity) + 1)
}

// Result is one measured point.
type Result struct {
	Resolutions uint64   // lookups completed inside the measured window
	PerThread   []uint64 // per-thread resolution counts
	Elapsed     sim.Cycles
	Scheduler   string

	// KResPerSec is the paper's y-axis: thousands of resolutions per
	// second of simulated time.
	KResPerSec float64

	// Migrations counts thread migrations during the measured window
	// (CoreTime only; 0 for the baseline).
	Migrations uint64
}

// RunDirLookup measures the directory-lookup workload under the given
// annotator (sched.ThreadScheduler for the baseline, *core.Runtime for
// CoreTime). The environment's caches and counters are flushed first, so
// an Env can be reused across runs.
func RunDirLookup(env *Env, ann sched.Annotator, p RunParams) Result {
	if p.Threads <= 0 {
		panic("workload: RunDirLookup needs at least one thread")
	}
	env.Mach.FlushAll()
	env.Mach.Counters().Reset()

	ncores := env.Mach.Config().NumCores()
	homes := sched.RoundRobin(p.Threads, ncores)
	measureStart := env.Eng.Now() + p.Warmup
	deadline := measureStart + p.Measure

	counts := make([]uint64, p.Threads)
	var migBase uint64
	rngs := make([]*stats.RNG, p.Threads)
	master := masterRNG(env.Eng, p)
	for i := range rngs {
		rngs[i] = master.Split()
	}

	divisor := p.OscillateDivisor
	if divisor <= 0 {
		divisor = 16
	}

	for i := 0; i < p.Threads; i++ {
		i := i
		env.Sys.Go(fmt.Sprintf("thread %d", i), homes[i], func(t *exec.Thread) {
			rng := rngs[i]
			b := t.Batch() // reused across lookups: empty between Commits
			for t.Now() < deadline {
				d := env.Dirs[pickDir(rng, env, p, divisor, t.Now())]
				name := d.Names[rng.Intn(len(d.Names))]

				t.Compute(sim.Cycles(p.PerOpCompute))
				if p.ReadOnly {
					sched.OpStartRO(ann, t, d.Obj.Base)
				} else {
					ann.OpStart(t, d.Obj.Base)
				}
				t.Lock(d.Lock)
				if _, err := env.FS.Lookup(b, d.Dir, name); err != nil {
					panic(fmt.Sprintf("workload: lookup %s: %v", name, err))
				}
				b.Commit()
				t.Unlock(d.Lock)
				ann.OpEnd(t)

				if t.Now() >= measureStart && t.Now() <= deadline {
					counts[i]++
				}
				t.Yield()
			}
		})
	}

	// Reset machine counters at the start of the measured window so the
	// monitor and reports see steady-state numbers.
	env.Eng.At(measureStart, func() {
		env.Sys.FlushIdleAccounting()
		var migs uint64
		for c := 0; c < ncores; c++ {
			migs += env.Mach.Counters().Snapshot(c).MigrationsIn
		}
		migBase = migs
	})

	env.Eng.Run(0)

	var total uint64
	for _, c := range counts {
		total += c
	}
	var migs uint64
	for c := 0; c < ncores; c++ {
		migs += env.Mach.Counters().Snapshot(c).MigrationsIn
	}
	clock := env.Mach.Config().ClockHz
	seconds := float64(p.Measure) / clock
	return Result{
		Resolutions: total,
		PerThread:   counts,
		Elapsed:     p.Measure,
		Scheduler:   ann.Name(),
		KResPerSec:  float64(total) / seconds / 1000,
		Migrations:  migs - migBase,
	}
}

// pickDir implements the popularity distributions.
func pickDir(rng *stats.RNG, env *Env, p RunParams, divisor int, now sim.Time) int {
	n := len(env.Dirs)
	switch p.Popularity {
	case Oscillating:
		if p.OscillatePeriod > 0 {
			phase := (uint64(now) / uint64(p.OscillatePeriod)) % 2
			if phase == 1 {
				small := n / divisor
				if small < 1 {
					small = 1
				}
				return rng.Intn(small)
			}
		}
	case Hotspot:
		return pickHot(rng, n, p)
	case UniformThenHotspot:
		if now >= p.PhaseShiftAt {
			return pickHot(rng, n, p)
		}
	}
	return rng.Intn(n)
}

func pickHot(rng *stats.RNG, n int, p RunParams) int {
	hot := p.HotDirs
	if hot < 1 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	if rng.Float64() < p.HotFraction {
		return rng.Intn(hot)
	}
	if n > hot {
		return hot + rng.Intn(n-hot)
	}
	return rng.Intn(n)
}
