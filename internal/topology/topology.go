// Package topology describes the geometry of a simulated multicore machine:
// how many chips and cores it has, the cache hierarchy attached to each,
// the physical placement of chips on an interconnect grid, and the access
// latencies between levels.
//
// The package is pure description — it owns no simulation state — so both
// the machine model and the CoreTime scheduler can consult it freely.
package topology

import (
	"fmt"

	"repro/internal/sim"
)

// CacheGeom describes one cache: total capacity, line size, and
// associativity. Sizes are in bytes.
type CacheGeom struct {
	Size     int
	LineSize int
	Assoc    int
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeom) Sets() int {
	lines := g.Size / g.LineSize
	if g.Assoc <= 0 || lines == 0 {
		return 0
	}
	return lines / g.Assoc
}

// Validate reports a descriptive error when the geometry is unusable.
func (g CacheGeom) Validate(name string) error {
	switch {
	case g.Size <= 0:
		return fmt.Errorf("topology: %s size %d must be positive", name, g.Size)
	case g.LineSize <= 0 || g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("topology: %s line size %d must be a positive power of two", name, g.LineSize)
	case g.Size%g.LineSize != 0:
		return fmt.Errorf("topology: %s size %d not a multiple of line size %d", name, g.Size, g.LineSize)
	case g.Assoc <= 0:
		return fmt.Errorf("topology: %s associativity %d must be positive", name, g.Assoc)
	case (g.Size/g.LineSize)%g.Assoc != 0:
		return fmt.Errorf("topology: %s lines %d not divisible by associativity %d",
			name, g.Size/g.LineSize, g.Assoc)
	case g.Sets()&(g.Sets()-1) != 0:
		return fmt.Errorf("topology: %s set count %d must be a power of two", name, g.Sets())
	}
	return nil
}

// Latencies holds the access costs of the memory system, in cycles. The
// defaults reproduce the numbers the paper measured on its 16-core AMD
// machine (§5): L1 3, L2 14, L3 75; remote fetches from 127 cycles
// (cache of a core on the same chip) to 336 cycles (most distant DRAM bank).
type Latencies struct {
	L1Hit sim.Cycles // local L1 hit
	L2Hit sim.Cycles // local L2 hit
	L3Hit sim.Cycles // hit in the chip's shared L3

	// RemoteCacheSameChip is the cost of fetching a line from another
	// core's cache on the same chip.
	RemoteCacheSameChip sim.Cycles
	// RemoteCachePerHop is added per interconnect hop when the line comes
	// from a cache on another chip.
	RemoteCachePerHop sim.Cycles

	// DRAMLocal is the cost of a load from the chip-local DRAM bank;
	// DRAMPerHop is added per hop to a remote bank. With the AMD defaults
	// the most distant bank (2 hops on the 2×2 grid) costs 336 cycles.
	DRAMLocal  sim.Cycles
	DRAMPerHop sim.Cycles

	// DRAMServiceInterval is the minimum spacing between line transfers a
	// single memory controller can sustain; demand beyond that queues.
	// It is the knob that models limited off-chip bandwidth.
	DRAMServiceInterval sim.Cycles

	// LinkServiceInterval is the minimum spacing between line transfers
	// one chip's interconnect port can sustain. Cross-socket fetches
	// (remote-cache sourcing and remote-home DRAM fills) queue at the
	// source chip's port when traffic exceeds it. Zero disables
	// interconnect metering entirely — the pre-NUMA presets keep it zero,
	// so their results are untouched by the bandwidth model.
	LinkServiceInterval sim.Cycles

	// SaturatingBW selects deficit-carry bandwidth accounting: demand a
	// window leaves unserved rolls into later windows as backlog, so
	// sustained overload builds queueing delay instead of resetting at
	// every window boundary. Off (the default, and the pre-NUMA presets'
	// setting) keeps the legacy window-local accounting bit for bit.
	SaturatingBW bool

	// InvalidateCost is added to a store that must invalidate remote
	// sharers (coherence broadcast on the interconnect).
	InvalidateCost sim.Cycles
}

// Config describes a whole machine.
type Config struct {
	Name         string
	Chips        int
	CoresPerChip int

	// GridW×GridH arranges chips on a rectangular interconnect; hop
	// distance between chips is the Manhattan distance between their grid
	// positions (the paper's machine is a 2×2 "square interconnect").
	GridW, GridH int

	L1 CacheGeom // per core
	L2 CacheGeom // per core
	L3 CacheGeom // per chip, shared by its cores

	Lat Latencies

	// ClockHz converts simulated cycles to seconds when reporting
	// throughput (the paper's machine runs at 2 GHz).
	ClockHz float64

	// CoreSpeed optionally scales per-core compute cost: cycle charges on
	// core i are multiplied by CoreSpeed[i]. Empty means all cores run at
	// speed 1.0. Used by the heterogeneous-cores ablation (§6.1).
	CoreSpeed []float64
}

// AMDLatencies returns the latencies measured in the paper.
func AMDLatencies() Latencies {
	return Latencies{
		L1Hit:               3,
		L2Hit:               14,
		L3Hit:               75,
		RemoteCacheSameChip: 127,
		RemoteCachePerHop:   50, // 177 at one hop, 227 across the diagonal
		DRAMLocal:           230,
		DRAMPerHop:          53, // 336 to the most distant bank, as measured
		DRAMServiceInterval: 16, // ~8 GB/s per controller at 2 GHz, 64 B lines
		InvalidateCost:      40,
	}
}

// NUMALatencies returns the latency set of the big-machine NUMA presets:
// the paper's measured AMD latencies plus a modeled interconnect port
// (LinkServiceInterval 8 ≈ 16 GB/s per port at 2 GHz and 64 B lines) and
// saturating deficit-carry accounting on both the memory controllers and
// the ports — at 64+ cores sustained overload, not per-window burstiness,
// is the regime of interest.
func NUMALatencies() Latencies {
	l := AMDLatencies()
	l.LinkServiceInterval = 8
	l.SaturatingBW = true
	return l
}

// numaConfig builds one member of the NUMA preset family: 8-core sockets
// with AMD-style private caches and a large 8 MB shared victim L3 per
// socket, on a gw×gh interconnect grid.
func numaConfig(name string, chips, gw, gh int) Config {
	return Config{
		Name:         name,
		Chips:        chips,
		CoresPerChip: 8,
		GridW:        gw,
		GridH:        gh,
		L1:           CacheGeom{Size: 64 << 10, LineSize: 64, Assoc: 2},
		L2:           CacheGeom{Size: 512 << 10, LineSize: 64, Assoc: 16},
		L3:           CacheGeom{Size: 8 << 20, LineSize: 64, Assoc: 32},
		Lat:          NUMALatencies(),
		ClockHz:      2e9,
	}
}

// NUMA64 returns a 64-core NUMA machine: eight 8-core sockets on a 4×2
// grid, per-core 64 KB L1 and 512 KB L2, per-socket 8 MB shared victim
// L3, with socket-local vs remote DRAM distance and bandwidth modeled
// (saturating memory controllers and interconnect ports; see
// NUMALatencies). The smallest machine of the scale sweep's NUMA family.
func NUMA64() Config { return numaConfig("numa64", 8, 4, 2) }

// NUMA128 returns a 128-core NUMA machine: sixteen 8-core sockets on a
// 4×4 grid, otherwise identical per-socket resources to NUMA64. Twice the
// cores share the same per-socket DRAM and link bandwidth, so bandwidth
// binds earlier.
func NUMA128() Config { return numaConfig("numa128", 16, 4, 4) }

// NUMA256 returns a 256-core NUMA machine: thirty-two 8-core sockets on
// an 8×4 grid — the scale target of the big-machine experiments. Its 288
// directory nodes exercise the multi-word sharer bitset; hop distances
// reach 10, so placement and bandwidth both matter.
func NUMA256() Config { return numaConfig("numa256", 32, 8, 4) }

// AMD16 returns the paper's evaluation machine: four quad-core 2 GHz
// Opteron chips on a square interconnect; per-core 64 KB L1 and 512 KB L2,
// per-chip 2 MB shared (victim) L3. Total on-chip capacity relevant to the
// benchmark: 4×2 MB L3 + 16×512 KB L2 = 16 MB (§5).
func AMD16() Config {
	return Config{
		Name:         "amd16",
		Chips:        4,
		CoresPerChip: 4,
		GridW:        2,
		GridH:        2,
		L1:           CacheGeom{Size: 64 << 10, LineSize: 64, Assoc: 2},
		L2:           CacheGeom{Size: 512 << 10, LineSize: 64, Assoc: 16},
		L3:           CacheGeom{Size: 2 << 20, LineSize: 64, Assoc: 32},
		Lat:          AMDLatencies(),
		ClockHz:      2e9,
	}
}

// Tiny8 returns an 8-core, 4-chip machine with kilobyte-scale caches: the
// smallest configuration that still exhibits the paper's core effect
// (per-chip duplication of shared data), at a fraction of the simulation
// cost of AMD16. Used by tests and the quickstart example.
func Tiny8() Config {
	return Config{
		Name:         "tiny8",
		Chips:        4,
		CoresPerChip: 2,
		GridW:        2,
		GridH:        2,
		L1:           CacheGeom{Size: 1 << 10, LineSize: 64, Assoc: 2},
		L2:           CacheGeom{Size: 16 << 10, LineSize: 64, Assoc: 8},
		L3:           CacheGeom{Size: 32 << 10, LineSize: 64, Assoc: 8},
		Lat:          AMDLatencies(),
		ClockHz:      2e9,
	}
}

// Small returns a 4-core single-chip machine with tiny caches, convenient
// for unit tests and the quickstart example: effects like capacity misses
// appear at kilobyte scale instead of megabyte scale.
func Small() Config {
	return Config{
		Name:         "small4",
		Chips:        1,
		CoresPerChip: 4,
		GridW:        1,
		GridH:        1,
		L1:           CacheGeom{Size: 1 << 10, LineSize: 64, Assoc: 2},
		L2:           CacheGeom{Size: 8 << 10, LineSize: 64, Assoc: 4},
		L3:           CacheGeom{Size: 32 << 10, LineSize: 64, Assoc: 8},
		Lat:          AMDLatencies(),
		ClockHz:      2e9,
	}
}

// NumCores returns the total number of cores.
func (c Config) NumCores() int { return c.Chips * c.CoresPerChip }

// ChipOf returns the chip that core belongs to.
func (c Config) ChipOf(core int) int { return core / c.CoresPerChip }

// ChipTable returns a freshly allocated core→chip lookup table:
// table[core] == ChipOf(core). Monitors that roll per-core counters up to
// per-socket totals every rebalance interval build this once and index it
// on the hot path instead of re-deriving the division.
func (c Config) ChipTable() []int {
	table := make([]int, c.NumCores())
	for core := range table {
		table[core] = c.ChipOf(core)
	}
	return table
}

// CoresOf returns the core IDs belonging to chip, in ascending order.
func (c Config) CoresOf(chip int) []int {
	cores := make([]int, c.CoresPerChip)
	for i := range cores {
		cores[i] = chip*c.CoresPerChip + i
	}
	return cores
}

// SpeedOf returns the cycle-cost multiplier of core (1.0 when homogeneous).
func (c Config) SpeedOf(core int) float64 {
	if core < len(c.CoreSpeed) && c.CoreSpeed[core] > 0 {
		return c.CoreSpeed[core]
	}
	return 1.0
}

// HopDistance returns the Manhattan distance between two chips on the grid.
func (c Config) HopDistance(chipA, chipB int) int {
	ax, ay := chipA%c.GridW, chipA/c.GridW
	bx, by := chipB%c.GridW, chipB/c.GridW
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// RemoteCacheLatency returns the cost for a core on chip `from` to fetch a
// line held in a cache on chip `holder`.
func (c Config) RemoteCacheLatency(from, holder int) sim.Cycles {
	if from == holder {
		return c.Lat.RemoteCacheSameChip
	}
	hops := c.HopDistance(from, holder)
	return c.Lat.RemoteCacheSameChip + sim.Cycles(hops)*c.Lat.RemoteCachePerHop
}

// DRAMLatency returns the raw (uncontended) cost for a core on chip `from`
// to load a line whose home DRAM bank is on chip `home`.
func (c Config) DRAMLatency(from, home int) sim.Cycles {
	hops := c.HopDistance(from, home)
	return c.Lat.DRAMLocal + sim.Cycles(hops)*c.Lat.DRAMPerHop
}

// TotalOnChipBytes returns the aggregate cache capacity an O2 scheduler can
// pack objects into: every L2 plus every L3 (L1s are too small and too
// volatile to count, matching the paper's 16 MB arithmetic).
func (c Config) TotalOnChipBytes() int {
	return c.NumCores()*c.L2.Size + c.Chips*c.L3.Size
}

// PerCoreBudgetBytes returns the cache capacity attributable to one core:
// its private L2 plus an equal share of its chip's L3. This is the budget
// the cache-packing algorithm fills.
func (c Config) PerCoreBudgetBytes() int {
	return c.L2.Size + c.L3.Size/c.CoresPerChip
}

// Validate reports a descriptive error when the configuration is unusable.
func (c Config) Validate() error {
	switch {
	case c.Chips <= 0 || c.CoresPerChip <= 0:
		return fmt.Errorf("topology: need at least one chip and one core per chip, got %d×%d",
			c.Chips, c.CoresPerChip)
	case c.GridW*c.GridH != c.Chips:
		return fmt.Errorf("topology: grid %d×%d does not hold %d chips", c.GridW, c.GridH, c.Chips)
	case c.ClockHz <= 0:
		return fmt.Errorf("topology: clock %v Hz must be positive", c.ClockHz)
	}
	if err := c.L1.Validate("L1"); err != nil {
		return err
	}
	if err := c.L2.Validate("L2"); err != nil {
		return err
	}
	if err := c.L3.Validate("L3"); err != nil {
		return err
	}
	if c.L1.LineSize != c.L2.LineSize || c.L2.LineSize != c.L3.LineSize {
		return fmt.Errorf("topology: cache levels must share a line size (got %d/%d/%d)",
			c.L1.LineSize, c.L2.LineSize, c.L3.LineSize)
	}
	if len(c.CoreSpeed) != 0 && len(c.CoreSpeed) != c.NumCores() {
		return fmt.Errorf("topology: CoreSpeed has %d entries for %d cores",
			len(c.CoreSpeed), c.NumCores())
	}
	return nil
}
