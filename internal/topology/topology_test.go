package topology

import (
	"testing"
	"testing/quick"
)

func TestAMD16Valid(t *testing.T) {
	c := AMD16()
	if err := c.Validate(); err != nil {
		t.Fatalf("AMD16 invalid: %v", err)
	}
	if c.NumCores() != 16 {
		t.Errorf("NumCores = %d, want 16", c.NumCores())
	}
	// Paper §5: total cache space is 16 MB.
	if got := c.TotalOnChipBytes(); got != 16<<20 {
		t.Errorf("TotalOnChipBytes = %d, want %d", got, 16<<20)
	}
}

func TestSmallValid(t *testing.T) {
	if err := Small().Validate(); err != nil {
		t.Fatalf("Small invalid: %v", err)
	}
}

func TestPaperLatencies(t *testing.T) {
	c := AMD16()
	if c.Lat.L1Hit != 3 || c.Lat.L2Hit != 14 || c.Lat.L3Hit != 75 {
		t.Errorf("local latencies %d/%d/%d, want 3/14/75",
			c.Lat.L1Hit, c.Lat.L2Hit, c.Lat.L3Hit)
	}
	// Remote fetch from a cache on the same chip: 127 cycles.
	if got := c.RemoteCacheLatency(0, 0); got != 127 {
		t.Errorf("same-chip remote cache = %d, want 127", got)
	}
	// Most distant DRAM bank (diagonal, 2 hops): 336 cycles.
	if got := c.DRAMLatency(0, 3); got != 336 {
		t.Errorf("most distant DRAM = %d, want 336", got)
	}
	if got := c.DRAMLatency(0, 0); got != 230 {
		t.Errorf("local DRAM = %d, want 230", got)
	}
}

func TestChipOfAndCoresOf(t *testing.T) {
	c := AMD16()
	for chip := 0; chip < c.Chips; chip++ {
		for _, core := range c.CoresOf(chip) {
			if c.ChipOf(core) != chip {
				t.Fatalf("core %d: ChipOf = %d, want %d", core, c.ChipOf(core), chip)
			}
		}
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	c := AMD16()
	f := func(a, b uint8) bool {
		ca, cb := int(a)%c.Chips, int(b)%c.Chips
		return c.HopDistance(ca, cb) == c.HopDistance(cb, ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistanceIdentityAndTriangle(t *testing.T) {
	c := AMD16()
	for a := 0; a < c.Chips; a++ {
		if c.HopDistance(a, a) != 0 {
			t.Fatalf("HopDistance(%d,%d) != 0", a, a)
		}
		for b := 0; b < c.Chips; b++ {
			for m := 0; m < c.Chips; m++ {
				if c.HopDistance(a, b) > c.HopDistance(a, m)+c.HopDistance(m, b) {
					t.Fatalf("triangle inequality violated for %d,%d via %d", a, b, m)
				}
			}
		}
	}
}

func TestRemoteLatencyMonotoneInDistance(t *testing.T) {
	c := AMD16()
	// 0 and 3 are diagonal (2 hops) on the 2x2 grid; 0 and 1 adjacent.
	if !(c.RemoteCacheLatency(0, 0) < c.RemoteCacheLatency(0, 1) &&
		c.RemoteCacheLatency(0, 1) < c.RemoteCacheLatency(0, 3)) {
		t.Error("remote cache latency should increase with hop distance")
	}
	if !(c.DRAMLatency(0, 0) < c.DRAMLatency(0, 1) && c.DRAMLatency(0, 1) < c.DRAMLatency(0, 3)) {
		t.Error("DRAM latency should increase with hop distance")
	}
}

func TestRemoteRangeMatchesPaper(t *testing.T) {
	// §5: "Remote fetch latencies vary from 127 cycles ... to 336 cycles".
	c := AMD16()
	min, max := c.RemoteCacheLatency(0, 0), c.DRAMLatency(0, 3)
	if min != 127 || max != 336 {
		t.Errorf("remote latency range [%d,%d], want [127,336]", min, max)
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{Size: 64 << 10, LineSize: 64, Assoc: 2}
	if got := g.Sets(); got != 512 {
		t.Errorf("Sets = %d, want 512", got)
	}
}

func TestCacheGeomValidate(t *testing.T) {
	bad := []CacheGeom{
		{Size: 0, LineSize: 64, Assoc: 2},
		{Size: 1024, LineSize: 0, Assoc: 2},
		{Size: 1024, LineSize: 48, Assoc: 2},  // not a power of two
		{Size: 1000, LineSize: 64, Assoc: 2},  // size not multiple of line
		{Size: 1024, LineSize: 64, Assoc: 0},  // bad assoc
		{Size: 1024, LineSize: 64, Assoc: 5},  // lines not divisible
		{Size: 3072, LineSize: 64, Assoc: 16}, // sets not power of two
	}
	for i, g := range bad {
		if err := g.Validate("test"); err == nil {
			t.Errorf("case %d: expected error for %+v", i, g)
		}
	}
	good := CacheGeom{Size: 1024, LineSize: 64, Assoc: 2}
	if err := good.Validate("test"); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestConfigValidateCatchesMistakes(t *testing.T) {
	c := AMD16()
	c.GridW = 3
	if err := c.Validate(); err == nil {
		t.Error("mismatched grid accepted")
	}

	c = AMD16()
	c.L1.LineSize = 128
	if err := c.Validate(); err == nil {
		t.Error("mismatched line sizes accepted")
	}

	c = AMD16()
	c.CoreSpeed = []float64{1, 2}
	if err := c.Validate(); err == nil {
		t.Error("short CoreSpeed accepted")
	}

	c = AMD16()
	c.ClockHz = 0
	if err := c.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestSpeedOfDefaults(t *testing.T) {
	c := AMD16()
	if c.SpeedOf(5) != 1.0 {
		t.Error("homogeneous machine should report speed 1.0")
	}
	c.CoreSpeed = make([]float64, 16)
	for i := range c.CoreSpeed {
		c.CoreSpeed[i] = 1
	}
	c.CoreSpeed[3] = 2
	if c.SpeedOf(3) != 2.0 || c.SpeedOf(4) != 1.0 {
		t.Error("CoreSpeed not honored")
	}
}

func TestPerCoreBudget(t *testing.T) {
	c := AMD16()
	want := 512<<10 + (2<<20)/4 // L2 + share of L3 = 1 MB
	if got := c.PerCoreBudgetBytes(); got != want {
		t.Errorf("PerCoreBudgetBytes = %d, want %d", got, want)
	}
	// Sum of per-core budgets equals the total packable capacity.
	if got := c.PerCoreBudgetBytes() * c.NumCores(); got != c.TotalOnChipBytes() {
		t.Errorf("budgets sum to %d, want %d", got, c.TotalOnChipBytes())
	}
}
