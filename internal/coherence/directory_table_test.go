package coherence

import (
	"math/bits"
	"testing"

	"repro/internal/cache"
	"repro/internal/stats"
)

// These tests pin the directory's observable semantics ahead of (and
// through) the open-addressed table rewrite: any change to sharer
// bookkeeping, invalidation fan-out, dirty-owner transfer, or replicated
// read-only lines shows up here before it can disturb simulation results.

// dirOp is one scripted directory operation for the table-driven tests.
type dirOp struct {
	op   string // "add", "own", "remove", "move", "invalidate"
	line cache.Line
	node Node
	to   Node // move only
}

func applyOps(t *testing.T, d *Directory, ops []dirOp) {
	t.Helper()
	for _, o := range ops {
		switch o.op {
		case "add":
			d.AddSharer(o.line, o.node)
		case "own":
			d.SetOwner(o.line, o.node)
		case "remove":
			d.RemoveSharer(o.line, o.node)
		case "move":
			d.MoveSharer(o.line, o.node, o.to)
		case "invalidate":
			d.InvalidateExcept(o.line, o.node)
		default:
			t.Fatalf("unknown op %q", o.op)
		}
	}
}

func TestSharerAddRemoveTable(t *testing.T) {
	cases := []struct {
		name    string
		ops     []dirOp
		line    cache.Line
		holders []Node
		owner   Node
		tracked int
	}{
		{
			name: "single clean holder",
			ops:  []dirOp{{op: "add", line: 5, node: 2}},
			line: 5, holders: []Node{2}, owner: NoOwner, tracked: 1,
		},
		{
			name: "add is idempotent",
			ops: []dirOp{
				{op: "add", line: 5, node: 2},
				{op: "add", line: 5, node: 2},
			},
			line: 5, holders: []Node{2}, owner: NoOwner, tracked: 1,
		},
		{
			name: "many holders accumulate",
			ops: []dirOp{
				{op: "add", line: 9, node: 0},
				{op: "add", line: 9, node: 7},
				{op: "add", line: 9, node: 3},
			},
			line: 9, holders: []Node{0, 3, 7}, owner: NoOwner, tracked: 1,
		},
		{
			name: "remove middle holder keeps the rest",
			ops: []dirOp{
				{op: "add", line: 9, node: 0},
				{op: "add", line: 9, node: 3},
				{op: "add", line: 9, node: 7},
				{op: "remove", line: 9, node: 3},
			},
			line: 9, holders: []Node{0, 7}, owner: NoOwner, tracked: 1,
		},
		{
			name: "last removal drops the entry",
			ops: []dirOp{
				{op: "add", line: 1, node: 4},
				{op: "remove", line: 1, node: 4},
			},
			line: 1, holders: nil, owner: NoOwner, tracked: 0,
		},
		{
			name: "remove on untracked line is a no-op",
			ops:  []dirOp{{op: "remove", line: 2, node: 1}},
			line: 2, holders: nil, owner: NoOwner, tracked: 0,
		},
		{
			name: "owner removal clears ownership but not other holders",
			ops: []dirOp{
				{op: "add", line: 6, node: 1},
				{op: "own", line: 6, node: 2},
				{op: "remove", line: 6, node: 2},
			},
			line: 6, holders: []Node{1}, owner: NoOwner, tracked: 1,
		},
		{
			name: "line zero is a valid tracked line",
			ops:  []dirOp{{op: "own", line: 0, node: 0}},
			line: 0, holders: []Node{0}, owner: 0, tracked: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDirectory(8)
			applyOps(t, d, tc.ops)
			checkLine(t, d, tc.line, tc.holders, tc.owner)
			if got := d.TrackedLines(); got != tc.tracked {
				t.Errorf("TrackedLines = %d, want %d", got, tc.tracked)
			}
		})
	}
}

func TestInvalidationFanOutTable(t *testing.T) {
	cases := []struct {
		name        string
		setup       []dirOp
		keep        Node
		invalidated []Node // must be ascending: machine applies them in order
		holders     []Node
		owner       Node
		tracked     int
	}{
		{
			name: "writer among many sharers keeps only itself",
			setup: []dirOp{
				{op: "add", line: 3, node: 0},
				{op: "add", line: 3, node: 2},
				{op: "add", line: 3, node: 5},
				{op: "add", line: 3, node: 7},
			},
			keep: 2, invalidated: []Node{0, 5, 7}, holders: []Node{2}, owner: NoOwner, tracked: 1,
		},
		{
			name: "sole holder invalidates nobody",
			setup: []dirOp{
				{op: "add", line: 3, node: 4},
			},
			keep: 4, invalidated: nil, holders: []Node{4}, owner: NoOwner, tracked: 1,
		},
		{
			name: "dirty owner elsewhere is invalidated and ownership cleared",
			setup: []dirOp{
				{op: "add", line: 3, node: 1},
				{op: "own", line: 3, node: 6},
			},
			keep: 1, invalidated: []Node{6}, holders: []Node{1}, owner: NoOwner, tracked: 1,
		},
		{
			name: "keep node already the owner retains ownership",
			setup: []dirOp{
				{op: "add", line: 3, node: 1},
				{op: "own", line: 3, node: 2},
			},
			keep: 2, invalidated: []Node{1}, holders: []Node{2}, owner: 2, tracked: 1,
		},
		{
			name: "non-holder keep drops the line entirely",
			setup: []dirOp{
				{op: "add", line: 3, node: 0},
				{op: "add", line: 3, node: 1},
			},
			keep: 5, invalidated: []Node{0, 1}, holders: nil, owner: NoOwner, tracked: 0,
		},
		{
			name:  "untracked line invalidates nobody",
			setup: nil,
			keep:  0, invalidated: nil, holders: nil, owner: NoOwner, tracked: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDirectory(8)
			applyOps(t, d, tc.setup)
			got := d.InvalidateExcept(3, tc.keep)
			if len(got) != len(tc.invalidated) {
				t.Fatalf("invalidated %v, want %v", got, tc.invalidated)
			}
			for i := range got {
				if got[i] != tc.invalidated[i] {
					t.Fatalf("invalidated %v, want %v (order matters: fan-out applies in ascending node order)", got, tc.invalidated)
				}
			}
			checkLine(t, d, 3, tc.holders, tc.owner)
			if d.TrackedLines() != tc.tracked {
				t.Errorf("TrackedLines = %d, want %d", d.TrackedLines(), tc.tracked)
			}
		})
	}
}

// TestDirtyOwnerWritebackOrdering walks a dirty line through the exact
// sequence the machine model performs on eviction: the owning core's L2
// victim moves into the chip's L3 (ownership travels with it), and a later
// L3 eviction writes the line back to DRAM, dropping the entry. The
// intermediate states are what CheckInvariants depends on.
func TestDirtyOwnerWritebackOrdering(t *testing.T) {
	const (
		coreA  = Node(0)
		coreB  = Node(1)
		l3Node = Node(6) // chip L3 in a 4-core + 2-chip layout
	)
	d := NewDirectory(8)
	l := cache.Line(77)

	// Core A writes the line: dirty, sole holder.
	d.SetOwner(l, coreA)
	checkLine(t, d, l, []Node{coreA}, coreA)

	// Core B picks up a shared copy (MOESI: owner keeps the dirty line).
	d.AddSharer(l, coreB)
	checkLine(t, d, l, []Node{coreA, coreB}, coreA)

	// A's L2 evicts the victim into the chip's L3: ownership must move,
	// B's clean copy must survive.
	d.MoveSharer(l, coreA, l3Node)
	checkLine(t, d, l, []Node{coreB, l3Node}, l3Node)

	// B evicts silently (clean copy): the dirty L3 copy remains owner.
	d.RemoveSharer(l, coreB)
	checkLine(t, d, l, []Node{l3Node}, l3Node)

	// The L3 evicts: writeback to DRAM, entry dropped.
	d.RemoveSharer(l, l3Node)
	checkLine(t, d, l, nil, NoOwner)
	if d.TrackedLines() != 0 {
		t.Fatalf("TrackedLines = %d after writeback, want 0", d.TrackedLines())
	}
}

// TestReplicatedReadOnlyLines pins the shape the replication extension
// relies on: a line read by many nodes is Shared (many holders, no owner),
// counts every replica, and a single write collapses the replica set.
func TestReplicatedReadOnlyLines(t *testing.T) {
	d := NewDirectory(20) // AMD16 layout: 16 cores + 4 chip L3s
	l := cache.Line(123)
	replicas := []Node{0, 4, 8, 12, 16, 19}
	for _, n := range replicas {
		d.AddSharer(l, n)
	}
	if got := d.SharerCount(l); got != len(replicas) {
		t.Fatalf("SharerCount = %d, want %d", got, len(replicas))
	}
	if d.Owner(l) != NoOwner {
		t.Fatal("replicated read-only line must have no dirty owner")
	}
	checkLine(t, d, l, replicas, NoOwner)

	// A write from node 4 invalidates every other replica in one fan-out.
	inv := d.InvalidateExcept(l, 4)
	want := []Node{0, 8, 12, 16, 19}
	if len(inv) != len(want) {
		t.Fatalf("collapse invalidated %v, want %v", inv, want)
	}
	for i := range want {
		if inv[i] != want[i] {
			t.Fatalf("collapse invalidated %v, want %v", inv, want)
		}
	}
	d.SetOwner(l, 4)
	checkLine(t, d, l, []Node{4}, 4)
}

// TestDirectoryMatchesModel drives the directory and a map-based reference
// model through a long random schedule over enough distinct lines to force
// table growth and deletion-heavy churn, then checks full agreement. This
// is the heavyweight pin for the open-addressed rewrite.
func TestDirectoryMatchesModel(t *testing.T) {
	const (
		nodes  = 20
		nlines = 4096
		nops   = 200_000
	)
	type ref struct {
		holders uint64
		owner   Node
	}
	model := make(map[cache.Line]*ref)
	get := func(l cache.Line) *ref {
		r := model[l]
		if r == nil {
			r = &ref{owner: NoOwner}
			model[l] = r
		}
		return r
	}
	d := NewDirectory(nodes)
	rng := stats.NewRNG(0xC0FFEE)
	for i := 0; i < nops; i++ {
		l := cache.Line(rng.Intn(nlines))
		n := Node(rng.Intn(nodes))
		switch rng.Intn(6) {
		case 0, 1:
			d.AddSharer(l, n)
			get(l).holders |= 1 << uint(n)
		case 2:
			d.SetOwner(l, n)
			r := get(l)
			r.holders |= 1 << uint(n)
			r.owner = n
		case 3:
			d.RemoveSharer(l, n)
			if r := model[l]; r != nil {
				r.holders &^= 1 << uint(n)
				if r.owner == n {
					r.owner = NoOwner
				}
				if r.holders == 0 {
					delete(model, l)
				}
			}
		case 4:
			to := Node(rng.Intn(nodes))
			d.MoveSharer(l, n, to)
			r := model[l]
			if r == nil || r.holders&(1<<uint(n)) == 0 {
				get(l).holders |= 1 << uint(to)
			} else {
				wasOwner := r.owner == n
				r.holders &^= 1 << uint(n)
				r.holders |= 1 << uint(to)
				if wasOwner {
					r.owner = to
				}
			}
		case 5:
			d.InvalidateExcept(l, n)
			if r := model[l]; r != nil {
				r.holders &= 1 << uint(n)
				if r.owner != n {
					r.owner = NoOwner
				}
				if r.holders == 0 {
					delete(model, l)
				}
			}
		}
	}

	if d.TrackedLines() != len(model) {
		t.Fatalf("TrackedLines = %d, model tracks %d", d.TrackedLines(), len(model))
	}
	for l, r := range model {
		if got := d.HolderMask(l); got != r.holders {
			t.Fatalf("line %d: HolderMask = %#x, model %#x", l, got, r.holders)
		}
		if got := d.Owner(l); got != r.owner {
			t.Fatalf("line %d: Owner = %d, model %d", l, got, r.owner)
		}
	}
	// And every line the directory claims not to track really is untracked.
	for l := cache.Line(0); l < nlines; l++ {
		if _, ok := model[l]; !ok && d.HolderMask(l) != 0 {
			t.Fatalf("line %d: directory tracks a line the model dropped", l)
		}
	}
}

// checkLine asserts holders (ascending), mask, count, and owner agree.
func checkLine(t *testing.T, d *Directory, l cache.Line, holders []Node, owner Node) {
	t.Helper()
	hs := d.Holders(l)
	if len(hs) != len(holders) {
		t.Fatalf("line %d: Holders = %v, want %v", l, hs, holders)
	}
	var mask uint64
	for i := range holders {
		if hs[i] != holders[i] {
			t.Fatalf("line %d: Holders = %v, want %v", l, hs, holders)
		}
		mask |= 1 << uint(holders[i])
	}
	if got := d.HolderMask(l); got != mask {
		t.Fatalf("line %d: HolderMask = %#x, want %#x", l, got, mask)
	}
	if got := d.SharerCount(l); got != bits.OnesCount64(mask) {
		t.Fatalf("line %d: SharerCount = %d, want %d", l, got, bits.OnesCount64(mask))
	}
	if got := d.Owner(l); got != owner {
		t.Fatalf("line %d: Owner = %d, want %d", l, got, owner)
	}
	for _, n := range holders {
		if !d.Holds(l, n) {
			t.Fatalf("line %d: Holds(%d) = false, want true", l, n)
		}
	}
}
