package coherence

import (
	"testing"

	"repro/internal/cache"
)

// benchLines is sized like a busy Tiny8 run: a few thousand simultaneously
// tracked lines, far more lines cycled through over time.
const benchLines = 4096

func populatedDirectory() *Directory {
	d := NewDirectory(20)
	for i := 0; i < benchLines; i++ {
		l := cache.Line(i * 3) // stride so line numbers aren't dense
		d.AddSharer(l, Node(i%16))
		if i%4 == 0 {
			d.AddSharer(l, Node(16+i%4))
		}
	}
	return d
}

// BenchmarkDirectoryLookup measures the read probe the machine model issues
// on every miss (HolderMask) against a populated directory.
func BenchmarkDirectoryLookup(b *testing.B) {
	d := populatedDirectory()
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += d.HolderMask(cache.Line((i % benchLines) * 3))
	}
	benchSink = sink
}

// BenchmarkDirectoryChurn measures the write path mix: add a sharer, mark
// an owner, remove — the sequence evictions and installs generate.
func BenchmarkDirectoryChurn(b *testing.B) {
	d := NewDirectory(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := cache.Line(i % benchLines)
		d.AddSharer(l, Node(i%16))
		d.SetOwner(l, Node(i%16))
		d.RemoveSharer(l, Node(i%16))
	}
}

var benchSink uint64
