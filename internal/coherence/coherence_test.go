package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func TestAddRemoveSharer(t *testing.T) {
	d := NewDirectory(8)
	l := cache.Line(42)
	d.AddSharer(l, 1)
	d.AddSharer(l, 3)
	if !d.Holds(l, 1) || !d.Holds(l, 3) || d.Holds(l, 2) {
		t.Fatal("holder bits wrong")
	}
	if got := d.SharerCount(l); got != 2 {
		t.Fatalf("SharerCount = %d, want 2", got)
	}
	d.RemoveSharer(l, 1)
	if d.Holds(l, 1) || !d.Holds(l, 3) {
		t.Fatal("RemoveSharer removed wrong node")
	}
	d.RemoveSharer(l, 3)
	if d.TrackedLines() != 0 {
		t.Fatal("line entry should be dropped when last holder leaves")
	}
}

func TestHoldersSorted(t *testing.T) {
	d := NewDirectory(16)
	l := cache.Line(7)
	for _, n := range []Node{9, 2, 14} {
		d.AddSharer(l, n)
	}
	hs := d.Holders(l)
	want := []Node{2, 9, 14}
	if len(hs) != 3 {
		t.Fatalf("Holders = %v", hs)
	}
	for i := range want {
		if hs[i] != want[i] {
			t.Fatalf("Holders = %v, want %v", hs, want)
		}
	}
}

func TestOwner(t *testing.T) {
	d := NewDirectory(8)
	l := cache.Line(1)
	if d.Owner(l) != NoOwner {
		t.Fatal("untracked line has an owner")
	}
	d.SetOwner(l, 5)
	if d.Owner(l) != 5 || !d.Holds(l, 5) {
		t.Fatal("SetOwner must record holder and owner")
	}
	d.RemoveSharer(l, 5)
	if d.Owner(l) != NoOwner {
		t.Fatal("owner survived removal")
	}
}

func TestInvalidateExcept(t *testing.T) {
	d := NewDirectory(8)
	l := cache.Line(9)
	for n := Node(0); n < 5; n++ {
		d.AddSharer(l, n)
	}
	d.SetOwner(l, 2)
	inv := d.InvalidateExcept(l, 3)
	if len(inv) != 4 {
		t.Fatalf("invalidated %v, want 4 nodes", inv)
	}
	for _, n := range inv {
		if n == 3 {
			t.Fatal("invalidated the kept node")
		}
		if d.Holds(l, n) {
			t.Fatalf("node %d still holds line after invalidation", n)
		}
	}
	if !d.Holds(l, 3) {
		t.Fatal("kept node lost the line")
	}
	if d.Owner(l) != NoOwner {
		t.Fatal("stale owner after invalidation (owner was node 2)")
	}
}

func TestInvalidateExceptNonHolder(t *testing.T) {
	d := NewDirectory(8)
	l := cache.Line(9)
	d.AddSharer(l, 1)
	inv := d.InvalidateExcept(l, 2) // 2 does not hold it
	if len(inv) != 1 || inv[0] != 1 {
		t.Fatalf("invalidated %v, want [1]", inv)
	}
	if d.TrackedLines() != 0 {
		t.Fatal("line should be dropped: keep node held nothing")
	}
}

func TestMoveSharer(t *testing.T) {
	d := NewDirectory(8)
	l := cache.Line(3)
	d.SetOwner(l, 1)
	d.MoveSharer(l, 1, 6)
	if d.Holds(l, 1) || !d.Holds(l, 6) {
		t.Fatal("MoveSharer holder bits wrong")
	}
	if d.Owner(l) != 6 {
		t.Fatal("dirty ownership must move with the line")
	}
}

func TestMoveSharerFromNonHolder(t *testing.T) {
	d := NewDirectory(8)
	l := cache.Line(3)
	d.MoveSharer(l, 1, 6) // 1 doesn't hold it: degrade to AddSharer
	if !d.Holds(l, 6) {
		t.Fatal("MoveSharer from non-holder should still add destination")
	}
}

func TestNodeRangeChecked(t *testing.T) {
	d := NewDirectory(4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node accepted")
		}
	}()
	d.AddSharer(1, 4)
}

func TestDirectoryInvariants(t *testing.T) {
	// Property: after arbitrary operations, (a) the owner, when present,
	// is always also a holder; (b) holder sets match what Holders reports.
	const nodes = 8
	f := func(ops []uint32) bool {
		d := NewDirectory(nodes)
		for _, op := range ops {
			l := cache.Line(op % 16)
			n := Node(op / 16 % nodes)
			switch op % 5 {
			case 0, 1:
				d.AddSharer(l, n)
			case 2:
				d.SetOwner(l, n)
			case 3:
				d.RemoveSharer(l, n)
			case 4:
				d.InvalidateExcept(l, n)
			}
			if o := d.Owner(l); o != NoOwner && !d.Holds(l, o) {
				return false
			}
			mask := d.HolderMask(l)
			for _, h := range d.Holders(l) {
				if mask&(1<<uint(h)) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
