// Package coherence implements the global cache-coherence directory of the
// simulated machine.
//
// Real AMD hardware of the paper's era located and invalidated lines with
// interconnect broadcasts; what matters to the scheduling experiments is
// not the protocol's message pattern but its *state*: which caches hold a
// copy of each line, and which (if any) holds it dirty. The directory
// tracks exactly that state, in a MESI-equivalent form:
//
//   - no holders                     → Invalid (line only in DRAM)
//   - one holder, not dirty          → Exclusive
//   - many holders, none dirty       → Shared
//   - one holder, dirty              → Modified
//
// Holders are "nodes": each core's private L1+L2 pair is one node, and each
// chip's shared L3 is another. The machine model keeps directory state in
// lockstep with cache contents; the invariant tests in internal/machine
// check that correspondence after every simulation.
//
// The directory sits on the simulator's access fast path — every miss
// probes it and every store acquires ownership through it — so entries
// live inline in an open-addressed hash table rather than behind the
// pointer-chasing map[Line]*state this package started with. An entry is
// 24 bytes: the line number, the first 64-bit word of the holder bitset,
// and the dirty owner. Probing is linear with backward-shift deletion, so
// lookups never cross tombstones and the common probe is one cache line of
// table.
//
// # Sharer-set width
//
// A holder set is a fixed-width bitset of NumWords() 64-bit words. On
// machines with at most 64 nodes — every configuration up to the paper's
// AMD16 and the 64-core presets — the whole set is the inline `holders`
// word and the directory runs exactly the single-word code it always has:
// holders == 0 doubles as the empty-slot marker and no extra storage
// exists. Wider machines (the 128/256-core NUMA presets) spill words 1..w
// into a flat side array indexed by slot, occupancy switches to an owner
// sentinel (a word-0-only marker cannot work when a line's only holder is
// node ≥ 64), and the fan-out paths iterate set words with
// popcount/trailing-zero scans. Callers on wide directories use the
// *Words APIs (CopyHolderWords, AcquireExclusiveWords) with caller-owned
// scratch so the hot paths stay allocation-free at 256 cores.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
)

// Node identifies a holder: cores are nodes [0, NumCores); chip L3s are
// nodes [NumCores, NumCores+Chips).
type Node int

// NoOwner marks a line with no dirty copy.
const NoOwner Node = -1

// MaxNodes is the widest machine the directory supports: an 8-word holder
// set covers the 256-core NUMA preset (256 cores + 32 chip L3s = 288
// nodes) with headroom. The bound is a sanity rail, not a design limit —
// the word array scales, but a machine this size should be a deliberate
// preset, not an accident.
const MaxNodes = 512

const (
	// ownerNone is NoOwner in an entry's compact owner field.
	ownerNone int16 = -1
	// ownerEmpty marks an empty slot in a wide (NumWords > 1) table, where
	// holders == 0 cannot mean "empty": a line held only by node ≥ 64 has
	// word 0 clear. Narrow tables never store it.
	ownerEmpty int16 = -2
)

// entry is the directory's record for one line, stored by value in the
// open-addressed table. In a narrow (one-word) table, holders == 0 doubles
// as the empty-slot marker: a tracked line always has at least one holder
// (the last RemoveSharer or InvalidateExcept deletes the entry), so no
// separate occupancy bit is needed and line 0 stays a valid key. In a wide
// table, owner == ownerEmpty marks the empty slot instead.
type entry struct {
	line    cache.Line
	holders uint64 // word 0 of the holder bitset
	owner   int16  // node holding the line dirty, ownerNone, or ownerEmpty
}

// dirInitialSlots is the starting table size. Runs at AMD16 scale track a
// few hundred thousand lines; the table doubles as needed.
const dirInitialSlots = 1024

// Directory tracks holders of every cached line in the machine.
type Directory struct {
	nodes   int
	nwords  int // 64-bit words per holder set
	extw    int // nwords-1: side-array words per slot (0 ⇒ narrow table)
	tab     []entry
	ext     []uint64 // slot i's holder words 1..nwords-1 at [i*extw, (i+1)*extw)
	mask    uint64   // len(tab)-1; len(tab) is a power of two
	count   int      // occupied slots
	maxLoad int      // grow when count reaches this (¾ of the table)
}

// NewDirectory creates a directory for a machine with the given total
// number of nodes (cores + chips). At most MaxNodes nodes are supported;
// construction of anything wider fails loudly here rather than silently
// aliasing holder bits.
func NewDirectory(nodes int) *Directory {
	if nodes <= 0 || nodes > MaxNodes {
		panic(fmt.Sprintf("coherence: %d nodes outside supported range [1,%d]", nodes, MaxNodes))
	}
	d := &Directory{
		nodes:  nodes,
		nwords: (nodes + 63) / 64,
	}
	d.extw = d.nwords - 1
	d.initTable(dirInitialSlots)
	return d
}

func (d *Directory) initTable(slots int) {
	d.tab = make([]entry, slots)
	d.mask = uint64(slots - 1)
	d.maxLoad = slots - slots/4
	d.count = 0
	if d.extw != 0 {
		d.ext = make([]uint64, slots*d.extw)
		for i := range d.tab {
			d.tab[i].owner = ownerEmpty
		}
	}
}

// Nodes returns the number of nodes the directory was built for.
func (d *Directory) Nodes() int { return d.nodes }

// NumWords returns the number of 64-bit words in one holder set. Callers
// size their scratch buffers for the *Words APIs with it.
func (d *Directory) NumWords() int { return d.nwords }

// TrackedLines returns how many lines currently have at least one holder.
func (d *Directory) TrackedLines() int { return d.count }

// Reset drops every entry while keeping the table's capacity, so a machine
// flushed between benchmark phases does not regrow the directory from
// scratch.
func (d *Directory) Reset() {
	clear(d.tab)
	d.count = 0
	if d.extw != 0 {
		clear(d.ext)
		for i := range d.tab {
			d.tab[i].owner = ownerEmpty
		}
	}
}

func (d *Directory) checkNode(n Node) {
	if n < 0 || int(n) >= d.nodes {
		panic(fmt.Sprintf("coherence: node %d outside [0,%d)", n, d.nodes))
	}
}

// panicNarrowOnly reports misuse of a single-word API on a wide directory;
// out of line so the hot callers stay free of allocating panic arguments.
func panicNarrowOnly(op string) {
	panic("coherence: " + op + " is single-word; use the *Words API on a >64-node directory")
}

// hashLine is the fmix64 finalizer: a full-avalanche hash so line numbers,
// which arrive with strong arithmetic structure (consecutive lines,
// chip-interleaved strides), spread over the table.
func hashLine(l cache.Line) uint64 {
	x := uint64(l)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// findSlot returns the table index of l's entry, or -1 when l is
// untracked. The narrow table checks occupancy on the inline holder word;
// the wide table on the owner sentinel.
//
//o2:hotpath
func (d *Directory) findSlot(l cache.Line) int {
	i := hashLine(l) & d.mask
	if d.extw == 0 {
		for {
			e := &d.tab[i]
			if e.holders == 0 {
				return -1
			}
			if e.line == l {
				return int(i)
			}
			i = (i + 1) & d.mask
		}
	}
	for {
		e := &d.tab[i]
		if e.owner == ownerEmpty {
			return -1
		}
		if e.line == l {
			return int(i)
		}
		i = (i + 1) & d.mask
	}
}

// find returns a pointer to l's entry, or nil when l is untracked.
//
//o2:hotpath
func (d *Directory) find(l cache.Line) *entry {
	if i := d.findSlot(l); i >= 0 {
		return &d.tab[i]
	}
	return nil
}

// ensureIdx returns the slot index of l's entry, claiming an empty slot
// when the line is untracked. In a narrow table the caller must set at
// least one holder bit before the next table operation (holders == 0 marks
// an empty slot); a wide table is occupied the moment the slot is claimed
// (owner leaves ownerEmpty), and the caller must still add a holder or the
// entry leaks.
//
//o2:hotpath
func (d *Directory) ensureIdx(l cache.Line) int {
	if d.count >= d.maxLoad {
		d.grow()
	}
	i := hashLine(l) & d.mask
	if d.extw == 0 {
		for {
			e := &d.tab[i]
			if e.holders == 0 {
				e.line = l
				e.owner = ownerNone
				d.count++
				return int(i)
			}
			if e.line == l {
				return int(i)
			}
			i = (i + 1) & d.mask
		}
	}
	for {
		e := &d.tab[i]
		if e.owner == ownerEmpty {
			e.line = l
			e.owner = ownerNone
			d.count++
			return int(i)
		}
		if e.line == l {
			return int(i)
		}
		i = (i + 1) & d.mask
	}
}

// ensure returns l's entry, claiming an empty slot when the line is
// untracked; see ensureIdx for the occupancy contract.
//
//o2:hotpath
func (d *Directory) ensure(l cache.Line) *entry {
	return &d.tab[d.ensureIdx(l)]
}

// occupied reports whether slot i holds a live entry.
func (d *Directory) occupied(i uint64) bool {
	if d.extw == 0 {
		return d.tab[i].holders != 0
	}
	return d.tab[i].owner != ownerEmpty
}

// extAt returns slot i's side words (wide tables only).
func (d *Directory) extAt(i uint64) []uint64 {
	return d.ext[i*uint64(d.extw) : (i+1)*uint64(d.extw)]
}

// clearSlot empties slot i, including its side words.
func (d *Directory) clearSlot(i uint64) {
	d.tab[i] = entry{}
	if d.extw != 0 {
		d.tab[i].owner = ownerEmpty
		clear(d.extAt(i))
	}
}

// empty reports whether the whole holder set of slot i is zero.
func (d *Directory) empty(i uint64) bool {
	if d.tab[i].holders != 0 {
		return false
	}
	if d.extw != 0 {
		for _, w := range d.extAt(i) {
			if w != 0 {
				return false
			}
		}
	}
	return true
}

func (d *Directory) grow() {
	old := d.tab
	oldExt := d.ext
	oldExtw := uint64(d.extw)
	d.initTable(len(old) * 2)
	for i := range old {
		if oldExtw == 0 {
			if old[i].holders == 0 {
				continue
			}
		} else if old[i].owner == ownerEmpty {
			continue
		}
		j := hashLine(old[i].line) & d.mask
		for d.occupied(j) {
			j = (j + 1) & d.mask
		}
		d.tab[j] = old[i]
		if oldExtw != 0 {
			copy(d.extAt(j), oldExt[uint64(i)*oldExtw:(uint64(i)+1)*oldExtw])
		}
		d.count++
	}
}

// deleteAt removes the entry at slot i, backward-shifting any displaced
// entries in its probe run so later probes never traverse tombstones
// (Knuth vol. 3, algorithm R). Side words shift with their entries.
func (d *Directory) deleteAt(i uint64) {
	d.count--
	j := i
	for {
		j = (j + 1) & d.mask
		if !d.occupied(j) {
			break
		}
		e := d.tab[j]
		k := hashLine(e.line) & d.mask
		// Shift e back into the hole when its home slot k precedes the
		// hole cyclically — i.e. the hole sits inside e's probe path.
		if (j > i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
			d.tab[i] = e
			if d.extw != 0 {
				copy(d.extAt(i), d.extAt(j))
			}
			i = j
		}
	}
	d.clearSlot(i)
}

// wordBit splits a node into its set-word index and bit.
func wordBit(n Node) (w int, bit uint64) {
	return int(n) >> 6, 1 << (uint(n) & 63)
}

// setBit sets node n's bit in slot i's holder set.
func (d *Directory) setBit(i int, n Node) {
	w, bit := wordBit(n)
	if w == 0 {
		d.tab[i].holders |= bit
	} else {
		d.ext[i*d.extw+w-1] |= bit
	}
}

// clearBit clears node n's bit in slot i's holder set and reports whether
// the bit was set.
func (d *Directory) clearBit(i int, n Node) bool {
	w, bit := wordBit(n)
	var p *uint64
	if w == 0 {
		p = &d.tab[i].holders
	} else {
		p = &d.ext[i*d.extw+w-1]
	}
	was := *p&bit != 0
	*p &^= bit
	return was
}

// hasBit reports whether node n holds the line at slot i.
func (d *Directory) hasBit(i int, n Node) bool {
	w, bit := wordBit(n)
	if w == 0 {
		return d.tab[i].holders&bit != 0
	}
	return d.ext[i*d.extw+w-1]&bit != 0
}

// AddSharer records that node now holds a clean copy of line.
func (d *Directory) AddSharer(l cache.Line, n Node) {
	d.checkNode(n)
	if d.extw == 0 {
		d.ensure(l).holders |= 1 << uint(n)
		return
	}
	d.setBit(d.ensureIdx(l), n)
}

// SetOwner records that node holds line dirty (Modified). Any previous
// owner mark is replaced; the node is also recorded as a holder.
func (d *Directory) SetOwner(l cache.Line, n Node) {
	d.checkNode(n)
	i := d.ensureIdx(l)
	d.setBit(i, n)
	d.tab[i].owner = int16(n)
}

// RemoveSharer records that node no longer holds line (eviction or
// invalidation). When the last holder disappears the entry is dropped —
// the line lives only in DRAM.
func (d *Directory) RemoveSharer(l cache.Line, n Node) {
	d.checkNode(n)
	i := d.findSlot(l)
	if i < 0 {
		return
	}
	d.clearBit(i, n)
	if d.tab[i].owner == int16(n) {
		d.tab[i].owner = ownerNone
	}
	if d.empty(uint64(i)) {
		d.deleteAt(uint64(i))
	}
}

// MoveSharer transfers a holder bit from one node to another in one step
// (an L2 victim moving into the chip's L3). Dirty ownership moves with it.
func (d *Directory) MoveSharer(l cache.Line, from, to Node) {
	d.checkNode(from)
	d.checkNode(to)
	i := d.findSlot(l)
	if i < 0 || !d.hasBit(i, from) {
		// Nothing to move; treat as a plain add so callers need not
		// special-case races between eviction paths.
		d.AddSharer(l, to)
		return
	}
	wasOwner := d.tab[i].owner == int16(from)
	d.clearBit(i, from)
	d.setBit(i, to)
	if wasOwner {
		d.tab[i].owner = int16(to)
	}
}

// Holders returns the nodes holding line, in ascending order. The result
// is freshly allocated; the hot paths use HolderMask or CopyHolderWords
// instead.
func (d *Directory) Holders(l cache.Line) []Node {
	i := d.findSlot(l)
	if i < 0 {
		return nil
	}
	out := make([]Node, 0, d.sharerCountAt(i))
	out = d.appendWord(out, d.tab[i].holders, 0)
	for w := 0; w < d.extw; w++ {
		out = d.appendWord(out, d.ext[i*d.extw+w], (w+1)*64)
	}
	return out
}

func (d *Directory) appendWord(dst []Node, m uint64, base int) []Node {
	for m != 0 {
		n := bits.TrailingZeros64(m)
		dst = append(dst, Node(base+n))
		m &^= 1 << uint(n)
	}
	return dst
}

// HolderMask returns the raw holder bitmask (hot path for the machine
// model on ≤64-node directories; avoids allocation). Wide directories must
// use CopyHolderWords — a single word cannot represent their holder sets.
//
//o2:hotpath
func (d *Directory) HolderMask(l cache.Line) uint64 {
	if d.extw != 0 {
		panicNarrowOnly("HolderMask")
	}
	e := d.find(l)
	if e == nil {
		return 0
	}
	return e.holders
}

// CopyHolderWords copies line's holder set into dst, which must have at
// least NumWords elements, and reports whether the line has any holder.
// dst[:NumWords] is fully overwritten. This is the wide-directory sibling
// of HolderMask: callers pass preallocated scratch so the fan-out paths
// allocate nothing.
//
//o2:hotpath
func (d *Directory) CopyHolderWords(l cache.Line, dst []uint64) bool {
	i := d.findSlot(l)
	if i < 0 {
		for w := 0; w < d.nwords; w++ {
			dst[w] = 0
		}
		return false
	}
	dst[0] = d.tab[i].holders
	any := dst[0] != 0
	for w := 0; w < d.extw; w++ {
		x := d.ext[i*d.extw+w]
		dst[w+1] = x
		any = any || x != 0
	}
	return any
}

// HasHolders reports whether any node holds line. Unlike HolderMask it is
// valid at every directory width.
//
//o2:hotpath
func (d *Directory) HasHolders(l cache.Line) bool {
	return d.findSlot(l) >= 0
}

// Holds reports whether node holds line.
func (d *Directory) Holds(l cache.Line, n Node) bool {
	d.checkNode(n)
	i := d.findSlot(l)
	return i >= 0 && d.hasBit(i, n)
}

// Owner returns the node holding line dirty, or NoOwner.
func (d *Directory) Owner(l cache.Line) Node {
	e := d.find(l)
	if e == nil {
		return NoOwner
	}
	return Node(e.owner)
}

// AcquireExclusive makes keep the sole holder and dirty owner of line in a
// single table probe — InvalidateExcept followed by SetOwner, fused for
// the store path — and returns the bitmask of nodes that lost their
// copies. The common case (keep already the sole owner) touches one entry
// and allocates nothing. Narrow directories only; the wide store path is
// AcquireExclusiveWords.
//
//o2:hotpath
func (d *Directory) AcquireExclusive(l cache.Line, keep Node) (invalidated uint64) {
	if d.extw != 0 {
		panicNarrowOnly("AcquireExclusive")
	}
	d.checkNode(keep)
	e := d.ensure(l)
	invalidated = e.holders &^ (1 << uint(keep))
	e.holders = 1 << uint(keep)
	e.owner = int16(keep)
	return invalidated
}

// AcquireExclusiveWords is AcquireExclusive at any width: it makes keep
// the sole holder and dirty owner of line, writes the invalidated holder
// words into inv (which must have at least NumWords elements, fully
// overwritten), and reports whether any node was invalidated. inv is
// caller-owned scratch; the call allocates nothing.
//
//o2:hotpath
func (d *Directory) AcquireExclusiveWords(l cache.Line, keep Node, inv []uint64) bool {
	d.checkNode(keep)
	i := d.ensureIdx(l)
	kw, kbit := wordBit(keep)
	e := &d.tab[i]
	w0 := e.holders
	if kw == 0 {
		w0 &^= kbit
		e.holders = kbit
	} else {
		e.holders = 0
	}
	inv[0] = w0
	any := w0 != 0
	for w := 0; w < d.extw; w++ {
		x := d.ext[i*d.extw+w]
		if w+1 == kw {
			x &^= kbit
			d.ext[i*d.extw+w] = kbit
		} else {
			d.ext[i*d.extw+w] = 0
		}
		inv[w+1] = x
		any = any || x != 0
	}
	e.owner = int16(keep)
	return any
}

// InvalidateExcept removes every holder of line other than keep and returns
// the nodes that were invalidated, in ascending order. It implements the
// write path: a store must make the writer the sole holder.
func (d *Directory) InvalidateExcept(l cache.Line, keep Node) []Node {
	d.checkNode(keep)
	i := d.findSlot(l)
	if i < 0 {
		return nil
	}
	kw, kbit := wordBit(keep)
	var out []Node
	w0 := d.tab[i].holders
	keepMask0 := uint64(0)
	if kw == 0 {
		keepMask0 = w0 & kbit
	}
	out = d.appendWord(out, w0&^keepMask0, 0)
	d.tab[i].holders = keepMask0
	for w := 0; w < d.extw; w++ {
		x := d.ext[i*d.extw+w]
		keepMask := uint64(0)
		if w+1 == kw {
			keepMask = x & kbit
		}
		out = d.appendWord(out, x&^keepMask, (w+1)*64)
		d.ext[i*d.extw+w] = keepMask
	}
	if d.tab[i].owner != int16(keep) {
		d.tab[i].owner = ownerNone
	}
	if d.empty(uint64(i)) {
		d.deleteAt(uint64(i))
	}
	return out
}

// SharerCount returns the number of holders of line.
func (d *Directory) SharerCount(l cache.Line) int {
	i := d.findSlot(l)
	if i < 0 {
		return 0
	}
	return d.sharerCountAt(i)
}

func (d *Directory) sharerCountAt(i int) int {
	n := bits.OnesCount64(d.tab[i].holders)
	for w := 0; w < d.extw; w++ {
		n += bits.OnesCount64(d.ext[i*d.extw+w])
	}
	return n
}
