// Package coherence implements the global cache-coherence directory of the
// simulated machine.
//
// Real AMD hardware of the paper's era located and invalidated lines with
// interconnect broadcasts; what matters to the scheduling experiments is
// not the protocol's message pattern but its *state*: which caches hold a
// copy of each line, and which (if any) holds it dirty. The directory
// tracks exactly that state, in a MESI-equivalent form:
//
//   - no holders                     → Invalid (line only in DRAM)
//   - one holder, not dirty          → Exclusive
//   - many holders, none dirty       → Shared
//   - one holder, dirty              → Modified
//
// Holders are "nodes": each core's private L1+L2 pair is one node, and each
// chip's shared L3 is another. The machine model keeps directory state in
// lockstep with cache contents; the invariant tests in internal/machine
// check that correspondence after every simulation.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
)

// Node identifies a holder: cores are nodes [0, NumCores); chip L3s are
// nodes [NumCores, NumCores+Chips).
type Node int

// NoOwner marks a line with no dirty copy.
const NoOwner Node = -1

// lineState is the directory entry for one line.
type lineState struct {
	holders uint64 // bitmask over nodes
	owner   Node   // node holding the line dirty, or NoOwner
}

// Directory tracks holders of every cached line in the machine.
type Directory struct {
	nodes int
	lines map[cache.Line]*lineState
}

// NewDirectory creates a directory for a machine with the given total
// number of nodes (cores + chips). At most 64 nodes are supported, which
// covers the paper's machine (20 nodes) with room for larger configs.
func NewDirectory(nodes int) *Directory {
	if nodes <= 0 || nodes > 64 {
		panic(fmt.Sprintf("coherence: %d nodes outside supported range [1,64]", nodes))
	}
	return &Directory{nodes: nodes, lines: make(map[cache.Line]*lineState)}
}

// Nodes returns the number of nodes the directory was built for.
func (d *Directory) Nodes() int { return d.nodes }

// TrackedLines returns how many lines currently have at least one holder.
func (d *Directory) TrackedLines() int { return len(d.lines) }

func (d *Directory) checkNode(n Node) {
	if n < 0 || int(n) >= d.nodes {
		panic(fmt.Sprintf("coherence: node %d outside [0,%d)", n, d.nodes))
	}
}

// AddSharer records that node now holds a clean copy of line.
func (d *Directory) AddSharer(l cache.Line, n Node) {
	d.checkNode(n)
	st := d.lines[l]
	if st == nil {
		st = &lineState{owner: NoOwner}
		d.lines[l] = st
	}
	st.holders |= 1 << uint(n)
}

// SetOwner records that node holds line dirty (Modified). Any previous
// owner mark is replaced; the node is also recorded as a holder.
func (d *Directory) SetOwner(l cache.Line, n Node) {
	d.checkNode(n)
	st := d.lines[l]
	if st == nil {
		st = &lineState{owner: NoOwner}
		d.lines[l] = st
	}
	st.holders |= 1 << uint(n)
	st.owner = n
}

// RemoveSharer records that node no longer holds line (eviction or
// invalidation). When the last holder disappears the entry is dropped —
// the line lives only in DRAM.
func (d *Directory) RemoveSharer(l cache.Line, n Node) {
	d.checkNode(n)
	st := d.lines[l]
	if st == nil {
		return
	}
	st.holders &^= 1 << uint(n)
	if st.owner == n {
		st.owner = NoOwner
	}
	if st.holders == 0 {
		delete(d.lines, l)
	}
}

// MoveSharer transfers a holder bit from one node to another in one step
// (an L2 victim moving into the chip's L3). Dirty ownership moves with it.
func (d *Directory) MoveSharer(l cache.Line, from, to Node) {
	d.checkNode(from)
	d.checkNode(to)
	st := d.lines[l]
	if st == nil || st.holders&(1<<uint(from)) == 0 {
		// Nothing to move; treat as a plain add so callers need not
		// special-case races between eviction paths.
		d.AddSharer(l, to)
		return
	}
	wasOwner := st.owner == from
	st.holders &^= 1 << uint(from)
	st.holders |= 1 << uint(to)
	if wasOwner {
		st.owner = to
	}
}

// Holders returns the nodes holding line, in ascending order. The result
// is freshly allocated.
func (d *Directory) Holders(l cache.Line) []Node {
	st := d.lines[l]
	if st == nil {
		return nil
	}
	out := make([]Node, 0, bits.OnesCount64(st.holders))
	m := st.holders
	for m != 0 {
		n := bits.TrailingZeros64(m)
		out = append(out, Node(n))
		m &^= 1 << uint(n)
	}
	return out
}

// HolderMask returns the raw holder bitmask (hot path for the machine
// model; avoids allocation).
func (d *Directory) HolderMask(l cache.Line) uint64 {
	st := d.lines[l]
	if st == nil {
		return 0
	}
	return st.holders
}

// Holds reports whether node holds line.
func (d *Directory) Holds(l cache.Line, n Node) bool {
	d.checkNode(n)
	return d.HolderMask(l)&(1<<uint(n)) != 0
}

// Owner returns the node holding line dirty, or NoOwner.
func (d *Directory) Owner(l cache.Line) Node {
	st := d.lines[l]
	if st == nil {
		return NoOwner
	}
	return st.owner
}

// InvalidateExcept removes every holder of line other than keep and returns
// the nodes that were invalidated. It implements the write path: a store
// must make the writer the sole holder.
func (d *Directory) InvalidateExcept(l cache.Line, keep Node) []Node {
	d.checkNode(keep)
	st := d.lines[l]
	if st == nil {
		return nil
	}
	var out []Node
	m := st.holders &^ (1 << uint(keep))
	for m != 0 {
		n := bits.TrailingZeros64(m)
		out = append(out, Node(n))
		m &^= 1 << uint(n)
	}
	st.holders &= 1 << uint(keep)
	if st.owner != keep {
		st.owner = NoOwner
	}
	if st.holders == 0 {
		delete(d.lines, l)
	}
	return out
}

// SharerCount returns the number of holders of line.
func (d *Directory) SharerCount(l cache.Line) int {
	return bits.OnesCount64(d.HolderMask(l))
}
