// Package coherence implements the global cache-coherence directory of the
// simulated machine.
//
// Real AMD hardware of the paper's era located and invalidated lines with
// interconnect broadcasts; what matters to the scheduling experiments is
// not the protocol's message pattern but its *state*: which caches hold a
// copy of each line, and which (if any) holds it dirty. The directory
// tracks exactly that state, in a MESI-equivalent form:
//
//   - no holders                     → Invalid (line only in DRAM)
//   - one holder, not dirty          → Exclusive
//   - many holders, none dirty       → Shared
//   - one holder, dirty              → Modified
//
// Holders are "nodes": each core's private L1+L2 pair is one node, and each
// chip's shared L3 is another. The machine model keeps directory state in
// lockstep with cache contents; the invariant tests in internal/machine
// check that correspondence after every simulation.
//
// The directory sits on the simulator's access fast path — every miss
// probes it and every store acquires ownership through it — so entries
// live inline in an open-addressed hash table rather than behind the
// pointer-chasing map[Line]*state this package started with. An entry is
// 24 bytes: the line number, a 64-bit holder bitmask (the paper's AMD16
// machine needs 20 node bits), and the dirty owner. Probing is linear with
// backward-shift deletion, so lookups never cross tombstones and the
// common probe is one cache line of table.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
)

// Node identifies a holder: cores are nodes [0, NumCores); chip L3s are
// nodes [NumCores, NumCores+Chips).
type Node int

// NoOwner marks a line with no dirty copy.
const NoOwner Node = -1

// ownerNone is NoOwner in an entry's compact owner field.
const ownerNone int8 = -1

// entry is the directory's record for one line, stored by value in the
// open-addressed table. holders == 0 doubles as the empty-slot marker: a
// tracked line always has at least one holder (the last RemoveSharer or
// InvalidateExcept deletes the entry), so no separate occupancy bit is
// needed and line 0 stays a valid key.
type entry struct {
	line    cache.Line
	holders uint64 // bitmask over nodes; 0 ⇒ slot empty
	owner   int8   // node holding the line dirty, or ownerNone
}

// dirInitialSlots is the starting table size. Runs at AMD16 scale track a
// few hundred thousand lines; the table doubles as needed.
const dirInitialSlots = 1024

// Directory tracks holders of every cached line in the machine.
type Directory struct {
	nodes   int
	tab     []entry
	mask    uint64 // len(tab)-1; len(tab) is a power of two
	count   int    // occupied slots
	maxLoad int    // grow when count reaches this (¾ of the table)
}

// NewDirectory creates a directory for a machine with the given total
// number of nodes (cores + chips). At most 64 nodes are supported, which
// covers the paper's machine (20 nodes) with room for larger configs.
func NewDirectory(nodes int) *Directory {
	if nodes <= 0 || nodes > 64 {
		panic(fmt.Sprintf("coherence: %d nodes outside supported range [1,64]", nodes))
	}
	d := &Directory{nodes: nodes}
	d.initTable(dirInitialSlots)
	return d
}

func (d *Directory) initTable(slots int) {
	d.tab = make([]entry, slots)
	d.mask = uint64(slots - 1)
	d.maxLoad = slots - slots/4
	d.count = 0
}

// Nodes returns the number of nodes the directory was built for.
func (d *Directory) Nodes() int { return d.nodes }

// TrackedLines returns how many lines currently have at least one holder.
func (d *Directory) TrackedLines() int { return d.count }

// Reset drops every entry while keeping the table's capacity, so a machine
// flushed between benchmark phases does not regrow the directory from
// scratch.
func (d *Directory) Reset() {
	clear(d.tab)
	d.count = 0
}

func (d *Directory) checkNode(n Node) {
	if n < 0 || int(n) >= d.nodes {
		panic(fmt.Sprintf("coherence: node %d outside [0,%d)", n, d.nodes))
	}
}

// hashLine is the fmix64 finalizer: a full-avalanche hash so line numbers,
// which arrive with strong arithmetic structure (consecutive lines,
// chip-interleaved strides), spread over the table.
func hashLine(l cache.Line) uint64 {
	x := uint64(l)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// findSlot returns the table index of l's entry, or -1 when l is
// untracked.
//
//o2:hotpath
func (d *Directory) findSlot(l cache.Line) int {
	i := hashLine(l) & d.mask
	for {
		e := &d.tab[i]
		if e.holders == 0 {
			return -1
		}
		if e.line == l {
			return int(i)
		}
		i = (i + 1) & d.mask
	}
}

// find returns a pointer to l's entry, or nil when l is untracked.
//
//o2:hotpath
func (d *Directory) find(l cache.Line) *entry {
	if i := d.findSlot(l); i >= 0 {
		return &d.tab[i]
	}
	return nil
}

// ensure returns l's entry, claiming an empty slot when the line is
// untracked. The caller must set at least one holder bit before the next
// table operation: holders == 0 marks an empty slot.
//
//o2:hotpath
func (d *Directory) ensure(l cache.Line) *entry {
	if d.count >= d.maxLoad {
		d.grow()
	}
	i := hashLine(l) & d.mask
	for {
		e := &d.tab[i]
		if e.holders == 0 {
			e.line = l
			e.owner = ownerNone
			d.count++
			return e
		}
		if e.line == l {
			return e
		}
		i = (i + 1) & d.mask
	}
}

func (d *Directory) grow() {
	old := d.tab
	d.initTable(len(old) * 2)
	for i := range old {
		if old[i].holders == 0 {
			continue
		}
		j := hashLine(old[i].line) & d.mask
		for d.tab[j].holders != 0 {
			j = (j + 1) & d.mask
		}
		d.tab[j] = old[i]
		d.count++
	}
}

// deleteAt removes the entry at slot i, backward-shifting any displaced
// entries in its probe run so later probes never traverse tombstones
// (Knuth vol. 3, algorithm R).
func (d *Directory) deleteAt(i uint64) {
	d.count--
	j := i
	for {
		j = (j + 1) & d.mask
		e := d.tab[j]
		if e.holders == 0 {
			break
		}
		k := hashLine(e.line) & d.mask
		// Shift e back into the hole when its home slot k precedes the
		// hole cyclically — i.e. the hole sits inside e's probe path.
		if (j > i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
			d.tab[i] = e
			i = j
		}
	}
	d.tab[i] = entry{}
}

// AddSharer records that node now holds a clean copy of line.
func (d *Directory) AddSharer(l cache.Line, n Node) {
	d.checkNode(n)
	d.ensure(l).holders |= 1 << uint(n)
}

// SetOwner records that node holds line dirty (Modified). Any previous
// owner mark is replaced; the node is also recorded as a holder.
func (d *Directory) SetOwner(l cache.Line, n Node) {
	d.checkNode(n)
	e := d.ensure(l)
	e.holders |= 1 << uint(n)
	e.owner = int8(n)
}

// RemoveSharer records that node no longer holds line (eviction or
// invalidation). When the last holder disappears the entry is dropped —
// the line lives only in DRAM.
func (d *Directory) RemoveSharer(l cache.Line, n Node) {
	d.checkNode(n)
	i := d.findSlot(l)
	if i < 0 {
		return
	}
	e := &d.tab[i]
	e.holders &^= 1 << uint(n)
	if e.owner == int8(n) {
		e.owner = ownerNone
	}
	if e.holders == 0 {
		d.deleteAt(uint64(i))
	}
}

// MoveSharer transfers a holder bit from one node to another in one step
// (an L2 victim moving into the chip's L3). Dirty ownership moves with it.
func (d *Directory) MoveSharer(l cache.Line, from, to Node) {
	d.checkNode(from)
	d.checkNode(to)
	e := d.find(l)
	if e == nil || e.holders&(1<<uint(from)) == 0 {
		// Nothing to move; treat as a plain add so callers need not
		// special-case races between eviction paths.
		d.AddSharer(l, to)
		return
	}
	wasOwner := e.owner == int8(from)
	e.holders &^= 1 << uint(from)
	e.holders |= 1 << uint(to)
	if wasOwner {
		e.owner = int8(to)
	}
}

// Holders returns the nodes holding line, in ascending order. The result
// is freshly allocated; the hot path uses HolderMask instead.
func (d *Directory) Holders(l cache.Line) []Node {
	m := d.HolderMask(l)
	if m == 0 {
		return nil
	}
	out := make([]Node, 0, bits.OnesCount64(m))
	for m != 0 {
		n := bits.TrailingZeros64(m)
		out = append(out, Node(n))
		m &^= 1 << uint(n)
	}
	return out
}

// HolderMask returns the raw holder bitmask (hot path for the machine
// model; avoids allocation).
func (d *Directory) HolderMask(l cache.Line) uint64 {
	e := d.find(l)
	if e == nil {
		return 0
	}
	return e.holders
}

// Holds reports whether node holds line.
func (d *Directory) Holds(l cache.Line, n Node) bool {
	d.checkNode(n)
	return d.HolderMask(l)&(1<<uint(n)) != 0
}

// Owner returns the node holding line dirty, or NoOwner.
func (d *Directory) Owner(l cache.Line) Node {
	e := d.find(l)
	if e == nil {
		return NoOwner
	}
	return Node(e.owner)
}

// AcquireExclusive makes keep the sole holder and dirty owner of line in a
// single table probe — InvalidateExcept followed by SetOwner, fused for
// the store path — and returns the bitmask of nodes that lost their
// copies. The common case (keep already the sole owner) touches one entry
// and allocates nothing.
//
//o2:hotpath
func (d *Directory) AcquireExclusive(l cache.Line, keep Node) (invalidated uint64) {
	d.checkNode(keep)
	e := d.ensure(l)
	invalidated = e.holders &^ (1 << uint(keep))
	e.holders = 1 << uint(keep)
	e.owner = int8(keep)
	return invalidated
}

// InvalidateExcept removes every holder of line other than keep and returns
// the nodes that were invalidated, in ascending order. It implements the
// write path: a store must make the writer the sole holder.
func (d *Directory) InvalidateExcept(l cache.Line, keep Node) []Node {
	d.checkNode(keep)
	i := d.findSlot(l)
	if i < 0 {
		return nil
	}
	e := &d.tab[i]
	var out []Node
	m := e.holders &^ (1 << uint(keep))
	for m != 0 {
		n := bits.TrailingZeros64(m)
		out = append(out, Node(n))
		m &^= 1 << uint(n)
	}
	e.holders &= 1 << uint(keep)
	if e.owner != int8(keep) {
		e.owner = ownerNone
	}
	if e.holders == 0 {
		d.deleteAt(uint64(i))
	}
	return out
}

// SharerCount returns the number of holders of line.
func (d *Directory) SharerCount(l cache.Line) int {
	return bits.OnesCount64(d.HolderMask(l))
}
