package coherence

import (
	"math/bits"
	"testing"

	"repro/internal/cache"
	"repro/internal/stats"
)

// These tests pin the multi-word sharer-set extension: directories wider
// than 64 nodes must implement exactly the semantics the single-word table
// always had, and the narrow table must be bit-for-bit unaffected by the
// rewrite (the ≤64-node code path is the one every existing golden runs
// through).

// wideRef is the map-based reference model for a directory of any width.
type wideRef struct {
	holders map[Node]bool
	owner   Node
}

func newWideRef() *wideRef {
	return &wideRef{holders: make(map[Node]bool), owner: NoOwner}
}

// TestWideDirectoryMatchesModel drives a 288-node directory (the NUMA256
// machine's node count) and a reference model through a deletion-heavy
// random schedule, crossing table growth, then checks full agreement
// through every read API including the word-based ones.
func TestWideDirectoryMatchesModel(t *testing.T) {
	const (
		nodes  = 288
		nlines = 4096
		nops   = 200_000
	)
	model := make(map[cache.Line]*wideRef)
	get := func(l cache.Line) *wideRef {
		r := model[l]
		if r == nil {
			r = newWideRef()
			model[l] = r
		}
		return r
	}
	drop := func(l cache.Line) {
		if r := model[l]; r != nil && len(r.holders) == 0 {
			delete(model, l)
		}
	}
	d := NewDirectory(nodes)
	if d.NumWords() != 5 {
		t.Fatalf("NumWords = %d for %d nodes, want 5", d.NumWords(), nodes)
	}
	rng := stats.NewRNG(0xD1CE)
	inv := make([]uint64, d.NumWords())
	for i := 0; i < nops; i++ {
		l := cache.Line(rng.Intn(nlines))
		n := Node(rng.Intn(nodes))
		switch rng.Intn(7) {
		case 0, 1:
			d.AddSharer(l, n)
			get(l).holders[n] = true
		case 2:
			d.SetOwner(l, n)
			r := get(l)
			r.holders[n] = true
			r.owner = n
		case 3:
			d.RemoveSharer(l, n)
			if r := model[l]; r != nil {
				delete(r.holders, n)
				if r.owner == n {
					r.owner = NoOwner
				}
				drop(l)
			}
		case 4:
			to := Node(rng.Intn(nodes))
			d.MoveSharer(l, n, to)
			r := model[l]
			if r == nil || !r.holders[n] {
				get(l).holders[to] = true
			} else {
				wasOwner := r.owner == n
				delete(r.holders, n)
				r.holders[to] = true
				if wasOwner {
					r.owner = to
				}
			}
		case 5:
			d.InvalidateExcept(l, n)
			if r := model[l]; r != nil {
				kept := r.holders[n]
				clear(r.holders)
				if kept {
					r.holders[n] = true
				}
				if r.owner != n {
					r.owner = NoOwner
				}
				drop(l)
			}
		case 6:
			d.AcquireExclusiveWords(l, n, inv)
			r := get(l)
			clear(r.holders)
			r.holders[n] = true
			r.owner = n
		}
	}

	if d.TrackedLines() != len(model) {
		t.Fatalf("TrackedLines = %d, model tracks %d", d.TrackedLines(), len(model))
	}
	words := make([]uint64, d.NumWords())
	for l, r := range model {
		hs := d.Holders(l)
		if len(hs) != len(r.holders) {
			t.Fatalf("line %d: Holders = %v, model has %d holders", l, hs, len(r.holders))
		}
		for _, n := range hs {
			if !r.holders[n] {
				t.Fatalf("line %d: directory holder %d not in model", l, n)
			}
		}
		if got := d.Owner(l); got != r.owner {
			t.Fatalf("line %d: Owner = %d, model %d", l, got, r.owner)
		}
		if got := d.SharerCount(l); got != len(r.holders) {
			t.Fatalf("line %d: SharerCount = %d, model %d", l, got, len(r.holders))
		}
		if !d.CopyHolderWords(l, words) {
			t.Fatalf("line %d: CopyHolderWords reports no holders", l)
		}
		total := 0
		for w, x := range words {
			total += bits.OnesCount64(x)
			for x != 0 {
				b := bits.TrailingZeros64(x)
				x &^= 1 << uint(b)
				if n := Node(w*64 + b); !r.holders[n] {
					t.Fatalf("line %d: word %d claims holder %d not in model", l, w, n)
				}
			}
		}
		if total != len(r.holders) {
			t.Fatalf("line %d: words count %d holders, model %d", l, total, len(r.holders))
		}
		for n := range r.holders {
			if !d.Holds(l, n) {
				t.Fatalf("line %d: Holds(%d) = false, model true", l, n)
			}
		}
	}
	for l := cache.Line(0); l < nlines; l++ {
		if _, ok := model[l]; !ok && d.HasHolders(l) {
			t.Fatalf("line %d: directory tracks a line the model dropped", l)
		}
	}
}

// TestWideMatchesNarrow runs one random schedule over nodes < 64 against
// both a narrow (64-node) and a wide (80-node) directory and demands
// identical observable state throughout, including identical invalidation
// sets from the two store-path APIs. This is the model-parity pin for the
// rewrite: configurations that fit one word must behave exactly as the
// single-word implementation did.
func TestWideMatchesNarrow(t *testing.T) {
	const (
		nodes  = 60
		nlines = 1024
		nops   = 100_000
	)
	narrow := NewDirectory(64)
	wide := NewDirectory(80)
	if narrow.NumWords() != 1 || wide.NumWords() != 2 {
		t.Fatalf("NumWords = %d/%d, want 1/2", narrow.NumWords(), wide.NumWords())
	}
	rng := stats.NewRNG(0xBEEF)
	inv := make([]uint64, wide.NumWords())
	for i := 0; i < nops; i++ {
		l := cache.Line(rng.Intn(nlines))
		n := Node(rng.Intn(nodes))
		switch rng.Intn(7) {
		case 0, 1:
			narrow.AddSharer(l, n)
			wide.AddSharer(l, n)
		case 2:
			narrow.SetOwner(l, n)
			wide.SetOwner(l, n)
		case 3:
			narrow.RemoveSharer(l, n)
			wide.RemoveSharer(l, n)
		case 4:
			to := Node(rng.Intn(nodes))
			narrow.MoveSharer(l, n, to)
			wide.MoveSharer(l, n, to)
		case 5:
			a := narrow.InvalidateExcept(l, n)
			b := wide.InvalidateExcept(l, n)
			if len(a) != len(b) {
				t.Fatalf("op %d: InvalidateExcept %v vs %v", i, a, b)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("op %d: InvalidateExcept %v vs %v", i, a, b)
				}
			}
		case 6:
			mask := narrow.AcquireExclusive(l, n)
			wide.AcquireExclusiveWords(l, n, inv)
			if mask != inv[0] || inv[1] != 0 {
				t.Fatalf("op %d: AcquireExclusive %#x vs words [%#x %#x]", i, mask, inv[0], inv[1])
			}
		}
	}
	if narrow.TrackedLines() != wide.TrackedLines() {
		t.Fatalf("TrackedLines %d vs %d", narrow.TrackedLines(), wide.TrackedLines())
	}
	words := make([]uint64, wide.NumWords())
	for l := cache.Line(0); l < nlines; l++ {
		mask := narrow.HolderMask(l)
		any := wide.CopyHolderWords(l, words)
		if mask != words[0] || words[1] != 0 || any != (mask != 0) {
			t.Fatalf("line %d: mask %#x vs words [%#x %#x] any=%v", l, mask, words[0], words[1], any)
		}
		if narrow.Owner(l) != wide.Owner(l) {
			t.Fatalf("line %d: owner %d vs %d", l, narrow.Owner(l), wide.Owner(l))
		}
	}
}

// TestWideReset proves Reset restores a wide table to pristine state: the
// owner sentinels and side words must all be re-armed or later probes
// would resurrect stale holder bits.
func TestWideReset(t *testing.T) {
	d := NewDirectory(100)
	for i := 0; i < 5000; i++ {
		d.AddSharer(cache.Line(i), Node(i%100))
	}
	d.Reset()
	if d.TrackedLines() != 0 {
		t.Fatalf("TrackedLines = %d after Reset", d.TrackedLines())
	}
	for i := 0; i < 5000; i++ {
		if d.HasHolders(cache.Line(i)) {
			t.Fatalf("line %d still tracked after Reset", i)
		}
	}
	// The table must be immediately reusable with clean semantics.
	d.SetOwner(7, 99)
	if d.SharerCount(7) != 1 || d.Owner(7) != 99 {
		t.Fatal("Reset left the table unusable")
	}
}

// TestDirectoryNodeCap pins the construction guard: the widest supported
// machine builds, anything wider fails loudly instead of silently aliasing
// holder bits (the failure mode the pre-bitset 64-node cap guarded).
func TestDirectoryNodeCap(t *testing.T) {
	if d := NewDirectory(MaxNodes); d.NumWords() != MaxNodes/64 {
		t.Fatalf("NumWords = %d at MaxNodes, want %d", d.NumWords(), MaxNodes/64)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("NewDirectory(%d) accepted", MaxNodes+1)
		}
	}()
	NewDirectory(MaxNodes + 1)
}

// TestNarrowOnlyAPIsGuarded: the single-word APIs cannot represent a wide
// holder set; calling them on a wide directory must panic rather than
// silently truncate.
func TestNarrowOnlyAPIsGuarded(t *testing.T) {
	for _, tc := range []struct {
		name string
		call func(d *Directory)
	}{
		{"HolderMask", func(d *Directory) { d.HolderMask(1) }},
		{"AcquireExclusive", func(d *Directory) { d.AcquireExclusive(1, 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDirectory(65)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on a wide directory did not panic", tc.name)
				}
			}()
			tc.call(d)
		})
	}
}
