package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	cases := []struct {
		name                string
		xs                  []float64
		n                   int64
		mean, min, max, sd2 float64 // sd2 = variance
	}{
		{"empty", nil, 0, 0, 0, 0, 0},
		{"single", []float64{5}, 1, 5, 5, 5, 0},
		{"uniform 1..4", []float64{1, 2, 3, 4}, 4, 2.5, 1, 4, 5.0 / 3},
		{"constant", []float64{7, 7, 7}, 3, 7, 7, 7, 0},
		{"negative and positive", []float64{-2, 2}, 2, 0, -2, 2, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.xs)
			if s.N() != tc.n || s.Mean() != tc.mean || s.Min() != tc.min || s.Max() != tc.max {
				t.Errorf("Summarize(%v) = %v", tc.xs, s.String())
			}
			if v := s.Variance(); v < tc.sd2-1e-12 || v > tc.sd2+1e-12 {
				t.Errorf("variance = %v, want %v", v, tc.sd2)
			}
		})
	}
}

func TestSummarizeMatchesIncrementalAdd(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var inc Summary
	for _, x := range xs {
		inc.Add(x)
	}
	if got := Summarize(xs); got != inc {
		t.Errorf("Summarize = %+v, incremental = %+v", got, inc)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-9 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of the classic dataset is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-9 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Stddev() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	// Property: Welford's online mean agrees with the two-pass mean.
	f := func(xs []float64) bool {
		var s Summary
		var sum float64
		ok := true
		for _, x := range xs {
			// Clamp to a sane range so the naive sum doesn't overflow.
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 0
			}
			s.Add(x)
			sum += x
		}
		if len(xs) > 0 {
			naive := sum / float64(len(xs))
			ok = math.Abs(s.Mean()-naive) < 1e-6*(1+math.Abs(naive))
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// The input must not be reordered.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileSortedInvariant(t *testing.T) {
	// Property: percentile is monotone in p and bounded by min/max.
	r := NewRNG(123)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64() * 1000
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5) // bounds 10, 20, 40, 80, +inf
	for _, x := range []float64{1, 5, 10, 11, 25, 100, 1000} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	wantCounts := []int64{3, 1, 1, 0, 2}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Errorf("median bound = %v, want 20", q)
	}
	// The overflow bucket has no finite bound; Quantile falls back to the
	// exact maximum observation instead of +Inf.
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("q100 = %v, want 1000 (the exact max)", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 4)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramGrowth(t *testing.T) {
	h := NewHistogramGrowth(100, 1.5, 4) // bounds 100, 150, 225, +inf
	want := []float64{100, 150, 100 * 1.5 * 1.5}
	if len(h.Bounds) != len(want) || len(h.Counts) != 4 {
		t.Fatalf("shape: %d bounds, %d counts", len(h.Bounds), len(h.Counts))
	}
	for i, b := range want {
		if h.Bounds[i] != b {
			t.Errorf("bound %d = %v, want %v", i, h.Bounds[i], b)
		}
	}
	// Equal parameters must give bit-identical bounds: Merge's contract.
	g := NewHistogramGrowth(100, 1.5, 4)
	if err := g.Merge(h); err != nil {
		t.Errorf("freshly built equal histograms failed to merge: %v", err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 5)
	b := NewHistogram(10, 5)
	for _, x := range []float64{1, 15, 30} {
		a.Add(x)
	}
	for _, x := range []float64{5, 500} {
		b.Add(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 5 {
		t.Errorf("merged total = %d, want 5", a.Total())
	}
	wantCounts := []int64{2, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if a.Counts[i] != w {
			t.Errorf("merged bucket %d = %d, want %d", i, a.Counts[i], w)
		}
	}
	// b is untouched by the merge.
	if b.Total() != 2 || b.Counts[0] != 1 || b.Counts[4] != 1 {
		t.Errorf("merge mutated its argument: total=%d counts=%v", b.Total(), b.Counts)
	}
	// Merging an empty histogram is a no-op.
	if err := a.Merge(NewHistogram(10, 5)); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 5 {
		t.Errorf("merging an empty histogram changed the total to %d", a.Total())
	}
	// And merging *into* an empty histogram reproduces the source.
	empty := NewHistogram(10, 5)
	if err := empty.Merge(a); err != nil {
		t.Fatal(err)
	}
	if empty.Total() != a.Total() || empty.Quantile(0.5) != a.Quantile(0.5) {
		t.Error("merge into empty histogram did not reproduce the source")
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	h := NewHistogram(10, 5)
	if err := h.Merge(NewHistogram(10, 6)); err == nil {
		t.Error("merge accepted a histogram with a different bucket count")
	}
	if err := h.Merge(NewHistogram(20, 5)); err == nil {
		t.Error("merge accepted a histogram with different bounds")
	}
	if err := h.Merge(NewHistogramGrowth(10, 1.5, 5)); err == nil {
		t.Error("merge accepted a histogram with a different growth factor")
	}
	if h.Total() != 0 {
		t.Errorf("rejected merges must not modify the receiver; total = %d", h.Total())
	}
}

func TestHistogramQuantileOverflowMass(t *testing.T) {
	h := NewHistogram(10, 3) // bounds 10, 20, +inf
	h.Add(5)
	h.Add(1000) // overflow bucket
	h.Add(2000) // overflow bucket
	// Two thirds of the mass is in the unbounded bucket: the tightest
	// finite bound for quantiles landing there is the exact maximum.
	if q := h.Quantile(0.5); q != 2000 {
		t.Errorf("median with overflow-bucket mass = %v, want 2000", q)
	}
	if q := h.Quantile(0.33); q != 10 {
		t.Errorf("q33 = %v, want 10", q)
	}
}

func TestHistogramQuantileBoundsSafe(t *testing.T) {
	// Regression for the bounds-safety bugfix: quantiles must stay finite
	// and within [min bucket bound, exact max] at the edges, with and
	// without overflow-bucket mass.
	t.Run("all mass in overflow", func(t *testing.T) {
		h := NewHistogram(10, 3)
		h.Add(500)
		h.Add(700)
		for _, q := range []float64{0, 0.5, 1} {
			if v := h.Quantile(q); math.IsInf(v, 1) {
				t.Errorf("Quantile(%v) = +Inf with all mass in overflow", q)
			}
		}
		if v := h.Quantile(1); v != 700 {
			t.Errorf("Quantile(1) = %v, want the exact max 700", v)
		}
	})
	t.Run("q=0 reports the first occupied bucket, capped at max", func(t *testing.T) {
		h := NewHistogram(10, 3)
		h.Add(3)
		if v := h.Quantile(0); v != 3 {
			t.Errorf("Quantile(0) = %v, want 3 (single observation below its bound)", v)
		}
	})
	t.Run("q=1 never exceeds the max observation", func(t *testing.T) {
		h := NewHistogram(10, 3)
		h.Add(15) // bucket bound 20, observation 15
		if v := h.Quantile(1); v != 15 {
			t.Errorf("Quantile(1) = %v, want 15", v)
		}
	})
	t.Run("out-of-range q clamps", func(t *testing.T) {
		h := NewHistogram(10, 3)
		h.Add(5)
		h.Add(15)
		if v := h.Quantile(2); v != 15 {
			t.Errorf("Quantile(2) = %v, want 15", v)
		}
		if v := h.Quantile(-1); v != 10 {
			t.Errorf("Quantile(-1) = %v, want the first bucket bound 10", v)
		}
	})
}

func TestHistogramMaxAndReset(t *testing.T) {
	h := NewHistogram(10, 3)
	if h.Max() != 0 {
		t.Errorf("empty Max = %v, want 0", h.Max())
	}
	h.Add(42)
	h.Add(7)
	if h.Max() != 42 {
		t.Errorf("Max = %v, want 42", h.Max())
	}
	// Merge carries the max across.
	g := NewHistogram(10, 3)
	g.Add(99)
	if err := h.Merge(g); err != nil {
		t.Fatal(err)
	}
	if h.Max() != 99 {
		t.Errorf("merged Max = %v, want 99", h.Max())
	}
	h.Reset()
	if h.Total() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("after Reset: total=%d max=%v", h.Total(), h.Max())
	}
	for _, c := range h.Counts {
		if c != 0 {
			t.Fatal("Reset left a nonzero bucket count")
		}
	}
	// A reset histogram records like a fresh one.
	h.Add(5)
	if h.Max() != 5 || h.Total() != 1 {
		t.Errorf("after Reset+Add: total=%d max=%v", h.Total(), h.Max())
	}
}
