// Package stats provides the deterministic random-number generator and
// small statistical helpers used throughout the simulator.
//
// Simulation runs must be bit-reproducible given a seed, so the simulator
// does not use math/rand's global source. Instead every component that
// needs randomness owns an explicit *stats.RNG seeded by its caller.
package stats

// RNG is a deterministic pseudo-random number generator based on the
// xorshift64* algorithm (Vigna, 2014). It is small, fast, passes BigCrush
// for the uses we put it to (workload choice sequences), and — unlike
// math/rand.Source implementations — its state is a single word that is
// trivial to snapshot in tests.
//
// The zero RNG is not valid; construct one with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state. A zero seed is remapped to a fixed
// non-zero constant.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	r.state = seed
}

// Uint64 returns the next value in the sequence.
//
//o2:hotpath
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniformly distributed integer in [0, n). It panics when
// n <= 0, matching math/rand.Intn.
//
//o2:hotpath
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method avoids modulo bias without
	// a division in the common case.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Float64 returns a uniformly distributed float in [0, 1).
//
//o2:hotpath
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from r. The derived stream is
// decorrelated by hashing the parent's next output with a distinct odd
// multiplier, so components can be given private RNGs without sharing a
// sequence.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64()*0xDA942042E4DD58B5 + 1)
}

// DeriveSeed deterministically derives a child seed from a base seed and a
// sequence of strata (for example: cell index, repeat number). It folds each
// stratum into the state with a SplitMix64 step, so the result depends only
// on the values — not on which goroutine computes it or in what order cells
// run. Concurrent simulations each derive their own seed and never share
// generator state.
func DeriveSeed(base uint64, strata ...uint64) uint64 {
	h := base
	for _, s := range strata {
		h += 0x9E3779B97F4A7C15 // SplitMix64 increment
		h ^= s
		h = mix64(h)
	}
	if len(strata) == 0 {
		h = mix64(h)
	}
	return h
}

// mix64 is the SplitMix64 finalizer (Steele, Lea, Flood 2014): a bijective
// avalanche so nearby inputs yield decorrelated outputs.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// mul64 computes the 128-bit product of a and b, returning the high and low
// 64-bit halves. (math/bits.Mul64 exists, but spelling it out keeps this
// package dependency-free and documents the rejection-sampling math.)
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}
