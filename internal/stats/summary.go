package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and reports running
// moments using Welford's numerically stable online algorithm.
//
// The zero Summary is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 when no observations were added.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 when empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 when empty.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance (n-1 denominator), or 0 for fewer
// than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// String formats the summary for human-readable reports.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f stddev=%.2f min=%.2f max=%.2f",
		s.n, s.Mean(), s.Stddev(), s.min, s.max)
}

// Summarize returns a Summary over xs, added in slice order. Callers that
// need reproducible aggregates (the sweep engine's repeat statistics) pass
// observations in a canonical order — repeat order, not completion order —
// so the floating-point accumulation is identical run to run.
func Summarize(xs []float64) Summary {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input, so the
// caller's slice is left untouched. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bucket histogram over [0, +inf) with exponentially
// growing bucket boundaries, used for latency distributions in reports.
type Histogram struct {
	// Bounds[i] is the inclusive upper bound of bucket i; the final bucket
	// is unbounded.
	Bounds []float64
	Counts []int64
	total  int64
	max    float64 // largest observation; bounds-safe cap for Quantile
}

// NewHistogram builds a histogram with buckets (0, first], doubling up to
// nbuckets-1 bounded buckets plus one overflow bucket.
func NewHistogram(first float64, nbuckets int) *Histogram {
	return NewHistogramGrowth(first, 2, nbuckets)
}

// NewHistogramGrowth builds a histogram whose bucket upper bounds grow
// geometrically: first, first*growth, first*growth², …, for nbuckets-1
// bounded buckets plus one overflow bucket. A growth just above 1 trades
// memory for quantile resolution (the bound Quantile reports is at most
// growth× the true value). Bounds are computed by repeated multiplication,
// so equal (first, growth, nbuckets) give bit-identical bounds everywhere —
// the property Merge's bounds check relies on.
func NewHistogramGrowth(first, growth float64, nbuckets int) *Histogram {
	if first <= 0 || growth <= 1 {
		panic(fmt.Sprintf("stats: NewHistogramGrowth(%v, %v, %d): first must be positive and growth > 1",
			first, growth, nbuckets))
	}
	if nbuckets < 2 {
		nbuckets = 2
	}
	h := &Histogram{
		Bounds: make([]float64, nbuckets-1),
		Counts: make([]int64, nbuckets),
	}
	b := first
	for i := range h.Bounds {
		h.Bounds[i] = b
		b *= growth
	}
	return h
}

// Add records one observation.
//
//o2:hotpath
func (h *Histogram) Add(x float64) {
	if h.total == 0 || x > h.max {
		h.max = x
	}
	h.total++
	for i, b := range h.Bounds {
		if x <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Max returns the largest recorded observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Reset zeroes the recorded observations while keeping the bucket bounds,
// so one histogram can be reused across sweep repeats without
// reallocating its count arrays.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.total = 0
	h.max = 0
}

// Merge folds other's counts into h. The histograms must have identical
// bucket bounds; mismatched bounds are rejected because summing counts
// across different bucketings silently corrupts every quantile. Counts are
// integers, so merging is exact, commutative, and associative — aggregating
// per-worker recorders in any order yields the same histogram, which is what
// keeps merged quantiles worker-count invariant.
func (h *Histogram) Merge(other *Histogram) error {
	if len(other.Bounds) != len(h.Bounds) {
		return fmt.Errorf("stats: merging histogram with %d bounds into one with %d",
			len(other.Bounds), len(h.Bounds))
	}
	for i, b := range h.Bounds {
		if other.Bounds[i] != b {
			return fmt.Errorf("stats: merging histograms with mismatched bounds at bucket %d: %v vs %v",
				i, other.Bounds[i], b)
		}
	}
	if other.total > 0 && (h.total == 0 || other.max > h.max) {
		h.max = other.max
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.total += other.total
	return nil
}

// Quantile returns an upper bound for the q-th quantile (0 <= q <= 1) by
// scanning bucket counts. The reported bound is capped at the exact
// maximum observation, which keeps it finite — and tight — even when the
// quantile lands in the unbounded overflow bucket. Out-of-range q clamps
// to the nearest valid quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	if target > h.total {
		target = h.total
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			if i < len(h.Bounds) && h.Bounds[i] < h.max {
				return h.Bounds[i]
			}
			return h.max
		}
	}
	return h.max
}
