package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedZeroRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared sanity check over 10 buckets.
	r := NewRNG(99)
	const buckets, samples = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; p=0.001 critical value is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-squared = %.2f, distribution looks biased: %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(11)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream correlates with parent: %d/100 equal", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	// Deterministic.
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Error("DeriveSeed not deterministic")
	}
	// Stratum order matters: (a, b) and (b, a) are different children.
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("DeriveSeed ignores stratum order")
	}
	// Dense (cell, repeat) grids must not collide.
	seen := map[uint64]bool{}
	for cell := uint64(0); cell < 64; cell++ {
		for rep := uint64(0); rep < 8; rep++ {
			seen[DeriveSeed(12345, cell, rep)] = true
		}
	}
	if len(seen) != 64*8 {
		t.Errorf("64×8 strata produced %d distinct seeds", len(seen))
	}
	// No strata still mixes: the child differs from the base and from
	// adjacent bases.
	if DeriveSeed(7) == 7 || DeriveSeed(7) == DeriveSeed(8) {
		t.Error("strata-less derivation degenerate")
	}
}

func TestDeriveSeedFeedsDecorrelatedRNGs(t *testing.T) {
	// Children of adjacent strata drive RNGs whose outputs diverge
	// immediately — the property parallel sweep cells rely on.
	a := NewRNG(DeriveSeed(9, 0, 0))
	b := NewRNG(DeriveSeed(9, 0, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("adjacent derived streams agree on %d/64 draws", same)
	}
}
