// Package a exercises the hotalloc analyzer: every allocating construct
// inside an //o2:hotpath function is a finding, and the same constructs
// in untagged functions are not.
package a

import "fmt"

type point struct {
	x, y int
}

func (p *point) getX() int { return p.x }

func varargs(xs ...int) int { return len(xs) }

// Bad collects one of each allocating construct.
//
//o2:hotpath
func Bad(n int) []int {
	s := make([]int, n) // want `make allocates`
	s = append(s, 1)    // want `append may grow`
	fmt.Println(n)      // want `fmt\.Println allocates`
	b := []byte("x")    // want `string<->slice conversion copies`
	_ = b
	m := map[int]int{} // want `composite literal of slice/map type`
	_ = m
	p := &point{} // want `address-taken composite literal`
	_ = p
	var i interface{}
	i = n // want `boxes the value on the heap`
	_ = i
	return s
}

// BadConcat builds a string on the hot path.
//
//o2:hotpath
func BadConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// BadClosure captures state into a closure.
//
//o2:hotpath
func BadClosure(n int) func() int {
	return func() int { return n } // want `function literal may allocate`
}

// BadMethodValue binds a method to its receiver.
//
//o2:hotpath
func BadMethodValue(p *point) func() int {
	return p.getX // want `method value allocates`
}

// BadVariadic builds an argument slice at the call site.
//
//o2:hotpath
func BadVariadic() int {
	return varargs(1, 2) // want `variadic call of varargs allocates`
}

// OKSpread forwards an existing slice: no argument slice is built.
//
//o2:hotpath
func OKSpread(xs []int) int {
	return varargs(xs...)
}

// OKArith is pure arithmetic on existing storage.
//
//o2:hotpath
func OKArith(xs []int, x, y uint64) uint64 {
	if len(xs) > 0 {
		xs[0] = int(x)
	}
	if x > y {
		return x - y
	}
	return y - x
}

// Untagged may allocate freely.
func Untagged(n int) []int {
	return make([]int, n)
}

// Suppressed documents a deliberate, amortized allocation.
//
//o2:hotpath
func Suppressed(s []int, v int) []int {
	//o2:allowalloc "fixture: amortized growth, steady-state capacity is reached during warmup"
	s = append(s, v)
	return s
}

// MissingJust shows that a justification-free suppression both fails to
// suppress and is itself reported.
//
//o2:hotpath
func MissingJust(s []int, v int) []int {
	//o2:allowalloc // want `requires a non-empty quoted justification`
	s = append(s, v) // want `append may grow`
	return s
}
