// Package trace is a fixture stand-in for an internal package that a
// fixture example imports directly.
package trace

// Kind classifies a trace event.
type Kind uint8
