// Package sim is a fixture stand-in for an internal simulation package
// whose types must not leak through the façade unlaundered.
package sim

// Time is simulated time; the o2 fixture launders it with an alias.
type Time uint64

// Config is internal configuration with no o2 alias.
type Config struct {
	Cores int
}
