// Command demo is a fixture example with one sanctioned internal import
// and one suppression that is missing its justification.
package main

import (
	//o2:allow facade "fixture: the demo renders internal structures on purpose"
	"repro/internal/sim"

	//o2:allow facade // want `requires a non-empty quoted justification`
	"repro/internal/trace" // want `bypasses the façade`
)

func main() {
	var c sim.Config
	var k trace.Kind
	_ = c
	_ = k
}
