// Package o2 is a fixture stand-in for the module façade: its exported
// API may mention internal types only through its own exported aliases.
package o2

import "repro/internal/sim"

// Time is the sanctioned laundering alias for sim.Time.
type Time = sim.Time

// Now is fine: its result type is laundered by the Time alias.
func Now() Time { return 0 }

// Snapshot leaks an internal type with no exported alias.
func Snapshot() sim.Config { // want `internal type repro/internal/sim\.Config`
	return sim.Config{}
}

// Runtime leaks an internal type through an exported field.
type Runtime struct { // want `internal type repro/internal/sim\.Config`
	Cfg sim.Config
}

// Leaky is a documented, sanctioned leak.
//
//o2:allow facade "fixture: transitional API scheduled for removal"
func Leaky() sim.Config { return sim.Config{} }

// hidden stays unexported, so its internal parameter is not API surface.
func hidden(c sim.Config) int { return c.Cores }
