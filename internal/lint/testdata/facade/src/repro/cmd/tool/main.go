// Command tool is a fixture binary: binaries may import only repro/o2
// from the module.
package main

import (
	"repro/internal/sim" // want `bypasses the façade`
	"repro/o2"
)

func main() {
	var c sim.Config
	_ = c
	_ = o2.Now()
}
