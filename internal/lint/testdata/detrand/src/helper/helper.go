// Package helper is outside the result-producing set, so detrand must
// stay silent here: tooling may read the wall clock.
package helper

import "time"

// Stamp returns the wall-clock time; fine outside result packages.
func Stamp() int64 {
	return time.Now().Unix()
}
