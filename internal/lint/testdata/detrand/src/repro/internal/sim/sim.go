// Package sim exercises the detrand analyzer inside a result-producing
// package: wall-clock reads, global math/rand sources, and RNG
// construction whose seed does not flow from the run seed.
package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"

	"repro/internal/stats"
)

// Grace period referenced as a type only: naming time.Duration is fine,
// only the wall-clock entry points are forbidden.
var grace time.Duration

// BadClock reads the wall clock.
func BadClock() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.Unix()
}

// BadGlobal draws from the process-global math/rand source.
func BadGlobal() int64 {
	return rand.Int63() // want `math/rand\.Int63 draws from the process-global source`
}

// BadGlobalV2 draws from the process-global math/rand/v2 source.
func BadGlobalV2() int {
	return randv2.IntN(10) // want `math/rand/v2\.IntN draws from the process-global source`
}

// BadHardcoded seeds a generator with a constant: deterministic, but
// decoupled from the configured run seed.
func BadHardcoded() *stats.RNG {
	return stats.NewRNG(42) // want `stats\.NewRNG seed does not flow from the run seed`
}

// BadSource hard-codes a math/rand source seed.
func BadSource() rand.Source {
	return rand.NewSource(7) // want `rand\.NewSource seed does not flow from the run seed`
}

// GoodDerived seeds through the derivation helper.
func GoodDerived(seed uint64) *stats.RNG {
	return stats.NewRNG(stats.DeriveSeed(seed, 3))
}

// GoodNamed threads a *seed*-named value.
func GoodNamed(cellSeed uint64) *stats.RNG {
	return stats.NewRNG(cellSeed)
}

// GoodSplit derives entropy from an already-seeded generator.
func GoodSplit(r *stats.RNG) *stats.RNG {
	return stats.NewRNG(r.Uint64())
}

// GoodPCG threads the seed into a v2 generator.
func GoodPCG(seed uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed, stats.DeriveSeed(seed, 1)))
}

// Suppressed documents a deliberate fixed seed.
func Suppressed() *stats.RNG {
	//o2:allow detrand "fixture: calibration table is defined by this exact stream"
	return stats.NewRNG(12345)
}

// MissingJust shows that a justification-free suppression both fails to
// suppress and is itself reported.
func MissingJust() *stats.RNG {
	//o2:allow detrand // want `requires a non-empty quoted justification`
	return stats.NewRNG(99) // want `seed does not flow from the run seed`
}
