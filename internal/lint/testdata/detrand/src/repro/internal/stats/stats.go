// Package stats is a fixture stand-in for the module's RNG package: just
// enough surface for the detrand fixtures to call seeded constructors and
// seed-derivation helpers.
package stats

// RNG is a deterministic generator.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed | 1}
}

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state = r.state*6364136223846793005 + 1
	return r.state
}

// DeriveSeed deterministically derives a child seed.
func DeriveSeed(base uint64, strata ...uint64) uint64 {
	h := base
	for _, s := range strata {
		h = (h ^ s) * 0x9E3779B97F4A7C15
	}
	return h
}
