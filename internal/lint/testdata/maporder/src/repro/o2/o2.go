// Package o2 exercises the maporder analyzer inside a result-producing
// package: map iteration order escaping into returns, appends, prints and
// accumulators, next to the idioms the analyzer must accept.
package o2

import (
	"fmt"
	"sort"
)

// SortedNames is the sanctioned collect-then-sort idiom: the append is
// forgiven because names is sorted before anyone can observe its order.
func SortedNames(stats map[string]int) []string {
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BadNames returns keys in raw iteration order.
func BadNames(stats map[string]int) []string {
	var names []string
	for n := range stats {
		names = append(names, n) // want `order of append to names`
	}
	return names
}

// BadReturn returns whichever key the runtime happens to visit first.
func BadReturn(m map[string]int) string {
	for k := range m {
		return k // want `reaches a returned value`
	}
	return ""
}

// OKEarlyExit returns a constant: any visiting order gives the same answer.
func OKEarlyExit(m map[string]int, target string) bool {
	for k := range m {
		if k == target {
			return true
		}
	}
	return false
}

// OKCounting accumulates integers, which is exact and commutative.
func OKCounting(m map[string][]int) int {
	n := 0
	for _, v := range m {
		n += len(v)
	}
	return n
}

// BadFloatSum accumulates floats, which rounds differently per order.
func BadFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation`
	}
	return sum
}

// BadLastWins keeps whichever value iteration visits last.
func BadLastWins(m map[string]int) int {
	last := 0
	for _, v := range m {
		last = v // want `decides the final value of last`
	}
	return last
}

// OKKeyedWrite writes each key's slot exactly once; final state is
// order-independent.
func OKKeyedWrite(m map[string]int) map[string]bool {
	seen := make(map[string]bool, len(m))
	for k := range m {
		seen[k] = true
	}
	return seen
}

// BadSend streams keys in iteration order.
func BadSend(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `reaches a channel send`
	}
}

// BadPrint prints entries in iteration order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `reaches Println output`
	}
}

// Suppressed documents a loop whose order-insensitivity the analyzer
// cannot prove.
func Suppressed(m map[string]int) []string {
	var out []string
	//o2:orderinsensitive "fixture: consumer treats out as a set and never observes order"
	for k := range m {
		out = append(out, k)
	}
	return out
}

// MissingJust shows that a justification-free suppression both fails to
// suppress and is itself reported.
func MissingJust(m map[string]int) []string {
	var out []string
	//o2:orderinsensitive // want `requires a non-empty quoted justification`
	for k := range m {
		out = append(out, k) // want `order of append to out`
	}
	return out
}
