// Package helper is outside the result-producing set, so maporder must
// stay silent even on an order-leaking loop.
package helper

// Keys returns keys in raw iteration order; fine outside result packages.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
