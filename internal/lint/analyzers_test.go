package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer is exercised against its fixture tree under testdata/,
// which includes — per analyzer — at least one justified suppression that
// must silence the finding and one justification-free directive that must
// itself be reported (see linttest for the "// want" grammar).

func TestDetrand(t *testing.T)  { linttest.Run(t, lint.Detrand, "testdata/detrand/src") }
func TestMaporder(t *testing.T) { linttest.Run(t, lint.Maporder, "testdata/maporder/src") }
func TestFacade(t *testing.T)   { linttest.Run(t, lint.Facade, "testdata/facade/src") }
func TestHotalloc(t *testing.T) { linttest.Run(t, lint.Hotalloc, "testdata/hotalloc/src") }

// TestRepositoryClean runs the full suite over the real module: the tree
// must stay lint-clean, so weakening any machine-checked contract (for
// example deleting an //o2:hotpath function's allocation-free body) fails
// `go test` as well as the CI lint job.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, err := lint.Run("../..", lint.All(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
