package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrand forbids nondeterministic entropy sources in result-producing
// packages (internal/sim, internal/stats, internal/workload, o2):
//
//   - wall-clock time (time.Now, time.Since, timers): simulated time comes
//     from sim.Engine, and a run's results must not depend on when or how
//     fast the host executes it;
//   - the global math/rand and math/rand/v2 sources: they are process-wide
//     and auto-seeded, so two runs — or two sweep cells sharing the
//     process — would not be reproducible;
//   - RNG construction whose seed does not flow from the run's threaded
//     seed: every generator must be seeded via stats.DeriveSeed/o2.CellSeed,
//     split from an existing generator, or handed a value that carries the
//     configured seed (o2.WithSeed / RunParams.Seed / a *seed*-named
//     value). A hard-coded seed is deterministic but silently decouples the
//     component from the seed the user configured, so sweep cells and
//     repeats stop varying.
//
// Suppress a finding with //o2:allow detrand "justification" on the same
// or the preceding line.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock time and unseeded RNG construction in result-producing packages",
	Run:  runDetrand,
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand{,/v2} functions that build a private
// generator; they are legal, but their seed arguments are checked by the
// seed-flow rule. Every other package-level function of those packages
// draws from the global source and is forbidden outright.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// rngPackages are packages whose types are themselves generators: a method
// call on one of their types derives fresh entropy from an already-seeded
// generator, which satisfies the seed-flow rule.
var rngPackages = map[string]bool{
	"math/rand": true, "math/rand/v2": true, "repro/internal/stats": true,
}

func runDetrand(pass *Pass) error {
	if !resultPackages[pass.Pkg.Path()] {
		return nil
	}
	pass.checkDirectiveJustifications("allow", "detrand")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkForbiddenRef(pass, n)
			case *ast.CallExpr:
				checkSeedFlow(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkForbiddenRef flags any mention — call or value — of a wall-clock
// function or a global-source math/rand function.
func checkForbiddenRef(pass *Pass, id *ast.Ident) {
	f, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || hasReceiver(f) {
		return
	}
	switch pkgPathOf(f) {
	case "time":
		if !forbiddenTimeFuncs[f.Name()] || pass.suppressed(id.Pos(), "allow", "detrand") {
			return
		}
		pass.Reportf(id.Pos(), "time.%s reads the wall clock; simulated time must come from sim.Engine so results are reproducible", f.Name())
	case "math/rand", "math/rand/v2":
		if randConstructors[f.Name()] || pass.suppressed(id.Pos(), "allow", "detrand") {
			return
		}
		pass.Reportf(id.Pos(), "%s.%s draws from the process-global source; construct a generator from the run seed instead (stats.NewRNG(stats.DeriveSeed(...)))", pkgPathOf(f), f.Name())
	}
}

// seededConstructors maps RNG constructors to whether their arguments are
// seed values subject to the seed-flow rule. rand.New and rand.NewZipf
// take an already-built source/generator, which is checked at its own
// construction site.
func isSeededConstructor(f *types.Func) bool {
	switch pkgPathOf(f) {
	case "math/rand", "math/rand/v2":
		return f.Name() == "NewSource" || f.Name() == "NewPCG" || f.Name() == "NewChaCha8"
	case "repro/internal/stats", "repro/o2":
		return f.Name() == "NewRNG"
	}
	return false
}

// checkSeedFlow enforces the seed-flow rule on RNG constructor calls: at
// least one argument must visibly derive from the run seed.
func checkSeedFlow(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || !isSeededConstructor(f) || len(call.Args) == 0 {
		return
	}
	// Inside internal/stats itself NewRNG is the primitive being built;
	// its own helpers (Split) legitimately wrap raw generator output.
	for _, arg := range call.Args {
		if seedFlows(pass, arg) {
			return
		}
	}
	if pass.suppressed(call.Pos(), "allow", "detrand") {
		return
	}
	pass.Reportf(call.Pos(), "%s.%s seed does not flow from the run seed: derive it with stats.DeriveSeed/o2.CellSeed, split an existing generator, or thread a *Seed*-named value from o2.WithSeed", f.Pkg().Name(), f.Name())
}

// seedFlows reports whether the expression visibly carries the run seed:
// it contains a call to a seed-derivation function, a method call on an
// existing generator, or an identifier/field whose name says it is a seed.
func seedFlows(pass *Pass, e ast.Expr) bool {
	flows := false
	ast.Inspect(e, func(n ast.Node) bool {
		if flows {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			f := calleeFunc(pass.Info, n)
			if f == nil {
				return true
			}
			switch f.Name() {
			case "DeriveSeed", "CellSeed":
				if p := pkgPathOf(f); p == "repro/internal/stats" || p == "repro/o2" {
					flows = true
				}
			}
			if hasReceiver(f) && rngPackages[pkgPathOf(f)] {
				flows = true // drawing from an already-seeded generator
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "seed") {
				flows = true
			}
		}
		return !flows
	})
	return flows
}
