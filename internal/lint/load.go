package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one package loaded for analysis: its syntax trees plus full
// type information.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream it prints.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load loads the packages matching the go-list patterns, resolved in dir.
//
// Each matched package is parsed from source (with comments, so //o2:
// directives survive) and type-checked against compiled export data: the
// loader asks the go command to build export data for the full dependency
// closure (`go list -export -deps`) and feeds it to the standard gc
// importer. This keeps the loader on the standard library alone — no
// golang.org/x/tools — while still giving analyzers complete type
// information, and it works offline because only the standard library and
// the module's own packages are ever compiled.
//
// Test files are not loaded: the contracts o2lint enforces are about
// result-producing simulation code, and tests legitimately use wall-clock
// timeouts, ad-hoc seeds, and allocation-heavy assertions.
func Load(dir string, patterns ...string) ([]*Package, error) {
	roots, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp, err := NewDepsImporter(fset, dir, patterns...)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, root := range roots {
		if len(root.GoFiles) == 0 {
			continue
		}
		pkg := &Package{Path: root.ImportPath, Dir: root.Dir, Fset: fset}
		for _, name := range root.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Info = NewTypeInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(root.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("o2lint: type-checking %s: %v", root.ImportPath, err)
		}
		pkg.Types = tpkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// NewDepsImporter returns a types.Importer that serves compiled export
// data for the named packages (go list patterns) and their whole
// dependency closure, as built by the go command in dir. The fixture
// loader (linttest) uses it for standard-library imports.
func NewDepsImporter(fset *token.FileSet, dir string, pkgs ...string) (types.Importer, error) {
	exports := make(map[string]string)
	if len(pkgs) > 0 {
		closure, err := goList(dir, append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range closure {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("o2lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup), nil
}

// NewTypeInfo returns a types.Info with every map the analyzers consult
// populated. The fixture loader (linttest) type-checks with the same maps
// so fixtures exercise exactly the information real runs have.
func NewTypeInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
