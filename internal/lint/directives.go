package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// The //o2: directive grammar. Directives are ordinary line comments and
// are recognized anywhere in a file:
//
//	//o2:hotpath                          tags the following function for hotalloc
//	//o2:orderinsensitive "justification" suppresses maporder on this or the next line
//	//o2:allowalloc "justification"       suppresses hotalloc on this or the next line
//	//o2:allow <analyzer> "justification" suppresses <analyzer> on this or the next line
//
// Every suppression requires a non-empty, Go-quoted justification string;
// the owning analyzer reports directives that lack one, so a suppression
// can never silently ship without a recorded reason.
const directivePrefix = "//o2:"

// A Directive is one parsed //o2: comment.
type Directive struct {
	Name string // "hotpath", "orderinsensitive", "allowalloc", "allow"
	Arg  string // analyzer name, for "allow" only
	Just string // the justification string, when present and well-formed
	// HasJust records whether a well-formed justification was given.
	HasJust bool
	Pos     token.Pos
	Line    int
	File    string
}

// directiveNames maps each directive to whether it requires a
// justification string.
var directiveNames = map[string]bool{
	"hotpath":          false,
	"orderinsensitive": true,
	"allowalloc":       true,
	"allow":            true,
}

// parseDirective parses one comment, returning nil when it is not an
// //o2: directive. A non-nil directive with an empty Name is malformed.
func parseDirective(c *ast.Comment) *Directive {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return nil
	}
	d := &Directive{Pos: c.Pos()}
	rest := text
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		d.Name, rest = rest[:i], strings.TrimSpace(rest[i:])
	} else {
		d.Name, rest = rest, ""
	}
	if _, known := directiveNames[d.Name]; !known {
		d.Name = ""
		return d
	}
	if d.Name == "allow" {
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			d.Arg, rest = rest[:i], strings.TrimSpace(rest[i:])
		} else {
			d.Arg, rest = rest, ""
		}
	}
	if rest != "" {
		if just, err := strconv.Unquote(rest); err == nil && just != "" {
			d.Just, d.HasJust = just, true
		}
	}
	return d
}

// indexDirectives parses every //o2: directive in the files, keyed by
// filename and line. Unknown directive names are reported immediately (no
// analyzer owns them); justification requirements are enforced by the
// owning analyzers so the finding carries the right analyzer name.
func indexDirectives(fset *token.FileSet, files []*ast.File) (map[string]map[int]*Directive, []Diagnostic) {
	idx := make(map[string]map[int]*Directive)
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseDirective(c)
				if d == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if d.Name == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "o2lint",
						Message:  "unknown //o2: directive (known: hotpath, orderinsensitive, allowalloc, allow)",
					})
					continue
				}
				d.File, d.Line = pos.Filename, pos.Line
				byLine := idx[d.File]
				if byLine == nil {
					byLine = make(map[int]*Directive)
					idx[d.File] = byLine
				}
				byLine[d.Line] = d
			}
		}
	}
	return idx, diags
}

// directiveFor returns the directive governing pos: one on the same line,
// or on the line immediately above.
func (p *Pass) directiveFor(pos token.Pos) *Directive {
	position := p.Fset.Position(pos)
	byLine := p.directives[position.Filename]
	if byLine == nil {
		return nil
	}
	if d := byLine[position.Line]; d != nil {
		return d
	}
	return byLine[position.Line-1]
}

// suppressed reports whether a well-formed directive with the given name
// (and, for "allow", the given analyzer argument) governs pos. Malformed
// directives never suppress — they are themselves findings.
func (p *Pass) suppressed(pos token.Pos, name, arg string) bool {
	d := p.directiveFor(pos)
	if d == nil || d.Name != name || d.Arg != arg {
		return false
	}
	return !directiveNames[name] || d.HasJust
}

// checkDirectiveJustifications reports every directive with the given
// name and argument that is missing its required justification string.
// Each analyzer calls this for the directives it owns.
func (p *Pass) checkDirectiveJustifications(name, arg string) {
	for _, byLine := range p.directives {
		for _, d := range byLine {
			if d.Name != name || d.Arg != arg || d.HasJust {
				continue
			}
			spelled := directivePrefix + name
			if arg != "" {
				spelled += " " + arg
			}
			p.Reportf(d.Pos, "%s requires a non-empty quoted justification, e.g. %s %q", spelled, spelled, "why this is safe")
		}
	}
}

// funcHotpathDirective returns the //o2:hotpath directive in fn's doc
// comment, or nil.
func (p *Pass) funcHotpathDirective(fn *ast.FuncDecl) *Directive {
	if fn.Doc == nil {
		return nil
	}
	for _, c := range fn.Doc.List {
		if d := parseDirective(c); d != nil && d.Name == "hotpath" {
			return d
		}
	}
	return nil
}
