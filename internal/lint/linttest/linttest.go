// Package linttest runs one analyzer over a testdata fixture tree and
// checks its findings against inline "// want" expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest so the fixtures port
// unchanged if the module ever takes on the x/tools dependency.
//
// A fixture tree lives at testdata/<analyzer>/src/<import-path>/*.go.
// Every directory containing Go files becomes a package whose import path
// is its path relative to the src root — so fixtures can impersonate the
// module's own packages (repro/o2, repro/internal/...) and exercise
// path-scoped rules. Fixture packages are type-checked from source against
// each other; standard-library imports are resolved through export data
// built by the go command (lint.NewDepsImporter), so fixtures work in the
// same offline, dependency-free environment as o2lint itself.
//
// Expectations are comments of the form
//
//	code() // want `regexp` `another regexp`
//
// Each pattern must match (re.MatchString) the message of a distinct
// diagnostic reported on that line; diagnostics without a matching
// pattern, and patterns without a matching diagnostic, fail the test. The
// marker may share a comment with an //o2: directive, which is how the
// malformed-directive fixtures annotate the very line under test.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads the fixture tree rooted at srcRoot, applies the analyzer to
// every fixture package, and reports expectation mismatches on t.
func Run(t *testing.T, a *lint.Analyzer, srcRoot string) {
	t.Helper()
	root, err := filepath.Abs(srcRoot)
	if err != nil {
		t.Fatal(err)
	}
	l, err := newLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.loadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	diags, err := lint.RunPackages([]*lint.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, miss := range wants.unmatched() {
		t.Errorf("no %s diagnostic matched:\n  %s", a.Name, miss)
	}
}

// loader parses and type-checks the fixture tree. It implements
// types.Importer so fixture packages can import one another by their
// fabricated paths; everything else falls through to compiled export data.
type loader struct {
	root    string
	fset    *token.FileSet
	dirs    map[string]string // fixture import path -> directory
	paths   []string          // sorted fixture import paths
	std     types.Importer
	pkgs    map[string]*lint.Package
	loading map[string]bool // cycle guard
}

func newLoader(root string) (*loader, error) {
	l := &loader{
		root:    root,
		fset:    token.NewFileSet(),
		dirs:    make(map[string]string),
		pkgs:    make(map[string]*lint.Package),
		loading: make(map[string]bool),
	}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		if _, ok := l.dirs[ip]; !ok {
			l.dirs[ip] = filepath.Dir(path)
			l.paths = append(l.paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(l.paths)

	// Standard-library imports of the fixtures resolve through export
	// data; fixture-to-fixture imports resolve through this loader.
	stdSet := make(map[string]bool)
	for _, ip := range l.paths {
		files, err := parser.ParseDir(l.fset, l.dirs[ip], nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, pkg := range files {
			for _, f := range pkg.Files {
				for _, imp := range f.Imports {
					p, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if _, fixture := l.dirs[p]; !fixture {
						stdSet[p] = true
					}
				}
			}
		}
	}
	var std []string
	for p := range stdSet {
		std = append(std, p)
	}
	sort.Strings(std)
	l.std, err = lint.NewDepsImporter(l.fset, root, std...)
	return l, err
}

// Import implements types.Importer over fixture paths plus export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) loadAll() ([]*lint.Package, error) {
	var pkgs []*lint.Package
	for _, ip := range l.paths {
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *loader) load(path string) (*lint.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("linttest: fixture import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirs[path]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &lint.Package{Path: path, Dir: dir, Fset: l.fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = lint.NewTypeInfo()
	conf := types.Config{Importer: l}
	pkg.Types, err = conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("linttest: type-checking fixture %s: %v", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// An expectation is one want pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func (e *expectation) String() string {
	return fmt.Sprintf("%s:%d: want %q", e.file, e.line, e.rx.String())
}

type wantSet struct {
	byLine map[string]map[int][]*expectation
	all    []*expectation
}

// wantArgRx extracts the Go string literals (quoted or backquoted) that
// follow a "// want" marker.
var wantArgRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

const wantMarker = "// want "

// collectWants scans every fixture file for "// want" markers.
func collectWants(pkgs []*lint.Package) (*wantSet, error) {
	ws := &wantSet{byLine: make(map[string]map[int][]*expectation)}
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			for i, line := range strings.Split(string(data), "\n") {
				idx := strings.Index(line, wantMarker)
				if idx < 0 {
					continue
				}
				args := wantArgRx.FindAllString(line[idx+len(wantMarker):], -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s:%d: // want marker with no quoted pattern", name, i+1)
				}
				for _, arg := range args {
					pat, err := strconv.Unquote(arg)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", name, i+1, arg, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", name, i+1, err)
					}
					e := &expectation{file: name, line: i + 1, rx: rx}
					byLine := ws.byLine[name]
					if byLine == nil {
						byLine = make(map[int][]*expectation)
						ws.byLine[name] = byLine
					}
					byLine[i+1] = append(byLine[i+1], e)
					ws.all = append(ws.all, e)
				}
			}
		}
	}
	return ws, nil
}

// match consumes the first unmatched expectation on the diagnostic's line
// whose pattern matches its message.
func (ws *wantSet) match(d lint.Diagnostic) bool {
	for _, e := range ws.byLine[d.Pos.Filename][d.Pos.Line] {
		if !e.matched && e.rx.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// unmatched returns the expectations no diagnostic satisfied, in file
// order.
func (ws *wantSet) unmatched() []*expectation {
	var miss []*expectation
	for _, e := range ws.all {
		if !e.matched {
			miss = append(miss, e)
		}
	}
	return miss
}
