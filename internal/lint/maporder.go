package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `range` statements over maps, in result-producing
// packages, whose iteration order can escape into a result: a returned
// value, an append to an outer slice, an assignment to an outer variable,
// a channel send, or an encoder/printer call. Go randomizes map iteration
// order per run, so any such escape makes results differ between runs —
// exactly the nondeterminism the sweep engine's byte-identical guarantee
// forbids.
//
// The analyzer recognizes the idioms that are genuinely order-insensitive
// and stays silent on them:
//
//   - writes keyed by the iteration variable (seen[name] = true, or
//     byMetric[name] = append(byMetric[name], v)): each key is visited
//     exactly once, so the final map state is order-independent;
//   - commutative integer accumulation (n++, sum += len(v)) — but NOT
//     floating-point accumulation, which rounds differently per order;
//   - collect-then-sort: appends into a slice that is passed to
//     sort.* / slices.Sort* later in the same function;
//   - order-independent early exits (return of a constant).
//
// Everything else needs either a sort or an explicit
// //o2:orderinsensitive "justification" on the range statement.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration order escaping into results without a sort",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	if !resultPackages[pass.Pkg.Path()] {
		return nil
	}
	pass.checkDirectiveJustifications("orderinsensitive", "")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					maporderScanFunc(pass, n.Body)
				}
				return false
			case *ast.FuncLit: // package-level var initializers
				maporderScanFunc(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// maporderScanFunc checks every map range in one function body, treating
// nested function literals as their own scope (their bodies are scanned
// against themselves, so a sort inside a closure counts for its own
// loops).
func maporderScanFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			maporderScanFunc(pass, n.Body)
			return false
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRange(pass, body, n)
				}
			}
		}
		return true
	})
}

// A sink is one order-sensitive construct found in a map-range body.
type sink struct {
	pos token.Pos
	msg string
	// appendTo is set when the sink is an append to an outer slice
	// variable; such sinks are forgiven when the variable is sorted later
	// in the enclosing function.
	appendTo *types.Var
}

func checkMapRange(pass *Pass, encl *ast.BlockStmt, rs *ast.RangeStmt) {
	if pass.suppressed(rs.For, "orderinsensitive", "") {
		return
	}
	sinks := collectSinks(pass, rs)
	for _, s := range sinks {
		if s.appendTo != nil && sortedAfter(pass, encl, rs, s.appendTo) {
			continue
		}
		pass.Reportf(s.pos, "%s; sort the result or annotate the loop //o2:orderinsensitive %q", s.msg, "why")
	}
}

// declaredIn reports whether obj is declared inside the range statement
// (its body, or the key/value variables of the header).
func declaredIn(obj types.Object, rs *ast.RangeStmt) bool {
	return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
}

// loopDependent reports whether e mentions any identifier declared inside
// the range statement — i.e. whether its value can vary with iteration
// order.
func loopDependent(pass *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && declaredIn(objectOf(pass.Info, id), rs) {
			dep = true
		}
		return !dep
	})
	return dep
}

// collectSinks walks the range body and returns every construct through
// which iteration order can escape.
func collectSinks(pass *Pass, rs *ast.RangeStmt) []sink {
	var sinks []sink
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if loopDependent(pass, res, rs) {
					sinks = append(sinks, sink{n.Pos(), "map iteration order reaches a returned value", nil})
					break
				}
			}
		case *ast.SendStmt:
			sinks = append(sinks, sink{n.Pos(), "map iteration order reaches a channel send", nil})
		case *ast.AssignStmt:
			sinks = append(sinks, assignSinks(pass, n, rs)...)
		case *ast.CallExpr:
			if msg := encoderCall(pass, n, rs); msg != "" {
				sinks = append(sinks, sink{n.Pos(), msg, nil})
			}
		}
		return true
	})
	return sinks
}

// assignSinks classifies one assignment statement inside a map range.
func assignSinks(pass *Pass, as *ast.AssignStmt, rs *ast.RangeStmt) []sink {
	if as.Tok == token.DEFINE {
		return nil // declares loop-local variables
	}
	var sinks []sink
	for i, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		// Writes keyed by the loop variable hit each slot exactly once, so
		// the final state is order-independent.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if loopDependent(pass, ix.Index, rs) {
				continue
			}
			if loopDependent(pass, rhs, rs) {
				sinks = append(sinks, sink{as.Pos(), "map iteration order decides which value wins this fixed-index write", nil})
			}
			continue
		}
		root := rootIdent(lhs)
		if root == nil {
			continue
		}
		obj, _ := objectOf(pass.Info, root).(*types.Var)
		if obj == nil || declaredIn(obj, rs) {
			continue // loop-local state
		}
		switch as.Tok {
		case token.ASSIGN:
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeBuiltin(pass.Info, call) == "append" {
				if len(call.Args) > 0 && exprMentions(pass.Info, call.Args[0], obj) {
					if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
						sinks = append(sinks, sink{as.Pos(), "map iteration order decides the order of append to " + root.Name, obj})
						continue
					}
				}
				sinks = append(sinks, sink{as.Pos(), "map iteration order decides the order of an append outside the loop", nil})
				continue
			}
			if loopDependent(pass, rhs, rs) {
				sinks = append(sinks, sink{as.Pos(), "map iteration order decides the final value of " + root.Name, nil})
			}
		default: // compound assignment: commutative only for integers
			t := pass.TypeOf(lhs)
			if t == nil {
				continue
			}
			b, _ := t.Underlying().(*types.Basic)
			switch {
			case b != nil && b.Info()&types.IsInteger != 0:
				// exact and commutative: fine in any order
			case b != nil && b.Info()&types.IsFloat != 0:
				sinks = append(sinks, sink{as.Pos(), "floating-point accumulation over map iteration order rounds differently per order", nil})
			default:
				if loopDependent(pass, rhs, rs) {
					sinks = append(sinks, sink{as.Pos(), "map iteration order decides the final value of " + root.Name, nil})
				}
			}
		}
	}
	return sinks
}

// encoderCall reports a non-empty message when call writes
// iteration-order-dependent data to a printer, encoder, or writer.
func encoderCall(pass *Pass, call *ast.CallExpr, rs *ast.RangeStmt) string {
	f := calleeFunc(pass.Info, call)
	if f == nil {
		return ""
	}
	name := f.Name()
	isEncoder := false
	if pkgPathOf(f) == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Append")) {
		isEncoder = true
	}
	if hasReceiver(f) && (strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Print")) {
		isEncoder = true
	}
	if !isEncoder {
		return ""
	}
	for _, arg := range call.Args {
		if loopDependent(pass, arg, rs) {
			return "map iteration order reaches " + name + " output"
		}
	}
	return ""
}

// sortedAfter reports whether v is passed to a sort.*/slices.Sort* call
// after the range statement, inside the same function body — the
// collect-then-sort idiom.
func sortedAfter(pass *Pass, encl *ast.BlockStmt, rs *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil {
			return true
		}
		switch pkgPathOf(f) {
		case "sort", "slices":
			if !strings.HasPrefix(f.Name(), "Sort") && !isSortFunc(f.Name()) {
				return true
			}
			for _, arg := range call.Args {
				if exprMentions(pass.Info, arg, v) {
					sorted = true
				}
			}
		}
		return !sorted
	})
	return sorted
}

// isSortFunc recognizes the package sort entry points that order a
// collection in place.
func isSortFunc(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Stable", "Slice", "SliceStable":
		return true
	}
	return false
}
