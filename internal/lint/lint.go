// Package lint implements o2lint, the repository's static-analysis suite.
//
// The simulator's headline guarantees — byte-identical sweep results at any
// worker count, seeded RNG threading, an allocation-free L1-hit fast path,
// the repro/o2 façade as the only public import surface — are behavioral
// contracts that golden tests can only sample. This package machine-checks
// them at the source level with four analyzers:
//
//   - detrand: no wall-clock or global-RNG entropy in result-producing
//     packages; every RNG construction seeds from the run's threaded seed.
//   - maporder: no map iteration order escaping into results or encoders
//     without an intervening sort.
//   - facade: cmd/ and examples/ import only repro/o2, and o2's exported
//     API mentions internal types only through exported o2 aliases.
//   - hotalloc: functions annotated //o2:hotpath contain no allocating
//     constructs.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, testdata trees with "// want" expectations)
// so the analyzers can be ported to a real multichecker if the module ever
// takes on the x/tools dependency. It is built only on the standard
// library: packages under analysis are parsed from source and type-checked
// against compiled export data produced by `go list -export` (see load.go),
// so the tool works in offline, dependency-free builds.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Run is invoked once per loaded package
// and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// directives indexes every //o2: directive in the package by file and
	// line (see directives.go).
	directives map[string]map[int]*Directive

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when untypeable.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// All returns the analyzers o2lint runs, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Maporder, Facade, Hotalloc}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run loads the packages matching the go-list patterns (resolved in dir)
// and applies every analyzer, returning the findings sorted by position.
func Run(dir string, analyzers []*Analyzer, patterns []string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(analyzers, pkgs)
}

// RunPackages applies every analyzer to every loaded package.
func RunPackages(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs, derrs := indexDirectives(pkg.Fset, pkg.Files)
		diags = append(diags, derrs...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				directives: dirs,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("o2lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
