package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc turns the hot-path benchmarks' 0 allocs/op guarantee
// (BENCH_hotpath.json) into a build-time check: a function whose doc
// comment carries //o2:hotpath may contain no allocating construct. The
// check is intraprocedural and conservative — it flags the source
// constructs that can allocate, whether or not escape analysis would save
// a particular instance:
//
//   - make, new, and growing append
//   - composite literals of slice/map type, and address-taken composite
//     literals (&T{...})
//   - any fmt call, and non-spread calls of variadic functions (the
//     argument slice allocates)
//   - interface boxing: passing, assigning, or returning a non-pointer
//     concrete value where an interface is expected
//   - string concatenation and string<->[]byte/[]rune conversions
//   - function literals and method values (closure allocation)
//
// A construct that is deliberate and amortized (for example the typed
// event heap's append, which reaches steady-state capacity after warmup)
// is annotated //o2:allowalloc "justification" on its line; the
// justification ships in the source next to the cost it defends.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in functions annotated //o2:hotpath",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	pass.checkDirectiveJustifications("allowalloc", "")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.funcHotpathDirective(fn) == nil {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

// report emits a hotalloc finding unless an //o2:allowalloc directive
// governs its line.
func reportAlloc(pass *Pass, fname string, pos token.Pos, format string, args ...any) {
	if pass.suppressed(pos, "allowalloc", "") {
		return
	}
	args = append(args, fname)
	pass.Reportf(pos, format+" in //o2:hotpath function %s", args...)
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	var results *types.Tuple
	if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}

	// Selector expressions in call position are method calls, not method
	// values; collect them so the method-value check can skip them.
	calleePos := make(map[ast.Expr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calleePos[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		case *ast.FuncLit:
			reportAlloc(pass, name, n.Pos(), "function literal may allocate a closure")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					reportAlloc(pass, name, n.Pos(), "address-taken composite literal escapes to the heap")
					// The &T{...} report covers the literal itself.
					calleePos[cl] = true
				}
			}
		case *ast.CompositeLit:
			if calleePos[n] {
				return true
			}
			if t := pass.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					reportAlloc(pass, name, n.Pos(), "composite literal of slice/map type allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := pass.TypeOf(n).(*types.Basic); ok && b.Info()&types.IsString != 0 {
					reportAlloc(pass, name, n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.SelectorExpr:
			if calleePos[n] {
				return true
			}
			if sel := pass.Info.Selections[n]; sel != nil && sel.Kind() == types.MethodVal {
				reportAlloc(pass, name, n.Pos(), "method value allocates a bound-method closure")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if len(n.Rhs) != len(n.Lhs) {
					break
				}
				checkBoxing(pass, name, pass.TypeOf(lhs), n.Rhs[i])
			}
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, res := range n.Results {
					checkBoxing(pass, name, results.At(i).Type(), res)
				}
			}
		}
		return true
	})
}

// checkHotCall classifies one call expression inside a hot function.
func checkHotCall(pass *Pass, fname string, call *ast.CallExpr) {
	switch calleeBuiltin(pass.Info, call) {
	case "make":
		reportAlloc(pass, fname, call.Pos(), "make allocates")
		return
	case "new":
		reportAlloc(pass, fname, call.Pos(), "new allocates")
		return
	case "append":
		reportAlloc(pass, fname, call.Pos(), "append may grow its backing array")
		return
	case "":
	default:
		return // len, cap, copy, delete, min, max: allocation-free
	}

	if isConversion(pass.Info, call) {
		if len(call.Args) == 1 {
			checkHotConversion(pass, fname, call)
		}
		return
	}

	f := calleeFunc(pass.Info, call)
	if f == nil {
		return // calls through function values: checked where the value is built
	}
	if pkgPathOf(f) == "fmt" {
		reportAlloc(pass, fname, call.Pos(), "fmt.%s allocates and boxes its arguments", f.Name())
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
		if !call.Ellipsis.IsValid() && len(call.Args) > fixed {
			reportAlloc(pass, fname, call.Pos(), "variadic call of %s allocates its argument slice", f.Name())
		}
	}
	for i, arg := range call.Args {
		var pt types.Type
		if i < fixed {
			pt = sig.Params().At(i).Type()
		} else if sig.Variadic() && !call.Ellipsis.IsValid() {
			pt = sig.Params().At(fixed).Type().(*types.Slice).Elem()
		} else {
			break
		}
		checkBoxing(pass, fname, pt, arg)
	}
}

// checkHotConversion flags conversions that copy their operand.
func checkHotConversion(pass *Pass, fname string, call *ast.CallExpr) {
	to, from := pass.TypeOf(call), pass.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	if (isStringType(to) && isByteish(from)) || (isByteish(to) && isStringType(from)) {
		reportAlloc(pass, fname, call.Pos(), "string<->slice conversion copies and allocates")
		return
	}
	if isInterfaceType(to) {
		checkBoxing(pass, fname, to, call.Args[0])
	}
}

// checkBoxing reports when a concrete value is converted to an interface
// type in a way that heap-allocates the value's storage. Pointer-shaped
// values (pointers, channels, maps, funcs) fit in the interface word and
// do not allocate.
func checkBoxing(pass *Pass, fname string, target types.Type, val ast.Expr) {
	if target == nil || !isInterfaceType(target) {
		return
	}
	vt := pass.TypeOf(val)
	if vt == nil || isInterfaceType(vt) {
		return
	}
	if b, ok := vt.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch vt.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	reportAlloc(pass, fname, val.Pos(), "converting %s to an interface boxes the value on the heap", types.TypeString(vt, types.RelativeTo(pass.Pkg)))
}

func isInterfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteish(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
