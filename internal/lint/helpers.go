package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// resultPackages are the packages whose output reaches simulation results:
// the determinism contracts (detrand, maporder) apply here. The façade and
// hot-path analyzers apply everywhere.
var resultPackages = map[string]bool{
	"repro/internal/sim":      true,
	"repro/internal/stats":    true,
	"repro/internal/workload": true,
	"repro/o2":                true,
}

// internalPath reports whether path names a package under repro/internal.
func internalPath(path string) bool {
	return strings.HasPrefix(path, "repro/internal/") || path == "repro/internal"
}

// calleeFunc resolves the function or method called by call, or nil for
// builtins, conversions, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeBuiltin returns the builtin called by call ("make", "append", …),
// or "".
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isConversion reports whether call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isPkgFunc reports whether f is the package-level function path.name.
func isPkgFunc(f *types.Func, path, name string) bool {
	if f == nil || f.Pkg() == nil || f.Name() != name || f.Pkg().Path() != path {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// pkgPathOf returns the import path of f's package, or "".
func pkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// hasReceiver reports whether f is a method.
func hasReceiver(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// exprMentions reports whether any identifier inside e resolves to obj.
func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// objectOf resolves an identifier's object through either Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// rootIdent returns the leftmost identifier of an lvalue chain
// (x, x.f, x.f[i].g → x), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
