package lint

import (
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Facade enforces the repro/o2 façade with the import graph and type
// information instead of the old CI grep (which matched comments and
// missed indirection):
//
//   - packages under repro/cmd/... and repro/examples/... may import only
//     repro/o2 from this module — never repro/internal/...;
//   - repro/o2 may not re-export internal types: every internal type that
//     appears in o2's exported API (signatures, exported struct fields,
//     method sets of exported types) must be laundered through an exported
//     o2 alias (type RNG = stats.RNG), so users can always name the type
//     without importing repro/internal.
//
// Suppress a finding with //o2:allow facade "justification" on the same
// or the preceding line.
var Facade = &Analyzer{
	Name: "facade",
	Doc:  "machine-check the repro/o2 façade boundary and its export surface",
	Run:  runFacade,
}

const facadePath = "repro/o2"

func runFacade(pass *Pass) error {
	pass.checkDirectiveJustifications("allow", "facade")
	path := pass.Pkg.Path()
	switch {
	case strings.HasPrefix(path, "repro/cmd/") || strings.HasPrefix(path, "repro/examples/"):
		checkFacadeImports(pass)
	case path == facadePath:
		checkNoReexports(pass)
	}
	return nil
}

// checkFacadeImports rejects module-internal imports from binaries and
// examples.
func checkFacadeImports(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip != "repro" && !strings.HasPrefix(ip, "repro/") {
				continue
			}
			if ip == facadePath || pass.suppressed(imp.Pos(), "allow", "facade") {
				continue
			}
			pass.Reportf(imp.Pos(), "%s may import only %s from this module; %s bypasses the façade", pass.Pkg.Path(), facadePath, ip)
		}
	}
}

// checkNoReexports verifies that o2's exported API mentions internal types
// only through o2's own exported aliases.
func checkNoReexports(pass *Pass) {
	scope := pass.Pkg.Scope()

	// Exported aliases to internal named types are the sanctioned
	// re-export mechanism: collect them first.
	laundered := make(map[*types.TypeName]bool)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || !tn.IsAlias() {
			continue
		}
		if named, ok := types.Unalias(tn.Type()).(*types.Named); ok && isInternalObj(named.Obj()) {
			laundered[named.Obj()] = true
		}
	}

	w := &facadeWalker{pass: pass, laundered: laundered, seen: make(map[types.Type]bool)}
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.TypeName:
			if obj.IsAlias() {
				// The alias itself launders its target, but the target's
				// exported structure (fields, methods) becomes part of
				// o2's API and must not drag in unlaundered types.
				if named, ok := types.Unalias(obj.Type()).(*types.Named); ok && isInternalObj(named.Obj()) {
					w.walkExportedStructure(named, obj.Pos())
					continue
				}
				w.walk(obj.Type(), obj.Pos())
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok {
				w.walkExportedStructure(named, obj.Pos())
			}
		case *types.Func:
			w.walk(obj.Type(), obj.Pos())
		case *types.Var, *types.Const:
			w.walk(obj.Type(), obj.Pos())
		}
	}
}

func isInternalObj(obj *types.TypeName) bool {
	return obj != nil && obj.Pkg() != nil && internalPath(obj.Pkg().Path())
}

// facadeWalker recursively visits the types reachable from one exported
// declaration, reporting internal named types that lack an o2 alias.
type facadeWalker struct {
	pass      *Pass
	laundered map[*types.TypeName]bool
	seen      map[types.Type]bool
}

// walkExportedStructure visits the parts of a named type that become o2
// API surface: its underlying exported structure and its exported
// methods' signatures.
func (w *facadeWalker) walkExportedStructure(named *types.Named, pos token.Pos) {
	w.walk(named.Underlying(), pos)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Exported() {
			w.walk(m.Type(), pos)
		}
	}
}

func (w *facadeWalker) walk(t types.Type, pos token.Pos) {
	if t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true
	defer delete(w.seen, t) // seen guards cycles, not cross-decl sharing

	switch t := t.(type) {
	case *types.Alias:
		w.walk(types.Unalias(t), pos)
	case *types.Named:
		obj := t.Obj()
		if isInternalObj(obj) {
			if !w.laundered[obj] && !w.pass.suppressed(pos, "allow", "facade") {
				w.pass.Reportf(pos, "exported API mentions internal type %s.%s, which has no exported o2 alias; users cannot name it without importing %s", obj.Pkg().Path(), obj.Name(), obj.Pkg().Path())
			}
			return
		}
		for i := 0; i < t.TypeArgs().Len(); i++ {
			w.walk(t.TypeArgs().At(i), pos)
		}
	case *types.Pointer:
		w.walk(t.Elem(), pos)
	case *types.Slice:
		w.walk(t.Elem(), pos)
	case *types.Array:
		w.walk(t.Elem(), pos)
	case *types.Chan:
		w.walk(t.Elem(), pos)
	case *types.Map:
		w.walk(t.Key(), pos)
		w.walk(t.Elem(), pos)
	case *types.Signature:
		w.walk(t.Params(), pos)
		w.walk(t.Results(), pos)
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			w.walk(t.At(i).Type(), pos)
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if f := t.Field(i); f.Exported() {
				w.walk(f.Type(), pos)
			}
		}
	case *types.Interface:
		for i := 0; i < t.NumExplicitMethods(); i++ {
			w.walk(t.ExplicitMethod(i).Type(), pos)
		}
		for i := 0; i < t.NumEmbeddeds(); i++ {
			w.walk(t.EmbeddedType(i), pos)
		}
	}
}
