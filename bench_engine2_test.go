// Engine speed round 2 benchmarks: the arena-reset sweep unit, the
// WebService steady state, and the million-request soak drive.
// Before/after numbers are recorded in BENCH_engine2.json.
//
// BenchmarkFig4Cell (bench_hotpath_test.go) times the cold unit — build a
// runtime and tree, run once. The sweep no longer pays that per repeat:
// repeats after the first roll the runtime back to its post-build image
// mark. BenchmarkFig4CellArena times exactly what one sweep worker now
// does per repeat, by driving b.N repeats of one cell through Sweep.Run.
package repro_test

import (
	"testing"

	"repro/o2"
)

// fig4BenchCell is the same cell BenchmarkFig4Cell measures, as sweep
// configuration: tiny8, 8 dirs × 512 entries, CoreTime.
func fig4BenchCell() o2.Sweep {
	p := o2.DefaultRunParams()
	p.Threads = 8
	p.Warmup = 400_000
	p.Measure = 800_000
	return o2.Sweep{
		Name: "bench",
		Base: o2.Cell{
			Machine:   o2.Tiny8,
			Scheduler: o2.CoreTime,
			Tree:      o2.DirSpec{Dirs: 8, EntriesPerDir: 512},
			Params:    p,
		},
		Seed:    7,
		Workers: 1,
		Runner:  o2.DirLookupCell,
	}
}

// BenchmarkFig4CellArena measures the steady-state sweep unit: one
// Figure-4 repeat on an arena-reused runtime (engine reset, image rolled
// back to the post-build mark, caches flushed) instead of a fresh build.
func BenchmarkFig4CellArena(b *testing.B) {
	s := fig4BenchCell()
	s.Repeats = b.N
	b.ReportAllocs()
	b.ResetTimer()
	res, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	if res.Cells[0].Mean("kres_per_sec") <= 0 {
		b.Fatal("benchmark produced no resolutions")
	}
}

// BenchmarkWebCellArena measures the WebService steady state the same
// way: one open-loop run per repeat on an arena-reused runtime.
func BenchmarkWebCellArena(b *testing.B) {
	s := o2.Sweep{
		Name: "bench-web",
		Base: o2.Cell{
			Machine:   o2.Tiny8,
			Scheduler: o2.CoreTime,
			Web:       o2.WebSpec{DocRoots: 24, FilesPerRoot: 128},
			Service:   o2.ServiceLoad{Requests: 800, RPS: 1_000_000, Skew: 0.99},
		},
		Seed:    7,
		Workers: 1,
		Runner:  o2.ServiceCell,
	}
	s.Repeats = b.N
	b.ReportAllocs()
	b.ResetTimer()
	res, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	if res.Cells[0].Mean("achieved_krps") <= 0 {
		b.Fatal("benchmark served nothing")
	}
}

// soakDrive is the shared body of the SoakDrive benchmarks: the
// direct-handoff drive per request — the unit cost behind `o2bench
// soak`, where a million requests flow through one chained arrival event
// and a parked-worker wait list. Extra options select the telemetry
// variants.
func soakDrive(b *testing.B, opts ...o2.Option) {
	rt := o2.MustNew(append([]o2.Option{o2.WithTopology(o2.Tiny8), o2.WithSeed(7)}, opts...)...)
	svc, err := rt.NewWebService(o2.WebSpec{DocRoots: 24, FilesPerRoot: 128})
	if err != nil {
		b.Fatal(err)
	}
	load := o2.ServiceLoad{
		Requests:      b.N,
		RPS:           1_000_000,
		Skew:          0.99,
		Seed:          7,
		DirectHandoff: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := svc.Run(load)
	if err != nil {
		b.Fatal(err)
	}
	if res.Completed == 0 {
		b.Fatal("benchmark served nothing")
	}
}

// BenchmarkSoakDrive is the telemetry-off baseline: 0 allocs/request
// (pinned by TestSoakDriveAllocFree and BENCH_engine2.json).
func BenchmarkSoakDrive(b *testing.B) {
	soakDrive(b)
}

// BenchmarkSoakDriveTelemetry is the same drive with the telemetry
// sampler probing every 20k cycles: the enabled overhead recorded in
// BENCH_engine2.json. The probe path is allocation-free (o2lint
// hotalloc-enforced), so the delta is pure sampling CPU.
func BenchmarkSoakDriveTelemetry(b *testing.B) {
	soakDrive(b, o2.WithTelemetry(20_000))
}

// TestSoakDriveAllocFree pins the acceptance criterion that telemetry —
// off or on — adds 0 allocs/request on the soak drive. Per-run setup
// (the arrival schedule, worker spawns, histogram warm-up) allocates a
// small request-count-independent amount, so driving 20k requests and
// asserting a small per-run total proves the per-request path is
// allocation-free.
func TestSoakDriveAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting needs the full drive")
	}
	const requests = 20_000
	for _, tc := range []struct {
		name string
		opts []o2.Option
	}{
		{"telemetry-off", nil},
		{"telemetry-on", []o2.Option{o2.WithTelemetry(20_000)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := o2.MustNew(append([]o2.Option{o2.WithTopology(o2.Tiny8), o2.WithSeed(7)}, tc.opts...)...)
			svc, err := rt.NewWebService(o2.WebSpec{DocRoots: 24, FilesPerRoot: 128})
			if err != nil {
				t.Fatal(err)
			}
			load := o2.ServiceLoad{
				Requests: requests, RPS: 1_000_000, Skew: 0.99, Seed: 7,
				DirectHandoff: true,
			}
			// Warm once: scratch tables, pools, and recorder capacity reach
			// their steady state on the first run.
			if _, err := svc.Run(load); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(1, func() {
				if _, err := svc.Run(load); err != nil {
					t.Fatal(err)
				}
			})
			// The per-run constant covers the arrival-schedule slices and
			// the 8 worker/compactor thread spawns: measured at exactly 118
			// whether the drive carries 5k, 20k, or 80k requests — hence 0
			// allocs amortized per request.
			const perRunBudget = 150
			if allocs > perRunBudget {
				t.Fatalf("%s: %v allocs for a %d-request drive (budget %d): the per-request path allocates",
					tc.name, allocs, requests, perRunBudget)
			}
		})
	}
}
