// Package repro is a from-scratch Go reproduction of "Reinventing
// Scheduling for Multicore Systems" (Boyd-Wickizer, Morris, Kaashoek;
// HotOS XII, 2009): the O2 scheduling model and the CoreTime runtime,
// evaluated on a simulated 16-core AMD machine.
//
// The public API is the o2 package — functional-options runtime
// construction, scoped Begin/End operation handles, built workloads, and
// the experiment harness; see DESIGN.md for the system inventory and
// layer diagram. The implementation lives under internal/ and is free to
// evolve behind that façade. cmd/o2bench regenerates every figure and
// table of the paper's evaluation, and bench_test.go exposes the same
// experiments as testing.B benchmarks.
package repro
