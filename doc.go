// Package repro is a from-scratch Go reproduction of "Reinventing
// Scheduling for Multicore Systems" (Boyd-Wickizer, Morris, Kaashoek;
// HotOS XII, 2009): the O2 scheduling model and the CoreTime runtime,
// evaluated on a simulated 16-core AMD machine.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/o2bench regenerates every figure and table of the
// paper's evaluation, and bench_test.go exposes the same experiments as
// testing.B benchmarks.
package repro
