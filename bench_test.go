// Benchmarks that regenerate the paper's tables and figures through the
// testing.B interface, driving the public repro/o2 façade. Each benchmark
// mirrors one experiment from DESIGN.md; `go test -bench=. -benchmem`
// prints the measured series as custom metrics (kres/s — thousands of name
// resolutions per second of simulated time — and speedup ratios).
//
// These use reduced sweeps so the whole suite completes in minutes; the
// full-resolution tables come from `go run ./cmd/o2bench all`.
package repro_test

import (
	"testing"

	"repro/o2"
)

// benchFig4Config is a three-point sweep through the regions that define
// Figure 4's shape: lock-bound left edge, CoreTime's sweet spot, and the
// over-capacity right edge.
func benchFig4Config() o2.Fig4Config {
	cfg := o2.QuickFig4Config()
	cfg.DirCounts = []int{8, 224, 640}
	return cfg
}

// BenchmarkFig4aUniform regenerates Figure 4(a): file system throughput
// under uniform directory popularity, with and without CoreTime.
func BenchmarkFig4aUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := o2.Fig4a(benchFig4Config())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.BaseKRes, "kres_base_"+kbLabel(r.DataKB))
			b.ReportMetric(r.CTKRes, "kres_ct_"+kbLabel(r.DataKB))
		}
		// The paper's headline: 2–3× in the mid range.
		b.ReportMetric(rows[1].Speedup, "speedup_mid")
	}
}

// BenchmarkFig4bOscillate regenerates Figure 4(b): oscillating directory
// popularity, exercising the monitor's rebalancing.
func BenchmarkFig4bOscillate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchFig4Config()
		cfg.DirCounts = []int{224}
		rows, err := o2.Fig4b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].BaseKRes, "kres_base")
		b.ReportMetric(rows[0].CTKRes, "kres_ct")
		b.ReportMetric(rows[0].Speedup, "speedup")
	}
}

// BenchmarkFig2CacheContents regenerates Figure 2: cache duplication under
// thread scheduling versus O2 scheduling.
func BenchmarkFig2CacheContents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, ct, err := o2.Fig2(o2.DefaultFig2Config())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(base.Duplication, "dup_thread_sched")
		b.ReportMetric(ct.Duplication, "dup_o2_sched")
		b.ReportMetric(float64(base.DistinctOnChip), "onchip_thread_sched")
		b.ReportMetric(float64(ct.DistinctOnChip), "onchip_o2_sched")
	}
}

// BenchmarkLatencyTable regenerates the §5 memory latency table.
func BenchmarkLatencyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := o2.LatencyTable()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Paper != 0 {
				b.ReportMetric(float64(r.Measured), "cyc_"+metricName(r.Name))
			}
		}
	}
}

// BenchmarkMigrationCost regenerates the §5 migration measurement
// (paper: 2000 cycles).
func BenchmarkMigrationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := o2.MigrationCost(128)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanCycles, "cycles/migration")
	}
}

// BenchmarkAblationClustering measures the §6.2 object-clustering
// extension.
func BenchmarkAblationClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := o2.AblationClustering()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].KOps, "kops_off")
		b.ReportMetric(rows[1].KOps, "kops_on")
	}
}

// BenchmarkAblationReplication measures the §6.2 read-only replication
// extension.
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := o2.AblationReplication()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].KOps, "kops_off")
		b.ReportMetric(rows[1].KOps, "kops_on")
	}
}

// BenchmarkAblationReplacement measures the §6.2 over-capacity replacement
// policy.
func BenchmarkAblationReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := o2.AblationReplacement()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].KOps, "kres_firstfit")
		b.ReportMetric(rows[1].KOps, "kres_frequency")
	}
}

// BenchmarkAblationMigrationCost sweeps the migration cost (§6.1, active
// messages).
func BenchmarkAblationMigrationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := o2.AblationMigrationCost()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].KOps, "kres_cost0")
		b.ReportMetric(rows[len(rows)-1].KOps, "kres_cost8000")
	}
}

// BenchmarkAblationHeterogeneous measures CoreTime on a machine with half
// the cores at half speed (§6.1).
func BenchmarkAblationHeterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := o2.AblationHeterogeneous()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].KOps, "kres_base")
		b.ReportMetric(rows[1].KOps, "kres_ct")
	}
}

// BenchmarkDirLookupBaseline and BenchmarkDirLookupCoreTime are
// single-point microbenchmarks of the workload engine itself, useful for
// profiling the simulator.
func BenchmarkDirLookupBaseline(b *testing.B) {
	benchDirLookup(b, o2.Baseline)
}

// BenchmarkDirLookupCoreTime is the CoreTime counterpart of
// BenchmarkDirLookupBaseline.
func BenchmarkDirLookupCoreTime(b *testing.B) {
	benchDirLookup(b, o2.CoreTime)
}

func benchDirLookup(b *testing.B, scheduler o2.Scheduler) {
	exp := o2.Experiment{
		Machine: o2.Tiny8,
		Tree:    o2.DirSpec{Dirs: 8, EntriesPerDir: 512},
	}
	p := o2.DefaultRunParams()
	p.Threads = 8
	p.Warmup = 800_000
	p.Measure = 1_600_000
	exp.Params = p
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(o2.WithScheduler(scheduler))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KResPerSec, "kres/s")
	}
}

func kbLabel(kb float64) string {
	switch {
	case kb < 1024:
		return "small"
	case kb < 10240:
		return "mid"
	default:
		return "large"
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r >= 'A' && r <= 'Z':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}
