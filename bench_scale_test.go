// Big-machine benchmarks for the simulator itself: what one scale-sweep
// cell costs at 16 versus 256 cores. The scale round's acceptance gate is
// that the *per-core* simulator cost at 256 cores stays within 2x of the
// 16-core cost — i.e. the multi-word coherence directory, the saturating
// bandwidth meters, and the wide invalidation fan-out add per-node work
// that is at most linear in the machine size. Before/after numbers are
// recorded in BENCH_scale.json.
package repro_test

import (
	"testing"

	"repro/o2"
)

// benchScaleCell times one dirlookup cell of the scale sweep on the given
// machine: workload sized per core (2 directories of 64 entries per core,
// one worker thread per core, the golden scale configuration's shape) and
// run under CoreTime, exactly as one worker of `o2bench scale` would run
// it. Dividing the reported ns/op by the core count gives the per-core
// simulator cost the acceptance gate compares.
func benchScaleCell(b *testing.B, machine o2.Topology) {
	cores := machine.NumCores()
	exp := o2.Experiment{
		Machine: machine,
		Tree:    o2.DirSpec{Dirs: 2 * cores, EntriesPerDir: 64},
	}
	p := o2.DefaultRunParams()
	p.Threads = cores
	p.Warmup = 100_000
	p.Measure = 200_000
	p.Seed = 7
	exp.Params = p
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(o2.WithScheduler(o2.CoreTime))
		if err != nil {
			b.Fatal(err)
		}
		sink += res.KResPerSec
	}
	if sink == 0 {
		b.Fatal("benchmark produced no resolutions")
	}
}

// BenchmarkScaleCell16 is the 16-core reference point (the paper's AMD16
// machine: narrow one-word directory, legacy bandwidth meters).
func BenchmarkScaleCell16(b *testing.B) { benchScaleCell(b, o2.AMD16) }

// BenchmarkScaleCell256 is the 256-core point (NUMA256: 288 directory
// nodes on the five-word sharer bitset, saturating DRAM and interconnect
// meters on every miss).
func BenchmarkScaleCell256(b *testing.B) { benchScaleCell(b, o2.NUMA256) }
