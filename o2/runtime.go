package o2

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// defaultImageBytes sizes the machine memory image when the caller neither
// passed WithMemory nor built a workload tree before first use.
const defaultImageBytes = 64 << 20

// Runtime is a built O2 system: one simulated machine, its execution
// substrate, and the selected scheduler. Construct one with New; all
// methods are for use from the single goroutine driving the simulation.
//
// The machine itself materializes lazily on first use (object allocation,
// workload construction, or thread spawn), so a workload tree built first
// can size the memory image exactly.
type Runtime struct {
	set *settings

	eng    *sim.Engine
	mach   *machine.Machine
	sys    *exec.System
	ann    sched.Annotator
	ct     *core.Runtime // nil under the Baseline scheduler
	tracer *trace.Tracer
	tel    runtimeTelemetry
}

// New builds a Runtime from functional options. With no options it models
// the paper's AMD16 machine under the CoreTime scheduler.
func New(opts ...Option) (*Runtime, error) {
	set := defaultSettings()
	for _, opt := range opts {
		opt(set)
	}
	if err := set.validate(); err != nil {
		return nil, err
	}
	set.ct.Tracer = set.tracer()
	return &Runtime{set: set, tracer: set.ct.Tracer}, nil
}

// MustNew is New, panicking on error; convenient in examples and tests.
func MustNew(opts ...Option) *Runtime {
	rt, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return rt
}

// ensure materializes the engine, machine, substrate, and scheduler. A
// workload builder passes the image size it needs; zero means "no
// requirement" and falls back to WithMemory or the 64 MB default. When the
// workload does state its requirement and the caller set no explicit
// WithMemory, the image *starts* at exactly that requirement and grows on
// demand up to the default: every sweep cell builds (and the allocator
// zeroes) its own image, so a 64 MB up-front default under a
// kilobyte-scale tree used to dominate the cell's wall-clock, while
// growth keeps the old headroom for façade programs that allocate more
// objects after building a tree.
func (rt *Runtime) ensure(minImage int) error {
	if rt.sys != nil {
		return nil
	}
	bytes := rt.set.memBytes
	if bytes == 0 {
		bytes = defaultImageBytes
	}
	if minImage > bytes {
		bytes = minImage
	}
	start := bytes
	if rt.set.memBytes == 0 && minImage > 0 {
		start = minImage
	}
	m, err := machine.NewWithMemLimit(rt.set.topo.cfg, start, bytes)
	if err != nil {
		return err
	}
	rt.eng = sim.NewEngineSeeded(rt.set.seed)
	rt.mach = m
	rt.sys = exec.NewSystem(rt.eng, m, rt.set.exec)
	switch rt.set.sched {
	case CoreTime:
		rt.ct = core.New(rt.sys, rt.set.ct)
		rt.ann = rt.ct
	case Affinity:
		rt.ann = sched.NewHashAffinity(rt.set.topo.NumCores())
	default:
		rt.ann = sched.ThreadScheduler{}
	}
	rt.initTelemetry()
	return nil
}

// resetForRepeat rolls a drained runtime back to its post-build state so a
// sweep can reuse it for the next repeat of the same cell instead of
// building a fresh one. It resets the engine (keeping the event heap's
// backing array) under the new seed, returns every core to idle, flushes
// all cache and counter state, and rolls the machine image back to mark —
// the point taken right after the scenario was built. The scheduler is
// rebuilt exactly as ensure built it, because scheduler state (CoreTime
// placements, run-queue history) belongs to one run.
//
// The caller must guarantee the engine is drained (no live procs, no
// pending events); Engine.Reset panics otherwise.
func (rt *Runtime) resetForRepeat(seed uint64, mark mem.ImageMark) {
	rt.eng.Reset(seed)
	rt.sys.Reset()
	rt.mach.Reset()
	rt.mach.Image().ResetTo(mark)
	rt.set.seed = seed
	switch rt.set.sched {
	case CoreTime:
		// Reset the existing CoreTime runtime rather than rebuilding it:
		// pooled opCtx records and map storage carry over, while the
		// observable state matches a fresh core.New.
		rt.ct.Reset()
		rt.ann = rt.ct
	case Affinity:
		rt.ann = sched.NewHashAffinity(rt.set.topo.NumCores())
	default:
		rt.ann = sched.ThreadScheduler{}
	}
	rt.resetTelemetry()
}

// mustEnsure is ensure for paths that cannot return an error; after New's
// validation the only failures left are programming errors.
func (rt *Runtime) mustEnsure() {
	if err := rt.ensure(0); err != nil {
		panic(fmt.Sprintf("o2: materializing runtime: %v", err))
	}
}

// annStartRO dispatches a read-only operation start to the scheduler,
// falling back to a plain start when it cannot exploit read-onlyness.
func (rt *Runtime) annStartRO(t *exec.Thread, o *Object) {
	sched.OpStartRO(rt.ann, t, o.obj.Base)
}

// Scheduler returns the configured scheduling policy.
func (rt *Runtime) Scheduler() Scheduler { return rt.set.sched }

// SchedulerName returns the scheduler's report name ("coretime",
// "thread-scheduler", or "hash-affinity"), matching Result.Scheduler.
func (rt *Runtime) SchedulerName() string { return rt.set.sched.String() }

// Topology returns the machine description the runtime models.
func (rt *Runtime) Topology() Topology { return rt.set.topo }

// Seed returns the runtime's base RNG seed (see WithSeed).
func (rt *Runtime) Seed() uint64 { return rt.set.seed }

// NumCores returns the machine's core count.
func (rt *Runtime) NumCores() int { return rt.set.topo.NumCores() }

// ClockHz returns the simulated clock rate, for converting cycles to
// seconds in reports.
func (rt *Runtime) ClockHz() float64 { return rt.set.topo.ClockHz() }

// Now returns the current simulated time.
func (rt *Runtime) Now() Time {
	rt.mustEnsure()
	return rt.eng.Now()
}

// Run drives the simulation until every spawned thread finishes and
// returns the final simulated time.
func (rt *Runtime) Run() Time {
	rt.mustEnsure()
	return rt.eng.Run(0)
}

// RunUntil drives the simulation until limit (or until all threads
// finish, whichever is first) and returns the final simulated time.
func (rt *Runtime) RunUntil(limit Time) Time {
	rt.mustEnsure()
	return rt.eng.Run(limit)
}

// At schedules fn to run at absolute simulated time t during Run.
func (rt *Runtime) At(t Time, fn func()) {
	rt.mustEnsure()
	rt.eng.At(t, fn)
}

// NewObject allocates size bytes in simulated memory and registers them as
// a named schedulable object.
func (rt *Runtime) NewObject(name string, size int) (*Object, error) {
	if size <= 0 {
		return nil, fmt.Errorf("o2: object %q size %d must be positive", name, size)
	}
	if err := rt.ensure(0); err != nil {
		return nil, err
	}
	obj, err := rt.mach.Image().AllocObject(name, uint64(size))
	if err != nil {
		return nil, err
	}
	return &Object{obj: obj}, nil
}

// Go spawns a green thread on the given home core running body. The thread
// starts when Run drives the simulation.
func (rt *Runtime) Go(name string, home int, body func(t *Thread)) *Thread {
	rt.mustEnsure()
	wrapped := &Thread{rt: rt}
	wrapped.t = rt.sys.Go(name, home, func(inner *exec.Thread) {
		body(wrapped)
		if len(wrapped.ops) > 0 {
			panic(fmt.Sprintf("o2: thread %q finished with %d operation(s) still open",
				name, len(wrapped.ops)))
		}
	})
	return wrapped
}

// NewLock allocates a spin lock in simulated memory; contended
// acquisitions generate real coherence traffic.
func (rt *Runtime) NewLock(name string) *Lock {
	rt.mustEnsure()
	return &Lock{l: rt.sys.NewSpinLock(name)}
}

// PlaceTogether marks the objects as a cluster the packer should keep in
// one cache (§6.2). It is a hint; it only takes effect under CoreTime with
// WithClustering(true).
func (rt *Runtime) PlaceTogether(objs ...*Object) {
	if rt.ct == nil {
		return
	}
	addrs := make([]mem.Addr, len(objs))
	for i, o := range objs {
		addrs[i] = o.obj.Base
	}
	rt.ct.PlaceTogether(addrs...)
}

// SetProcessWeight assigns a cache-budget fairness weight to a process id
// (§6.2); threads tag themselves with Thread.SetProcess. Under the
// Baseline scheduler weights have no effect.
func (rt *Runtime) SetProcessWeight(pid int, w float64) {
	rt.mustEnsure()
	if rt.ct != nil {
		rt.ct.SetProcessWeight(pid, w)
	}
}

// Placement reports the core the object is assigned to, if any. Under the
// Baseline scheduler nothing is ever placed.
func (rt *Runtime) Placement(o *Object) (coreID int, placed bool) {
	if rt.ct == nil {
		return 0, false
	}
	return rt.ct.Placement(o.obj.Base)
}

// Replicas returns the cores holding read-only replicas of the object, or
// nil when it is not replicated.
func (rt *Runtime) Replicas(o *Object) []int {
	if rt.ct == nil {
		return nil
	}
	return rt.ct.Replicas(o.obj.Base)
}

// SchedStats returns the scheduler's event counters. Under the Baseline
// scheduler all counts are zero.
func (rt *Runtime) SchedStats() SchedStats {
	if rt.ct == nil {
		return SchedStats{}
	}
	return rt.ct.Stats()
}

// TraceEvents returns the recorded scheduler decisions. It returns
// ErrTraceDisabled on a runtime built without WithTrace (or
// WithTelemetry, which implies it) — distinct from a nil, error-free
// result, which means tracing was on but nothing has been recorded yet.
func (rt *Runtime) TraceEvents() ([]TraceEvent, error) {
	if rt.tracer == nil {
		return nil, ErrTraceDisabled
	}
	return rt.tracer.Events(), nil
}

// DumpTrace writes the recorded scheduler decisions to w and returns how
// many were written. Like TraceEvents, it returns ErrTraceDisabled when
// the runtime records no trace, so callers can tell "tracing off" from
// "no events yet".
func (rt *Runtime) DumpTrace(w io.Writer) (int, error) {
	if rt.tracer == nil {
		return 0, ErrTraceDisabled
	}
	rt.tracer.Dump(w)
	return len(rt.tracer.Events()), nil
}

// Object is a registered region of simulated memory the scheduler can
// place: the unit the paper assigns to caches.
type Object struct {
	obj *mem.Object
}

// Name returns the object's registration name.
func (o *Object) Name() string { return o.obj.Name }

// Size returns the object's size in bytes.
func (o *Object) Size() int { return int(o.obj.Size) }

// Addr returns the address offset bytes into the object.
func (o *Object) Addr(offset int) Addr { return o.obj.Base + Addr(offset) }

// Thread is a cooperative green thread bound to a home core, able to
// migrate for the duration of an operation. Threads advance simulated time
// explicitly: Compute charges CPU cycles, Load/Store charge memory latency
// through the machine model.
type Thread struct {
	rt  *Runtime
	t   *exec.Thread
	ops []*Op // in-flight operations, innermost last
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.t.Name() }

// Now returns the current simulated time.
func (t *Thread) Now() Time { return t.t.Now() }

// Core returns the core the thread currently runs on.
func (t *Thread) Core() int { return t.t.Core() }

// Home returns the thread's home core.
func (t *Thread) Home() int { return t.t.Home() }

// SetProcess tags the thread with an owning process id for the fairness
// extension (§6.2).
func (t *Thread) SetProcess(pid int) { t.t.SetProcess(pid) }

// Compute charges c cycles of computation.
func (t *Thread) Compute(c Cycles) { t.t.Compute(c) }

// Load charges a read of [addr, addr+size) through the memory hierarchy.
func (t *Thread) Load(addr Addr, size int) { t.t.Load(addr, size) }

// Store charges a write of [addr, addr+size).
func (t *Thread) Store(addr Addr, size int) { t.t.Store(addr, size) }

// LoadCompute interleaves a scan of [addr, addr+size) with perByte cycles
// of computation per byte — the shape of a scan loop — charged as one
// event.
func (t *Thread) LoadCompute(addr Addr, size int, perByte float64) {
	t.t.LoadCompute(addr, size, perByte)
}

// Yield gives other threads queued on the current core a chance to run.
func (t *Thread) Yield() { t.t.Yield() }

// IdleUntil suspends the thread until simulated time target, releasing its
// current core for the duration (the core accrues idle, not busy, cycles).
// It returns immediately when target is not in the future. This is how an
// open-loop service worker waits for the next request arrival.
func (t *Thread) IdleUntil(target Time) { t.t.IdleUntil(target) }

// MigrateTo moves the thread to core dst explicitly, paying the full
// migration cost. Operations started with Begin migrate automatically;
// this is for microbenchmarks and custom schedulers.
func (t *Thread) MigrateTo(dst int) { t.t.MigrateTo(dst) }

// ReturnHome migrates the thread back to its home core.
func (t *Thread) ReturnHome() { t.t.ReturnHome() }

// Lock acquires l, charging test-and-set attempts and backoff.
func (t *Thread) Lock(l *Lock) { t.t.Lock(l.l) }

// Unlock releases l; only the holder may unlock.
func (t *Thread) Unlock(l *Lock) { t.t.Unlock(l.l) }

// Lock is a spin lock living at a real address in simulated memory.
type Lock struct {
	l *exec.SpinLock
}

// Held reports whether the lock is currently held.
func (l *Lock) Held() bool { return l.l.Held() }
