package o2

// This file is the `o2bench trace` entry point: one telemetry-enabled
// open-loop WebService cell whose timeline Runtime.WriteTimeline renders.
// The default configuration is the ROADMAP memory-level-parallelism
// investigation made visible: a NUMA256 machine under bandwidth-aware
// CoreTime, sampled every TraceConfig.Interval cycles, so the timeline
// shows exactly how far below BWSaturationFrac the smoothed per-socket
// queueing signal sits in today's one-miss-in-flight substrate.

import "fmt"

// traceSeedStratum decorrelates the trace cell's derived load seed from
// other streams derived from the same runtime seed ("tr" in ASCII).
const traceSeedStratum = 0x7472

// TraceConfig describes one telemetry-traced service run.
type TraceConfig struct {
	Machine        Topology
	Scheduler      Scheduler
	BandwidthAware bool // enable CoreTime's bandwidth-aware placement
	Spec           WebSpec
	Load           ServiceLoad
	Interval       Cycles // telemetry sampling period
	TraceCap       int    // scheduler-trace capacity; 0 = telemetry default
	Seed           uint64
}

// DefaultTraceConfig is the full-size trace cell: an open-loop NUMA256
// web service under bandwidth-aware CoreTime, sized so the working set
// scales with the core count (8 docroots per core, like the scale sweep)
// and sampled finely enough for a few hundred timeline windows.
func DefaultTraceConfig() TraceConfig {
	cores := NUMA256.NumCores()
	return TraceConfig{
		Machine:        NUMA256,
		Scheduler:      CoreTime,
		BandwidthAware: true,
		Spec:           WebSpec{DocRoots: 8 * cores, FilesPerRoot: 128},
		Load: ServiceLoad{
			// Offered just above the machine's measured saturation point
			// (~6.9M achieved rps), so the memory system runs flat out —
			// the load shape under which the bandwidth signal would fire
			// if the substrate could generate enough memory-level
			// parallelism (ROADMAP).
			Requests:      120_000,
			RPS:           8_000_000,
			Skew:          0.99,
			DirectHandoff: true,
		},
		// ~770 windows over the ~30.7M-cycle run: comfortably inside the
		// sampler's 1024-row ring (30k cycles lands at exactly 1024
		// probes — zero headroom), so the timeline covers the whole run
		// even if load tuning shifts the run length.
		Interval: 40_000,
		Seed:     1,
	}
}

// QuickTraceConfig is the CI-scale trace cell: a Tiny8 machine and a
// small request count, finishing in tens of milliseconds while still
// producing every event family the timeline format carries.
func QuickTraceConfig() TraceConfig {
	return TraceConfig{
		Machine:        Tiny8,
		Scheduler:      CoreTime,
		BandwidthAware: true,
		Spec:           WebSpec{DocRoots: 24, FilesPerRoot: 128},
		Load: ServiceLoad{
			Requests:      2000,
			RPS:           4_000_000,
			Skew:          0.99,
			DirectHandoff: true,
		},
		Interval: 20_000,
		Seed:     1,
	}
}

// TraceRun is a finished trace cell: call rt.WriteTimeline on Runtime to
// render the timeline, or read the summary fields directly.
type TraceRun struct {
	Runtime *Runtime
	Result  ServiceResult

	Samples        int     // telemetry probes taken
	PeakBWSignal   float64 // highest smoothed per-socket bandwidth signal seen
	PeakBWSocket   int     // socket where it peaked
	PeakBWAt       Time    // simulated time of the peak
	SaturationFrac float64 // the monitor's saturation threshold, for comparison
}

// RunTrace builds and drives one telemetry-traced service cell.
func RunTrace(cfg TraceConfig) (*TraceRun, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("o2: trace interval %d must be positive", cfg.Interval)
	}
	opts := []Option{
		WithTopology(cfg.Machine),
		WithScheduler(cfg.Scheduler),
		WithSeed(cfg.Seed),
		WithTelemetry(cfg.Interval),
		WithBandwidthAware(cfg.BandwidthAware),
	}
	if cfg.TraceCap > 0 {
		opts = append(opts, WithTrace(cfg.TraceCap))
	}
	rt, err := New(opts...)
	if err != nil {
		return nil, err
	}
	svc, err := rt.NewWebService(cfg.Spec)
	if err != nil {
		return nil, err
	}
	load := cfg.Load
	if load.Seed == 0 {
		load.Seed = DeriveSeed(cfg.Seed, traceSeedStratum)
	}
	res, err := svc.Run(load)
	if err != nil {
		return nil, err
	}
	sig, sock, at, err := rt.PeakBWSignal()
	if err != nil {
		return nil, err
	}
	return &TraceRun{
		Runtime:        rt,
		Result:         res,
		Samples:        rt.TelemetrySamples(),
		PeakBWSignal:   sig,
		PeakBWSocket:   sock,
		PeakBWAt:       at,
		SaturationFrac: rt.saturationFrac(),
	}, nil
}
