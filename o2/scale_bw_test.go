package o2

import "testing"

// scaleBWCell measures one (machine, dirlookup, policy) cell as a
// single-policy sweep. Running each policy as its own one-cell sweep —
// rather than as two values on a shared policy axis — gives both
// policies cell index 0 and therefore the SAME derived CellSeed, so the
// comparison isolates the policy from sweep-layout seed noise.
func scaleBWCell(t *testing.T, m Topology, policy KVPolicy) float64 {
	t.Helper()
	cfg := QuickScaleConfig()
	cfg.Machines = []Topology{m}
	cfg.Services = []ScaleService{ScaleDirLookup}
	cfg.Policies = []KVPolicy{policy}
	_, sweep := ScaleSweep(cfg)
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cell(m.Name(), "dirlookup", policy.String())
	if c == nil {
		t.Fatalf("no cell for %s/dirlookup/%s", m.Name(), policy)
	}
	return c.Mean("per_core_kops")
}

// TestScaleBandwidthAwarePinsNUMA pins the tentpole's headline contract:
// on the big NUMA machines, bandwidth-aware CoreTime must never do worse
// than plain CoreTime at identical seeds. Today the closed-loop sweep
// cells keep every controller and link below its saturation window (each
// core has one miss in flight, so per-window demand stays under the
// service capacity — see DESIGN.md §14), the queueing signal reads zero,
// and the two policies are numerically identical. The pin exists for the
// day that stops being true: if a model change makes the signal fire and
// spread/admission then HURT throughput, this fails loudly.
func TestScaleBandwidthAwarePinsNUMA(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, m := range []Topology{NUMA128, NUMA256} {
		plain := scaleBWCell(t, m, KVCoreTime)
		bw := scaleBWCell(t, m, CoreTimeBW)
		t.Logf("%s dirlookup per-core kops: coretime %.2f, coretime-bw %.2f", m.Name(), plain, bw)
		if bw < plain {
			t.Errorf("%s: coretime-bw per-core throughput %.2f < plain coretime %.2f", m.Name(), bw, plain)
		}
	}
}

// TestScaleBandwidthAwareHoldsAMD16 guards the small-machine baseline:
// on the paper's 16-core evaluation machine the bandwidth-aware variant
// must track plain CoreTime within 3% at identical seeds. AMD16's four
// controllers (DRAM latency 230 cycles, one miss in flight per core)
// never queue in these cells, so the signal is zero and any real gap
// here means the BW path is perturbing placement when it should be
// inert.
func TestScaleBandwidthAwareHoldsAMD16(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	plain := scaleBWCell(t, AMD16, KVCoreTime)
	bw := scaleBWCell(t, AMD16, CoreTimeBW)
	t.Logf("amd16 dirlookup per-core kops: coretime %.2f, coretime-bw %.2f", plain, bw)
	if bw < 0.97*plain {
		t.Errorf("amd16: coretime-bw per-core throughput %.2f regressed past 3%% of plain coretime %.2f", bw, plain)
	}
}
