package o2

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// quickTelemetryCell builds and drives one small telemetry-enabled web
// cell, returning the runtime and its service result.
func quickTelemetryCell(t *testing.T, opts ...Option) (*Runtime, ServiceResult) {
	t.Helper()
	rt := MustNew(append([]Option{
		WithTopology(Tiny8),
		WithSeed(11),
		WithTelemetry(20_000),
	}, opts...)...)
	svc, err := rt.NewWebService(WebSpec{DocRoots: 16, FilesPerRoot: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(ServiceLoad{
		Requests: 800, RPS: 2_000_000, Skew: 0.99, DirectHandoff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt, res
}

// TestMetricsEnumeratesSubsystems pins the acceptance criterion: the
// registry must expose at least 10 metrics spanning at least 3
// subsystems, and the service counters must agree with the run's result.
func TestMetricsEnumeratesSubsystems(t *testing.T) {
	rt, res := quickTelemetryCell(t)
	ms := rt.Metrics()
	if len(ms) < 10 {
		t.Fatalf("Metrics() returned %d metrics, want >= 10: %+v", len(ms), ms)
	}
	subsystems := map[string]bool{}
	byName := map[string]float64{}
	for _, m := range ms {
		name, _, ok := strings.Cut(m.Name, ".")
		if !ok {
			t.Fatalf("metric %q is not subsystem-qualified (want subsystem.name)", m.Name)
		}
		subsystems[name] = true
		byName[m.Name] = m.Value
	}
	if len(subsystems) < 3 {
		t.Fatalf("metrics span %d subsystems (%v), want >= 3", len(subsystems), subsystems)
	}
	if got := byName["service.requests_served"]; got != float64(res.Completed) {
		t.Fatalf("service.requests_served = %v, result Completed = %d", got, res.Completed)
	}
	if got := byName["service.requests_dropped"]; got != float64(res.Dropped) {
		t.Fatalf("service.requests_dropped = %v, result Dropped = %d", got, res.Dropped)
	}
	if byName["engine.events_dispatched"] == 0 || byName["machine.loads"] == 0 {
		t.Fatalf("live gauges read zero after a run: %+v", byName)
	}
	if byName["telemetry.samples"] == 0 {
		t.Fatal("sampler took no samples during the run")
	}
}

// TestWriteMetricsJSON checks the dump is valid JSON with sorted keys.
func TestWriteMetricsJSON(t *testing.T) {
	rt, _ := quickTelemetryCell(t)
	var buf bytes.Buffer
	if err := rt.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("WriteMetrics output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(m) < 10 {
		t.Fatalf("dump holds %d metrics, want >= 10", len(m))
	}
}

// TestTraceDisabledSentinels covers the "tracing off" error paths: a
// runtime built without WithTrace/WithTelemetry must say so, not return
// an empty trace.
func TestTraceDisabledSentinels(t *testing.T) {
	rt := MustNew(WithTopology(Tiny8))
	if _, err := rt.TraceEvents(); !errors.Is(err, ErrTraceDisabled) {
		t.Fatalf("TraceEvents error = %v, want ErrTraceDisabled", err)
	}
	var buf bytes.Buffer
	if n, err := rt.DumpTrace(&buf); !errors.Is(err, ErrTraceDisabled) || n != 0 {
		t.Fatalf("DumpTrace = (%d, %v), want (0, ErrTraceDisabled)", n, err)
	}
	if err := rt.WriteTimeline(&buf); !errors.Is(err, ErrTelemetryDisabled) {
		t.Fatalf("WriteTimeline error = %v, want ErrTelemetryDisabled", err)
	}
	if _, _, _, err := rt.PeakBWSignal(); !errors.Is(err, ErrTelemetryDisabled) {
		t.Fatalf("PeakBWSignal error = %v, want ErrTelemetryDisabled", err)
	}
}

// TestTraceEnabledEmptyIsNotAnError covers the other path: tracing on
// but nothing recorded yet must be a nil-error empty result.
func TestTraceEnabledEmptyIsNotAnError(t *testing.T) {
	rt := MustNew(WithTopology(Tiny8), WithTrace(16))
	evs, err := rt.TraceEvents()
	if err != nil {
		t.Fatalf("TraceEvents on a traced runtime: %v", err)
	}
	if len(evs) != 0 {
		t.Fatalf("expected an empty trace before any run, got %d events", len(evs))
	}
	var buf bytes.Buffer
	n, err := rt.DumpTrace(&buf)
	if err != nil || n != 0 {
		t.Fatalf("DumpTrace = (%d, %v), want (0, nil)", n, err)
	}
}

// TestTelemetryImpliesTracing: WithTelemetry alone must leave the trace
// accessors usable, since the timeline merges scheduler events.
func TestTelemetryImpliesTracing(t *testing.T) {
	rt, _ := quickTelemetryCell(t)
	evs, err := rt.TraceEvents()
	if err != nil {
		t.Fatalf("TraceEvents under WithTelemetry: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("expected scheduler decisions in the implied trace")
	}
}

// TestTelemetryDoesNotChangeResults pins the sampler's observer
// contract: enabling telemetry must not perturb the simulation. The
// same cell with and without WithTelemetry must produce identical
// service results.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	run := func(opts ...Option) ServiceResult {
		rt := MustNew(append([]Option{WithTopology(Tiny8), WithSeed(11)}, opts...)...)
		svc, err := rt.NewWebService(WebSpec{DocRoots: 16, FilesPerRoot: 64})
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Run(ServiceLoad{
			Requests: 800, RPS: 2_000_000, Skew: 0.99, DirectHandoff: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	sampled := run(WithTelemetry(20_000))
	if !reflect.DeepEqual(plain, sampled) {
		t.Fatalf("telemetry changed the result:\noff: %+v\non:  %+v", plain, sampled)
	}
}

// TestTimelineDeterministic: two identical telemetry runs must emit
// byte-identical timelines.
func TestTimelineDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	rt1, _ := quickTelemetryCell(t)
	if err := rt1.WriteTimeline(&a); err != nil {
		t.Fatal(err)
	}
	rt2, _ := quickTelemetryCell(t)
	if err := rt2.WriteTimeline(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical runs produced different timelines (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestWithTelemetryValidation: a non-positive interval is an option
// error, reported by New like every other bad option.
func TestWithTelemetryValidation(t *testing.T) {
	if _, err := New(WithTelemetry(0)); err == nil {
		t.Fatal("WithTelemetry(0) must fail validation")
	}
}

// TestTracedArenaRepeatsMatchFreshRuns extends the arena transparency
// pin to traced runtimes: WithTrace cells used to be excluded from arena
// reuse entirely; now they reuse and must stay behavior-transparent,
// with the tracer reset between repeats.
func TestTracedArenaRepeatsMatchFreshRuns(t *testing.T) {
	p := DefaultRunParams()
	p.Threads = 4
	p.Warmup = 200_000
	p.Measure = 400_000

	const repeats = 3
	s := Sweep{
		Name:    "arena-traced",
		Base:    Cell{Machine: Tiny8, Params: p, Options: []Option{WithTrace(256)}},
		Axes:    []Axis{DirCountAxis(128, 4), SchedulerAxis(CoreTime)},
		Repeats: repeats,
		Seed:    29,
		Runner:  DirLookupCell,
		Workers: 1,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for ci, cell := range res.Cells {
		for r := 0; r < repeats; r++ {
			fresh := s.cells()[ci]
			fresh.Repeat = r
			fresh.Seed = CellSeed(s.Seed, fresh.Index, r)
			fresh.Params.Seed = fresh.Seed
			m, err := DirLookupCell(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cell.Runs[r], m) {
				t.Errorf("cell %v repeat %d: arena run %v != fresh run %v",
					cell.Labels, r, cell.Runs[r], m)
			}
		}
	}
}

// TestTracedRuntimeIsReusable pins the arena eligibility fix itself: a
// drained traced runtime must now be reusable.
func TestTracedRuntimeIsReusable(t *testing.T) {
	rt := MustNew(WithTopology(Tiny8), WithTrace(64))
	rt.mustEnsure()
	rt.Run() // drain the monitor's pending tick: reuse requires an idle engine
	ar := &cellArena{rt: rt}
	if !ar.reusable() {
		t.Fatal("drained traced runtime must be arena-reusable")
	}
}

// TestTelemetryArenaReset pins resetForRepeat's telemetry half: after a
// reset, counters and samples are gone and a second identical run
// produces an identical timeline.
func TestTelemetryArenaReset(t *testing.T) {
	rt := MustNew(WithTopology(Tiny8), WithSeed(11), WithTelemetry(20_000))
	drive := func() []byte {
		svc, err := rt.NewWebService(WebSpec{DocRoots: 16, FilesPerRoot: 64})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Run(ServiceLoad{
			Requests: 800, RPS: 2_000_000, Skew: 0.99, DirectHandoff: true,
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rt.WriteTimeline(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	rt.mustEnsure()
	mark := rt.mach.Image().Mark()
	first := drive()
	rt.resetForRepeat(11, mark)
	if rt.TelemetrySamples() != 0 {
		t.Fatalf("samples survive reset: %d", rt.TelemetrySamples())
	}
	for _, m := range rt.Metrics() {
		if strings.HasPrefix(m.Name, "service.requests") && m.Value != 0 {
			t.Fatalf("counter %s = %v after reset, want 0", m.Name, m.Value)
		}
	}
	second := drive()
	if !bytes.Equal(first, second) {
		t.Fatalf("arena-reset repeat timeline differs (%d vs %d bytes)", len(first), len(second))
	}
}
