package o2

import "fmt"

// Op is a scoped operation handle, the façade over the paper's
// ct_start/ct_end annotation pair. Begin may migrate the thread to the
// core caching the object; End may migrate it onward. End is idempotent,
// so the safe idiom is
//
//	op := t.Begin(obj)
//	defer op.End()
//
// with an optional explicit op.End() on the fast path. Operations nest;
// ending an outer operation while an inner one is still open panics, so an
// unbalanced or crossed annotation pair cannot be expressed.
//
// Handles are recycled: after End, the thread's next Begin may return the
// same *Op. Balanced usage (every End in LIFO order, as defer guarantees)
// never observes this; what is not supported is holding a handle across a
// later Begin and calling its End again expecting a no-op.
type Op struct {
	t     *Thread
	depth int // position on the thread's operation stack, 1-based
	ended bool
}

// Begin starts an operation on obj: the paper's ct_start. Under CoreTime
// the thread may be running on a different core when Begin returns.
func (t *Thread) Begin(obj *Object) *Op { return t.begin(obj, false) }

// BeginRO starts an operation that promises not to write obj, letting the
// read-only replication extension (§6.2) act on hot objects.
func (t *Thread) BeginRO(obj *Object) *Op { return t.begin(obj, true) }

// Begin starts an operation on obj by thread t; equivalent to t.Begin.
// The thread must belong to this runtime.
func (rt *Runtime) Begin(t *Thread, obj *Object) *Op {
	rt.mustOwn(t)
	return t.Begin(obj)
}

// BeginRO starts a read-only operation on obj by thread t; equivalent to
// t.BeginRO. The thread must belong to this runtime.
func (rt *Runtime) BeginRO(t *Thread, obj *Object) *Op {
	rt.mustOwn(t)
	return t.BeginRO(obj)
}

func (rt *Runtime) mustOwn(t *Thread) {
	if t.rt != rt {
		panic(fmt.Sprintf("o2: thread %q belongs to a different runtime", t.Name()))
	}
}

func (t *Thread) begin(obj *Object, readOnly bool) *Op {
	if obj == nil {
		panic("o2: Begin on nil object")
	}
	if readOnly {
		t.rt.annStartRO(t.t, obj)
	} else {
		t.rt.ann.OpStart(t.t, obj.obj.Base)
	}
	// Recycle the handle an earlier operation left in the stack's backing
	// array: End pops the slice but keeps the pointer, so a thread's
	// steady state allocates no Op per operation. Balanced usage — every
	// End in LIFO order, including deferred ones — never observes the
	// reuse: a stale handle's late End finds ended already true.
	n := len(t.ops)
	if n < cap(t.ops) {
		t.ops = t.ops[:n+1]
		if op := t.ops[n]; op != nil {
			op.depth = n + 1
			op.ended = false
			return op
		}
		t.ops = t.ops[:n]
	}
	op := &Op{t: t, depth: n + 1}
	t.ops = append(t.ops, op)
	return op
}

// End closes the operation: the paper's ct_end. The first call ends the
// operation; later calls are no-ops, so End composes with defer. Ending an
// operation while one begun inside it is still open panics.
func (op *Op) End() {
	if op.ended {
		return
	}
	t := op.t
	if len(t.ops) != op.depth {
		panic(fmt.Sprintf(
			"o2: thread %q ending operation %d with %d inner operation(s) still open",
			t.Name(), op.depth, len(t.ops)-op.depth))
	}
	op.ended = true
	t.ops = t.ops[:len(t.ops)-1]
	t.rt.ann.OpEnd(t.t)
}

// Ended reports whether End has run.
func (op *Op) Ended() bool { return op.ended }
