package o2

import (
	"strings"
	"testing"
)

// opTestRuntime builds a small CoreTime runtime with count objects.
func opTestRuntime(t *testing.T, count int, opts ...Option) (*Runtime, []*Object) {
	t.Helper()
	rt := MustNew(append([]Option{WithTopology(Tiny8)}, opts...)...)
	var objs []*Object
	for i := 0; i < count; i++ {
		obj, err := rt.NewObject("obj", 4<<10)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	return rt, objs
}

func TestOpEndIsIdempotent(t *testing.T) {
	rt, objs := opTestRuntime(t, 1)
	ops := 0
	rt.Go("w", 0, func(th *Thread) {
		for i := 0; i < 4; i++ {
			op := th.Begin(objs[0])
			th.LoadCompute(objs[0].Addr(0), objs[0].Size(), 0.05)
			op.End()
			op.End() // double End must be a no-op, so defer composes
			if !op.Ended() {
				t.Error("op not marked ended")
			}
			ops++
		}
	})
	rt.Run()
	if ops != 4 {
		t.Fatalf("ran %d ops, want 4", ops)
	}
	if got := rt.SchedStats().Ops; got != 4 {
		t.Errorf("scheduler saw %d ops, want exactly 4 (double End must not leak)", got)
	}
}

func TestOpDeferredEndAfterExplicitEnd(t *testing.T) {
	rt, objs := opTestRuntime(t, 1)
	rt.Go("w", 0, func(th *Thread) {
		func() {
			op := th.Begin(objs[0])
			defer op.End()
			th.Load(objs[0].Addr(0), 64)
			op.End() // early explicit end; the deferred call no-ops
		}()
		// A fresh operation after the scope must still work.
		op := th.Begin(objs[0])
		th.Load(objs[0].Addr(0), 64)
		op.End()
	})
	rt.Run()
	if got := rt.SchedStats().Ops; got != 2 {
		t.Errorf("scheduler saw %d ops, want 2", got)
	}
}

func TestOpNesting(t *testing.T) {
	rt, objs := opTestRuntime(t, 2)
	rt.Go("w", 0, func(th *Thread) {
		outer := th.Begin(objs[0])
		th.Load(objs[0].Addr(0), 256)
		inner := th.Begin(objs[1])
		th.Load(objs[1].Addr(0), 256)
		inner.End()
		outer.End()
	})
	rt.Run()
	if got := rt.SchedStats().Ops; got != 2 {
		t.Errorf("scheduler saw %d ops, want 2", got)
	}
}

func TestOpOutOfOrderEndPanics(t *testing.T) {
	rt, objs := opTestRuntime(t, 2)
	recovered := make(chan string, 1)
	rt.Go("w", 0, func(th *Thread) {
		defer func() {
			r := recover()
			if r == nil {
				recovered <- ""
			} else {
				recovered <- r.(string)
			}
			// Unwind the open operations so the thread exits cleanly.
			for len(th.ops) > 0 {
				th.ops[len(th.ops)-1].End()
			}
		}()
		outer := th.Begin(objs[0])
		th.Begin(objs[1]) // inner stays open
		outer.End()       // must panic: crossed pair
	})
	rt.Run()
	msg := <-recovered
	if msg == "" {
		t.Fatal("ending an outer op with the inner still open did not panic")
	}
	if !strings.Contains(msg, "still open") {
		t.Errorf("panic message %q does not explain the crossed pair", msg)
	}
}

func TestRuntimeBeginForeignThreadPanics(t *testing.T) {
	rtA, objs := opTestRuntime(t, 1)
	rtB := MustNew(WithTopology(Tiny8))
	panicked := false
	rtB.Go("w", 0, func(th *Thread) {
		defer func() {
			panicked = recover() != nil
		}()
		rtA.Begin(th, objs[0]) // thread belongs to rtB, not rtA
	})
	rtB.Run()
	if !panicked {
		t.Error("rt.Begin with a foreign runtime's thread did not panic")
	}
}

func TestBeginNilObjectPanics(t *testing.T) {
	rt, _ := opTestRuntime(t, 1)
	panicked := false
	rt.Go("w", 0, func(th *Thread) {
		defer func() {
			panicked = recover() != nil
		}()
		th.Begin(nil)
	})
	rt.Run()
	if !panicked {
		t.Error("Begin(nil) did not panic")
	}
}

func TestBeginROEnablesReplication(t *testing.T) {
	// Hot read-only object + replication enabled: BeginRO must feed the
	// read-only signal through, ending with one replica per chip.
	rt, objs := opTestRuntime(t, 1,
		WithReplication(true),
		WithReplicationThreshold(16, 0.9),
		WithMissThreshold(1),
	)
	hot := objs[0]
	for w := 0; w < rt.NumCores(); w++ {
		rt.Go("reader", w, func(th *Thread) {
			for i := 0; i < 200; i++ {
				op := th.BeginRO(hot)
				th.LoadCompute(hot.Addr(0), hot.Size(), 0.05)
				op.End()
				th.Yield()
			}
		})
	}
	rt.Run()
	replicas := rt.Replicas(hot)
	if len(replicas) < 2 {
		t.Fatalf("hot read-only object has %d replicas (%v), want one per chip", len(replicas), replicas)
	}
	if rt.SchedStats().Replications == 0 {
		t.Error("no replication events recorded")
	}
}

func TestBaselineSchedulerHandlesOps(t *testing.T) {
	// The same annotated code must run unchanged under the baseline
	// scheduler, where Begin/End are no-ops that never migrate.
	rt, objs := opTestRuntime(t, 1, WithScheduler(Baseline))
	rt.Go("w", 0, func(th *Thread) {
		op := th.Begin(objs[0])
		th.Load(objs[0].Addr(0), 64)
		op.End()
		if th.Core() != th.Home() {
			t.Errorf("baseline scheduler migrated the thread to core %d", th.Core())
		}
	})
	rt.Run()
	if got := rt.SchedStats(); got.Ops != 0 {
		t.Errorf("baseline runtime reports scheduler stats %+v, want zero value", got)
	}
	if _, placed := rt.Placement(objs[0]); placed {
		t.Error("baseline scheduler placed an object")
	}
}

func TestPlacementAndMigrationUnderCoreTime(t *testing.T) {
	// End-to-end sanity for the façade: a scanned object must get placed
	// and threads must migrate to it.
	rt, objs := opTestRuntime(t, 1, WithMissThreshold(1))
	obj := objs[0]
	for w := 0; w < 4; w++ {
		rt.Go("w", w, func(th *Thread) {
			for i := 0; i < 100; i++ {
				op := th.Begin(obj)
				th.LoadCompute(obj.Addr(0), obj.Size(), 0.05)
				op.End()
				th.Yield()
			}
		})
	}
	rt.Run()
	if _, placed := rt.Placement(obj); !placed {
		t.Error("hot object never placed under CoreTime")
	}
	if rt.SchedStats().Migrations == 0 {
		t.Error("no migrations recorded under CoreTime")
	}
}
