package o2

// The WebService open-loop driver: a seeded arrival process feeds a
// bounded request queue drained by worker threads, with every request's
// enqueue→done latency recorded into per-worker histograms. Two drive
// modes share the queue and the schedule: the default polls the arrival
// schedule with timed worker sleeps (one pre-scheduled event per
// arrival), and DirectHandoff parks idle workers on a FIFO wait list
// with a single chained arrival event waking them — the constant-space
// form a million-request soak run needs.
//
// Determinism contract (pinned by the o2bench web golden test): one run is
// a pure function of (topology, options, WebSpec, ServiceLoad, seed).
// Arrival instants, request targets, and compaction victims are all drawn
// from split RNG streams derived from ServiceLoad.Seed (or the runtime
// seed) before any thread runs; the queue, the recorders, and the arrival
// cursor are load-generator bookkeeping mutated only in engine context
// (the simulation is single-threaded), so the host's worker count, CPU
// count, and wall clock can not reach any of it.
//
// Overload semantics: the queue holds at most QueueCap requests. An
// arrival that finds it full is dropped and counted — the bounded queue
// keeps measured latency finite under overload, and the dropped count plus
// the offered-vs-achieved throughput gap is how overload shows up in
// results instead of as an unbounded latency integral.

import (
	"fmt"
	"math"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// webSeedStratum decorrelates the service load's derived seed from other
// streams derived from the same runtime seed ("web" in ASCII).
const webSeedStratum = 0x776562

// Stream indices under the load seed: arrival instants, request targets,
// and per-compactor victim choice.
const (
	webArrivalStream = 1
	webContentStream = 2
	webCompactStream = 3
)

// defaultWebRequests is the open-loop request count per run.
const defaultWebRequests = 4000

// Latency histogram shape: upper bounds from 512 cycles growing by 2^(1/8)
// (≈9% per bucket) over 256 bounded buckets, reaching ~2×10¹² cycles
// (≈18 simulated minutes at 2 GHz) before the overflow bucket. Quantiles
// read from it are at most one growth step above the true value, fine
// enough to compare schedulers' tails.
const (
	latFirstBound = 512
	latBuckets    = 257
)

// latGrowth is 2^(1/8); computed once so every recorder shares identical
// bounds (Histogram.Merge requires it).
var latGrowth = math.Pow(2, 0.125)

// newLatencyHistogram returns one worker's latency recorder.
func newLatencyHistogram() *stats.Histogram {
	return stats.NewHistogramGrowth(latFirstBound, latGrowth, latBuckets)
}

// ArrivalProcess selects how request arrivals are spaced: PoissonArrivals
// (seeded exponential gaps, the default) or UniformArrivals (exact
// deterministic spacing).
type ArrivalProcess = workload.ArrivalProcess

// Arrival processes for ServiceLoad.Arrivals.
const (
	// PoissonArrivals draws exponential interarrival gaps from the load
	// seed: the memoryless stream of many independent clients.
	PoissonArrivals = workload.PoissonArrivals
	// UniformArrivals spaces arrivals exactly one mean gap apart,
	// isolating queueing caused by service-time variance from queueing
	// caused by arrival burstiness.
	UniformArrivals = workload.UniformArrivals
)

// ServiceLoad drives one open-loop measurement of a WebService: Requests
// requests arrive at RPS requests per simulated second, queue in a
// QueueCap-bounded buffer, and are drained by Workers server threads.
// An optional background compaction thread class rewrites directories
// concurrently with the foreground reads.
type ServiceLoad struct {
	// Workers is the server worker thread count; 0 means one per core —
	// the thread-per-core worker pool a service deploys.
	Workers int
	// Requests is the total number of requests offered (default 4000).
	Requests int
	// RPS is the offered arrival rate in requests per second of simulated
	// time. It must be positive: an open-loop load has no natural default
	// rate, because saturation depends on the machine and the tree.
	RPS float64
	// Arrivals selects the arrival process (default PoissonArrivals).
	Arrivals ArrivalProcess
	// QueueCap bounds the request queue; 0 means 4 × Workers. Arrivals
	// that find the queue full are dropped and counted.
	QueueCap int
	// Skew is the Zipf popularity parameter over docroots; 0 is uniform,
	// 0.99 the classic hot-vhost skew.
	Skew float64
	// CompactionShare is the duty cycle in [0, 1) of each background
	// compaction thread: the fraction of its time spent rewriting
	// directories, the rest idle. 0 disables compaction.
	CompactionShare float64
	// CompactionWorkers is the compaction thread count (default 1 when
	// CompactionShare > 0; ignored when it is 0).
	CompactionWorkers int
	// TimeLimit, when non-zero, truncates the run after that many cycles
	// of simulated time: requests still queued or being served at the
	// limit are reported as InFlight, not Completed. The runtime cannot
	// be reused after a truncated run (its threads never finish).
	TimeLimit Cycles
	// DirectHandoff selects the parked-worker drive: idle workers block
	// on a FIFO wait list and each arrival wakes one, instead of workers
	// polling the arrival schedule with timed sleeps. Arrival events are
	// chained — each arrival schedules the next — so the engine holds one
	// pending arrival instead of all Requests of them, which is what
	// makes million-request soak runs cheap.
	DirectHandoff bool
	// Seed seeds the load's RNG streams; 0 derives one from the runtime
	// seed.
	Seed uint64
}

// DefaultServiceLoad returns the standard load shape — one worker per
// core, 4000 Poisson requests, hot-vhost skew, no compaction — with the
// arrival rate left for the caller: pick one against the machine (see
// DefaultWebConfig for the paper-machine rates).
func DefaultServiceLoad() ServiceLoad {
	return ServiceLoad{Requests: defaultWebRequests, Skew: 0.99}
}

// WithDefaults returns the load with zero fields filled in (Workers and
// QueueCap resolve against cores; RPS has no default and is validated by
// Run).
func (l ServiceLoad) WithDefaults(cores int) ServiceLoad {
	if l.Workers == 0 {
		l.Workers = cores
	}
	if l.Requests == 0 {
		l.Requests = defaultWebRequests
	}
	if l.QueueCap == 0 {
		l.QueueCap = 4 * l.Workers
	}
	if l.CompactionShare > 0 && l.CompactionWorkers == 0 {
		l.CompactionWorkers = 1
	}
	if l.CompactionShare == 0 && l.CompactionWorkers > 0 {
		// A zero share disables the class outright; negative counts fall
		// through to validation.
		l.CompactionWorkers = 0
	}
	return l
}

func (l ServiceLoad) validate() error {
	if l.Workers < 0 || l.Requests < 0 || l.QueueCap < 0 || l.CompactionWorkers < 0 {
		return fmt.Errorf("o2: ServiceLoad counts must be non-negative (0 means default), got %+v", l)
	}
	if math.IsNaN(l.RPS) || math.IsInf(l.RPS, 0) || l.RPS <= 0 {
		return fmt.Errorf("o2: ServiceLoad.RPS must be positive and finite, got %v", l.RPS)
	}
	if math.IsNaN(l.CompactionShare) || l.CompactionShare < 0 || l.CompactionShare >= 1 {
		return fmt.Errorf("o2: ServiceLoad.CompactionShare %v must be in [0, 1)", l.CompactionShare)
	}
	return nil
}

// ServiceResult is one measured open-loop run.
type ServiceResult struct {
	// Requests is the number of requests offered (arrived). Every offered
	// request lands in exactly one bucket: Completed (served), Dropped
	// (found the queue full), or InFlight (still queued or being served
	// when a TimeLimit truncated the run), so Completed + Dropped +
	// InFlight == Requests always holds. InFlight is zero for untruncated
	// runs. Latency statistics cover Completed requests only — an
	// in-flight request has no completion time to measure.
	Requests  uint64
	Completed uint64
	Dropped   uint64
	InFlight  uint64
	// Workers is the resolved server worker count.
	Workers int
	// Elapsed is the simulated time from the drive's start until the last
	// request completed.
	Elapsed Cycles
	// Scheduler names the policy the runtime ran under.
	Scheduler string

	// OfferedKRPS is the configured arrival rate; AchievedKRPS is what
	// the service actually completed per second of simulated time. The
	// gap between them (and Dropped) is how overload reads.
	OfferedKRPS  float64
	AchievedKRPS float64

	// Latency of completed requests, enqueue→done, in simulated cycles:
	// the mean and exact maximum, plus histogram-quantile upper bounds
	// for the percentiles a service operator provisions against.
	MeanLatency float64
	MaxLatency  float64
	P50         float64
	P95         float64
	P99         float64
	P999        float64

	// CacheHitRate is the fraction of memory accesses served on-chip;
	// RemoteFetches and DRAMLoads are the off-chip counts behind it.
	CacheHitRate  float64
	RemoteFetches uint64
	DRAMLoads     uint64
	// Migrations counts thread migrations during the run (0 under the
	// baseline thread scheduler).
	Migrations uint64
}

// svcState is the driver's bookkeeping, mutated only in engine context.
// The request queue is a fixed-capacity ring sized to QueueCap, so a
// million-request soak run queues in constant space instead of growing a
// slice one entry per request.
type svcState struct {
	arrivals []Time
	ring     []int32 // fixed-size ring buffer of queued request indices
	head     int     // ring index of the oldest queued request
	count    int     // queued requests
	arrived  int
	dropped  int
	served   int
	idle     sched.WaitList // parked workers (DirectHandoff only)

	// Registry counters mirroring the ints above; nil-safe to Add on, so
	// a driver built outside a service (tests) pays nothing.
	arrivedC *telemetry.Counter
	droppedC *telemetry.Counter
	servedC  *telemetry.Counter
}

// finished reports whether every offered request has been served or
// dropped — the signal that stops the background compaction class.
func (st *svcState) finished() bool { return st.served+st.dropped == len(st.arrivals) }

// enqueueNext admits the next scheduled request or drops it when the
// queue is full. It is the single arrival callback: the request's index
// is the arrival cursor itself, which is what lets every arrival event
// share one closure instead of capturing its index in a per-request one.
func (st *svcState) enqueueNext() {
	i := st.arrived
	st.arrived++
	st.arrivedC.Add(1)
	if st.count == len(st.ring) {
		st.dropped++
		st.droppedC.Add(1)
		return
	}
	st.ring[(st.head+st.count)%len(st.ring)] = int32(i)
	st.count++
}

// pop removes the oldest queued request.
func (st *svcState) pop() (int, bool) {
	if st.count == 0 {
		return 0, false
	}
	i := st.ring[st.head]
	st.head = (st.head + 1) % len(st.ring)
	st.count--
	return int(i), true
}

// svcScratch is WebService.Run's reusable bookkeeping. Everything here is
// either fully reset (histograms, recorder moments) or fully rewritten
// (the zipf table on a shape change) before a run reads it, so reuse is
// invisible to results — it only removes the per-run allocations that
// would otherwise dominate an arena-reused sweep repeat's steady state.
type svcScratch struct {
	zipf      *workload.Zipf
	zipfN     int
	zipfSkew  float64
	recorders []*latRecorder
	merged    *stats.Histogram
	names     []string
}

// zipfFor returns a Zipf table for (n, skew), rebuilding only when the
// shape differs from the cached one.
func (sc *svcScratch) zipfFor(n int, skew float64) (*workload.Zipf, error) {
	if sc.zipf != nil && sc.zipfN == n && sc.zipfSkew == skew {
		return sc.zipf, nil
	}
	z, err := workload.NewZipf(n, skew)
	if err != nil {
		return nil, err
	}
	sc.zipf, sc.zipfN, sc.zipfSkew = z, n, skew
	return z, nil
}

// recordersFor returns the first n recorders, reset, growing the pool as
// needed.
func (sc *svcScratch) recordersFor(n int) []*latRecorder {
	for len(sc.recorders) < n {
		sc.recorders = append(sc.recorders, &latRecorder{hist: newLatencyHistogram()})
	}
	recs := sc.recorders[:n]
	for _, rec := range recs {
		rec.hist.Reset()
		rec.sum, rec.max = 0, 0
	}
	return recs
}

// mergedHist returns the reset merge target.
func (sc *svcScratch) mergedHist() *stats.Histogram {
	if sc.merged == nil {
		sc.merged = newLatencyHistogram()
	} else {
		sc.merged.Reset()
	}
	return sc.merged
}

// workerName returns the cached name for server worker w.
func (sc *svcScratch) workerName(w int) string {
	for len(sc.names) <= w {
		sc.names = append(sc.names, fmt.Sprintf("web worker %d", len(sc.names)))
	}
	return sc.names[w]
}

// latRecorder is one worker's latency accounting: the histogram for
// quantiles plus exact moments. Workers record privately and the driver
// merges in worker order, so aggregation is independent of completion
// interleaving by construction (integer bucket counts and float sums
// combined in a canonical order).
type latRecorder struct {
	hist *stats.Histogram
	sum  float64
	max  float64
}

func (r *latRecorder) record(lat float64) {
	r.hist.Add(lat)
	r.sum += lat
	if lat > r.max {
		r.max = lat
	}
}

// Run offers the load to the service and measures it. The runtime must not
// have other threads pending: Run drives the simulation to completion.
func (s *WebService) Run(load ServiceLoad) (ServiceResult, error) {
	rt := s.rt
	load = load.WithDefaults(rt.NumCores())
	if err := load.validate(); err != nil {
		return ServiceResult{}, err
	}
	zipf, err := s.scratch.zipfFor(s.spec.DocRoots, load.Skew)
	if err != nil {
		return ServiceResult{}, err
	}

	seed := load.Seed
	if seed == 0 {
		seed = DeriveSeed(rt.Seed(), webSeedStratum)
	}

	// Draw the whole request schedule up front: arrival instants from one
	// stream, request targets from another. Nothing below draws from a
	// shared generator, so the schedule is independent of execution order.
	start := rt.Now()
	meanGap := rt.ClockHz() / load.RPS
	arrivals, err := workload.ArrivalTimes(load.Arrivals, start,
		meanGap, load.Requests, NewRNG(DeriveSeed(seed, webArrivalStream)))
	if err != nil {
		return ServiceResult{}, err
	}
	contentRNG := NewRNG(DeriveSeed(seed, webContentStream))
	reqRoot := make([]int32, load.Requests)
	reqFile := make([]int32, load.Requests)
	for i := range reqRoot {
		reqRoot[i] = int32(zipf.Next(contentRNG))
		reqFile[i] = int32(contentRNG.Intn(s.spec.FilesPerRoot))
	}

	st := &svcState{arrivals: arrivals, ring: make([]int32, load.QueueCap),
		arrivedC: s.arrivedC, droppedC: s.droppedC, servedC: s.servedC}
	s.state = st
	if load.DirectHandoff {
		// Chained arrivals: each arrival enqueues, wakes one parked
		// worker, and schedules the next arrival, so the engine carries a
		// single pending arrival event instead of all Requests of them.
		// The final arrival wakes every parked worker so they can observe
		// that the schedule is exhausted and exit.
		var arrive func()
		arrive = func() {
			st.enqueueNext()
			st.idle.WakeOne()
			if st.arrived < len(st.arrivals) {
				rt.At(st.arrivals[st.arrived], arrive)
			} else {
				st.idle.WakeAll()
			}
		}
		if len(arrivals) > 0 {
			rt.At(arrivals[0], arrive)
		}
	} else {
		// Arrival events are scheduled before any thread spawns, so at
		// equal timestamps the engine fires the enqueue before it wakes a
		// worker sleeping toward that arrival (events tie-break in
		// schedule order): a woken worker always observes the request
		// already queued. One shared callback serves every arrival — the
		// request index is the arrival cursor (arrivals fire in schedule
		// order), so nothing needs capturing per request.
		arrive := st.enqueueNext
		for _, at := range arrivals {
			rt.At(at, arrive)
		}
	}

	before := rt.mach.Counters().Total()
	var done Time
	recorders := s.scratch.recordersFor(load.Workers)
	homes := RoundRobin(load.Workers+load.CompactionWorkers, rt.NumCores())
	for w := 0; w < load.Workers; w++ {
		rec := recorders[w]
		rt.Go(s.scratch.workerName(w), homes[w], func(t *Thread) {
			for {
				i, ok := st.pop()
				if !ok {
					if st.arrived == len(st.arrivals) {
						return // queue drained and no arrivals left
					}
					if load.DirectHandoff {
						// Park until an arrival hands a request over (or
						// the final arrival wakes everyone to exit).
						st.idle.Wait(t.t)
					} else {
						t.IdleUntil(st.arrivals[st.arrived])
					}
					continue
				}
				s.Resolve(t, int(reqRoot[i]), int(reqFile[i]))
				rec.record(float64(t.Now() - st.arrivals[i]))
				st.served++
				st.servedC.Add(1)
				if t.Now() > done {
					done = t.Now()
				}
			}
		})
	}
	for c := 0; c < load.CompactionWorkers; c++ {
		rng := NewRNG(DeriveSeed(seed, webCompactStream, uint64(c)))
		rt.Go(fmt.Sprintf("web compaction %d", c), homes[load.Workers+c], func(t *Thread) {
			// Duty-cycled closed loop: rewrite one directory (hot roots
			// compact most — they accrue the most garbage), then idle so
			// compaction occupies CompactionShare of this thread's time.
			for !st.finished() {
				begin := t.Now()
				s.Compact(t, zipf.Next(rng))
				took := float64(t.Now() - begin)
				t.IdleUntil(t.Now() + Time(took*(1-load.CompactionShare)/load.CompactionShare))
			}
		})
	}
	if load.TimeLimit > 0 {
		rt.RunUntil(start + load.TimeLimit)
	} else {
		rt.Run()
	}

	delta := rt.mach.Counters().Total().Sub(before)
	merged := s.scratch.mergedHist()
	res := ServiceResult{
		Requests:      uint64(st.arrived),
		Completed:     uint64(st.served),
		Dropped:       uint64(st.dropped),
		InFlight:      uint64(st.arrived - st.served - st.dropped),
		Workers:       load.Workers,
		Elapsed:       Cycles(done - start),
		Scheduler:     rt.SchedulerName(),
		OfferedKRPS:   load.RPS / 1000,
		RemoteFetches: delta.RemoteFetches,
		DRAMLoads:     delta.DRAMLoads,
		Migrations:    delta.MigrationsIn,
	}
	var sum float64
	for _, rec := range recorders {
		if err := merged.Merge(rec.hist); err != nil {
			return ServiceResult{}, fmt.Errorf("o2: merging worker latency histograms: %w", err)
		}
		sum += rec.sum
		if rec.max > res.MaxLatency {
			res.MaxLatency = rec.max
		}
	}
	if merged.Total() > 0 {
		res.MeanLatency = sum / float64(merged.Total())
		// Quantile caps its bucket bound at the histogram's exact maximum
		// observation, so tail quantiles are finite — and tight — even
		// when the mass lands in the overflow bucket.
		res.P50 = merged.Quantile(0.50)
		res.P95 = merged.Quantile(0.95)
		res.P99 = merged.Quantile(0.99)
		res.P999 = merged.Quantile(0.999)
	}
	if res.Elapsed > 0 {
		seconds := float64(res.Elapsed) / rt.ClockHz()
		res.AchievedKRPS = float64(res.Completed) / seconds / 1000
	}
	if acc := delta.Loads + delta.Stores; acc > 0 {
		res.CacheHitRate = 1 - float64(delta.RemoteFetches+delta.DRAMLoads)/float64(acc)
	}
	return res, nil
}
