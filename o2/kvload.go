package o2

// The KVService load generator: deterministic, closed-loop, and seeded
// through the same SplitMix64 scheme as everything else in the
// repository.
//
// Determinism contract (pinned by the o2bench kv golden test): one run is
// a pure function of (topology, options, KVSpec, KVLoad, seed). The
// generator owns no global state — a master RNG seeded from KVLoad.Seed
// (or derived from the runtime seed) splits one private stream per
// client, and key popularity comes from a shared Zipf table that holds no
// generator state. Worker counts, host CPU counts, and wall-clock time
// can not reach any of it.

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// kvSeedStratum decorrelates the KV load generator's derived seed from
// other streams derived from the same runtime seed ("kv" in ASCII).
const kvSeedStratum = 0x6b76

// defaultKVOpsPerClient is the closed-loop operation count per client.
const defaultKVOpsPerClient = 2000

// KVMix is the operation mix of a KV load: relative weights of point
// gets, full-shard scans, and point puts. Weights are normalized, so
// {Gets: 59, Scans: 40, Puts: 1} and {0.59, 0.40, 0.01} are the same mix.
type KVMix struct {
	Gets  float64
	Scans float64
	Puts  float64
}

// DefaultKVMix returns the scenario's standard mix: read-mostly with a
// heavy scan component and occasional writes.
func DefaultKVMix() KVMix { return KVMix{Gets: 0.59, Scans: 0.40, Puts: 0.01} }

func (m KVMix) validate() error {
	for _, w := range []float64{m.Gets, m.Scans, m.Puts} {
		// NaN must be rejected explicitly: it fails every comparison, so
		// it would sail through the sign and sum checks and then turn the
		// whole load into gets (NaN thresholds compare false).
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("o2: KVMix weights must be finite and non-negative, got %+v", m)
		}
	}
	if m.Gets+m.Scans+m.Puts <= 0 {
		return fmt.Errorf("o2: KVMix weights sum to zero")
	}
	return nil
}

// normalized returns the mix scaled to sum to 1.
func (m KVMix) normalized() KVMix {
	sum := m.Gets + m.Scans + m.Puts
	return KVMix{Gets: m.Gets / sum, Scans: m.Scans / sum, Puts: m.Puts / sum}
}

// Label renders the mix as a compact axis label ("g59s40p1": percentages
// of gets, scans, puts).
func (m KVMix) Label() string {
	n := m.normalized()
	return fmt.Sprintf("g%.0fs%.0fp%.0f", n.Gets*100, n.Scans*100, n.Puts*100)
}

// KVLoad drives one closed-loop measurement of a KVService: Clients green
// threads (spread round-robin over the cores) each issue OpsPerClient
// operations back to back, drawing keys from a Zipf(Skew) popularity
// distribution over the store's key space and picking the operation kind
// from Mix.
type KVLoad struct {
	// Clients is the closed-loop client thread count; 0 means two per
	// core. A loaded service has more sessions than cores, and the
	// oversubscription matters to the physics: with threads queued on
	// every core, a migrating thread's travel time overlaps with another
	// thread's work instead of idling its core.
	Clients int
	// OpsPerClient is how many operations each client issues (default
	// 2000).
	OpsPerClient int
	// Mix selects the get/scan/put ratio; the zero mix means
	// DefaultKVMix.
	Mix KVMix
	// Skew is the Zipf popularity parameter over the key space; 0 is
	// uniform, 0.99 the classic skewed service workload.
	Skew float64
	// Seed seeds the load's master RNG; 0 derives one from the runtime
	// seed.
	Seed uint64
}

// DefaultKVLoad returns the standard load: two clients per core, 2000
// ops each, the default mix, classic Zipf skew.
func DefaultKVLoad() KVLoad {
	return KVLoad{OpsPerClient: defaultKVOpsPerClient, Mix: DefaultKVMix(), Skew: 0.99}
}

// WithDefaults returns the load with zero fields filled in (Clients
// resolves against cores; Skew 0 is a legitimate uniform configuration
// and is left alone).
func (l KVLoad) WithDefaults(cores int) KVLoad {
	if l.Clients == 0 {
		l.Clients = 2 * cores
	}
	if l.OpsPerClient == 0 {
		l.OpsPerClient = defaultKVOpsPerClient
	}
	if l.Mix == (KVMix{}) {
		l.Mix = DefaultKVMix()
	}
	return l
}

// KVResult is one measured KV load run.
type KVResult struct {
	// Ops is the total operations issued (Clients × OpsPerClient).
	Ops uint64
	// Clients is the resolved client thread count.
	Clients int
	// Elapsed is the simulated time from the drive's start until the last
	// client finished.
	Elapsed Cycles
	// Scheduler names the policy the runtime ran under.
	Scheduler string

	// KOpsPerSec is the store's throughput: thousands of operations per
	// second of simulated time.
	KOpsPerSec float64
	// CyclesPerOp is the mean per-operation latency one closed-loop
	// client observed: Elapsed ÷ OpsPerClient.
	CyclesPerOp float64
	// CacheHitRate is the fraction of memory accesses served on-chip
	// (anywhere in the accessing core's L1/L2/L3) rather than from a
	// remote cache or DRAM.
	CacheHitRate float64
	// RemoteFetches and DRAMLoads are the off-chip access counts behind
	// CacheHitRate.
	RemoteFetches uint64
	DRAMLoads     uint64
	// Migrations counts thread migrations during the run (0 under the
	// baseline thread scheduler).
	Migrations uint64
}

// Run drives the load against the store and measures it. The runtime must
// not have other threads pending: Run drives the simulation to
// completion.
func (s *KVService) Run(load KVLoad) (KVResult, error) {
	rt := s.rt
	load = load.WithDefaults(rt.NumCores())
	if load.Clients < 0 || load.OpsPerClient < 0 {
		return KVResult{}, fmt.Errorf("o2: KVLoad counts must be non-negative (0 means default), got %+v", load)
	}
	if err := load.Mix.validate(); err != nil {
		return KVResult{}, err
	}
	zipf, err := workload.NewZipf(s.spec.Keys, load.Skew)
	if err != nil {
		return KVResult{}, err
	}
	mix := load.Mix.normalized()
	pPut := mix.Puts
	pPutScan := mix.Puts + mix.Scans

	seed := load.Seed
	if seed == 0 {
		seed = DeriveSeed(rt.Seed(), kvSeedStratum)
	}
	master := NewRNG(seed)
	homes := RoundRobin(load.Clients, rt.NumCores())

	start := rt.Now()
	before := rt.mach.Counters().Total()
	var done Time
	for w := 0; w < load.Clients; w++ {
		rng := master.Split()
		rt.Go(fmt.Sprintf("kv client %d", w), homes[w], func(t *Thread) {
			for i := 0; i < load.OpsPerClient; i++ {
				r := rng.Float64()
				switch {
				case r < pPut:
					key := uint64(zipf.Next(rng))
					op := t.Begin(s.shards[s.ShardOf(key)])
					s.Put(t, key)
					op.End()
				case r < pPutScan:
					// Range scans read the partition holding a drawn key
					// (a hot user's data), so scan traffic follows the
					// same popularity skew as point traffic.
					shard := s.ShardOf(uint64(zipf.Next(rng)))
					op := t.BeginRO(s.shards[shard])
					s.Scan(t, shard)
					op.End()
				default:
					key := uint64(zipf.Next(rng))
					op := t.BeginRO(s.shards[s.ShardOf(key)])
					s.Get(t, key)
					op.End()
				}
				t.Yield()
			}
			if t.Now() > done {
				done = t.Now()
			}
		})
	}
	rt.Run()

	delta := rt.mach.Counters().Total().Sub(before)
	elapsed := Cycles(done - start)
	ops := uint64(load.Clients) * uint64(load.OpsPerClient)
	res := KVResult{
		Ops:           ops,
		Clients:       load.Clients,
		Elapsed:       elapsed,
		Scheduler:     rt.SchedulerName(),
		RemoteFetches: delta.RemoteFetches,
		DRAMLoads:     delta.DRAMLoads,
		Migrations:    delta.MigrationsIn,
	}
	if elapsed > 0 {
		seconds := float64(elapsed) / rt.ClockHz()
		res.KOpsPerSec = float64(ops) / seconds / 1000
		res.CyclesPerOp = float64(elapsed) / float64(load.OpsPerClient)
	}
	if acc := delta.Loads + delta.Stores; acc > 0 {
		res.CacheHitRate = 1 - float64(delta.RemoteFetches+delta.DRAMLoads)/float64(acc)
	}
	return res, nil
}
