package o2

import "repro/internal/mem"

// cellArena is the per-cell arena the sweep engine threads through the
// sequential repeats of one grid cell. The first repeat builds a runtime
// and its scenario (tree, service, store) from scratch and parks them
// here with an image mark taken after the build; later repeats roll the
// runtime back to that mark instead of rebuilding — reusing the machine
// image, the event heap's backing array, and the substrate — which
// removes the dominant build-and-zero cost from every repeat after the
// first.
//
// Reuse is behavior-transparent by construction: Runtime.resetForRepeat
// restores exactly the state a fresh build would produce (see DESIGN.md
// §12 for the ownership rules), and any runner that ignores the arena
// keeps the old fresh-runtime-per-repeat behavior.
type cellArena struct {
	rt       *Runtime
	mark     mem.ImageMark
	scenario any
}

// reusable reports whether the arena holds a fully drained runtime that
// can be rolled back. A runtime whose previous repeat was truncated by a
// time limit still has live threads and pending events; resetting it
// would corrupt the simulation, so such repeats rebuild from scratch.
// Traced and telemetry-enabled runtimes reuse like any other:
// resetForRepeat clears the tracer ring, registry counters, and sampler
// series along with the rest of the run state.
func (ar *cellArena) reusable() bool {
	return ar != nil && ar.rt != nil &&
		ar.rt.eng.Live() == 0 && ar.rt.eng.Pending() == 0
}

// reset rolls the arena's runtime back to its post-build state under the
// next repeat's seed.
func (ar *cellArena) reset(seed uint64) {
	ar.rt.resetForRepeat(seed, ar.mark)
}

// scenarioForCell returns the cell's scenario of type S, reusing the
// cell's arena when possible. A reusable arena already holding an S is
// reset under the cell's seed and its scenario returned; otherwise a
// fresh runtime is built from the cell's options (Cell.Scheduler
// authoritative, applied after Options — the precedence rule every
// standard runner shares) and build constructs the scenario, which is
// parked in the arena, when present, along with an image mark taken
// after the build so per-run allocations above it roll back on reset.
func scenarioForCell[S any](c *Cell, build func(*Runtime) (S, error)) (S, error) {
	var zero S
	if ar := c.arena; ar != nil && ar.reusable() {
		if sc, ok := ar.scenario.(S); ok {
			ar.reset(c.Seed)
			return sc, nil
		}
	}
	machine := c.Machine
	if machine.cfg.Chips == 0 { // zero value: default to the paper's machine
		machine = AMD16
	}
	all := append([]Option{WithTopology(machine), WithSeed(c.Seed)}, c.Options...)
	all = append(all, WithScheduler(c.Scheduler))
	rt, err := New(all...)
	if err != nil {
		return zero, err
	}
	sc, err := build(rt)
	if err != nil {
		return zero, err
	}
	if ar := c.arena; ar != nil {
		ar.rt, ar.scenario, ar.mark = rt, sc, rt.mach.Image().Mark()
	}
	return sc, nil
}
