package o2

// Sweep integration for the WebService scenario: the ArrivalRate and
// Compaction axes (placement policies reuse PolicyAxis — the KVPolicy
// bundles are scheduler configurations, not KV-specific), the ServiceCell
// runner, and the configured sweep behind `o2bench web`.

import (
	"fmt"
	"io"
	"strconv"
)

// ArrivalRateAxis sweeps the offered arrival rate in requests per second
// of simulated time — the axis that walks a service from underload through
// saturation into overload.
func ArrivalRateAxis(rps ...float64) Axis {
	vals := make([]AxisValue, len(rps))
	for i, r := range rps {
		r := r
		vals[i] = AxisValue{
			Label: fmt.Sprintf("%gk", r/1000),
			Apply: func(c *Cell) { c.Service.RPS = r },
		}
	}
	return Axis{Name: "rps", Values: vals}
}

// CompactionAxis sweeps the background compaction duty cycle (0 disables
// the compaction thread class).
func CompactionAxis(shares ...float64) Axis {
	vals := make([]AxisValue, len(shares))
	for i, s := range shares {
		s := s
		vals[i] = AxisValue{
			Label: strconv.FormatFloat(s, 'g', -1, 64),
			Apply: func(c *Cell) { c.Service.CompactionShare = s },
		}
	}
	return Axis{Name: "compaction", Values: vals}
}

// ServiceCell is the web scenario's sweep runner: build the service on a
// runtime from the cell's options (reusing the cell's arena across
// repeats), offer the cell's open-loop load once. The engine's derived
// cell seed reaches both the runtime and the load generator, so results
// are a pure function of the grid position — the worker-count invariance
// the o2bench web golden test pins.
func ServiceCell(c Cell) (Metrics, error) {
	svc, err := scenarioForCell(&c, func(rt *Runtime) (*WebService, error) {
		return rt.NewWebService(c.Web)
	})
	if err != nil {
		return nil, err
	}
	load := c.Service
	load.Seed = c.Seed
	res, err := svc.Run(load)
	if err != nil {
		return nil, err
	}
	return Metrics{
		"offered_krps":  res.OfferedKRPS,
		"achieved_krps": res.AchievedKRPS,
		"drop_rate":     float64(res.Dropped) / float64(res.Requests),
		"p50_cycles":    res.P50,
		"p95_cycles":    res.P95,
		"p99_cycles":    res.P99,
		"p999_cycles":   res.P999,
		"mean_cycles":   res.MeanLatency,
		"migrations":    float64(res.Migrations),
	}, nil
}

// WebConfig drives the `o2bench web` sweep: the cross product of Rates ×
// CompactionShares × Policies on one machine and document tree.
type WebConfig struct {
	Machine Topology
	// Spec shapes the document tree.
	Spec WebSpec
	// Load is the per-cell load template; Rates and CompactionShares
	// sweep its arrival rate and compaction duty cycle.
	Load             ServiceLoad
	Rates            []float64
	CompactionShares []float64
	// Policies are the placement policies to compare (default: all).
	Policies []KVPolicy
	// Repeats measures every cell that many times with distinct derived
	// seeds (default 1); Workers bounds the sweep's worker pool.
	Repeats int
	Workers int
	Seed    uint64
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// DefaultWebConfig returns the full-scale configuration: the AMD16 machine
// resolving names against a 224-vhost tree (the Fig. 4 regime where the
// working set exceeds one chip but fits the aggregate cache) at arrival
// rates walking toward the thread scheduler's saturation point, with and
// without a half-duty background compactor, across all placement policies.
func DefaultWebConfig() WebConfig {
	return WebConfig{
		Machine:          AMD16,
		Spec:             WebSpec{DocRoots: 224, FilesPerRoot: 1000},
		Load:             DefaultServiceLoad(),
		Rates:            []float64{200_000, 400_000, 800_000},
		CompactionShares: []float64{0, 0.5},
		Policies:         KVPolicies(),
	}
}

// QuickWebConfig returns a reduced sweep for smoke tests: the Tiny8
// machine and a kilobyte-scale tree, same axes.
func QuickWebConfig() WebConfig {
	cfg := DefaultWebConfig()
	cfg.Machine = Tiny8
	cfg.Spec = WebSpec{DocRoots: 24, FilesPerRoot: 128}
	cfg.Load.Requests = 800
	cfg.Rates = []float64{500_000, 1_000_000, 2_000_000}
	return cfg
}

// SoakWebConfig returns the endurance configuration behind `o2bench
// soak`: one million requests per cell through the direct-handoff drive
// (parked workers, one chained arrival event) against the AMD16 machine,
// baseline vs CoreTime. The point is engine throughput at scale — the
// run must finish in seconds, in constant queue space, with exact
// accounting across a million requests — rather than a new comparison
// axis.
func SoakWebConfig() WebConfig {
	cfg := DefaultWebConfig()
	cfg.Spec = WebSpec{DocRoots: 64, FilesPerRoot: 256}
	cfg.Load.Requests = 1_000_000
	cfg.Load.DirectHandoff = true
	cfg.Rates = []float64{600_000}
	cfg.CompactionShares = []float64{0}
	cfg.Policies = []KVPolicy{KVThreadScheduler, KVCoreTime}
	return cfg
}

// QuickSoakWebConfig returns the CI-scale soak: the Tiny8 machine and
// 50k requests per cell, same drive and axes.
func QuickSoakWebConfig() WebConfig {
	cfg := SoakWebConfig()
	cfg.Machine = Tiny8
	cfg.Spec = WebSpec{DocRoots: 24, FilesPerRoot: 128}
	cfg.Load.Requests = 50_000
	cfg.Rates = []float64{1_000_000}
	return cfg
}

// WebSweep resolves cfg — zero Machine becomes AMD16, zero Spec fields
// take their defaults, empty axes their standard values — and returns it
// with the Sweep that measures it, so the returned cfg describes exactly
// what the cells run. ServiceLoad's zero fields resolve per cell against
// the machine's core count.
func WebSweep(cfg WebConfig) (WebConfig, Sweep) {
	if cfg.Machine.cfg.Chips == 0 {
		cfg.Machine = AMD16
	}
	cfg.Spec = cfg.Spec.WithDefaults()
	if len(cfg.Rates) == 0 {
		cfg.Rates = DefaultWebConfig().Rates
	}
	if len(cfg.CompactionShares) == 0 {
		cfg.CompactionShares = DefaultWebConfig().CompactionShares
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = KVPolicies()
	}
	axes := []Axis{
		ArrivalRateAxis(cfg.Rates...),
		CompactionAxis(cfg.CompactionShares...),
		PolicyAxis(cfg.Policies...),
	}
	return cfg, Sweep{
		Name:     "web",
		Base:     Cell{Machine: cfg.Machine, Web: cfg.Spec, Service: cfg.Load},
		Axes:     axes,
		Repeats:  cfg.Repeats,
		Workers:  cfg.Workers,
		Seed:     cfg.Seed,
		Runner:   ServiceCell,
		Progress: cfg.Progress,
	}
}

// WriteWebTable renders a completed web sweep as an aligned text table,
// one row per cell: the axis labels, offered vs achieved throughput, the
// drop rate, and the latency quantiles (p99 ±stddev when the sweep
// carried repeats).
func WriteWebTable(w io.Writer, title string, res *SweepResult) {
	fmt.Fprintf(w, "# %s\n", title)
	withStats := res.Repeats > 1
	for _, ax := range res.Axes {
		fmt.Fprintf(w, "%-16s ", ax)
	}
	if withStats {
		fmt.Fprintf(w, "%10s %10s %6s %10s %10s %18s %12s\n",
			"off krps", "ach krps", "drop%", "p50", "p95", "p99 (cycles)", "p999")
	} else {
		fmt.Fprintf(w, "%10s %10s %6s %10s %10s %12s %12s\n",
			"off krps", "ach krps", "drop%", "p50", "p95", "p99 (cycles)", "p999")
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		for _, l := range c.Labels {
			fmt.Fprintf(w, "%-16s ", l)
		}
		if withStats {
			fmt.Fprintf(w, "%10.0f %10.0f %6.1f %10.0f %10.0f %11.0f ±%5.0f %12.0f\n",
				c.Mean("offered_krps"), c.Mean("achieved_krps"), 100*c.Mean("drop_rate"),
				c.Mean("p50_cycles"), c.Mean("p95_cycles"),
				c.Mean("p99_cycles"), c.Stddev("p99_cycles"), c.Mean("p999_cycles"))
		} else {
			fmt.Fprintf(w, "%10.0f %10.0f %6.1f %10.0f %10.0f %12.0f %12.0f\n",
				c.Mean("offered_krps"), c.Mean("achieved_krps"), 100*c.Mean("drop_rate"),
				c.Mean("p50_cycles"), c.Mean("p95_cycles"),
				c.Mean("p99_cycles"), c.Mean("p999_cycles"))
		}
	}
}

// WriteWebCSV emits the same cells as CSV for plotting.
func WriteWebCSV(w io.Writer, res *SweepResult) {
	for _, ax := range res.Axes {
		fmt.Fprintf(w, "%s,", ax)
	}
	fmt.Fprintln(w, "offered_krps,achieved_krps,drop_rate,p50_cycles,p95_cycles,p99_cycles,p99_stddev,p999_cycles,mean_cycles,migrations")
	for i := range res.Cells {
		c := &res.Cells[i]
		for _, l := range c.Labels {
			fmt.Fprintf(w, "%s,", l)
		}
		fmt.Fprintf(w, "%.1f,%.1f,%.4f,%.0f,%.0f,%.0f,%.1f,%.0f,%.0f,%.0f\n",
			c.Mean("offered_krps"), c.Mean("achieved_krps"), c.Mean("drop_rate"),
			c.Mean("p50_cycles"), c.Mean("p95_cycles"),
			c.Mean("p99_cycles"), c.Stddev("p99_cycles"), c.Mean("p999_cycles"),
			c.Mean("mean_cycles"), c.Mean("migrations"))
	}
}
