package o2

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Sweep is the Experiment layer's parameter-sweep engine: a declarative
// grid of configurations (the cross product of Axes applied to Base),
// executed by a bounded worker pool. Each grid cell runs Repeats times
// with a deterministic per-cell seed (see CellSeed), and the repeats are
// aggregated into mean/stddev/min/max summaries per metric. A cell's
// repeats run sequentially on one worker sharing a cellArena, so
// arena-aware runners reuse the built runtime across repeats instead of
// reallocating it. Results are independent of the worker count: the same
// Sweep with the same Seed produces byte-identical output at Workers=1
// and Workers=N.
//
// A Figure-4-style comparison over tree sizes and schedulers:
//
//	sw := o2.Sweep{
//		Base:    o2.Cell{Machine: o2.AMD16, Params: o2.DefaultRunParams()},
//		Axes:    []o2.Axis{o2.DirCountAxis(1000, 64, 224, 640), o2.SchedulerAxis(o2.Baseline, o2.CoreTime)},
//		Repeats: 3,
//		Runner:  o2.DirLookupCell,
//	}
//	res, err := sw.WithWorkers(8).Run()
type Sweep struct {
	// Name labels the sweep in reports and JSON output.
	Name string
	// Base is the configuration template every cell starts from; axis
	// values edit copies of it. Its Index/Coords/Labels/Repeat/Seed
	// fields are overwritten by the engine.
	Base Cell
	// Axes span the grid. With no axes the sweep has exactly one cell:
	// Base itself. Cells are enumerated row-major, last axis fastest.
	Axes []Axis
	// Repeats is how many times each cell is measured, each repeat on a
	// fresh runtime with its own derived seed; values < 1 mean 1.
	Repeats int
	// Workers bounds the worker pool; 0 means runtime.NumCPU(). Use
	// WithWorkers for call-site chaining.
	Workers int
	// Seed is the base seed every per-cell seed derives from.
	Seed uint64
	// Runner measures one repeat of one cell. DirLookupCell is the
	// standard directory-lookup runner; figures install their own.
	Runner func(Cell) (Metrics, error)
	// Progress, when non-nil, receives one line per completed cell.
	// Lines appear in completion order, so they may be out of grid order
	// when Workers > 1.
	Progress io.Writer
}

// WithWorkers returns a copy of the sweep with the worker bound set.
func (s Sweep) WithWorkers(n int) Sweep { s.Workers = n; return s }

// WithRepeats returns a copy of the sweep with the repeat count set.
func (s Sweep) WithRepeats(n int) Sweep { s.Repeats = n; return s }

// WithSeed returns a copy of the sweep with the base seed set.
func (s Sweep) WithSeed(seed uint64) Sweep { s.Seed = seed; return s }

// Axis is one dimension of a sweep grid: an ordered set of values, each of
// which edits the cell under construction. Helpers build the common axes
// (TopologyAxis, SchedulerAxis, DirCountAxis, TreeAxis, OptionsAxis);
// custom axes are Axis literals with arbitrary Apply functions.
type Axis struct {
	Name   string
	Values []AxisValue
}

// AxisValue is one point on an axis.
type AxisValue struct {
	// Label identifies the value in results and progress lines.
	Label string
	// Apply edits the cell to select this value.
	Apply func(*Cell)
}

// TopologyAxis sweeps over simulated machines.
func TopologyAxis(tops ...Topology) Axis {
	vals := make([]AxisValue, len(tops))
	for i, t := range tops {
		t := t
		vals[i] = AxisValue{Label: t.Name(), Apply: func(c *Cell) { c.Machine = t }}
	}
	return Axis{Name: "machine", Values: vals}
}

// SchedulerAxis sweeps over scheduling policies.
func SchedulerAxis(scheds ...Scheduler) Axis {
	vals := make([]AxisValue, len(scheds))
	for i, sc := range scheds {
		sc := sc
		vals[i] = AxisValue{Label: sc.String(), Apply: func(c *Cell) { c.Scheduler = sc }}
	}
	return Axis{Name: "scheduler", Values: vals}
}

// DirCountAxis sweeps the directory tree's size: one value per directory
// count, each entriesPerDir entries — the x-axis of Figure 4.
func DirCountAxis(entriesPerDir int, counts ...int) Axis {
	vals := make([]AxisValue, len(counts))
	for i, n := range counts {
		n := n
		vals[i] = AxisValue{
			Label: fmt.Sprintf("%d", n),
			Apply: func(c *Cell) { c.Tree = DirSpec{Dirs: n, EntriesPerDir: entriesPerDir} },
		}
	}
	return Axis{Name: "dirs", Values: vals}
}

// TreeAxis sweeps over explicit directory-tree shapes.
func TreeAxis(specs ...DirSpec) Axis {
	vals := make([]AxisValue, len(specs))
	for i, spec := range specs {
		spec := spec
		vals[i] = AxisValue{
			Label: fmt.Sprintf("%dx%d", spec.Dirs, spec.EntriesPerDir),
			Apply: func(c *Cell) { c.Tree = spec },
		}
	}
	return Axis{Name: "tree", Values: vals}
}

// OptionSet is one labelled value of an OptionsAxis.
type OptionSet struct {
	Label   string
	Options []Option
}

// OptionsAxis sweeps over arbitrary runtime option sets; each value
// appends its options to the cell (later options win over Base's).
func OptionsAxis(name string, sets ...OptionSet) Axis {
	vals := make([]AxisValue, len(sets))
	for i, set := range sets {
		set := set
		vals[i] = AxisValue{
			Label: set.Label,
			Apply: func(c *Cell) { c.Options = append(c.Options, set.Options...) },
		}
	}
	return Axis{Name: name, Values: vals}
}

// Cell is one fully resolved configuration of a sweep grid: what a Runner
// receives. The engine fills the identity fields (Index, Coords, Labels,
// Repeat, Seed); axes fill the configuration fields from Base.
type Cell struct {
	// Index is the cell's row-major position in the grid.
	Index int
	// Coords are the per-axis value indices selecting this cell.
	Coords []int
	// Labels are the per-axis value labels, parallel to Coords.
	Labels []string
	// Repeat is which repetition this measurement is (0-based).
	Repeat int
	// Seed is the measurement's derived seed, CellSeed(sweep.Seed,
	// Index, Repeat). The engine also installs it as Params.Seed.
	Seed uint64

	// Machine is the simulated topology; the zero value means AMD16.
	Machine Topology
	// Scheduler is the scheduling policy (default CoreTime). It is
	// authoritative: standard runners (DirLookupCell, KVCell) apply it
	// after Options. Axes that select schedulers (SchedulerAxis,
	// PolicyAxis) set this field.
	Scheduler Scheduler
	// Tree sizes the directory-lookup workload for runners that build
	// one (DirLookupCell).
	Tree DirSpec
	// Paths sizes the path-resolution workload for runners that build
	// one.
	Paths PathSpec
	// KV sizes the key-value store for the KV scenario runner (KVCell).
	KV KVSpec
	// Load drives the KV load generator for KVCell; the engine installs
	// the cell seed as its Seed.
	Load KVLoad
	// Web sizes the web service for the open-loop service runner
	// (ServiceCell).
	Web WebSpec
	// Service drives the open-loop load generator for ServiceCell; the
	// engine installs the cell seed as its Seed.
	Service ServiceLoad
	// Params drive the measurement; zero fields are defaulted as in
	// Experiment.Run.
	Params RunParams
	// Options apply to the runtime after WithTopology/WithSeed.
	Options []Option

	// arena carries reusable runtime state between the sequential repeats
	// of one cell (see cellArena). The sweep engine installs it; runners
	// that understand it reuse the built runtime across repeats, and
	// runners that ignore it keep building fresh runtimes. Nil for cells
	// run outside a sweep.
	arena *cellArena
}

// Metrics is one measurement's named values. Standard runners report
// "kres_per_sec", "resolutions", and "migrations"; custom runners may
// report anything.
type Metrics map[string]float64

// DirLookupCell is the standard sweep runner: one directory-lookup
// Experiment run of the cell. It is Experiment.Run underneath — the same
// code path Experiment.Compare uses — so sweep cells and hand-rolled
// experiments cannot drift; inside a sweep the cell's arena lets repeats
// after the first reuse the built runtime and tree.
func DirLookupCell(c Cell) (Metrics, error) {
	exp := Experiment{Machine: c.Machine, Tree: c.Tree, Params: c.Params, Options: c.Options}
	res, err := exp.runCell(&c)
	if err != nil {
		return nil, err
	}
	return Metrics{
		"kres_per_sec": res.KResPerSec,
		"resolutions":  float64(res.Resolutions),
		"migrations":   float64(res.Migrations),
	}, nil
}

// Aggregate summarises one metric across a cell's repeats.
type Aggregate struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// CellResult is one cell's measurements: the raw per-repeat metrics (in
// repeat order) and their aggregates.
type CellResult struct {
	Index  int       `json:"index"`
	Labels []string  `json:"labels"`
	Coords []int     `json:"coords"`
	Seeds  []uint64  `json:"seeds"`
	Runs   []Metrics `json:"runs"`

	// Stats aggregates each metric over the cell's repeats.
	Stats map[string]Aggregate `json:"stats"`
}

// Mean returns the mean of the named metric across repeats (0 when the
// metric was not reported).
func (c *CellResult) Mean(metric string) float64 { return c.Stats[metric].Mean }

// Stddev returns the sample standard deviation of the named metric.
func (c *CellResult) Stddev(metric string) float64 { return c.Stats[metric].Stddev }

// SweepResult is a completed sweep. It deliberately records nothing about
// the execution (worker count, wall-clock): two runs of the same sweep at
// different -workers marshal to identical JSON.
type SweepResult struct {
	Name    string       `json:"name"`
	Axes    []string     `json:"axes"`
	Repeats int          `json:"repeats"`
	Seed    uint64       `json:"seed"`
	Cells   []CellResult `json:"cells"`
}

// Cell returns the result whose labels match the given per-axis labels in
// axis order, or nil when absent.
func (r *SweepResult) Cell(labels ...string) *CellResult {
outer:
	for i := range r.Cells {
		c := &r.Cells[i]
		if len(c.Labels) != len(labels) {
			continue
		}
		for j := range labels {
			if c.Labels[j] != labels[j] {
				continue outer
			}
		}
		return c
	}
	return nil
}

// WriteJSON marshals the result as indented JSON. Metric keys marshal in
// sorted order, so the byte stream is stable — the schema the o2bench
// golden test pins.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MetricNames returns every metric name reported anywhere in the sweep,
// sorted.
func (r *SweepResult) MetricNames() []string {
	seen := map[string]bool{}
	for _, c := range r.Cells {
		for name := range c.Stats {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// cells expands the grid row-major (last axis fastest).
func (s Sweep) cells() []Cell {
	total := 1
	for _, a := range s.Axes {
		total *= len(a.Values)
	}
	out := make([]Cell, 0, total)
	coords := make([]int, len(s.Axes))
	for idx := 0; idx < total; idx++ {
		c := s.Base
		c.Index = idx
		c.Coords = append([]int(nil), coords...)
		c.Labels = make([]string, len(s.Axes))
		// Copy with exact capacity so axis Apply appends cannot alias
		// the base slice across cells.
		c.Options = append(make([]Option, 0, len(s.Base.Options)), s.Base.Options...)
		for ai, a := range s.Axes {
			v := a.Values[coords[ai]]
			c.Labels[ai] = v.Label
			if v.Apply != nil {
				v.Apply(&c)
			}
		}
		out = append(out, c)
		for ai := len(coords) - 1; ai >= 0; ai-- {
			coords[ai]++
			if coords[ai] < len(s.Axes[ai].Values) {
				break
			}
			coords[ai] = 0
		}
	}
	return out
}

// Run executes the sweep and returns the aggregated results. Cells are
// distributed over the worker pool and each cell's repeats run
// sequentially on its worker; every measurement is seeded with CellSeed
// and no state — RNG, caches, machine counters — is shared between
// concurrent measurements (repeats of one cell share an arena, but only
// after the previous repeat has fully drained). The first error (in grid
// order, independent of scheduling) aborts the result.
func (s Sweep) Run() (*SweepResult, error) {
	if s.Runner == nil {
		return nil, fmt.Errorf("o2: Sweep %q has no Runner", s.Name)
	}
	for _, a := range s.Axes {
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("o2: Sweep %q axis %q has no values", s.Name, a.Name)
		}
	}
	repeats := s.Repeats
	if repeats < 1 {
		repeats = 1
	}
	cells := s.cells()
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	jobs := make(chan int)
	runs := make([][]Metrics, len(cells))
	seeds := make([][]uint64, len(cells))
	errs := make([][]error, len(cells))
	remaining := make([]int, len(cells))
	for i := range cells {
		runs[i] = make([]Metrics, repeats)
		seeds[i] = make([]uint64, repeats)
		errs[i] = make([]error, repeats)
		remaining[i] = repeats
	}

	var mu sync.Mutex // guards remaining and Progress
	cellDone := func(ci int) {
		mu.Lock()
		defer mu.Unlock()
		remaining[ci]--
		if remaining[ci] != 0 || s.Progress == nil {
			return
		}
		line := fmt.Sprintf("cell %d/%d", ci+1, len(cells))
		for ai, a := range s.Axes {
			line += fmt.Sprintf("  %s=%s", a.Name, cells[ci].Labels[ai])
		}
		if m := runs[ci][0]; m != nil {
			if v, ok := m["kres_per_sec"]; ok {
				line += fmt.Sprintf("  kres/s %.0f", v)
			}
		}
		fmt.Fprintln(s.Progress, line)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				// A cell's repeats run sequentially on one worker so they
				// can share an arena: the first repeat builds the runtime
				// and scenario, later repeats reset and reuse them.
				// Determinism is unaffected — each repeat's behavior is a
				// pure function of its CellSeed either way.
				arena := &cellArena{}
				for r := 0; r < repeats; r++ {
					c := cells[ci]
					c.Repeat = r
					c.Seed = CellSeed(s.Seed, c.Index, r)
					c.Params.Seed = c.Seed
					c.arena = arena
					m, err := s.Runner(c)
					runs[ci][r] = m
					seeds[ci][r] = c.Seed
					errs[ci][r] = err
					if err != nil {
						// A failed repeat may leave the arena half-built;
						// give the next repeat a clean slate.
						arena = &cellArena{}
					}
					cellDone(ci)
				}
			}
		}()
	}
	for ci := range cells {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()

	// Report the first failure in grid order, not completion order, so
	// the error a caller sees does not depend on the worker count.
	for ci := range cells {
		for r := 0; r < repeats; r++ {
			if err := errs[ci][r]; err != nil {
				return nil, fmt.Errorf("o2: sweep %q cell %d %v repeat %d: %w",
					s.Name, ci, cells[ci].Labels, r, err)
			}
		}
	}

	res := &SweepResult{
		Name:    s.Name,
		Axes:    make([]string, len(s.Axes)),
		Repeats: repeats,
		Seed:    s.Seed,
	}
	for i, a := range s.Axes {
		res.Axes[i] = a.Name
	}
	for ci, c := range cells {
		cr := CellResult{
			Index:  c.Index,
			Labels: c.Labels,
			Coords: c.Coords,
			Seeds:  seeds[ci],
			Runs:   runs[ci],
			Stats:  map[string]Aggregate{},
		}
		// Aggregate in repeat order — not completion order — so the
		// floating-point accumulation is identical at any worker count.
		byMetric := map[string][]float64{}
		for _, m := range runs[ci] {
			for name, v := range m {
				byMetric[name] = append(byMetric[name], v)
			}
		}
		for name, xs := range byMetric {
			sum := stats.Summarize(xs)
			cr.Stats[name] = Aggregate{
				N:      int(sum.N()),
				Mean:   sum.Mean(),
				Stddev: sum.Stddev(),
				Min:    sum.Min(),
				Max:    sum.Max(),
			}
		}
		res.Cells = append(res.Cells, cr)
	}
	return res, nil
}
