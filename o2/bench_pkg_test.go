package o2

import (
	"strings"
	"testing"
)

func TestLatencyTableMatchesPaper(t *testing.T) {
	rows, err := LatencyTable()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"L1 hit":                   3,
		"L2 hit":                   14,
		"L3 hit":                   75,
		"remote cache (same chip)": 127,
		"DRAM (local bank)":        230,
		"DRAM (most distant bank)": 336,
	}
	got := map[string]int64{}
	for _, r := range rows {
		got[r.Name] = int64(r.Measured)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %d cycles, want %d (paper §5)", name, got[name], w)
		}
	}
	// Remote fetches must span the paper's 127–336 range monotonically.
	if !(got["remote cache (same chip)"] < got["remote cache (1 hop)"] &&
		got["remote cache (1 hop)"] < got["remote cache (2 hops)"]) {
		t.Error("remote cache latencies not monotone in distance")
	}
}

func TestMigrationCostNearPaper(t *testing.T) {
	r, err := MigrationCost(32)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanCycles < 1200 || r.MeanCycles > 3000 {
		t.Fatalf("migration cost %.0f cycles, want ≈2000 (paper §5)", r.MeanCycles)
	}
	if r.CrossChip <= r.SameChip {
		t.Errorf("cross-chip migration (%.0f) should cost more than same-chip (%.0f)",
			r.CrossChip, r.SameChip)
	}
}

func TestFig4SmokeTiny(t *testing.T) {
	// A reduced sweep on the Tiny8 machine: validates the end-to-end
	// harness and the headline shape (CoreTime wins once data exceeds a
	// chip's caches) without AMD16 simulation cost.
	cfg := Fig4Config{
		Machine:       Tiny8,
		DirCounts:     []int{2, 8, 16},
		EntriesPerDir: 512, // 16 KB per dir
		Params:        DefaultRunParams(),
	}
	cfg.Params.Threads = 8
	cfg.Params.Warmup = 800_000
	cfg.Params.Measure = 1_600_000

	rows, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaseKRes <= 0 || r.CTKRes <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	// 8 dirs = 128 KB: exceeds one chip (64 KB), fits on-chip total.
	mid := rows[1]
	if mid.Speedup < 1.3 {
		t.Errorf("at 8 dirs CoreTime speedup = %.2fx, want clearly > 1 (paper: 2–3x)", mid.Speedup)
	}
	if mid.Migrations == 0 {
		t.Error("CoreTime never migrated at the mid point")
	}
	var sb strings.Builder
	WriteFig4Table(&sb, "fig4a tiny", rows)
	if !strings.Contains(sb.String(), "without-CT") {
		t.Error("table formatting broken")
	}
}

func TestFig4bOscillatingSmoke(t *testing.T) {
	// Fig. 4b exists to show CoreTime rebalancing when the active set
	// oscillates (§5). At Tiny8 scale the decisive comparison is
	// CoreTime with the monitor (decay + rebalance) against CoreTime
	// without it: 24 dirs of 16 KB against a budget of ~8 placements
	// means the monitor must evict stale placements for the active set
	// to fit.
	p := DefaultRunParams()
	p.Threads = 8
	p.Warmup = 900_000
	p.Measure = 3_600_000
	p.Popularity = Oscillating
	p.OscillatePeriod = 600_000
	p.OscillateDivisor = 4 // small phase: 6 dirs

	exp := Experiment{
		Machine: Tiny8,
		Tree:    DirSpec{Dirs: 24, EntriesPerDir: 512},
		Params:  p,
	}
	run := func(monitor bool) float64 {
		var opts []Option
		if monitor {
			opts = []Option{WithRebalanceInterval(150_000), WithDecayWindow(450_000)}
		} else {
			opts = []Option{WithRebalanceInterval(0), WithDecayWindow(0)}
		}
		res, err := exp.Run(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res.KResPerSec
	}

	static := run(false)
	rebal := run(true)
	t.Logf("fig4b tiny: coretime static %.0f, with monitor %.0f (%.2fx)",
		static, rebal, rebal/static)
	if rebal <= static {
		t.Errorf("monitor (rebalance+decay) did not help under oscillation: %.0f vs %.0f",
			rebal, static)
	}
}

func TestFig2ShowsDeduplication(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.Warmup = 1_500_000
	base, o2map, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("thread scheduler: %d/%d on-chip, duplication %.2f",
		base.DistinctOnChip, len(base.Dirs), base.Duplication)
	t.Logf("o2 scheduler:     %d/%d on-chip, duplication %.2f",
		o2map.DistinctOnChip, len(o2map.Dirs), o2map.Duplication)
	// The paper's Fig. 2 claim: the O2 scheduler stores more distinct
	// directories on-chip with less duplication.
	if o2map.DistinctOnChip < base.DistinctOnChip {
		t.Errorf("O2 keeps fewer dirs on-chip (%d) than thread scheduling (%d)",
			o2map.DistinctOnChip, base.DistinctOnChip)
	}
	if o2map.Duplication >= base.Duplication {
		t.Errorf("O2 duplication %.2f not below thread scheduling %.2f",
			o2map.Duplication, base.Duplication)
	}
	var sb strings.Builder
	WriteCacheMap(&sb, cfg.Machine, base)
	WriteCacheMap(&sb, cfg.Machine, o2map)
	if !strings.Contains(sb.String(), "off-chip") {
		t.Error("cache map rendering broken")
	}
}

func TestAblationClustering(t *testing.T) {
	rows, err := AblationClustering()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clustering: off %.0f, on %.0f kops/s", rows[0].KOps, rows[1].KOps)
	if rows[1].KOps <= rows[0].KOps {
		t.Errorf("clustering did not help: %.0f vs %.0f", rows[1].KOps, rows[0].KOps)
	}
}

func TestAblationReplication(t *testing.T) {
	rows, err := AblationReplication()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replication: off %.0f, on %.0f kops/s", rows[0].KOps, rows[1].KOps)
	if rows[1].KOps <= rows[0].KOps {
		t.Errorf("replication did not help: %.0f vs %.0f", rows[1].KOps, rows[0].KOps)
	}
}

func TestAblationReplacement(t *testing.T) {
	rows, err := AblationReplacement()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replacement: first-fit %.0f, frequency %.0f kres/s", rows[0].KOps, rows[1].KOps)
	// Frequency-based replacement should not lose; usually it wins.
	if rows[1].KOps < rows[0].KOps*0.95 {
		t.Errorf("frequency replacement regressed: %.0f vs %.0f", rows[1].KOps, rows[0].KOps)
	}
}

func TestAblationMigrationCostMonotone(t *testing.T) {
	rows, err := AblationMigrationCost()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-36s %8.0f kres/s", r.Config, r.KOps)
	}
	// Throughput must not increase with migration cost (allowing noise).
	first, last := rows[1].KOps, rows[len(rows)-1].KOps
	if last > first*1.05 {
		t.Errorf("higher migration cost improved throughput: %.0f → %.0f", first, last)
	}
}

func TestAblationPathClustering(t *testing.T) {
	rows, err := AblationPathClustering()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-32s %8.0f kres/s %s", r.Config, r.KOps, r.Note)
	}
	flat, clustered := rows[1].KOps, rows[2].KOps
	if clustered < flat {
		t.Errorf("path clustering slowed resolution: %.0f vs %.0f", clustered, flat)
	}
}

func TestAblationSingleThread(t *testing.T) {
	// §1: a single-threaded application with a working set larger than
	// one core's cache runs faster when CoreTime walks it across the
	// machine's caches.
	rows, err := AblationSingleThread()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("single-thread: pinned %.0f, coretime %.0f kops/s (%.2fx)",
		rows[0].KOps, rows[1].KOps, rows[1].KOps/rows[0].KOps)
	if rows[1].KOps <= rows[0].KOps*1.3 {
		t.Errorf("single-thread CoreTime advantage too small: %.0f vs %.0f",
			rows[1].KOps, rows[0].KOps)
	}
}

func TestAblationHeterogeneous(t *testing.T) {
	rows, err := AblationHeterogeneous()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-32s %8.0f kres/s %s", r.Config, r.KOps, r.Note)
	}
	if rows[0].KOps <= 0 || rows[1].KOps <= 0 {
		t.Fatal("degenerate heterogeneous results")
	}
}
