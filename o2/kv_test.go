package o2

import (
	"math"
	"testing"
	"testing/quick"
)

// kvTestSpec is the Tiny8-scale store the tests measure: 16 shards of
// 8 KB under a 64 K-entry key space.
func kvTestSpec() KVSpec {
	return KVSpec{Shards: 16, SlotsPerShard: 128, SlotBytes: 64, Keys: 1 << 16}
}

// kvScanHeavySkewed is the scenario's headline cell: 40% full-shard
// scans, Zipf-0.99 key popularity, oversubscribed closed-loop clients.
func kvScanHeavySkewed() KVLoad {
	return KVLoad{
		Clients:      16,
		OpsPerClient: 600,
		Mix:          KVMix{Gets: 0.59, Scans: 0.40, Puts: 0.01},
		Skew:         0.99,
		Seed:         42,
	}
}

func runKVPolicy(t *testing.T, p KVPolicy, spec KVSpec, load KVLoad) KVResult {
	t.Helper()
	rt, err := New(append([]Option{WithTopology(Tiny8), WithSeed(42)}, p.Options()...)...)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := rt.NewKVService(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(load)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestKVReplicationBeatsBaselineOnScanHeavySkewed asserts the scenario's
// acceptance criterion: on the scan-heavy, Zipf-skewed cell the
// CoreTime + read-only-replication policy outperforms the traditional
// thread scheduler — the paper's §6.2 argument measured on a service
// workload instead of the fatfs microbenchmark. The simulation is
// deterministic, so the margin is stable; the 10% floor just keeps the
// assertion meaningful.
func TestKVReplicationBeatsBaselineOnScanHeavySkewed(t *testing.T) {
	spec, load := kvTestSpec(), kvScanHeavySkewed()
	base := runKVPolicy(t, KVThreadScheduler, spec, load)
	repl := runKVPolicy(t, KVCoreTimeReplicated, spec, load)

	if repl.KOpsPerSec < base.KOpsPerSec*1.10 {
		t.Errorf("coretime+replication %.0f kops/s does not beat thread scheduler %.0f kops/s by 10%%",
			repl.KOpsPerSec, base.KOpsPerSec)
	}
	// The mechanism, not just the outcome: replication serves shards
	// on-chip (hit rate way up) at the price of migrations the baseline
	// never pays.
	if repl.CacheHitRate < base.CacheHitRate+0.2 {
		t.Errorf("replication hit rate %.3f not clearly above baseline %.3f", repl.CacheHitRate, base.CacheHitRate)
	}
	if base.Migrations != 0 {
		t.Errorf("thread scheduler migrated %d times; baseline must never migrate", base.Migrations)
	}
	if repl.Migrations == 0 {
		t.Error("coretime+replication recorded no migrations; the policy is not engaging")
	}
}

// TestKVCoreTimeBeatsBaselineOnScanHeavySkewed pins the plain-CoreTime
// ordering on the same cell, so the sweep's policy story (baseline <
// replication <= coretime family) stays anchored.
func TestKVCoreTimeBeatsBaselineOnScanHeavySkewed(t *testing.T) {
	spec, load := kvTestSpec(), kvScanHeavySkewed()
	base := runKVPolicy(t, KVThreadScheduler, spec, load)
	ct := runKVPolicy(t, KVCoreTime, spec, load)
	if ct.KOpsPerSec < base.KOpsPerSec*1.10 {
		t.Errorf("coretime %.0f kops/s does not beat thread scheduler %.0f kops/s by 10%%",
			ct.KOpsPerSec, base.KOpsPerSec)
	}
}

// TestKVSlotAddressingRegression is the regression test for the kvstore
// example's addressing bug: its slotAddr used (key/shards)%slots, which
// collapses every key below the shard count onto slot 0 — with
// shards >= slots an entire dense key range crowds into one slot per
// shard, so every get and put of distinct keys hammers one cache line.
// The KVService addressing must spread those same key streams.
func TestKVSlotAddressingRegression(t *testing.T) {
	spec := KVSpec{Shards: 64, SlotsPerShard: 32, SlotBytes: 64, Keys: 1 << 16} // shards >= slots
	rt := MustNew(WithTopology(Tiny8))
	svc, err := rt.NewKVService(spec)
	if err != nil {
		t.Fatal(err)
	}

	oldSlot := func(key uint64) int {
		return int(key / uint64(spec.Shards) % uint64(spec.SlotsPerShard))
	}
	oldSeen := map[int]bool{}
	newSeen := map[int]bool{}
	for key := uint64(0); key < uint64(spec.Shards); key++ { // dense keys, one per shard
		oldSeen[oldSlot(key)] = true
		newSeen[svc.SlotOf(key)] = true
	}
	if len(oldSeen) != 1 {
		t.Fatalf("premise: old formula spread %d slots, expected the slot-0 collapse", len(oldSeen))
	}
	if len(newSeen) < spec.SlotsPerShard/2 {
		t.Errorf("SlotOf spread a dense key range over only %d/%d slots", len(newSeen), spec.SlotsPerShard)
	}

	// And the addresses the machine actually touches are distinct slots,
	// not one line: distinct keys of one shard must hit multiple addresses.
	addrs := map[Addr]bool{}
	for i := 0; i < 32; i++ {
		key := uint64(i * spec.Shards) // all map to shard 0
		addrs[svc.SlotAddr(key)] = true
	}
	if len(addrs) < 8 {
		t.Errorf("32 distinct shard-0 keys mapped to %d slot addresses; expected a spread", len(addrs))
	}
}

// TestKVServiceAddressingProperties checks the service-level addressing
// contract with testing/quick: every key's slot address stays inside its
// shard's object, shards balance dense ranges within one, and the slot
// chosen for a key survives shard-count changes.
func TestKVServiceAddressingProperties(t *testing.T) {
	rt := MustNew(WithTopology(Small4))
	specA := KVSpec{Shards: 8, SlotsPerShard: 16, SlotBytes: 64, Keys: 1 << 12}
	specB := KVSpec{Shards: 24, SlotsPerShard: 16, SlotBytes: 64, Keys: 1 << 12}
	svcA, err := rt.NewKVService(specA)
	if err != nil {
		t.Fatal(err)
	}
	rtB := MustNew(WithTopology(Small4))
	svcB, err := rtB.NewKVService(specB)
	if err != nil {
		t.Fatal(err)
	}

	f := func(key uint64) bool {
		shard := svcA.ShardOf(key)
		if shard < 0 || shard >= specA.Shards {
			return false
		}
		slot := svcA.SlotOf(key)
		if slot < 0 || slot >= specA.SlotsPerShard {
			return false
		}
		obj := svcA.Shard(shard)
		addr := svcA.SlotAddr(key)
		if addr < obj.Addr(0) || addr+Addr(specA.SlotBytes) > obj.Addr(obj.Size()) {
			return false
		}
		// Same slot table size, different shard count: the slot must not
		// move.
		return svcB.SlotOf(key) == slot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestKVRunDeterminism: identical seeds give byte-identical results;
// different seeds actually vary the run.
func TestKVRunDeterminism(t *testing.T) {
	load := kvScanHeavySkewed()
	load.Clients = 8
	load.OpsPerClient = 200
	run := func(seed uint64) KVResult {
		rt := MustNew(WithTopology(Tiny8), WithSeed(seed))
		svc, err := rt.NewKVService(kvTestSpec())
		if err != nil {
			t.Fatal(err)
		}
		l := load
		l.Seed = seed
		res, err := svc.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(7), run(7), run(8)
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	if a == c {
		t.Error("different seeds produced identical results; seed is not reaching the run")
	}
}

// TestKVSweepWorkerInvariance runs a small policy×skew grid at one and
// many workers: the SweepResults must be deeply identical, the KV
// instance of the engine's determinism guarantee.
func TestKVSweepWorkerInvariance(t *testing.T) {
	cfg := QuickKVConfig()
	cfg.Spec = KVSpec{Shards: 8, SlotsPerShard: 64, SlotBytes: 64, Keys: 1 << 12}
	cfg.Load = KVLoad{Clients: 8, OpsPerClient: 120}
	cfg.Mixes = []KVMix{DefaultKVMix()}
	cfg.Skews = []float64{0, 0.99}
	cfg.Policies = []KVPolicy{KVThreadScheduler, KVCoreTime}
	cfg.Seed = 5

	run := func(workers int) *SweepResult {
		_, sweep := KVSweep(cfg)
		res, err := sweep.WithWorkers(workers).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, many := run(1), run(8)
	if len(one.Cells) != len(many.Cells) {
		t.Fatalf("cell count differs: %d vs %d", len(one.Cells), len(many.Cells))
	}
	for i := range one.Cells {
		a, b := one.Cells[i], many.Cells[i]
		for _, m := range []string{"kops_per_sec", "cycles_per_op", "cache_hit_rate", "migrations"} {
			if a.Stats[m] != b.Stats[m] {
				t.Errorf("cell %d %v metric %s differs across worker counts: %+v vs %+v",
					i, a.Labels, m, a.Stats[m], b.Stats[m])
			}
		}
	}
}

// TestKVCellHonorsCellScheduler: Cell.Scheduler is authoritative for
// KVCell exactly as it is for DirLookupCell — a bare cell runs under it,
// and a PolicyAxis value keeps it in sync with the policy it applies.
func TestKVCellHonorsCellScheduler(t *testing.T) {
	base := Cell{
		Machine: Tiny8,
		KV:      KVSpec{Shards: 4, SlotsPerShard: 16, SlotBytes: 64, Keys: 64},
		Load:    KVLoad{Clients: 2, OpsPerClient: 20},
	}

	bare := base
	bare.Scheduler = Baseline
	m, err := KVCell(bare)
	if err != nil {
		t.Fatal(err)
	}
	if m["migrations"] != 0 {
		t.Errorf("Scheduler=Baseline cell migrated %v times; KVCell is ignoring Cell.Scheduler", m["migrations"])
	}

	// A PolicyAxis value applied over a conflicting base scheduler must
	// select the policy's scheduler, not the base's.
	viaAxis := base
	viaAxis.Scheduler = Baseline
	PolicyAxis(KVCoreTime).Values[0].Apply(&viaAxis)
	if viaAxis.Scheduler != CoreTime {
		t.Fatalf("PolicyAxis left Cell.Scheduler = %v, want CoreTime", viaAxis.Scheduler)
	}
	m, err = KVCell(viaAxis)
	if err != nil {
		t.Fatal(err)
	}
	if m["migrations"] == 0 {
		t.Error("PolicyAxis(KVCoreTime) cell never migrated; the policy is not in effect")
	}
}

// TestKVSpecDefaultsAndValidation covers the spec's defaulting and
// rejection paths.
func TestKVSpecDefaultsAndValidation(t *testing.T) {
	d := KVSpec{}.WithDefaults()
	if d.Shards != 16 || d.SlotsPerShard != 128 || d.SlotBytes != 64 || d.Keys != 16*128 {
		t.Errorf("unexpected defaults: %+v", d)
	}
	rt := MustNew(WithTopology(Small4))
	if _, err := rt.NewKVService(KVSpec{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := rt.NewKVService(KVSpec{Keys: -5}); err == nil {
		t.Error("negative key count accepted")
	}
}

// TestKVLoadValidation covers the load generator's rejection paths.
func TestKVLoadValidation(t *testing.T) {
	rt := MustNew(WithTopology(Small4))
	svc, err := rt.NewKVService(KVSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(KVLoad{Mix: KVMix{Gets: -1, Scans: 2, Puts: 0}, OpsPerClient: 1}); err == nil {
		t.Error("negative mix weight accepted")
	}
	if _, err := svc.Run(KVLoad{Mix: KVMix{Gets: math.NaN(), Scans: 1, Puts: 0}, OpsPerClient: 1}); err == nil {
		t.Error("NaN mix weight accepted; it would silently run as 100% gets")
	}
	if _, err := svc.Run(KVLoad{Mix: KVMix{Gets: math.Inf(1), Scans: 1, Puts: 0}, OpsPerClient: 1}); err == nil {
		t.Error("infinite mix weight accepted")
	}
	if _, err := svc.Run(KVLoad{Skew: -0.5, OpsPerClient: 1}); err == nil {
		t.Error("negative skew accepted")
	}
	if _, err := svc.Run(KVLoad{Clients: -2}); err == nil {
		t.Error("negative client count accepted")
	}
}

// TestKVMixLabels pins the axis labels sweep cells are addressed by.
func TestKVMixLabels(t *testing.T) {
	cases := []struct {
		mix  KVMix
		want string
	}{
		{KVMix{Gets: 0.59, Scans: 0.40, Puts: 0.01}, "g59s40p1"},
		{KVMix{Gets: 59, Scans: 40, Puts: 1}, "g59s40p1"}, // normalization
		{KVMix{Gets: 1}, "g100s0p0"},
	}
	for _, tc := range cases {
		if got := tc.mix.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.mix, got, tc.want)
		}
	}
}

// TestKVPolicyOptionsSelectSchedulers checks each policy builds a runtime
// under the scheduler it names.
func TestKVPolicyOptionsSelectSchedulers(t *testing.T) {
	want := map[KVPolicy]Scheduler{
		KVThreadScheduler:    Baseline,
		KVHashAffinity:       Affinity,
		KVCoreTime:           CoreTime,
		KVCoreTimeReplicated: CoreTime,
		CoreTimeBW:           CoreTime,
	}
	for p, sched := range want {
		rt, err := New(append([]Option{WithTopology(Small4)}, p.Options()...)...)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if rt.Scheduler() != sched {
			t.Errorf("%v built scheduler %v, want %v", p, rt.Scheduler(), sched)
		}
	}
}

// TestAffinitySchedulerRuns drives a tiny load under the hash-affinity
// scheduler end to end through the façade.
func TestAffinitySchedulerRuns(t *testing.T) {
	rt := MustNew(WithTopology(Tiny8), WithScheduler(Affinity), WithSeed(3))
	svc, err := rt.NewKVService(KVSpec{Shards: 8, SlotsPerShard: 32, SlotBytes: 64, Keys: 256})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(KVLoad{Clients: 8, OpsPerClient: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "hash-affinity" {
		t.Errorf("scheduler name %q", res.Scheduler)
	}
	if res.Ops != 800 || res.KOpsPerSec <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if res.Migrations == 0 {
		t.Error("hash affinity never migrated; annotator not engaged")
	}
}
