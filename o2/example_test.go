package o2_test

import (
	"fmt"

	"repro/o2"
)

// Example reproduces the quickstart path: compare the traditional thread
// scheduler against CoreTime on the directory-lookup workload. The
// simulation is deterministic, so the comparison always lands the same
// way.
func Example() {
	params := o2.DefaultRunParams()
	params.Threads = 8
	params.Warmup = 1_000_000
	params.Measure = 2_000_000

	exp := o2.Experiment{
		Machine: o2.Tiny8,
		// 128 KB of directory data: too big for one chip's caches,
		// small enough for the machine — the regime O2 targets.
		Tree:   o2.DirSpec{Dirs: 8, EntriesPerDir: 512},
		Params: params,
	}
	base, ct, err := exp.Compare()
	if err != nil {
		panic(err)
	}
	fmt.Println(base.Scheduler)
	fmt.Println(ct.Scheduler)
	fmt.Println("coretime faster:", ct.KResPerSec > base.KResPerSec)
	fmt.Println("coretime migrated:", ct.Migrations > 0)
	// Output:
	// thread-scheduler
	// coretime
	// coretime faster: true
	// coretime migrated: true
}

// ExampleRuntime_Go shows the annotation handles on a hand-built workload:
// one object scanned by four threads under CoreTime.
func ExampleRuntime_Go() {
	rt := o2.MustNew(o2.WithTopology(o2.Tiny8), o2.WithMissThreshold(1))
	table, err := rt.NewObject("table", 8<<10)
	if err != nil {
		panic(err)
	}
	for w := 0; w < 4; w++ {
		rt.Go(fmt.Sprintf("worker %d", w), w, func(t *o2.Thread) {
			for i := 0; i < 50; i++ {
				op := t.Begin(table) // ct_start: may migrate to the object
				t.LoadCompute(table.Addr(0), table.Size(), 0.05)
				op.End() // ct_end
				t.Yield()
			}
		})
	}
	rt.Run()
	_, placed := rt.Placement(table)
	fmt.Println("object placed:", placed)
	// Output:
	// object placed: true
}
