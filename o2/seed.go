package o2

import "repro/internal/stats"

// Seeding scheme of the sweep engine.
//
// Every measurement in a Sweep gets its own seed, derived purely from the
// sweep's base seed, the cell's position in the grid, and the repeat
// number:
//
//	seed(cell, repeat) = DeriveSeed(base, cellIndex, repeat)
//
// Because the derivation is a pure function of those values, the seed a
// measurement receives does not depend on how many workers execute the
// sweep or in what order cells happen to finish — the core property behind
// the -workers=1 vs -workers=8 determinism guarantee. The derived seed is
// installed both as the runtime's base seed (WithSeed, reaching every
// internal stream through the simulation engine) and as RunParams.Seed
// (driving the workload's directory-choice RNG).

// DeriveSeed deterministically derives a child seed from a base seed and a
// sequence of strata (for example: cell index, repeat number) using
// SplitMix64 steps. Equal inputs give equal outputs on every platform;
// distinct strata give decorrelated seeds.
func DeriveSeed(base uint64, strata ...uint64) uint64 {
	return stats.DeriveSeed(base, strata...)
}

// CellSeed returns the seed the sweep engine assigns to one repeat of one
// cell. Exposed so tests and external harnesses can reproduce a single
// cell of a sweep in isolation.
func CellSeed(base uint64, cellIndex, repeat int) uint64 {
	return stats.DeriveSeed(base, uint64(cellIndex), uint64(repeat))
}
