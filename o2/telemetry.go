package o2

import (
	"errors"
	"io"

	"repro/internal/telemetry"
)

// defaultTelemetryTraceCap is the scheduler-trace capacity WithTelemetry
// implies when the caller chose no WithTrace capacity of their own.
const defaultTelemetryTraceCap = 4096

// defaultTelemetryCap is the sampler ring capacity in samples: how many
// of the most recent sampling windows a timeline can render.
const defaultTelemetryCap = 1024

// ErrTraceDisabled is returned by trace accessors on a runtime built
// without WithTrace (or WithTelemetry, which implies it): the caller
// asked for a trace that was never recorded, which is distinct from a
// recorded trace that happens to be empty.
var ErrTraceDisabled = errors.New("o2: tracing disabled; build the runtime with WithTrace or WithTelemetry")

// ErrTelemetryDisabled is returned by timeline accessors on a runtime
// built without WithTelemetry.
var ErrTelemetryDisabled = errors.New("o2: telemetry disabled; build the runtime with WithTelemetry")

// runtimeTelemetry is the telemetry state hanging off a Runtime: the
// always-on metrics registry plus, under WithTelemetry, the periodic
// sampler and the hooks it reads the rest of the system through.
type runtimeTelemetry struct {
	reg     *telemetry.Registry
	sampler *telemetry.Sampler // nil unless WithTelemetry

	chipOf     []int               // core→socket table, cached once
	queueLen   func(int) int       // per-core run-queue depth
	sched      telemetry.SchedFill // CoreTime placement/signal fill; nil otherwise
	queueDepth func() int          // bounded service-queue depth; nil without a service
}

// initTelemetry builds the registry (always) and the sampler (under
// WithTelemetry) once the machine has materialized. Called at the end of
// ensure, so every hook below captures the final engine/machine/substrate.
func (rt *Runtime) initTelemetry() {
	tel := &rt.tel
	tel.reg = telemetry.NewRegistry()
	tel.chipOf = rt.set.topo.cfg.ChipTable()
	sys := rt.sys
	tel.queueLen = func(i int) int { return sys.Core(i).QueueLen() }
	if ct := rt.ct; ct != nil {
		tel.sched = ct.FillTelemetry
	}
	if rt.set.telInterval > 0 {
		capacity := rt.set.telCap
		if capacity <= 0 {
			capacity = defaultTelemetryCap
		}
		tel.sampler = telemetry.NewSampler(Cycles(rt.set.telInterval), capacity,
			rt.mach.NumCores(), rt.set.topo.Chips())
		rt.startSampler()
	}
	rt.registerMetrics()
}

// startSampler arms the periodic probe on the engine. Like the CoreTime
// monitor, the probe keeps itself alive only while threads are live, so
// a drained engine stays drained (arena reuse requires Pending() == 0).
func (rt *Runtime) startSampler() {
	eng := rt.eng
	eng.Every(Cycles(rt.set.telInterval), func() bool {
		rt.probeTelemetry()
		return eng.Live() > 0
	})
}

// probeTelemetry takes one sample. Everything it touches is read-only
// except FlushIdleAccounting, which idempotently folds in-progress idle
// spans into the counters (the CoreTime monitor does the same), so
// sampling cannot change simulation results — only observe them.
//
//o2:hotpath
func (rt *Runtime) probeTelemetry() {
	rt.sys.FlushIdleAccounting()
	depth := 0
	if rt.tel.queueDepth != nil {
		depth = rt.tel.queueDepth()
	}
	rt.tel.sampler.Probe(rt.eng.Now(), rt.mach.Counters(), rt.tel.chipOf,
		rt.eng.DeadTime(), rt.tel.queueLen, depth, rt.tel.sched)
}

// registerMetrics publishes the built-in gauges: engine, machine, and
// substrate always; scheduler counters under CoreTime; sampler progress
// under WithTelemetry. Service counters join when a service is built.
// Gauges are pull-based — they read live state at Metrics() time and
// cost nothing on the simulation's hot paths.
func (rt *Runtime) registerMetrics() {
	reg := rt.tel.reg
	eng, mach, sys := rt.eng, rt.mach, rt.sys

	reg.Gauge("engine.now_cycles", func() float64 { return float64(eng.Now()) })
	reg.Gauge("engine.events_dispatched", func() float64 { return float64(eng.EventsDispatched()) })
	reg.Gauge("engine.dead_time_cycles", func() float64 { return float64(eng.DeadTime()) })
	reg.Gauge("engine.fast_sleeps", func() float64 { return float64(eng.FastSleeps()) })

	reg.Gauge("machine.loads", func() float64 { return float64(mach.Counters().Total().Loads) })
	reg.Gauge("machine.stores", func() float64 { return float64(mach.Counters().Total().Stores) })
	reg.Gauge("machine.l2_misses", func() float64 { return float64(mach.Counters().Total().L2Miss) })
	reg.Gauge("machine.dram_loads", func() float64 { return float64(mach.Counters().Total().DRAMLoads) })
	reg.Gauge("machine.remote_fetches", func() float64 { return float64(mach.Counters().Total().RemoteFetches) })
	reg.Gauge("machine.dram_queue_cycles", func() float64 { return float64(mach.Counters().Total().DRAMQueueCycles) })
	reg.Gauge("machine.link_queue_cycles", func() float64 { return float64(mach.Counters().Total().LinkQueueCycles) })

	reg.Gauge("exec.run_queue_depth", func() float64 {
		sys.FlushIdleAccounting()
		total := 0
		for i := 0; i < sys.NumCores(); i++ {
			total += sys.Core(i).QueueLen()
		}
		return float64(total)
	})

	if ct := rt.ct; ct != nil {
		reg.Gauge("sched.ops", func() float64 { return float64(ct.Stats().Ops) })
		reg.Gauge("sched.migrations", func() float64 { return float64(ct.Stats().Migrations) })
		reg.Gauge("sched.placements", func() float64 { return float64(ct.Stats().Placements) })
		reg.Gauge("sched.rebalances", func() float64 { return float64(ct.Stats().Rebalances) })
		reg.Gauge("sched.objects_moved", func() float64 { return float64(ct.Stats().ObjectsMoved) })
		reg.Gauge("sched.bw_spread_moves", func() float64 { return float64(ct.Stats().BWSpreadMoves) })
		reg.Gauge("sched.bw_admit_refusals", func() float64 { return float64(ct.Stats().BWAdmitRefusals) })
	}
	if s := rt.tel.sampler; s != nil {
		reg.Gauge("telemetry.samples", func() float64 { return float64(s.TotalSamples()) })
	}
}

// counter returns the named registry counter, materializing the runtime
// first; services wire their per-request counts through this.
func (rt *Runtime) counter(name string) *telemetry.Counter {
	rt.mustEnsure()
	return rt.tel.reg.Counter(name)
}

// Metrics enumerates every registered metric — counters and gauges from
// all subsystems — sorted by name. The registry is always on; without
// WithTelemetry it simply has no sampler series behind it.
func (rt *Runtime) Metrics() []Metric {
	rt.mustEnsure()
	return rt.tel.reg.Snapshot()
}

// WriteMetrics dumps the registry to w as one sorted JSON object.
func (rt *Runtime) WriteMetrics(w io.Writer) error {
	rt.mustEnsure()
	return rt.tel.reg.WriteJSON(w)
}

// WriteTimeline renders the telemetry samples, merged with the recorded
// scheduler trace, as a Chrome trace-event JSON timeline loadable in
// chrome://tracing or Perfetto. Returns ErrTelemetryDisabled unless the
// runtime was built with WithTelemetry. Output is deterministic: a pure
// function of (configuration, seed).
func (rt *Runtime) WriteTimeline(w io.Writer) error {
	if rt.set.telInterval <= 0 {
		return ErrTelemetryDisabled
	}
	rt.mustEnsure()
	return rt.tel.sampler.WriteTrace(w, telemetry.ExportConfig{
		ClockHz:        rt.ClockHz(),
		SaturationFrac: rt.saturationFrac(),
		Events:         rt.tracer.Events(),
	})
}

// PeakBWSignal returns the highest smoothed per-socket bandwidth signal
// (queue cycles per busy cycle, the CoreTime monitor's saturation
// metric) any telemetry sample recorded, with the socket and simulated
// time where it peaked. Returns ErrTelemetryDisabled without
// WithTelemetry.
func (rt *Runtime) PeakBWSignal() (sig float64, socket int, at Time, err error) {
	if rt.set.telInterval <= 0 {
		return 0, 0, 0, ErrTelemetryDisabled
	}
	rt.mustEnsure()
	sig, socket, simAt := rt.tel.sampler.PeakSignal()
	return sig, socket, Time(simAt), nil
}

// TelemetrySamples reports how many probes have fired (0 without
// WithTelemetry), for sizing expectations in reports and tests.
func (rt *Runtime) TelemetrySamples() int {
	if rt.tel.sampler == nil {
		return 0
	}
	return int(rt.tel.sampler.TotalSamples())
}

// saturationFrac returns the BWSaturationFrac threshold when the
// bandwidth-aware monitor is active, else 0 (no saturation spans).
func (rt *Runtime) saturationFrac() float64 {
	if rt.ct != nil && (rt.set.ct.BWSpread || rt.set.ct.BWAdmission) {
		return rt.set.ct.BWSaturationFrac
	}
	return 0
}

// resetTelemetry rolls telemetry back to its post-build state for arena
// reuse: counters to zero, sampler emptied and re-armed on the freshly
// reset engine. Gauges read live state and need no reset.
func (rt *Runtime) resetTelemetry() {
	rt.tracer.Reset()
	rt.tel.reg.ResetCounters()
	if rt.tel.sampler != nil {
		rt.tel.sampler.Reset()
		rt.startSampler()
	}
}
