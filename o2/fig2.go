package o2

import (
	"fmt"
	"io"
	"sort"
)

// Fig. 2 of the paper contrasts the cache contents of the directory
// workload under a thread scheduler (every core's cache holds copies of
// the same hot directories, much of the data off-chip) with an O2
// scheduler (directories partitioned across caches, everything on-chip).
// CacheMap reproduces that picture from measured cache residency.

// DirResidency describes where one directory's bytes live.
type DirResidency struct {
	Name        string
	SizeBytes   int
	PerL2Bytes  []int // per core
	PerL3Bytes  []int // per chip
	OnChipBytes int   // distinct bytes resident somewhere on chip
	CopyBytes   int   // total resident bytes, counting duplicates
}

// CacheMap is the measured equivalent of the paper's Figure 2 for one
// scheduler.
type CacheMap struct {
	Scheduler string
	Dirs      []DirResidency

	// DistinctOnChip counts directories with at least half their bytes
	// on chip; Duplication is total copy bytes divided by distinct
	// resident bytes (1.0 = no duplication).
	DistinctOnChip int
	OffChip        int
	Duplication    float64
}

// Fig2Config drives the cache-contents experiment.
type Fig2Config struct {
	Machine       Topology
	Dirs          int
	EntriesPerDir int
	Threads       int
	Warmup        uint64
	Seed          uint64
	// Workers bounds the sweep pool running the two schedulers; 0 means
	// runtime.NumCPU().
	Workers int
}

// DefaultFig2Config mirrors the paper's 20-directory illustration on the
// Tiny8 machine, whose cache scale makes duplication visible. 28
// directories of 4 KB are ~112 KB of distinct data against 256 KB of
// on-chip cache: with thread scheduling's ~3× duplication some directories
// must fall off chip (the paper's "off-chip" box), while the O2
// scheduler's partitioned copies all fit.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Machine:       Tiny8,
		Dirs:          28,
		EntriesPerDir: 128, // 4 KB per directory
		Threads:       8,
		Warmup:        3_000_000,
		Seed:          1,
	}
}

// Fig2 runs the directory workload under both schedulers and snapshots
// cache residency after the warmup, returning (thread-scheduler map,
// O2-scheduler map). The two schedulers run as a two-cell sweep, so they
// execute in parallel; both use cfg.Seed, keeping the maps identical to a
// serial run.
func Fig2(cfg Fig2Config) (CacheMap, CacheMap, error) {
	maps := make([]CacheMap, 2)
	_, err := Sweep{
		Name:    "fig2",
		Axes:    []Axis{SchedulerAxis(Baseline, CoreTime)},
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
		Runner: func(c Cell) (Metrics, error) {
			cm, err := fig2One(cfg, c.Scheduler)
			if err != nil {
				return nil, err
			}
			maps[c.Coords[0]] = cm // distinct index per cell, no race
			return Metrics{
				"duplication":  cm.Duplication,
				"on_chip_dirs": float64(cm.DistinctOnChip),
				"off_chip":     float64(cm.OffChip),
			}, nil
		},
	}.Run()
	if err != nil {
		return CacheMap{}, CacheMap{}, err
	}
	return maps[0], maps[1], nil
}

func fig2One(cfg Fig2Config, scheduler Scheduler) (CacheMap, error) {
	rt, err := New(WithTopology(cfg.Machine), WithScheduler(scheduler))
	if err != nil {
		return CacheMap{}, err
	}
	tree, err := rt.NewDirTree(DirSpec{Dirs: cfg.Dirs, EntriesPerDir: cfg.EntriesPerDir})
	if err != nil {
		return CacheMap{}, err
	}
	p := DefaultRunParams()
	p.Threads = cfg.Threads
	p.Warmup = 0
	p.Measure = Cycles(cfg.Warmup)
	p.Seed = cfg.Seed
	res := tree.Run(p)

	// Snapshot residency through the machine model; this is simulator
	// introspection, below the scheduling API.
	cm := CacheMap{Scheduler: res.Scheduler}
	var copyTotal, distinctTotal int
	for _, d := range tree.dirs {
		r := tree.env.Mach.Residency(d.h.Obj)
		dr := DirResidency{
			Name:       d.h.Obj.Name,
			SizeBytes:  int(d.h.Obj.Size),
			PerL2Bytes: r.L2Bytes,
			PerL3Bytes: r.L3Bytes,
		}
		dr.OnChipBytes = dr.SizeBytes - r.DRAMBytes
		for _, b := range r.L2Bytes {
			dr.CopyBytes += b
		}
		for _, b := range r.L3Bytes {
			dr.CopyBytes += b
		}
		if dr.OnChipBytes*2 >= dr.SizeBytes {
			cm.DistinctOnChip++
		} else {
			cm.OffChip++
		}
		copyTotal += dr.CopyBytes
		distinctTotal += dr.OnChipBytes
		cm.Dirs = append(cm.Dirs, dr)
	}
	if distinctTotal > 0 {
		cm.Duplication = float64(copyTotal) / float64(distinctTotal)
	}
	sort.Slice(cm.Dirs, func(i, j int) bool { return cm.Dirs[i].Name < cm.Dirs[j].Name })
	return cm, nil
}

// WriteCacheMap renders a CacheMap in the spirit of the paper's Figure 2:
// one column per core, directories listed where they are resident, and an
// off-chip row.
func WriteCacheMap(w io.Writer, topo Topology, cm CacheMap) {
	fmt.Fprintf(w, "# Cache contents — %s\n", cm.Scheduler)
	for core := 0; core < topo.NumCores(); core++ {
		var names []string
		for _, d := range cm.Dirs {
			if d.PerL2Bytes[core]*4 >= d.SizeBytes { // ≥25% resident
				names = append(names, fmt.Sprintf("%s(%d%%)", trimDir(d.Name), 100*d.PerL2Bytes[core]/d.SizeBytes))
			}
		}
		fmt.Fprintf(w, "core %2d L2 : %s\n", core, joinOr(names, "-"))
	}
	for chip := 0; chip < topo.Chips(); chip++ {
		var names []string
		for _, d := range cm.Dirs {
			if d.PerL3Bytes[chip]*4 >= d.SizeBytes {
				names = append(names, fmt.Sprintf("%s(%d%%)", trimDir(d.Name), 100*d.PerL3Bytes[chip]/d.SizeBytes))
			}
		}
		fmt.Fprintf(w, "chip %2d L3 : %s\n", chip, joinOr(names, "-"))
	}
	var off []string
	for _, d := range cm.Dirs {
		if d.OnChipBytes*2 < d.SizeBytes {
			off = append(off, trimDir(d.Name))
		}
	}
	fmt.Fprintf(w, "off-chip   : %s\n", joinOr(off, "-"))
	fmt.Fprintf(w, "summary    : %d/%d dirs mostly on-chip, duplication %.2f copies/byte\n",
		cm.DistinctOnChip, len(cm.Dirs), cm.Duplication)
}

func trimDir(name string) string {
	// DIR00012 → dir12, for compact rows.
	if len(name) > 3 && name[:3] == "DIR" {
		i := 3
		for i < len(name)-1 && name[i] == '0' {
			i++
		}
		return "dir" + name[i:]
	}
	return name
}

func joinOr(names []string, empty string) string {
	if len(names) == 0 {
		return empty
	}
	out := names[0]
	for _, n := range names[1:] {
		out += " " + n
	}
	return out
}
