package o2

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// LatencyRow is one line of the §5 hardware-latency table.
type LatencyRow struct {
	Name     string
	Measured Cycles
	Paper    Cycles // the value §5 reports, 0 when the paper gives a range
}

// LatencyTable measures the memory-system latencies of the simulated AMD16
// machine with targeted probes, mirroring the numbers the paper reports in
// §5: L1 3, L2 14, L3 75 cycles; remote fetches 127–336 cycles. The probes
// poke the machine model directly, below the scheduling API.
func LatencyTable() ([]LatencyRow, error) {
	cfg := AMD16.cfg
	m, err := machine.New(cfg, 64<<20)
	if err != nil {
		return nil, err
	}
	var rows []LatencyRow
	var at sim.Time

	probe := func(name string, paper Cycles, f func() Cycles) {
		rows = append(rows, LatencyRow{Name: name, Measured: f(), Paper: paper})
	}

	lineSize := mem.Addr(m.LineSize())
	addr := mem.Addr(64 << 10)

	// L1 hit: touch a line twice.
	probe("L1 hit", cfg.Lat.L1Hit, func() Cycles {
		at += m.Access(0, addr, false, at)
		lat := m.Access(0, addr, false, at)
		at += lat
		return lat
	})

	// L2 hit: evict the probe line from L1 by streaming other lines
	// until it leaves L1 (it stays in the much larger L2), then reload.
	probe("L2 hit", cfg.Lat.L2Hit, func() Cycles {
		target := addr + 128<<10
		at += m.Access(0, target, false, at)
		tl := cache.LineOf(target, m.LineSize())
		fill := target + 1<<20
		for i := 0; m.L1(0).Contains(tl); i++ {
			at += m.Access(0, fill+mem.Addr(i)*lineSize, false, at)
			if i > 4*cfg.L1.Size/cfg.L1.LineSize {
				break // cannot happen; guard against infinite loop
			}
		}
		if !m.L2(0).Contains(tl) {
			return 0
		}
		lat := m.Access(0, target, false, at)
		at += lat
		return lat
	})

	// L3 hit: stream twice the L2 capacity through core 0, then reload an
	// early line — it must come from the chip's victim L3.
	probe("L3 hit", cfg.Lat.L3Hit, func() Cycles {
		base := mem.Addr(1 << 20)
		l2lines := cfg.L2.Size / cfg.L2.LineSize
		for i := 0; i < 2*l2lines; i++ {
			at += m.Access(0, base+mem.Addr(i)*lineSize, false, at)
		}
		// Find an early line that really is in the L3 (associativity
		// makes exact victims config-dependent).
		for i := 0; i < 2*l2lines; i++ {
			a := base + mem.Addr(i)*lineSize
			if m.L3(0).Contains(cache.LineOf(a, m.LineSize())) {
				lat := m.Access(0, a, false, at)
				at += lat
				return lat
			}
		}
		return 0
	})

	// Remote cache, same chip: core 1 holds the line, core 0 fetches.
	probe("remote cache (same chip)", cfg.Lat.RemoteCacheSameChip, func() Cycles {
		a := mem.Addr(8 << 20)
		at += m.Access(1, a, false, at)
		lat := m.Access(0, a, false, at)
		at += lat
		return lat
	})

	// Remote cache, adjacent chip (1 hop).
	probe("remote cache (1 hop)", 0, func() Cycles {
		a := mem.Addr(9 << 20)
		at += m.Access(4, a, false, at) // core 4 is chip 1
		lat := m.Access(0, a, false, at)
		at += lat
		return lat
	})

	// Remote cache, diagonal chip (2 hops).
	probe("remote cache (2 hops)", 0, func() Cycles {
		a := mem.Addr(10 << 20)
		at += m.Access(12, a, false, at) // core 12 is chip 3
		lat := m.Access(0, a, false, at)
		at += lat
		return lat
	})

	// DRAM: lines are interleaved across chips by line number, so line
	// numbers ≡ chip give local vs most-distant banks. Probe far in the
	// future so no controller queueing applies.
	at += 1_000_000
	probe("DRAM (local bank)", cfg.Lat.DRAMLocal, func() Cycles {
		a := alignToHomeChip(m, mem.Addr(11<<20), 0)
		lat := m.Access(0, a, false, at)
		at += lat
		return lat
	})
	probe("DRAM (most distant bank)", 336, func() Cycles {
		a := alignToHomeChip(m, mem.Addr(12<<20), 3)
		lat := m.Access(0, a, false, at)
		at += lat
		return lat
	})

	return rows, nil
}

// alignToHomeChip returns the first address at or after a whose line is
// homed on the given chip.
func alignToHomeChip(m *machine.Machine, a mem.Addr, chip int) mem.Addr {
	ls := mem.Addr(m.LineSize())
	chips := mem.Addr(m.Config().Chips)
	for {
		line := a / ls
		if int(line%chips) == chip {
			return a
		}
		a += ls
	}
}

// WriteLatencyTable formats the latency rows.
func WriteLatencyTable(w io.Writer, rows []LatencyRow) {
	fmt.Fprintf(w, "# Memory-system latencies (cycles), AMD16 model vs paper §5\n")
	fmt.Fprintf(w, "%-28s %10s %10s\n", "level", "measured", "paper")
	for _, r := range rows {
		paper := "—"
		if r.Paper != 0 {
			paper = cyclesToString(r.Paper)
		}
		fmt.Fprintf(w, "%-28s %10d %10s\n", r.Name, r.Measured, paper)
	}
}

// MigrationResult summarises the migration-cost microbenchmark (§5 reports
// 2000 cycles).
type MigrationResult struct {
	Trials      int
	MeanCycles  float64
	SameChip    float64 // mean cost migrating within a chip
	CrossChip   float64 // mean cost migrating across the diagonal
	PaperCycles float64
}

// MigrationCost measures the round-trip thread migration cost on the AMD16
// model: a thread repeatedly migrates to a target core and back, and the
// per-migration cost is averaged. The two probes (same-chip, diagonal
// cross-chip) run as a two-cell sweep, each on a fresh machine.
func MigrationCost(trials int) (MigrationResult, error) {
	if trials <= 0 {
		trials = 64
	}
	measure := func(target int) (float64, error) {
		// The probe drives migration explicitly, so no scheduler is
		// needed.
		rt, err := New(WithTopology(AMD16), WithScheduler(Baseline))
		if err != nil {
			return 0, err
		}
		var total Cycles
		rt.Go("migrator", 0, func(t *Thread) {
			// Warm the context buffer and the path once.
			t.MigrateTo(target)
			t.ReturnHome()
			for i := 0; i < trials; i++ {
				start := t.Now()
				t.MigrateTo(target)
				t.ReturnHome()
				total += t.Now() - start
			}
		})
		rt.Run()
		return float64(total) / float64(2*trials), nil
	}

	targets := []int{1, 12} // same chip; diagonal chip (2 hops)
	costs, err := configSweep("migration", []string{"same-chip", "cross-chip"},
		func(i int) (float64, error) { return measure(targets[i]) })
	if err != nil {
		return MigrationResult{}, err
	}
	same, cross := costs[0], costs[1]
	return MigrationResult{
		Trials:      trials,
		MeanCycles:  (same + cross) / 2,
		SameChip:    same,
		CrossChip:   cross,
		PaperCycles: 2000,
	}, nil
}

// WriteMigrationResult formats the migration microbenchmark.
func WriteMigrationResult(w io.Writer, r MigrationResult) {
	fmt.Fprintf(w, "# Thread migration cost (cycles), %d trials\n", r.Trials)
	fmt.Fprintf(w, "%-24s %10.0f\n", "same chip", r.SameChip)
	fmt.Fprintf(w, "%-24s %10.0f\n", "cross chip (2 hops)", r.CrossChip)
	fmt.Fprintf(w, "%-24s %10.0f\n", "mean", r.MeanCycles)
	fmt.Fprintf(w, "%-24s %10.0f\n", "paper (§5)", r.PaperCycles)
}
