package o2_test

// External-package test: everything here must compile against repro/o2
// alone. It pins the fix for a real finding of the o2lint facade
// analyzer: TraceEvent.Kind's type (internal/trace.Kind) had no exported
// o2 alias, so a caller outside the module could receive TraceEvents but
// could not declare a variable of the Kind's type or name the Ev*
// constants to filter on — the filter loop below was unwritable.

import (
	"testing"

	"repro/o2"
)

func TestTraceKindIsNamableThroughFacade(t *testing.T) {
	rt := o2.MustNew(o2.WithTopology(o2.Tiny8), o2.WithTrace(64))
	obj, err := rt.NewObject("obj", 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	rt.Go("w", 0, func(th *o2.Thread) {
		// Miss-heavy operations push the object's miss EWMA over the
		// placement threshold so the capacity scheduler emits EvPlace.
		for i := 0; i < 8; i++ {
			op := th.Begin(obj)
			th.Load(obj.Addr(0), obj.Size())
			op.End()
		}
	})
	rt.Run()

	// Both the type and the constants must be reachable under o2 names.
	evs, err := rt.TraceEvents()
	if err != nil {
		t.Fatalf("TraceEvents on a traced runtime: %v", err)
	}
	var seen []o2.TraceKind
	places := 0
	for _, ev := range evs {
		seen = append(seen, ev.Kind)
		if ev.Kind == o2.EvPlace {
			places++
		}
	}
	if places == 0 {
		t.Fatalf("expected at least one EvPlace decision in the trace, got kinds %v", seen)
	}
}
