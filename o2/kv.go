package o2

// This file is the KVService scenario: a sharded in-memory key-value
// store built on a Runtime, the first o2 scenario beyond the paper's file
// system workloads. Its siblings are kvload.go (the deterministic Zipf
// load generator and closed-loop driver) and kvsweep.go (placement
// policies, sweep axes, and the o2bench kv entry points).
//
// The store models the data plane of a real service: keys hash to shards,
// each shard is one schedulable object (a contiguous slot table), and
// clients issue point gets, full-shard range scans, and point puts. The
// shape deliberately pulls placement policies in opposite directions —
// scans reward keeping a shard on one core, skewed point reads punish
// funneling a hot shard through one core — which is exactly the tension
// the paper's §6.2 read-only replication extension resolves.

import (
	"fmt"

	"repro/internal/workload"
)

// Default KVSpec dimensions.
const (
	defaultKVShards    = 16
	defaultKVSlots     = 128
	defaultKVSlotBytes = 64
)

// getProbeSlots is how many consecutive slots a point get reads: the
// open-addressing probe run that scans collision candidates before
// deserializing the value.
const getProbeSlots = 8

// Per-operation computation costs in cycles: key compares plus value
// deserialization for gets, serialization for puts, and per-byte compare
// cost for scans.
const (
	getCompute     = 160
	putCompute     = 30
	scanPerByteCPU = 0.03
)

// KVSpec sizes a KVService: Shards slot tables of SlotsPerShard slots of
// SlotBytes bytes, addressed by a Keys-entry key space. Zero fields take
// the defaults (16 shards × 128 slots × 64 B, Keys = one key per slot).
// Keys may far exceed the slot capacity — the store is a hash table, so
// extra keys alias slots — which is how the scenario reaches million-key
// scale on kilobyte-scale machines.
type KVSpec struct {
	Shards        int
	SlotsPerShard int
	SlotBytes     int
	// Keys is the size of the key space load generators draw from; keys
	// are the integers [0, Keys).
	Keys int
}

// WithDefaults returns the spec with zero fields filled in.
func (s KVSpec) WithDefaults() KVSpec {
	if s.Shards == 0 {
		s.Shards = defaultKVShards
	}
	if s.SlotsPerShard == 0 {
		s.SlotsPerShard = defaultKVSlots
	}
	if s.SlotBytes == 0 {
		s.SlotBytes = defaultKVSlotBytes
	}
	if s.Keys == 0 {
		s.Keys = s.Shards * s.SlotsPerShard
	}
	return s
}

func (s KVSpec) validate() error {
	if s.Shards <= 0 || s.SlotsPerShard <= 0 || s.SlotBytes <= 0 || s.Keys <= 0 {
		return fmt.Errorf("o2: KVSpec fields must be positive, got %+v", s)
	}
	return nil
}

// ShardBytes returns one shard's slot-table size.
func (s KVSpec) ShardBytes() int { return s.SlotsPerShard * s.SlotBytes }

// TotalBytes returns the store's data footprint across all shards.
func (s KVSpec) TotalBytes() int { return s.Shards * s.ShardBytes() }

// ImageBytes returns the memory-image size the scenario needs: the store
// plus room for locks and thread contexts.
func (s KVSpec) ImageBytes() int { return s.TotalBytes() + (1 << 20) }

// KVService is a sharded key-value store living in simulated memory: one
// schedulable object per shard. Build one with Runtime.NewKVService,
// drive it with Run (the closed-loop load generator in kvload.go) or
// compose the per-operation primitives (Get/Scan/Put) under explicit
// Begin/End handles.
type KVService struct {
	rt     *Runtime
	spec   KVSpec
	shards []*Object
}

// NewKVService allocates the store's shards in the runtime's memory image
// and registers each as a schedulable object. It must run before any
// thread starts.
func (rt *Runtime) NewKVService(spec KVSpec) (*KVService, error) {
	spec = spec.WithDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if err := rt.ensure(spec.ImageBytes()); err != nil {
		return nil, err
	}
	s := &KVService{rt: rt, spec: spec}
	for i := 0; i < spec.Shards; i++ {
		obj, err := rt.NewObject(fmt.Sprintf("kv/shard%03d", i), spec.ShardBytes())
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, obj)
	}
	return s, nil
}

// Spec returns the store's resolved dimensions.
func (s *KVService) Spec() KVSpec { return s.spec }

// Runtime returns the runtime the store was built on.
func (s *KVService) Runtime() *Runtime { return s.rt }

// NumShards returns the shard count.
func (s *KVService) NumShards() int { return len(s.shards) }

// Shard returns shard i's schedulable object, for Begin/End, Placement,
// and clustering hints.
func (s *KVService) Shard(i int) *Object { return s.shards[i] }

// ShardOf returns the shard owning key. Dense key ranges balance across
// shards to within one key.
func (s *KVService) ShardOf(key uint64) int {
	return workload.ShardOf(key, s.spec.Shards)
}

// SlotOf returns key's slot within its shard's table. The slot depends
// only on the key and the slot count — never on the shard count — and the
// key is avalanche-hashed first, so structured key streams (dense ranges,
// multiples of the shard count) spread over the whole table instead of
// collapsing onto slot 0 the way the naive (key/shards)%slots stripe
// does.
func (s *KVService) SlotOf(key uint64) int {
	return workload.SlotOf(key, s.spec.SlotsPerShard)
}

// SlotAddr returns the simulated address of key's slot.
func (s *KVService) SlotAddr(key uint64) Addr {
	shard := s.shards[s.ShardOf(key)]
	return shard.Addr(s.SlotOf(key) * s.spec.SlotBytes)
}

// Get charges a point read of key: an open-addressing probe over a short
// run of collision slots plus key-compare/deserialize computation. The
// caller brackets it (BeginRO for the replication extension to see the
// read-only promise):
//
//	op := t.BeginRO(s.Shard(s.ShardOf(key)))
//	s.Get(t, key)
//	op.End()
func (s *KVService) Get(t *Thread, key uint64) {
	probe := getProbeSlots
	if probe > s.spec.SlotsPerShard {
		probe = s.spec.SlotsPerShard
	}
	slot := s.SlotOf(key)
	// Clamp the probe run to the table's end instead of wrapping: one
	// contiguous load models the prefetch-friendly scan a real probe is.
	if slot+probe > s.spec.SlotsPerShard {
		slot = s.spec.SlotsPerShard - probe
	}
	shard := s.shards[s.ShardOf(key)]
	t.Load(shard.Addr(slot*s.spec.SlotBytes), probe*s.spec.SlotBytes)
	t.Compute(getCompute)
}

// Scan charges a range query over shard i: reading every slot with
// per-byte compare cost, the whole-object read that rewards placement.
func (s *KVService) Scan(t *Thread, shard int) {
	obj := s.shards[shard]
	t.LoadCompute(obj.Addr(0), obj.Size(), scanPerByteCPU)
}

// Put charges a point write of key's slot plus serialization cost.
func (s *KVService) Put(t *Thread, key uint64) {
	t.Store(s.SlotAddr(key), s.spec.SlotBytes)
	t.Compute(putCompute)
}
