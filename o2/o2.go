// Package o2 is the public façade of the repository: the single supported
// entry point to the O2/CoreTime scheduling system reproduced from
// "Reinventing Scheduling for Multicore Systems" (Boyd-Wickizer, Morris,
// Kaashoek; HotOS XII, 2009).
//
// A Runtime is built with functional options and bundles the whole
// substrate — simulation engine, machine model, execution system, and the
// selected scheduler:
//
//	rt, err := o2.New(
//		o2.WithTopology(o2.Tiny8),
//		o2.WithScheduler(o2.CoreTime),
//		o2.WithClustering(true),
//	)
//
// Shared data becomes objects (Runtime.NewObject or a built workload such
// as Runtime.NewDirTree), code becomes green threads (Runtime.Go), and
// every operation on an object is bracketed by a scoped handle that
// subsumes the paper's ct_start/ct_end annotation pair:
//
//	op := t.Begin(obj)   // maybe migrates to the core caching obj
//	defer op.End()       // maybe migrates back; End is idempotent
//
// Because Begin returns a handle whose End runs at most once and must
// close operations innermost-first, unbalanced annotation pairs are
// impossible by construction.
//
// The package also carries the evaluation layer: Experiment compares
// schedulers on the directory-lookup workload in a few lines, Sweep
// executes declarative parameter grids on a bounded worker pool with
// deterministic per-cell seeds and repeat statistics, and the
// Fig4a/Fig4b/Fig2/LatencyTable/MigrationCost/Ablations entry points
// regenerate every figure and table of the paper on that engine
// (cmd/o2bench is a thin wrapper). Everything under internal/ is free to
// evolve behind this façade; new scenarios should build on this package
// alone.
package o2

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Cycles is a duration in simulated clock cycles.
type Cycles = sim.Cycles

// Time is an absolute instant in simulated cycles since the run started.
type Time = sim.Time

// Addr is an address in the simulated machine's physical memory.
type Addr = mem.Addr

// Topology describes a simulated machine: chips, cores, cache hierarchy,
// and interconnect. Use one of the presets (AMD16, Tiny8, Small4, or the
// big-machine NUMA64/NUMA128/NUMA256 family) or derive a variant with its
// With* methods. The zero value is invalid.
type Topology struct {
	cfg topology.Config
}

// Preset machine topologies.
var (
	// AMD16 is the paper's evaluation machine: four quad-core 2 GHz
	// chips on a square interconnect, 16 MB of schedulable on-chip cache.
	AMD16 = Topology{topology.AMD16()}
	// Tiny8 is an 8-core, 4-chip machine with kilobyte-scale caches: the
	// smallest configuration exhibiting the paper's effects, at a
	// fraction of the simulation cost. Preferred for examples and tests.
	Tiny8 = Topology{topology.Tiny8()}
	// Small4 is a 4-core single-chip machine for unit tests.
	Small4 = Topology{topology.Small()}

	// NUMA64 is a 64-core NUMA machine: eight 8-core sockets on a 4×2
	// interconnect grid, per-socket 8 MB shared L3, with memory-controller
	// *and* interconnect bandwidth modeled as saturating resources —
	// sustained overload builds real queueing delay instead of resetting
	// at each window. The smallest member of the scale sweep's NUMA family.
	NUMA64 = Topology{topology.NUMA64()}
	// NUMA128 is a 128-core NUMA machine (sixteen 8-core sockets, 4×4
	// grid): twice NUMA64's cores contending for the same per-socket DRAM
	// and link bandwidth, so bandwidth binds earlier.
	NUMA128 = Topology{topology.NUMA128()}
	// NUMA256 is a 256-core NUMA machine (thirty-two 8-core sockets, 8×4
	// grid) — the scale target of the big-machine experiments. Its 288
	// coherence-directory nodes run on the multi-word sharer bitset, and
	// hop distances reach 10.
	NUMA256 = Topology{topology.NUMA256()}
)

// Name returns the topology's name ("amd16", "tiny8", ...).
func (t Topology) Name() string { return t.cfg.Name }

// NumCores returns the total core count.
func (t Topology) NumCores() int { return t.cfg.NumCores() }

// Chips returns the chip count.
func (t Topology) Chips() int { return t.cfg.Chips }

// ClockHz returns the clock rate used to convert cycles to seconds.
func (t Topology) ClockHz() float64 { return t.cfg.ClockHz }

// TotalCacheBytes returns the aggregate cache capacity an O2 scheduler can
// pack objects into (every L2 plus every L3).
func (t Topology) TotalCacheBytes() int { return t.cfg.TotalOnChipBytes() }

// PerCoreBudgetBytes returns the cache capacity attributable to one core:
// its private L2 plus an equal share of its chip's L3.
func (t Topology) PerCoreBudgetBytes() int { return t.cfg.PerCoreBudgetBytes() }

// WithCoreSpeeds returns a copy of the topology whose per-core cycle costs
// are scaled by the given factors (>1 = slower core), one per core. Used by
// the heterogeneous-cores ablation (paper §6.1).
func (t Topology) WithCoreSpeeds(speeds ...float64) Topology {
	cfg := t.cfg
	cfg.CoreSpeed = append([]float64(nil), speeds...)
	return Topology{cfg}
}

// Scheduler selects the scheduling policy a Runtime uses.
type Scheduler int

const (
	// CoreTime is the paper's O2 scheduler: objects are assigned to
	// caches and threads migrate to the core caching the object they
	// operate on. The default.
	CoreTime Scheduler = iota
	// Baseline is the traditional thread scheduler: threads stay on
	// their home cores and caches fill implicitly (the paper's
	// "without CoreTime" configuration).
	Baseline
	// Affinity is static hash-affinity pinning: every object is assigned
	// a fixed core by hashing its address and threads migrate there for
	// each operation. It serializes object access onto one core like
	// CoreTime but does no monitoring, packing, or rebalancing — the
	// consistent-hashing placement a conventional sharded service
	// deploys, and the middle baseline of the KVService scenario.
	Affinity
)

// String implements fmt.Stringer, matching Result.Scheduler values.
func (s Scheduler) String() string {
	switch s {
	case Baseline:
		return "thread-scheduler"
	case Affinity:
		return "hash-affinity"
	default:
		return "coretime"
	}
}

// Replacement selects what CoreTime does when the working set no longer
// fits the cache budgets (paper §6.2).
type Replacement int

const (
	// FirstFit is the paper's base algorithm: objects that do not fit
	// stay unplaced and are served from DRAM.
	FirstFit Replacement = iota
	// Frequency evicts the least frequently used placed object when a
	// hotter object needs its space.
	Frequency
)

func (r Replacement) internal() core.ReplacementPolicy {
	if r == Frequency {
		return core.ReplaceFrequency
	}
	return core.ReplaceNone
}

// SchedStats counts CoreTime runtime events (operations, migrations,
// placements, monitor activity).
type SchedStats = core.Stats

// TraceEvent is one scheduler decision recorded when tracing is enabled
// (WithTrace).
type TraceEvent = trace.Event

// TraceKind classifies a TraceEvent; compare against the Ev* constants.
// Without this alias the TraceEvent.Kind field had a type callers could
// not name through the façade (o2lint:facade).
type TraceKind = trace.Kind

// Trace event kinds, re-exported so callers can filter TraceEvents
// without importing internal packages.
const (
	EvPlace     TraceKind = trace.EvPlace
	EvUnplace   TraceKind = trace.EvUnplace
	EvMove      TraceKind = trace.EvMove
	EvMigrate   TraceKind = trace.EvMigrate
	EvDisperse  TraceKind = trace.EvDisperse
	EvReplicate TraceKind = trace.EvReplicate
	EvCollapse  TraceKind = trace.EvCollapse
	EvRebalance TraceKind = trace.EvRebalance
)

// Metric is one named reading of the runtime's metrics registry (see
// Runtime.Metrics): a subsystem counter's current count or a gauge's
// current value.
type Metric = telemetry.Metric

// RNG is the deterministic, splittable random number generator simulated
// workloads use; identical seeds give identical runs.
type RNG = stats.RNG

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// Percentile returns the p-th percentile (0–100) of xs.
func Percentile(xs []float64, p float64) float64 { return stats.Percentile(xs, p) }

// RoundRobin returns the home core for each of n threads spread across
// cores round-robin, the placement a conventional scheduler picks for a
// CPU-bound pool.
func RoundRobin(threads, cores int) []int {
	homes := make([]int, threads)
	for i := range homes {
		homes[i] = i % cores
	}
	return homes
}

// DirSpec sizes the directory-lookup workload's tree (see
// Runtime.NewDirTree): Dirs directories of EntriesPerDir 32-byte entries.
type DirSpec = workload.DirSpec

// PathSpec sizes the two-level path-resolution workload's tree (see
// Runtime.NewPathTree).
type PathSpec = workload.PathSpec

// Popularity selects which directories the built-in workload drivers
// target.
type Popularity = workload.Popularity

// Popularity distributions for RunParams.
const (
	// Uniform picks uniformly over all directories (paper Fig. 4a).
	Uniform = workload.Uniform
	// Oscillating alternates between the full set and a fraction of it
	// every OscillatePeriod (paper Fig. 4b).
	Oscillating = workload.Oscillating
	// Hotspot sends HotFraction of lookups to the first HotDirs
	// directories.
	Hotspot = workload.Hotspot
	// UniformThenHotspot behaves as Uniform until PhaseShiftAt, then as
	// Hotspot.
	UniformThenHotspot = workload.UniformThenHotspot
)

// RunParams drive one measurement of a built workload (threads, warmup and
// measurement windows, popularity distribution, seed).
type RunParams = workload.RunParams

// DefaultRunParams returns the parameters used by the paper's figure
// harnesses.
func DefaultRunParams() RunParams { return workload.DefaultRunParams() }

// Result is one measured workload run.
type Result = workload.Result

// PathResult is one measured path-resolution run.
type PathResult = workload.PathResult
