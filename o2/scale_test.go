package o2

import (
	"math"
	"reflect"
	"testing"
)

// TestScaleSweepDivergence pins the big-machine claim the scale sweep
// exists to measure: on the dirlookup service with the working set sized
// per core, CoreTime's speedup over the thread scheduler is decisively
// larger on a 64-core NUMA machine — where the thread scheduler's
// uniform sweeps saturate the per-socket memory controllers — than on
// the paper's 16-core machine, where bandwidth never binds. The sweep is
// deterministic, so the margins can be tight.
func TestScaleSweepDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickScaleConfig()
	cfg.Services = []ScaleService{ScaleDirLookup}
	cfg, sweep := ScaleSweep(cfg)
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	small, err := ScaleSpeedup(res, "amd16", "dirlookup")
	if err != nil {
		t.Fatal(err)
	}
	big, err := ScaleSpeedup(res, "numa64", "dirlookup")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CoreTime speedup: amd16 %.3f, numa64 %.3f", small, big)
	if big <= 1.1 {
		t.Errorf("CoreTime speedup on numa64 = %.3f, want > 1.1 (bandwidth saturation should bind)", big)
	}
	if big < small+0.2 {
		t.Errorf("speedup margin numa64 %.3f vs amd16 %.3f: want the NUMA machine ahead by > 0.2", big, small)
	}
	// The per-core view of the same divergence: the thread scheduler's
	// per-core throughput must collapse going 16 → 64 cores while
	// CoreTime's holds (stays within 30% of its 16-core value).
	basePerCore := func(machine string) float64 {
		c := res.Cell(machine, "dirlookup", KVThreadScheduler.String())
		return c.Mean("per_core_kops")
	}
	ctPerCore := func(machine string) float64 {
		c := res.Cell(machine, "dirlookup", KVCoreTime.String())
		return c.Mean("per_core_kops")
	}
	if got, was := basePerCore("numa64"), basePerCore("amd16"); got > 0.7*was {
		t.Errorf("thread-scheduler per-core throughput %.1f at numa64 vs %.1f at amd16: expected a collapse (< 70%%)", got, was)
	}
	if got, was := ctPerCore("numa64"), ctPerCore("amd16"); got < 0.7*was {
		t.Errorf("CoreTime per-core throughput %.1f at numa64 vs %.1f at amd16: expected it to hold (>= 70%%)", got, was)
	}
}

// TestScaleCellNormalizes checks the runner's dispatch and the per-core
// metric: a cell with a sized KV store runs the KV scenario, a cell
// without one runs dirlookup, and both report per_core_kops equal to
// their primary throughput divided by the machine's core count.
func TestScaleCellNormalizes(t *testing.T) {
	p := DefaultRunParams()
	p.Threads = 8
	p.Warmup = 100_000
	p.Measure = 200_000
	p.Seed = 5

	dir := Cell{
		Machine: Tiny8,
		Tree:    DirSpec{Dirs: 16, EntriesPerDir: 64},
		Params:  p,
		Seed:    5,
	}
	m, err := ScaleCell(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["kres_per_sec"]; !ok {
		t.Fatalf("dirlookup cell reported no kres_per_sec: %v", m)
	}
	if want := m["kres_per_sec"] / 8; math.Abs(m["per_core_kops"]-want) > 1e-9 {
		t.Errorf("per_core_kops = %v, want %v", m["per_core_kops"], want)
	}

	kv := Cell{
		Machine: Tiny8,
		KV:      KVSpec{Shards: 8, SlotsPerShard: 32, SlotBytes: 64},
		Load:    KVLoad{Clients: 8, OpsPerClient: 50},
		Seed:    5,
	}
	m, err = ScaleCell(kv)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["kops_per_sec"]; !ok {
		t.Fatalf("kv cell reported no kops_per_sec: %v", m)
	}
	if want := m["kops_per_sec"] / 8; math.Abs(m["per_core_kops"]-want) > 1e-9 {
		t.Errorf("per_core_kops = %v, want %v", m["per_core_kops"], want)
	}
}

// TestScaleArenaRepeatsMatchFreshRuns extends the arena's
// behavior-transparency pin to the big machines: on a NUMA topology
// whose saturating bandwidth meters accumulate queueing state, repeats
// that reuse the cell's runtime through an arena reset must still
// produce exactly the metrics a fresh, arena-free run at the same seed
// produces — i.e. Reset returns every meter to its built state.
func TestScaleArenaRepeatsMatchFreshRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickScaleConfig()
	cfg.Machines = []Topology{NUMA64}
	cfg.Policies = []KVPolicy{KVCoreTime}
	cfg.Params.Warmup = 300_000
	cfg.Params.Measure = 300_000
	cfg.Load.OpsPerClient = 60
	cfg.Seed = 23

	const repeats = 3
	_, sweep := ScaleSweep(cfg)
	sweep.Repeats = repeats
	sweep.Workers = 1
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	for ci, cell := range res.Cells {
		for r := 0; r < repeats; r++ {
			// A standalone cell has no arena, so this run builds a fresh
			// runtime — the old per-repeat code path.
			fresh := sweep.cells()[ci]
			fresh.Repeat = r
			fresh.Seed = CellSeed(sweep.Seed, fresh.Index, r)
			fresh.Params.Seed = fresh.Seed
			m, err := ScaleCell(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cell.Runs[r], m) {
				t.Errorf("cell %v repeat %d: arena run %v != fresh run %v",
					cell.Labels, r, cell.Runs[r], m)
			}
		}
	}
}
