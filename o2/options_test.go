package o2

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	rt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Scheduler() != CoreTime {
		t.Errorf("default scheduler = %v, want CoreTime", rt.Scheduler())
	}
	if rt.SchedulerName() != "coretime" {
		t.Errorf("scheduler name = %q, want coretime", rt.SchedulerName())
	}
	if got := rt.Topology().Name(); got != "amd16" {
		t.Errorf("default topology = %q, want amd16", got)
	}
	if got := rt.NumCores(); got != 16 {
		t.Errorf("default cores = %d, want 16", got)
	}
	if got := rt.ClockHz(); got != 2e9 {
		t.Errorf("default clock = %v, want 2 GHz", got)
	}
}

func TestOptionOrderLaterWins(t *testing.T) {
	rt := MustNew(
		WithTopology(Tiny8),
		WithScheduler(CoreTime),
		WithScheduler(Baseline),
	)
	if rt.Scheduler() != Baseline {
		t.Errorf("scheduler = %v, want Baseline (later option must win)", rt.Scheduler())
	}
	if rt.SchedulerName() != "thread-scheduler" {
		t.Errorf("scheduler name = %q, want thread-scheduler", rt.SchedulerName())
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		frag string // expected substring of the error
	}{
		{"zero topology", []Option{WithTopology(Topology{})}, "topology"},
		{"bad scheduler", []Option{WithScheduler(Scheduler(42))}, "unknown scheduler"},
		{"bad replacement", []Option{WithReplacement(Replacement(9))}, "unknown replacement"},
		{"negative memory", []Option{WithMemory(-1)}, "must be positive"},
		{"negative miss threshold", []Option{WithMissThreshold(-1)}, "non-negative"},
		{"bad read ratio", []Option{WithReplicationThreshold(8, 1.5)}, "read ratio"},
		{"bad dram fraction", []Option{WithDRAMUnplaceFraction(2)}, "fraction"},
		{"bad trace capacity", []Option{WithTrace(0)}, "trace capacity"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.opts...); err == nil {
				t.Fatalf("New(%s) succeeded, want error", c.name)
			} else if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestOptionErrorsAccumulate(t *testing.T) {
	_, err := New(WithMemory(-1), WithTrace(-3))
	if err == nil {
		t.Fatal("want error")
	}
	for _, frag := range []string{"must be positive", "trace capacity"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("combined error %q missing %q", err, frag)
		}
	}
}

func TestInvalidOptionDoesNotClobberSetting(t *testing.T) {
	// A rejected value must leave the previous (default) setting intact,
	// not half-apply.
	_, err := New(WithReplicationThreshold(8, -0.5))
	if err == nil {
		t.Fatal("want error for negative read ratio")
	}
	// And a valid runtime built afterwards still defaults sanely.
	rt := MustNew(WithTopology(Small4))
	if rt.NumCores() != 4 {
		t.Errorf("Small4 cores = %d, want 4", rt.NumCores())
	}
}

func TestWithCoreSpeedsValidated(t *testing.T) {
	// CoreSpeed length must match the core count; topology validation
	// runs inside New.
	_, err := New(WithTopology(Tiny8.WithCoreSpeeds(1, 2)))
	if err == nil {
		t.Fatal("want error for CoreSpeed length mismatch")
	}
	rt := MustNew(WithTopology(Tiny8.WithCoreSpeeds(1, 2, 1, 2, 1, 2, 1, 2)))
	if rt.NumCores() != 8 {
		t.Errorf("cores = %d, want 8", rt.NumCores())
	}
}

func TestWithMemoryGrowsForTree(t *testing.T) {
	// The lazy machine image must grow to fit a tree larger than the
	// 64 MB default would hold.
	spec := DirSpec{Dirs: 64, EntriesPerDir: 1000}
	rt := MustNew(WithTopology(Tiny8))
	if _, err := rt.NewDirTree(spec); err != nil {
		t.Fatalf("auto-sized tree build failed: %v", err)
	}

	// An explicit WithMemory below the requirement is still grown, never
	// silently truncated.
	rt2 := MustNew(WithTopology(Tiny8), WithMemory(1<<20))
	if _, err := rt2.NewDirTree(spec); err != nil {
		t.Fatalf("tree build with small explicit memory failed: %v", err)
	}
}

func TestExperimentPartialParamsDefaulted(t *testing.T) {
	// A partially-filled Params must have its zero fields defaulted field
	// by field (RunParams.WithDefaults) — the same path the sweep engine
	// uses — not run a zero-length measurement or panic deep inside the
	// workload driver.
	exp := Experiment{
		Machine: Small4,
		Tree:    DirSpec{Dirs: 2, EntriesPerDir: 64},
		Params:  RunParams{Seed: 2, Warmup: 100_000, Measure: 200_000},
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatalf("Run with partial params: %v", err)
	}
	if res.Resolutions == 0 {
		t.Error("partial params produced a zero-length measurement")
	}
	if got, want := len(res.PerThread), DefaultRunParams().Threads; got != want {
		t.Errorf("defaulted thread count = %d, want %d", got, want)
	}

	// Explicitly invalid values still come back as errors.
	exp.Params.Threads = -1
	if _, err := exp.Run(); err == nil || !strings.Contains(err.Error(), "Threads") {
		t.Fatalf("Run with negative Threads: err = %v, want Threads validation error", err)
	}
}

func TestExperimentDefaults(t *testing.T) {
	p := DefaultRunParams()
	p.Threads = 4
	p.Warmup = 200_000
	p.Measure = 400_000
	exp := Experiment{
		Machine: Small4,
		Tree:    DirSpec{Dirs: 2, EntriesPerDir: 64},
		Params:  p,
	}
	base, ct, err := exp.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if base.Scheduler != "thread-scheduler" || ct.Scheduler != "coretime" {
		t.Errorf("Compare schedulers = %q/%q", base.Scheduler, ct.Scheduler)
	}
	if base.Resolutions == 0 || ct.Resolutions == 0 {
		t.Errorf("degenerate comparison: %+v %+v", base, ct)
	}
}
