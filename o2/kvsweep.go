package o2

// Sweep integration for the KVService scenario: shard-placement policies
// as option bundles, the Mix/Skew/Shard/Policy axes, the KVCell runner,
// and the configured sweep behind `o2bench kv`.

import (
	"fmt"
	"io"
	"strconv"
)

// kvMissThreshold lowers CoreTime's expensive-to-fetch bar for the KV
// scenario: point operations touch a handful of lines, far fewer than a
// directory scan, so the default threshold would never see a shard as
// placement-worthy.
const kvMissThreshold = 3

// Replication qualification under the KV scenario: a shard becomes
// replica-eligible after this many read-only operations at this read
// ratio (§6.2).
const (
	kvReplicateMinOps    = 24
	kvReplicateReadRatio = 0.90
)

// KVPolicy is a shard-placement policy of the KVService scenario: a named
// bundle of runtime options selecting the scheduler (the sched.Annotator
// underneath) and its tuning. The four policies span the design space the
// paper argues over:
//
//   - KVThreadScheduler: the traditional baseline. Clients stay on their
//     static round-robin home cores; shards live wherever the hardware
//     caches happen to pull them.
//   - KVHashAffinity: consistent-hashing placement. Each shard is pinned
//     to a fixed core by hashing its address and operations migrate
//     there — what a conventional sharded service deploys, with no
//     monitoring or rebalancing.
//   - KVCoreTime: the paper's object scheduler places hot shards into
//     caches and migrates threads to them.
//   - KVCoreTimeReplicated: CoreTime plus the §6.2 read-only replication
//     extension, giving each chip its own copy of hot read-mostly shards
//     instead of funneling every read through one core.
//   - CoreTimeBW: CoreTime reading the bandwidth-stall counters — the
//     monitor spreads placed objects off sockets whose memory controller
//     or interconnect port is saturated and refuses new placements onto
//     them. (No KV prefix: the bundle is not KV-specific; it rides any
//     Policy axis, notably the scale sweep.)
type KVPolicy int

const (
	KVThreadScheduler KVPolicy = iota
	KVHashAffinity
	KVCoreTime
	KVCoreTimeReplicated
	CoreTimeBW
)

// KVPolicies returns all placement policies in comparison order.
func KVPolicies() []KVPolicy {
	return []KVPolicy{KVThreadScheduler, KVHashAffinity, KVCoreTime, KVCoreTimeReplicated, CoreTimeBW}
}

// String returns the policy's report name, used as its axis label.
func (p KVPolicy) String() string {
	switch p {
	case KVThreadScheduler:
		return "thread-scheduler"
	case KVHashAffinity:
		return "hash-affinity"
	case KVCoreTime:
		return "coretime"
	case KVCoreTimeReplicated:
		return "coretime+repl"
	case CoreTimeBW:
		return "coretime-bw"
	default:
		return fmt.Sprintf("kvpolicy(%d)", int(p))
	}
}

// Scheduler returns the Scheduler value the policy runs under.
func (p KVPolicy) Scheduler() Scheduler {
	switch p {
	case KVHashAffinity:
		return Affinity
	case KVCoreTime, KVCoreTimeReplicated, CoreTimeBW:
		return CoreTime
	default:
		return Baseline
	}
}

// Options returns the runtime options implementing the policy.
func (p KVPolicy) Options() []Option {
	opts := []Option{WithScheduler(p.Scheduler())}
	switch p {
	case KVCoreTime:
		opts = append(opts, WithMissThreshold(kvMissThreshold))
	case KVCoreTimeReplicated:
		opts = append(opts,
			WithMissThreshold(kvMissThreshold),
			WithReplication(true),
			WithReplicationThreshold(kvReplicateMinOps, kvReplicateReadRatio),
		)
	case CoreTimeBW:
		opts = append(opts,
			WithMissThreshold(kvMissThreshold),
			WithBandwidthAware(true),
		)
	}
	return opts
}

// PolicyAxis sweeps over shard-placement policies. Each value installs
// the policy's options and sets Cell.Scheduler, so the one precedence
// rule every standard runner shares — Cell.Scheduler is authoritative,
// applied after Options — holds for policy sweeps too.
func PolicyAxis(policies ...KVPolicy) Axis {
	vals := make([]AxisValue, len(policies))
	for i, p := range policies {
		p := p
		vals[i] = AxisValue{
			Label: p.String(),
			Apply: func(c *Cell) {
				c.Scheduler = p.Scheduler()
				c.Options = append(c.Options, p.Options()...)
			},
		}
	}
	return Axis{Name: "policy", Values: vals}
}

// MixAxis sweeps over operation mixes.
func MixAxis(mixes ...KVMix) Axis {
	vals := make([]AxisValue, len(mixes))
	for i, m := range mixes {
		m := m
		vals[i] = AxisValue{Label: m.Label(), Apply: func(c *Cell) { c.Load.Mix = m }}
	}
	return Axis{Name: "mix", Values: vals}
}

// SkewAxis sweeps the Zipf popularity skew of the key stream.
func SkewAxis(skews ...float64) Axis {
	vals := make([]AxisValue, len(skews))
	for i, s := range skews {
		s := s
		vals[i] = AxisValue{
			Label: strconv.FormatFloat(s, 'g', -1, 64),
			Apply: func(c *Cell) { c.Load.Skew = s },
		}
	}
	return Axis{Name: "skew", Values: vals}
}

// ShardAxis sweeps the store's shard count.
func ShardAxis(counts ...int) Axis {
	vals := make([]AxisValue, len(counts))
	for i, n := range counts {
		n := n
		vals[i] = AxisValue{
			Label: strconv.Itoa(n),
			Apply: func(c *Cell) { c.KV.Shards = n },
		}
	}
	return Axis{Name: "shards", Values: vals}
}

// KVCell is the KV scenario's sweep runner: build the store on a runtime
// from the cell's options (reusing the cell's arena across repeats),
// drive the cell's load once. The engine's derived cell seed reaches both
// the runtime (every internal stream) and the load generator, so results
// are a pure function of the grid position — the worker-count invariance
// the o2bench kv golden test pins.
func KVCell(c Cell) (Metrics, error) {
	svc, err := scenarioForCell(&c, func(rt *Runtime) (*KVService, error) {
		return rt.NewKVService(c.KV)
	})
	if err != nil {
		return nil, err
	}
	load := c.Load
	load.Seed = c.Seed
	res, err := svc.Run(load)
	if err != nil {
		return nil, err
	}
	return Metrics{
		"kops_per_sec":   res.KOpsPerSec,
		"cycles_per_op":  res.CyclesPerOp,
		"cache_hit_rate": res.CacheHitRate,
		"migrations":     float64(res.Migrations),
	}, nil
}

// KVConfig drives the `o2bench kv` sweep: the cross product of Mixes ×
// Skews × (optionally Shards ×) Policies on one machine and store shape.
type KVConfig struct {
	Machine Topology
	// Spec shapes the store; ShardCounts (when non-empty) sweeps its
	// shard count as an extra axis.
	Spec        KVSpec
	ShardCounts []int
	// Load is the per-cell load template; Mixes and Skews sweep its mix
	// and skew.
	Load  KVLoad
	Mixes []KVMix
	Skews []float64
	// Policies are the placement policies to compare (default: all).
	Policies []KVPolicy
	// Repeats measures every cell that many times with distinct derived
	// seeds (default 1); Workers bounds the sweep's worker pool.
	Repeats int
	Workers int
	Seed    uint64
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// DefaultKVConfig returns the full-scale configuration: the AMD16 machine
// serving a million-key store under read-heavy and scan-heavy mixes at
// uniform and classic-Zipf skew, across all four placement policies.
func DefaultKVConfig() KVConfig {
	return KVConfig{
		Machine: AMD16,
		Spec:    KVSpec{Shards: 64, SlotsPerShard: 1024, SlotBytes: 64, Keys: 1 << 20},
		Load:    KVLoad{OpsPerClient: 2000},
		Mixes: []KVMix{
			{Gets: 0.95, Scans: 0.04, Puts: 0.01}, // point-read heavy
			{Gets: 0.55, Scans: 0.40, Puts: 0.05}, // scan heavy
		},
		Skews:    []float64{0, 0.99},
		Policies: KVPolicies(),
	}
}

// QuickKVConfig returns a reduced sweep for smoke tests: the Tiny8
// machine and a kilobyte-scale store, same axes.
func QuickKVConfig() KVConfig {
	cfg := DefaultKVConfig()
	cfg.Machine = Tiny8
	cfg.Spec = KVSpec{Shards: 16, SlotsPerShard: 128, SlotBytes: 64, Keys: 1 << 16}
	cfg.Load.OpsPerClient = 500
	return cfg
}

// KVSweep resolves cfg — zero Machine becomes AMD16, zero Spec fields
// take their defaults, empty axes their standard values — and returns it
// with the Sweep that measures it, so the returned cfg describes exactly
// what the cells run. KVLoad's zero fields resolve per cell against the
// machine's core count.
func KVSweep(cfg KVConfig) (KVConfig, Sweep) {
	if cfg.Machine.cfg.Chips == 0 {
		cfg.Machine = AMD16
	}
	cfg.Spec = cfg.Spec.WithDefaults()
	if len(cfg.Mixes) == 0 {
		cfg.Mixes = []KVMix{DefaultKVMix()}
	}
	if len(cfg.Skews) == 0 {
		cfg.Skews = []float64{0.99}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = KVPolicies()
	}
	axes := []Axis{MixAxis(cfg.Mixes...), SkewAxis(cfg.Skews...)}
	if len(cfg.ShardCounts) > 0 {
		axes = append(axes, ShardAxis(cfg.ShardCounts...))
	}
	axes = append(axes, PolicyAxis(cfg.Policies...))
	return cfg, Sweep{
		Name:     "kv",
		Base:     Cell{Machine: cfg.Machine, KV: cfg.Spec, Load: cfg.Load},
		Axes:     axes,
		Repeats:  cfg.Repeats,
		Workers:  cfg.Workers,
		Seed:     cfg.Seed,
		Runner:   KVCell,
		Progress: cfg.Progress,
	}
}

// WriteKVTable renders a completed KV sweep as an aligned text table, one
// row per cell: the axis labels, throughput (±stddev when the sweep
// carried repeats), per-op latency, on-chip cache-hit rate, and
// migrations.
func WriteKVTable(w io.Writer, title string, res *SweepResult) {
	fmt.Fprintf(w, "# %s\n", title)
	withStats := res.Repeats > 1
	for _, ax := range res.Axes {
		fmt.Fprintf(w, "%-16s ", ax)
	}
	if withStats {
		fmt.Fprintf(w, "%20s %12s %8s %11s\n", "kops/sec", "cycles/op", "hit%", "migrations")
	} else {
		fmt.Fprintf(w, "%12s %12s %8s %11s\n", "kops/sec", "cycles/op", "hit%", "migrations")
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		for _, l := range c.Labels {
			fmt.Fprintf(w, "%-16s ", l)
		}
		if withStats {
			fmt.Fprintf(w, "%13.0f ±%5.0f %12.0f %8.1f %11.0f\n",
				c.Mean("kops_per_sec"), c.Stddev("kops_per_sec"),
				c.Mean("cycles_per_op"), 100*c.Mean("cache_hit_rate"), c.Mean("migrations"))
		} else {
			fmt.Fprintf(w, "%12.0f %12.0f %8.1f %11.0f\n",
				c.Mean("kops_per_sec"),
				c.Mean("cycles_per_op"), 100*c.Mean("cache_hit_rate"), c.Mean("migrations"))
		}
	}
}

// WriteKVCSV emits the same cells as CSV for plotting.
func WriteKVCSV(w io.Writer, res *SweepResult) {
	for _, ax := range res.Axes {
		fmt.Fprintf(w, "%s,", ax)
	}
	fmt.Fprintln(w, "kops_per_sec,kops_stddev,cycles_per_op,cache_hit_rate,migrations")
	for i := range res.Cells {
		c := &res.Cells[i]
		for _, l := range c.Labels {
			fmt.Fprintf(w, "%s,", l)
		}
		fmt.Fprintf(w, "%.1f,%.1f,%.1f,%.4f,%.0f\n",
			c.Mean("kops_per_sec"), c.Stddev("kops_per_sec"),
			c.Mean("cycles_per_op"), c.Mean("cache_hit_rate"), c.Mean("migrations"))
	}
}
