package o2

import (
	"reflect"
	"testing"
)

// TestArenaRepeatsMatchFreshRuns pins the arena's behavior-transparency
// contract: inside a sweep, repeats after the first reuse the cell's
// runtime through an arena reset, and every repeat must produce exactly
// the metrics a fresh, arena-free run at the same seed produces.
func TestArenaRepeatsMatchFreshRuns(t *testing.T) {
	p := DefaultRunParams()
	p.Threads = 4
	p.Warmup = 200_000
	p.Measure = 400_000

	const repeats = 3
	s := Sweep{
		Name:    "arena",
		Base:    Cell{Machine: Tiny8, Params: p},
		Axes:    []Axis{DirCountAxis(128, 4), SchedulerAxis(Baseline, CoreTime)},
		Repeats: repeats,
		Seed:    23,
		Runner:  DirLookupCell,
		Workers: 1,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	for ci, cell := range res.Cells {
		for r := 0; r < repeats; r++ {
			// A standalone cell has no arena, so this run builds a fresh
			// runtime — the old per-repeat code path.
			fresh := s.cells()[ci]
			fresh.Repeat = r
			fresh.Seed = CellSeed(s.Seed, fresh.Index, r)
			fresh.Params.Seed = fresh.Seed
			m, err := DirLookupCell(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cell.Runs[r], m) {
				t.Errorf("cell %v repeat %d: arena run %v != fresh run %v",
					cell.Labels, r, cell.Runs[r], m)
			}
		}
	}
}

// TestArenaServiceRepeatsMatchFreshRuns is the same transparency pin for
// the open-loop web scenario, whose runs spawn and drain a different
// thread population (workers plus a compactor) each repeat.
func TestArenaServiceRepeatsMatchFreshRuns(t *testing.T) {
	load := DefaultServiceLoad()
	load.Requests = 400
	load.RPS = 1_000_000

	const repeats = 3
	s := Sweep{
		Name:    "arena-web",
		Base:    Cell{Machine: Tiny8, Web: WebSpec{DocRoots: 8, FilesPerRoot: 64}, Service: load},
		Axes:    []Axis{CompactionAxis(0, 0.5)},
		Repeats: repeats,
		Seed:    31,
		Runner:  ServiceCell,
		Workers: 1,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	for ci, cell := range res.Cells {
		for r := 0; r < repeats; r++ {
			fresh := s.cells()[ci]
			fresh.Repeat = r
			fresh.Seed = CellSeed(s.Seed, fresh.Index, r)
			fresh.Params.Seed = fresh.Seed
			m, err := ServiceCell(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cell.Runs[r], m) {
				t.Errorf("cell %v repeat %d: arena run %v != fresh run %v",
					cell.Labels, r, cell.Runs[r], m)
			}
		}
	}
}
