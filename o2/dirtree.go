package o2

import (
	"fmt"

	"repro/internal/workload"
)

// DirTree is the paper's directory-lookup workload built on a Runtime: a
// FAT volume holding Spec.Dirs directories of Spec.EntriesPerDir files,
// each directory a schedulable object guarded by its own spin lock.
type DirTree struct {
	rt   *Runtime
	env  *workload.Env
	dirs []*Dir
}

// NewDirTree formats a FAT volume inside the runtime's memory image and
// builds the directory tree. It must run before any thread starts.
func (rt *Runtime) NewDirTree(spec DirSpec) (*DirTree, error) {
	if err := rt.ensure(spec.ImageBytes()); err != nil {
		return nil, err
	}
	env, err := workload.BuildEnvOn(rt.sys, spec)
	if err != nil {
		return nil, err
	}
	tree := &DirTree{rt: rt, env: env}
	for _, h := range env.Dirs {
		tree.dirs = append(tree.dirs, &Dir{tree: tree, h: h, lock: Lock{l: h.Lock}})
	}
	return tree, nil
}

// Len returns the number of directories.
func (tree *DirTree) Len() int { return len(tree.dirs) }

// Dir returns directory i.
func (tree *DirTree) Dir(i int) *Dir { return tree.dirs[i] }

// Spec returns the tree's dimensions.
func (tree *DirTree) Spec() DirSpec { return tree.env.Spec }

// Run measures the built-in directory-lookup driver (the paper's Figure 1
// loop) under the runtime's scheduler: p.Threads threads each repeatedly
// pick a directory by p.Popularity and resolve a random name in it. Caches
// and counters are flushed first, so one tree can be measured repeatedly.
func (tree *DirTree) Run(p RunParams) Result {
	return workload.RunDirLookup(tree.env, tree.rt.ann, p)
}

// Dir is one directory of a DirTree.
type Dir struct {
	tree *DirTree
	h    *workload.DirHandle
	lock Lock
}

// Object returns the directory's schedulable object, for Begin/End,
// Placement, and clustering hints.
func (d *Dir) Object() *Object { return &Object{obj: d.h.Obj} }

// NumEntries returns how many file entries the directory holds.
func (d *Dir) NumEntries() int { return len(d.h.Names) }

// EntryName returns the i-th file name in the directory.
func (d *Dir) EntryName(i int) string { return d.h.Names[i] }

// Lookup resolves name in the directory by linear scan — the paper's
// operation — charging the scan's memory and compute costs to t. The
// caller brackets it with Begin/End:
//
//	op := t.Begin(d.Object())
//	d.Lookup(t, name)
//	op.End()
//
// Looking up a name the directory does not contain panics: the built-in
// drivers only resolve names they created.
func (d *Dir) Lookup(t *Thread, name string) {
	t.Lock(&d.lock)
	b := t.t.Batch() // per-thread reusable batch; empty between Commits
	if _, err := d.tree.env.FS.Lookup(b, d.h.Dir, name); err != nil {
		panic(fmt.Sprintf("o2: lookup %s in %s: %v", name, d.h.Obj.Name, err))
	}
	b.Commit()
	t.Unlock(&d.lock)
}

// PathTree is the hierarchical path-resolution workload built on a
// Runtime: TopDirs directories each holding SubsPerTop subdirectories of
// FilesPerSub files. One resolution scans a top directory and then a
// subdirectory — a nested operation pair, the co-use pattern the
// clustering extension targets.
type PathTree struct {
	rt  *Runtime
	env *workload.PathEnv
}

// NewPathTree formats a FAT volume inside the runtime's memory image and
// builds the two-level tree. It must run before any thread starts.
func (rt *Runtime) NewPathTree(spec PathSpec) (*PathTree, error) {
	if err := rt.ensure(spec.ImageBytes()); err != nil {
		return nil, err
	}
	env, err := workload.BuildPathEnvOn(rt.sys, spec)
	if err != nil {
		return nil, err
	}
	return &PathTree{rt: rt, env: env}, nil
}

// ClusterByTop hints the scheduler to pack each top directory together
// with all its subdirectories (effective under WithClustering).
func (pt *PathTree) ClusterByTop() {
	if pt.rt.ct == nil {
		return
	}
	for _, hint := range pt.env.ClusterHints() {
		pt.rt.ct.PlaceTogether(hint...)
	}
}

// Run measures full-path resolutions per second under the runtime's
// scheduler: each resolution is an outer operation on the top directory
// with a nested operation on the subdirectory.
func (pt *PathTree) Run(p RunParams) PathResult {
	return workload.RunPathLookup(pt.env, pt.rt.ann, p)
}
