package o2

import "fmt"

// Experiment measures the directory-lookup workload on a fresh runtime per
// run, so scheduler configurations compare on identical machines and
// trees. A full Figure-4-style comparison is a few lines:
//
//	exp := o2.Experiment{
//		Machine: o2.AMD16,
//		Tree:    o2.DirSpec{Dirs: 64, EntriesPerDir: 1000},
//		Params:  o2.DefaultRunParams(),
//	}
//	base, ct, err := exp.Compare()
//	fmt.Printf("speedup %.2fx\n", ct.KResPerSec/base.KResPerSec)
type Experiment struct {
	// Machine is the simulated topology; the zero value means AMD16.
	Machine Topology
	// Tree sizes the directory tree.
	Tree DirSpec
	// Params drive the measurement; the zero value means
	// DefaultRunParams().
	Params RunParams
	// Options apply to every runtime the experiment builds, after
	// WithTopology(Machine) and before any per-run options.
	Options []Option
}

// resolve returns the experiment's effective machine and parameters: the
// zero Topology becomes AMD16 and zero RunParams fields are filled from
// DefaultRunParams field by field (RunParams.WithDefaults). The sweep
// engine runs its cells through Run, so Experiment.Compare and a Sweep
// measuring the same cell resolve identically by construction.
func (e Experiment) resolve() (Topology, RunParams, error) {
	machine := e.Machine
	if machine.cfg.Chips == 0 { // zero value: default to the paper's machine
		machine = AMD16
	}
	params := e.Params.WithDefaults()
	if params.Threads <= 0 {
		return Topology{}, RunParams{}, fmt.Errorf("o2: Experiment.Params.Threads must be positive, got %d", params.Threads)
	}
	return machine, params, nil
}

// Run builds a fresh runtime from the experiment's options plus opts
// (later options win), builds the tree, and measures one run.
func (e Experiment) Run(opts ...Option) (Result, error) {
	machine, params, err := e.resolve()
	if err != nil {
		return Result{}, err
	}
	all := append([]Option{WithTopology(machine)}, e.Options...)
	all = append(all, opts...)
	rt, err := New(all...)
	if err != nil {
		return Result{}, err
	}
	tree, err := rt.NewDirTree(e.Tree)
	if err != nil {
		return Result{}, err
	}
	return tree.Run(params), nil
}

// runCell is Run for sweep cells: identical construction and measurement,
// plus arena reuse. The first repeat of a cell builds the runtime and
// tree exactly as Run does, then parks them in the cell's arena with an
// image mark taken after the build; later repeats roll the runtime back
// to that mark and rerun the same tree under the repeat's seed. With a
// nil arena it is exactly Run.
func (e Experiment) runCell(c *Cell) (Result, error) {
	ar := c.arena
	if ar == nil {
		return e.Run(WithScheduler(c.Scheduler), WithSeed(c.Seed))
	}
	machine, params, err := e.resolve()
	if err != nil {
		return Result{}, err
	}
	if ar.reusable() {
		if tree, ok := ar.scenario.(*DirTree); ok {
			ar.reset(c.Seed)
			return tree.Run(params), nil
		}
	}
	all := append([]Option{WithTopology(machine)}, e.Options...)
	all = append(all, WithScheduler(c.Scheduler), WithSeed(c.Seed))
	rt, err := New(all...)
	if err != nil {
		return Result{}, err
	}
	tree, err := rt.NewDirTree(e.Tree)
	if err != nil {
		return Result{}, err
	}
	// Mark after the tree is built and before the first run: everything
	// the workload allocated is below the mark and survives resets, while
	// per-run image allocations (thread context buffers) land above it
	// and are rolled back.
	ar.rt, ar.scenario, ar.mark = rt, tree, rt.mach.Image().Mark()
	return tree.Run(params), nil
}

// Compare measures the experiment under the Baseline thread scheduler and
// under CoreTime (each on a fresh machine) and returns both results.
func (e Experiment) Compare() (base, coretime Result, err error) {
	if base, err = e.Run(WithScheduler(Baseline)); err != nil {
		return
	}
	coretime, err = e.Run(WithScheduler(CoreTime))
	return
}
