package o2

import (
	"math"
	"testing"
)

// webTestSpec is the Tiny8-scale tree the tests resolve against: 24
// vhost directories of 128 entries.
func webTestSpec() WebSpec {
	return WebSpec{DocRoots: 24, FilesPerRoot: 128}
}

// webCompactionInterference is the scenario's headline cell: moderate
// open-loop load (well under saturation, so queueing comes from
// interference rather than raw overload) with a half-duty background
// compactor rewriting the hot directories out from under the foreground
// reads.
func webCompactionInterference() ServiceLoad {
	return ServiceLoad{
		Requests:        1500,
		RPS:             1_000_000,
		Skew:            0.99,
		CompactionShare: 0.5,
		Seed:            42,
	}
}

func runWebPolicy(t *testing.T, p KVPolicy, spec WebSpec, load ServiceLoad) ServiceResult {
	t.Helper()
	rt, err := New(append([]Option{WithTopology(Tiny8), WithSeed(42)}, p.Options()...)...)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := rt.NewWebService(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(load)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWebCoreTimeBeatsBaselineP99OnCompactionCell asserts the scenario's
// acceptance criterion: on the compaction-interference cell, CoreTime
// improves p99 request latency over the traditional thread scheduler.
// Under the baseline every compaction pass invalidates each core's cached
// copy of the rewritten directory, so foreground lookups repeatedly
// re-fetch whole directories through the interconnect; under CoreTime the
// directory lives in one place and both readers and the compactor migrate
// to it. The simulation is deterministic, so the measured margin (~2×) is
// stable; the 1.1× floor keeps the assertion meaningful without pinning
// exact bucket values.
func TestWebCoreTimeBeatsBaselineP99OnCompactionCell(t *testing.T) {
	spec, load := webTestSpec(), webCompactionInterference()
	base := runWebPolicy(t, KVThreadScheduler, spec, load)
	ct := runWebPolicy(t, KVCoreTime, spec, load)

	if ct.P99*1.10 > base.P99 {
		t.Errorf("coretime p99 %.0f cycles does not beat thread scheduler p99 %.0f cycles by 10%%",
			ct.P99, base.P99)
	}
	// The mean moves with the tail: interference hurts every request that
	// touches a recently compacted directory, not just the unlucky 1%.
	if ct.MeanLatency*1.10 > base.MeanLatency {
		t.Errorf("coretime mean %.0f does not beat thread scheduler mean %.0f by 10%%",
			ct.MeanLatency, base.MeanLatency)
	}
	// The mechanism, not just the outcome.
	if base.Migrations != 0 {
		t.Errorf("thread scheduler migrated %d times; baseline must never migrate", base.Migrations)
	}
	if ct.Migrations == 0 {
		t.Error("coretime recorded no migrations; the policy is not engaging")
	}
	// Neither side was overloaded: the comparison is about interference,
	// so both must have served everything offered.
	if base.Dropped != 0 || ct.Dropped != 0 {
		t.Errorf("unexpected drops (base %d, coretime %d); the cell must stay under saturation",
			base.Dropped, ct.Dropped)
	}
}

// TestWebCompactionHurtsBaselineTail pins the interference premise itself:
// with everything else equal, switching the compactor on must make the
// thread scheduler's p99 clearly worse. If this stops holding, the
// headline comparison above is measuring something else.
func TestWebCompactionHurtsBaselineTail(t *testing.T) {
	spec, load := webTestSpec(), webCompactionInterference()
	quiet := load
	quiet.CompactionShare = 0
	with := runWebPolicy(t, KVThreadScheduler, spec, load)
	without := runWebPolicy(t, KVThreadScheduler, spec, quiet)
	if with.P99 < without.P99*1.2 {
		t.Errorf("compaction moved baseline p99 only from %.0f to %.0f; interference premise gone",
			without.P99, with.P99)
	}
}

// TestWebRunDeterminism: identical seeds give identical results — the
// whole ServiceResult, quantiles included — and different seeds actually
// vary the run.
func TestWebRunDeterminism(t *testing.T) {
	load := webCompactionInterference()
	load.Requests = 400
	run := func(seed uint64) ServiceResult {
		rt := MustNew(WithTopology(Tiny8), WithSeed(seed))
		svc, err := rt.NewWebService(webTestSpec())
		if err != nil {
			t.Fatal(err)
		}
		l := load
		l.Seed = seed
		res, err := svc.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(7), run(7), run(8)
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	if a == c {
		t.Error("different seeds produced identical results; seed is not reaching the run")
	}
}

// TestWebOverloadSemantics drives the service far past saturation: the
// bounded queue must drop the excess, the achieved throughput must fall
// visibly short of offered, and accounting must balance exactly.
func TestWebOverloadSemantics(t *testing.T) {
	load := ServiceLoad{
		Requests: 1200,
		RPS:      8_000_000, // far beyond Tiny8's service capacity
		QueueCap: 16,
		Seed:     42,
	}
	res := runWebPolicy(t, KVThreadScheduler, webTestSpec(), load)
	if res.Requests != uint64(load.Requests) {
		t.Fatalf("offered %d of %d requests", res.Requests, load.Requests)
	}
	if res.Completed+res.Dropped != res.Requests {
		t.Errorf("accounting leak: %d completed + %d dropped != %d offered",
			res.Completed, res.Dropped, res.Requests)
	}
	if res.Dropped == 0 {
		t.Error("8M rps against a 16-deep queue dropped nothing; overload semantics broken")
	}
	if res.AchievedKRPS > 0.9*res.OfferedKRPS {
		t.Errorf("achieved %.0f krps not visibly below offered %.0f under overload",
			res.AchievedKRPS, res.OfferedKRPS)
	}
	// Bounded queue ⇒ bounded latency: the worst request waited at most
	// roughly the whole queue ahead of it, not the whole run.
	if res.MaxLatency >= float64(res.Elapsed) {
		t.Errorf("max latency %.0f reached the whole run length %d; queue bound not effective",
			res.MaxLatency, res.Elapsed)
	}
}

// TestWebTimeLimitInFlightAccounting truncates a run mid-flight and pins
// the three-way accounting invariant: every offered request is completed,
// dropped, or in flight — no bucket leaks — and the latency distribution
// covers completed requests only.
func TestWebTimeLimitInFlightAccounting(t *testing.T) {
	load := ServiceLoad{
		Requests:  2000,
		RPS:       1_000_000,
		Skew:      0.99,
		Seed:      42,
		TimeLimit: 1_500_000, // well before the 2000-request schedule drains
	}
	res := runWebPolicy(t, KVThreadScheduler, webTestSpec(), load)
	if res.Completed+res.Dropped+res.InFlight != res.Requests {
		t.Errorf("accounting leak: %d completed + %d dropped + %d in flight != %d offered",
			res.Completed, res.Dropped, res.InFlight, res.Requests)
	}
	if res.InFlight == 0 {
		t.Error("truncated run reported no in-flight requests; the limit did not bite")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed before the limit")
	}
	// Percentiles exclude in-flight requests: every reported latency is a
	// completed request's, so the maximum cannot exceed the truncated
	// run's length.
	if res.MaxLatency > float64(load.TimeLimit) {
		t.Errorf("max latency %.0f exceeds the %d-cycle truncated run; in-flight requests leaked into the distribution",
			res.MaxLatency, load.TimeLimit)
	}
	// An untruncated run of the same load must report zero in flight.
	full := load
	full.TimeLimit = 0
	fres := runWebPolicy(t, KVThreadScheduler, webTestSpec(), full)
	if fres.InFlight != 0 {
		t.Errorf("untruncated run reported %d in flight", fres.InFlight)
	}
	if fres.Completed+fres.Dropped != fres.Requests {
		t.Errorf("untruncated accounting leak: %d + %d != %d",
			fres.Completed, fres.Dropped, fres.Requests)
	}
}

// TestWebDirectHandoff runs the parked-worker drive end to end: an
// underloaded run must complete everything it offers, deterministically,
// with the same accounting invariant as the polled drive.
func TestWebDirectHandoff(t *testing.T) {
	load := ServiceLoad{
		Requests:      800,
		RPS:           1_000_000,
		Skew:          0.99,
		Seed:          42,
		DirectHandoff: true,
	}
	a := runWebPolicy(t, KVThreadScheduler, webTestSpec(), load)
	b := runWebPolicy(t, KVThreadScheduler, webTestSpec(), load)
	if a != b {
		t.Errorf("direct-handoff run not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Completed != uint64(load.Requests) || a.Dropped != 0 || a.InFlight != 0 {
		t.Errorf("underloaded direct-handoff run should complete everything: %+v", a)
	}
	if a.P50 <= 0 || a.MaxLatency < a.P999 {
		t.Errorf("degenerate latency distribution: %+v", a)
	}
	// The two drives share the schedule and the queue: offered counts and
	// the served total must agree even though worker interleaving (and so
	// per-request placement) differs.
	polled := load
	polled.DirectHandoff = false
	p := runWebPolicy(t, KVThreadScheduler, webTestSpec(), polled)
	if p.Completed != a.Completed || p.Requests != a.Requests {
		t.Errorf("drive modes disagree on accounting: handoff %+v vs polled %+v", a, p)
	}
}

// TestWebDirectHandoffUnderOverloadAndLimit combines everything: the
// parked-worker drive past saturation with a time limit still satisfies
// the three-way invariant.
func TestWebDirectHandoffUnderOverloadAndLimit(t *testing.T) {
	load := ServiceLoad{
		Requests:      1200,
		RPS:           8_000_000,
		QueueCap:      16,
		Seed:          42,
		DirectHandoff: true,
		TimeLimit:     400_000,
	}
	res := runWebPolicy(t, KVThreadScheduler, webTestSpec(), load)
	if res.Completed+res.Dropped+res.InFlight != res.Requests {
		t.Errorf("accounting leak: %d + %d + %d != %d",
			res.Completed, res.Dropped, res.InFlight, res.Requests)
	}
	if res.Dropped == 0 {
		t.Error("overloaded run dropped nothing")
	}
}

// TestWebLatencyQuantileShape checks internal consistency of the reported
// distribution on an ordinary cell.
func TestWebLatencyQuantileShape(t *testing.T) {
	load := webCompactionInterference()
	load.Requests = 600
	res := runWebPolicy(t, KVCoreTime, webTestSpec(), load)
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	qs := []float64{res.P50, res.P95, res.P99, res.P999, res.MaxLatency}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
	if res.P50 <= 0 || math.IsInf(res.P999, 0) {
		t.Errorf("quantiles out of range: p50=%v p999=%v", res.P50, res.P999)
	}
	if res.MeanLatency < res.P50/8 || res.MeanLatency > res.MaxLatency {
		t.Errorf("mean %.0f implausible against p50 %.0f / max %.0f",
			res.MeanLatency, res.P50, res.MaxLatency)
	}
}

// TestWebUniformArrivals runs the deterministic-uniform arrival process
// end to end: an underloaded uniform stream must complete everything it
// offers. (Exact spacing and seed independence of the stream itself are
// pinned at the workload layer by TestArrivalTimesUniform.)
func TestWebUniformArrivals(t *testing.T) {
	load := ServiceLoad{
		Requests: 300,
		RPS:      500_000,
		Arrivals: UniformArrivals,
		Seed:     42,
	}
	res := runWebPolicy(t, KVThreadScheduler, webTestSpec(), load)
	if res.Completed != uint64(load.Requests) || res.Dropped != 0 {
		t.Errorf("uniform underload run should complete everything: %+v", res)
	}
}

// TestWebServiceDefaultsAndValidation covers the spec and load defaulting
// and rejection paths.
func TestWebServiceDefaultsAndValidation(t *testing.T) {
	d := WebSpec{}.WithDefaults()
	if d.DocRoots != 64 || d.FilesPerRoot != 512 {
		t.Errorf("unexpected spec defaults: %+v", d)
	}
	l := ServiceLoad{CompactionShare: 0.3}.WithDefaults(8)
	if l.Workers != 8 || l.Requests != 4000 || l.QueueCap != 32 || l.CompactionWorkers != 1 {
		t.Errorf("unexpected load defaults: %+v", l)
	}
	if noComp := (ServiceLoad{CompactionWorkers: 3}).WithDefaults(8); noComp.CompactionWorkers != 0 {
		t.Errorf("CompactionWorkers without a share should resolve to 0, got %d", noComp.CompactionWorkers)
	}

	rt := MustNew(WithTopology(Small4))
	if _, err := rt.NewWebService(WebSpec{DocRoots: -1}); err == nil {
		t.Error("negative docroot count accepted")
	}
	svc, err := rt.NewWebService(WebSpec{DocRoots: 4, FilesPerRoot: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []ServiceLoad{
		{},                                       // no RPS
		{RPS: -1},                                // negative rate
		{RPS: math.NaN()},                        // NaN rate
		{RPS: math.Inf(1)},                       // infinite rate
		{RPS: 1000, CompactionShare: 1},          // share must stay below 1
		{RPS: 1000, CompactionShare: -0.5},       // negative share
		{RPS: 1000, Workers: -2},                 // negative workers
		{RPS: 1000, QueueCap: -4},                // negative queue bound
		{RPS: 1000, Requests: -7},                // negative request count
		{RPS: 1000, CompactionWorkers: -1},       // negative compactors
		{RPS: 1000, Skew: -0.5},                  // negative skew
		{RPS: 1000, Arrivals: ArrivalProcess(9)}, // unknown arrival process
	} {
		if _, err := svc.Run(bad); err == nil {
			t.Errorf("invalid load accepted: %+v", bad)
		}
	}
}

// TestServiceCellHonorsCellScheduler: Cell.Scheduler is authoritative for
// ServiceCell exactly as for DirLookupCell and KVCell, and PolicyAxis
// keeps it in sync with the policy it applies.
func TestServiceCellHonorsCellScheduler(t *testing.T) {
	base := Cell{
		Machine: Tiny8,
		Web:     WebSpec{DocRoots: 6, FilesPerRoot: 64},
		Service: ServiceLoad{Requests: 120, RPS: 400_000},
	}

	bare := base
	bare.Scheduler = Baseline
	m, err := ServiceCell(bare)
	if err != nil {
		t.Fatal(err)
	}
	if m["migrations"] != 0 {
		t.Errorf("Scheduler=Baseline cell migrated %v times; ServiceCell is ignoring Cell.Scheduler", m["migrations"])
	}

	viaAxis := base
	viaAxis.Scheduler = Baseline
	PolicyAxis(KVCoreTime).Values[0].Apply(&viaAxis)
	if viaAxis.Scheduler != CoreTime {
		t.Fatalf("PolicyAxis left Cell.Scheduler = %v, want CoreTime", viaAxis.Scheduler)
	}
	m, err = ServiceCell(viaAxis)
	if err != nil {
		t.Fatal(err)
	}
	if m["migrations"] == 0 {
		t.Error("PolicyAxis(KVCoreTime) cell never migrated; the policy is not in effect")
	}
}

// TestWebSweepWorkerInvariance runs a small rate×policy grid at one and
// many workers: the SweepResults must be deeply identical — the service
// instance of the engine's determinism guarantee, now covering latency
// quantiles.
func TestWebSweepWorkerInvariance(t *testing.T) {
	cfg := QuickWebConfig()
	cfg.Spec = WebSpec{DocRoots: 8, FilesPerRoot: 64}
	cfg.Load.Requests = 150
	cfg.Rates = []float64{400_000, 1_600_000}
	cfg.CompactionShares = []float64{0.5}
	cfg.Policies = []KVPolicy{KVThreadScheduler, KVCoreTime}
	cfg.Seed = 5

	run := func(workers int) *SweepResult {
		_, sweep := WebSweep(cfg)
		res, err := sweep.WithWorkers(workers).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, many := run(1), run(8)
	if len(one.Cells) != len(many.Cells) {
		t.Fatalf("cell count differs: %d vs %d", len(one.Cells), len(many.Cells))
	}
	for i := range one.Cells {
		a, b := one.Cells[i], many.Cells[i]
		for _, m := range []string{"offered_krps", "achieved_krps", "drop_rate",
			"p50_cycles", "p95_cycles", "p99_cycles", "p999_cycles", "mean_cycles", "migrations"} {
			if a.Stats[m] != b.Stats[m] {
				t.Errorf("cell %d %v metric %s differs across worker counts: %+v vs %+v",
					i, a.Labels, m, a.Stats[m], b.Stats[m])
			}
		}
	}
}

// TestWebSweepAxisLabels pins the axis labels service cells are addressed
// by in results and JSON.
func TestWebSweepAxisLabels(t *testing.T) {
	_, sweep := WebSweep(WebConfig{Rates: []float64{250_000}, CompactionShares: []float64{0, 0.25}})
	names := []string{sweep.Axes[0].Name, sweep.Axes[1].Name, sweep.Axes[2].Name}
	if names[0] != "rps" || names[1] != "compaction" || names[2] != "policy" {
		t.Errorf("axis names drifted: %v", names)
	}
	if l := sweep.Axes[0].Values[0].Label; l != "250k" {
		t.Errorf("rate label = %q, want 250k", l)
	}
	if l := sweep.Axes[1].Values[1].Label; l != "0.25" {
		t.Errorf("compaction label = %q, want 0.25", l)
	}
}
