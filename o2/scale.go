package o2

// The scale sweep behind `o2bench scale`: the big-machine experiment of
// the NUMA round. It asks the question the paper's Figure 4 cannot — what
// happens to the with/without-CoreTime comparison when the machine grows
// from 16 cores to 64, 128, and 256 — by sweeping machine × service ×
// policy with every service's working set sized *per core*. Holding
// per-core pressure constant means a bigger machine offers proportionally
// more total traffic to its memory controllers and interconnect links,
// which on the NUMA presets are saturating resources (see
// topology.NUMALatencies): once aggregate misses outrun a port's service
// rate, queueing delay accumulates instead of resetting every accounting
// window. The thread scheduler, whose every core walks the whole working
// set, crosses that cliff first; CoreTime keeps objects cache-resident
// and largely stays below it. The per-core throughput column makes the
// divergence legible at a glance: flat for CoreTime, collapsing for the
// thread scheduler.

import (
	"fmt"
	"io"
)

// ScaleService selects which workload a scale-sweep cell drives. Each
// service sizes its working set per core, so moving along the machine
// axis holds per-core cache pressure constant while total bandwidth
// demand grows with the core count.
type ScaleService int

const (
	// ScaleDirLookup is the paper's directory-lookup workload with the
	// tree sized per core (ScaleConfig.DirsPerCore) and one worker
	// thread per core — Figure 4's experiment stretched along the
	// machine axis.
	ScaleDirLookup ScaleService = iota
	// ScaleKV is the KVService scenario with the shard count sized per
	// core and the load's default two clients per core.
	ScaleKV
)

// ScaleServices returns both services in comparison order.
func ScaleServices() []ScaleService { return []ScaleService{ScaleDirLookup, ScaleKV} }

// String returns the service's axis label.
func (s ScaleService) String() string {
	if s == ScaleKV {
		return "kv"
	}
	return "dirlookup"
}

// ScaleConfig drives the `o2bench scale` sweep: the cross product of
// Machines × Services × Policies, with each service's working set sized
// per core of the cell's machine.
type ScaleConfig struct {
	// Machines is the core-count axis, smallest first (default AMD16,
	// NUMA64, NUMA128, NUMA256).
	Machines []Topology
	// Services are the workloads driven at every machine size (default
	// both).
	Services []ScaleService
	// Policies are the placement policies compared (default thread
	// scheduler vs CoreTime vs bandwidth-aware CoreTime — the paper's
	// with/without comparison plus the saturation-signal variant).
	Policies []KVPolicy

	// DirsPerCore and EntriesPerDir size the dirlookup service's tree:
	// DirsPerCore × cores directories of EntriesPerDir 32-byte entries.
	// The default 14 dirs/core puts AMD16 at 224 directories — the
	// crossover region of Figure 4 — and scales that pressure up with
	// the machine.
	DirsPerCore   int
	EntriesPerDir int
	// Params is the dirlookup measurement template; its Threads field is
	// overwritten per cell with the machine's core count.
	Params RunParams

	// ShardsPerCore and SlotsPerShard size the KV service's store:
	// ShardsPerCore × cores shards of SlotsPerShard 64-byte slots, with
	// one key per slot.
	ShardsPerCore int
	SlotsPerShard int
	// Load is the per-cell KV load template; zero Clients resolves to
	// two per core of the cell's machine.
	Load KVLoad

	// Repeats measures every cell that many times with distinct derived
	// seeds (default 1); Workers bounds the sweep's worker pool.
	Repeats int
	Workers int
	Seed    uint64
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// DefaultScaleConfig returns the full-scale configuration: 16 to 256
// cores, both services, thread scheduler vs CoreTime vs bandwidth-aware
// CoreTime.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Machines:      []Topology{AMD16, NUMA64, NUMA128, NUMA256},
		Services:      ScaleServices(),
		Policies:      []KVPolicy{KVThreadScheduler, KVCoreTime, CoreTimeBW},
		DirsPerCore:   14,
		EntriesPerDir: 1000,
		Params:        DefaultRunParams(),
		ShardsPerCore: 4,
		SlotsPerShard: 1024,
		Load: KVLoad{
			OpsPerClient: 2000,
			Mix:          KVMix{Gets: 0.55, Scans: 0.40, Puts: 0.05},
			Skew:         0.99,
		},
	}
}

// QuickScaleConfig returns a reduced sweep for smoke tests and CI: the
// 16- and 64-core machines, smaller per-core working sets, shorter
// windows. The divergence shape holds; absolute numbers sit below the
// converged full run.
func QuickScaleConfig() ScaleConfig {
	cfg := DefaultScaleConfig()
	cfg.Machines = []Topology{AMD16, NUMA64}
	cfg.DirsPerCore = 8
	cfg.EntriesPerDir = 250
	cfg.Params.Warmup = 1_500_000
	cfg.Params.Measure = 750_000
	cfg.SlotsPerShard = 128
	cfg.Load.OpsPerClient = 300
	return cfg
}

// scaleServiceAxis builds the service axis. Its Apply closures read
// Cell.Machine to size each service's working set per core, which is
// sound because ScaleSweep lists the machine axis first and a sweep
// applies axes in listed order.
func scaleServiceAxis(cfg ScaleConfig) Axis {
	vals := make([]AxisValue, len(cfg.Services))
	for i, s := range cfg.Services {
		s := s
		vals[i] = AxisValue{Label: s.String(), Apply: func(c *Cell) {
			cores := c.Machine.NumCores()
			switch s {
			case ScaleKV:
				c.KV = KVSpec{
					Shards:        cfg.ShardsPerCore * cores,
					SlotsPerShard: cfg.SlotsPerShard,
					SlotBytes:     64,
				}
			default:
				c.Tree = DirSpec{
					Dirs:          cfg.DirsPerCore * cores,
					EntriesPerDir: cfg.EntriesPerDir,
				}
				c.Params.Threads = cores
			}
		}}
	}
	return Axis{Name: "service", Values: vals}
}

// ScaleCell is the scale sweep's runner. It dispatches on which service
// the cell's axes configured — a sized KV store selects the KVService
// scenario, otherwise the directory-lookup workload — and reports the
// cell's metrics plus per_core_kops, throughput normalized by the
// machine's core count, the column the scaling comparison reads.
func ScaleCell(c Cell) (Metrics, error) {
	machine := c.Machine
	if machine.cfg.Chips == 0 { // zero value: default to the paper's machine
		machine = AMD16
	}
	cores := float64(machine.NumCores())
	if c.KV.Shards != 0 {
		m, err := KVCell(c)
		if err != nil {
			return nil, err
		}
		m["per_core_kops"] = m["kops_per_sec"] / cores
		return m, nil
	}
	m, err := DirLookupCell(c)
	if err != nil {
		return nil, err
	}
	m["per_core_kops"] = m["kres_per_sec"] / cores
	return m, nil
}

// ScaleSweep resolves cfg — empty axes take their standard values, zero
// sizing fields their defaults — and returns it with the Sweep that
// measures it, so the returned cfg describes exactly what the cells run.
func ScaleSweep(cfg ScaleConfig) (ScaleConfig, Sweep) {
	if len(cfg.Machines) == 0 {
		cfg.Machines = []Topology{AMD16, NUMA64, NUMA128, NUMA256}
	}
	if len(cfg.Services) == 0 {
		cfg.Services = ScaleServices()
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []KVPolicy{KVThreadScheduler, KVCoreTime, CoreTimeBW}
	}
	if cfg.DirsPerCore == 0 {
		cfg.DirsPerCore = 14
	}
	if cfg.EntriesPerDir == 0 {
		cfg.EntriesPerDir = 1000
	}
	if cfg.ShardsPerCore == 0 {
		cfg.ShardsPerCore = 4
	}
	if cfg.SlotsPerShard == 0 {
		cfg.SlotsPerShard = 1024
	}
	cfg.Params = cfg.Params.WithDefaults()
	return cfg, Sweep{
		Name: "scale",
		Base: Cell{Params: cfg.Params, Load: cfg.Load},
		Axes: []Axis{
			// Machine first: the service axis sizes working sets from it.
			TopologyAxis(cfg.Machines...),
			scaleServiceAxis(cfg),
			PolicyAxis(cfg.Policies...),
		},
		Repeats:  cfg.Repeats,
		Workers:  cfg.Workers,
		Seed:     cfg.Seed,
		Runner:   ScaleCell,
		Progress: cfg.Progress,
	}
}

// scalePrimary returns the name of a cell's throughput metric: KV cells
// report kops_per_sec, dirlookup cells kres_per_sec. Both are thousands
// of operations per second of simulated time, so rows compare directly.
func scalePrimary(c *CellResult) string {
	if _, ok := c.Stats["kops_per_sec"]; ok {
		return "kops_per_sec"
	}
	return "kres_per_sec"
}

// ScaleSpeedup returns the CoreTime-over-thread-scheduler throughput
// ratio at one machine × service point of a completed scale sweep. The
// big-machine claim is this ratio growing with the machine: bandwidth
// saturation punishes the thread scheduler at 64+ cores by a margin that
// does not exist at 16.
func ScaleSpeedup(res *SweepResult, machine, service string) (float64, error) {
	base := res.Cell(machine, service, KVThreadScheduler.String())
	ct := res.Cell(machine, service, KVCoreTime.String())
	if base == nil || ct == nil {
		return 0, fmt.Errorf("o2: scale sweep has no %s/%s policy pair", machine, service)
	}
	p := scalePrimary(base)
	b := base.Mean(p)
	if b == 0 {
		return 0, fmt.Errorf("o2: scale sweep %s/%s thread-scheduler cell measured zero throughput", machine, service)
	}
	return ct.Mean(p) / b, nil
}

// WriteScaleTable renders a completed scale sweep as an aligned text
// table, one row per cell: the axis labels, total throughput (±stddev
// when the sweep carried repeats), per-core throughput, and migrations.
func WriteScaleTable(w io.Writer, title string, res *SweepResult) {
	fmt.Fprintf(w, "# %s\n", title)
	withStats := res.Repeats > 1
	for _, ax := range res.Axes {
		fmt.Fprintf(w, "%-12s ", ax)
	}
	if withStats {
		fmt.Fprintf(w, "%20s %14s %11s\n", "kops/sec", "kops/sec/core", "migrations")
	} else {
		fmt.Fprintf(w, "%12s %14s %11s\n", "kops/sec", "kops/sec/core", "migrations")
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		for _, l := range c.Labels {
			fmt.Fprintf(w, "%-12s ", l)
		}
		p := scalePrimary(c)
		if withStats {
			fmt.Fprintf(w, "%13.0f ±%5.0f %14.1f %11.0f\n",
				c.Mean(p), c.Stddev(p), c.Mean("per_core_kops"), c.Mean("migrations"))
		} else {
			fmt.Fprintf(w, "%12.0f %14.1f %11.0f\n",
				c.Mean(p), c.Mean("per_core_kops"), c.Mean("migrations"))
		}
	}
}

// WriteScaleCSV emits the same cells as CSV for plotting.
func WriteScaleCSV(w io.Writer, res *SweepResult) {
	for _, ax := range res.Axes {
		fmt.Fprintf(w, "%s,", ax)
	}
	fmt.Fprintln(w, "kops_per_sec,kops_stddev,per_core_kops,migrations")
	for i := range res.Cells {
		c := &res.Cells[i]
		for _, l := range c.Labels {
			fmt.Fprintf(w, "%s,", l)
		}
		p := scalePrimary(c)
		fmt.Fprintf(w, "%.1f,%.1f,%.2f,%.0f\n",
			c.Mean(p), c.Stddev(p), c.Mean("per_core_kops"), c.Mean("migrations"))
	}
}
