package o2

import (
	"fmt"
	"io"
)

// AblationRow is one configuration of an ablation experiment.
type AblationRow struct {
	Config string
	KOps   float64 // thousands of operations per second
	Note   string
}

// WriteAblation formats ablation rows.
func WriteAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-32s %12s  %s\n", "config", "kops/sec", "notes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %12.0f  %s\n", r.Config, r.KOps, r.Note)
	}
}

// Ablation names one ablation experiment for CLIs and test drivers.
type Ablation struct {
	Name  string
	Title string
	Run   func() ([]AblationRow, error)
}

// Ablations returns the full ablation registry in report order.
func Ablations() []Ablation {
	return []Ablation{
		{"clustering", "A1: object clustering (§6.2)", AblationClustering},
		{"replication", "A2: read-only replication (§6.2)", AblationReplication},
		{"replacement", "A3: over-capacity replacement policy (§6.2)", AblationReplacement},
		{"migcost", "A4: migration-cost sensitivity (§6.1)", AblationMigrationCost},
		{"hetero", "A5: heterogeneous cores (§6.1)", AblationHeterogeneous},
		{"paths", "A6: clustering on hierarchical path resolution (§6.2)", AblationPathClustering},
		{"single", "A7: single-threaded application using the whole chip's caches (§1)", AblationSingleThread},
	}
}

// configSweep runs one sweep cell per named configuration — in parallel,
// each on its own fresh runtime — and returns the measured values in
// configuration order. It is the thin bridge every ablation uses to get
// the Sweep engine's worker pool.
func configSweep(name string, labels []string, run func(i int) (float64, error)) ([]float64, error) {
	out := make([]float64, len(labels))
	vals := make([]AxisValue, len(labels))
	for i, l := range labels {
		vals[i] = AxisValue{Label: l}
	}
	_, err := Sweep{
		Name: name,
		Axes: []Axis{{Name: "config", Values: vals}},
		Runner: func(c Cell) (Metrics, error) {
			v, err := run(c.Coords[0])
			if err != nil {
				return nil, err
			}
			out[c.Coords[0]] = v // distinct index per cell, no race
			return Metrics{"kops": v}, nil
		},
	}.Run()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// objBench is a small non-filesystem environment for ablations that need
// raw objects: a runtime with count objects of size bytes each.
type objBench struct {
	rt   *Runtime
	objs []*Object
}

func newObjBench(topo Topology, opts []Option, count, size int) (*objBench, error) {
	all := append([]Option{WithTopology(topo), WithMemory(size*count*2 + (8 << 20))}, opts...)
	rt, err := New(all...)
	if err != nil {
		return nil, err
	}
	e := &objBench{rt: rt}
	for i := 0; i < count; i++ {
		obj, err := rt.NewObject(fmt.Sprintf("obj%03d", i), size)
		if err != nil {
			return nil, err
		}
		e.objs = append(e.objs, obj)
	}
	return e, nil
}

// runObjOps drives threads that repeatedly run `op` and returns operations
// per simulated second (in thousands).
func (e *objBench) runObjOps(threads int, warmup, measure Cycles, seed uint64,
	op func(t *Thread, rng *RNG, measured *uint64)) float64 {
	homes := RoundRobin(threads, e.rt.NumCores())
	measureStart := e.rt.Now() + warmup
	deadline := measureStart + measure
	counts := make([]uint64, threads)
	master := NewRNG(seed)
	for i := 0; i < threads; i++ {
		i := i
		rng := master.Split()
		e.rt.Go(fmt.Sprintf("w%d", i), homes[i], func(t *Thread) {
			for t.Now() < deadline {
				var measured uint64
				op(t, rng, &measured)
				if t.Now() >= measureStart && t.Now() <= deadline {
					counts[i] += measured
				}
				t.Yield()
			}
		})
	}
	e.rt.Run()
	var total uint64
	for _, c := range counts {
		total += c
	}
	seconds := float64(measure) / e.rt.ClockHz()
	return float64(total) / seconds / 1000
}

const (
	ablWarmup  Cycles = 1_500_000
	ablMeasure Cycles = 4_000_000
)

// AblationClustering measures §6.2 object clustering: every operation uses
// a pair of objects together ("if one thread or operation uses two objects
// simultaneously then it might be best to place both objects in the same
// cache"). With clustering the pair shares a core (one migration per
// operation); without, the partner object is usually remote.
func AblationClustering() ([]AblationRow, error) {
	const pairs = 6
	const size = 8 << 10

	run := func(clustering bool) (float64, error) {
		env, err := newObjBench(Tiny8, []Option{WithClustering(clustering)}, 2*pairs, size)
		if err != nil {
			return 0, err
		}
		for i := 0; i < pairs; i++ {
			env.rt.PlaceTogether(env.objs[2*i], env.objs[2*i+1])
		}
		kops := env.runObjOps(8, ablWarmup, ablMeasure, 7, func(t *Thread, rng *RNG, n *uint64) {
			i := rng.Intn(pairs)
			a, b := env.objs[2*i], env.objs[2*i+1]
			// Nested operations: the operation on a uses b inside it,
			// the co-use pattern clustering targets. Without
			// clustering the inner operation migrates to b's core
			// and back every time; with it, b shares a's core and
			// the inner operation is free.
			opA := t.Begin(a)
			t.LoadCompute(a.Addr(0), a.Size(), 0.05)
			opB := t.Begin(b)
			t.LoadCompute(b.Addr(0), b.Size(), 0.05)
			opB.End()
			opA.End()
			*n = 1
		})
		return kops, nil
	}

	kops, err := configSweep("clustering", []string{"off", "on"},
		func(i int) (float64, error) { return run(i == 1) })
	if err != nil {
		return nil, err
	}
	off, on := kops[0], kops[1]
	return []AblationRow{
		{Config: "clustering off", KOps: off, Note: "partner object remote"},
		{Config: "clustering on", KOps: on, Note: fmt.Sprintf("%.2fx", on/off)},
	}, nil
}

// AblationReplication measures §6.2 read-only replication: one hot
// read-only object serializes every operation on a single core unless it
// is replicated per chip.
func AblationReplication() ([]AblationRow, error) {
	const size = 8 << 10

	run := func(replication bool) (float64, error) {
		opts := []Option{
			WithReplication(replication),
			WithReplicationThreshold(32, 0.95),
		}
		env, err := newObjBench(Tiny8, opts, 1, size)
		if err != nil {
			return 0, err
		}
		hot := env.objs[0]
		kops := env.runObjOps(8, ablWarmup, ablMeasure, 11, func(t *Thread, rng *RNG, n *uint64) {
			op := t.BeginRO(hot)
			t.LoadCompute(hot.Addr(0), hot.Size(), 0.1)
			op.End()
			*n = 1
		})
		return kops, nil
	}

	kops, err := configSweep("replication", []string{"off", "on"},
		func(i int) (float64, error) { return run(i == 1) })
	if err != nil {
		return nil, err
	}
	off, on := kops[0], kops[1]
	return []AblationRow{
		{Config: "replication off", KOps: off, Note: "all ops funnel to one core"},
		{Config: "replication on", KOps: on, Note: fmt.Sprintf("one replica per chip, %.2fx", on/off)},
	}, nil
}

// AblationReplacement measures the §6.2 over-capacity policy: the working
// set exceeds total on-chip memory, with a hot subset. First-fit keeps
// whichever objects crossed the miss threshold first; frequency-based
// replacement keeps the hot ones.
func AblationReplacement() ([]AblationRow, error) {
	p := DefaultRunParams()
	p.Threads = 8
	p.Warmup = ablWarmup
	p.Measure = ablMeasure
	// Adversarial schedule: uniform traffic during warmup fills the
	// budget with arbitrary directories; then the distribution shifts to
	// a hot subset. First-fit is stuck with its early picks;
	// frequency-based replacement revises them.
	p.Popularity = UniformThenHotspot
	p.PhaseShiftAt = ablWarmup
	p.HotDirs = 6
	p.HotFraction = 0.9

	exp := Experiment{
		Machine: Tiny8,
		Tree:    DirSpec{Dirs: 32, EntriesPerDir: 512}, // 512 KB on a 256 KB machine
		Params:  p,
		// Decay and the DRAM-ineffectiveness unplacer would eventually
		// free the budget on their own; disable both to isolate the
		// replacement policy.
		Options: []Option{WithDecayWindow(0), WithDRAMUnplaceFraction(0)},
	}

	policies := []Replacement{FirstFit, Frequency}
	kres, err := configSweep("replacement", []string{"first-fit", "frequency"},
		func(i int) (float64, error) {
			res, err := exp.Run(WithReplacement(policies[i]))
			return res.KResPerSec, err
		})
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Config: "first-fit (paper base)", KOps: kres[0], Note: "placement is first-come"},
		{Config: "frequency replacement", KOps: kres[1],
			Note: fmt.Sprintf("hot objects win space, %.2fx", kres[1]/kres[0])},
	}, nil
}

// AblationMigrationCost sweeps the fixed CPU cost of migration (§6.1: the
// AMD machine's "high cost to migrate a thread" limits CoreTime; hardware
// active messages "could reduce the overhead of migration").
func AblationMigrationCost() ([]AblationRow, error) {
	costs := []Cycles{0, 250, 550, 1500, 4000, 8000}

	p := DefaultRunParams()
	p.Threads = 8
	p.Warmup = ablWarmup
	p.Measure = ablMeasure

	exp := Experiment{
		Machine: Tiny8,
		Tree:    DirSpec{Dirs: 8, EntriesPerDir: 512},
		Params:  p,
	}

	// One cell for the baseline reference (no migrations at all), then
	// one per migration cost.
	labels := []string{"baseline"}
	for _, c := range costs {
		labels = append(labels, fmt.Sprintf("%d", c))
	}
	kres, err := configSweep("migcost", labels, func(i int) (float64, error) {
		if i == 0 {
			res, err := exp.Run(WithScheduler(Baseline))
			return res.KResPerSec, err
		}
		res, err := exp.Run(WithMigrationCost(costs[i-1]))
		return res.KResPerSec, err
	})
	if err != nil {
		return nil, err
	}
	rows := []AblationRow{{Config: "thread scheduler (reference)", KOps: kres[0]}}
	for i, c := range costs {
		note := ""
		if c == 0 {
			note = "≈ hardware active messages"
		}
		rows = append(rows, AblationRow{
			Config: fmt.Sprintf("coretime, migr CPU cost %d", c),
			KOps:   kres[i+1],
			Note:   note,
		})
	}
	return rows, nil
}

// AblationPathClustering measures clustering on the real file system:
// two-level path resolutions (/TOP/SUB/FILE) are nested operations over a
// top directory and one of its subdirectories. Clustering each top with
// its subdirectories keeps whole resolutions on one core (§6.2: "if one
// thread or operation uses two objects simultaneously then it might be
// best to place both objects in the same cache").
func AblationPathClustering() ([]AblationRow, error) {
	p := DefaultRunParams()
	p.Threads = 8
	p.Warmup = ablWarmup
	p.Measure = ablMeasure

	// Subdirectory scans are small, hence the lower placement threshold
	// on the CoreTime configurations.
	configs := [][]Option{
		{WithScheduler(Baseline)},
		{WithMissThreshold(4), WithClustering(false)},
		{WithMissThreshold(4), WithClustering(true)},
	}
	results := make([]PathResult, len(configs))
	if _, err := (Sweep{
		Name: "paths",
		Base: Cell{
			Machine: Tiny8,
			Paths:   PathSpec{TopDirs: 4, SubsPerTop: 6, FilesPerSub: 128},
			Params:  p,
		},
		Axes: []Axis{{Name: "config", Values: []AxisValue{
			{Label: "baseline"}, {Label: "flat"}, {Label: "clustered"},
		}}},
		Runner: func(c Cell) (Metrics, error) {
			rt, err := New(append([]Option{WithTopology(c.Machine)}, configs[c.Coords[0]]...)...)
			if err != nil {
				return nil, err
			}
			pt, err := rt.NewPathTree(c.Paths)
			if err != nil {
				return nil, err
			}
			pt.ClusterByTop()
			res := pt.Run(c.Params)
			results[c.Coords[0]] = res // distinct index per cell, no race
			return Metrics{"kres_per_sec": res.KResPerSec, "migrations": float64(res.Migrations)}, nil
		},
	}).Run(); err != nil {
		return nil, err
	}
	base, flat, clustered := results[0], results[1], results[2]
	return []AblationRow{
		{Config: "thread scheduler (reference)", KOps: base.KResPerSec},
		{Config: "coretime, clustering off", KOps: flat.KResPerSec,
			Note: fmt.Sprintf("%d migrations", flat.Migrations)},
		{Config: "coretime, clustering on", KOps: clustered.KResPerSec,
			Note: fmt.Sprintf("%d migrations, %.2fx over unclustered",
				clustered.Migrations, clustered.KResPerSec/flat.KResPerSec)},
	}, nil
}

// AblationSingleThread reproduces the §1 claim that even single-threaded
// applications can benefit: "a single threaded application might have a
// working set larger than a single core's cache capacity. The application
// would run faster with more cache, and the processor may well have spare
// cache in other cores, but if the application stays on one core it can
// use only a small fraction of the total cache."
//
// One thread scans objects whose total exceeds a single core's budget but
// fits the machine. The baseline pins the thread (implicitly: it never
// migrates); CoreTime partitions the objects across all caches and walks
// the thread among them.
func AblationSingleThread() ([]AblationRow, error) {
	// 12 × 16 KB = 192 KB: far beyond one Tiny8 core's ~29 KB budget
	// (L2 + L3 share), comfortably inside the machine's 256 KB total.
	const objects = 12
	const size = 16 << 10

	run := func(scheduler Scheduler) (float64, error) {
		env, err := newObjBench(Tiny8, []Option{WithScheduler(scheduler)}, objects, size)
		if err != nil {
			return 0, err
		}
		kops := env.runObjOps(1, ablWarmup, ablMeasure, 21, func(t *Thread, rng *RNG, n *uint64) {
			obj := env.objs[rng.Intn(objects)]
			op := t.Begin(obj)
			t.LoadCompute(obj.Addr(0), obj.Size(), 0.05)
			op.End()
			*n = 1
		})
		return kops, nil
	}
	scheds := []Scheduler{Baseline, CoreTime}
	kops, err := configSweep("single", []string{"pinned", "coretime"},
		func(i int) (float64, error) { return run(scheds[i]) })
	if err != nil {
		return nil, err
	}
	base, ct := kops[0], kops[1]
	return []AblationRow{
		{Config: "single thread, pinned", KOps: base,
			Note: "working set ≫ one core's caches"},
		{Config: "single thread, coretime", KOps: ct,
			Note: fmt.Sprintf("thread walks the placed objects, %.2fx", ct/base)},
	}, nil
}

// AblationHeterogeneous runs the workload on a machine where half the
// cores run at half speed (§6.1: "Future processors might have
// heterogeneous cores, which would complicate the design of a O2
// scheduler").
func AblationHeterogeneous() ([]AblationRow, error) {
	p := DefaultRunParams()
	p.Threads = 8
	p.Warmup = ablWarmup
	p.Measure = ablMeasure

	exp := Experiment{
		// Odd cores run at half speed.
		Machine: Tiny8.WithCoreSpeeds(1, 2, 1, 2, 1, 2, 1, 2),
		Tree:    DirSpec{Dirs: 8, EntriesPerDir: 512},
		Params:  p,
	}
	scheds := []Scheduler{Baseline, CoreTime}
	kres, err := configSweep("hetero", []string{"thread-scheduler", "coretime"},
		func(i int) (float64, error) {
			res, err := exp.Run(WithScheduler(scheds[i]))
			return res.KResPerSec, err
		})
	if err != nil {
		return nil, err
	}

	return []AblationRow{
		{Config: "hetero, thread scheduler", KOps: kres[0]},
		{Config: "hetero, coretime", KOps: kres[1],
			Note: fmt.Sprintf("%.2fx; packer is speed-unaware (open problem per §6.1)",
				kres[1]/kres[0])},
	}, nil
}
