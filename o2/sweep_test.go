package o2

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// tinySweep is a fast Fig4-shaped sweep used by the engine tests: a 2×2
// grid on the Tiny8 machine with short windows.
func tinySweep() Sweep {
	p := DefaultRunParams()
	p.Threads = 4
	p.Warmup = 200_000
	p.Measure = 400_000
	return Sweep{
		Name: "tiny",
		Base: Cell{Machine: Tiny8, Params: p},
		Axes: []Axis{
			DirCountAxis(128, 2, 6),
			SchedulerAxis(Baseline, CoreTime),
		},
		Repeats: 2,
		Seed:    7,
		Runner:  DirLookupCell,
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the core correctness
// property of the parallel engine: the same sweep with the same seed must
// produce byte-identical per-cell results at -workers=1 and -workers=8.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := tinySweep().WithWorkers(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := tinySweep().WithWorkers(8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=1 and workers=8 results differ:\n%+v\nvs\n%+v", serial, parallel)
	}

	// Byte-identical JSON, the form the bench trajectory consumes.
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("workers=1 and workers=8 JSON output differs byte for byte")
	}
}

func TestSweepGridExpansion(t *testing.T) {
	s := tinySweep()
	cells := s.cells()
	if len(cells) != 4 {
		t.Fatalf("2×2 grid expanded to %d cells", len(cells))
	}
	// Row-major, last axis fastest.
	wantLabels := [][]string{
		{"2", "thread-scheduler"},
		{"2", "coretime"},
		{"6", "thread-scheduler"},
		{"6", "coretime"},
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if !reflect.DeepEqual(c.Labels, wantLabels[i]) {
			t.Errorf("cell %d labels = %v, want %v", i, c.Labels, wantLabels[i])
		}
	}
	if cells[0].Tree.Dirs != 2 || cells[2].Tree.Dirs != 6 {
		t.Errorf("dir axis not applied: %+v / %+v", cells[0].Tree, cells[2].Tree)
	}
	if cells[0].Scheduler != Baseline || cells[1].Scheduler != CoreTime {
		t.Error("scheduler axis not applied")
	}
}

func TestSweepNoAxesRunsBaseCell(t *testing.T) {
	var got []Cell
	res, err := Sweep{
		Name: "point",
		Base: Cell{Machine: Small4},
		Runner: func(c Cell) (Metrics, error) {
			got = append(got, c)
			return Metrics{"v": 1}, nil
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(res.Cells) != 1 {
		t.Fatalf("axis-less sweep ran %d cells, reported %d", len(got), len(res.Cells))
	}
	if got[0].Machine.Name() != Small4.Name() {
		t.Errorf("base cell not passed through: %+v", got[0])
	}
}

func TestSweepPerCellSeeds(t *testing.T) {
	seen := map[uint64]int{}
	res, err := Sweep{
		Name:    "seeds",
		Axes:    []Axis{SchedulerAxis(Baseline, CoreTime)},
		Repeats: 3,
		Seed:    42,
		Runner: func(c Cell) (Metrics, error) {
			if c.Seed != CellSeed(42, c.Index, c.Repeat) {
				return nil, fmt.Errorf("cell %d repeat %d got seed %d", c.Index, c.Repeat, c.Seed)
			}
			if c.Params.Seed != c.Seed {
				return nil, fmt.Errorf("Params.Seed %d != cell seed %d", c.Params.Seed, c.Seed)
			}
			return Metrics{"seed": float64(c.Seed)}, nil
		},
		Workers: 1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		for _, s := range c.Seeds {
			seen[s]++
		}
	}
	if len(seen) != 6 {
		t.Errorf("2 cells × 3 repeats produced %d distinct seeds, want 6", len(seen))
	}
}

func TestSweepAggregates(t *testing.T) {
	// A runner returning known values per repeat: check the summary math.
	res, err := Sweep{
		Name:    "agg",
		Repeats: 4,
		Runner: func(c Cell) (Metrics, error) {
			return Metrics{"v": float64(c.Repeat + 1)}, nil // 1,2,3,4
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Cells[0].Stats["v"]
	if agg.N != 4 || agg.Mean != 2.5 || agg.Min != 1 || agg.Max != 4 {
		t.Errorf("aggregate = %+v, want n=4 mean=2.5 min=1 max=4", agg)
	}
	// Sample stddev of 1..4 is sqrt(5/3) ≈ 1.29099.
	if agg.Stddev < 1.29 || agg.Stddev > 1.30 {
		t.Errorf("stddev = %v, want ≈1.291", agg.Stddev)
	}
}

func TestSweepErrorIsFirstInGridOrder(t *testing.T) {
	// Whichever worker hits its error first, the reported failure must be
	// the first failing unit in grid order.
	boom := errors.New("boom")
	s := Sweep{
		Name: "errs",
		Axes: []Axis{{Name: "i", Values: []AxisValue{
			{Label: "a"}, {Label: "b"}, {Label: "c"}, {Label: "d"},
		}}},
		Runner: func(c Cell) (Metrics, error) {
			if c.Index >= 1 {
				return nil, fmt.Errorf("cell %d: %w", c.Index, boom)
			}
			return Metrics{}, nil
		},
	}
	for _, workers := range []int{1, 8} {
		_, err := s.WithWorkers(workers).Run()
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "cell 1") {
			t.Errorf("workers=%d: err %q does not name the first failing cell", workers, err)
		}
	}
}

func TestSweepWithoutRunnerFails(t *testing.T) {
	if _, err := (Sweep{Name: "norunner"}).Run(); err == nil {
		t.Fatal("sweep without Runner did not error")
	}
	s := Sweep{Name: "emptyaxis", Axes: []Axis{{Name: "x"}},
		Runner: func(Cell) (Metrics, error) { return nil, nil }}
	if _, err := s.Run(); err == nil {
		t.Fatal("sweep with an empty axis did not error")
	}
}

func TestSweepOptionsDoNotAliasAcrossCells(t *testing.T) {
	// Axis Apply appends to cell.Options; cells must not stomp each
	// other's appended options through a shared backing array.
	base := []Option{WithMissThreshold(8)}
	var labels []string
	_, err := Sweep{
		Name: "alias",
		Base: Cell{Options: base},
		Axes: []Axis{OptionsAxis("variant",
			OptionSet{Label: "x", Options: []Option{WithClustering(true)}},
			OptionSet{Label: "y", Options: []Option{WithReplication(true)}},
		)},
		Workers: 1,
		Runner: func(c Cell) (Metrics, error) {
			if len(c.Options) != 2 {
				return nil, fmt.Errorf("cell %v has %d options, want 2", c.Labels, len(c.Options))
			}
			labels = append(labels, c.Labels[0])
			return Metrics{}, nil
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 {
		t.Errorf("base options mutated: len=%d", len(base))
	}
	if !reflect.DeepEqual(labels, []string{"x", "y"}) {
		t.Errorf("cells ran %v", labels)
	}
}

func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	if CellSeed(1, 2, 3) != CellSeed(1, 2, 3) {
		t.Error("CellSeed not deterministic")
	}
	seen := map[uint64]bool{}
	for cell := 0; cell < 50; cell++ {
		for rep := 0; rep < 4; rep++ {
			seen[CellSeed(99, cell, rep)] = true
		}
	}
	if len(seen) != 200 {
		t.Errorf("200 (cell, repeat) pairs produced %d distinct seeds", len(seen))
	}
	if DeriveSeed(5, 1) == DeriveSeed(5, 2) || DeriveSeed(5) == DeriveSeed(6) {
		t.Error("DeriveSeed collides on adjacent inputs")
	}
}

func TestSweepResultCellLookup(t *testing.T) {
	res, err := tinySweep().WithRepeats(1).WithWorkers(2).Run()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cell("6", "coretime")
	if c == nil {
		t.Fatal("Cell lookup by labels failed")
	}
	if c.Mean("kres_per_sec") <= 0 {
		t.Errorf("degenerate cell result: %+v", c)
	}
	if res.Cell("999", "coretime") != nil {
		t.Error("lookup of absent cell returned non-nil")
	}
	names := res.MetricNames()
	if !reflect.DeepEqual(names, []string{"kres_per_sec", "migrations", "resolutions"}) {
		t.Errorf("MetricNames = %v", names)
	}
}

// TestFig4SweepMatchesExperiment pins the no-drift property: a sweep cell
// and a hand-rolled Experiment.Run with the same seed produce identical
// results, because DirLookupCell is Experiment.Run underneath.
func TestFig4SweepMatchesExperiment(t *testing.T) {
	p := DefaultRunParams()
	p.Threads = 4
	p.Warmup = 200_000
	p.Measure = 400_000

	s := Sweep{
		Name:    "pin",
		Base:    Cell{Machine: Tiny8, Params: p},
		Axes:    []Axis{DirCountAxis(128, 4), SchedulerAxis(CoreTime)},
		Seed:    11,
		Runner:  DirLookupCell,
		Workers: 2,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Cells[0]

	exp := Experiment{Machine: Tiny8, Tree: DirSpec{Dirs: 4, EntriesPerDir: 128}, Params: p}
	exp.Params.Seed = cell.Seeds[0]
	direct, err := exp.Run(WithScheduler(CoreTime), WithSeed(cell.Seeds[0]))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cell.Mean("kres_per_sec"), direct.KResPerSec; got != want {
		t.Errorf("sweep cell kres %v != direct Experiment.Run %v", got, want)
	}
	if got, want := cell.Mean("migrations"), float64(direct.Migrations); got != want {
		t.Errorf("sweep cell migrations %v != direct %v", got, want)
	}
}
