package o2

// This file is the WebService scenario: the paper's motivating web server
// (§2 cites directory lookup bottlenecking a Web server) promoted to a
// first-class open-loop service subsystem. Its siblings are serviceload.go
// (the seeded arrival process, bounded request queue, open-loop driver, and
// tail-latency recorder) and servicesweep.go (sweep axes, the ServiceCell
// runner, and the o2bench web entry points).
//
// Where KVService measures closed-loop throughput — clients issue the next
// operation the moment the previous one returns, so the system can never
// fall behind — WebService is open loop: requests arrive on an external
// schedule whether or not the workers keep up. Queueing delay, and with it
// the p99/p999 tail a service operator actually provisions for, becomes
// visible, and an optional background compaction thread class (bulk
// directory rewrites) supplies the foreground/background memory-system
// interference the related real-time scheduling literature says is where
// multicore schedulers differentiate.

import (
	"fmt"

	"repro/internal/telemetry"
)

// Default WebSpec dimensions: enough vhosts to exceed one chip's cache on
// the paper's machine while fitting the aggregate.
const (
	defaultWebDocRoots     = 64
	defaultWebFilesPerRoot = 512
)

// Per-request computation outside the directory scan, in cycles: parsing
// and dispatching the request line, then building and sending the response
// headers.
const (
	webParseCompute   = 400
	webRespondCompute = 600
)

// compactPerByteCPU is the compaction pass's per-byte serialization cost:
// re-encoding every directory entry while rewriting the table.
const compactPerByteCPU = 0.02

// WebSpec sizes a WebService's namespace: DocRoots virtual-host document
// directories of FilesPerRoot file entries each, laid out as a FAT
// directory tree whose directories are the schedulable objects. Zero
// fields take the defaults (64 roots × 512 files).
type WebSpec struct {
	DocRoots     int
	FilesPerRoot int
}

// WithDefaults returns the spec with zero fields filled in.
func (s WebSpec) WithDefaults() WebSpec {
	if s.DocRoots == 0 {
		s.DocRoots = defaultWebDocRoots
	}
	if s.FilesPerRoot == 0 {
		s.FilesPerRoot = defaultWebFilesPerRoot
	}
	return s
}

func (s WebSpec) validate() error {
	if s.DocRoots <= 0 || s.FilesPerRoot <= 0 {
		return fmt.Errorf("o2: WebSpec fields must be positive, got %+v", s)
	}
	return nil
}

// DirSpec returns the directory tree the namespace maps to.
func (s WebSpec) DirSpec() DirSpec {
	return DirSpec{Dirs: s.DocRoots, EntriesPerDir: s.FilesPerRoot}
}

// MetadataBytes returns the directory metadata footprint the name
// resolution stage contends over.
func (s WebSpec) MetadataBytes() int { return s.DirSpec().TotalBytes() }

// WebService simulates the name-resolution stage of a static web server:
// requests for paths like /DIR00012/F0000345 resolve against a FAT volume
// whose directories are schedulable objects. Build one with
// Runtime.NewWebService, drive it open loop with Run (serviceload.go), or
// compose the per-request primitives (Resolve, Compact) under explicit
// threads.
type WebService struct {
	rt   *Runtime
	spec WebSpec
	tree *DirTree

	// scratch is Run's reusable bookkeeping (recorders, histograms, the
	// Zipf table), so a sweep's arena-reused repeats reach a steady state
	// that allocates almost nothing per run. Zero value is ready to use.
	scratch svcScratch

	// Registry counters for the request path (see Runtime.Metrics). Two
	// services on one runtime share them, aggregating their traffic.
	arrivedC *telemetry.Counter
	droppedC *telemetry.Counter
	servedC  *telemetry.Counter

	// state is the most recent Run's driver bookkeeping; the
	// service.queue_depth gauge and the telemetry sampler read the live
	// bounded-queue depth through it.
	state *svcState
}

// NewWebService formats the document tree inside the runtime's memory
// image and registers each docroot directory as a schedulable object. It
// must run before any thread starts.
func (rt *Runtime) NewWebService(spec WebSpec) (*WebService, error) {
	spec = spec.WithDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	tree, err := rt.NewDirTree(spec.DirSpec())
	if err != nil {
		return nil, err
	}
	s := &WebService{rt: rt, spec: spec, tree: tree}
	s.arrivedC = rt.counter("service.requests_arrived")
	s.droppedC = rt.counter("service.requests_dropped")
	s.servedC = rt.counter("service.requests_served")
	rt.tel.reg.Gauge("service.queue_depth", func() float64 {
		if s.state == nil {
			return 0
		}
		return float64(s.state.count)
	})
	rt.tel.queueDepth = func() int {
		if s.state == nil {
			return 0
		}
		return s.state.count
	}
	return s, nil
}

// Spec returns the service's resolved dimensions.
func (s *WebService) Spec() WebSpec { return s.spec }

// Runtime returns the runtime the service was built on.
func (s *WebService) Runtime() *Runtime { return s.rt }

// Tree returns the underlying directory tree, for Placement inspection and
// custom drivers.
func (s *WebService) Tree() *DirTree { return s.tree }

// NumRoots returns the docroot count.
func (s *WebService) NumRoots() int { return s.tree.Len() }

// Resolve charges one request's service time to t: parse and dispatch the
// request line, resolve the file's name in docroot root by directory scan
// (the operation; the directory is the object, bracketed read-only so the
// §6.2 replication extension can act on hot vhosts), then build the
// response headers.
func (s *WebService) Resolve(t *Thread, root, file int) {
	t.Compute(webParseCompute)
	d := s.tree.Dir(root)
	op := t.BeginRO(d.Object())
	d.Lookup(t, d.EntryName(file%d.NumEntries()))
	op.End()
	t.Compute(webRespondCompute)
}

// Compact charges one background compaction pass over docroot root: a bulk
// rewrite of the whole directory table under its lock — re-reading every
// entry with per-byte serialization cost and storing the compacted table
// back. The write invalidates every cached copy of the directory, which is
// precisely the interference foreground reads then pay for.
func (s *WebService) Compact(t *Thread, root int) {
	d := s.tree.Dir(root)
	op := t.Begin(d.Object())
	t.Lock(&d.lock)
	obj := d.Object()
	t.LoadCompute(obj.Addr(0), obj.Size(), compactPerByteCPU)
	t.Store(obj.Addr(0), obj.Size())
	t.Unlock(&d.lock)
	op.End()
}
