package o2

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/trace"
)

// settings is the resolved configuration a Runtime is built from. Options
// mutate it in application order; later options win.
type settings struct {
	topo     Topology
	sched    Scheduler
	seed     uint64
	memBytes int // machine memory image size; 0 = auto
	exec     exec.Options
	ct       core.Options
	traceCap int

	// telInterval > 0 enables the telemetry sampler at that period; see
	// WithTelemetry.
	telInterval Cycles
	telCap      int // sampler ring capacity in samples; 0 = default

	errs []error // accumulated option errors, reported by New
}

func defaultSettings() *settings {
	return &settings{
		topo:  AMD16,
		sched: CoreTime,
		exec:  exec.DefaultOptions(),
		ct:    core.DefaultOptions(),
	}
}

func (s *settings) errorf(format string, args ...any) {
	s.errs = append(s.errs, fmt.Errorf(format, args...))
}

// An Option configures a Runtime under construction. Options are applied
// in order, so later options override earlier ones; invalid values are
// collected and reported together by New.
type Option func(*settings)

// WithTopology selects the simulated machine (default AMD16).
func WithTopology(t Topology) Option {
	return func(s *settings) { s.topo = t }
}

// WithScheduler selects the scheduling policy (default CoreTime).
func WithScheduler(sched Scheduler) Option {
	return func(s *settings) {
		if sched != CoreTime && sched != Baseline && sched != Affinity {
			s.errorf("o2: unknown scheduler %d", sched)
			return
		}
		s.sched = sched
	}
}

// WithSeed sets the runtime's base RNG seed (default 0). Every random
// stream inside the simulation derives deterministically from this seed, so
// equal seeds give bit-identical runs and concurrent runtimes never share
// generator state. Workload drivers whose RunParams.Seed is zero fall back
// to streams derived from it.
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithMemory sets the machine's memory image size in bytes. The default
// sizes the image automatically: 64 MB, grown to fit any workload tree the
// Runtime is asked to build before its machine materializes.
func WithMemory(bytes int) Option {
	return func(s *settings) {
		if bytes <= 0 {
			s.errorf("o2: memory size %d must be positive", bytes)
			return
		}
		s.memBytes = bytes
	}
}

// WithMissThreshold sets the smoothed per-operation cache-miss count above
// which an object is considered expensive to fetch and becomes a placement
// candidate. Lower it for workloads whose operations touch few lines.
func WithMissThreshold(misses float64) Option {
	return func(s *settings) {
		if misses < 0 {
			s.errorf("o2: miss threshold %v must be non-negative", misses)
			return
		}
		s.ct.MissThreshold = misses
	}
}

// WithRebalanceInterval sets the period of the monitor that repairs
// placement pathologies at run time. Zero disables the monitor.
func WithRebalanceInterval(c Cycles) Option {
	return func(s *settings) { s.ct.RebalanceInterval = c }
}

// WithDecayWindow makes CoreTime unplace objects not operated on for the
// given window, releasing cache budget when the working set shrinks. Zero
// disables decay.
func WithDecayWindow(c Cycles) Option {
	return func(s *settings) { s.ct.DecayWindow = c }
}

// WithClustering enables the §6.2 object-clustering extension: objects
// marked with Runtime.PlaceTogether are packed into the same cache.
func WithClustering(on bool) Option {
	return func(s *settings) { s.ct.EnableClustering = on }
}

// WithReplication enables the §6.2 read-only replication extension: hot
// read-only objects get one copy per chip instead of funneling every
// operation to a single core.
func WithReplication(on bool) Option {
	return func(s *settings) { s.ct.EnableReplication = on }
}

// WithReplicationThreshold tunes when an object qualifies for replication:
// after minOps read-only operations, provided at least readRatio (0–1] of
// its operations are read-only.
func WithReplicationThreshold(minOps uint64, readRatio float64) Option {
	return func(s *settings) {
		if readRatio <= 0 || readRatio > 1 {
			s.errorf("o2: replication read ratio %v must be in (0, 1]", readRatio)
			return
		}
		s.ct.ReplicateMinOps = minOps
		s.ct.ReplicateReadRatio = readRatio
	}
}

// WithBandwidthAware enables CoreTime's bandwidth-aware placement: the
// monitor rolls the DRAM/interconnect queueing counters up per socket,
// spreads placed objects off saturated sockets toward sockets with
// headroom, and refuses new placements behind saturated controllers. On
// machines that never saturate (every preset before the NUMA family) the
// signals stay zero and the policy behaves exactly like plain CoreTime.
func WithBandwidthAware(on bool) Option {
	return func(s *settings) {
		s.ct.BWSpread = on
		s.ct.BWAdmission = on
	}
}

// WithBandwidthThresholds tunes the bandwidth-aware monitor: a socket is
// saturated above saturation queue-cycles-per-busy-cycle and a spread
// destination below headroom. Requires 0 < headroom ≤ saturation.
func WithBandwidthThresholds(saturation, headroom float64) Option {
	return func(s *settings) {
		if headroom <= 0 || saturation < headroom {
			s.errorf("o2: bandwidth thresholds need 0 < headroom (%v) <= saturation (%v)",
				headroom, saturation)
			return
		}
		s.ct.BWSaturationFrac = saturation
		s.ct.BWHeadroomFrac = headroom
	}
}

// WithReplacement selects the over-capacity placement policy (§6.2).
func WithReplacement(r Replacement) Option {
	return func(s *settings) {
		if r != FirstFit && r != Frequency {
			s.errorf("o2: unknown replacement policy %d", r)
			return
		}
		s.ct.Replacement = r.internal()
	}
}

// WithDRAMUnplaceFraction sets the fraction of an object's lines that may
// still load from DRAM before the monitor judges its placement ineffective
// and unplaces it. Zero disables the check.
func WithDRAMUnplaceFraction(frac float64) Option {
	return func(s *settings) {
		if frac < 0 || frac > 1 {
			s.errorf("o2: DRAM unplace fraction %v must be in [0, 1]", frac)
			return
		}
		s.ct.UnplaceDRAMFrac = frac
	}
}

// WithReturnToOrigin makes every operation end with a migration back to
// the core the thread came from; by default only nested operations return
// and top-level threads continue from the object's core.
func WithReturnToOrigin(on bool) Option {
	return func(s *settings) { s.ct.ReturnToOrigin = on }
}

// WithMigrationCost sets the fixed CPU cost charged on each side of a
// thread migration (the §6.1 active-messages ablation lowers it).
func WithMigrationCost(c Cycles) Option {
	return func(s *settings) { s.exec.MigrationCPUCost = c }
}

// WithTrace records the last capacity scheduler decisions (placements,
// migrations, monitor actions) for Runtime.DumpTrace.
func WithTrace(capacity int) Option {
	return func(s *settings) {
		if capacity <= 0 {
			s.errorf("o2: trace capacity %d must be positive", capacity)
			return
		}
		s.traceCap = capacity
	}
}

// WithTelemetry enables the deterministic telemetry sampler: every
// interval simulated cycles the runtime snapshots per-core busy/idle/
// dead-time fractions, per-socket DRAM and interconnect queueing deltas,
// run-queue and service-queue depths, and CoreTime placement counts into
// ring-buffered time series. Runtime.WriteTimeline renders the series —
// merged with the scheduler trace — as a chrome://tracing-loadable
// timeline. Because sampling rides the simulated clock, telemetry output
// is a pure function of (configuration, seed): byte-identical at any
// host worker count, like every other result.
//
// Telemetry implies tracing: when no WithTrace capacity was chosen, a
// default-capacity scheduler trace is enabled so the timeline has
// decision events to merge.
func WithTelemetry(interval Cycles) Option {
	return func(s *settings) {
		if interval <= 0 {
			s.errorf("o2: telemetry interval %d must be positive", interval)
			return
		}
		s.telInterval = interval
		if s.traceCap <= 0 {
			s.traceCap = defaultTelemetryTraceCap
		}
	}
}

// validate folds option errors with topology validation.
func (s *settings) validate() error {
	if err := s.topo.cfg.Validate(); err != nil {
		s.errs = append(s.errs, err)
	}
	switch len(s.errs) {
	case 0:
		return nil
	case 1:
		return s.errs[0]
	default:
		err := s.errs[0]
		for _, e := range s.errs[1:] {
			err = fmt.Errorf("%w; %w", err, e)
		}
		return err
	}
}

// tracer returns the configured tracer, or nil when tracing is off.
func (s *settings) tracer() *trace.Tracer {
	if s.traceCap <= 0 {
		return nil
	}
	return trace.New(s.traceCap)
}
