package o2

// This file and its siblings (fig2.go, micro.go, ablation.go) are the
// evaluation layer: they regenerate every figure and table of the paper,
// plus ablations of the §6 design extensions, entirely through the public
// API above. cmd/o2bench and the repository's bench_test.go are thin
// wrappers around these entry points.
//
// Experiment index (see DESIGN.md):
//
//	Fig4a        — uniform directory popularity sweep (paper Fig. 4a)
//	Fig4b        — oscillating popularity sweep (paper Fig. 4b)
//	Fig2         — cache contents under thread vs O2 scheduling (Fig. 2)
//	LatencyTable — §5 hardware latency numbers
//	MigrationCost— §5 "measured cost of migration is 2000 cycles"
//	Ablations    — clustering, replication, replacement, migration-cost
//	               sensitivity, heterogeneous cores (§6)

import (
	"fmt"
	"io"
)

// Fig4Config drives the Fig. 4 sweeps.
type Fig4Config struct {
	Machine Topology
	// DirCounts are the x-axis points (number of directories, each
	// 1,000 entries × 32 bytes = 31.25 KB, matching the paper).
	DirCounts     []int
	EntriesPerDir int
	Params        RunParams
	// Rebalance and Decay override the CoreTime monitor cadence; zero
	// keeps the scheduler default (Fig4b ties them to the oscillation
	// period instead).
	Rebalance Cycles
	Decay     Cycles
	// CoreTime holds extra options applied to the CoreTime runtime at
	// each point.
	CoreTime []Option
	// Repeats measures every point that many times with distinct derived
	// seeds and reports mean/stddev (default 1).
	Repeats int
	// Workers bounds the sweep's worker pool; 0 means runtime.NumCPU().
	Workers int
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
}

// DefaultFig4Config returns the full-scale configuration: the AMD16
// machine swept from 125 KB to 21 MB of directory data.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Machine: AMD16,
		DirCounts: []int{
			4, 8, 16, 32, 64, 112, 160, 224, 288, 352, 416, 480, 544, 608, 672,
		},
		EntriesPerDir: 1000,
		Params:        DefaultRunParams(),
	}
}

// QuickFig4Config returns a reduced sweep for smoke tests and testing.B
// benchmarks: fewer points and shorter windows, same machine. The shapes
// hold but absolute numbers sit slightly below the converged full run.
func QuickFig4Config() Fig4Config {
	cfg := DefaultFig4Config()
	cfg.DirCounts = []int{8, 64, 224, 480, 640}
	cfg.Params.Warmup = 8_000_000
	cfg.Params.Measure = 3_000_000
	return cfg
}

// Fig4Row is one x-axis point of Fig. 4: throughput with and without
// CoreTime at a given total data size. With Repeats > 1 the KRes fields
// are means over the repeats and the Stddev fields their sample standard
// deviations (zero for a single repeat).
type Fig4Row struct {
	Dirs       int
	DataKB     float64
	BaseKRes   float64 // thousands of resolutions/sec, thread scheduler
	CTKRes     float64 // thousands of resolutions/sec, CoreTime
	BaseStddev float64
	CTStddev   float64
	Speedup    float64
	Migrations uint64 // mean CoreTime migrations in the measured window
}

// Fig4a regenerates Figure 4(a): uniform directory popularity.
func Fig4a(cfg Fig4Config) ([]Fig4Row, error) {
	cfg, sweep := Fig4aSweep(cfg)
	return fig4(cfg, sweep)
}

// Fig4b regenerates Figure 4(b): the number of directories accessed
// oscillates between the x-axis value and a sixteenth of it. The CoreTime
// monitor cadence is tied to the oscillation period so the rebalancer can
// follow the phase changes (the experiment exists to "demonstrate the
// ability of CoreTime to rebalance objects", §5).
func Fig4b(cfg Fig4Config) ([]Fig4Row, error) {
	cfg, sweep := Fig4bSweep(cfg)
	return fig4(cfg, sweep)
}

// Fig4aSweep resolves cfg for Figure 4(a) and returns it with the Sweep
// that measures it. Callers that want per-cell repeat statistics (cmd/
// o2bench -json) run the sweep themselves; Fig4a folds it into rows.
func Fig4aSweep(cfg Fig4Config) (Fig4Config, Sweep) {
	cfg.Params.Popularity = Uniform
	return cfg, fig4Sweep(cfg)
}

// Fig4bSweep resolves cfg for Figure 4(b) — oscillating popularity with
// the monitor cadence tied to the oscillation period — and returns it with
// the Sweep that measures it.
func Fig4bSweep(cfg Fig4Config) (Fig4Config, Sweep) {
	cfg.Params.Popularity = Oscillating
	if cfg.Params.OscillatePeriod == 0 {
		cfg.Params.OscillatePeriod = 2_000_000
	}
	if cfg.Params.OscillateDivisor == 0 {
		cfg.Params.OscillateDivisor = 16
	}
	if cfg.Rebalance == 0 {
		cfg.Rebalance = cfg.Params.OscillatePeriod / 4
	}
	if cfg.Decay == 0 {
		cfg.Decay = 2 * cfg.Params.OscillatePeriod
	}
	return cfg, fig4Sweep(cfg)
}

// fig4Sweep builds the Sweep behind a Fig. 4 run: a dirs × scheduler grid
// over the standard directory-lookup runner.
func fig4Sweep(cfg Fig4Config) Sweep {
	if cfg.EntriesPerDir == 0 {
		cfg.EntriesPerDir = 1000
	}
	var ctOpts []Option
	if cfg.Rebalance != 0 {
		ctOpts = append(ctOpts, WithRebalanceInterval(cfg.Rebalance))
	}
	if cfg.Decay != 0 {
		ctOpts = append(ctOpts, WithDecayWindow(cfg.Decay))
	}
	ctOpts = append(ctOpts, cfg.CoreTime...)

	name := "fig4a"
	if cfg.Params.Popularity == Oscillating {
		name = "fig4b"
	}
	return Sweep{
		Name: name,
		Base: Cell{Machine: cfg.Machine, Params: cfg.Params},
		Axes: []Axis{
			DirCountAxis(cfg.EntriesPerDir, cfg.DirCounts...),
			{Name: "scheduler", Values: []AxisValue{
				{Label: Baseline.String(), Apply: func(c *Cell) { c.Scheduler = Baseline }},
				{Label: CoreTime.String(), Apply: func(c *Cell) {
					c.Scheduler = CoreTime
					c.Options = append(c.Options, ctOpts...)
				}},
			}},
		},
		Repeats:  cfg.Repeats,
		Workers:  cfg.Workers,
		Seed:     cfg.Params.Seed,
		Runner:   DirLookupCell,
		Progress: cfg.Progress,
	}
}

// Fig4Rows folds a completed Fig4Sweep result into the figure's rows, one
// per directory count, pairing the baseline and CoreTime cells.
func Fig4Rows(cfg Fig4Config, res *SweepResult) ([]Fig4Row, error) {
	if cfg.EntriesPerDir == 0 {
		cfg.EntriesPerDir = 1000
	}
	rows := make([]Fig4Row, 0, len(cfg.DirCounts))
	for _, dirs := range cfg.DirCounts {
		label := fmt.Sprintf("%d", dirs)
		base := res.Cell(label, Baseline.String())
		ct := res.Cell(label, CoreTime.String())
		if base == nil || ct == nil {
			return nil, fmt.Errorf("o2: sweep result missing cells at %d dirs", dirs)
		}
		spec := DirSpec{Dirs: dirs, EntriesPerDir: cfg.EntriesPerDir}
		row := Fig4Row{
			Dirs:       dirs,
			DataKB:     float64(spec.TotalBytes()) / 1024,
			BaseKRes:   base.Mean("kres_per_sec"),
			CTKRes:     ct.Mean("kres_per_sec"),
			BaseStddev: base.Stddev("kres_per_sec"),
			CTStddev:   ct.Stddev("kres_per_sec"),
			Migrations: uint64(ct.Mean("migrations")),
		}
		if row.BaseKRes > 0 {
			row.Speedup = row.CTKRes / row.BaseKRes
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig4(cfg Fig4Config, sweep Sweep) ([]Fig4Row, error) {
	res, err := sweep.Run()
	if err != nil {
		return nil, err
	}
	return Fig4Rows(cfg, res)
}

// WriteFig4Table prints rows in the paper's axes (total data size in KB vs
// thousands of resolutions per second). Rows carrying repeat statistics
// print as mean±stddev.
func WriteFig4Table(w io.Writer, title string, rows []Fig4Row) {
	withStats := false
	for _, r := range rows {
		if r.BaseStddev != 0 || r.CTStddev != 0 {
			withStats = true
			break
		}
	}
	fmt.Fprintf(w, "# %s\n", title)
	if withStats {
		fmt.Fprintf(w, "%10s %8s %20s %20s %9s %12s\n",
			"data(KB)", "dirs", "without-CT", "with-CT", "speedup", "migrations")
		for _, r := range rows {
			fmt.Fprintf(w, "%10.0f %8d %13.0f ±%5.0f %13.0f ±%5.0f %8.2fx %12d\n",
				r.DataKB, r.Dirs, r.BaseKRes, r.BaseStddev, r.CTKRes, r.CTStddev,
				r.Speedup, r.Migrations)
		}
		return
	}
	fmt.Fprintf(w, "%10s %8s %14s %14s %9s %12s\n",
		"data(KB)", "dirs", "without-CT", "with-CT", "speedup", "migrations")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.0f %8d %14.0f %14.0f %8.2fx %12d\n",
			r.DataKB, r.Dirs, r.BaseKRes, r.CTKRes, r.Speedup, r.Migrations)
	}
}

// WriteFig4CSV emits the same series in CSV, ready for gnuplot/matplotlib
// against the paper's axes.
func WriteFig4CSV(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "data_kb,dirs,kres_without_ct,kres_with_ct,stddev_without_ct,stddev_with_ct,speedup,migrations")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f,%d,%.1f,%.1f,%.1f,%.1f,%.4f,%d\n",
			r.DataKB, r.Dirs, r.BaseKRes, r.CTKRes, r.BaseStddev, r.CTStddev, r.Speedup, r.Migrations)
	}
}

// cyclesToString formats a cycle count for tables.
func cyclesToString(c Cycles) string { return fmt.Sprintf("%d", c) }
