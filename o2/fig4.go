package o2

// This file and its siblings (fig2.go, micro.go, ablation.go) are the
// evaluation layer: they regenerate every figure and table of the paper,
// plus ablations of the §6 design extensions, entirely through the public
// API above. cmd/o2bench and the repository's bench_test.go are thin
// wrappers around these entry points.
//
// Experiment index (see DESIGN.md):
//
//	Fig4a        — uniform directory popularity sweep (paper Fig. 4a)
//	Fig4b        — oscillating popularity sweep (paper Fig. 4b)
//	Fig2         — cache contents under thread vs O2 scheduling (Fig. 2)
//	LatencyTable — §5 hardware latency numbers
//	MigrationCost— §5 "measured cost of migration is 2000 cycles"
//	Ablations    — clustering, replication, replacement, migration-cost
//	               sensitivity, heterogeneous cores (§6)

import (
	"fmt"
	"io"
)

// Fig4Config drives the Fig. 4 sweeps.
type Fig4Config struct {
	Machine Topology
	// DirCounts are the x-axis points (number of directories, each
	// 1,000 entries × 32 bytes = 31.25 KB, matching the paper).
	DirCounts     []int
	EntriesPerDir int
	Params        RunParams
	// Rebalance and Decay override the CoreTime monitor cadence; zero
	// keeps the scheduler default (Fig4b ties them to the oscillation
	// period instead).
	Rebalance Cycles
	Decay     Cycles
	// CoreTime holds extra options applied to the CoreTime runtime at
	// each point.
	CoreTime []Option
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
}

// DefaultFig4Config returns the full-scale configuration: the AMD16
// machine swept from 125 KB to 21 MB of directory data.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Machine: AMD16,
		DirCounts: []int{
			4, 8, 16, 32, 64, 112, 160, 224, 288, 352, 416, 480, 544, 608, 672,
		},
		EntriesPerDir: 1000,
		Params:        DefaultRunParams(),
	}
}

// QuickFig4Config returns a reduced sweep for smoke tests and testing.B
// benchmarks: fewer points and shorter windows, same machine. The shapes
// hold but absolute numbers sit slightly below the converged full run.
func QuickFig4Config() Fig4Config {
	cfg := DefaultFig4Config()
	cfg.DirCounts = []int{8, 64, 224, 480, 640}
	cfg.Params.Warmup = 8_000_000
	cfg.Params.Measure = 3_000_000
	return cfg
}

// Fig4Row is one x-axis point of Fig. 4: throughput with and without
// CoreTime at a given total data size.
type Fig4Row struct {
	Dirs       int
	DataKB     float64
	BaseKRes   float64 // thousands of resolutions/sec, thread scheduler
	CTKRes     float64 // thousands of resolutions/sec, CoreTime
	Speedup    float64
	Migrations uint64 // CoreTime migrations in the measured window
}

// Fig4a regenerates Figure 4(a): uniform directory popularity.
func Fig4a(cfg Fig4Config) ([]Fig4Row, error) {
	cfg.Params.Popularity = Uniform
	return fig4(cfg)
}

// Fig4b regenerates Figure 4(b): the number of directories accessed
// oscillates between the x-axis value and a sixteenth of it. The CoreTime
// monitor cadence is tied to the oscillation period so the rebalancer can
// follow the phase changes (the experiment exists to "demonstrate the
// ability of CoreTime to rebalance objects", §5).
func Fig4b(cfg Fig4Config) ([]Fig4Row, error) {
	cfg.Params.Popularity = Oscillating
	if cfg.Params.OscillatePeriod == 0 {
		cfg.Params.OscillatePeriod = 2_000_000
	}
	if cfg.Params.OscillateDivisor == 0 {
		cfg.Params.OscillateDivisor = 16
	}
	if cfg.Rebalance == 0 {
		cfg.Rebalance = cfg.Params.OscillatePeriod / 4
	}
	if cfg.Decay == 0 {
		cfg.Decay = 2 * cfg.Params.OscillatePeriod
	}
	return fig4(cfg)
}

func fig4(cfg Fig4Config) ([]Fig4Row, error) {
	if cfg.EntriesPerDir == 0 {
		cfg.EntriesPerDir = 1000
	}
	ctOpts := []Option{WithScheduler(CoreTime)}
	if cfg.Rebalance != 0 {
		ctOpts = append(ctOpts, WithRebalanceInterval(cfg.Rebalance))
	}
	if cfg.Decay != 0 {
		ctOpts = append(ctOpts, WithDecayWindow(cfg.Decay))
	}
	ctOpts = append(ctOpts, cfg.CoreTime...)

	rows := make([]Fig4Row, 0, len(cfg.DirCounts))
	for _, dirs := range cfg.DirCounts {
		exp := Experiment{
			Machine: cfg.Machine,
			Tree:    DirSpec{Dirs: dirs, EntriesPerDir: cfg.EntriesPerDir},
			Params:  cfg.Params,
		}
		base, err := exp.Run(WithScheduler(Baseline))
		if err != nil {
			return nil, fmt.Errorf("o2: baseline at %d dirs: %w", dirs, err)
		}
		ct, err := exp.Run(ctOpts...)
		if err != nil {
			return nil, fmt.Errorf("o2: coretime at %d dirs: %w", dirs, err)
		}

		row := Fig4Row{
			Dirs:       dirs,
			DataKB:     float64(exp.Tree.TotalBytes()) / 1024,
			BaseKRes:   base.KResPerSec,
			CTKRes:     ct.KResPerSec,
			Migrations: ct.Migrations,
		}
		if base.KResPerSec > 0 {
			row.Speedup = ct.KResPerSec / base.KResPerSec
		}
		rows = append(rows, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%8.0f KB  base %8.0f  coretime %8.0f  (%.2fx)\n",
				row.DataKB, row.BaseKRes, row.CTKRes, row.Speedup)
		}
	}
	return rows, nil
}

// WriteFig4Table prints rows in the paper's axes (total data size in KB vs
// thousands of resolutions per second).
func WriteFig4Table(w io.Writer, title string, rows []Fig4Row) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%10s %8s %14s %14s %9s %12s\n",
		"data(KB)", "dirs", "without-CT", "with-CT", "speedup", "migrations")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.0f %8d %14.0f %14.0f %8.2fx %12d\n",
			r.DataKB, r.Dirs, r.BaseKRes, r.CTKRes, r.Speedup, r.Migrations)
	}
}

// WriteFig4CSV emits the same series in CSV, ready for gnuplot/matplotlib
// against the paper's axes.
func WriteFig4CSV(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "data_kb,dirs,kres_without_ct,kres_with_ct,speedup,migrations")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f,%d,%.1f,%.1f,%.4f,%d\n",
			r.DataKB, r.Dirs, r.BaseKRes, r.CTKRes, r.Speedup, r.Migrations)
	}
}

// cyclesToString formats a cycle count for tables.
func cyclesToString(c Cycles) string { return fmt.Sprintf("%d", c) }
