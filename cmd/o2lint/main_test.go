package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture materializes a throwaway module and returns its root. The
// go command resolves packages inside it exactly as it would for a user
// running o2lint in their own tree.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const fixtureGoMod = "module fixture\n\ngo 1.24\n"

func TestRunReportsFindings(t *testing.T) {
	// Two //o2:hotpath functions that allocate: hotalloc must report
	// exactly one finding per allocation site, and the process must exit 1.
	dir := writeFixture(t, map[string]string{
		"go.mod": fixtureGoMod,
		"hot.go": `package fixture

//o2:hotpath
func HotSlice() []int {
	return make([]int, 8)
}

//o2:hotpath
func HotMap() map[int]int {
	return map[int]int{}
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	findings := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(findings) != 2 {
		t.Fatalf("reported %d finding(s), want 2:\n%s", len(findings), &stdout)
	}
	for _, f := range findings {
		if !strings.Contains(f, "hotpath") && !strings.Contains(f, "alloc") {
			t.Errorf("finding does not mention the hot-path contract: %s", f)
		}
	}
	if !strings.Contains(stderr.String(), "2 finding(s)") {
		t.Errorf("summary line missing from stderr:\n%s", &stderr)
	}
}

func TestRunCleanTree(t *testing.T) {
	dir := writeFixture(t, map[string]string{
		"go.mod": fixtureGoMod,
		"ok.go": `package fixture

//o2:hotpath
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced findings:\n%s", &stdout)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.TempDir(), []string{"-only", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr does not explain the bad -only value:\n%s", &stderr)
	}
}
