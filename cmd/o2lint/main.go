// Command o2lint runs the repository's static-analysis suite: four
// analyzers that machine-check the determinism, façade, and hot-path
// contracts the simulator's results depend on (see internal/lint).
//
// Usage:
//
//	go tool o2lint [-only analyzer] [packages]
//
// With no package arguments it checks ./... . The exit status is 1 when
// any finding is reported, so CI can gate on it directly. o2lint is not a
// `go vet -vettool` plugin: the vettool protocol requires the
// golang.org/x/tools unitchecker, and this module deliberately has no
// dependencies — `go tool o2lint` (the tool directive in go.mod) is the
// supported entry point.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	//o2:allow facade "o2lint is the façade's own enforcement tooling, not a simulation client; it must reach the analyzer implementation"
	"repro/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit: packages resolve in
// dir, findings go to stdout, errors and the summary line to stderr. The
// returned code is the process exit status — 0 clean, 1 findings, 2 usage
// or load errors — which is what the smoke test asserts.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("o2lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "run only the named analyzer (detrand, maporder, facade, hotalloc)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: o2lint [-only analyzer] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		a := lint.ByName(*only)
		if a == nil {
			names := make([]string, 0, len(analyzers))
			for _, a := range analyzers {
				names = append(names, a.Name)
			}
			fmt.Fprintf(stderr, "o2lint: unknown analyzer %q (have %s)\n", *only, strings.Join(names, ", "))
			return 2
		}
		analyzers = []*lint.Analyzer{a}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(dir, analyzers, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "o2lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "o2lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
