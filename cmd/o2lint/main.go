// Command o2lint runs the repository's static-analysis suite: four
// analyzers that machine-check the determinism, façade, and hot-path
// contracts the simulator's results depend on (see internal/lint).
//
// Usage:
//
//	go tool o2lint [-only analyzer] [packages]
//
// With no package arguments it checks ./... . The exit status is 1 when
// any finding is reported, so CI can gate on it directly. o2lint is not a
// `go vet -vettool` plugin: the vettool protocol requires the
// golang.org/x/tools unitchecker, and this module deliberately has no
// dependencies — `go tool o2lint` (the tool directive in go.mod) is the
// supported entry point.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	//o2:allow facade "o2lint is the façade's own enforcement tooling, not a simulation client; it must reach the analyzer implementation"
	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "run only the named analyzer (detrand, maporder, facade, hotalloc)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: o2lint [-only analyzer] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := lint.All()
	if *only != "" {
		a := lint.ByName(*only)
		if a == nil {
			names := make([]string, 0, len(analyzers))
			for _, a := range analyzers {
				names = append(names, a.Name)
			}
			fmt.Fprintf(os.Stderr, "o2lint: unknown analyzer %q (have %s)\n", *only, strings.Join(names, ", "))
			os.Exit(2)
		}
		analyzers = []*lint.Analyzer{a}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(".", analyzers, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "o2lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "o2lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
