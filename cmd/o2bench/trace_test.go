package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
)

// TestTraceJSONGolden pins the `o2bench trace` timeline bytes on the
// quick configuration and validates the Chrome trace-event schema:
// top-level shape, required per-event fields, and monotone timestamps.
// Regenerate with `go test ./cmd/o2bench -run TestTraceJSONGolden
// -update` and review the diff.
func TestTraceJSONGolden(t *testing.T) {
	cfg, _, err := traceFlags([]string{"-quick"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emitTrace(&buf, io.Discard, cfg); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_tiny.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("o2bench trace output drifted from %s (got %d bytes, want %d). If intentional, rerun with -update and review.",
			golden, buf.Len(), len(want))
	}

	// Schema: the file must decode as a trace-event container whose every
	// event carries ph/ts/pid/tid, with ts monotone non-decreasing.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline holds no events")
	}
	last := -1.0
	phases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %+v missing a required ph/ts/pid/tid field", ev)
		}
		if *ev.Ts < last {
			t.Fatalf("timestamps not monotone: %v after %v", *ev.Ts, last)
		}
		last = *ev.Ts
		phases[ev.Ph] = true
	}
	// The timeline must carry all three advertised families: per-core run
	// spans (X), per-socket bandwidth counters (C), scheduler decisions (i).
	for _, ph := range []string{"M", "X", "C", "i"} {
		if !phases[ph] {
			t.Fatalf("timeline has no %q events; phases present: %v", ph, phases)
		}
	}
}

// TestTraceJSONWorkerInvariance pins the acceptance criterion that the
// timeline is byte-identical across -workers counts: a trace run is one
// deterministic cell, so the flag (accepted for command-line symmetry)
// must not leak into the output.
func TestTraceJSONWorkerInvariance(t *testing.T) {
	run := func(workers int) []byte {
		cfg, _, err := traceFlags([]string{"-quick", "-workers", strconv.Itoa(workers)})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := emitTrace(&buf, io.Discard, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := run(1)
	many := run(runtime.NumCPU())
	if !bytes.Equal(one, many) {
		t.Errorf("-workers=1 timeline differs from -workers=%d (%d vs %d bytes)",
			runtime.NumCPU(), len(one), len(many))
	}
}
