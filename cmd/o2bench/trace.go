package main

// The trace subcommand: run one telemetry-enabled open-loop WebService
// cell and emit its Chrome trace-event timeline (load the file in
// chrome://tracing or ui.perfetto.dev). The timeline bytes go to stdout
// or -out; the human-readable run summary — notably how far below the
// saturation threshold the peak smoothed socket bandwidth signal sat,
// the ROADMAP MLP question — goes to stderr, so the emitted JSON stays
// byte-comparable across runs and worker counts.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/o2"
)

func traceFlags(args []string) (o2.TraceConfig, string, error) {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced cell (Tiny8 machine, 2k requests)")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	out := fs.String("out", "", "write the timeline JSON to this file (default stdout)")
	interval := fs.Uint64("interval", 0, "telemetry sampling period in cycles (0 = config default)")
	// A trace run is a single deterministic cell, so there is no worker
	// pool to bound; the flag exists so every subcommand accepts the same
	// invariance-checking invocation (output must not depend on it).
	fs.Int("workers", 0, "accepted for symmetry with the sweep subcommands; ignored")
	if err := fs.Parse(args); err != nil {
		return o2.TraceConfig{}, "", err
	}
	cfg := o2.DefaultTraceConfig()
	if *quick {
		cfg = o2.QuickTraceConfig()
	}
	cfg.Seed = *seed
	if *interval > 0 {
		cfg.Interval = o2.Cycles(*interval)
	}
	return cfg, *out, nil
}

// emitTrace runs the cell, writes the timeline JSON to w, and the run
// summary to info. Split from runTrace so tests can pin the JSON schema
// and its worker invariance without capturing the summary.
func emitTrace(w, info io.Writer, cfg o2.TraceConfig) error {
	tr, err := o2.RunTrace(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(info, "trace: %s %s, %d requests, %.1f offered / %.1f achieved krps, p99 %.0f cycles\n",
		cfg.Machine.Name(), cfg.Scheduler, cfg.Load.Requests,
		tr.Result.OfferedKRPS, tr.Result.AchievedKRPS, tr.Result.P99)
	fmt.Fprintf(info, "trace: %d samples at %d-cycle interval; peak socket bw signal %.4f on socket %d at cycle %d (saturation threshold %.2f)\n",
		tr.Samples, cfg.Interval, tr.PeakBWSignal, tr.PeakBWSocket, tr.PeakBWAt, tr.SaturationFrac)
	return tr.Runtime.WriteTimeline(w)
}

func runTrace(args []string) error {
	cfg, out, err := traceFlags(args)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return emitTrace(w, os.Stderr, cfg)
}
