// Command o2bench regenerates the figures and tables of "Reinventing
// Scheduling for Multicore Systems" (HotOS 2009) on the simulated AMD16
// machine, plus the ablations of the design extensions from §6.
//
// Usage:
//
//	o2bench fig4a [-quick] [-seed N]    Figure 4(a): uniform popularity
//	o2bench fig4b [-quick] [-seed N]    Figure 4(b): oscillating popularity
//	o2bench fig2                        Figure 2: cache contents maps
//	o2bench latency                     §5 latency table
//	o2bench migration [-trials N]       §5 migration cost (≈2000 cycles)
//	o2bench ablation -exp=NAME          clustering|replication|replacement|
//	                                    migcost|hetero|paths|single|all
//	o2bench all [-quick]                everything above
//
// All output goes to stdout as aligned text tables; simulation progress is
// reported on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "fig4a":
		err = runFig4(args, true)
	case "fig4b":
		err = runFig4(args, false)
	case "fig2", "cachemap":
		err = runFig2(args)
	case "latency":
		err = runLatency()
	case "migration":
		err = runMigration(args)
	case "ablation":
		err = runAblation(args)
	case "all":
		err = runAll(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "o2bench: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "o2bench: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `o2bench — reproduce the paper's evaluation

  o2bench fig4a [-quick] [-seed N]   Figure 4(a): uniform directory popularity
  o2bench fig4b [-quick] [-seed N]   Figure 4(b): oscillating popularity
  o2bench fig2                       Figure 2: cache-contents maps
  o2bench latency                    hardware latency table (§5)
  o2bench migration [-trials N]      migration cost microbenchmark (§5)
  o2bench ablation -exp=NAME         clustering|replication|replacement|migcost|hetero|paths|single|all
  o2bench all [-quick]               run everything
`)
}

func fig4Flags(args []string) (bench.Fig4Config, bool, error) {
	fs := flag.NewFlagSet("fig4", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweep (fewer points, shorter windows)")
	seed := fs.Uint64("seed", 1, "workload RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return bench.Fig4Config{}, false, err
	}
	cfg := bench.DefaultFig4Config()
	if *quick {
		cfg = bench.QuickFig4Config()
	}
	cfg.Params.Seed = *seed
	cfg.Progress = os.Stderr
	return cfg, *csv, nil
}

func runFig4(args []string, uniform bool) error {
	cfg, csv, err := fig4Flags(args)
	if err != nil {
		return err
	}
	title := "Figure 4(b): file system results, oscillated directory popularity"
	runner := bench.Fig4b
	if uniform {
		title = "Figure 4(a): file system results, uniform directory popularity"
		runner = bench.Fig4a
	}
	rows, err := runner(cfg)
	if err != nil {
		return err
	}
	if csv {
		bench.WriteFig4CSV(os.Stdout, rows)
		return nil
	}
	bench.WriteFig4Table(os.Stdout, title, rows)
	return nil
}

func runFig2(args []string) error {
	cfg := bench.DefaultFig2Config()
	base, o2, err := bench.Fig2(cfg)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 2: cache contents for the directory-lookup workload")
	bench.WriteCacheMap(os.Stdout, cfg.Machine, base)
	fmt.Println()
	bench.WriteCacheMap(os.Stdout, cfg.Machine, o2)
	return nil
}

func runLatency() error {
	rows, err := bench.LatencyTable()
	if err != nil {
		return err
	}
	bench.WriteLatencyTable(os.Stdout, rows)
	return nil
}

func runMigration(args []string) error {
	fs := flag.NewFlagSet("migration", flag.ContinueOnError)
	trials := fs.Int("trials", 128, "migration round trips to average")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := bench.MigrationCost(*trials)
	if err != nil {
		return err
	}
	bench.WriteMigrationResult(os.Stdout, r)
	return nil
}

func runAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ContinueOnError)
	exp := fs.String("exp", "all", "clustering|replication|replacement|migcost|hetero|paths|single|all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	type abl struct {
		name  string
		title string
		run   func() ([]bench.AblationRow, error)
	}
	all := []abl{
		{"clustering", "A1: object clustering (§6.2)", bench.AblationClustering},
		{"replication", "A2: read-only replication (§6.2)", bench.AblationReplication},
		{"replacement", "A3: over-capacity replacement policy (§6.2)", bench.AblationReplacement},
		{"migcost", "A4: migration-cost sensitivity (§6.1)", bench.AblationMigrationCost},
		{"hetero", "A5: heterogeneous cores (§6.1)", bench.AblationHeterogeneous},
		{"paths", "A6: clustering on hierarchical path resolution (§6.2)", bench.AblationPathClustering},
		{"single", "A7: single-threaded application using the whole chip's caches (§1)", bench.AblationSingleThread},
	}
	ran := false
	for _, a := range all {
		if *exp != "all" && *exp != a.name {
			continue
		}
		rows, err := a.run()
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		bench.WriteAblation(os.Stdout, a.title, rows)
		fmt.Println()
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown ablation %q", *exp)
	}
	return nil
}

func runAll(args []string) error {
	if err := runLatency(); err != nil {
		return err
	}
	fmt.Println()
	if err := runMigration(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig2(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig4(args, true); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig4(args, false); err != nil {
		return err
	}
	fmt.Println()
	return runAblation([]string{"-exp=all"})
}
