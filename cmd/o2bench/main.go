// Command o2bench regenerates the figures and tables of "Reinventing
// Scheduling for Multicore Systems" (HotOS 2009) on the simulated AMD16
// machine, plus the ablations of the design extensions from §6. It is a
// thin wrapper over the public repro/o2 package.
//
// Usage:
//
//	o2bench [-cpuprofile F] [-memprofile F] COMMAND [flags]
//
//	o2bench fig4a [-quick] [-seed N] [-workers N] [-repeats N] [-json]
//	                                    Figure 4(a): uniform popularity
//	o2bench fig4b [-quick] [-seed N] [-workers N] [-repeats N] [-json]
//	                                    Figure 4(b): oscillating popularity
//	o2bench fig2 [-dirs N] [-threads N] Figure 2: cache contents maps
//	o2bench kv [-quick] [-seed N] [-workers N] [-repeats N] [-json]
//	                                    KVService scenario: shard-placement
//	                                    policies under Zipf load mixes
//	o2bench web [-quick] [-seed N] [-workers N] [-repeats N] [-json]
//	                                    WebService scenario: open-loop tail
//	                                    latency under compaction interference
//	o2bench soak [-quick] [-seed N] [-workers N] [-repeats N] [-json]
//	                                    engine endurance: one million
//	                                    direct-handoff requests per cell
//	o2bench scale [-quick] [-seed N] [-workers N] [-repeats N] [-json]
//	                                    big-machine sweep: 16-256 cores ×
//	                                    service × policy on the NUMA family
//	o2bench trace [-quick] [-seed N] [-interval C] [-out FILE]
//	                                    telemetry timeline of one open-loop
//	                                    cell as Chrome trace-event JSON
//	o2bench latency                     §5 latency table
//	o2bench migration [-trials N]       §5 migration cost (≈2000 cycles)
//	o2bench ablation -exp=NAME          clustering|replication|replacement|
//	                                    migcost|hetero|paths|single|all
//	o2bench all [-quick]                everything above
//
// The fig4, kv, and web sweeps run on the o2.Sweep engine: -workers bounds the worker
// pool (default: all host CPUs), -repeats measures every grid cell that
// many times with distinct derived seeds and reports mean±stddev, and
// -json emits the machine-readable per-cell sweep results (schema pinned
// by the golden test in this package) instead of the aligned table.
//
// The global -cpuprofile and -memprofile flags (before the command) write
// pprof profiles covering the whole run; see DESIGN.md, "Profiling the
// simulator".
//
// All other output goes to stdout as aligned text tables; simulation
// progress is reported on stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/o2"
)

func main() {
	global := flag.NewFlagSet("o2bench", flag.ExitOnError)
	global.Usage = usage
	cpuprofile := global.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := global.String("memprofile", "", "write a heap profile to this file on exit")
	// Parse stops at the first non-flag argument: the command.
	if err := global.Parse(os.Args[1:]); err != nil || global.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := global.Arg(0), global.Args()[1:]

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "o2bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "o2bench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
	}

	err := run(cmd, args)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "o2bench: %v\n", ferr)
			os.Exit(1)
		}
		runtime.GC() // materialize the final live heap
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fmt.Fprintf(os.Stderr, "o2bench: writing heap profile: %v\n", werr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "o2bench: %v\n", err)
		if errors.Is(err, errUnknownCommand) {
			os.Exit(2) // usage errors keep the flag package's exit status
		}
		os.Exit(1)
	}
}

// errUnknownCommand marks a usage error, so main can exit 2 (matching
// the global flag-parse path) after the profile bracket closes.
var errUnknownCommand = errors.New("unknown command")

// run dispatches one subcommand; profiling brackets it in main.
func run(cmd string, args []string) error {
	switch cmd {
	case "fig4a":
		return runFig4(args, true)
	case "fig4b":
		return runFig4(args, false)
	case "fig2", "cachemap":
		return runFig2(args)
	case "kv":
		return runKV(args)
	case "web":
		return runWeb(args)
	case "soak":
		return runSoak(args)
	case "scale":
		return runScale(args)
	case "trace":
		return runTrace(args)
	case "latency":
		return runLatency()
	case "migration":
		return runMigration(args)
	case "ablation":
		return runAblation(args)
	case "all":
		return runAll(args)
	case "help":
		usage()
		return nil
	default:
		// Return instead of exiting: main must still stop the CPU
		// profile and write the heap profile after run comes back.
		usage()
		return fmt.Errorf("%w %q", errUnknownCommand, cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `o2bench — reproduce the paper's evaluation

  o2bench [-cpuprofile FILE] [-memprofile FILE] COMMAND [flags]

  o2bench fig4a [-quick] [-seed N] [-workers N] [-repeats N] [-json|-csv]
                                     Figure 4(a): uniform directory popularity
  o2bench fig4b [-quick] [-seed N] [-workers N] [-repeats N] [-json|-csv]
                                     Figure 4(b): oscillating popularity
  o2bench fig2 [-dirs N] [-entries N] [-threads N] [-seed N]
                                     Figure 2: cache-contents maps
  o2bench kv [-quick] [-seed N] [-workers N] [-repeats N] [-json|-csv]
                                     KVService scenario: placement policies on a sharded store
  o2bench web [-quick] [-seed N] [-workers N] [-repeats N] [-json|-csv]
                                     WebService scenario: open-loop request latency tails
                                     under background compaction interference
  o2bench soak [-quick] [-seed N] [-workers N] [-repeats N] [-json|-csv]
                                     engine endurance: one million direct-handoff requests per cell
  o2bench scale [-quick] [-seed N] [-workers N] [-repeats N] [-json|-csv]
                                     big-machine sweep: 16-256 cores x service x policy,
                                     per-core working sets, saturating NUMA bandwidth
  o2bench trace [-quick] [-seed N] [-interval C] [-out FILE]
                                     telemetry timeline: one open-loop NUMA256 cell under
                                     bandwidth-aware CoreTime, exported as Chrome trace-event
                                     JSON for chrome://tracing / Perfetto
  o2bench latency                    hardware latency table (§5)
  o2bench migration [-trials N]      migration cost microbenchmark (§5)
  o2bench ablation -exp=NAME         clustering|replication|replacement|migcost|hetero|paths|single|all
  o2bench all [-quick]               run everything
`)
}

// outFormat selects how a sweep subcommand renders its results.
type outFormat int

const (
	formatTable outFormat = iota
	formatCSV
	formatJSON
)

// parseFormat folds the -json/-csv flags into one format.
func parseFormat(jsonOut, csv bool) (outFormat, error) {
	switch {
	case jsonOut && csv:
		return formatTable, fmt.Errorf("-json and -csv are mutually exclusive")
	case jsonOut:
		return formatJSON, nil
	case csv:
		return formatCSV, nil
	}
	return formatTable, nil
}

func fig4Flags(args []string) (o2.Fig4Config, outFormat, error) {
	fs := flag.NewFlagSet("fig4", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweep (fewer points, shorter windows)")
	seed := fs.Uint64("seed", 1, "workload RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-cell sweep results")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all host CPUs)")
	repeats := fs.Int("repeats", 1, "measurements per grid cell (mean/stddev reported)")
	if err := fs.Parse(args); err != nil {
		return o2.Fig4Config{}, formatTable, err
	}
	cfg := o2.DefaultFig4Config()
	if *quick {
		cfg = o2.QuickFig4Config()
	}
	cfg.Params.Seed = *seed
	cfg.Workers = *workers
	cfg.Repeats = *repeats
	cfg.Progress = os.Stderr
	format, err := parseFormat(*jsonOut, *csv)
	if err != nil {
		return o2.Fig4Config{}, formatTable, err
	}
	return cfg, format, nil
}

// emitFig4 runs the Figure-4 sweep and renders it to w in the requested
// format. Split from runFig4 so the golden test can pin the -json schema
// on a reduced configuration.
func emitFig4(w io.Writer, cfg o2.Fig4Config, uniform bool, format outFormat) error {
	title := "Figure 4(b): file system results, oscillated directory popularity"
	prepare := o2.Fig4bSweep
	if uniform {
		title = "Figure 4(a): file system results, uniform directory popularity"
		prepare = o2.Fig4aSweep
	}
	cfg, sweep := prepare(cfg)
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	if format == formatJSON {
		return res.WriteJSON(w)
	}
	rows, err := o2.Fig4Rows(cfg, res)
	if err != nil {
		return err
	}
	if format == formatCSV {
		o2.WriteFig4CSV(w, rows)
		return nil
	}
	o2.WriteFig4Table(w, title, rows)
	return nil
}

// kvFlags parses the kv subcommand's flags.
func kvFlags(args []string) (o2.KVConfig, outFormat, error) {
	fs := flag.NewFlagSet("kv", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweep (Tiny8 machine, kilobyte-scale store)")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-cell sweep results")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all host CPUs)")
	repeats := fs.Int("repeats", 1, "measurements per grid cell (mean/stddev reported)")
	if err := fs.Parse(args); err != nil {
		return o2.KVConfig{}, formatTable, err
	}
	cfg := o2.DefaultKVConfig()
	if *quick {
		cfg = o2.QuickKVConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Repeats = *repeats
	cfg.Progress = os.Stderr
	format, err := parseFormat(*jsonOut, *csv)
	if err != nil {
		return o2.KVConfig{}, formatTable, err
	}
	return cfg, format, nil
}

// emitKV runs the KVService sweep and renders it to w. Split from runKV
// so the golden test can pin the -json schema on a reduced configuration.
func emitKV(w io.Writer, cfg o2.KVConfig, format outFormat) error {
	cfg, sweep := o2.KVSweep(cfg)
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	switch format {
	case formatJSON:
		return res.WriteJSON(w)
	case formatCSV:
		o2.WriteKVCSV(w, res)
		return nil
	}
	title := fmt.Sprintf("KVService: sharded key-value store on %s (%d shards × %d KB, %d keys)",
		cfg.Machine.Name(), cfg.Spec.Shards, cfg.Spec.ShardBytes()/1024, cfg.Spec.Keys)
	o2.WriteKVTable(w, title, res)
	return nil
}

func runKV(args []string) error {
	cfg, format, err := kvFlags(args)
	if err != nil {
		return err
	}
	return emitKV(os.Stdout, cfg, format)
}

// webFlags parses the web subcommand's flags.
func webFlags(args []string) (o2.WebConfig, outFormat, error) {
	fs := flag.NewFlagSet("web", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweep (Tiny8 machine, kilobyte-scale document tree)")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-cell sweep results")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all host CPUs)")
	repeats := fs.Int("repeats", 1, "measurements per grid cell (mean/stddev reported)")
	if err := fs.Parse(args); err != nil {
		return o2.WebConfig{}, formatTable, err
	}
	cfg := o2.DefaultWebConfig()
	if *quick {
		cfg = o2.QuickWebConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Repeats = *repeats
	cfg.Progress = os.Stderr
	format, err := parseFormat(*jsonOut, *csv)
	if err != nil {
		return o2.WebConfig{}, formatTable, err
	}
	return cfg, format, nil
}

// emitWeb runs the WebService sweep and renders it to w. Split from
// runWeb so the golden test can pin the -json schema on a reduced
// configuration.
func emitWeb(w io.Writer, cfg o2.WebConfig, format outFormat) error {
	cfg, sweep := o2.WebSweep(cfg)
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	switch format {
	case formatJSON:
		return res.WriteJSON(w)
	case formatCSV:
		o2.WriteWebCSV(w, res)
		return nil
	}
	title := fmt.Sprintf("WebService: open-loop name resolution on %s (%d vhosts × %d files, %d KB of metadata)",
		cfg.Machine.Name(), cfg.Spec.DocRoots, cfg.Spec.FilesPerRoot, cfg.Spec.MetadataBytes()/1024)
	o2.WriteWebTable(w, title, res)
	return nil
}

func runWeb(args []string) error {
	cfg, format, err := webFlags(args)
	if err != nil {
		return err
	}
	return emitWeb(os.Stdout, cfg, format)
}

// soakFlags parses the soak subcommand's flags.
func soakFlags(args []string) (o2.WebConfig, outFormat, error) {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced soak (Tiny8 machine, 50k requests per cell)")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-cell sweep results")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all host CPUs)")
	repeats := fs.Int("repeats", 1, "measurements per grid cell (mean/stddev reported)")
	if err := fs.Parse(args); err != nil {
		return o2.WebConfig{}, formatTable, err
	}
	cfg := o2.SoakWebConfig()
	if *quick {
		cfg = o2.QuickSoakWebConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Repeats = *repeats
	cfg.Progress = os.Stderr
	format, err := parseFormat(*jsonOut, *csv)
	if err != nil {
		return o2.WebConfig{}, formatTable, err
	}
	return cfg, format, nil
}

// emitSoak runs the million-request endurance sweep and renders it to w.
// Split from runSoak so tests can pin the output on the quick
// configuration.
func emitSoak(w io.Writer, cfg o2.WebConfig, format outFormat) error {
	cfg, sweep := o2.WebSweep(cfg)
	sweep.Name = "soak"
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	switch format {
	case formatJSON:
		return res.WriteJSON(w)
	case formatCSV:
		o2.WriteWebCSV(w, res)
		return nil
	}
	title := fmt.Sprintf("Soak: %d direct-handoff requests per cell on %s (%d vhosts × %d files)",
		cfg.Load.Requests, cfg.Machine.Name(), cfg.Spec.DocRoots, cfg.Spec.FilesPerRoot)
	o2.WriteWebTable(w, title, res)
	return nil
}

func runSoak(args []string) error {
	cfg, format, err := soakFlags(args)
	if err != nil {
		return err
	}
	return emitSoak(os.Stdout, cfg, format)
}

// scaleFlags parses the scale subcommand's flags.
func scaleFlags(args []string) (o2.ScaleConfig, outFormat, error) {
	fs := flag.NewFlagSet("scale", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweep (16- and 64-core machines, shorter windows)")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-cell sweep results")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all host CPUs)")
	repeats := fs.Int("repeats", 1, "measurements per grid cell (mean/stddev reported)")
	if err := fs.Parse(args); err != nil {
		return o2.ScaleConfig{}, formatTable, err
	}
	cfg := o2.DefaultScaleConfig()
	if *quick {
		cfg = o2.QuickScaleConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Repeats = *repeats
	cfg.Progress = os.Stderr
	format, err := parseFormat(*jsonOut, *csv)
	if err != nil {
		return o2.ScaleConfig{}, formatTable, err
	}
	return cfg, format, nil
}

// emitScale runs the big-machine sweep and renders it to w. Split from
// runScale so the golden test can pin the -json schema on a reduced
// configuration.
func emitScale(w io.Writer, cfg o2.ScaleConfig, format outFormat) error {
	cfg, sweep := o2.ScaleSweep(cfg)
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	switch format {
	case formatJSON:
		return res.WriteJSON(w)
	case formatCSV:
		o2.WriteScaleCSV(w, res)
		return nil
	}
	last := cfg.Machines[len(cfg.Machines)-1]
	title := fmt.Sprintf("Scale: %d machines up to %s (%d cores), per-core working sets",
		len(cfg.Machines), last.Name(), last.NumCores())
	o2.WriteScaleTable(w, title, res)
	return nil
}

func runScale(args []string) error {
	cfg, format, err := scaleFlags(args)
	if err != nil {
		return err
	}
	return emitScale(os.Stdout, cfg, format)
}

func runFig4(args []string, uniform bool) error {
	cfg, format, err := fig4Flags(args)
	if err != nil {
		return err
	}
	return emitFig4(os.Stdout, cfg, uniform, format)
}

func runFig2(args []string) error {
	cfg := o2.DefaultFig2Config()
	fs := flag.NewFlagSet("fig2", flag.ContinueOnError)
	fs.IntVar(&cfg.Dirs, "dirs", cfg.Dirs, "number of directories")
	fs.IntVar(&cfg.EntriesPerDir, "entries", cfg.EntriesPerDir, "entries per directory (32 bytes each)")
	fs.IntVar(&cfg.Threads, "threads", cfg.Threads, "worker threads")
	fs.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "workload RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base, ct, err := o2.Fig2(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Figure 2: cache contents, %d directories × %d entries on %s\n\n",
		cfg.Dirs, cfg.EntriesPerDir, cfg.Machine.Name())
	o2.WriteCacheMap(os.Stdout, cfg.Machine, base)
	fmt.Println()
	o2.WriteCacheMap(os.Stdout, cfg.Machine, ct)
	return nil
}

func runLatency() error {
	rows, err := o2.LatencyTable()
	if err != nil {
		return err
	}
	o2.WriteLatencyTable(os.Stdout, rows)
	return nil
}

func runMigration(args []string) error {
	fs := flag.NewFlagSet("migration", flag.ContinueOnError)
	trials := fs.Int("trials", 128, "migration round trips to average")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := o2.MigrationCost(*trials)
	if err != nil {
		return err
	}
	o2.WriteMigrationResult(os.Stdout, r)
	return nil
}

func runAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ContinueOnError)
	exp := fs.String("exp", "all", "clustering|replication|replacement|migcost|hetero|paths|single|all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ran := false
	for _, a := range o2.Ablations() {
		if *exp != "all" && *exp != a.Name {
			continue
		}
		rows, err := a.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		o2.WriteAblation(os.Stdout, a.Title, rows)
		fmt.Println()
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown ablation %q", *exp)
	}
	return nil
}

func runAll(args []string) error {
	if err := runLatency(); err != nil {
		return err
	}
	fmt.Println()
	if err := runMigration(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig2(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig4(args, true); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig4(args, false); err != nil {
		return err
	}
	fmt.Println()
	if err := runKV(args); err != nil {
		return err
	}
	fmt.Println()
	if err := runWeb(args); err != nil {
		return err
	}
	fmt.Println()
	if err := runScale(args); err != nil {
		return err
	}
	fmt.Println()
	return runAblation([]string{"-exp=all"})
}
