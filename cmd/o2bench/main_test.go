package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/o2"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenFig4Config is a reduced, fully deterministic Figure-4 sweep: small
// machine, two grid points, two repeats. It exists to pin the -json output
// schema, not to reproduce the paper's numbers.
func goldenFig4Config() o2.Fig4Config {
	p := o2.DefaultRunParams()
	p.Threads = 4
	p.Warmup = 200_000
	p.Measure = 400_000
	p.Seed = 7
	return o2.Fig4Config{
		Machine:       o2.Tiny8,
		DirCounts:     []int{2, 6},
		EntriesPerDir: 128,
		Params:        p,
		Repeats:       2,
		Workers:       4,
	}
}

// TestFig4JSONGolden pins the o2bench -json sweep schema: field names,
// nesting, metric keys, and the simulation's deterministic values. If the
// schema changes intentionally, regenerate with `go test ./cmd/o2bench
// -run TestFig4JSONGolden -update` and review the diff.
func TestFig4JSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := emitFig4(&buf, goldenFig4Config(), true, fig4JSON); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "fig4_tiny.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("o2bench -json output drifted from %s.\nGot:\n%s\nWant:\n%s\nIf intentional, rerun with -update and review.",
			golden, buf.Bytes(), want)
	}
}

// TestFig4JSONWorkerInvariance reruns the golden sweep at -workers=1 and
// checks the bytes match the golden file exactly: the JSON schema AND the
// values must be independent of the worker count.
func TestFig4JSONWorkerInvariance(t *testing.T) {
	cfg := goldenFig4Config()
	cfg.Workers = 1
	var buf bytes.Buffer
	if err := emitFig4(&buf, cfg, true, fig4JSON); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "fig4_tiny.json"))
	if err != nil {
		t.Skip("golden file missing; TestFig4JSONGolden generates it")
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("-workers=1 JSON differs from the golden (-workers=4) output")
	}
}

// TestFig4TableSmoke checks the human-readable formats still render from
// the same sweep path.
func TestFig4TableSmoke(t *testing.T) {
	cfg := goldenFig4Config()
	var table, csv bytes.Buffer
	if err := emitFig4(&table, cfg, true, fig4Table); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(table.Bytes(), []byte("without-CT")) || !bytes.Contains(table.Bytes(), []byte("±")) {
		t.Errorf("table output missing headers or repeat stddev:\n%s", table.String())
	}
	if err := emitFig4(&csv, cfg, true, fig4CSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("stddev_with_ct")) {
		t.Errorf("csv header drifted:\n%s", csv.String())
	}
}
