package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/o2"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenFig4Config is a reduced, fully deterministic Figure-4 sweep: small
// machine, two grid points, two repeats. It exists to pin the -json output
// schema, not to reproduce the paper's numbers.
func goldenFig4Config() o2.Fig4Config {
	p := o2.DefaultRunParams()
	p.Threads = 4
	p.Warmup = 200_000
	p.Measure = 400_000
	p.Seed = 7
	return o2.Fig4Config{
		Machine:       o2.Tiny8,
		DirCounts:     []int{2, 6},
		EntriesPerDir: 128,
		Params:        p,
		Repeats:       2,
		Workers:       4,
	}
}

// TestFig4JSONGolden pins the o2bench -json sweep schema: field names,
// nesting, metric keys, and the simulation's deterministic values. If the
// schema changes intentionally, regenerate with `go test ./cmd/o2bench
// -run TestFig4JSONGolden -update` and review the diff.
func TestFig4JSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := emitFig4(&buf, goldenFig4Config(), true, formatJSON); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "fig4_tiny.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("o2bench -json output drifted from %s.\nGot:\n%s\nWant:\n%s\nIf intentional, rerun with -update and review.",
			golden, buf.Bytes(), want)
	}
}

// TestFig4JSONWorkerInvariance reruns the golden sweep at -workers=1 and
// checks the bytes match the golden file exactly: the JSON schema AND the
// values must be independent of the worker count.
func TestFig4JSONWorkerInvariance(t *testing.T) {
	cfg := goldenFig4Config()
	cfg.Workers = 1
	var buf bytes.Buffer
	if err := emitFig4(&buf, cfg, true, formatJSON); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "fig4_tiny.json"))
	if err != nil {
		t.Skip("golden file missing; TestFig4JSONGolden generates it")
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("-workers=1 JSON differs from the golden (-workers=4) output")
	}
}

// goldenKVConfig is a reduced, fully deterministic KVService sweep:
// Tiny8 machine, a kilobyte-scale store, two mixes × two skews × all
// four placement policies, two repeats. It exists to pin the
// `o2bench kv -json` output schema and the load generator's determinism
// contract, not to reproduce full-scale numbers.
func goldenKVConfig() o2.KVConfig {
	cfg := o2.QuickKVConfig()
	cfg.Spec = o2.KVSpec{Shards: 8, SlotsPerShard: 64, SlotBytes: 64, Keys: 1 << 12}
	cfg.Load = o2.KVLoad{Clients: 8, OpsPerClient: 150}
	cfg.Skews = []float64{0, 0.99}
	cfg.Repeats = 2
	cfg.Workers = 4
	cfg.Seed = 7
	return cfg
}

// TestKVJSONGolden pins the o2bench kv -json sweep schema and values. If
// the schema or the simulation changes intentionally, regenerate with
// `go test ./cmd/o2bench -run TestKVJSONGolden -update` and review the
// diff.
func TestKVJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := emitKV(&buf, goldenKVConfig(), formatJSON); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "kv_tiny.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("o2bench kv -json output drifted from %s.\nGot:\n%s\nWant:\n%s\nIf intentional, rerun with -update and review.",
			golden, buf.Bytes(), want)
	}
}

// TestKVJSONWorkerInvariance reruns the golden KV sweep at -workers 1
// and at -workers NumCPU and checks both byte streams match the golden
// file exactly: the KVService load generator's determinism contract —
// results are a pure function of the grid, never of the host.
func TestKVJSONWorkerInvariance(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "kv_tiny.json"))
	if err != nil {
		t.Skip("golden file missing; TestKVJSONGolden generates it")
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		cfg := goldenKVConfig()
		cfg.Workers = workers
		var buf bytes.Buffer
		if err := emitKV(&buf, cfg, formatJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("-workers=%d JSON differs from the golden (-workers=4) output", workers)
		}
	}
}

// goldenWebConfig is a reduced, fully deterministic WebService sweep:
// Tiny8 machine, a small document tree, two arrival rates (one under and
// one past saturation) × two compaction shares × all four placement
// policies, two repeats. It exists to pin the `o2bench web -json` output
// schema and the open-loop driver's determinism contract — arrival
// schedules, queue/drop accounting, and merged latency histograms must be
// a pure function of the grid — not to reproduce full-scale numbers.
func goldenWebConfig() o2.WebConfig {
	cfg := o2.QuickWebConfig()
	cfg.Spec = o2.WebSpec{DocRoots: 8, FilesPerRoot: 64}
	cfg.Load.Requests = 200
	cfg.Rates = []float64{500_000, 4_000_000}
	cfg.CompactionShares = []float64{0, 0.5}
	cfg.Repeats = 2
	cfg.Workers = 4
	cfg.Seed = 7
	return cfg
}

// TestWebJSONGolden pins the o2bench web -json sweep schema and values.
// If the schema or the simulation changes intentionally, regenerate with
// `go test ./cmd/o2bench -run TestWebJSONGolden -update` and review the
// diff.
func TestWebJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := emitWeb(&buf, goldenWebConfig(), formatJSON); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "web_tiny.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("o2bench web -json output drifted from %s.\nGot:\n%s\nWant:\n%s\nIf intentional, rerun with -update and review.",
			golden, buf.Bytes(), want)
	}
}

// TestWebJSONWorkerInvariance reruns the golden web sweep at -workers 1
// and at -workers NumCPU and checks both byte streams match the golden
// file exactly: the open-loop driver's determinism contract — results are
// a pure function of the grid, never of the host.
func TestWebJSONWorkerInvariance(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "web_tiny.json"))
	if err != nil {
		t.Skip("golden file missing; TestWebJSONGolden generates it")
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		cfg := goldenWebConfig()
		cfg.Workers = workers
		var buf bytes.Buffer
		if err := emitWeb(&buf, cfg, formatJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("-workers=%d JSON differs from the golden (-workers=4) output", workers)
		}
	}
}

// goldenScaleConfig is a reduced, fully deterministic scale sweep that
// still spans the interesting extremes: the 8-core Tiny8 machine and the
// 256-core NUMA256 machine — the latter exercising the multi-word sharer
// bitset and the saturating bandwidth meters under the sweep engine —
// across both services and both policies, two repeats. It exists to pin
// the `o2bench scale -json` schema and the big-machine determinism
// contract (a NUMA256 cell must be a pure function of the grid), not to
// reproduce full-scale numbers.
func goldenScaleConfig() o2.ScaleConfig {
	cfg := o2.QuickScaleConfig()
	cfg.Machines = []o2.Topology{o2.Tiny8, o2.NUMA256}
	cfg.DirsPerCore = 2
	cfg.EntriesPerDir = 64
	cfg.Params.Warmup = 100_000
	cfg.Params.Measure = 200_000
	cfg.ShardsPerCore = 1
	cfg.SlotsPerShard = 32
	cfg.Load.OpsPerClient = 30
	cfg.Repeats = 2
	cfg.Workers = 4
	cfg.Seed = 7
	return cfg
}

// TestScaleJSONGolden pins the o2bench scale -json sweep schema and
// values. If the schema or the simulation changes intentionally,
// regenerate with `go test ./cmd/o2bench -run TestScaleJSONGolden
// -update` and review the diff.
func TestScaleJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := emitScale(&buf, goldenScaleConfig(), formatJSON); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "scale_tiny.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("o2bench scale -json output drifted from %s.\nGot:\n%s\nWant:\n%s\nIf intentional, rerun with -update and review.",
			golden, buf.Bytes(), want)
	}
}

// TestScaleJSONWorkerInvariance reruns the golden scale sweep at
// -workers 1 and at -workers NumCPU and checks both byte streams match
// the golden file exactly. This is the 256-core determinism gate: the
// wide-directory fan-out, the bandwidth queueing, and the per-core
// workload sizing must all be pure functions of the grid, never of the
// host.
func TestScaleJSONWorkerInvariance(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "scale_tiny.json"))
	if err != nil {
		t.Skip("golden file missing; TestScaleJSONGolden generates it")
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		cfg := goldenScaleConfig()
		cfg.Workers = workers
		var buf bytes.Buffer
		if err := emitScale(&buf, cfg, formatJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("-workers=%d JSON differs from the golden (-workers=4) output", workers)
		}
	}
}

// TestScaleTableSmoke checks the scale table and CSV renderers on the
// same sweep path.
func TestScaleTableSmoke(t *testing.T) {
	cfg := goldenScaleConfig()
	var table, csv bytes.Buffer
	if err := emitScale(&table, cfg, formatTable); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"machine", "service", "policy", "kops/sec/core", "numa256", "dirlookup", "±"} {
		if !bytes.Contains(table.Bytes(), []byte(want)) {
			t.Errorf("scale table output missing %q:\n%s", want, table.String())
		}
	}
	if err := emitScale(&csv, cfg, formatCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("kops_per_sec,kops_stddev,per_core_kops,migrations")) {
		t.Errorf("scale csv header drifted:\n%s", csv.String())
	}
}

// TestWebTableSmoke checks the web table and CSV renderers on the same
// sweep path.
func TestWebTableSmoke(t *testing.T) {
	cfg := goldenWebConfig()
	var table, csv bytes.Buffer
	if err := emitWeb(&table, cfg, formatTable); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rps", "compaction", "policy", "p99 (cycles)", "coretime+repl", "±"} {
		if !bytes.Contains(table.Bytes(), []byte(want)) {
			t.Errorf("web table output missing %q:\n%s", want, table.String())
		}
	}
	if err := emitWeb(&csv, cfg, formatCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("offered_krps,achieved_krps,drop_rate,p50_cycles")) {
		t.Errorf("web csv header drifted:\n%s", csv.String())
	}
}

// TestKVTableSmoke checks the kv table and CSV renderers on the same
// sweep path.
func TestKVTableSmoke(t *testing.T) {
	cfg := goldenKVConfig()
	var table, csv bytes.Buffer
	if err := emitKV(&table, cfg, formatTable); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"policy", "kops/sec", "coretime+repl", "±"} {
		if !bytes.Contains(table.Bytes(), []byte(want)) {
			t.Errorf("kv table output missing %q:\n%s", want, table.String())
		}
	}
	if err := emitKV(&csv, cfg, formatCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("kops_per_sec,kops_stddev")) {
		t.Errorf("kv csv header drifted:\n%s", csv.String())
	}
}

// TestFig4TableSmoke checks the human-readable formats still render from
// the same sweep path.
func TestFig4TableSmoke(t *testing.T) {
	cfg := goldenFig4Config()
	var table, csv bytes.Buffer
	if err := emitFig4(&table, cfg, true, formatTable); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(table.Bytes(), []byte("without-CT")) || !bytes.Contains(table.Bytes(), []byte("±")) {
		t.Errorf("table output missing headers or repeat stddev:\n%s", table.String())
	}
	if err := emitFig4(&csv, cfg, true, formatCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("stddev_with_ct")) {
		t.Errorf("csv header drifted:\n%s", csv.String())
	}
}
