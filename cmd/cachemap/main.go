// Command cachemap reproduces Figure 2 of the paper: the cache contents of
// the directory-lookup workload under a traditional thread scheduler and
// under the O2 scheduler, rendered as per-core/per-chip occupancy maps.
//
//	cachemap [-dirs N] [-entries N] [-threads N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	dirs := flag.Int("dirs", 20, "number of directories (the paper's Fig. 2 shows 20)")
	entries := flag.Int("entries", 128, "entries per directory (32 bytes each)")
	threads := flag.Int("threads", 8, "worker threads")
	seed := flag.Uint64("seed", 1, "workload RNG seed")
	flag.Parse()

	cfg := bench.DefaultFig2Config()
	cfg.Dirs = *dirs
	cfg.EntriesPerDir = *entries
	cfg.Threads = *threads
	cfg.Seed = *seed

	base, o2, err := bench.Fig2(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cachemap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# Figure 2: cache contents, %d directories × %d entries on %s\n\n",
		cfg.Dirs, cfg.EntriesPerDir, cfg.Machine.Name)
	bench.WriteCacheMap(os.Stdout, cfg.Machine, base)
	fmt.Println()
	bench.WriteCacheMap(os.Stdout, cfg.Machine, o2)
}
