module repro

go 1.24

// o2lint is installed as a module tool (go tool o2lint) so the lint CI
// job runs the exact analyzer revision committed with the tree.
tool repro/cmd/o2lint
