// Hot-path benchmarks for the simulator itself (as opposed to the
// paper-figure benchmarks in bench_test.go): BenchmarkFig4Cell times one
// grid cell of the Figure-4 sweep end to end, the unit of work the sweep
// engine parallelizes. Before/after numbers for the memory-data-path
// refactor are recorded in BENCH_hotpath.json.
package repro_test

import (
	"testing"

	"repro/o2"
)

// BenchmarkFig4Cell measures a single Figure-4 sweep cell on the tiny8
// machine: build the directory tree, run baseline and CoreTime
// measurements, exactly as one worker of the sweep engine would.
func BenchmarkFig4Cell(b *testing.B) {
	exp := o2.Experiment{
		Machine: o2.Tiny8,
		Tree:    o2.DirSpec{Dirs: 8, EntriesPerDir: 512},
	}
	p := o2.DefaultRunParams()
	p.Threads = 8
	p.Warmup = 400_000
	p.Measure = 800_000
	p.Seed = 7
	exp.Params = p
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(o2.WithScheduler(o2.CoreTime))
		if err != nil {
			b.Fatal(err)
		}
		sink += res.KResPerSec
	}
	if sink == 0 {
		b.Fatal("benchmark produced no resolutions")
	}
}
