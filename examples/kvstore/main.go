// Kvstore: O2 scheduling beyond the file system. A sharded in-memory
// key-value store runs on the simulated machine: each shard (a hash-bucket
// region) is a CoreTime object; point reads, range scans, and writes are
// operations.
//
// The workload mixes two access patterns that pull CoreTime in opposite
// directions:
//
//   - range scans read a whole shard: placement wins (scan the shard where
//     it is cached instead of pulling it through the interconnect);
//   - point reads hammer one hot shard: placement loses (every read
//     funnels through one core), and the §6.2 read-only replication
//     extension resolves the tension by giving each chip its own copy.
//
// Run with:
//
//	go run ./examples/kvstore [-shards N] [-hot 0.6] [-scans 0.4] [-puts 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

const (
	shardBytes = 8 << 10 // 128 slots × 64 B
	slotBytes  = 64
)

// store is a toy sharded hash map living in simulated memory. Keys are
// uint64; each shard is a contiguous array of 64-byte slots registered as
// one CoreTime object.
type store struct {
	m      *machine.Machine
	shards []*mem.Object
}

func newStore(m *machine.Machine, shards int) (*store, error) {
	s := &store{m: m}
	for i := 0; i < shards; i++ {
		obj, err := m.Image().AllocObject(fmt.Sprintf("shard%02d", i), shardBytes)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, obj)
	}
	return s, nil
}

func (s *store) shardOf(key uint64) *mem.Object {
	return s.shards[int(key%uint64(len(s.shards)))]
}

// slotAddr picks the slot within the shard by open addressing on the key.
func (s *store) slotAddr(obj *mem.Object, key uint64) mem.Addr {
	slots := uint64(obj.Size / slotBytes)
	return obj.Base + mem.Addr((key/uint64(len(s.shards))%slots)*slotBytes)
}

// get probes a run of collision slots (open addressing) and
// deserializes the value.
func (s *store) get(t *exec.Thread, key uint64) {
	obj := s.shardOf(key)
	a := s.slotAddr(obj, key)
	probe := 8 * slotBytes
	if a+mem.Addr(probe) > obj.End() {
		a = obj.End() - mem.Addr(probe)
	}
	t.Load(a, probe)
	t.Compute(160) // compare keys + deserialize value
}

// scan reads the whole shard (a range query over its slots).
func (s *store) scan(t *exec.Thread, obj *mem.Object) {
	t.LoadCompute(obj.Base, int(obj.Size), 0.03)
}

// put writes the slot.
func (s *store) put(t *exec.Thread, key uint64) {
	obj := s.shardOf(key)
	t.Store(s.slotAddr(obj, key), slotBytes)
	t.Compute(30)
}

func main() {
	shards := flag.Int("shards", 16, "number of shards")
	scans := flag.Float64("scans", 0.4, "fraction of ops that are full-shard range scans")
	puts := flag.Float64("puts", 0.01, "fraction of ops that are writes")
	opsPer := flag.Int("ops", 3000, "operations per client thread")
	flag.Parse()

	fmt.Printf("kvstore: %d shards × %d KB; %.0f%% point reads on the hot shard, %.0f%% range scans, %.1f%% writes\n\n",
		*shards, shardBytes/1024, (1-*scans-*puts)*100, *scans*100, *puts*100)

	plain := core.DefaultOptions()
	// KV operations touch few lines compared to directory scans, so the
	// "expensive to fetch" threshold is lowered accordingly.
	plain.MissThreshold = 3
	replicated := plain
	replicated.EnableReplication = true
	replicated.ReplicateMinOps = 24
	replicated.ReplicateReadRatio = 0.90

	kopsBase := run(*shards, *scans, *puts, *opsPer, nil)
	kopsPlain := run(*shards, *scans, *puts, *opsPer, &plain)
	kopsRepl := run(*shards, *scans, *puts, *opsPer, &replicated)

	fmt.Printf("%-34s %10s\n", "configuration", "kops/sec")
	fmt.Printf("%-34s %10.0f\n", "thread scheduler", kopsBase)
	fmt.Printf("%-34s %10.0f\n", "coretime", kopsPlain)
	fmt.Printf("%-34s %10.0f\n", "coretime + read-only replication", kopsRepl)
	fmt.Printf("\nreplication speedup over plain coretime: %.2fx\n", kopsRepl/kopsPlain)
}

func run(shards int, scans, puts float64, opsPer int, ctOpts *core.Options) float64 {
	eng := sim.NewEngine()
	m, err := machine.New(topology.Tiny8(), 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	sys := exec.NewSystem(eng, m, exec.DefaultOptions())
	st, err := newStore(m, shards)
	if err != nil {
		log.Fatal(err)
	}

	var ann sched.Annotator = sched.ThreadScheduler{}
	if ctOpts != nil {
		ann = core.New(sys, *ctOpts)
	}

	workers := m.Config().NumCores()
	var done sim.Time
	master := stats.NewRNG(7)
	for w := 0; w < workers; w++ {
		rng := master.Split()
		sys.Go(fmt.Sprintf("client %d", w), w, func(t *exec.Thread) {
			for i := 0; i < opsPer; i++ {
				r := rng.Float64()
				switch {
				case r < puts:
					// Point write to a random shard.
					key := rng.Uint64()
					obj := st.shardOf(key)
					ann.OpStart(t, obj.Base)
					st.put(t, key)
					ann.OpEnd(t)
				case r < puts+scans:
					// Range scan over a random shard: reads the
					// whole shard and never writes it.
					obj := st.shards[rng.Intn(shards)]
					sched.OpStartRO(ann, t, obj.Base)
					st.scan(t, obj)
					ann.OpEnd(t)
				default:
					// Point read on the hot shard.
					key := rng.Uint64() * uint64(shards) // ≡ 0 mod shards
					obj := st.shardOf(key)
					sched.OpStartRO(ann, t, obj.Base)
					st.get(t, key)
					ann.OpEnd(t)
				}
				t.Yield()
			}
			if t.Now() > done {
				done = t.Now()
			}
		})
	}
	eng.Run(0)

	total := float64(workers * opsPer)
	seconds := float64(done) / m.Config().ClockHz
	return total / seconds / 1000
}
