// Kvstore: O2 scheduling beyond the file system. A sharded in-memory
// key-value store runs on the simulated machine: each shard (a hash-bucket
// region) is a CoreTime object; point reads, range scans, and writes are
// operations. Everything goes through the public repro/o2 façade.
//
// The workload mixes two access patterns that pull CoreTime in opposite
// directions:
//
//   - range scans read a whole shard: placement wins (scan the shard where
//     it is cached instead of pulling it through the interconnect);
//   - point reads hammer one hot shard: placement loses (every read
//     funnels through one core), and the §6.2 read-only replication
//     extension resolves the tension by giving each chip its own copy.
//
// Run with:
//
//	go run ./examples/kvstore [-shards N] [-scans 0.4] [-puts 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/o2"
)

const (
	shardBytes = 8 << 10 // 128 slots × 64 B
	slotBytes  = 64
)

// store is a toy sharded hash map living in simulated memory. Keys are
// uint64; each shard is a contiguous array of 64-byte slots registered as
// one CoreTime object.
type store struct {
	shards []*o2.Object
}

func newStore(rt *o2.Runtime, shards int) (*store, error) {
	s := &store{}
	for i := 0; i < shards; i++ {
		obj, err := rt.NewObject(fmt.Sprintf("shard%02d", i), shardBytes)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, obj)
	}
	return s, nil
}

func (s *store) shardOf(key uint64) *o2.Object {
	return s.shards[int(key%uint64(len(s.shards)))]
}

// slotAddr picks the slot within the shard by open addressing on the key.
func (s *store) slotAddr(obj *o2.Object, key uint64) o2.Addr {
	slots := uint64(obj.Size() / slotBytes)
	return obj.Addr(int((key / uint64(len(s.shards)) % slots) * slotBytes))
}

// get probes a run of collision slots (open addressing) and
// deserializes the value.
func (s *store) get(t *o2.Thread, key uint64) {
	obj := s.shardOf(key)
	a := s.slotAddr(obj, key)
	probe := 8 * slotBytes
	if a+o2.Addr(probe) > obj.Addr(obj.Size()) {
		a = obj.Addr(obj.Size() - probe)
	}
	t.Load(a, probe)
	t.Compute(160) // compare keys + deserialize value
}

// scan reads the whole shard (a range query over its slots).
func (s *store) scan(t *o2.Thread, obj *o2.Object) {
	t.LoadCompute(obj.Addr(0), obj.Size(), 0.03)
}

// put writes the slot.
func (s *store) put(t *o2.Thread, key uint64) {
	obj := s.shardOf(key)
	t.Store(s.slotAddr(obj, key), slotBytes)
	t.Compute(30)
}

func main() {
	shards := flag.Int("shards", 16, "number of shards")
	scans := flag.Float64("scans", 0.4, "fraction of ops that are full-shard range scans")
	puts := flag.Float64("puts", 0.01, "fraction of ops that are writes")
	opsPer := flag.Int("ops", 3000, "operations per client thread")
	flag.Parse()

	fmt.Printf("kvstore: %d shards × %d KB; %.0f%% point reads on the hot shard, %.0f%% range scans, %.1f%% writes\n\n",
		*shards, shardBytes/1024, (1-*scans-*puts)*100, *scans*100, *puts*100)

	// KV operations touch few lines compared to directory scans, so the
	// "expensive to fetch" threshold is lowered accordingly.
	plain := []o2.Option{o2.WithMissThreshold(3)}
	replicated := append(plain[:len(plain):len(plain)],
		o2.WithReplication(true),
		o2.WithReplicationThreshold(24, 0.90),
	)

	kopsBase := run(*shards, *scans, *puts, *opsPer, o2.WithScheduler(o2.Baseline))
	kopsPlain := run(*shards, *scans, *puts, *opsPer, plain...)
	kopsRepl := run(*shards, *scans, *puts, *opsPer, replicated...)

	fmt.Printf("%-34s %10s\n", "configuration", "kops/sec")
	fmt.Printf("%-34s %10.0f\n", "thread scheduler", kopsBase)
	fmt.Printf("%-34s %10.0f\n", "coretime", kopsPlain)
	fmt.Printf("%-34s %10.0f\n", "coretime + read-only replication", kopsRepl)
	fmt.Printf("\nreplication speedup over plain coretime: %.2fx\n", kopsRepl/kopsPlain)
}

func run(shards int, scans, puts float64, opsPer int, opts ...o2.Option) float64 {
	rt, err := o2.New(append([]o2.Option{o2.WithTopology(o2.Tiny8)}, opts...)...)
	if err != nil {
		log.Fatal(err)
	}
	st, err := newStore(rt, shards)
	if err != nil {
		log.Fatal(err)
	}

	workers := rt.NumCores()
	var done o2.Time
	master := o2.NewRNG(7)
	for w := 0; w < workers; w++ {
		rng := master.Split()
		rt.Go(fmt.Sprintf("client %d", w), w, func(t *o2.Thread) {
			for i := 0; i < opsPer; i++ {
				r := rng.Float64()
				switch {
				case r < puts:
					// Point write to a random shard.
					key := rng.Uint64()
					op := t.Begin(st.shardOf(key))
					st.put(t, key)
					op.End()
				case r < puts+scans:
					// Range scan over a random shard: reads the
					// whole shard and never writes it.
					obj := st.shards[rng.Intn(shards)]
					op := t.BeginRO(obj)
					st.scan(t, obj)
					op.End()
				default:
					// Point read on the hot shard.
					key := rng.Uint64() * uint64(shards) // ≡ 0 mod shards
					op := t.BeginRO(st.shardOf(key))
					st.get(t, key)
					op.End()
				}
				t.Yield()
			}
			if t.Now() > done {
				done = t.Now()
			}
		})
	}
	rt.Run()

	total := float64(workers * opsPer)
	seconds := float64(done) / rt.ClockHz()
	return total / seconds / 1000
}
