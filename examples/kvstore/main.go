// Kvstore: O2 scheduling beyond the file system, now as a thin caller of
// the o2.KVService scenario. A sharded in-memory key-value store runs on
// the simulated machine; point gets, full-shard range scans, and puts
// arrive from closed-loop clients drawing keys from a Zipf popularity
// distribution. Each shard-placement policy is one o2.KVPolicy — a named
// bundle of runtime options — so the whole comparison is: build a
// runtime per policy, build the store, run the load.
//
// The workload mixes two access patterns that pull placement policies in
// opposite directions:
//
//   - range scans read a whole shard: placement wins (scan the shard
//     where it is cached instead of pulling it through the interconnect);
//   - skewed point reads hammer hot shards: placement loses (reads
//     funnel through one core), and the §6.2 read-only replication
//     extension resolves the tension by giving each chip its own copy.
//
// Run with:
//
//	go run ./examples/kvstore [-shards N] [-scans 0.4] [-puts 0.01] [-skew 0.99]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/o2"
)

func main() {
	shards := flag.Int("shards", 16, "number of shards")
	scans := flag.Float64("scans", 0.4, "fraction of ops that are full-shard range scans")
	puts := flag.Float64("puts", 0.01, "fraction of ops that are writes")
	skew := flag.Float64("skew", 0.99, "Zipf key-popularity skew (0 = uniform)")
	opsPer := flag.Int("ops", 600, "operations per client thread")
	flag.Parse()

	spec := o2.KVSpec{Shards: *shards, SlotsPerShard: 128, SlotBytes: 64, Keys: 1 << 16}
	load := o2.KVLoad{
		OpsPerClient: *opsPer,
		Mix:          o2.KVMix{Gets: 1 - *scans - *puts, Scans: *scans, Puts: *puts},
		Skew:         *skew,
		Seed:         7,
	}
	fmt.Printf("kvstore: %d shards × %d KB, %d keys; mix %s at Zipf skew %.2f\n\n",
		spec.Shards, spec.ShardBytes()/1024, spec.Keys, load.Mix.Label(), load.Skew)

	fmt.Printf("%-34s %10s %10s %8s\n", "placement policy", "kops/sec", "cyc/op", "hit%")
	results := map[o2.KVPolicy]o2.KVResult{}
	for _, policy := range o2.KVPolicies() {
		opts := append([]o2.Option{o2.WithTopology(o2.Tiny8), o2.WithSeed(7)}, policy.Options()...)
		rt, err := o2.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		svc, err := rt.NewKVService(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := svc.Run(load)
		if err != nil {
			log.Fatal(err)
		}
		results[policy] = res
		fmt.Printf("%-34s %10.0f %10.0f %8.1f\n",
			policy.String(), res.KOpsPerSec, res.CyclesPerOp, 100*res.CacheHitRate)
	}

	repl, ct := results[o2.KVCoreTimeReplicated], results[o2.KVCoreTime]
	base := results[o2.KVThreadScheduler]
	fmt.Printf("\ncoretime speedup over thread scheduler:    %.2fx\n", ct.KOpsPerSec/base.KOpsPerSec)
	fmt.Printf("replication speedup over thread scheduler: %.2fx\n", repl.KOpsPerSec/base.KOpsPerSec)
}
