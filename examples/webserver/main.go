// Webserver: the paper's motivating scenario. §2 notes that directory
// lookup workloads "can be a bottleneck when running a Web server" (citing
// Veal & Foong's study of multicore web-server scalability).
//
// This example is now a thin caller of the o2.WebService scenario: an
// open-loop stream of requests for paths like /DIR00012/F0000345 arrives
// at a fixed offered rate, queues in a bounded buffer, and is drained by
// worker threads that resolve each path against the FAT volume — while an
// optional background compaction thread rewrites directories out from
// under the foreground reads. The service records every request's
// enqueue→done latency, so the comparison below is about the p99 tail a
// service operator provisions for, not just mean throughput.
//
// Run with:
//
//	go run ./examples/webserver [-rps N] [-requests N] [-compaction 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/o2"
)

func main() {
	docroots := flag.Int("docroots", 24, "number of virtual-host document directories")
	files := flag.Int("files", 128, "files per directory")
	requests := flag.Int("requests", 1500, "total requests offered")
	rps := flag.Float64("rps", 1_000_000, "offered arrival rate (requests per simulated second)")
	compaction := flag.Float64("compaction", 0.5, "background compaction duty cycle in [0,1)")
	skew := flag.Float64("skew", 0.99, "Zipf vhost-popularity skew (0 = uniform)")
	seed := flag.Uint64("seed", 42, "request stream seed")
	flag.Parse()

	spec := o2.WebSpec{DocRoots: *docroots, FilesPerRoot: *files}
	load := o2.ServiceLoad{
		Requests:        *requests,
		RPS:             *rps,
		Skew:            *skew,
		CompactionShare: *compaction,
		Seed:            *seed,
	}
	fmt.Printf("webserver: %d vhosts × %d files (%d KB of metadata), %.0fk req/s offered, compaction share %.2f\n\n",
		spec.DocRoots, spec.FilesPerRoot, spec.MetadataBytes()/1024, *rps/1000, *compaction)

	fmt.Printf("%-18s %10s %10s %6s %10s %10s %10s\n",
		"scheduler", "off krps", "ach krps", "drop%", "p50", "p95", "p99")
	var base, ct o2.ServiceResult
	for _, policy := range []o2.KVPolicy{o2.KVThreadScheduler, o2.KVCoreTime} {
		opts := append([]o2.Option{o2.WithTopology(o2.Tiny8), o2.WithSeed(*seed)}, policy.Options()...)
		rt, err := o2.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		svc, err := rt.NewWebService(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := svc.Run(load)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10.0f %10.0f %6.1f %10.0f %10.0f %10.0f\n",
			res.Scheduler, res.OfferedKRPS, res.AchievedKRPS,
			100*float64(res.Dropped)/float64(res.Requests),
			res.P50, res.P95, res.P99)
		if policy == o2.KVThreadScheduler {
			base = res
		} else {
			ct = res
		}
	}
	fmt.Printf("\nlatency in simulated cycles, enqueue→done; CoreTime p99 improvement: %.2fx\n",
		base.P99/ct.P99)
}
