// Webserver: the paper's motivating scenario. §2 notes that directory
// lookup workloads "can be a bottleneck when running a Web server" (citing
// Veal & Foong's study of multicore web-server scalability).
//
// This example simulates the name-resolution stage of a static web server:
// worker threads receive requests for paths like /DIR00012/F0000345 and
// resolve them against the FAT volume (one directory-scan per path
// component). It reports throughput and request latency percentiles under
// the thread scheduler and under CoreTime.
//
// Run with:
//
//	go run ./examples/webserver [-requests N] [-docroots N] [-files N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	docroots := flag.Int("docroots", 12, "number of virtual-host document directories")
	files := flag.Int("files", 512, "files per directory")
	requests := flag.Int("requests", 400, "requests per worker")
	workers := flag.Int("workers", 8, "server worker threads")
	seed := flag.Uint64("seed", 1, "request stream seed")
	flag.Parse()

	spec := workload.DirSpec{Dirs: *docroots, EntriesPerDir: *files}
	fmt.Printf("webserver: %d workers serving %d vhosts × %d files (%d KB of metadata)\n\n",
		*workers, *docroots, *files, spec.TotalBytes()/1024)

	baseThr, baseLat := run(spec, *workers, *requests, *seed, nil)
	opts := core.DefaultOptions()
	ctThr, ctLat := run(spec, *workers, *requests, *seed, &opts)

	fmt.Printf("%-18s %14s %12s %12s %12s\n",
		"scheduler", "requests/sec", "p50 (µs)", "p95 (µs)", "p99 (µs)")
	report := func(name string, thr float64, lat []float64) {
		fmt.Printf("%-18s %14.0f %12.1f %12.1f %12.1f\n", name, thr,
			stats.Percentile(lat, 50), stats.Percentile(lat, 95), stats.Percentile(lat, 99))
	}
	report("thread-scheduler", baseThr, baseLat)
	report("coretime", ctThr, ctLat)
	fmt.Printf("\nCoreTime speedup: %.2fx\n", ctThr/baseThr)
}

// run serves `requests` requests per worker and returns throughput
// (requests per simulated second) and per-request latencies in
// microseconds of simulated time.
func run(spec workload.DirSpec, workers, requests int, seed uint64, ctOpts *core.Options) (float64, []float64) {
	env, err := workload.BuildEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
	if err != nil {
		log.Fatal(err)
	}
	var ann sched.Annotator = sched.ThreadScheduler{}
	if ctOpts != nil {
		ann = core.New(env.Sys, *ctOpts)
	}

	clock := env.Mach.Config().ClockHz
	var latencies []float64
	var done sim.Time

	homes := sched.RoundRobin(workers, env.Mach.Config().NumCores())
	master := stats.NewRNG(seed)
	for w := 0; w < workers; w++ {
		rng := master.Split()
		env.Sys.Go(fmt.Sprintf("worker %d", w), homes[w], func(t *exec.Thread) {
			for r := 0; r < requests; r++ {
				d := env.Dirs[rng.Intn(len(env.Dirs))]
				name := d.Names[rng.Intn(len(d.Names))]

				start := t.Now()
				// Parse + dispatch overhead of a request.
				t.Compute(400)
				// Resolve the path: the directory scan is the
				// operation, the directory the object (Fig. 3).
				ann.OpStart(t, d.Obj.Base)
				t.Lock(d.Lock)
				b := t.NewBatch()
				if _, err := env.FS.Lookup(b, d.Dir, name); err != nil {
					panic(err)
				}
				b.Commit()
				t.Unlock(d.Lock)
				ann.OpEnd(t)
				// Build and "send" the response headers.
				t.Compute(600)

				us := float64(t.Now()-start) / clock * 1e6
				latencies = append(latencies, us)
				if t.Now() > done {
					done = t.Now()
				}
				t.Yield()
			}
		})
	}
	env.Eng.Run(0)

	total := workers * requests
	seconds := float64(done) / clock
	return float64(total) / seconds, latencies
}
