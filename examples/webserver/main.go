// Webserver: the paper's motivating scenario. §2 notes that directory
// lookup workloads "can be a bottleneck when running a Web server" (citing
// Veal & Foong's study of multicore web-server scalability).
//
// This example simulates the name-resolution stage of a static web server:
// worker threads receive requests for paths like /DIR00012/F0000345 and
// resolve them against the FAT volume (one directory-scan per path
// component). It reports throughput and request latency percentiles under
// the thread scheduler and under CoreTime, entirely through the public
// repro/o2 façade.
//
// Run with:
//
//	go run ./examples/webserver [-requests N] [-docroots N] [-files N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/o2"
)

func main() {
	docroots := flag.Int("docroots", 12, "number of virtual-host document directories")
	files := flag.Int("files", 512, "files per directory")
	requests := flag.Int("requests", 400, "requests per worker")
	workers := flag.Int("workers", 8, "server worker threads")
	seed := flag.Uint64("seed", 1, "request stream seed")
	flag.Parse()

	spec := o2.DirSpec{Dirs: *docroots, EntriesPerDir: *files}
	fmt.Printf("webserver: %d workers serving %d vhosts × %d files (%d KB of metadata)\n\n",
		*workers, *docroots, *files, spec.TotalBytes()/1024)

	baseThr, baseLat := run(spec, *workers, *requests, *seed, o2.Baseline)
	ctThr, ctLat := run(spec, *workers, *requests, *seed, o2.CoreTime)

	fmt.Printf("%-18s %14s %12s %12s %12s\n",
		"scheduler", "requests/sec", "p50 (µs)", "p95 (µs)", "p99 (µs)")
	report := func(name string, thr float64, lat []float64) {
		fmt.Printf("%-18s %14.0f %12.1f %12.1f %12.1f\n", name, thr,
			o2.Percentile(lat, 50), o2.Percentile(lat, 95), o2.Percentile(lat, 99))
	}
	report(o2.Baseline.String(), baseThr, baseLat)
	report(o2.CoreTime.String(), ctThr, ctLat)
	fmt.Printf("\nCoreTime speedup: %.2fx\n", ctThr/baseThr)
}

// run serves `requests` requests per worker and returns throughput
// (requests per simulated second) and per-request latencies in
// microseconds of simulated time.
func run(spec o2.DirSpec, workers, requests int, seed uint64, scheduler o2.Scheduler) (float64, []float64) {
	rt, err := o2.New(o2.WithTopology(o2.Tiny8), o2.WithScheduler(scheduler))
	if err != nil {
		log.Fatal(err)
	}
	tree, err := rt.NewDirTree(spec)
	if err != nil {
		log.Fatal(err)
	}

	clock := rt.ClockHz()
	var latencies []float64
	var done o2.Time

	homes := o2.RoundRobin(workers, rt.NumCores())
	master := o2.NewRNG(seed)
	for w := 0; w < workers; w++ {
		rng := master.Split()
		rt.Go(fmt.Sprintf("worker %d", w), homes[w], func(t *o2.Thread) {
			for r := 0; r < requests; r++ {
				d := tree.Dir(rng.Intn(tree.Len()))
				name := d.EntryName(rng.Intn(d.NumEntries()))

				start := t.Now()
				// Parse + dispatch overhead of a request.
				t.Compute(400)
				// Resolve the path: the directory scan is the
				// operation, the directory the object (Fig. 3).
				op := t.Begin(d.Object())
				d.Lookup(t, name)
				op.End()
				// Build and "send" the response headers.
				t.Compute(600)

				us := float64(t.Now()-start) / clock * 1e6
				latencies = append(latencies, us)
				if t.Now() > done {
					done = t.Now()
				}
				t.Yield()
			}
		})
	}
	rt.Run()

	total := workers * requests
	seconds := float64(done) / clock
	return float64(total) / seconds, latencies
}
