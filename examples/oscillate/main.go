// Oscillate: a live view of CoreTime's runtime monitor (the mechanism
// behind Figure 4(b)). The active directory set oscillates between all
// directories and a quarter of them; the example prints a timeline of
// per-phase throughput together with the monitor's actions — placements,
// decays, and rebalancing moves — so you can watch the scheduler chase the
// working set. Built entirely on the public repro/o2 façade.
//
// Run with:
//
//	go run ./examples/oscillate [-dirs N] [-period CYCLES]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/o2"
)

func main() {
	dirs := flag.Int("dirs", 24, "number of directories")
	entries := flag.Int("entries", 512, "entries per directory")
	period := flag.Uint64("period", 800_000, "oscillation half-period in cycles")
	phases := flag.Int("phases", 10, "phases to simulate")
	dumpTrace := flag.Bool("trace", false, "dump the scheduler's decision trace at the end")
	flag.Parse()

	rt, err := o2.New(
		o2.WithTopology(o2.Tiny8),
		o2.WithRebalanceInterval(o2.Cycles(*period/4)),
		o2.WithDecayWindow(o2.Cycles(*period)*3/2),
		o2.WithTrace(256),
	)
	if err != nil {
		log.Fatal(err)
	}
	spec := o2.DirSpec{Dirs: *dirs, EntriesPerDir: *entries}
	tree, err := rt.NewDirTree(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("oscillate: %d dirs × %d entries (%d KB); active set alternates %d ⇄ %d dirs every %d cycles\n\n",
		*dirs, *entries, spec.TotalBytes()/1024, *dirs, *dirs/4, *period)

	// Worker threads: the Fig. 1 loop with an oscillating directory
	// choice.
	deadline := o2.Time(uint64(*phases) * *period)
	counts := make([]uint64, *phases)
	master := o2.NewRNG(3)
	ncores := rt.NumCores()
	homes := o2.RoundRobin(ncores, ncores)
	for w := 0; w < ncores; w++ {
		rng := master.Split()
		rt.Go(fmt.Sprintf("thread %d", w), homes[w], func(t *o2.Thread) {
			for t.Now() < deadline {
				phase := int(uint64(t.Now()) / *period)
				n := *dirs
				if phase%2 == 1 {
					n = *dirs / 4
				}
				d := tree.Dir(rng.Intn(n))
				name := d.EntryName(rng.Intn(d.NumEntries()))

				t.Compute(60)
				op := t.Begin(d.Object())
				d.Lookup(t, name)
				op.End()

				if phase < len(counts) {
					counts[phase]++
				}
				t.Yield()
			}
		})
	}

	// Phase reporter: print throughput and monitor activity per phase.
	last := rt.SchedStats()
	for ph := 1; ph <= *phases; ph++ {
		ph := ph
		rt.At(o2.Time(uint64(ph)**period), func() {
			s := rt.SchedStats()
			active := *dirs
			if (ph-1)%2 == 1 {
				active = *dirs / 4
			}
			kres := float64(counts[ph-1]) / (float64(*period) / rt.ClockHz()) / 1000
			fmt.Printf("phase %2d  active=%2d dirs  %7.0f kres/s   +placements=%-3d +unplacements=%-3d +moves=%-3d +migrations=%d\n",
				ph, active, kres,
				s.Placements-last.Placements,
				s.Unplacements-last.Unplacements,
				s.ObjectsMoved-last.ObjectsMoved,
				s.Migrations-last.Migrations)
			last = s
		})
	}

	rt.RunUntil(deadline + 1)

	s := rt.SchedStats()
	fmt.Printf("\ntotals: %d ops, %d migrations, %d placements, %d unplacements, %d monitor moves\n",
		s.Ops, s.Migrations, s.Placements, s.Unplacements, s.ObjectsMoved)

	if *dumpTrace {
		evs, err := rt.TraceEvents()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nlast %d scheduler decisions (cycle, kind, subject):\n", len(evs))
		if _, err := rt.DumpTrace(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
