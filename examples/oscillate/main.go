// Oscillate: a live view of CoreTime's runtime monitor (the mechanism
// behind Figure 4(b)). The active directory set oscillates between all
// directories and a quarter of them; the example prints a timeline of
// per-phase throughput together with the monitor's actions — placements,
// decays, and rebalancing moves — so you can watch the scheduler chase the
// working set.
//
// Run with:
//
//	go run ./examples/oscillate [-dirs N] [-period CYCLES]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	dirs := flag.Int("dirs", 24, "number of directories")
	entries := flag.Int("entries", 512, "entries per directory")
	period := flag.Uint64("period", 800_000, "oscillation half-period in cycles")
	phases := flag.Int("phases", 10, "phases to simulate")
	dumpTrace := flag.Bool("trace", false, "dump the scheduler's decision trace at the end")
	flag.Parse()

	spec := workload.DirSpec{Dirs: *dirs, EntriesPerDir: *entries}
	env, err := workload.BuildEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.RebalanceInterval = sim.Cycles(*period / 4)
	opts.DecayWindow = sim.Cycles(*period) * 3 / 2
	tracer := trace.New(256)
	opts.Tracer = tracer
	rt := core.New(env.Sys, opts)

	fmt.Printf("oscillate: %d dirs × %d entries (%d KB); active set alternates %d ⇄ %d dirs every %d cycles\n\n",
		*dirs, *entries, spec.TotalBytes()/1024, *dirs, *dirs/4, *period)

	// Worker threads: the Fig. 1 loop with an oscillating directory
	// choice.
	deadline := sim.Time(uint64(*phases) * *period)
	counts := make([]uint64, *phases)
	master := stats.NewRNG(3)
	homes := sched.RoundRobin(env.Mach.Config().NumCores(), env.Mach.Config().NumCores())
	for w := 0; w < env.Mach.Config().NumCores(); w++ {
		rng := master.Split()
		env.Sys.Go(fmt.Sprintf("thread %d", w), homes[w], func(t *exec.Thread) {
			for t.Now() < deadline {
				phase := int(uint64(t.Now()) / *period)
				n := *dirs
				if phase%2 == 1 {
					n = *dirs / 4
				}
				d := env.Dirs[rng.Intn(n)]
				name := d.Names[rng.Intn(len(d.Names))]

				t.Compute(60)
				rt.OpStart(t, d.Obj.Base)
				t.Lock(d.Lock)
				b := t.NewBatch()
				if _, err := env.FS.Lookup(b, d.Dir, name); err != nil {
					panic(err)
				}
				b.Commit()
				t.Unlock(d.Lock)
				rt.OpEnd(t)

				if phase < len(counts) {
					counts[phase]++
				}
				t.Yield()
			}
		})
	}

	// Phase reporter: print throughput and monitor activity per phase.
	last := rt.Stats()
	for ph := 1; ph <= *phases; ph++ {
		ph := ph
		env.Eng.At(sim.Time(uint64(ph)**period), func() {
			s := rt.Stats()
			active := *dirs
			if (ph-1)%2 == 1 {
				active = *dirs / 4
			}
			kres := float64(counts[ph-1]) / (float64(*period) / env.Mach.Config().ClockHz) / 1000
			fmt.Printf("phase %2d  active=%2d dirs  %7.0f kres/s   +placements=%-3d +unplacements=%-3d +moves=%-3d +migrations=%d\n",
				ph, active, kres,
				s.Placements-last.Placements,
				s.Unplacements-last.Unplacements,
				s.ObjectsMoved-last.ObjectsMoved,
				s.Migrations-last.Migrations)
			last = s
		})
	}

	env.Eng.Run(deadline + 1)

	s := rt.Stats()
	fmt.Printf("\ntotals: %d ops, %d migrations, %d placements, %d unplacements, %d monitor moves\n",
		s.Ops, s.Migrations, s.Placements, s.Unplacements, s.ObjectsMoved)

	if *dumpTrace {
		fmt.Printf("\nlast %d scheduler decisions (cycle, kind, subject):\n", len(tracer.Events()))
		tracer.Dump(os.Stdout)
	}
}
