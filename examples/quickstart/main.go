// Quickstart: the smallest complete CoreTime program, written against the
// public repro/o2 façade.
//
// It builds a simulated 8-core machine, formats a FAT volume with eight
// 512-entry directories (the paper's Figure 1 workload, scaled down), and
// measures file-name resolution throughput under the traditional thread
// scheduler and under CoreTime — the comparison behind the paper's
// Figure 4.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/o2"
)

func main() {
	// Eight directories of 512 entries: 128 KB of directory data on a
	// machine whose chips cache 64 KB each — too big for one chip, small
	// enough for the machine, exactly the regime O2 scheduling targets.
	spec := o2.DirSpec{Dirs: 8, EntriesPerDir: 512}

	params := o2.DefaultRunParams()
	params.Threads = 8
	params.Warmup = 1_000_000  // cycles before measurement starts
	params.Measure = 2_000_000 // measured window

	fmt.Println("quickstart: directory lookups, 8 threads on a simulated 8-core machine")
	fmt.Printf("%d directories × %d entries = %d KB of directory data\n\n",
		spec.Dirs, spec.EntriesPerDir, spec.TotalBytes()/1024)

	// Baseline: the traditional thread scheduler. Threads stay on their
	// home cores; caches fill implicitly.
	base, err := o2.Experiment{
		Machine: o2.Tiny8,
		Tree:    spec,
		Params:  params,
	}.Run(o2.WithScheduler(o2.Baseline))
	if err != nil {
		log.Fatal(err)
	}

	// CoreTime: directories become objects, lookups become operations,
	// and threads migrate to the core caching the directory they need.
	// Built by hand (rather than Experiment) so we can inspect placement
	// afterwards.
	rt, err := o2.New(o2.WithTopology(o2.Tiny8), o2.WithScheduler(o2.CoreTime))
	if err != nil {
		log.Fatal(err)
	}
	tree, err := rt.NewDirTree(spec)
	if err != nil {
		log.Fatal(err)
	}
	ct := tree.Run(params)

	fmt.Printf("%-20s %12s %12s\n", "scheduler", "resolutions", "kres/sec")
	fmt.Printf("%-20s %12d %12.0f\n", base.Scheduler, base.Resolutions, base.KResPerSec)
	fmt.Printf("%-20s %12d %12.0f\n", ct.Scheduler, ct.Resolutions, ct.KResPerSec)
	fmt.Printf("\nCoreTime speedup: %.2fx with %d thread migrations\n",
		ct.KResPerSec/base.KResPerSec, ct.Migrations)

	// Where did CoreTime put the directories?
	fmt.Println("\nobject placement (directory → core):")
	for i := 0; i < tree.Len(); i++ {
		obj := tree.Dir(i).Object()
		if c, ok := rt.Placement(obj); ok {
			fmt.Printf("  %-10s core %d\n", obj.Name(), c)
		} else {
			fmt.Printf("  %-10s unplaced (hardware-managed)\n", obj.Name())
		}
	}
}
