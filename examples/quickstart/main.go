// Quickstart: the smallest complete CoreTime program.
//
// It builds a simulated 8-core machine, formats a FAT volume with eight
// 512-entry directories (the paper's Figure 1 workload, scaled down), and
// measures file-name resolution throughput under the traditional thread
// scheduler and under CoreTime — the comparison behind the paper's
// Figure 4.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	// Eight directories of 512 entries: 128 KB of directory data on a
	// machine whose chips cache 64 KB each — too big for one chip, small
	// enough for the machine, exactly the regime O2 scheduling targets.
	spec := workload.DirSpec{Dirs: 8, EntriesPerDir: 512}

	params := workload.DefaultRunParams()
	params.Threads = 8
	params.Warmup = 1_000_000  // cycles before measurement starts
	params.Measure = 2_000_000 // measured window

	fmt.Println("quickstart: directory lookups, 8 threads on a simulated 8-core machine")
	fmt.Printf("%d directories × %d entries = %d KB of directory data\n\n",
		spec.Dirs, spec.EntriesPerDir, spec.TotalBytes()/1024)

	// Baseline: the traditional thread scheduler. Threads stay on their
	// home cores; caches fill implicitly.
	envBase, err := workload.BuildEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
	if err != nil {
		log.Fatal(err)
	}
	base := workload.RunDirLookup(envBase, sched.ThreadScheduler{}, params)

	// CoreTime: directories become objects, lookups become operations,
	// and threads migrate to the core caching the directory they need.
	envCT, err := workload.BuildEnv(topology.Tiny8(), exec.DefaultOptions(), spec)
	if err != nil {
		log.Fatal(err)
	}
	rt := core.New(envCT.Sys, core.DefaultOptions())
	ct := workload.RunDirLookup(envCT, rt, params)

	fmt.Printf("%-20s %12s %12s\n", "scheduler", "resolutions", "kres/sec")
	fmt.Printf("%-20s %12d %12.0f\n", base.Scheduler, base.Resolutions, base.KResPerSec)
	fmt.Printf("%-20s %12d %12.0f\n", ct.Scheduler, ct.Resolutions, ct.KResPerSec)
	fmt.Printf("\nCoreTime speedup: %.2fx with %d thread migrations\n",
		ct.KResPerSec/base.KResPerSec, ct.Migrations)

	// Where did CoreTime put the directories?
	fmt.Println("\nobject placement (directory → core):")
	for _, d := range envCT.Dirs {
		if c, ok := rt.Placement(d.Obj.Base); ok {
			fmt.Printf("  %-10s core %d\n", d.Obj.Name, c)
		} else {
			fmt.Printf("  %-10s unplaced (hardware-managed)\n", d.Obj.Name)
		}
	}
}
